package sensorcq

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Typed sentinel errors of the public subscription-lifecycle surface. Match
// them with errors.Is; the returned errors may carry additional context
// (sensor IDs, subscription IDs) in their message.
var (
	// ErrUnknownSensor is returned when a published event names a sensor
	// that is not part of the deployment.
	ErrUnknownSensor = errors.New("sensorcq: unknown sensor")
	// ErrClosed is returned by every mutating System method (Publish,
	// Subscribe, Replay, Unsubscribe, ...) called after Close, and by Close
	// itself on the second and later calls. Read-only accessors stay
	// usable on a closed system.
	ErrClosed = errors.New("sensorcq: system is closed")
	// ErrUnsubscribed is returned by SubscriptionHandle.Unsubscribe when the
	// subscription was already retracted.
	ErrUnsubscribed = errors.New("sensorcq: subscription already unsubscribed")
	// ErrDuplicateSubscription is returned by Subscribe when a subscription
	// with the same ID is still active on the system.
	ErrDuplicateSubscription = errors.New("sensorcq: duplicate subscription")
	// ErrUnknownSubscription is returned by HandleByID when no active
	// subscription carries the given ID (never registered, or already
	// retracted).
	ErrUnknownSubscription = errors.New("sensorcq: unknown subscription")
)

// DefaultSinkBuffer is the capacity of a handle's push-delivery channel when
// Subscribe is not given an explicit WithSinkBuffer option.
const DefaultSinkBuffer = 1024

// DefaultBackpressureTimeout is the wait bound BlockWithTimeout uses when
// WithBackpressure is given a non-positive timeout.
const DefaultBackpressureTimeout = time.Second

// BackpressureMode selects what a full push-delivery channel does with the
// next delivery. Whatever the mode, the pull log (Log, System.DeliveriesFor)
// always records every delivery — backpressure only shapes the push stream.
type BackpressureMode int

const (
	// DropNewest counts the incoming delivery in DroppedPushes and
	// discards it, never blocking the delivering worker. This is the
	// default and exactly the historical WithSinkBuffer behaviour.
	DropNewest BackpressureMode = iota
	// DropOldest evicts the oldest buffered delivery (counting it in
	// DroppedPushes) to admit the incoming one, so a slow consumer sees
	// the freshest results rather than the stalest, still without
	// blocking the delivering worker.
	DropOldest
	// BlockWithTimeout blocks the delivering worker until the consumer
	// frees buffer space or the configured timeout elapses; on timeout the
	// incoming delivery is counted in DroppedPushes and discarded. This
	// trades engine throughput for lossless streaming while the consumer
	// keeps up within the timeout.
	BlockWithTimeout
)

// String implements fmt.Stringer with the CLI/wire spellings of the modes.
func (m BackpressureMode) String() string {
	switch m {
	case DropNewest:
		return "drop_newest"
	case DropOldest:
		return "drop_oldest"
	case BlockWithTimeout:
		return "block"
	default:
		return fmt.Sprintf("backpressure(%d)", int(m))
	}
}

// ParseBackpressureMode maps the wire spelling of a backpressure mode
// ("drop_newest", "drop_oldest", "block") onto its value; the empty string
// is the default mode.
func ParseBackpressureMode(s string) (BackpressureMode, error) {
	switch s {
	case "drop_newest", "":
		return DropNewest, nil
	case "drop_oldest":
		return DropOldest, nil
	case "block":
		return BlockWithTimeout, nil
	default:
		return DropNewest, fmt.Errorf("sensorcq: unknown backpressure mode %q (valid modes: drop_newest, drop_oldest, block)", s)
	}
}

// SubscribeOption customises the push-delivery sink of a subscription
// handle.
type SubscribeOption func(*subscribeOptions)

type subscribeOptions struct {
	sinkBuffer int
	callback   func(Delivery)
	retainLog  bool
	bpMode     BackpressureMode
	bpTimeout  time.Duration
}

// WithSinkBuffer sets the capacity of the handle's push-delivery channel.
// Zero disables the channel entirely (Deliveries returns nil); negative
// values keep the default. When the consumer falls behind and the channel
// fills up, further deliveries are counted in DroppedPushes instead of
// blocking the engine — the pull log (Log, System.DeliveriesFor) always
// remains complete.
func WithSinkBuffer(n int) SubscribeOption {
	return func(o *subscribeOptions) {
		if n >= 0 {
			o.sinkBuffer = n
		}
	}
}

// WithBackpressure selects what happens when the consumer falls behind and
// the push-delivery channel fills up: DropNewest (the default — count the
// incoming delivery in DroppedPushes and discard it), DropOldest (evict the
// oldest buffered delivery to admit the new one), or BlockWithTimeout (hold
// the delivering worker up to the timeout before counting the delivery as
// dropped). The timeout applies only to BlockWithTimeout; a non-positive
// value there falls back to DefaultBackpressureTimeout. An unknown mode
// fails the Subscribe call. The pull log stays complete in every mode.
//
// A blocked delivery waits outside the handle's lock, and an Unsubscribe or
// System.Close racing a full BlockWithTimeout sink aborts the wait
// immediately: retraction latency never depends on the consumer or the
// backpressure timeout.
func WithBackpressure(mode BackpressureMode, timeout time.Duration) SubscribeOption {
	return func(o *subscribeOptions) {
		o.bpMode = mode
		o.bpTimeout = timeout
	}
}

// WithCallback registers a function invoked synchronously for every delivery
// of the subscription, on the delivering node's dispatch path. The callback
// must be fast and must not call back into the System (doing so can
// deadlock a concurrent system). It runs in addition to the channel sink,
// and on the concurrent runtime it may run on a worker goroutine.
func WithCallback(fn func(Delivery)) SubscribeOption {
	return func(o *subscribeOptions) { o.callback = fn }
}

// WithRetainLog keeps the subscription's pull log (Log, DeliveriesFor,
// DeliveredSeqs) readable after Unsubscribe. By default the per-subscription
// delivery-map entries are evicted when the retraction completes, so a
// long-running system does not hold every retracted subscription's delivery
// history for the rest of its life; a handle subscribed with WithRetainLog
// opts out and keeps its history until the ID's next registration is itself
// unsubscribed without the option (eviction is per subscription ID). The
// system-wide delivery log (System.Deliveries) is never evicted either way.
func WithRetainLog() SubscribeOption {
	return func(o *subscribeOptions) { o.retainLog = true }
}

// SubscriptionHandle is the live registration of one continuous query: it
// carries the subscription's identity, a push-delivery sink fed from the
// per-node delivery shards (no engine-wide lock on the hot path),
// per-subscription counters, and the Unsubscribe that retracts the query
// network-wide.
//
// A handle stays valid after Unsubscribe for reading counters and the pull
// log; only the delivery stream ends (the channel is closed).
type SubscriptionHandle struct {
	sys  *System
	node NodeID
	sub  *Subscription

	// mu orders channel sends against the close in Unsubscribe; it is a
	// per-handle lock touched only when delivering to this subscription.
	// BlockWithTimeout waits happen OUTSIDE the lock (registered in senders,
	// woken by done), so a full sink never delays Unsubscribe or Close.
	mu     sync.Mutex
	ch     chan Delivery
	closed bool
	// done is closed by abortBlock to wake blocked BlockWithTimeout senders;
	// senders counts them so closeSink can close ch only once none is
	// mid-send.
	done      chan struct{}
	abortOnce sync.Once
	senders   sync.WaitGroup

	cb func(Delivery)
	// retainLog keeps the pull log after Unsubscribe (WithRetainLog).
	retainLog bool
	// bpMode and bpTimeout shape what push does with a full channel
	// (WithBackpressure); bpTimeout is meaningful only for BlockWithTimeout.
	bpMode    BackpressureMode
	bpTimeout time.Duration

	// unsubMu serialises Unsubscribe calls. The unsubscribed flag alone is
	// not enough: with a bare Swap(true), a concurrent second call would
	// observe the flag during a first call whose retraction then FAILS and
	// rolls the flag back — the second caller would report ErrUnsubscribed
	// for a subscription that is still registered. Under the mutex the flag
	// only ever transitions to true after a successful retraction, so every
	// ErrUnsubscribed corresponds to a retraction that actually ran.
	unsubMu sync.Mutex

	delivered    atomic.Int64
	droppedPush  atomic.Int64
	unsubscribed atomic.Bool
}

// ID returns the subscription's identifier.
func (h *SubscriptionHandle) ID() SubscriptionID { return h.sub.ID }

// Node returns the processing node the subscription was registered at.
func (h *SubscriptionHandle) Node() NodeID { return h.node }

// Subscription returns the registered subscription.
func (h *SubscriptionHandle) Subscription() *Subscription { return h.sub }

// Deliveries returns the push-delivery stream: every complex event delivered
// to this subscription is sent to the channel as it happens. The channel is
// closed by Unsubscribe and by System.Close, so ranging over it terminates
// with the subscription. It returns nil when the channel sink was disabled
// with WithSinkBuffer(0).
func (h *SubscriptionHandle) Deliveries() <-chan Delivery {
	if h.ch == nil {
		return nil
	}
	return h.ch
}

// Delivered returns the number of complex-event notifications delivered to
// this subscription so far.
func (h *SubscriptionHandle) Delivered() int64 { return h.delivered.Load() }

// DroppedPushes returns the number of deliveries that could not be pushed to
// the channel sink because the consumer fell behind (the pull log still
// recorded them).
func (h *SubscriptionHandle) DroppedPushes() int64 { return h.droppedPush.Load() }

// Active reports whether the subscription is still registered (not yet
// unsubscribed, system not closed).
func (h *SubscriptionHandle) Active() bool {
	return !h.unsubscribed.Load() && !h.sys.closed.Load()
}

// Log returns the subscription's pull log: every delivery recorded so far,
// served from the per-subscription delivery maps (cost proportional to this
// subscription's deliveries, not the whole system log). After Unsubscribe
// the log is empty unless the handle was subscribed with WithRetainLog —
// the delivery-map entries of a retracted subscription are evicted with it.
func (h *SubscriptionHandle) Log() []Delivery { return h.sys.DeliveriesFor(h.sub.ID) }

// DeliveredSeqs returns the set of simple-event sequence numbers delivered
// to this subscription as components of some complex event.
func (h *SubscriptionHandle) DeliveredSeqs() map[uint64]bool {
	return h.sys.DeliveredEventSeqs(h.sub.ID)
}

// Unsubscribe retracts the subscription network-wide: every node that stored
// or forwarded one of its operators removes it, releases the pub/sub routing
// entries it held, and re-exposes operators that were only filtered out
// because this subscription covered them. When Unsubscribe returns, the
// retraction has fully propagated — a subsequent replay produces zero
// deliveries for this subscription — and the delivery channel is closed.
//
// The second and later calls return ErrUnsubscribed; after System.Close it
// returns ErrClosed.
func (h *SubscriptionHandle) Unsubscribe() error {
	// Serialised: concurrent calls must not interleave with a failing
	// retraction. The flag is only set after the retraction succeeded, so a
	// loser of the race cannot observe a transient true that is later rolled
	// back and misreport ErrUnsubscribed while the subscription stays
	// registered.
	h.unsubMu.Lock()
	defer h.unsubMu.Unlock()
	if h.sys.closed.Load() {
		return ErrClosed
	}
	if h.unsubscribed.Load() {
		// Same error shape as the System.Unsubscribe lookup path: the
		// sentinel wrapped with the subscription ID, so both surfaces
		// satisfy errors.Is(err, ErrUnsubscribed) and carry the ID.
		return fmt.Errorf("%w: %s", ErrUnsubscribed, h.sub.ID)
	}
	if err := h.sys.unsubscribe(h); err != nil {
		// The retraction did not run (e.g. the runtime shut down under us):
		// the subscription is still registered and a retry stays possible.
		return err
	}
	h.unsubscribed.Store(true)
	return nil
}

// push feeds one delivery into the handle's sinks. It runs on the delivering
// node's dispatch path: the only lock taken is the handle's own.
func (h *SubscriptionHandle) push(d Delivery) {
	h.delivered.Add(1)
	if h.cb != nil {
		h.cb(d)
	}
	if h.ch == nil {
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	select {
	case h.ch <- d:
		h.mu.Unlock()
		return
	default:
	}
	// The channel is full: apply the handle's backpressure mode.
	switch h.bpMode {
	case DropOldest:
		// Evict buffered deliveries until the new one fits. The consumer
		// may be draining concurrently, so the eviction receive can miss
		// and the send can succeed on any iteration; either way each pass
		// frees or finds a slot, so the loop terminates.
		for {
			select {
			case <-h.ch:
				h.droppedPush.Add(1)
			default:
			}
			select {
			case h.ch <- d:
				h.mu.Unlock()
				return
			default:
			}
		}
	case BlockWithTimeout:
		// Register as an in-flight sender, then wait OUTSIDE the handle
		// lock: a concurrent Unsubscribe or Close closes done to abort the
		// wait immediately instead of stalling behind it for up to one
		// timeout. closeSink only closes ch after senders drains, so the
		// send below can never race the close.
		h.senders.Add(1)
		h.mu.Unlock()
		defer h.senders.Done()
		t := time.NewTimer(h.bpTimeout)
		defer t.Stop()
		select {
		case h.ch <- d:
		case <-h.done:
			// The handle is retiring (Unsubscribe or Close); the pull log
			// already has the delivery, so this is not a consumer-induced
			// drop.
		case <-t.C:
			h.droppedPush.Add(1)
		}
		return
	default: // DropNewest
		h.droppedPush.Add(1)
	}
	h.mu.Unlock()
}

// abortBlock wakes every in-flight BlockWithTimeout wait and keeps future
// ones from blocking. It runs at the start of a retraction — BEFORE the
// runtime drains it — because on the concurrent runtime a blocked push
// stalls its node's worker, and the retraction could never propagate past a
// worker that is waiting on the consumer. Idempotent; closeSink calls it
// too.
func (h *SubscriptionHandle) abortBlock() {
	if h.done == nil {
		return
	}
	h.abortOnce.Do(func() { close(h.done) })
}

// closeSink closes the delivery channel exactly once. Marking the handle
// closed under the lock stops new senders; abortBlock wakes the blocked
// BlockWithTimeout waits, which are then drained (senders) before ch is
// closed so no send can hit a closed channel.
func (h *SubscriptionHandle) closeSink() {
	if h.ch == nil {
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	h.abortBlock()
	h.senders.Wait()
	close(h.ch)
}
