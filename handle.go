package sensorcq

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Typed sentinel errors of the public subscription-lifecycle surface. Match
// them with errors.Is; the returned errors may carry additional context
// (sensor IDs, subscription IDs) in their message.
var (
	// ErrUnknownSensor is returned when a published event names a sensor
	// that is not part of the deployment.
	ErrUnknownSensor = errors.New("sensorcq: unknown sensor")
	// ErrClosed is returned by every mutating System method (Publish,
	// Subscribe, Replay, Unsubscribe, ...) called after Close, and by Close
	// itself on the second and later calls. Read-only accessors stay
	// usable on a closed system.
	ErrClosed = errors.New("sensorcq: system is closed")
	// ErrUnsubscribed is returned by SubscriptionHandle.Unsubscribe when the
	// subscription was already retracted.
	ErrUnsubscribed = errors.New("sensorcq: subscription already unsubscribed")
	// ErrDuplicateSubscription is returned by Subscribe when a subscription
	// with the same ID is still active on the system.
	ErrDuplicateSubscription = errors.New("sensorcq: duplicate subscription")
)

// DefaultSinkBuffer is the capacity of a handle's push-delivery channel when
// Subscribe is not given an explicit WithSinkBuffer option.
const DefaultSinkBuffer = 1024

// SubscribeOption customises the push-delivery sink of a subscription
// handle.
type SubscribeOption func(*subscribeOptions)

type subscribeOptions struct {
	sinkBuffer int
	callback   func(Delivery)
	retainLog  bool
}

// WithSinkBuffer sets the capacity of the handle's push-delivery channel.
// Zero disables the channel entirely (Deliveries returns nil); negative
// values keep the default. When the consumer falls behind and the channel
// fills up, further deliveries are counted in DroppedPushes instead of
// blocking the engine — the pull log (Log, System.DeliveriesFor) always
// remains complete.
func WithSinkBuffer(n int) SubscribeOption {
	return func(o *subscribeOptions) {
		if n >= 0 {
			o.sinkBuffer = n
		}
	}
}

// WithCallback registers a function invoked synchronously for every delivery
// of the subscription, on the delivering node's dispatch path. The callback
// must be fast and must not call back into the System (doing so can
// deadlock a concurrent system). It runs in addition to the channel sink,
// and on the concurrent runtime it may run on a worker goroutine.
func WithCallback(fn func(Delivery)) SubscribeOption {
	return func(o *subscribeOptions) { o.callback = fn }
}

// WithRetainLog keeps the subscription's pull log (Log, DeliveriesFor,
// DeliveredSeqs) readable after Unsubscribe. By default the per-subscription
// delivery-map entries are evicted when the retraction completes, so a
// long-running system does not hold every retracted subscription's delivery
// history for the rest of its life; a handle subscribed with WithRetainLog
// opts out and keeps its history until the ID's next registration is itself
// unsubscribed without the option (eviction is per subscription ID). The
// system-wide delivery log (System.Deliveries) is never evicted either way.
func WithRetainLog() SubscribeOption {
	return func(o *subscribeOptions) { o.retainLog = true }
}

// SubscriptionHandle is the live registration of one continuous query: it
// carries the subscription's identity, a push-delivery sink fed from the
// per-node delivery shards (no engine-wide lock on the hot path),
// per-subscription counters, and the Unsubscribe that retracts the query
// network-wide.
//
// A handle stays valid after Unsubscribe for reading counters and the pull
// log; only the delivery stream ends (the channel is closed).
type SubscriptionHandle struct {
	sys  *System
	node NodeID
	sub  *Subscription

	// mu orders channel sends against the close in Unsubscribe; it is a
	// per-handle lock touched only when delivering to this subscription.
	mu     sync.Mutex
	ch     chan Delivery
	closed bool

	cb func(Delivery)
	// retainLog keeps the pull log after Unsubscribe (WithRetainLog).
	retainLog bool

	// unsubMu serialises Unsubscribe calls. The unsubscribed flag alone is
	// not enough: with a bare Swap(true), a concurrent second call would
	// observe the flag during a first call whose retraction then FAILS and
	// rolls the flag back — the second caller would report ErrUnsubscribed
	// for a subscription that is still registered. Under the mutex the flag
	// only ever transitions to true after a successful retraction, so every
	// ErrUnsubscribed corresponds to a retraction that actually ran.
	unsubMu sync.Mutex

	delivered    atomic.Int64
	droppedPush  atomic.Int64
	unsubscribed atomic.Bool
}

// ID returns the subscription's identifier.
func (h *SubscriptionHandle) ID() SubscriptionID { return h.sub.ID }

// Node returns the processing node the subscription was registered at.
func (h *SubscriptionHandle) Node() NodeID { return h.node }

// Subscription returns the registered subscription.
func (h *SubscriptionHandle) Subscription() *Subscription { return h.sub }

// Deliveries returns the push-delivery stream: every complex event delivered
// to this subscription is sent to the channel as it happens. The channel is
// closed by Unsubscribe and by System.Close, so ranging over it terminates
// with the subscription. It returns nil when the channel sink was disabled
// with WithSinkBuffer(0).
func (h *SubscriptionHandle) Deliveries() <-chan Delivery {
	if h.ch == nil {
		return nil
	}
	return h.ch
}

// Delivered returns the number of complex-event notifications delivered to
// this subscription so far.
func (h *SubscriptionHandle) Delivered() int64 { return h.delivered.Load() }

// DroppedPushes returns the number of deliveries that could not be pushed to
// the channel sink because the consumer fell behind (the pull log still
// recorded them).
func (h *SubscriptionHandle) DroppedPushes() int64 { return h.droppedPush.Load() }

// Active reports whether the subscription is still registered (not yet
// unsubscribed, system not closed).
func (h *SubscriptionHandle) Active() bool {
	return !h.unsubscribed.Load() && !h.sys.closed.Load()
}

// Log returns the subscription's pull log: every delivery recorded so far,
// served from the per-subscription delivery maps (cost proportional to this
// subscription's deliveries, not the whole system log). After Unsubscribe
// the log is empty unless the handle was subscribed with WithRetainLog —
// the delivery-map entries of a retracted subscription are evicted with it.
func (h *SubscriptionHandle) Log() []Delivery { return h.sys.DeliveriesFor(h.sub.ID) }

// DeliveredSeqs returns the set of simple-event sequence numbers delivered
// to this subscription as components of some complex event.
func (h *SubscriptionHandle) DeliveredSeqs() map[uint64]bool {
	return h.sys.DeliveredEventSeqs(h.sub.ID)
}

// Unsubscribe retracts the subscription network-wide: every node that stored
// or forwarded one of its operators removes it, releases the pub/sub routing
// entries it held, and re-exposes operators that were only filtered out
// because this subscription covered them. When Unsubscribe returns, the
// retraction has fully propagated — a subsequent replay produces zero
// deliveries for this subscription — and the delivery channel is closed.
//
// The second and later calls return ErrUnsubscribed; after System.Close it
// returns ErrClosed.
func (h *SubscriptionHandle) Unsubscribe() error {
	// Serialised: concurrent calls must not interleave with a failing
	// retraction. The flag is only set after the retraction succeeded, so a
	// loser of the race cannot observe a transient true that is later rolled
	// back and misreport ErrUnsubscribed while the subscription stays
	// registered.
	h.unsubMu.Lock()
	defer h.unsubMu.Unlock()
	if h.sys.closed.Load() {
		return ErrClosed
	}
	if h.unsubscribed.Load() {
		return ErrUnsubscribed
	}
	if err := h.sys.unsubscribe(h); err != nil {
		// The retraction did not run (e.g. the runtime shut down under us):
		// the subscription is still registered and a retry stays possible.
		return err
	}
	h.unsubscribed.Store(true)
	return nil
}

// push feeds one delivery into the handle's sinks. It runs on the delivering
// node's dispatch path: the only lock taken is the handle's own.
func (h *SubscriptionHandle) push(d Delivery) {
	h.delivered.Add(1)
	if h.cb != nil {
		h.cb(d)
	}
	if h.ch == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	select {
	case h.ch <- d:
	default:
		h.droppedPush.Add(1)
	}
}

// closeSink closes the delivery channel exactly once.
func (h *SubscriptionHandle) closeSink() {
	if h.ch == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.closed {
		h.closed = true
		close(h.ch)
	}
}
