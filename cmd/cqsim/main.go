// Command cqsim runs a single simulation: one deployment, one approach, a
// generated workload and trace, and prints the resulting traffic counters
// and deliveries. It is the quickest way to poke at one configuration
// without running the whole experiment matrix.
//
// Usage:
//
//	cqsim -approach filter-split-forward -nodes 60 -sensors 50 -groups 10 \
//	      -subs 200 -rounds 12
//	cqsim -concurrent -delivery pipelined        # parallel round-by-round replay
//	cqsim -concurrent -delivery windowed -lag 2  # overlap up to 3 rounds in flight
//	cqsim -agg quantile -agg-window 4 -agg-k 32  # add a windowed aggregate query
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sensorcq"
)

func main() {
	var (
		approach = flag.String("approach", string(sensorcq.FilterSplitForward),
			"approach: centralized, naive, operator-placement, distributed-multi-join or filter-split-forward")
		nodes      = flag.Int("nodes", 60, "total processing nodes")
		sensors    = flag.Int("sensors", 50, "sensor nodes")
		groups     = flag.Int("groups", 10, "sensor groups (base stations)")
		subs       = flag.Int("subs", 200, "number of subscriptions")
		minAttrs   = flag.Int("min-attrs", 3, "minimum attributes per subscription")
		maxAttrs   = flag.Int("max-attrs", 5, "maximum attributes per subscription")
		rounds     = flag.Int("rounds", 12, "measurement rounds to replay")
		seed       = flag.Int64("seed", 1, "random seed")
		topN       = flag.Int("busiest", 5, "print the N busiest links")
		concurrent = flag.Bool("concurrent", false, "run on the concurrent engine (pooled work-stealing scheduler)")
		workers    = flag.Int("workers", 0, "scheduler workers of the concurrent engine (0 = GOMAXPROCS; requires -concurrent)")
		delivery   = flag.String("delivery", "quiescent",
			"replay delivery semantics: quiescent (drain after every event), pipelined (drain after every round) or windowed (overlap up to -lag+1 rounds)")
		lag   = flag.Int("lag", 0, "cross-round pipelining bound of the windowed delivery mode (requires -delivery windowed)")
		churn = flag.Float64("churn", 0,
			"fraction of subscriptions to unsubscribe halfway through the replay (0..1); exercises the retraction path and prints the traffic it saves")
		indexStats = flag.Bool("indexstats", false,
			"print the aggregate shape and lookup cost of the network's match indexes after the replay")
		aggFunc = flag.String("agg", "",
			"also register one windowed aggregate query with this function (count, sum, min, max, mean or quantile) over the deployment's busiest attribute")
		aggWindow   = flag.Int("agg-window", 4, "tumbling window width in rounds of the -agg query")
		aggQuantile = flag.Float64("agg-quantile", 0.5, "rank fraction of the -agg quantile query")
		aggBits     = flag.Uint("agg-bits", 12, "log2 of the q-digest bucket count of the -agg quantile query")
		aggK        = flag.Int("agg-k", 32, "q-digest compression parameter of the -agg quantile query (ε = bits/k)")
		aggExact    = flag.Bool("agg-exact", false,
			"run the -agg query with the exact ship-every-reading baseline instead of in-network sketch merging")
	)
	flag.Parse()

	mode, err := sensorcq.ParseDeliveryMode(*delivery)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invalid -delivery %q: valid modes are %s\n",
			*delivery, strings.Join(sensorcq.DeliveryModeNames(), ", "))
		flag.Usage()
		os.Exit(2)
	}
	if *lag < 0 || (*lag > 0 && mode != sensorcq.Windowed) {
		fmt.Fprintf(os.Stderr, "invalid -lag %d: it must be >= 0 and requires -delivery windowed\n", *lag)
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 || (*workers > 0 && !*concurrent) {
		fmt.Fprintf(os.Stderr, "invalid -workers %d: it must be >= 0 and requires -concurrent\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	if *churn < 0 || *churn > 1 {
		fmt.Fprintf(os.Stderr, "invalid -churn %g: it must be in [0,1]\n", *churn)
		flag.Usage()
		os.Exit(2)
	}
	agg := aggConfig{
		fn:       *aggFunc,
		window:   *aggWindow,
		quantile: *aggQuantile,
		bits:     *aggBits,
		k:        *aggK,
		exact:    *aggExact,
	}
	if err := run(*approach, *nodes, *sensors, *groups, *subs, *minAttrs, *maxAttrs, *rounds, *seed, *topN, *concurrent, *workers, mode, *lag, *churn, *indexStats, agg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// aggConfig bundles the -agg* flags.
type aggConfig struct {
	fn       string
	window   int
	quantile float64
	bits     uint
	k        int
	exact    bool
}

func run(approach string, nodes, sensors, groups, subs, minAttrs, maxAttrs, rounds int, seed int64, topN int, concurrent bool, workers int, mode sensorcq.DeliveryMode, lag int, churn float64, indexStats bool, agg aggConfig) error {
	dep, err := sensorcq.GenerateDeployment(sensorcq.DeploymentConfig{
		TotalNodes:  nodes,
		SensorNodes: sensors,
		Groups:      groups,
		Attributes:  sensorcq.DefaultAttributes(),
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	trace, err := sensorcq.GenerateTrace(dep, sensorcq.TraceConfig{Rounds: rounds, Seed: seed + 1})
	if err != nil {
		return err
	}
	placed, err := sensorcq.GenerateWorkload(dep, trace, sensorcq.WorkloadConfig{
		Count:    subs,
		MinAttrs: minAttrs,
		MaxAttrs: maxAttrs,
		Seed:     seed + 2,
	})
	if err != nil {
		return err
	}

	sys, err := sensorcq.NewSystem(dep, sensorcq.Config{
		Approach:   sensorcq.Approach(approach),
		Seed:       seed,
		Concurrent: concurrent,
		Delivery:   mode,
		Lag:        lag,
		Workers:    workers,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	handles := make([]*sensorcq.SubscriptionHandle, 0, len(placed))
	for _, p := range placed {
		// The delivery channel is unused here (the counters and the pull
		// log are enough for a batch report), so disable it instead of
		// buffering deliveries nobody reads.
		h, err := sys.Subscribe(p.Node, p.Sub, sensorcq.WithSinkBuffer(0))
		if err != nil {
			return fmt.Errorf("subscribing %s: %w", p.Sub.ID, err)
		}
		handles = append(handles, h)
	}
	// The optional windowed aggregate query rides along with the workload: it
	// covers the busiest attribute's full observed value domain, so every
	// reading of that attribute folds into a window.
	const aggID = sensorcq.SubscriptionID("agg-query")
	var aggSpec sensorcq.AggregateSpec
	var aggAttr sensorcq.AttributeType
	if agg.fn != "" {
		fn, err := sensorcq.ParseAggregateFunc(agg.fn)
		if err != nil {
			return err
		}
		aggAttr = busiestAttribute(dep)
		lo, hi := trace.Mins[aggAttr], trace.Maxs[aggAttr]
		if !(lo < hi) {
			lo, hi = lo-1, hi+1
		}
		aggSpec = sensorcq.AggregateSpec{
			Func:         fn,
			WindowRounds: agg.window,
			Quantile:     agg.quantile,
			Lo:           lo,
			Hi:           hi,
			Bits:         agg.bits,
			K:            agg.k,
			Exact:        agg.exact,
		}
		sub, err := sensorcq.NewAggregateSubscription(aggID,
			sensorcq.AttributeFilter{Attr: aggAttr, Range: sensorcq.NewInterval(lo, hi)},
			sensorcq.Everywhere(), aggSpec)
		if err != nil {
			return err
		}
		if _, err := sys.SubscribeAggregate(0, sub, sensorcq.WithSinkBuffer(0)); err != nil {
			return fmt.Errorf("subscribing aggregate query: %w", err)
		}
	}

	afterSubs := sys.Traffic()
	start := time.Now()
	retracted := 0
	if churn > 0 {
		// Replay the first half, retract the requested fraction, replay the
		// rest: the traffic report then shows the event load the retraction
		// saved on the second half.
		half := len(trace.ByRound) / 2
		if err := sys.ReplayRounds(trace.ByRound[:half]); err != nil {
			return err
		}
		for _, h := range handles[:int(float64(len(handles))*churn)] {
			if err := h.Unsubscribe(); err != nil {
				return fmt.Errorf("unsubscribing %s: %w", h.ID(), err)
			}
			retracted++
		}
		if err := sys.ReplayRounds(trace.ByRound[half:]); err != nil {
			return err
		}
	} else if err := sys.ReplayTrace(trace); err != nil {
		return err
	}
	elapsed := time.Since(start)
	final := sys.Traffic()

	engine := "sequential"
	if concurrent {
		engine = "concurrent"
	}
	deliveryDesc := mode.String()
	if mode == sensorcq.Windowed {
		deliveryDesc = fmt.Sprintf("%s (lag %d, final watermark %d)", mode, lag, sys.Watermark())
	}
	fmt.Printf("approach:            %s\n", approach)
	fmt.Printf("engine:              %s, %s delivery\n", engine, deliveryDesc)
	fmt.Printf("network:             %d nodes (%d sensor nodes in %d groups)\n", nodes, sensors, groups)
	fmt.Printf("workload:            %d subscriptions (%d-%d attrs), %d rounds (%d readings)\n",
		subs, minAttrs, maxAttrs, rounds, trace.NumEvents())
	fmt.Printf("advertisement load:  %d\n", final.AdvertisementLoad)
	fmt.Printf("subscription load:   %d\n", afterSubs.SubscriptionLoad)
	if retracted > 0 {
		fmt.Printf("churn:               %d subscriptions retracted mid-replay (%d unsubscription messages)\n",
			retracted, final.UnsubscriptionLoad)
	}
	fmt.Printf("event load:          %d\n", final.EventLoad)
	rate := fmt.Sprintf("replay wall-clock:   %s (%.0f events/sec",
		elapsed.Round(time.Microsecond), float64(trace.NumEvents())/elapsed.Seconds())
	if concurrent {
		rate += fmt.Sprintf(", %d workers", sys.Workers())
	}
	fmt.Println(rate + ")")
	if n := sys.DroppedMessages(); n != 0 {
		fmt.Printf("DROPPED MESSAGES:    %d (run lost traffic!)\n", n)
	}

	if indexStats {
		ix := sys.IndexStats()
		fmt.Printf("match indexes:       %d trees (%d members indexed, %d covered entries kept out)\n",
			ix.Trees, ix.Members, ix.Covered)
		fmt.Printf("index shape:         %d boxes in %d tree nodes, max height %d\n",
			ix.Boxes, ix.Nodes, ix.MaxHeight)
		if ix.Lookups > 0 {
			fmt.Printf("index lookups:       %d stabs, %.1f candidates/stab\n",
				ix.Lookups, float64(ix.Candidates)/float64(ix.Lookups))
		}
	}

	delivered := 0
	for _, p := range placed {
		delivered += len(sys.DeliveredEventSeqs(p.Sub.ID))
	}
	fmt.Printf("delivered events:    %d (across %d complex-event notifications)\n",
		delivered, len(sys.Deliveries()))

	if agg.fn != "" {
		mode := fmt.Sprintf("in-network sketch (k=%d, ε=%.3f)", aggSpec.K, aggSpec.Epsilon())
		if aggSpec.Func != sensorcq.AggQuantile {
			mode = "in-network exact merge"
		}
		if aggSpec.Exact {
			mode = "ship-every-reading exact baseline"
		}
		fmt.Printf("aggregate query:     %s over %s, window %d rounds, %s\n",
			aggSpec.Func, aggAttr, aggSpec.WindowRounds, mode)
		windows := sys.DeliveriesFor(aggID)
		fmt.Printf("aggregate windows:   %d delivered\n", len(windows))
		fmt.Printf("partial-agg load:    %d messages, %d bytes upstream\n",
			final.PartialAggregateLoad, final.PartialAggregateBytes)
	}
	return nil
}

// busiestAttribute returns the deployment's attribute type with the most
// sensors.
func busiestAttribute(dep *sensorcq.Deployment) sensorcq.AttributeType {
	counts := make(map[sensorcq.AttributeType]int)
	for _, s := range dep.Sensors {
		counts[s.Attr]++
	}
	var best sensorcq.AttributeType
	bestN := -1
	for attr, n := range counts {
		if n > bestN || (n == bestN && attr < best) {
			best, bestN = attr, n
		}
	}
	return best
}
