// Command cqsim runs a single simulation: one deployment, one approach, a
// generated workload and trace, and prints the resulting traffic counters
// and deliveries. It is the quickest way to poke at one configuration
// without running the whole experiment matrix.
//
// Usage:
//
//	cqsim -approach filter-split-forward -nodes 60 -sensors 50 -groups 10 \
//	      -subs 200 -rounds 12
//	cqsim -concurrent -delivery pipelined        # parallel round-by-round replay
//	cqsim -concurrent -delivery windowed -lag 2  # overlap up to 3 rounds in flight
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sensorcq"
)

func main() {
	var (
		approach = flag.String("approach", string(sensorcq.FilterSplitForward),
			"approach: centralized, naive, operator-placement, distributed-multi-join or filter-split-forward")
		nodes      = flag.Int("nodes", 60, "total processing nodes")
		sensors    = flag.Int("sensors", 50, "sensor nodes")
		groups     = flag.Int("groups", 10, "sensor groups (base stations)")
		subs       = flag.Int("subs", 200, "number of subscriptions")
		minAttrs   = flag.Int("min-attrs", 3, "minimum attributes per subscription")
		maxAttrs   = flag.Int("max-attrs", 5, "maximum attributes per subscription")
		rounds     = flag.Int("rounds", 12, "measurement rounds to replay")
		seed       = flag.Int64("seed", 1, "random seed")
		topN       = flag.Int("busiest", 5, "print the N busiest links")
		concurrent = flag.Bool("concurrent", false, "run one goroutine per processing node")
		delivery   = flag.String("delivery", "quiescent",
			"replay delivery semantics: quiescent (drain after every event), pipelined (drain after every round) or windowed (overlap up to -lag+1 rounds)")
		lag   = flag.Int("lag", 0, "cross-round pipelining bound of the windowed delivery mode (requires -delivery windowed)")
		churn = flag.Float64("churn", 0,
			"fraction of subscriptions to unsubscribe halfway through the replay (0..1); exercises the retraction path and prints the traffic it saves")
		indexStats = flag.Bool("indexstats", false,
			"print the aggregate shape and lookup cost of the network's match indexes after the replay")
	)
	flag.Parse()

	mode, err := sensorcq.ParseDeliveryMode(*delivery)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invalid -delivery %q: valid modes are %s\n",
			*delivery, strings.Join(sensorcq.DeliveryModeNames(), ", "))
		flag.Usage()
		os.Exit(2)
	}
	if *lag < 0 || (*lag > 0 && mode != sensorcq.Windowed) {
		fmt.Fprintf(os.Stderr, "invalid -lag %d: it must be >= 0 and requires -delivery windowed\n", *lag)
		flag.Usage()
		os.Exit(2)
	}
	if *churn < 0 || *churn > 1 {
		fmt.Fprintf(os.Stderr, "invalid -churn %g: it must be in [0,1]\n", *churn)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*approach, *nodes, *sensors, *groups, *subs, *minAttrs, *maxAttrs, *rounds, *seed, *topN, *concurrent, mode, *lag, *churn, *indexStats); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(approach string, nodes, sensors, groups, subs, minAttrs, maxAttrs, rounds int, seed int64, topN int, concurrent bool, mode sensorcq.DeliveryMode, lag int, churn float64, indexStats bool) error {
	dep, err := sensorcq.GenerateDeployment(sensorcq.DeploymentConfig{
		TotalNodes:  nodes,
		SensorNodes: sensors,
		Groups:      groups,
		Attributes:  sensorcq.DefaultAttributes(),
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	trace, err := sensorcq.GenerateTrace(dep, sensorcq.TraceConfig{Rounds: rounds, Seed: seed + 1})
	if err != nil {
		return err
	}
	placed, err := sensorcq.GenerateWorkload(dep, trace, sensorcq.WorkloadConfig{
		Count:    subs,
		MinAttrs: minAttrs,
		MaxAttrs: maxAttrs,
		Seed:     seed + 2,
	})
	if err != nil {
		return err
	}

	sys, err := sensorcq.NewSystem(dep, sensorcq.Config{
		Approach:   sensorcq.Approach(approach),
		Seed:       seed,
		Concurrent: concurrent,
		Delivery:   mode,
		Lag:        lag,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	handles := make([]*sensorcq.SubscriptionHandle, 0, len(placed))
	for _, p := range placed {
		// The delivery channel is unused here (the counters and the pull
		// log are enough for a batch report), so disable it instead of
		// buffering deliveries nobody reads.
		h, err := sys.Subscribe(p.Node, p.Sub, sensorcq.WithSinkBuffer(0))
		if err != nil {
			return fmt.Errorf("subscribing %s: %w", p.Sub.ID, err)
		}
		handles = append(handles, h)
	}
	afterSubs := sys.Traffic()
	start := time.Now()
	retracted := 0
	if churn > 0 {
		// Replay the first half, retract the requested fraction, replay the
		// rest: the traffic report then shows the event load the retraction
		// saved on the second half.
		half := len(trace.ByRound) / 2
		if err := sys.ReplayRounds(trace.ByRound[:half]); err != nil {
			return err
		}
		for _, h := range handles[:int(float64(len(handles))*churn)] {
			if err := h.Unsubscribe(); err != nil {
				return fmt.Errorf("unsubscribing %s: %w", h.ID(), err)
			}
			retracted++
		}
		if err := sys.ReplayRounds(trace.ByRound[half:]); err != nil {
			return err
		}
	} else if err := sys.ReplayTrace(trace); err != nil {
		return err
	}
	elapsed := time.Since(start)
	final := sys.Traffic()

	engine := "sequential"
	if concurrent {
		engine = "concurrent"
	}
	deliveryDesc := mode.String()
	if mode == sensorcq.Windowed {
		deliveryDesc = fmt.Sprintf("%s (lag %d, final watermark %d)", mode, lag, sys.Watermark())
	}
	fmt.Printf("approach:            %s\n", approach)
	fmt.Printf("engine:              %s, %s delivery\n", engine, deliveryDesc)
	fmt.Printf("network:             %d nodes (%d sensor nodes in %d groups)\n", nodes, sensors, groups)
	fmt.Printf("workload:            %d subscriptions (%d-%d attrs), %d rounds (%d readings)\n",
		subs, minAttrs, maxAttrs, rounds, trace.NumEvents())
	fmt.Printf("advertisement load:  %d\n", final.AdvertisementLoad)
	fmt.Printf("subscription load:   %d\n", afterSubs.SubscriptionLoad)
	if retracted > 0 {
		fmt.Printf("churn:               %d subscriptions retracted mid-replay (%d unsubscription messages)\n",
			retracted, final.UnsubscriptionLoad)
	}
	fmt.Printf("event load:          %d\n", final.EventLoad)
	fmt.Printf("replay wall-clock:   %s (%.0f events/sec)\n",
		elapsed.Round(time.Microsecond), float64(trace.NumEvents())/elapsed.Seconds())
	if n := sys.DroppedMessages(); n != 0 {
		fmt.Printf("DROPPED MESSAGES:    %d (run lost traffic!)\n", n)
	}

	if indexStats {
		ix := sys.IndexStats()
		fmt.Printf("match indexes:       %d trees (%d members indexed, %d covered entries kept out)\n",
			ix.Trees, ix.Members, ix.Covered)
		fmt.Printf("index shape:         %d boxes in %d tree nodes, max height %d\n",
			ix.Boxes, ix.Nodes, ix.MaxHeight)
		if ix.Lookups > 0 {
			fmt.Printf("index lookups:       %d stabs, %.1f candidates/stab\n",
				ix.Lookups, float64(ix.Candidates)/float64(ix.Lookups))
		}
	}

	delivered := 0
	for _, p := range placed {
		delivered += len(sys.DeliveredEventSeqs(p.Sub.ID))
	}
	fmt.Printf("delivered events:    %d (across %d complex-event notifications)\n",
		delivered, len(sys.Deliveries()))
	return nil
}
