// Command benchgate turns `go test -bench` output into a JSON benchmark
// report and gates it against a committed baseline: the build fails when any
// baseline benchmark's events/sec throughput drops by more than -max-drop,
// or when a gated benchmark disappears from the run.
//
// CI usage (see .github/workflows/ci.yml):
//
//	go test -run '^$' -bench '...' -benchscale quick -cpu 1,2,4 . | tee bench.out
//	benchgate -input bench.out -baseline ci/bench-baseline.json \
//	          -out BENCH_$GITHUB_SHA.json -sha $GITHUB_SHA
//
// Refreshing the baseline after an intentional performance change:
//
//	benchgate -input bench.out -update ci/bench-baseline.json -note "runner X"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sensorcq/internal/benchgate"
)

func main() {
	var (
		input    = flag.String("input", "-", "benchmark output to parse ('-' for stdin)")
		baseline = flag.String("baseline", "", "baseline report JSON to gate against (no gating when empty)")
		out      = flag.String("out", "", "write the parsed report JSON to this path")
		update   = flag.String("update", "", "write the parsed report as the new baseline at this path")
		sha      = flag.String("sha", "", "commit SHA recorded in the report")
		note     = flag.String("note", "", "free-form provenance note recorded in the report")
		maxDrop  = flag.Float64("max-drop", 0.25, "maximum tolerated fractional events/sec drop vs the baseline")
	)
	flag.Parse()
	if err := run(*input, *baseline, *out, *update, *sha, *note, *maxDrop); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(input, baseline, out, update, sha, note string, maxDrop float64) error {
	if maxDrop <= 0 || maxDrop >= 1 {
		return fmt.Errorf("benchgate: -max-drop %g out of range (0, 1)", maxDrop)
	}
	var in io.Reader = os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	results, err := benchgate.Parse(in)
	if err != nil {
		return err
	}
	report := &benchgate.Report{SHA: sha, Note: note, Results: results}

	writeReport := func(path string) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return benchgate.Encode(f, report)
	}
	if out != "" {
		if err := writeReport(out); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", out, len(results))
	}
	if update != "" {
		if err := writeReport(update); err != nil {
			return err
		}
		fmt.Printf("benchgate: baseline %s updated (%d benchmarks)\n", update, len(results))
	}

	if baseline == "" {
		return nil
	}
	bf, err := os.Open(baseline)
	if err != nil {
		return fmt.Errorf("benchgate: opening baseline: %w", err)
	}
	defer bf.Close()
	base, err := benchgate.Decode(bf)
	if err != nil {
		return err
	}
	regressions := benchgate.Gate(base, results, maxDrop)
	gated := 0
	for _, r := range base.Results {
		if r.EventsPerSec > 0 {
			gated++
		}
	}
	if len(regressions) == 0 {
		fmt.Printf("benchgate: OK — %d gated benchmarks within %.0f%% of baseline %s\n",
			gated, maxDrop*100, base.SHA)
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "benchgate: REGRESSION %s\n", r)
	}
	return fmt.Errorf("benchgate: %d benchmark(s) regressed more than %.0f%% vs baseline %s",
		len(regressions), maxDrop*100, base.SHA)
}
