// Command benchgate turns `go test -bench` output into a JSON benchmark
// report and gates it against a committed baseline: the build fails when any
// baseline benchmark's events/sec throughput drops by more than -max-drop,
// when its allocs/op or B/op grow by more than -max-alloc-growth, or when a
// baseline benchmark disappears from the run without an -allow-missing
// entry declaring the removal intentional.
//
// CI usage (see .github/workflows/ci.yml):
//
//	go test -run '^$' -bench '...' -benchscale quick -benchmem -cpu 1,2,4 . | tee bench.out
//	benchgate -input bench.out -baseline ci/bench-baseline.json \
//	          -out BENCH_$GITHUB_SHA.json -sha $GITHUB_SHA
//
// Refreshing the baseline after an intentional performance change:
//
//	benchgate -input bench.out -update ci/bench-baseline.json -note "runner X"
//
// Removing or renaming a benchmark on purpose:
//
//	benchgate -input bench.out -baseline ci/bench-baseline.json \
//	          -allow-missing 'BenchmarkOld/a-4,BenchmarkOld/b-4'
//
// (and refresh the baseline in the same change so the allowance is
// temporary).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sensorcq/internal/benchgate"
)

func main() {
	var (
		input          = flag.String("input", "-", "benchmark output to parse ('-' for stdin)")
		baseline       = flag.String("baseline", "", "baseline report JSON to gate against (no gating when empty)")
		out            = flag.String("out", "", "write the parsed report JSON to this path")
		update         = flag.String("update", "", "write the parsed report as the new baseline at this path")
		sha            = flag.String("sha", "", "commit SHA recorded in the report")
		note           = flag.String("note", "", "free-form provenance note recorded in the report")
		maxDrop        = flag.Float64("max-drop", 0.25, "maximum tolerated fractional events/sec drop vs the baseline")
		maxAllocGrowth = flag.Float64("max-alloc-growth", 0.5, "maximum tolerated fractional allocs/op and B/op growth vs the baseline (0 disables)")
		allowMissing   = flag.String("allow-missing", "", "comma-separated baseline benchmarks allowed to be absent from this run")
	)
	flag.Parse()
	if err := run(*input, *baseline, *out, *update, *sha, *note, *maxDrop, *maxAllocGrowth, *allowMissing); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(input, baseline, out, update, sha, note string, maxDrop, maxAllocGrowth float64, allowMissing string) error {
	if maxDrop <= 0 || maxDrop >= 1 {
		return fmt.Errorf("benchgate: -max-drop %g out of range (0, 1)", maxDrop)
	}
	if maxAllocGrowth < 0 {
		return fmt.Errorf("benchgate: -max-alloc-growth %g must not be negative", maxAllocGrowth)
	}
	allowed := map[string]bool{}
	for _, name := range strings.Split(allowMissing, ",") {
		if name = strings.TrimSpace(name); name != "" {
			allowed[name] = true
		}
	}
	var in io.Reader = os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	results, err := benchgate.Parse(in)
	if err != nil {
		return err
	}
	report := &benchgate.Report{SHA: sha, Note: note, Results: results}

	writeReport := func(path string) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return benchgate.Encode(f, report)
	}
	if out != "" {
		if err := writeReport(out); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", out, len(results))
	}
	if update != "" {
		if err := writeReport(update); err != nil {
			return err
		}
		fmt.Printf("benchgate: baseline %s updated (%d benchmarks)\n", update, len(results))
	}

	if baseline == "" {
		return nil
	}
	bf, err := os.Open(baseline)
	if err != nil {
		return fmt.Errorf("benchgate: opening baseline: %w", err)
	}
	defer bf.Close()
	base, err := benchgate.Decode(bf)
	if err != nil {
		return err
	}
	regressions := benchgate.Gate(base, results, benchgate.Limits{
		MaxDrop:        maxDrop,
		MaxAllocGrowth: maxAllocGrowth,
		AllowMissing:   allowed,
	})
	throughputGated, allocGated := 0, 0
	for _, r := range base.Results {
		if r.EventsPerSec > 0 {
			throughputGated++
		}
		if _, ok := r.AllocsPerOp(); ok && maxAllocGrowth > 0 {
			allocGated++
		}
	}
	if len(regressions) == 0 {
		fmt.Printf("benchgate: OK — %d benchmarks within -%.0f%% events/sec, %d within +%.0f%% allocs/op of baseline %s\n",
			throughputGated, maxDrop*100, allocGated, maxAllocGrowth*100, base.SHA)
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "benchgate: REGRESSION %s\n", r)
	}
	return fmt.Errorf("benchgate: %d gated comparison(s) failed vs baseline %s",
		len(regressions), base.SHA)
}
