// Command cqgen generates and dumps the synthetic inputs of an experiment —
// the deployment (nodes, links, sensors), the measurement trace and the
// subscription workload — as CSV on stdout or into files. It exists so that
// the exact inputs replayed by the benchmarks can be inspected or fed into
// external tools.
//
// Usage:
//
//	cqgen -what trace -rounds 20 > trace.csv
//	cqgen -what topology -nodes 100 -sensors 50 -groups 10 > topology.csv
//	cqgen -what workload -subs 300 > subs.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sensorcq"
)

func main() {
	var (
		what     = flag.String("what", "trace", "what to dump: topology, trace or workload")
		nodes    = flag.Int("nodes", 60, "total processing nodes")
		sensors  = flag.Int("sensors", 50, "sensor nodes")
		groups   = flag.Int("groups", 10, "sensor groups")
		rounds   = flag.Int("rounds", 20, "measurement rounds")
		subs     = flag.Int("subs", 200, "number of subscriptions")
		minAttrs = flag.Int("min-attrs", 3, "minimum attributes per subscription")
		maxAttrs = flag.Int("max-attrs", 5, "maximum attributes per subscription")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(w, *what, *nodes, *sensors, *groups, *rounds, *subs, *minAttrs, *maxAttrs, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(w io.Writer, what string, nodes, sensors, groups, rounds, subs, minAttrs, maxAttrs int, seed int64) error {
	dep, err := sensorcq.GenerateDeployment(sensorcq.DeploymentConfig{
		TotalNodes:  nodes,
		SensorNodes: sensors,
		Groups:      groups,
		Attributes:  sensorcq.DefaultAttributes(),
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	switch what {
	case "topology":
		return dumpTopology(w, dep)
	case "trace":
		streamer, err := sensorcq.NewTraceStreamer(dep, sensorcq.TraceConfig{Rounds: rounds, Seed: seed + 1})
		if err != nil {
			return err
		}
		return dumpTrace(w, streamer)
	case "workload":
		// The workload generator only needs the trace's summary statistics,
		// so stream the rounds through without retaining any of them.
		streamer, err := sensorcq.NewTraceStreamer(dep, sensorcq.TraceConfig{Rounds: rounds, Seed: seed + 1})
		if err != nil {
			return err
		}
		for streamer.NextRound() != nil {
		}
		stream, err := sensorcq.NewWorkloadStream(dep, streamer.Stats(), streamer.RoundInterval(), sensorcq.WorkloadConfig{
			Count: subs, MinAttrs: minAttrs, MaxAttrs: maxAttrs, Seed: seed + 2,
		})
		if err != nil {
			return err
		}
		return dumpWorkload(w, stream)
	default:
		return fmt.Errorf("unknown -what %q (want topology, trace or workload)", what)
	}
}

func dumpTopology(w io.Writer, dep *sensorcq.Deployment) error {
	if _, err := fmt.Fprintln(w, "record,field1,field2,field3,field4"); err != nil {
		return err
	}
	g := dep.Graph
	for n := 0; n < g.NumNodes(); n++ {
		for _, nb := range g.Neighbors(sensorcq.NodeID(n)) {
			if int(nb) > n {
				if _, err := fmt.Fprintf(w, "edge,%d,%d,,\n", n, nb); err != nil {
					return err
				}
			}
		}
	}
	for _, s := range dep.Sensors {
		if _, err := fmt.Fprintf(w, "sensor,%s,%s,%d,\"%g;%g\"\n",
			s.ID, s.Attr, dep.SensorHost[s.ID], s.Location.X, s.Location.Y); err != nil {
			return err
		}
	}
	return nil
}

// dumpTrace writes the trace round by round as the streamer produces it, so
// the dump runs in constant memory regardless of the round count.
func dumpTrace(w io.Writer, streamer *sensorcq.TraceStreamer) error {
	if _, err := fmt.Fprintln(w, "seq,sensor,attribute,value,time"); err != nil {
		return err
	}
	for {
		round := streamer.NextRound()
		if round == nil {
			return nil
		}
		for _, ev := range round {
			if _, err := fmt.Fprintf(w, "%d,%s,%s,%.3f,%d\n", ev.Seq, ev.Sensor, ev.Attr, ev.Value, ev.Time); err != nil {
				return err
			}
		}
	}
}

// dumpWorkload writes each subscription as the stream produces it.
func dumpWorkload(w io.Writer, stream *sensorcq.WorkloadStream) error {
	if _, err := fmt.Fprintln(w, "subscription,node,group,attributes,filters"); err != nil {
		return err
	}
	for stream.Next() {
		p := stream.Placed()
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%q\n",
			p.Sub.ID, p.Node, p.Group, p.Sub.NumFilters(), p.Sub.String()); err != nil {
			return err
		}
	}
	return stream.Err()
}
