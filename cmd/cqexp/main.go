// Command cqexp reproduces the paper's evaluation: it runs the four
// experimental scenarios (small scale, medium scale, large scale #1 and #2)
// for every approach and prints, for each one, the subscription-load series
// (Figs. 4, 6, 8, 10), the event-load series (Figs. 5, 7, 9, 11) and the
// Filter-Split-Forward recall (Fig. 12), plus a final-point summary with the
// relative traffic reduction of Filter-Split-Forward.
//
// Usage:
//
//	cqexp                      # all scenarios at the default (reduced) scale
//	cqexp -scenario medium     # one scenario
//	cqexp -scale full          # the paper's full workload (slow)
//	cqexp -scale quick         # smoke-test scale
//	cqexp -csv results.csv     # also write every series as CSV
//	cqexp -concurrent -delivery pipelined        # parallel round-by-round replay
//	cqexp -concurrent -delivery windowed -lag 2  # overlap up to 3 rounds in flight
//	cqexp -concurrent -lagsweep 0,1,2,4          # windowed lag comparison table
//	cqexp -aggsweep 8,16,32,64                   # aggregate error-vs-traffic table
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sensorcq/internal/experiment"
	"sensorcq/internal/netsim"
	"sensorcq/internal/report"
)

func main() {
	var (
		scenarioFlag = flag.String("scenario", "all", "scenario to run: small, medium, large-net, large-src or all")
		scaleFlag    = flag.String("scale", "default", "workload scale: quick, default or full")
		csvPath      = flag.String("csv", "", "also append all series to this CSV file")
		seed         = flag.Int64("seed", 0, "override the scenario seed (0 keeps the default)")
		noRecall     = flag.Bool("no-recall", false, "skip the oracle-based recall computation")
		quiet        = flag.Bool("quiet", false, "suppress per-batch progress lines")
		concurrent   = flag.Bool("concurrent", false, "run each approach on the concurrent engine (pooled work-stealing scheduler)")
		workers      = flag.Int("workers", 0, "scheduler workers of the concurrent engine (0 = GOMAXPROCS; requires -concurrent)")
		delivery     = flag.String("delivery", "quiescent",
			"replay delivery semantics: quiescent (drain after every event), pipelined (drain after every round) or windowed (overlap up to -lag+1 rounds)")
		lag   = flag.Int("lag", 0, "cross-round pipelining bound of the windowed delivery mode (requires -delivery windowed)")
		churn = flag.Float64("churn", 0,
			"fraction of each batch's subscriptions to retract after the batch's rounds replayed (0..1); later batches run against the survivors")
		lagSweep = flag.String("lagsweep", "",
			"comma-separated windowed lag settings (e.g. 0,1,2,4): run each scenario's Filter-Split-Forward replay once per lag on one shared workload and print a comparison table instead of the figure series; use instead of -delivery/-lag (the sweep is always windowed)")
		aggSweep = flag.String("aggsweep", "",
			"comma-separated q-digest compression settings k (e.g. 8,16,32,64): replay one windowed quantile query per scenario once per k plus once with the exact ship-every-reading baseline and print an error-vs-traffic table instead of the figure series")
		aggWindow   = flag.Int("aggwindow", 4, "tumbling window width in rounds of the -aggsweep query")
		aggQuantile = flag.Float64("aggquantile", 0.5, "rank fraction of the -aggsweep quantile query")
	)
	flag.Parse()

	mode, err := netsim.ParseDeliveryMode(*delivery)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invalid -delivery %q: valid modes are %s\n",
			*delivery, strings.Join(netsim.DeliveryModeNames(), ", "))
		flag.Usage()
		os.Exit(2)
	}
	if *lag < 0 || (*lag > 0 && mode != netsim.Windowed) {
		fmt.Fprintf(os.Stderr, "invalid -lag %d: it must be >= 0 and requires -delivery windowed\n", *lag)
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 || (*workers > 0 && !*concurrent) {
		fmt.Fprintf(os.Stderr, "invalid -workers %d: it must be >= 0 and requires -concurrent\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	if *churn < 0 || *churn > 1 {
		fmt.Fprintf(os.Stderr, "invalid -churn %g: it must be in [0,1]\n", *churn)
		flag.Usage()
		os.Exit(2)
	}
	scenarios, err := selectScenarios(*scenarioFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *aggSweep != "" {
		ks, err := parseKs(*aggSweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "invalid -aggsweep %q: %v\n", *aggSweep, err)
			flag.Usage()
			os.Exit(2)
		}
		for _, s := range scenarios {
			s = applyScale(s, *scaleFlag)
			if *seed != 0 {
				s.Seed = *seed
			}
			if err := runAggSweep(s, ks, *aggWindow, *aggQuantile, *concurrent, *workers); err != nil {
				fmt.Fprintf(os.Stderr, "aggregate sweep %s: %v\n", s.Name, err)
				os.Exit(1)
			}
		}
		return
	}

	if *lagSweep != "" {
		lags, err := parseLags(*lagSweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "invalid -lagsweep %q: %v\n", *lagSweep, err)
			flag.Usage()
			os.Exit(2)
		}
		for _, s := range scenarios {
			s = applyScale(s, *scaleFlag)
			if *seed != 0 {
				s.Seed = *seed
			}
			if err := runLagSweep(s, lags, *concurrent, *workers, *noRecall, *churn); err != nil {
				fmt.Fprintf(os.Stderr, "lag sweep %s: %v\n", s.Name, err)
				os.Exit(1)
			}
		}
		return
	}

	var csvFile *os.File
	if *csvPath != "" {
		csvFile, err = os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *csvPath, err)
			os.Exit(1)
		}
		defer csvFile.Close()
	}

	for _, s := range scenarios {
		s = applyScale(s, *scaleFlag)
		if *seed != 0 {
			s.Seed = *seed
		}
		opts := experiment.DefaultOptions()
		opts.ComputeRecall = !*noRecall
		opts.Concurrent = *concurrent
		opts.Workers = *workers
		opts.Delivery = mode
		opts.Lag = *lag
		opts.Churn = *churn
		if !*quiet {
			opts.Progress = func(format string, args ...interface{}) {
				fmt.Printf(format+"\n", args...)
			}
		}
		engine := ""
		if *concurrent {
			engine = fmt.Sprintf(" [concurrent, %d workers]", netsim.EffectiveWorkers(*workers, s.TotalNodes))
		}
		fmt.Printf("=== %s (%s) — %d queries in %d batches, %d rounds/batch%s ===\n",
			s.Name, s.Description, s.TotalSubscriptions(), s.Batches, s.RoundsPerBatch, engine)
		start := time.Now()
		res, err := experiment.Run(s, &opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "running %s: %v\n", s.Name, err)
			os.Exit(1)
		}
		fmt.Printf("--- completed in %s ---\n\n", time.Since(start).Round(time.Millisecond))
		if err := report.WriteAll(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if csvFile != nil {
			if err := report.WriteCSV(csvFile, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// parseLags parses the -lagsweep flag: a comma-separated list of
// non-negative windowed lag settings.
func parseLags(spec string) ([]int, error) {
	var lags []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("lag %q is not an integer", part)
		}
		if n < 0 || n > netsim.MaxReplayLag {
			return nil, fmt.Errorf("lag %d outside 0..%d", n, netsim.MaxReplayLag)
		}
		lags = append(lags, n)
	}
	if len(lags) == 0 {
		return nil, fmt.Errorf("no lag settings given")
	}
	return lags, nil
}

// runLagSweep replays one scenario's Filter-Split-Forward workload once per
// windowed lag setting — every lag against the identical generated workload —
// and prints a comparison table: wall-clock and throughput per lag, plus the
// paper's load metrics and recall, which must not change with the lag (the
// windowed mode trades latency semantics for parallelism, not results; the
// table flags any deviation from the first lag's totals).
func runLagSweep(s experiment.Scenario, lags []int, concurrent bool, workers int, noRecall bool, churn float64) error {
	w, err := experiment.BuildWorkload(s)
	if err != nil {
		return err
	}
	events := 0
	for _, segment := range w.Segments {
		events += len(segment)
	}
	engine := "sequential engine"
	if concurrent {
		engine = fmt.Sprintf("concurrent engine, %d workers", netsim.EffectiveWorkers(workers, w.Deployment.Graph.NumNodes()))
	}
	fmt.Printf("=== %s windowed lag sweep (%s, filter-split-forward) — %d queries, %d events ===\n",
		s.Name, engine, s.TotalSubscriptions(), events)
	fmt.Printf("%-6s %12s %12s %10s %12s %8s %10s\n",
		"lag", "wall-clock", "events/sec", "sub-load", "event-load", "recall", "conformant")

	type sweepPoint struct {
		subLoad, eventLoad int64
		recall             float64
	}
	optsFor := func(lag int) experiment.Options {
		opts := experiment.DefaultOptions()
		opts.Approaches = []experiment.ApproachID{experiment.FilterSplitForward}
		opts.ComputeRecall = !noRecall
		opts.Concurrent = concurrent
		opts.Workers = workers
		opts.Delivery = netsim.Windowed
		opts.Lag = lag
		opts.Churn = churn
		return opts
	}
	if !noRecall {
		// The oracle ground truth is computed lazily and cached on the
		// workload; pay for it in an untimed warm-up run so the first lag's
		// wall-clock is comparable with the rest.
		if _, err := experiment.RunOnWorkload(w, optsFor(lags[0])); err != nil {
			return err
		}
	}
	var baseline *sweepPoint
	for _, lag := range lags {
		opts := optsFor(lag)
		start := time.Now()
		res, err := experiment.RunOnWorkload(w, opts)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		final := res.Approaches[0].Final()
		pt := sweepPoint{subLoad: final.SubscriptionLoad, eventLoad: final.EventLoad, recall: final.Recall}
		conformant := "-"
		if baseline == nil {
			baseline = &pt
		} else if pt == *baseline {
			conformant = "yes"
		} else {
			conformant = "NO"
		}
		recallCol := "n/a"
		if !noRecall {
			recallCol = fmt.Sprintf("%.3f", pt.recall)
		}
		fmt.Printf("%-6d %12s %12.0f %10d %12d %8s %10s\n",
			lag, elapsed.Round(time.Millisecond), float64(events)/elapsed.Seconds(),
			pt.subLoad, pt.eventLoad, recallCol, conformant)
	}
	fmt.Println()
	return nil
}

// parseKs parses the -aggsweep flag: a comma-separated list of positive
// q-digest compression settings.
func parseKs(spec string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("k %q is not an integer", part)
		}
		if n < 1 {
			return nil, fmt.Errorf("k %d must be >= 1", n)
		}
		ks = append(ks, n)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("no compression settings given")
	}
	return ks, nil
}

// runAggSweep runs the in-network aggregation error-vs-traffic experiment
// for one scenario and prints the comparison table: the exact
// ship-every-reading baseline's traffic first, then one line per q-digest
// compression setting with its error bound, the observed per-window rank
// errors and the upstream partial-aggregate traffic.
func runAggSweep(s experiment.Scenario, ks []int, window int, quantile float64, concurrent bool, workers int) error {
	res, err := experiment.RunAggregateSweep(experiment.AggregateSweepConfig{
		Scenario:     s,
		WindowRounds: window,
		Quantile:     quantile,
		Ks:           ks,
		Concurrent:   concurrent,
		Workers:      workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("=== %s aggregate error-vs-traffic sweep — φ=%.2f over %s, window %d rounds, %d readings, tree depth %d ===\n",
		s.Name, quantile, res.Attr, window, res.Readings, res.TreeDepth)
	fmt.Printf("%-10s %10s %10s %10s %12s %14s\n",
		"setting", "ε bound", "max err", "mean err", "partials", "bytes-up")
	fmt.Printf("%-10s %10s %10s %10s %12d %14d\n",
		"exact", "0", "0", "0", res.ExactLoad, res.ExactBytes)
	for _, p := range res.Points {
		fmt.Printf("%-10s %10.4f %10.4f %10.4f %12d %14d\n",
			fmt.Sprintf("k=%d", p.K), p.Epsilon, p.MaxRankError, p.MeanRankError, p.PartialLoad, p.PartialBytes)
	}
	fmt.Println()
	return nil
}

func selectScenarios(name string) ([]experiment.Scenario, error) {
	switch strings.ToLower(name) {
	case "all", "":
		return experiment.AllScenarios(), nil
	case "small", "small-scale":
		return []experiment.Scenario{experiment.SmallScale()}, nil
	case "medium", "medium-scale":
		return []experiment.Scenario{experiment.MediumScale()}, nil
	case "large-net", "large-scale-network":
		return []experiment.Scenario{experiment.LargeScaleNetwork()}, nil
	case "large-src", "large-scale-sources":
		return []experiment.Scenario{experiment.LargeScaleSources()}, nil
	default:
		return nil, fmt.Errorf("unknown scenario %q (want small, medium, large-net, large-src or all)", name)
	}
}

// applyScale maps the -scale flag onto a workload size. The "default" scale
// keeps the paper's network shapes and batch structure but reduces the batch
// size and per-batch rounds so that a full sweep finishes in minutes on a
// laptop; "full" is the paper's exact workload.
func applyScale(s experiment.Scenario, scale string) experiment.Scenario {
	switch strings.ToLower(scale) {
	case "quick":
		return experiment.QuickScale(s)
	case "full":
		return s
	default: // "default"
		return s.Scale(1, 0.4, 0.5)
	}
}
