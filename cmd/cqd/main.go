// Command cqd is the continuous-query daemon: it builds a sensorcq.System
// and serves it over HTTP — a JSON control plane (register/list/retract
// subscriptions, ingest readings, metrics, health) and an SSE data plane
// streaming each subscription's complex events. See internal/server for the
// endpoint reference.
//
// Usage:
//
//	cqd -demo                                # six-node walkthrough network
//	cqd -nodes 60 -sensors 50 -groups 10     # generated SensorScope-like net
//	cqd -approach centralized -concurrent -delivery pipelined
//	cqd -addr 127.0.0.1:8080 -drain-timeout 10s
//
// Register, ingest and stream with curl:
//
//	curl -X POST localhost:7007/subscriptions -d '{"id":"mild-and-dry","delta_t":30,
//	     "sensors":[{"sensor":"a","min":50,"max":80},{"sensor":"b","min":10,"max":30}]}'
//	curl -N localhost:7007/subscriptions/mild-and-dry/stream &
//	curl -X POST localhost:7007/events -d '{"sensor":"a","value":62,"time":100}'
//
// On SIGINT/SIGTERM the daemon drains: new mutations get 503, in-flight
// rounds finish propagating, every stream receives an "event: end" frame,
// and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sensorcq"
	"sensorcq/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7007", "listen address of both HTTP planes")
		approach     = flag.String("approach", string(sensorcq.FilterSplitForward), "query-processing approach")
		concurrent   = flag.Bool("concurrent", false, "run one goroutine per processing node")
		delivery     = flag.String("delivery", "quiescent", "replay delivery semantics for batch ingestion")
		lag          = flag.Int("lag", 0, "extra in-flight rounds in windowed delivery")
		demo         = flag.Bool("demo", false, "serve the six-node walkthrough network (sensors a, b, c) instead of a generated deployment")
		nodes        = flag.Int("nodes", 60, "total processing nodes of the generated deployment")
		sensors      = flag.Int("sensors", 50, "sensor nodes of the generated deployment")
		groups       = flag.Int("groups", 10, "sensor groups of the generated deployment")
		seed         = flag.Int64("seed", 1, "deployment and set-filter seed")
		node         = flag.Int("node", 0, "default registration node for subscription specs without one")
		drainTimeout = flag.Duration("drain-timeout", server.DefaultDrainTimeout, "bound on the shutdown drain")
	)
	flag.Parse()
	if err := run(*addr, *approach, *concurrent, *delivery, *lag, *demo, *nodes, *sensors, *groups, *seed, *node, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, approach string, concurrent bool, delivery string, lag int, demo bool, nodes, sensors, groups int, seed int64, defaultNode int, drainTimeout time.Duration) error {
	dep, err := buildDeployment(demo, nodes, sensors, groups, seed)
	if err != nil {
		return err
	}
	mode, err := sensorcq.ParseDeliveryMode(delivery)
	if err != nil {
		return fmt.Errorf("cqd: %w (valid: %v)", err, sensorcq.DeliveryModeNames())
	}
	sys, err := sensorcq.NewSystem(dep, sensorcq.Config{
		Approach:   sensorcq.Approach(approach),
		Seed:       seed,
		Concurrent: concurrent,
		Delivery:   mode,
		Lag:        lag,
	})
	if err != nil {
		return err
	}

	srv, err := server.New(sys, server.Config{
		DefaultNode:  sensorcq.NodeID(defaultNode),
		DrainTimeout: drainTimeout,
	})
	if err != nil {
		sys.Close()
		return err
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("cqd: serving %s on http://%s (%d nodes, %d sensors)",
			sys.Approach(), addr, dep.Graph.NumNodes(), len(dep.Sensors))
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		sys.Close()
		return err
	case <-ctx.Done():
	}

	log.Printf("cqd: draining (bound %s)", drainTimeout)
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Printf("cqd: drain aborted: %v", err)
	}
	sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("cqd: shut down cleanly")
	return nil
}

// buildDeployment returns either the examples' six-node walkthrough network
// (known sensors a, b, c — handy for smoke tests) or a generated
// SensorScope-like deployment.
func buildDeployment(demo bool, nodes, sensors, groups int, seed int64) (*sensorcq.Deployment, error) {
	if demo {
		return sensorcq.NewTopology(6).
			Link(5, 4).Link(4, 3).Link(3, 0).Link(3, 1).Link(4, 2).
			PlaceSensor(0, sensorcq.Sensor{ID: "a", Attr: sensorcq.AmbientTemperature}).
			PlaceSensor(1, sensorcq.Sensor{ID: "b", Attr: sensorcq.RelativeHumidity}).
			PlaceSensor(2, sensorcq.Sensor{ID: "c", Attr: sensorcq.WindSpeed}).
			Build()
	}
	return sensorcq.GenerateDeployment(sensorcq.DeploymentConfig{
		TotalNodes:  nodes,
		SensorNodes: sensors,
		Groups:      groups,
		Attributes:  sensorcq.DefaultAttributes(),
		Seed:        seed,
	})
}
