package topology

import (
	"fmt"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/stats"
)

// DeploymentConfig describes a SensorScope-like deployment: TotalNodes
// processing nodes, SensorNodes of which host exactly one sensor each, the
// sensors grouped behind Groups base stations (one hub node per group), with
// attribute types assigned round-robin within each group. The remaining
// nodes are relay nodes; subscriptions are attached to them by the workload
// generator.
//
// This mirrors the paper's experiment setups, e.g. the small-scale
// experiment uses TotalNodes=60, SensorNodes=50, Groups=10 and the default
// five attribute types.
type DeploymentConfig struct {
	TotalNodes  int
	SensorNodes int
	Groups      int
	Attributes  []model.AttributeType
	// GroupSpacing is the distance between neighbouring group centres in
	// location units (default 1000).
	GroupSpacing float64
	// GroupRadius is the spread of sensors around their group centre
	// (default 50).
	GroupRadius float64
	// Seed drives node placement and backbone wiring.
	Seed int64
}

// Validate checks the configuration for consistency.
func (c DeploymentConfig) Validate() error {
	if c.TotalNodes <= 0 {
		return fmt.Errorf("topology: TotalNodes must be positive, got %d", c.TotalNodes)
	}
	if c.SensorNodes <= 0 || c.SensorNodes >= c.TotalNodes {
		return fmt.Errorf("topology: SensorNodes must be in (0, TotalNodes), got %d of %d", c.SensorNodes, c.TotalNodes)
	}
	if c.Groups <= 0 || c.Groups > c.SensorNodes {
		return fmt.Errorf("topology: Groups must be in (0, SensorNodes], got %d", c.Groups)
	}
	if c.SensorNodes+c.Groups > c.TotalNodes {
		return fmt.Errorf("topology: need at least %d nodes for %d sensors plus %d group hubs, have %d",
			c.SensorNodes+c.Groups, c.SensorNodes, c.Groups, c.TotalNodes)
	}
	if len(c.Attributes) == 0 {
		return fmt.Errorf("topology: at least one attribute type required")
	}
	return nil
}

// Deployment is a generated network: the processing-node graph plus the
// mapping between nodes and the sensors they host.
type Deployment struct {
	Graph *Graph
	// Sensors lists every sensor in the deployment.
	Sensors []model.Sensor
	// SensorHost maps a sensor to the node it is attached to.
	SensorHost map[model.SensorID]NodeID
	// NodeSensors maps a node to the sensors attached to it (nil for
	// relay nodes).
	NodeSensors map[NodeID][]model.Sensor
	// GroupHubs lists the base-station hub node of each group.
	GroupHubs []NodeID
	// GroupMembers lists the sensor nodes of each group.
	GroupMembers [][]NodeID
	// GroupRegions is the bounding region of each group's sensors, grown a
	// little so that abstract subscriptions targeting the group match.
	GroupRegions []geom.Region
	// RelayNodes lists the nodes with no sensors attached (hub nodes
	// included); the workload generator places users on these.
	RelayNodes []NodeID
	// UserNodes lists relay nodes that are not group hubs; when non-empty
	// the workload generator prefers these for placing subscribers.
	UserNodes []NodeID
}

// IsSensorNode reports whether the node hosts at least one sensor.
func (d *Deployment) IsSensorNode(n NodeID) bool { return len(d.NodeSensors[n]) > 0 }

// SensorsOfAttr returns all sensors of the given attribute type.
func (d *Deployment) SensorsOfAttr(a model.AttributeType) []model.Sensor {
	var out []model.Sensor
	for _, s := range d.Sensors {
		if s.Attr == a {
			out = append(out, s)
		}
	}
	return out
}

// GenerateDeployment builds a deterministic deployment from the config.
//
// Layout: group hubs are placed on a grid with GroupSpacing between
// neighbouring centres; each group's sensor nodes attach directly to its hub
// and are placed within GroupRadius of the centre. Hubs and the remaining
// relay nodes are wired into a random backbone tree, so the overall graph is
// a tree (acyclic, connected) as the system model requires.
func GenerateDeployment(cfg DeploymentConfig) (*Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	spacing := cfg.GroupSpacing
	if spacing <= 0 {
		spacing = 1000
	}
	radius := cfg.GroupRadius
	if radius <= 0 {
		radius = 50
	}

	g := NewGraph(cfg.TotalNodes)
	dep := &Deployment{
		Graph:       g,
		SensorHost:  map[model.SensorID]NodeID{},
		NodeSensors: map[NodeID][]model.Sensor{},
	}

	// Node ID allocation:
	//   [0, SensorNodes)                     sensor nodes
	//   [SensorNodes, SensorNodes+Groups)    group hub nodes
	//   [SensorNodes+Groups, TotalNodes)     pure relay nodes
	sensorBase := 0
	hubBase := cfg.SensorNodes
	relayBase := cfg.SensorNodes + cfg.Groups

	// Grid of group centres.
	cols := 1
	for cols*cols < cfg.Groups {
		cols++
	}
	groupCenter := make([]geom.Point2D, cfg.Groups)
	for gi := 0; gi < cfg.Groups; gi++ {
		row := gi / cols
		col := gi % cols
		groupCenter[gi] = geom.Point2D{X: float64(col) * spacing, Y: float64(row) * spacing}
	}

	// Distribute sensor nodes over groups as evenly as possible. Following
	// the paper's emulation of the SensorScope deployment ("grouping nodes
	// with sensors from the same base station in a vicinity, such that they
	// are neighbors"), the sensor nodes of a group form a chain hanging off
	// the group's hub: hub — s1 — s2 — ... This gives subscriptions depth
	// below the point where user paths converge, which is where the
	// filter/split phases save forwarding hops.
	perGroup := cfg.SensorNodes / cfg.Groups
	extra := cfg.SensorNodes % cfg.Groups
	next := sensorBase
	dep.GroupHubs = make([]NodeID, cfg.Groups)
	dep.GroupMembers = make([][]NodeID, cfg.Groups)
	dep.GroupRegions = make([]geom.Region, cfg.Groups)
	for gi := 0; gi < cfg.Groups; gi++ {
		hub := NodeID(hubBase + gi)
		dep.GroupHubs[gi] = hub
		count := perGroup
		if gi < extra {
			count++
		}
		region := geom.RegionAround(groupCenter[gi], radius*1.5)
		dep.GroupRegions[gi] = region
		// Shuffle the attribute order along the chain so that different
		// groups expose their sensors in different orders.
		order := rng.Perm(count)
		prev := hub
		for k := 0; k < count; k++ {
			node := NodeID(next)
			next++
			dep.GroupMembers[gi] = append(dep.GroupMembers[gi], node)
			if err := g.AddEdge(prev, node); err != nil {
				return nil, err
			}
			prev = node
			attr := cfg.Attributes[order[k]%len(cfg.Attributes)]
			loc := geom.Point2D{
				X: groupCenter[gi].X + rng.Range(-radius, radius),
				Y: groupCenter[gi].Y + rng.Range(-radius, radius),
			}
			sensor := model.Sensor{
				ID:       model.SensorID(fmt.Sprintf("g%02d-%s-%d", gi, attr, k/len(cfg.Attributes))),
				Attr:     attr,
				Location: loc,
			}
			dep.Sensors = append(dep.Sensors, sensor)
			dep.SensorHost[sensor.ID] = node
			dep.NodeSensors[node] = append(dep.NodeSensors[node], sensor)
		}
	}

	// Backbone: pure relay nodes form a random tree; every hub attaches to a
	// random backbone node. When there are no pure relay nodes the hubs form
	// the backbone themselves.
	numRelays := cfg.TotalNodes - relayBase
	if numRelays > 0 {
		// Random tree over relay nodes (attach each to a random earlier one).
		for i := 1; i < numRelays; i++ {
			parent := NodeID(relayBase + rng.Intn(i))
			if err := g.AddEdge(NodeID(relayBase+i), parent); err != nil {
				return nil, err
			}
		}
		for gi := 0; gi < cfg.Groups; gi++ {
			attach := NodeID(relayBase + rng.Intn(numRelays))
			if err := g.AddEdge(dep.GroupHubs[gi], attach); err != nil {
				return nil, err
			}
		}
	} else {
		// Chain the hubs.
		for gi := 1; gi < cfg.Groups; gi++ {
			if err := g.AddEdge(dep.GroupHubs[gi-1], dep.GroupHubs[gi]); err != nil {
				return nil, err
			}
		}
	}

	for n := 0; n < cfg.TotalNodes; n++ {
		id := NodeID(n)
		if !dep.IsSensorNode(id) {
			dep.RelayNodes = append(dep.RelayNodes, id)
			if n >= relayBase {
				dep.UserNodes = append(dep.UserNodes, id)
			}
		}
	}
	if len(dep.UserNodes) == 0 {
		dep.UserNodes = dep.GroupHubs
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: generated graph invalid: %w", err)
	}
	return dep, nil
}
