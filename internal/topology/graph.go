// Package topology models the processing-node network of Section IV-B: an
// acyclic graph (a tree) of processing nodes, some of which have sensors
// attached (sensor nodes) while the others only relay data. It provides the
// generator that emulates the paper's SensorScope-like deployments (groups of
// sensors behind base stations) and the routing primitives the centralized
// baseline needs (shortest paths, centre election).
package topology

import (
	"errors"
	"fmt"
	"slices"
)

// NodeID identifies a processing node. IDs are dense integers in [0, N).
type NodeID int

// Graph is an undirected graph over nodes 0..N-1. The protocols in this
// library require it to be connected and acyclic (a tree), which Validate
// checks.
type Graph struct {
	n   int
	adj [][]NodeID
}

// NewGraph returns an edgeless graph with n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]NodeID, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// AddEdge connects a and b. Adding an existing edge or a self-loop is an
// error.
func (g *Graph) AddEdge(a, b NodeID) error {
	if a == b {
		return fmt.Errorf("topology: self-loop on node %d", a)
	}
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("topology: edge (%d,%d) references unknown node", a, b)
	}
	if g.HasEdge(a, b) {
		return fmt.Errorf("topology: duplicate edge (%d,%d)", a, b)
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	return nil
}

// HasEdge reports whether a and b are directly connected.
func (g *Graph) HasEdge(a, b NodeID) bool {
	if !g.valid(a) || !g.valid(b) {
		return false
	}
	for _, x := range g.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

// Neighbors returns the neighbours of n in sorted order. The returned slice
// must not be modified.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	if !g.valid(n) {
		return nil
	}
	slices.Sort(g.adj[n])
	return g.adj[n]
}

// Degree returns the number of neighbours of n.
func (g *Graph) Degree(n NodeID) int {
	if !g.valid(n) {
		return 0
	}
	return len(g.adj[n])
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < g.n }

// Validate checks that the graph is connected and acyclic (|E| == |V|-1 and
// every node reachable from node 0), which is what the paper's system model
// assumes.
func (g *Graph) Validate() error {
	if g.n == 0 {
		return errors.New("topology: empty graph")
	}
	if g.NumEdges() != g.n-1 {
		return fmt.Errorf("topology: graph with %d nodes and %d edges is not a tree", g.n, g.NumEdges())
	}
	dist := g.BFS(0)
	for i, d := range dist {
		if d < 0 {
			return fmt.Errorf("topology: node %d not reachable from node 0", i)
		}
	}
	return nil
}

// BFS returns the hop distance from src to every node (-1 for unreachable).
func (g *Graph) BFS(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if !g.valid(src) {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// Path returns the unique path from a to b (inclusive of both endpoints).
// It returns nil when no path exists.
func (g *Graph) Path(a, b NodeID) []NodeID {
	if !g.valid(a) || !g.valid(b) {
		return nil
	}
	if a == b {
		return []NodeID{a}
	}
	parent := make([]NodeID, g.n)
	for i := range parent {
		parent[i] = -1
	}
	parent[a] = a
	queue := []NodeID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b {
			break
		}
		for _, nb := range g.adj[cur] {
			if parent[nb] < 0 {
				parent[nb] = cur
				queue = append(queue, nb)
			}
		}
	}
	if parent[b] < 0 {
		return nil
	}
	var rev []NodeID
	for cur := b; ; cur = parent[cur] {
		rev = append(rev, cur)
		if cur == a {
			break
		}
	}
	// reverse
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// NextHop returns the first hop on the path from a towards b, or -1 when no
// path exists or a == b.
func (g *Graph) NextHop(a, b NodeID) NodeID {
	p := g.Path(a, b)
	if len(p) < 2 {
		return -1
	}
	return p[1]
}

// Center returns the node with the minimum total hop distance to all other
// nodes — the paper's choice of central node for the centralized baseline.
// Ties are broken towards the smaller node ID.
func (g *Graph) Center() NodeID {
	best := NodeID(0)
	bestTotal := -1
	for n := 0; n < g.n; n++ {
		dist := g.BFS(NodeID(n))
		total := 0
		for _, d := range dist {
			if d < 0 {
				total = 1 << 30
				break
			}
			total += d
		}
		if bestTotal < 0 || total < bestTotal {
			bestTotal = total
			best = NodeID(n)
		}
	}
	return best
}

// Eccentricity returns the maximum hop distance from n to any other node.
func (g *Graph) Eccentricity(n NodeID) int {
	max := 0
	for _, d := range g.BFS(n) {
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the maximum eccentricity over all nodes.
func (g *Graph) Diameter() int {
	max := 0
	for n := 0; n < g.n; n++ {
		if e := g.Eccentricity(NodeID(n)); e > max {
			max = e
		}
	}
	return max
}
