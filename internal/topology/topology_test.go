package topology

import (
	"testing"
	"testing/quick"

	"sensorcq/internal/model"
)

func line(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(NodeID(i-1), NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	if g.NumNodes() != 4 || g.NumEdges() != 0 {
		t.Fatal("fresh graph should be edgeless")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(1) != 3 || g.Degree(0) != 1 {
		t.Error("Degree wrong")
	}
	nb := g.Neighbors(1)
	if len(nb) != 3 || nb[0] != 0 || nb[1] != 2 || nb[2] != 3 {
		t.Errorf("Neighbors(1) = %v", nb)
	}
	if g.Neighbors(99) != nil || g.Degree(99) != 0 {
		t.Error("out-of-range nodes should be handled gracefully")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("star graph should validate: %v", err)
	}
}

func TestGraphAddEdgeErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self loop should fail")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Error("unknown node should fail")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge should fail")
	}
}

func TestGraphValidateRejectsNonTrees(t *testing.T) {
	if err := NewGraph(0).Validate(); err == nil {
		t.Error("empty graph should fail validation")
	}
	// Disconnected.
	g := NewGraph(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 3)
	if err := g.Validate(); err == nil {
		t.Error("disconnected graph should fail validation")
	}
	// Cyclic.
	c := NewGraph(3)
	_ = c.AddEdge(0, 1)
	_ = c.AddEdge(1, 2)
	_ = c.AddEdge(2, 0)
	if err := c.Validate(); err == nil {
		t.Error("cyclic graph should fail validation")
	}
}

func TestBFSAndPath(t *testing.T) {
	g := line(t, 5)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Errorf("dist[%d] = %d, want %d", i, d, i)
		}
	}
	p := g.Path(0, 4)
	if len(p) != 5 || p[0] != 0 || p[4] != 4 {
		t.Errorf("Path(0,4) = %v", p)
	}
	if got := g.Path(2, 2); len(got) != 1 || got[0] != 2 {
		t.Errorf("Path to self = %v", got)
	}
	if g.Path(0, 99) != nil {
		t.Error("path to unknown node should be nil")
	}
	if g.NextHop(0, 4) != 1 || g.NextHop(4, 0) != 3 {
		t.Error("NextHop wrong")
	}
	if g.NextHop(2, 2) != -1 {
		t.Error("NextHop to self should be -1")
	}
}

func TestCenterEccentricityDiameter(t *testing.T) {
	g := line(t, 5)
	if c := g.Center(); c != 2 {
		t.Errorf("centre of a 5-node line = %d, want 2", c)
	}
	if g.Eccentricity(0) != 4 || g.Eccentricity(2) != 2 {
		t.Error("eccentricity wrong")
	}
	if g.Diameter() != 4 {
		t.Errorf("diameter = %d, want 4", g.Diameter())
	}
	// Star: centre is the hub.
	star := NewGraph(4)
	_ = star.AddEdge(0, 1)
	_ = star.AddEdge(0, 2)
	_ = star.AddEdge(0, 3)
	if star.Center() != 0 {
		t.Error("centre of a star should be the hub")
	}
}

func TestDeploymentConfigValidate(t *testing.T) {
	good := DeploymentConfig{TotalNodes: 60, SensorNodes: 50, Groups: 10, Attributes: model.DefaultAttributes()}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []DeploymentConfig{
		{TotalNodes: 0, SensorNodes: 1, Groups: 1, Attributes: model.DefaultAttributes()},
		{TotalNodes: 10, SensorNodes: 10, Groups: 1, Attributes: model.DefaultAttributes()},
		{TotalNodes: 10, SensorNodes: 5, Groups: 0, Attributes: model.DefaultAttributes()},
		{TotalNodes: 10, SensorNodes: 5, Groups: 6, Attributes: model.DefaultAttributes()},
		{TotalNodes: 12, SensorNodes: 10, Groups: 5, Attributes: model.DefaultAttributes()},
		{TotalNodes: 60, SensorNodes: 50, Groups: 10, Attributes: nil},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
}

func TestGenerateDeploymentSmallScale(t *testing.T) {
	cfg := DeploymentConfig{
		TotalNodes:  60,
		SensorNodes: 50,
		Groups:      10,
		Attributes:  model.DefaultAttributes(),
		Seed:        1,
	}
	dep, err := GenerateDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Graph.NumNodes() != 60 {
		t.Fatalf("node count = %d", dep.Graph.NumNodes())
	}
	if err := dep.Graph.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if len(dep.Sensors) != 50 {
		t.Fatalf("sensor count = %d", len(dep.Sensors))
	}
	if len(dep.GroupHubs) != 10 || len(dep.GroupMembers) != 10 {
		t.Fatal("group bookkeeping wrong")
	}
	// Each group has 5 sensors covering all 5 attribute types.
	for gi, members := range dep.GroupMembers {
		if len(members) != 5 {
			t.Fatalf("group %d has %d members", gi, len(members))
		}
		attrs := map[model.AttributeType]bool{}
		for _, n := range members {
			for _, s := range dep.NodeSensors[n] {
				attrs[s.Attr] = true
				if !dep.GroupRegions[gi].Contains(s.Location) {
					t.Errorf("sensor %s outside its group region", s.ID)
				}
			}
		}
		if len(attrs) != 5 {
			t.Errorf("group %d covers %d attribute types, want 5", gi, len(attrs))
		}
	}
	// Sensor hosting is consistent.
	for _, s := range dep.Sensors {
		host, ok := dep.SensorHost[s.ID]
		if !ok {
			t.Fatalf("sensor %s has no host", s.ID)
		}
		found := false
		for _, hs := range dep.NodeSensors[host] {
			if hs.ID == s.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("sensor %s not listed at its host", s.ID)
		}
	}
	// Relay/user nodes do not host sensors.
	for _, n := range dep.RelayNodes {
		if dep.IsSensorNode(n) {
			t.Errorf("relay node %d hosts sensors", n)
		}
	}
	if len(dep.UserNodes) == 0 {
		t.Error("expected some user nodes")
	}
	// Attribute helper.
	if got := len(dep.SensorsOfAttr(model.WindSpeed)); got != 10 {
		t.Errorf("wind speed sensors = %d, want 10", got)
	}
}

func TestGenerateDeploymentDeterministic(t *testing.T) {
	cfg := DeploymentConfig{TotalNodes: 100, SensorNodes: 50, Groups: 10, Attributes: model.DefaultAttributes(), Seed: 7}
	a, err := GenerateDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed should give same edge count")
	}
	for n := 0; n < a.Graph.NumNodes(); n++ {
		an := a.Graph.Neighbors(NodeID(n))
		bn := b.Graph.Neighbors(NodeID(n))
		if len(an) != len(bn) {
			t.Fatalf("node %d neighbour count differs", n)
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("node %d neighbours differ", n)
			}
		}
	}
	for i := range a.Sensors {
		if a.Sensors[i] != b.Sensors[i] {
			t.Fatal("sensor placement differs between identical seeds")
		}
	}
}

func TestGenerateDeploymentNoPureRelays(t *testing.T) {
	// TotalNodes exactly covers sensors + hubs: hubs chain into a backbone.
	cfg := DeploymentConfig{TotalNodes: 12, SensorNodes: 10, Groups: 2, Attributes: model.DefaultAttributes(), Seed: 3}
	dep, err := GenerateDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(dep.UserNodes) == 0 {
		t.Error("user nodes should fall back to group hubs")
	}
}

// Property: generated deployments are always valid trees and every sensor
// node hosts at least one sensor.
func TestPropertyGeneratedDeploymentsAreTrees(t *testing.T) {
	f := func(seed int64, groupsRaw, perGroupRaw, relaysRaw uint8) bool {
		groups := int(groupsRaw%8) + 1
		perGroup := int(perGroupRaw%5) + 1
		relays := int(relaysRaw % 20)
		sensors := groups * perGroup
		total := sensors + groups + relays
		cfg := DeploymentConfig{
			TotalNodes:  total,
			SensorNodes: sensors,
			Groups:      groups,
			Attributes:  model.DefaultAttributes(),
			Seed:        seed,
		}
		dep, err := GenerateDeployment(cfg)
		if err != nil {
			return false
		}
		if dep.Graph.Validate() != nil {
			return false
		}
		count := 0
		for _, members := range dep.GroupMembers {
			count += len(members)
		}
		return count == sensors && len(dep.Sensors) == sensors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
