package stats

import "math"

// Pareto samples from a Pareto (type I) distribution with scale xm > 0 and
// shape alpha > 0. The paper's workload generator draws subscription range
// offsets from a Pareto distribution with skew (shape) factor 1.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("stats: Pareto requires positive xm and alpha")
	}
	u := r.Float64()
	// Guard against u == 0 which would give +Inf.
	if u < 1e-12 {
		u = 1e-12
	}
	return xm / math.Pow(u, 1/alpha)
}

// ParetoCapped samples from Pareto(xm, alpha) but truncates the result at
// cap. Truncation keeps the heavy tail from producing unbounded subscription
// ranges while preserving the skew of the bulk of the distribution.
func (r *RNG) ParetoCapped(xm, alpha, cap float64) float64 {
	v := r.Pareto(xm, alpha)
	if v > cap {
		return cap
	}
	return v
}

// Normal samples from a Gaussian distribution with the given mean and
// standard deviation using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exponential samples from an exponential distribution with the given rate
// (lambda). The mean of the distribution is 1/rate.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential requires positive rate")
	}
	u := r.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	return -math.Log(u) / rate
}

// Zipf samples an integer in [0, n) under a Zipf-like distribution with
// exponent s >= 0. s == 0 degenerates to the uniform distribution. The
// implementation uses inverse-CDF sampling over the precomputable harmonic
// weights and is O(n) per call; it is only used for modest n (attribute or
// group selection).
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("stats: Zipf requires positive n")
	}
	if s == 0 {
		return r.Intn(n)
	}
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
	}
	target := r.Float64() * total
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += 1 / math.Pow(float64(i), s)
		if acc >= target {
			return i - 1
		}
	}
	return n - 1
}
