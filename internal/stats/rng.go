// Package stats provides the small statistical toolbox used by the synthetic
// dataset generator, the workload generator and the probabilistic set-filter:
// a seedable, reproducible PRNG, Pareto and Gaussian sampling, and streaming
// summaries (median, quantiles, mean/variance).
//
// Everything in this package is deterministic given the seed, which is what
// makes the experiment harness reproducible run-to-run; math/rand is not used
// so that the generated traces cannot change across Go releases.
package stats

// RNG is a small, fast, splittable pseudo-random number generator
// (xorshift128+ with a splitmix64 seeding stage). It is not safe for
// concurrent use; create one RNG per goroutine or per generator.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-seeds the generator. Two generators seeded with the same value
// produce identical sequences.
func (r *RNG) Seed(seed int64) {
	x := uint64(seed)
	// splitmix64 to spread low-entropy seeds across the whole state.
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
}

// Split returns a new generator whose stream is independent of r's future
// output. It is used to derive per-sensor / per-node streams from one master
// seed without correlations.
func (r *RNG) Split() *RNG {
	return &RNG{s0: r.Uint64() | 1, s1: r.Uint64()}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.s0
	y := r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random bits mapped to [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit random integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Range returns a uniformly distributed value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function (same contract as math/rand.Shuffle).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choose returns k distinct indices sampled uniformly without replacement
// from [0, n). It panics if k > n.
func (r *RNG) Choose(n, k int) []int {
	if k > n {
		panic("stats: Choose k > n")
	}
	p := r.Perm(n)
	return p[:k]
}
