package stats

import (
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations and answers
// descriptive queries (count, mean, variance, min, max, median, quantiles).
// Observations are retained, so memory grows linearly with the stream; the
// dataset generator uses it on bounded traces only.
type Summary struct {
	values []float64
	sum    float64
	sumSq  float64
	sorted bool
}

// NewSummary returns an empty summary.
func NewSummary() *Summary { return &Summary{} }

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sumSq += v * v
	s.sorted = false
}

// AddAll records a batch of observations.
func (s *Summary) AddAll(vs []float64) {
	for _, v := range vs {
		s.Add(v)
	}
}

// Count returns the number of observations recorded so far.
func (s *Summary) Count() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Variance returns the population variance, or 0 for fewer than two samples.
func (s *Summary) Variance() float64 {
	n := float64(len(s.values))
	if n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/n - m*m
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or +Inf for an empty summary.
func (s *Summary) Min() float64 {
	if len(s.values) == 0 {
		return math.Inf(1)
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation, or -Inf for an empty summary.
func (s *Summary) Max() float64 {
	if len(s.values) == 0 {
		return math.Inf(-1)
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// Median returns the 0.5 quantile.
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It returns 0 for an empty summary.
func (s *Summary) Quantile(q float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min()
	}
	if q >= 1 {
		return s.Max()
	}
	s.ensureSorted()
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Median returns the median of a slice without mutating it.
func Median(vs []float64) float64 {
	s := NewSummary()
	s.AddAll(vs)
	return s.Median()
}

// Mean returns the arithmetic mean of a slice (0 for an empty slice).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range vs {
		total += v
	}
	return total / float64(len(vs))
}
