package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestRNGIntnAndRange(t *testing.T) {
	r := NewRNG(1)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d has suspicious count %d", i, c)
		}
	}
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 6)
		if v < 5 || v >= 6 {
			t.Fatalf("Range out of bounds: %g", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGPermChooseShuffle(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(20)
	seen := map[int]bool{}
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	c := r.Choose(10, 4)
	if len(c) != 4 {
		t.Fatalf("Choose returned %d values", len(c))
	}
	dup := map[int]bool{}
	for _, v := range c {
		if v < 0 || v >= 10 || dup[v] {
			t.Fatalf("Choose produced invalid selection %v", c)
		}
		dup[v] = true
	}
	s := []int{1, 2, 3, 4, 5}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 15 {
		t.Error("Shuffle must preserve elements")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams look correlated: %d collisions", same)
	}
}

func TestParetoProperties(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2, 1)
		if v < 2 {
			t.Fatalf("Pareto sample below scale: %g", v)
		}
	}
	for i := 0; i < 1000; i++ {
		v := r.ParetoCapped(1, 1, 50)
		if v < 1 || v > 50 {
			t.Fatalf("ParetoCapped out of [1,50]: %g", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Pareto with non-positive parameters should panic")
		}
	}()
	r.Pareto(0, 1)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(13)
	s := NewSummary()
	for i := 0; i < 20000; i++ {
		s.Add(r.Normal(10, 2))
	}
	if math.Abs(s.Mean()-10) > 0.1 {
		t.Errorf("normal mean = %g, want ~10", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 0.1 {
		t.Errorf("normal stddev = %g, want ~2", s.StdDev())
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(17)
	s := NewSummary()
	for i := 0; i < 20000; i++ {
		s.Add(r.Exponential(0.5))
	}
	if math.Abs(s.Mean()-2) > 0.15 {
		t.Errorf("exponential mean = %g, want ~2", s.Mean())
	}
}

func TestZipf(t *testing.T) {
	r := NewRNG(19)
	counts := make([]int, 5)
	for i := 0; i < 20000; i++ {
		counts[r.Zipf(5, 1)]++
	}
	for i := 1; i < 5; i++ {
		if counts[i] > counts[0] {
			t.Errorf("Zipf rank %d more frequent than rank 0: %v", i, counts)
		}
	}
	// s == 0 degenerates to uniform.
	u := make([]int, 4)
	for i := 0; i < 8000; i++ {
		u[r.Zipf(4, 0)]++
	}
	for i, c := range u {
		if c < 1600 || c > 2400 {
			t.Errorf("uniform Zipf bucket %d = %d", i, c)
		}
	}
}

func TestSummaryBasics(t *testing.T) {
	s := NewSummary()
	if s.Mean() != 0 || s.Median() != 0 || s.Count() != 0 {
		t.Error("empty summary should report zeros")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty summary min/max should be infinities")
	}
	s.AddAll([]float64{5, 1, 3, 2, 4})
	if s.Count() != 5 {
		t.Errorf("count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %g", s.Mean())
	}
	if s.Median() != 3 {
		t.Errorf("median = %g", s.Median())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
	if q := s.Quantile(0.25); q != 2 {
		t.Errorf("q25 = %g", q)
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 5 {
		t.Error("extreme quantiles should equal min/max")
	}
	if math.Abs(s.Variance()-2) > 1e-9 {
		t.Errorf("variance = %g, want 2", s.Variance())
	}
}

func TestMedianAndMeanHelpers(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("Median helper wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("Median of even-length slice should interpolate")
	}
	if Mean(nil) != 0 {
		t.Error("Mean of empty slice should be 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean helper wrong")
	}
}

// Property: quantiles are monotone non-decreasing in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		s := NewSummary()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		if s.Count() == 0 {
			return true
		}
		a := math.Abs(q1)
		a -= math.Floor(a)
		b := math.Abs(q2)
		b -= math.Floor(b)
		if a > b {
			a, b = b, a
		}
		return s.Quantile(a) <= s.Quantile(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
