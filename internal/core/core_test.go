package core

import (
	"testing"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/subsume"
	"sensorcq/internal/topology"
)

// The tests in this file replay the paper's running example (Table I /
// Figure 3) on the six-node network sketched in Section V:
//
//	  n0(sensor a)   n1(sensor b)
//	         \        /
//	          n3 ---- n4 ---- n5 (user)
//	                   |
//	              n2(sensor c)
//
// Sensors a, b, c are identified sensors; the user at n5 registers the three
// subscriptions of Table I in order.

const (
	nodeSensorA = topology.NodeID(0)
	nodeSensorB = topology.NodeID(1)
	nodeSensorC = topology.NodeID(2)
	nodeHubAB   = topology.NodeID(3)
	nodeHubMain = topology.NodeID(4)
	nodeUser    = topology.NodeID(5)
)

func figure3Graph(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(6)
	edges := [][2]topology.NodeID{
		{nodeUser, nodeHubMain},
		{nodeHubMain, nodeHubAB},
		{nodeHubAB, nodeSensorA},
		{nodeHubAB, nodeSensorB},
		{nodeHubMain, nodeSensorC},
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func sensorNamed(id model.SensorID, attr model.AttributeType) model.Sensor {
	return model.Sensor{ID: id, Attr: attr, Location: geom.Point2D{}}
}

func tableISub(t *testing.T, id string, ranges map[model.SensorID][2]float64) *model.Subscription {
	t.Helper()
	attrs := map[model.SensorID]model.AttributeType{
		"a": model.AmbientTemperature,
		"b": model.RelativeHumidity,
		"c": model.WindSpeed,
	}
	var filters []model.SensorFilter
	for d, r := range ranges {
		filters = append(filters, model.SensorFilter{Sensor: d, Attr: attrs[d], Range: geom.NewInterval(r[0], r[1])})
	}
	s, err := model.NewIdentifiedSubscription(model.SubscriptionID(id), filters, 30)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sub1(t *testing.T) *model.Subscription {
	return tableISub(t, "s1", map[model.SensorID][2]float64{"a": {50, 80}, "b": {10, 30}})
}
func sub2(t *testing.T) *model.Subscription {
	return tableISub(t, "s2", map[model.SensorID][2]float64{"b": {20, 40}, "c": {2, 20}})
}
func sub3(t *testing.T) *model.Subscription {
	return tableISub(t, "s3", map[model.SensorID][2]float64{"a": {55, 75}, "b": {15, 35}, "c": {5, 15}})
}

// setupFigure3 builds an engine with the given factory, attaches the three
// sensors and returns the engine.
func setupFigure3(t *testing.T, factory netsim.HandlerFactory) *netsim.Engine {
	t.Helper()
	e := netsim.NewEngine(figure3Graph(t), factory)
	attach := func(node topology.NodeID, id model.SensorID, attr model.AttributeType) {
		if err := e.AttachSensor(node, sensorNamed(id, attr)); err != nil {
			t.Fatal(err)
		}
	}
	attach(nodeSensorA, "a", model.AmbientTemperature)
	attach(nodeSensorB, "b", model.RelativeHumidity)
	attach(nodeSensorC, "c", model.WindSpeed)
	return e
}

func publish(t *testing.T, e *netsim.Engine, node topology.NodeID, seq uint64, sensor model.SensorID, attr model.AttributeType, value float64, ts model.Timestamp) {
	t.Helper()
	if err := e.Publish(node, model.Event{Seq: seq, Sensor: sensor, Attr: attr, Value: value, Time: ts}); err != nil {
		t.Fatal(err)
	}
}

func coreNode(t *testing.T, e *netsim.Engine, id topology.NodeID) *Node {
	t.Helper()
	n, ok := e.Handler(id).(*Node)
	if !ok {
		t.Fatalf("handler of node %d is not a core.Node", id)
	}
	return n
}

func fsfFactory() netsim.HandlerFactory { return NewFSF(1) }

func TestAdvertisementFlooding(t *testing.T) {
	e := setupFigure3(t, fsfFactory())
	// Each of the 3 advertisements floods the whole 6-node tree: 5 links each.
	if got := e.Metrics().AdvertisementLoad(); got != 15 {
		t.Errorf("advertisement load = %d, want 15", got)
	}
	// Every node knows every sensor.
	for n := topology.NodeID(0); n < 6; n++ {
		advs := coreNode(t, e, n).Advertisements()
		for _, s := range []model.SensorID{"a", "b", "c"} {
			if !advs.Known(s) {
				t.Errorf("node %d does not know sensor %s", n, s)
			}
		}
	}
}

func TestFigure3Walkthrough(t *testing.T) {
	e := setupFigure3(t, fsfFactory())

	// s1: user -> hubMain -> hubAB -> {sensorA, sensorB} = 4 forwarded ops.
	if err := e.Subscribe(nodeUser, sub1(t)); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().SubscriptionLoad(); got != 4 {
		t.Errorf("subscription load after s1 = %d, want 4", got)
	}
	// s2: user -> hubMain, then hubMain -> {hubAB, sensorC}, hubAB -> sensorB
	// = 4 more.
	if err := e.Subscribe(nodeUser, sub2(t)); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().SubscriptionLoad(); got != 8 {
		t.Errorf("subscription load after s2 = %d, want 8", got)
	}
	// s3: user -> hubMain, hubMain -> {hubAB (a,b), sensorC (c)}, hubAB ->
	// {sensorA, sensorB} = 5 more; the leaf operators are detected as covered
	// and stored without further forwarding.
	if err := e.Subscribe(nodeUser, sub3(t)); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().SubscriptionLoad(); got != 13 {
		t.Errorf("subscription load after s3 = %d, want 13", got)
	}

	// Sensor C's node received fc,2 (uncovered) and fc,3 (covered by fc,2).
	cTable := coreNode(t, e, nodeSensorC).Subscriptions()
	if got := len(cTable.Uncovered(nodeHubMain)); got != 1 {
		t.Errorf("sensor-c node has %d uncovered operators, want 1", got)
	}
	if got := len(cTable.Covered(nodeHubMain)); got != 1 {
		t.Errorf("sensor-c node has %d covered operators, want 1", got)
	}
	// Sensor B's node received fb,1 and fb,2 (uncovered) and fb,3 — which is
	// only covered by their UNION, the case set filtering handles and
	// pairwise covering cannot.
	bTable := coreNode(t, e, nodeSensorB).Subscriptions()
	if got := len(bTable.Uncovered(nodeHubAB)); got != 2 {
		t.Errorf("sensor-b node has %d uncovered operators, want 2", got)
	}
	if got := len(bTable.Covered(nodeHubAB)); got != 1 {
		t.Errorf("sensor-b node has %d covered operators, want 1 (set subsumption)", got)
	}
	// Sensor A's node: fa,1 uncovered, fa,3 covered pairwise.
	aTable := coreNode(t, e, nodeSensorA).Subscriptions()
	if len(aTable.Uncovered(nodeHubAB)) != 1 || len(aTable.Covered(nodeHubAB)) != 1 {
		t.Error("sensor-a node operator tables wrong")
	}
	// The user node keeps all three local subscriptions for delivery.
	if got := len(coreNode(t, e, nodeUser).LocalSubscriptions()); got != 3 {
		t.Errorf("user node has %d local subscriptions, want 3", got)
	}
}

func TestTableIIOperatorPlacementStoresMoreUncovered(t *testing.T) {
	// With pairwise covering only, sensor B's third operator is NOT detected
	// as covered (it needs the union of the first two).
	pairwise := NewFactory(Config{
		Name:        "operator-placement",
		Checker:     subsume.PairwiseChecker{},
		Split:       SplitSimple,
		Propagation: PerSubscription,
	})
	e := setupFigure3(t, pairwise)
	for _, s := range []*model.Subscription{sub1(t), sub2(t), sub3(t)} {
		if err := e.Subscribe(nodeUser, s); err != nil {
			t.Fatal(err)
		}
	}
	bTable := coreNode(t, e, nodeSensorB).Subscriptions()
	if got := len(bTable.Uncovered(nodeHubAB)); got != 3 {
		t.Errorf("pairwise filtering should leave 3 uncovered operators at sensor b, got %d", got)
	}
	if got := len(bTable.Covered(nodeHubAB)); got != 0 {
		t.Errorf("pairwise filtering should find no covered operator at sensor b, got %d", got)
	}
}

func TestEventPropagationFSFTableIExample(t *testing.T) {
	e := setupFigure3(t, fsfFactory())
	for _, s := range []*model.Subscription{sub1(t), sub2(t), sub3(t)} {
		if err := e.Subscribe(nodeUser, s); err != nil {
			t.Fatal(err)
		}
	}
	evBase := e.Metrics().EventLoad()

	publish(t, e, nodeSensorA, 1, "a", model.AmbientTemperature, 60, 10)
	publish(t, e, nodeSensorB, 2, "b", model.RelativeHumidity, 25, 11)
	publish(t, e, nodeSensorC, 3, "c", model.WindSpeed, 10, 12)

	// Per-neighbour forwarding: a:0->3 (1), b:1->3 (1), {a,b}:3->4 (2),
	// {a,b}:4->5 (2), c:2->4 (1), c:4->5 (1)  =>  8 data units.
	if got := e.Metrics().EventLoad() - evBase; got != 8 {
		t.Errorf("FSF event load = %d, want 8", got)
	}
	// All three users received their complex events with full recall.
	for sub, want := range map[model.SubscriptionID][]uint64{
		"s1": {1, 2},
		"s2": {2, 3},
		"s3": {1, 2, 3},
	} {
		got := e.Metrics().DeliveredSeqs(sub)
		if len(got) != len(want) {
			t.Errorf("%s delivered %d events, want %d", sub, len(got), len(want))
			continue
		}
		for _, seq := range want {
			if !got[seq] {
				t.Errorf("%s missing event %d", sub, seq)
			}
		}
	}
}

func TestEventPropagationPerSubscriptionDuplicates(t *testing.T) {
	// The same scenario under the operator-placement configuration must
	// produce strictly more event traffic: per-subscription result sets
	// re-send the same reading once per overlapping operator.
	run := func(factory netsim.HandlerFactory) int64 {
		e := setupFigure3(t, factory)
		for _, s := range []*model.Subscription{sub1(t), sub2(t), sub3(t)} {
			if err := e.Subscribe(nodeUser, s); err != nil {
				t.Fatal(err)
			}
		}
		base := e.Metrics().EventLoad()
		publish(t, e, nodeSensorA, 1, "a", model.AmbientTemperature, 60, 10)
		publish(t, e, nodeSensorB, 2, "b", model.RelativeHumidity, 25, 11)
		publish(t, e, nodeSensorC, 3, "c", model.WindSpeed, 10, 12)
		return e.Metrics().EventLoad() - base
	}

	fsfLoad := run(fsfFactory())
	opLoad := run(NewFactory(Config{
		Name:        "operator-placement",
		Checker:     subsume.PairwiseChecker{},
		Split:       SplitSimple,
		Propagation: PerSubscription,
	}))
	naiveLoad := run(NewFactory(Config{
		Name:        "naive",
		Checker:     subsume.NoneChecker{},
		Split:       SplitSimple,
		Propagation: PerSubscription,
	}))
	if !(fsfLoad < opLoad) {
		t.Errorf("FSF load (%d) should be below operator placement (%d)", fsfLoad, opLoad)
	}
	if !(opLoad <= naiveLoad) {
		t.Errorf("operator placement load (%d) should not exceed naive (%d)", opLoad, naiveLoad)
	}
	// Recall is perfect for all three deterministic runs in this scenario.
}

func TestMultiJoinFalsePositiveTraffic(t *testing.T) {
	// Only the 3-way subscription s3 is registered. Sensor c's reading is out
	// of range, so no complex event exists. The binary-join approach still
	// forwards the (a,b) pair all the way to the user (false positives); FSF
	// stops them at the node where the full correlation is known to fail.
	scenario := func(factory netsim.HandlerFactory) (int64, int64) {
		e := setupFigure3(t, factory)
		if err := e.Subscribe(nodeUser, sub3(t)); err != nil {
			t.Fatal(err)
		}
		base := e.Metrics().EventLoad()
		publish(t, e, nodeSensorA, 1, "a", model.AmbientTemperature, 60, 10)
		publish(t, e, nodeSensorB, 2, "b", model.RelativeHumidity, 25, 11)
		publish(t, e, nodeSensorC, 3, "c", model.WindSpeed, 99, 12) // out of range
		return e.Metrics().EventLoad() - base, e.Metrics().ComplexDeliveries("s3")
	}

	fsfLoad, fsfDeliveries := scenario(fsfFactory())
	mjLoad, mjDeliveries := scenario(NewFactory(Config{
		Name:        "multi-join",
		Checker:     subsume.PairwiseChecker{},
		Split:       SplitBinaryJoin,
		Pairing:     model.RingPairing,
		Propagation: PerNeighbor,
	}))

	if fsfDeliveries != 0 || mjDeliveries != 0 {
		t.Fatalf("no complex event should be delivered (fsf=%d, mj=%d)", fsfDeliveries, mjDeliveries)
	}
	if !(mjLoad > fsfLoad) {
		t.Errorf("multi-join false positives should inflate event load: multi-join=%d fsf=%d", mjLoad, fsfLoad)
	}
}

func TestMultiJoinStillDeliversTrueMatches(t *testing.T) {
	e := setupFigure3(t, NewFactory(Config{
		Name:        "multi-join",
		Checker:     subsume.PairwiseChecker{},
		Split:       SplitBinaryJoin,
		Pairing:     model.RingPairing,
		Propagation: PerNeighbor,
	}))
	if err := e.Subscribe(nodeUser, sub3(t)); err != nil {
		t.Fatal(err)
	}
	publish(t, e, nodeSensorA, 1, "a", model.AmbientTemperature, 60, 10)
	publish(t, e, nodeSensorB, 2, "b", model.RelativeHumidity, 25, 11)
	publish(t, e, nodeSensorC, 3, "c", model.WindSpeed, 10, 12)
	got := e.Metrics().DeliveredSeqs("s3")
	for _, seq := range []uint64{1, 2, 3} {
		if !got[seq] {
			t.Errorf("multi-join user missing event %d", seq)
		}
	}
}

func TestSubscriptionWithoutSourcesIsNotForwarded(t *testing.T) {
	e := setupFigure3(t, fsfFactory())
	missing := tableISub(t, "sx", map[model.SensorID][2]float64{"a": {0, 100}, "z": {0, 100}})
	before := e.Metrics().SubscriptionLoad()
	if err := e.Subscribe(nodeUser, missing); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().SubscriptionLoad() - before; got != 0 {
		t.Errorf("subscription without sources was forwarded %d times", got)
	}
	// It is still stored locally for (never-occurring) delivery.
	if len(coreNode(t, e, nodeUser).LocalSubscriptions()) != 1 {
		t.Error("unanswerable subscription should still be stored locally")
	}
}

func TestDuplicateSubscriptionIgnored(t *testing.T) {
	e := setupFigure3(t, fsfFactory())
	s := sub1(t)
	if err := e.Subscribe(nodeUser, s); err != nil {
		t.Fatal(err)
	}
	load := e.Metrics().SubscriptionLoad()
	if err := e.Subscribe(nodeUser, s); err != nil {
		t.Fatal(err)
	}
	if e.Metrics().SubscriptionLoad() != load {
		t.Error("re-registering the same subscription should not generate traffic")
	}
	if got := len(coreNode(t, e, nodeUser).LocalSubscriptions()); got != 1 {
		t.Errorf("local subscriptions = %d, want 1", got)
	}
}

func TestEventsWithoutSubscribersAreDropped(t *testing.T) {
	e := setupFigure3(t, fsfFactory())
	publish(t, e, nodeSensorA, 1, "a", model.AmbientTemperature, 60, 10)
	if got := e.Metrics().EventLoad(); got != 0 {
		t.Errorf("events without any subscription generated %d data units", got)
	}
}

func TestOutOfRangeEventsFilteredAtSource(t *testing.T) {
	e := setupFigure3(t, fsfFactory())
	if err := e.Subscribe(nodeUser, sub1(t)); err != nil {
		t.Fatal(err)
	}
	base := e.Metrics().EventLoad()
	publish(t, e, nodeSensorA, 1, "a", model.AmbientTemperature, 200, 10) // outside [50,80]
	if got := e.Metrics().EventLoad() - base; got != 0 {
		t.Errorf("out-of-range reading generated %d data units", got)
	}
}

func TestTemporalCorrelationWindow(t *testing.T) {
	e := setupFigure3(t, fsfFactory())
	if err := e.Subscribe(nodeUser, sub1(t)); err != nil {
		t.Fatal(err)
	}
	// a and b are too far apart in time (δt = 30) to correlate.
	publish(t, e, nodeSensorA, 1, "a", model.AmbientTemperature, 60, 10)
	publish(t, e, nodeSensorB, 2, "b", model.RelativeHumidity, 25, 100)
	if got := e.Metrics().ComplexDeliveries("s1"); got != 0 {
		t.Errorf("uncorrelated events delivered %d complex events", got)
	}
	// A later a reading inside the window completes the match.
	publish(t, e, nodeSensorA, 3, "a", model.AmbientTemperature, 61, 110)
	if got := e.Metrics().ComplexDeliveries("s1"); got != 1 {
		t.Errorf("correlated events delivered %d complex events, want 1", got)
	}
	seqs := e.Metrics().DeliveredSeqs("s1")
	if !seqs[2] || !seqs[3] || seqs[1] {
		t.Errorf("delivered seqs = %v, want {2,3}", seqs)
	}
}

func TestConcurrentEngineSameTraffic(t *testing.T) {
	build := func() (netsim.Runtime, func()) {
		conc := netsim.NewConcurrentEngine(figure3Graph(t), fsfFactory())
		return conc, conc.Close
	}
	seq := setupFigure3(t, fsfFactory())
	concRT, closeFn := build()
	defer closeFn()
	conc := concRT.(*netsim.ConcurrentEngine)
	for _, s := range []struct {
		node topology.NodeID
		id   model.SensorID
		attr model.AttributeType
	}{
		{nodeSensorA, "a", model.AmbientTemperature},
		{nodeSensorB, "b", model.RelativeHumidity},
		{nodeSensorC, "c", model.WindSpeed},
	} {
		if err := conc.AttachSensor(s.node, sensorNamed(s.id, s.attr)); err != nil {
			t.Fatal(err)
		}
		conc.Flush()
	}
	for _, s := range []*model.Subscription{sub1(t), sub2(t), sub3(t)} {
		if err := seq.Subscribe(nodeUser, s.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := conc.Subscribe(nodeUser, s.Clone()); err != nil {
			t.Fatal(err)
		}
		conc.Flush()
	}
	events := []model.Event{
		{Seq: 1, Sensor: "a", Attr: model.AmbientTemperature, Value: 60, Time: 10},
		{Seq: 2, Sensor: "b", Attr: model.RelativeHumidity, Value: 25, Time: 11},
		{Seq: 3, Sensor: "c", Attr: model.WindSpeed, Value: 10, Time: 12},
	}
	nodes := []topology.NodeID{nodeSensorA, nodeSensorB, nodeSensorC}
	for i, ev := range events {
		if err := seq.Publish(nodes[i], ev); err != nil {
			t.Fatal(err)
		}
		if err := conc.Publish(nodes[i], ev); err != nil {
			t.Fatal(err)
		}
		conc.Flush()
	}
	if a, b := seq.Metrics().SubscriptionLoad(), conc.Metrics().SubscriptionLoad(); a != b {
		t.Errorf("subscription load differs: sequential=%d concurrent=%d", a, b)
	}
	if a, b := seq.Metrics().EventLoad(), conc.Metrics().EventLoad(); a != b {
		t.Errorf("event load differs: sequential=%d concurrent=%d", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config should be invalid")
	}
	if err := (Config{Name: "x"}).Validate(); err == nil {
		t.Error("config without checker should be invalid")
	}
	if err := NewFSFConfig(0.01, 1).Validate(); err != nil {
		t.Errorf("FSF config should be valid: %v", err)
	}
	assertPanics(t, func() { NewFactory(Config{}) })
	if SplitSimple.String() != "simple" || SplitBinaryJoin.String() != "binary-join" {
		t.Error("SplitPolicy String wrong")
	}
	if PerNeighbor.String() != "per-neighbor" || PerSubscription.String() != "per-subscription" {
		t.Error("EventPropagation String wrong")
	}
	n := NewNode(3, NewFSFConfig(0.01, 1))
	if n.Self() != 3 || n.Name() != "filter-split-forward" {
		t.Error("node accessors wrong")
	}
	if n.Window() == nil || n.Advertisements() == nil || n.Subscriptions() == nil {
		t.Error("store accessors should not be nil")
	}
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
