package core

import (
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/topology"
)

// This file implements advertisement propagation (Algorithm 1): a
// straight-forward flood of data-source advertisements, stored per
// originating neighbour so that incoming subscriptions can follow the
// reverse dissemination path.

// LocalSensor implements netsim.Handler. A new sensor attached to this node
// is recorded under the node's own ID and advertised to every neighbour.
func (n *Node) LocalSensor(ctx *netsim.Context, sensor model.Sensor) {
	adv := sensor.Advertisement()
	if !n.advs.Add(n.self, adv) {
		return
	}
	for _, j := range ctx.Neighbors() {
		ctx.SendAdvertisement(j, adv)
	}
}

// HandleAdvertisement implements netsim.Handler. Advertisements received
// from a neighbour are stored under that neighbour and re-flooded to every
// other neighbour (Algorithm 1, lines 8-13).
func (n *Node) HandleAdvertisement(ctx *netsim.Context, from topology.NodeID, adv model.Advertisement) {
	if !n.advs.Add(from, adv) {
		return
	}
	for _, j := range ctx.Neighbors() {
		if j != from {
			ctx.SendAdvertisement(j, adv)
		}
	}
}
