package core

import (
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/topology"
)

// This file implements subscription retraction: the inverse of the
// split-and-forward phase. An unsubscription walks the recorded reverse
// forwarding paths of the retracted operator, releasing per-link routing
// state (stored operators, match-index entries) at every node it visits, and
// re-exposes operators that were previously filtered out as covered by the
// now-retracted subscription — those must be re-split and forwarded so their
// remaining dependants keep receiving results, rather than being orphaned
// with the covering operator gone.

// LocalUnsubscribe implements netsim.Handler: a user at this node retracts a
// previously registered subscription. An unknown ID is a no-op.
func (n *Node) LocalUnsubscribe(ctx *netsim.Context, id model.SubscriptionID) {
	n.unregisterLocal(id)
	n.retract(ctx, n.self, id)
}

// HandleUnsubscription implements netsim.Handler: the retraction of an
// operator previously received from a neighbour.
func (n *Node) HandleUnsubscription(ctx *netsim.Context, from topology.NodeID, id model.SubscriptionID) {
	n.retract(ctx, from, id)
}

// unregisterLocal removes a user subscription from the local delivery state
// (the counterpart of registerLocal).
func (n *Node) unregisterLocal(id model.SubscriptionID) {
	for i, existing := range n.localSubs {
		if existing.ID == id {
			copy(n.localSubs[i:], n.localSubs[i+1:])
			n.localSubs[len(n.localSubs)-1] = nil
			n.localSubs = n.localSubs[:len(n.localSubs)-1]
			n.localIdx.Remove(id)
			return
		}
	}
}

// retract removes the operator stored under (m, id), forwards the retraction
// along the links the operator was forwarded on, and — when the operator was
// part of the uncovered (filtering) set — re-exposes covered operators it
// may have been subsuming.
func (n *Node) retract(ctx *netsim.Context, m topology.NodeID, id model.SubscriptionID) {
	// Aggregate subscriptions live in their own registry and forward their
	// retraction along the recorded child links (see aggregate.go).
	if n.retractAggregate(ctx, m, id) {
		return
	}
	sub, wasUncovered, ok := n.subs.Remove(m, id)
	if !ok {
		return
	}
	isLocal := m == n.self
	// Release the match-index entries mirroring the storage rules of
	// processSubscription: uncovered remote operators always match; covered
	// remote operators match only under per-subscription propagation.
	if !isLocal && (wasUncovered || n.cfg.Propagation == PerSubscription) {
		n.removeMatcher(m, sub)
	}
	// Walk the recorded reverse forwarding paths, then recycle the link
	// slice for a future registration (cleared first so it does not pin the
	// retracted IDs' strings).
	if byID := n.forwards[m]; byID != nil {
		if links, seen := byID[id]; seen {
			for _, f := range links {
				ctx.SendUnsubscription(f.to, f.op)
			}
			delete(byID, id)
			for i := range links {
				links[i] = forwardedOp{}
			}
			n.fwdFree = append(n.fwdFree, links[:0])
		}
	}
	if wasUncovered {
		n.reexpose(ctx, m)
	}
}

// reexpose re-evaluates the covered operators of an origin after one of the
// origin's uncovered operators was retracted: any operator no longer
// subsumed by the remaining uncovered set is promoted back into it, added to
// the match index (unless it is already there, or local), and re-split along
// the reverse advertisement paths — sharing policies must re-split shared
// operators for their remaining dependants, not orphan them.
//
// The covered list is iterated in storage order and the uncovered set grows
// as operators are promoted, so the outcome is deterministic: it depends
// only on the stored populations, never on message interleaving (the
// subsumption verdict is a pure function of candidate and set contents).
func (n *Node) reexpose(ctx *netsim.Context, m topology.NodeID) {
	covered := n.subs.Covered(m)
	if len(covered) == 0 {
		return
	}
	// Snapshot into the node-owned scratch: the walk promotes entries, which
	// splices them out of the covered slice being iterated. The buffer is
	// returned before the function exits, so churn pays no per-retraction
	// snapshot allocation once it has grown to the covered set's size.
	snapshot := append(n.reexposeScratch[:0], covered...)
	isLocal := m == n.self
	for _, c := range snapshot {
		if n.checker.Subsumed(c, n.subs.Uncovered(m)) {
			continue
		}
		if n.subs.Promote(m, c.ID) == nil {
			continue
		}
		switch {
		case isLocal:
			// The promoted subscription may still be attached to a surviving
			// cover's index entries in the local delivery index; promote it to
			// a fresh pruning root of its own, matching its uncovered status.
			n.localIdx.Add(c)
		case n.cfg.Propagation != PerSubscription:
			// Per-neighbour propagation registers covered operators for
			// matching only on promotion.
			n.addMatcher(m, c)
		default:
			// Under per-subscription propagation the operator was registered
			// for matching when it was filed as covered — possibly attached
			// under a cover. Give it a fresh pruning root instead.
			n.promoteMatcher(m, c)
		}
		n.splitAndForward(ctx, m, c, isLocal)
	}
	n.reexposeScratch = snapshot[:0]
}
