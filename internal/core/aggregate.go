package core

import (
	"sensorcq/internal/agg"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/topology"
)

// This file implements the in-network aggregation subsystem: windowed
// GROUP-BY-time continuous aggregate queries evaluated on the dissemination
// tree. An aggregate subscription is routed along the reverse advertisement
// paths exactly like an abstract subscription (same messages, same load
// accounting), but it bypasses the subsumption checker, the subscription
// table and the event matchers entirely: readings never flow for it. Each
// node folds its own locally published matching readings into one mergeable
// partial state per tumbling window, merges the partials its children ship,
// and — once the network watermark proves the window's rounds are fully
// dispatched and every child has reported — forwards a single partial
// upstream (or, at the subscriber's node, delivers the finalised result).
// Upstream traffic per window therefore scales with the tree's fan-in
// instead of the window's reading count.
//
// Correctness rests on three invariants:
//
//  1. Exactly-once accumulation: only LocalPublish feeds readings into
//     window states, and a reading is published at exactly one node.
//  2. FIFO links + watermark ticks: a node's tick(wm) is dispatched after
//     every item of rounds ≤ wm that the node will ever receive, so a
//     window whose end round is ≤ wm has seen all of its readings.
//  3. In-order window close with child counting: every node ships exactly
//     one partial per (subscription, window) — empty windows ship a nil
//     state — and closes windows in increasing order, so a parent knows a
//     window is complete when each child link has delivered one partial
//     for it (FIFO makes per-child sets unnecessary).
//
// Results for windows overlapping a mid-stream registration depend on how
// the registration cascade interleaves with in-flight readings and are
// therefore delivery-mode dependent; from the first window that opens after
// the registration has reached every node, results are mode-independent.
// The conformance suite registers aggregate queries up front.

// aggSub is the per-node state of one registered aggregate subscription.
type aggSub struct {
	sub  *model.Subscription
	spec *model.AggregateSpec
	cfg  agg.Config

	// origin is the neighbour the subscription arrived from — the parent in
	// the dissemination tree, where partials are shipped. Self for the
	// subscriber's own node.
	origin  topology.NodeID
	isLocal bool

	// children are the neighbours the subscription was forwarded to; each
	// ships exactly one partial per window.
	children []topology.NodeID

	// nextClose is the next window to finalise; windows close strictly in
	// order. Initialised to the first window after the registration round.
	nextClose int
	// maxTick is the highest watermark this subscription has processed.
	maxTick int
	// empty is the result value of an empty window (0 for count/sum, NaN
	// for the rest); cached at the subscriber's node.
	empty float64

	// windows holds the open windows' accumulation state, keyed by window
	// index; free recycles closed windows' wrappers (and, at the
	// subscriber's node, their states) so steady-state accumulation
	// allocates nothing.
	windows map[int]*aggWindow
	free    []*aggWindow
}

// aggWindow accumulates one open tumbling window.
type aggWindow struct {
	// state is the node's own accumulation; nil until the first local
	// reading (or, after the close-time fold, the first non-empty child
	// partial), so empty windows cost no allocation.
	state agg.State
	// parts holds the children's shipped partials, indexed by child
	// position. They are folded into state in child order when the window
	// closes — not on arrival — so float accumulation (sum, mean) is
	// bit-identical across engines and delivery modes regardless of how
	// child messages interleave.
	parts []agg.State
	// childDone counts the child links that shipped their partial for this
	// window.
	childDone int
}

// window returns the open accumulation state for a window index, creating
// (or recycling) it on first touch. The parts slot table is sized to the
// child count once per wrapper; recycled wrappers keep their capacity, so
// steady-state accumulation allocates nothing.
func (a *aggSub) window(g int) *aggWindow {
	w := a.windows[g]
	if w == nil {
		if k := len(a.free); k > 0 {
			w = a.free[k-1]
			a.free[k-1] = nil
			a.free = a.free[:k-1]
		} else {
			w = &aggWindow{}
		}
		if cap(w.parts) < len(a.children) {
			w.parts = make([]agg.State, len(a.children))
		} else {
			w.parts = w.parts[:len(a.children)]
		}
		a.windows[g] = w
	}
	return w
}

// childIndex returns the position of a child link, or -1.
func (a *aggSub) childIndex(n topology.NodeID) int {
	for i, c := range a.children {
		if c == n {
			return i
		}
	}
	return -1
}

// fold merges the window's shipped child partials into its state, in child
// order. Deferring the fold to close time makes the merge order canonical:
// integer and sketch merges are order-insensitive anyway, but float
// accumulation is not associative, and without a canonical order the
// concurrent engine's message interleaving would leak into sum and mean
// results.
func (a *aggSub) fold(w *aggWindow) {
	if w == nil {
		return
	}
	for i, st := range w.parts {
		if st == nil {
			continue
		}
		w.parts[i] = nil
		if w.state == nil {
			// Adopt the first shipped state instead of allocating one to
			// merge into.
			w.state = st
		} else {
			w.state.Merge(st)
		}
	}
}

// ensureState lazily materialises the window's mergeable state.
func (a *aggSub) ensureState(w *aggWindow) agg.State {
	if w.state == nil {
		w.state = a.cfg.New()
	}
	return w.state
}

// release resets a closed window's wrapper (keeping whatever state it still
// owns, reset for reuse) and returns it to the free list.
func (a *aggSub) release(w *aggWindow) {
	if w == nil {
		return
	}
	w.childDone = 0
	for i := range w.parts {
		w.parts[i] = nil
	}
	if w.state != nil {
		w.state.Reset()
	}
	a.free = append(a.free, w)
}

// complete reports whether every child link has shipped its partial for the
// window. The exact (ship-every-reading) baseline relays raw readings under
// the readings' own lineage rounds, so the watermark alone proves
// completeness and no child counting applies.
func (a *aggSub) complete(w *aggWindow) bool {
	if a.cfg.Exact {
		return true
	}
	done := 0
	if w != nil {
		done = w.childDone
	}
	return done == len(a.children)
}

// registerAggregate stores an aggregate subscription arriving from origin m
// (self for local users) and forwards it along the reverse advertisement
// paths. Projection keeps a single-filter subscription intact — same
// instance, same ID — so the whole dissemination tree keys its partials by
// the subscriber's original ID.
func (n *Node) registerAggregate(ctx *netsim.Context, m topology.NodeID, sub *model.Subscription, isLocal bool) {
	if _, dup := n.aggs[sub.ID]; dup {
		return
	}
	spec := sub.Aggregate
	a := &aggSub{
		sub:     sub,
		spec:    spec,
		cfg:     spec.Config(),
		origin:  m,
		isLocal: isLocal,
		windows: map[int]*aggWindow{},
	}
	// The registration cascade shares one lineage round network-wide, so
	// every node derives the same first window: the one holding the round
	// after the registration round.
	a.nextClose = spec.WindowOf(ctx.Round() + 1)
	a.maxTick = n.lastTick
	if isLocal {
		a.empty = a.cfg.New().Result()
	}
	if n.aggs == nil {
		n.aggs = map[model.SubscriptionID]*aggSub{}
	}
	n.aggs[sub.ID] = a
	n.aggList = append(n.aggList, a)

	// Forward along the reverse advertisement paths exactly like
	// splitAndForward; local registrations require all sources advertised.
	if !isLocal || n.advs.HasAllSources(sub) {
		for _, j := range ctx.Neighbors() {
			if j == m {
				continue
			}
			if op := n.advs.Project(sub, j); op != nil {
				ctx.SendSubscription(j, op)
				a.children = append(a.children, j)
			}
		}
	}
	// Catch up: when the watermark overtook the registration cascade
	// (windowed replay), windows may already be finalisable — close them now
	// (shipping empty partials) so parents upstream are never left waiting.
	n.closeAggWindows(ctx, a)
}

// retractAggregate intercepts the retraction of an aggregate subscription:
// it reports false when the ID is not a registered aggregate (the caller
// proceeds with ordinary operator retraction). Open windows are dropped —
// the user no longer wants results, and upstream nodes retract in the same
// cascade so nobody waits on a final partial.
func (n *Node) retractAggregate(ctx *netsim.Context, m topology.NodeID, id model.SubscriptionID) bool {
	a := n.aggs[id]
	if a == nil {
		return false
	}
	if m != a.origin {
		// A retraction is only honoured on the link the registration came
		// from (the tree parent); anything else is a stray duplicate.
		return true
	}
	delete(n.aggs, id)
	for i, e := range n.aggList {
		if e == a {
			copy(n.aggList[i:], n.aggList[i+1:])
			n.aggList[len(n.aggList)-1] = nil
			n.aggList = n.aggList[:len(n.aggList)-1]
			break
		}
	}
	for _, child := range a.children {
		ctx.SendUnsubscription(child, id)
	}
	return true
}

// accumulateLocal folds one locally published reading into every matching
// aggregate subscription's open window. Only the publishing node
// accumulates a reading (exactly-once network-wide); under the exact
// baseline the reading is instead relayed raw towards the subscriber.
func (n *Node) accumulateLocal(ctx *netsim.Context, ev model.Event) {
	for _, a := range n.aggList {
		if !a.sub.MatchesReading(ev) {
			continue
		}
		g := a.spec.WindowOf(ev.Round)
		if g < a.nextClose {
			// Late reading for an already-finalised (or pre-registration)
			// window; the window's result has shipped.
			continue
		}
		if a.cfg.Exact && !a.isLocal {
			_, end := a.spec.WindowBounds(g)
			ctx.SendPartialAggregate(a.origin, &netsim.PartialAggregate{
				SubID:    a.sub.ID,
				Window:   g,
				EndRound: end,
				Ev:       ev,
				Raw:      true,
			}, 1)
			continue
		}
		a.ensureState(a.window(g)).Add(ev.Value)
	}
}

// HandleWatermark implements netsim.WatermarkHandler: the engine announces
// that every item of rounds ≤ wm has been dispatched network-wide. Ticks
// can arrive out of order under the concurrent engine; stale ones are
// ignored.
func (n *Node) HandleWatermark(ctx *netsim.Context, wm int) {
	if wm <= n.lastTick {
		return
	}
	n.lastTick = wm
	for _, a := range n.aggList {
		if wm > a.maxTick {
			a.maxTick = wm
			n.closeAggWindows(ctx, a)
		}
	}
}

// HandlePartialAggregate implements netsim.AggregateHandler: a child (or,
// for raw relays, any downstream node) shipped window data upstream.
func (n *Node) HandlePartialAggregate(ctx *netsim.Context, from topology.NodeID, pa *netsim.PartialAggregate) {
	a := n.aggs[pa.SubID]
	if a == nil {
		return
	}
	if pa.Raw {
		// Exact baseline: a relayed raw reading. Aggregate it here if this
		// is the subscriber's node, otherwise pass it one hop closer.
		if !a.isLocal {
			ctx.SendPartialAggregate(a.origin, pa, 1)
			return
		}
		if g := a.spec.WindowOf(pa.Ev.Round); g >= a.nextClose {
			a.ensureState(a.window(g)).Add(pa.Ev.Value)
		}
		return
	}
	w := a.window(pa.Window)
	if pa.State != nil {
		// Ownership of the shipped state moves with the message. It is
		// parked in the sender's child slot and folded in at close time so
		// the merge order is canonical (see fold).
		if i := a.childIndex(from); i >= 0 {
			w.parts[i] = pa.State
		} else if w.state == nil {
			// A partial from a link that is not a recorded child cannot
			// happen under the registration invariants; merge it eagerly
			// rather than lose data if it ever does.
			w.state = pa.State
		} else {
			w.state.Merge(pa.State)
		}
	}
	w.childDone++
	n.closeAggWindows(ctx, a)
}

// closeAggWindows finalises every closable window of one subscription, in
// window order: the watermark must have passed the window's end round and
// every child must have reported. Closing ships one partial upstream — or
// delivers the result at the subscriber's node — and recycles the window.
func (n *Node) closeAggWindows(ctx *netsim.Context, a *aggSub) {
	for {
		g := a.nextClose
		_, end := a.spec.WindowBounds(g)
		if end > a.maxTick {
			return
		}
		w := a.windows[g]
		if !a.complete(w) {
			return
		}
		a.nextClose++
		if w != nil {
			delete(a.windows, g)
		}
		a.fold(w)
		n.emitWindow(ctx, a, g, w)
		a.release(w)
	}
}

// emitWindow produces one finalised window: the subscriber's node delivers
// the result to the user; every other node ships exactly one partial to its
// tree parent (a nil state for an empty window). Exact-baseline nodes other
// than the subscriber's have already relayed their readings raw and ship
// nothing at close.
func (n *Node) emitWindow(ctx *netsim.Context, a *aggSub, g int, w *aggWindow) {
	start, end := a.spec.WindowBounds(g)
	if a.isLocal {
		value, count := a.empty, int64(0)
		if w != nil && w.state != nil {
			value = w.state.Result()
			count = w.state.Count()
		}
		ctx.DeliverAggregate(a.sub.ID, netsim.AggregateResult{
			Window:     g,
			StartRound: start,
			EndRound:   end,
			Value:      value,
			Count:      count,
		})
		return
	}
	if a.cfg.Exact {
		return
	}
	var st agg.State
	if w != nil && w.state != nil {
		st = w.state
		// Ownership moves to the message: the wrapper is recycled without
		// the state, and the parent adopts or merges it.
		w.state = nil
		if qd, ok := st.(*agg.QDigest); ok {
			// One compression per shipped partial bounds both the message
			// size (EncodedSize is measured after this) and the cumulative
			// rank error to ε = log2(σ)/k.
			qd.Compress()
		}
	}
	ctx.SendPartialAggregate(a.origin, &netsim.PartialAggregate{
		SubID:    a.sub.ID,
		Window:   g,
		EndRound: end,
		State:    st,
	}, 1)
}

// AggregateSubscriptionCount reports how many aggregate subscriptions are
// registered at this node (for tests and diagnostics).
func (n *Node) AggregateSubscriptionCount() int { return len(n.aggList) }
