package core

import (
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/topology"
)

// This file implements subscription propagation (Algorithms 2-4): filtering
// of incoming subscriptions against the subscriptions already received from
// the same origin, and the split-and-forward phase that routes the surviving
// operators along the reverse advertisement paths.

// LocalSubscribe implements netsim.Handler: a user at this node registers a
// subscription. The subscription is always remembered for local delivery;
// whether it is forwarded into the network depends on the filtering decision
// and on all of its data sources being advertised (Algorithm 3, line 3).
func (n *Node) LocalSubscribe(ctx *netsim.Context, sub *model.Subscription) {
	if sub == nil {
		return
	}
	n.observeDeltaT(sub.DeltaT)
	// Filtering runs first so that registerLocal can reuse the cover link
	// the subscription table records when the checker files the
	// subscription as covered — local delivery matching then prunes it
	// behind its cover without a scan of its own. No event can interleave
	// between the two calls (the engines dispatch one item at a time per
	// node), so delivery registration is not delayed observably.
	n.processSubscription(ctx, n.self, sub, true)
	n.registerLocal(sub)
}

// HandleSubscription implements netsim.Handler: a subscription or operator
// arrives from a neighbouring node.
func (n *Node) HandleSubscription(ctx *netsim.Context, from topology.NodeID, sub *model.Subscription) {
	if sub == nil {
		return
	}
	n.observeDeltaT(sub.DeltaT)
	n.processSubscription(ctx, from, sub, false)
}

// registerLocal records a whole user subscription for result delivery at
// this node, regardless of any filtering decision: even a covered
// subscription defines what its user must receive (Algorithm 5, line 9 uses
// S_local, i.e. all local subscriptions).
func (n *Node) registerLocal(sub *model.Subscription) {
	for _, existing := range n.localSubs {
		if existing.ID == sub.ID {
			return
		}
	}
	// Covering-aware delivery matching: when the filtering pass stored the
	// subscription as covered by a single earlier one (the table records
	// the link as a by-product — no scan is paid here), it rides that
	// subscription's index entries and is tested only when the cover
	// matched. The cover is a local subscription too (origin self), so it
	// is in localIdx; the index degrades to a plain Add when the link is
	// empty or the cover is itself attached as covered.
	n.localSubs = append(n.localSubs, sub)
	if sub.Aggregate != nil {
		// Aggregate subscriptions never join the delivery match index:
		// their results come from the window-close path, not from
		// complex-event matching.
		return
	}
	if cover := n.subs.CoverOf(n.self, sub.ID); cover != "" {
		n.localIdx.AddCovered(sub, cover)
	} else {
		n.localIdx.Add(sub)
	}
}

// processSubscription implements Algorithm 4 for a subscription arriving
// from origin m (m == self for local users).
func (n *Node) processSubscription(ctx *netsim.Context, m topology.NodeID, sub *model.Subscription, isLocal bool) {
	if sub.Aggregate != nil {
		// Aggregate queries take a dedicated path: no subsumption filtering
		// (two identical aggregate specs must both produce results), no
		// subscription table, no event matchers — see aggregate.go.
		n.registerAggregate(ctx, m, sub, isLocal)
		return
	}
	if n.subs.Seen(m, sub.ID) {
		return
	}
	filterSet := n.subs.Uncovered(m)
	if n.checker.Subsumed(sub, filterSet) {
		// Covered subscriptions are stored but neither forwarded nor used
		// for per-neighbour matching (Algorithm 4, line 12). With
		// per-subscription propagation they still generate their own result
		// set at this node, which is exactly the "missing result set
		// generated where covering was detected" of Section III-A.
		n.subs.AddCovered(m, sub)
		if n.cfg.Propagation == PerSubscription && !isLocal {
			// The table just recorded which uncovered operator covers this
			// one (when a single cover exists); threading the link into the
			// match index lets candidate enumeration skip this operator
			// whenever its cover did not match the event.
			n.addMatcherWithCover(m, sub, n.subs.CoverOf(m, sub.ID))
		}
		return
	}
	n.subs.AddUncovered(m, sub)
	if !isLocal {
		n.addMatcher(m, sub)
	}
	n.splitAndForward(ctx, m, sub, isLocal)
}

// splitAndForward implements Algorithm 3 plus the binary-join variant of
// Section III-B.
func (n *Node) splitAndForward(ctx *netsim.Context, m topology.NodeID, sub *model.Subscription, isLocal bool) {
	// Subscriptions from local users are answerable only if every filtered
	// source is advertised; otherwise they are dropped here (stored for
	// delivery, never forwarded).
	if isLocal && !n.advs.HasAllSources(sub) {
		return
	}

	// Forwarding follows the reverse advertisement paths for every policy:
	// the multi-join (binary-join) approach also "preserves the natural
	// splitting into simple operators according to the network connections"
	// (Section III-B) — the binary-join decomposition only changes how
	// stored operators are *matched* against events (see addMatcher), which
	// is where its false positives come from. This keeps its subscription
	// load essentially identical to operator placement, as the paper
	// observes in Figures 4 and 6.
	for _, j := range ctx.Neighbors() {
		if j == m {
			continue
		}
		if op := n.advs.Project(sub, j); op != nil {
			ctx.SendSubscription(j, op)
			n.recordForward(m, sub.ID, j, op.ID)
		}
	}
}

// recordForward remembers that the operator stored under (origin, id) was
// forwarded to neighbour j as operator op. A retraction of (origin, id)
// replays these links with unsubscription messages (see unsubscribe.go).
// Link slices released by retractions are reused for new registrations
// (fwdFree), so churn does not grow fresh storage per subscription.
func (n *Node) recordForward(origin topology.NodeID, id model.SubscriptionID, j topology.NodeID, op model.SubscriptionID) {
	byID := n.forwards[origin]
	if byID == nil {
		byID = map[model.SubscriptionID][]forwardedOp{}
		n.forwards[origin] = byID
	}
	links, seen := byID[id]
	if !seen {
		if k := len(n.fwdFree); k > 0 {
			links = n.fwdFree[k-1]
			n.fwdFree[k-1] = nil
			n.fwdFree = n.fwdFree[:k-1]
		}
	}
	byID[id] = append(links, forwardedOp{to: j, op: op})
}
