// Package core implements the paper's primary contribution: the
// filter-split-forward processing of continuous multi-join queries over a
// distributed network of processing nodes (Section V, Algorithms 1-5).
//
// A Node is the per-processing-node protocol handler hosted by the netsim
// engines. Its behaviour is determined by three policies that correspond
// exactly to the columns of Table II in the paper:
//
//	subscription filtering — which subsumption checker filters incoming
//	    subscriptions (none / pairwise covering / probabilistic set filtering);
//	subscription splitting — how operators are split while following the
//	    reverse advertisement paths (simple per-neighbour projection, or the
//	    binary-join decomposition of the distributed multi-join approach);
//	event propagation — whether result sets are deduplicated per neighbour
//	    link (publish/subscribe forwarding) or constructed per subscription.
//
// The Filter-Split-Forward approach of the paper is NewFSF; the competitor
// configurations live in the internal/protocol/... packages and differ only
// in the Config they pass to NewFactory.
package core

import (
	"fmt"

	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/stores"
	"sensorcq/internal/subsume"
	"sensorcq/internal/topology"
)

// SplitPolicy selects how subscriptions are split into correlation operators
// while being forwarded towards the data sources.
type SplitPolicy int

const (
	// SplitSimple projects the subscription onto each neighbour's advertised
	// data space (Algorithm 3); operators shrink naturally as advertisement
	// paths diverge until they reach the sensors as simple operators.
	SplitSimple SplitPolicy = iota
	// SplitBinaryJoin is the distributed adaptation of Chandramouli & Yang
	// (Section III-B): subscriptions are routed like SplitSimple ("the
	// natural splitting into simple operators"), but every node that stores
	// a multi-join over three or more attributes evaluates it as the set of
	// binary joins obtained from the configured pairing. Binary-join
	// matching sanctions a main attribute's events with a single filtering
	// attribute, so events can be forwarded towards the subscriber even
	// when the full multi-join correlation never completes — the false
	// positives the paper measures.
	SplitBinaryJoin
)

// String implements fmt.Stringer.
func (p SplitPolicy) String() string {
	if p == SplitBinaryJoin {
		return "binary-join"
	}
	return "simple"
}

// EventPropagation selects how result sets are forwarded back towards the
// subscribers.
type EventPropagation int

const (
	// PerNeighbor forwards each simple event at most once per link
	// (publish/subscribe forwarding); overlapping result sets share the
	// dissemination cost. Used by Filter-Split-Forward and the distributed
	// multi-join approach.
	PerNeighbor EventPropagation = iota
	// PerSubscription constructs one result set per stored subscription; the
	// same event is re-sent over a link once per overlapping subscription.
	// Used by the naive and operator-placement approaches.
	PerSubscription
)

// String implements fmt.Stringer.
func (p EventPropagation) String() string {
	if p == PerSubscription {
		return "per-subscription"
	}
	return "per-neighbor"
}

// Config selects the behaviour of a Node. The zero value is not valid; use
// one of the constructors or fill in every field.
type Config struct {
	// Name identifies the approach in reports ("filter-split-forward", ...).
	Name string
	// Checker is the subscription filtering policy, shared by every node
	// built from this configuration. Use it for stateless checkers
	// (pairwise, none); stateful checkers such as the probabilistic set
	// filter should use CheckerFactory instead so that each node owns an
	// independent instance (required by the concurrent engine).
	Checker subsume.Checker
	// CheckerFactory, when non-nil, builds a per-node filtering checker and
	// takes precedence over Checker.
	CheckerFactory func(node topology.NodeID) subsume.Checker
	// Split is the subscription splitting policy.
	Split SplitPolicy
	// Pairing selects the binary-join pairing when Split is SplitBinaryJoin.
	Pairing model.BinaryJoinPairing
	// Propagation is the event propagation policy.
	Propagation EventPropagation
	// ValidityFactor scales each node's event validity: validity =
	// ValidityFactor × (largest δt seen). The paper only requires validity
	// to exceed δt; the default factor is 2.
	ValidityFactor int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("core: config needs a name")
	}
	if c.Checker == nil && c.CheckerFactory == nil {
		return fmt.Errorf("core: config %q needs a subsumption checker", c.Name)
	}
	return nil
}

// checkerFor resolves the filtering checker for one node.
func (c Config) checkerFor(node topology.NodeID) subsume.Checker {
	if c.CheckerFactory != nil {
		return c.CheckerFactory(node)
	}
	return c.Checker
}

// DefaultSetFilterError is the error probability the FSF configuration uses
// for its probabilistic set-subsumption checker unless overridden.
const DefaultSetFilterError = 0.02

// NewFSFConfig returns the paper's Filter-Split-Forward configuration:
// probabilistic set filtering, simple splitting, per-neighbour event
// propagation. Each node receives its own set-subsumption checker seeded
// from the given seed and the node ID, so runs are reproducible and nodes
// never share mutable state.
func NewFSFConfig(setFilterError float64, seed int64) Config {
	return Config{
		Name: "filter-split-forward",
		CheckerFactory: func(node topology.NodeID) subsume.Checker {
			mixed := seed ^ int64(uint64(node+1)*0x9e3779b97f4a7c15>>1)
			return subsume.NewSetChecker(setFilterError, mixed)
		},
		Split:       SplitSimple,
		Propagation: PerNeighbor,
	}
}

// NewFSF returns a handler factory for the Filter-Split-Forward approach
// with the default set-filter error probability.
func NewFSF(seed int64) netsim.HandlerFactory {
	return NewFactory(NewFSFConfig(DefaultSetFilterError, seed))
}

// NewFactory returns a netsim.HandlerFactory producing one Node per
// processing node with the given configuration. It panics on an invalid
// configuration (a programming error, not an input error).
func NewFactory(cfg Config) netsim.HandlerFactory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.ValidityFactor <= 0 {
		cfg.ValidityFactor = 2
	}
	return func(node topology.NodeID) netsim.Handler {
		return NewNode(node, cfg)
	}
}

// Node is the per-node protocol state and logic.
type Node struct {
	cfg     Config
	checker subsume.Checker
	self    topology.NodeID
	ctx     *netsim.Context

	advs   *stores.AdvertisementTable
	subs   *stores.SubscriptionTable
	window *stores.EventWindow

	// matchers holds, per origin, the operators used for event matching,
	// range-indexed over their filter predicates (stores.EventIndex). With
	// SplitBinaryJoin, multi-joins are replaced here by their binary joins;
	// with SplitSimple the uncovered (or, for per-subscription propagation,
	// all) operators appear as-is.
	matchers map[topology.NodeID]*stores.EventIndex

	// localSubs are the whole user subscriptions registered at this node;
	// localIdx range-indexes them for delivery matching.
	localSubs []*model.Subscription
	localIdx  *stores.EventIndex

	// forwards records, per origin and stored operator, the links the
	// operator's split projections were forwarded on (and under which
	// derived operator ID): the reverse forwarding paths a retraction must
	// walk. Entries are released when the operator is retracted.
	forwards map[topology.NodeID]map[model.SubscriptionID][]forwardedOp

	// pending is the scratch buffer matchAndForward gathers a trigger's
	// not-yet-sent match components into before sending them in canonical
	// (sequence) order; kept on the node to avoid a per-event allocation.
	pending []model.Event

	// scratch is the node's reusable complex-match working storage
	// (candidate lists + backtracking selection). It is safe because each
	// node's handler runs on at most one goroutine at a time, and match
	// callbacks never recurse into another enumeration on the same node.
	scratch model.MatchScratch

	// dedupIDs caches the interned event-window key of each (origin,
	// operator) forwarding pair, so the per-event dedup check never renders
	// a key string.
	dedupIDs map[dedupCacheKey]uint32

	// fwdFree recycles the per-(origin,operator) forwarding-link slices that
	// retractions release, so subscribe→unsubscribe churn reuses link
	// storage instead of growing fresh slices for every registration.
	fwdFree [][]forwardedOp

	// aggs registers the windowed aggregate subscriptions routed through
	// this node, keyed by subscription ID; aggList iterates them in
	// registration order for reading accumulation and watermark ticks.
	// Aggregate subscriptions bypass the subscription table, the subsumption
	// checker and the match indexes entirely (see aggregate.go).
	aggs    map[model.SubscriptionID]*aggSub
	aggList []*aggSub

	// lastTick is the highest watermark announced to this node. It is
	// tracked even before any aggregate subscription registers, because a
	// registration arriving mid-stream needs it to catch up on windows the
	// network has already finalised.
	lastTick int

	// reexposeScratch backs the covered-set snapshot each retraction's
	// re-exposure walk iterates (the walk promotes entries, which mutates the
	// covered slice under it). Borrowed and returned within one reexpose
	// call; safe for the same reason scratch is.
	reexposeScratch []*model.Subscription

	maxDeltaT model.Timestamp
}

// forwardedOp is one recorded forwarding decision: the operator with ID op
// was sent to neighbour to.
type forwardedOp struct {
	to topology.NodeID
	op model.SubscriptionID
}

// NewNode builds a protocol node. Most callers should use NewFactory and let
// the engine construct nodes.
func NewNode(self topology.NodeID, cfg Config) *Node {
	if cfg.ValidityFactor <= 0 {
		cfg.ValidityFactor = 2
	}
	subs := stores.NewSubscriptionTable(self)
	// Remote covered operators are registered for matching (and hence can
	// consume a cover link) only under per-subscription propagation; other
	// policies skip the table's link-recording scan for remote arrivals.
	subs.RecordRemoteCoverLinks(cfg.Propagation == PerSubscription)
	return &Node{
		cfg:      cfg,
		checker:  cfg.checkerFor(self),
		self:     self,
		advs:     stores.NewAdvertisementTable(self),
		subs:     subs,
		window:   stores.NewEventWindow(1),
		matchers: map[topology.NodeID]*stores.EventIndex{},
		localIdx: stores.NewEventIndex(),
		forwards: map[topology.NodeID]map[model.SubscriptionID][]forwardedOp{},
	}
}

// Init implements netsim.Handler.
func (n *Node) Init(ctx *netsim.Context) { n.ctx = ctx }

// Name returns the configured approach name.
func (n *Node) Name() string { return n.cfg.Name }

// Self returns the node's identifier.
func (n *Node) Self() topology.NodeID { return n.self }

// Advertisements exposes the node's advertisement table (for tests and
// diagnostics).
func (n *Node) Advertisements() *stores.AdvertisementTable { return n.advs }

// Subscriptions exposes the node's subscription table (for tests and
// diagnostics).
func (n *Node) Subscriptions() *stores.SubscriptionTable { return n.subs }

// Window exposes the node's event window (for tests and diagnostics).
func (n *Node) Window() *stores.EventWindow { return n.window }

// LocalSubscriptions returns the user subscriptions registered at this node.
func (n *Node) LocalSubscriptions() []*model.Subscription { return n.localSubs }

// IndexStats aggregates the shape and lookup tallies of every match index
// this node maintains: the local delivery index plus one matcher index per
// origin (for tests and diagnostics).
func (n *Node) IndexStats() stores.IndexStats {
	stats := n.localIdx.Stats()
	for _, idx := range n.matchers {
		stats.Merge(idx.Stats())
	}
	return stats
}

// observeDeltaT grows the event window validity so that it always exceeds
// the largest temporal correlation distance seen so far.
func (n *Node) observeDeltaT(dt model.Timestamp) {
	if dt > n.maxDeltaT {
		n.maxDeltaT = dt
		n.window.Validity = model.Timestamp(n.cfg.ValidityFactor) * dt
	}
}

// addMatcher registers an operator for event matching on behalf of origin.
func (n *Node) addMatcher(origin topology.NodeID, sub *model.Subscription) {
	n.addMatcherWithCover(origin, sub, "")
}

// addMatcherWithCover registers an operator for event matching, threading
// the cover link recorded by the subscription table into the index: a
// covered operator attaches to its covering operator's tree entries and is
// tested only when the cover matched, instead of adding entries of its own.
// The link is ignored for the binary-join decomposition, whose derived
// operators are not the subscription the cover relation was computed for.
func (n *Node) addMatcherWithCover(origin topology.NodeID, sub *model.Subscription, cover model.SubscriptionID) {
	idx := n.matchers[origin]
	if idx == nil {
		idx = stores.NewEventIndex()
		n.matchers[origin] = idx
	}
	if n.splitsForMatching(sub) {
		for _, op := range sub.SplitBinaryJoins(n.cfg.Pairing) {
			idx.Add(op)
		}
		return
	}
	if cover != "" {
		idx.AddCovered(sub, cover)
		return
	}
	idx.Add(sub)
}

// removeMatcher retracts an operator (and, for the binary-join split, every
// binary join derived from it) from the origin's match index.
func (n *Node) removeMatcher(origin topology.NodeID, sub *model.Subscription) {
	idx := n.matchers[origin]
	if idx == nil {
		return
	}
	if n.splitsForMatching(sub) {
		for _, op := range sub.SplitBinaryJoins(n.cfg.Pairing) {
			idx.Remove(op.ID)
		}
		return
	}
	idx.Remove(sub.ID)
}

// promoteMatcher re-roots an operator that is already registered for
// matching after its cover was retracted: EventIndex.Add promotes a covered
// entry to a full member with tree entries of its own (and is a no-op for an
// operator that already is one), so the operator's matches stop depending on
// a cover that may no longer exist.
func (n *Node) promoteMatcher(origin topology.NodeID, sub *model.Subscription) {
	idx := n.matchers[origin]
	if idx == nil {
		return
	}
	if n.splitsForMatching(sub) {
		for _, op := range sub.SplitBinaryJoins(n.cfg.Pairing) {
			idx.Add(op)
		}
		return
	}
	idx.Add(sub)
}

// splitsForMatching reports whether the subscription is evaluated as its
// binary-join decomposition rather than as-is. Kept as a predicate — with
// the decomposition slice built only inside the branch that needs it — so
// the common single-operator paths allocate nothing. The decomposition
// derives deterministic operator IDs, so add, promote and remove resolve the
// same entries.
func (n *Node) splitsForMatching(sub *model.Subscription) bool {
	return n.cfg.Split == SplitBinaryJoin && sub.NumFilters() > 2
}
