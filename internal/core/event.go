package core

import (
	"cmp"
	"fmt"
	"slices"

	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/topology"
)

// This file implements event propagation (Algorithm 5): storing incoming
// simple events in the timestamp-ordered window, detecting complex events
// that match the operators stored for each neighbour, forwarding the
// component events on the reverse subscription paths with the configured
// deduplication granularity, and delivering complex events to local users.

// LocalPublish implements netsim.Handler: a sensor attached to this node
// produced a reading.
func (n *Node) LocalPublish(ctx *netsim.Context, ev model.Event) {
	// Aggregate queries consume readings at the publishing node only, which
	// is what makes network-wide accumulation exactly-once (forwarded copies
	// of the event never reach this path).
	if len(n.aggList) > 0 {
		n.accumulateLocal(ctx, ev)
	}
	n.processEvent(ctx, n.self, ev)
}

// HandleEvent implements netsim.Handler: a simple event arrives from a
// neighbour.
func (n *Node) HandleEvent(ctx *netsim.Context, from topology.NodeID, ev model.Event) {
	n.processEvent(ctx, from, ev)
}

// processEvent is the body of Algorithm 5.
func (n *Node) processEvent(ctx *netsim.Context, from topology.NodeID, ev model.Event) {
	if !n.window.Insert(ev) {
		// Duplicate arrival (possible when per-subscription result sets
		// overlap): the window content did not change, so every match this
		// event can participate in has already been evaluated.
		return
	}
	now := ev.Time
	if latest := n.window.Latest(); latest > now {
		now = latest
	}
	n.window.Prune(now)

	// Forward towards every origin that registered interest, except the
	// node the event just came from.
	for _, origin := range n.subs.Origins() {
		if origin == from || origin == n.self {
			continue
		}
		n.matchAndForward(ctx, origin, ev)
	}
	// Deliver to local users.
	n.deliverLocal(ctx, ev)
}

// dedupKey returns the interned "already forwarded" key ID for an event sent
// to the given origin on behalf of the given operator, realising the event
// propagation column of Table II: per-neighbour forwarding shares one key
// per link, per-subscription forwarding uses one key per (link, operator).
// The string is rendered once per distinct pair and cached; the steady-state
// forwarding path reuses the small integer ID.
func (n *Node) dedupKey(origin topology.NodeID, op *model.Subscription) uint32 {
	k := dedupCacheKey{origin: origin}
	if n.cfg.Propagation == PerSubscription {
		k.op = op.ID
	}
	if id, ok := n.dedupIDs[k]; ok {
		return id
	}
	var s string
	if n.cfg.Propagation == PerSubscription {
		s = fmt.Sprintf("n:%d|s:%s", origin, op.ID)
	} else {
		s = fmt.Sprintf("n:%d", origin)
	}
	id := n.window.KeyID(s)
	if n.dedupIDs == nil {
		n.dedupIDs = map[dedupCacheKey]uint32{}
	}
	n.dedupIDs[k] = id
	return id
}

// dedupCacheKey identifies one interned forwarding key: the origin link and,
// under per-subscription propagation, the operator it forwards for.
type dedupCacheKey struct {
	origin topology.NodeID
	op     model.SubscriptionID
}

// matchAndForward finds the complex events involving ev that match operators
// stored for origin and forwards their not-yet-sent component events to it.
//
// Every completed match is enumerated, not just one: the set of components a
// node forwards per round is then the union over all complex events the
// round's arrivals complete, which is a monotone function of what arrived —
// independent of arrival order. That is the property the pipelined delivery
// mode's per-round conformance oracle rests on (a single selected match
// would depend on which events happened to be in the window first).
//
// The components are sent in sequence-number order, not in the order the
// candidate enumeration discovered them: the index's candidate order is
// unspecified (a tree walk, not insertion order), and the arrival order on a
// link decides how the receiver's window prunes near the validity boundary —
// sending in canonical order keeps the protocol's observable behaviour a
// function of the match set alone, whatever structure the index uses.
func (n *Node) matchAndForward(ctx *netsim.Context, origin topology.NodeID, ev model.Event) {
	// The range index hands over exactly the operators the event satisfies
	// (value inside the filter range, location inside the region); operators
	// that merely share the attribute type are pruned without being visited.
	idx := n.matchers[origin]
	if idx == nil {
		return
	}
	pending := n.pending[:0]
	idx.Candidates(ev, func(op *model.Subscription) bool {
		key := n.dedupKey(origin, op)
		window := n.window.Around(ev.Time, op.DeltaT)
		op.ForEachComplexMatchScratch(window, &ev, &n.scratch, func(match model.ComplexEvent) bool {
			for _, component := range match {
				if n.window.WasSent(component, key) {
					continue
				}
				n.window.MarkSent(component, key)
				pending = append(pending, component)
			}
			return true
		})
		return true
	})
	if len(pending) > 1 {
		slices.SortFunc(pending, func(a, b model.Event) int { return cmp.Compare(a.Seq, b.Seq) })
	}
	for _, component := range pending {
		ctx.SendEvent(origin, component)
	}
	n.pending = pending[:0]
}

// deliverLocal checks the whole user subscriptions registered at this node
// and delivers every complex event completed by ev. A complex event is
// completed exactly once — when the last of its components arrives (a
// duplicate arrival returns before matching, so it cannot re-complete
// anything) — so each matching complex event is delivered exactly once, in
// the round that completed it, whatever order the components arrived in.
func (n *Node) deliverLocal(ctx *netsim.Context, ev model.Event) {
	n.localIdx.Candidates(ev, func(sub *model.Subscription) bool {
		window := n.window.Around(ev.Time, sub.DeltaT)
		// The scratch-owned match is only read within the callback;
		// DeliverToUser copies the components into the delivery log.
		sub.ForEachComplexMatchScratch(window, &ev, &n.scratch, func(match model.ComplexEvent) bool {
			ctx.DeliverToUser(sub.ID, match)
			return true
		})
		return true
	})
}
