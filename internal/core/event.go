package core

import (
	"fmt"

	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/topology"
)

// This file implements event propagation (Algorithm 5): storing incoming
// simple events in the timestamp-ordered window, detecting complex events
// that match the operators stored for each neighbour, forwarding the
// component events on the reverse subscription paths with the configured
// deduplication granularity, and delivering complex events to local users.

// LocalPublish implements netsim.Handler: a sensor attached to this node
// produced a reading.
func (n *Node) LocalPublish(ctx *netsim.Context, ev model.Event) {
	n.processEvent(ctx, n.self, ev)
}

// HandleEvent implements netsim.Handler: a simple event arrives from a
// neighbour.
func (n *Node) HandleEvent(ctx *netsim.Context, from topology.NodeID, ev model.Event) {
	n.processEvent(ctx, from, ev)
}

// processEvent is the body of Algorithm 5.
func (n *Node) processEvent(ctx *netsim.Context, from topology.NodeID, ev model.Event) {
	if !n.window.Insert(ev) {
		// Duplicate arrival (possible when per-subscription result sets
		// overlap): the window content did not change, so every match this
		// event can participate in has already been evaluated.
		return
	}
	now := ev.Time
	if latest := n.window.Latest(); latest > now {
		now = latest
	}
	n.window.Prune(now)

	// Forward towards every origin that registered interest, except the
	// node the event just came from.
	for _, origin := range n.subs.Origins() {
		if origin == from || origin == n.self {
			continue
		}
		n.matchAndForward(ctx, origin, ev)
	}
	// Deliver to local users.
	n.deliverLocal(ctx, ev)
}

// dedupKey returns the "already forwarded" key for an event sent to the
// given origin on behalf of the given operator, realising the event
// propagation column of Table II: per-neighbour forwarding shares one key
// per link, per-subscription forwarding uses one key per (link, operator).
func (n *Node) dedupKey(origin topology.NodeID, op *model.Subscription) string {
	if n.cfg.Propagation == PerSubscription {
		return fmt.Sprintf("n:%d|s:%s", origin, op.ID)
	}
	return fmt.Sprintf("n:%d", origin)
}

// matchAndForward finds complex events involving ev that match operators
// stored for origin and forwards their not-yet-sent component events to it.
func (n *Node) matchAndForward(ctx *netsim.Context, origin topology.NodeID, ev model.Event) {
	// The range index hands over exactly the operators the event satisfies
	// (value inside the filter range, location inside the region); operators
	// that merely share the attribute type are pruned without being visited.
	idx := n.matchers[origin]
	if idx == nil {
		return
	}
	idx.Candidates(ev, func(op *model.Subscription) bool {
		window := n.window.Around(ev.Time, op.DeltaT)
		match, ok := op.FindComplexMatch(window, &ev)
		if !ok {
			return true
		}
		key := n.dedupKey(origin, op)
		for _, component := range match {
			if n.window.WasSent(component.Seq, key) {
				continue
			}
			ctx.SendEvent(origin, component)
			n.window.MarkSent(component.Seq, key)
		}
		return true
	})
}

// deliverLocal checks the whole user subscriptions registered at this node
// and delivers any complex event completed by ev. Component events already
// delivered for a subscription are not re-delivered.
func (n *Node) deliverLocal(ctx *netsim.Context, ev model.Event) {
	n.localIdx.Candidates(ev, func(sub *model.Subscription) bool {
		window := n.window.Around(ev.Time, sub.DeltaT)
		match, ok := sub.FindComplexMatch(window, &ev)
		if !ok {
			return true
		}
		key := "user:" + string(sub.ID)
		anyNew := false
		for _, component := range match {
			if !n.window.WasSent(component.Seq, key) {
				anyNew = true
				break
			}
		}
		if !anyNew {
			return true
		}
		ctx.DeliverToUser(sub.ID, match)
		for _, component := range match {
			n.window.MarkSent(component.Seq, key)
		}
		return true
	})
}
