package report

import (
	"strings"
	"testing"

	"sensorcq/internal/experiment"
)

func sampleResult() *experiment.Result {
	mk := func(id experiment.ApproachID, sub, ev int64, recall float64) experiment.ApproachSeries {
		return experiment.ApproachSeries{
			Approach: id,
			Points: []experiment.SeriesPoint{
				{InjectedQueries: 100, SubscriptionLoad: sub / 2, EventLoad: ev / 2, Recall: recall},
				{InjectedQueries: 200, SubscriptionLoad: sub, EventLoad: ev, Recall: recall},
			},
		}
	}
	return &experiment.Result{
		Scenario: experiment.SmallScale(),
		Approaches: []experiment.ApproachSeries{
			mk(experiment.Naive, 4000, 90000, 1),
			mk(experiment.OperatorPlacement, 3000, 60000, 1),
			mk(experiment.MultiJoin, 3000, 40000, 1),
			mk(experiment.FilterSplitForward, 2500, 20000, 0.98),
		},
	}
}

func TestWriteTablesContainAllApproaches(t *testing.T) {
	res := sampleResult()
	var b strings.Builder
	if err := WriteAll(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range experiment.AllDistributed() {
		if !strings.Contains(out, string(id)) {
			t.Errorf("output missing approach %s", id)
		}
	}
	for _, needle := range []string{
		"subscription load", "event load", "recall", "small-scale",
		"filter-split-forward vs naive", "log scale", "100", "200",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("output missing %q", needle)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	res := sampleResult()
	var b strings.Builder
	if err := WriteCSV(&b, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// Header + 4 approaches × 2 points.
	if len(lines) != 9 {
		t.Fatalf("CSV has %d lines, want 9", len(lines))
	}
	if lines[0] != "scenario,approach,injected_queries,subscription_load,event_load,recall" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "small-scale,naive,100,2000,45000,1.0000") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestWriteSummaryImprovements(t *testing.T) {
	res := sampleResult()
	var b strings.Builder
	if err := WriteSummary(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// FSF halves the naive event traffic and more.
	if !strings.Contains(out, "filter-split-forward vs naive") {
		t.Fatalf("missing improvement line: %s", out)
	}
	if !strings.Contains(out, "final point (200 injected queries)") {
		t.Errorf("missing final point header: %s", out)
	}
}

func TestWriteEmptyResultFails(t *testing.T) {
	var b strings.Builder
	if err := WriteSubscriptionLoadTable(&b, &experiment.Result{Scenario: experiment.SmallScale()}); err == nil {
		t.Error("empty result should be an error")
	}
}
