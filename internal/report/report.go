// Package report renders experiment results in the three formats the
// repository uses: fixed-width tables (terminal output mirroring the paper's
// figures as rows), CSV files (for external plotting), and rough ASCII
// charts that make the relative ordering of the approaches visible without
// any plotting tool.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"sensorcq/internal/experiment"
)

// WriteSubscriptionLoadTable writes the "number of forwarded queries" series
// of every approach (Figs. 4, 6, 8, 10) as a table.
func WriteSubscriptionLoadTable(w io.Writer, res *experiment.Result) error {
	return writeMetricTable(w, res, "subscription load (forwarded queries)", func(p experiment.SeriesPoint) string {
		return fmt.Sprintf("%d", p.SubscriptionLoad)
	})
}

// WriteEventLoadTable writes the "number of forwarded data units" series of
// every approach (Figs. 5, 7, 9, 11) as a table.
func WriteEventLoadTable(w io.Writer, res *experiment.Result) error {
	return writeMetricTable(w, res, "event load (forwarded data units)", func(p experiment.SeriesPoint) string {
		return fmt.Sprintf("%d", p.EventLoad)
	})
}

// WriteRecallTable writes the end-user event recall series (Fig. 12).
func WriteRecallTable(w io.Writer, res *experiment.Result) error {
	return writeMetricTable(w, res, "end-user event recall", func(p experiment.SeriesPoint) string {
		return fmt.Sprintf("%.1f%%", p.Recall*100)
	})
}

func writeMetricTable(w io.Writer, res *experiment.Result, title string, cell func(experiment.SeriesPoint) string) error {
	if len(res.Approaches) == 0 {
		return fmt.Errorf("report: result has no series")
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", res.Scenario.Name, title); err != nil {
		return err
	}
	// Header: injected query counts from the first series.
	header := make([]string, 0, len(res.Approaches[0].Points)+1)
	header = append(header, "approach")
	for _, p := range res.Approaches[0].Points {
		header = append(header, fmt.Sprintf("%d", p.InjectedQueries))
	}
	rows := [][]string{header}
	for _, series := range res.Approaches {
		row := []string{string(series.Approach)}
		for _, p := range series.Points {
			row = append(row, cell(p))
		}
		rows = append(rows, row)
	}
	return writeAligned(w, rows)
}

// writeAligned pads each column to its widest cell.
func writeAligned(w io.Writer, rows [][]string) error {
	widths := map[int]int{}
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for c, cell := range row {
			parts[c] = pad(cell, widths[c])
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// WriteCSV writes the full result as CSV with one row per (approach, point).
func WriteCSV(w io.Writer, res *experiment.Result) error {
	if _, err := fmt.Fprintln(w, "scenario,approach,injected_queries,subscription_load,event_load,recall"); err != nil {
		return err
	}
	for _, series := range res.Approaches {
		for _, p := range series.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%.4f\n",
				res.Scenario.Name, series.Approach, p.InjectedQueries, p.SubscriptionLoad, p.EventLoad, p.Recall); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSummary writes the final-point comparison of every approach plus the
// relative improvement of Filter-Split-Forward over each competitor, which
// is the headline number the paper reports ("we reduce the overall data
// traffic by half").
func WriteSummary(w io.Writer, res *experiment.Result) error {
	if _, err := fmt.Fprintf(w, "%s — final point (%d injected queries)\n",
		res.Scenario.Name, finalQueries(res)); err != nil {
		return err
	}
	rows := [][]string{{"approach", "subscription load", "event load", "recall"}}
	for _, series := range res.Approaches {
		f := series.Final()
		rows = append(rows, []string{
			string(series.Approach),
			fmt.Sprintf("%d", f.SubscriptionLoad),
			fmt.Sprintf("%d", f.EventLoad),
			fmt.Sprintf("%.1f%%", f.Recall*100),
		})
	}
	if err := writeAligned(w, rows); err != nil {
		return err
	}
	fsf := res.SeriesFor(experiment.FilterSplitForward)
	if fsf == nil {
		return nil
	}
	for _, series := range res.Approaches {
		if series.Approach == experiment.FilterSplitForward {
			continue
		}
		other := series.Final()
		own := fsf.Final()
		if other.EventLoad == 0 || other.SubscriptionLoad == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "filter-split-forward vs %-22s  event traffic -%5.1f%%   subscription traffic -%5.1f%%\n",
			series.Approach,
			100*(1-float64(own.EventLoad)/float64(other.EventLoad)),
			100*(1-float64(own.SubscriptionLoad)/float64(other.SubscriptionLoad))); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func finalQueries(res *experiment.Result) int {
	if len(res.Approaches) == 0 || len(res.Approaches[0].Points) == 0 {
		return 0
	}
	return res.Approaches[0].Final().InjectedQueries
}

// WriteASCIIChart draws a crude log-scale bar chart of the final event load
// of each approach, so that the ordering is visible directly in a terminal.
func WriteASCIIChart(w io.Writer, res *experiment.Result) error {
	type bar struct {
		name string
		v    int64
	}
	var bars []bar
	var max int64 = 1
	for _, series := range res.Approaches {
		v := series.Final().EventLoad
		bars = append(bars, bar{name: string(series.Approach), v: v})
		if v > max {
			max = v
		}
	}
	sort.Slice(bars, func(i, j int) bool { return bars[i].v > bars[j].v })
	if _, err := fmt.Fprintf(w, "%s — final event load (log scale)\n", res.Scenario.Name); err != nil {
		return err
	}
	const width = 50
	logMax := math.Log10(float64(max) + 1)
	for _, b := range bars {
		n := 0
		if b.v > 0 && logMax > 0 {
			n = int(math.Round(math.Log10(float64(b.v)+1) / logMax * width))
		}
		if _, err := fmt.Fprintf(w, "%-24s %10d |%s\n", b.name, b.v, strings.Repeat("#", n)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteAll writes summary, both load tables, the recall table and the chart.
func WriteAll(w io.Writer, res *experiment.Result) error {
	writers := []func(io.Writer, *experiment.Result) error{
		WriteSummary,
		WriteSubscriptionLoadTable,
		WriteEventLoadTable,
		WriteRecallTable,
		WriteASCIIChart,
	}
	for _, fn := range writers {
		if err := fn(w, res); err != nil {
			return err
		}
	}
	return nil
}
