// Package model defines the data model of Section IV of the paper: sensors,
// data-source advertisements, events, filters, identified and abstract
// subscriptions, correlation operators, and the matching semantics between
// (complex) events and subscriptions.
//
// The model is deliberately free of any networking concern: it only knows
// about values, not about nodes or links. The protocol packages build on it.
package model

import (
	"fmt"
	"slices"
	"strings"

	"sensorcq/internal/geom"
)

// AttributeType identifies the kind of measurement a sensor produces
// (temperature, humidity, ...). The paper denotes the set of attribute types
// as 𝒜.
type AttributeType string

// The five measurement types selected from the SensorScope Grand St. Bernard
// deployment used throughout the paper's evaluation (Section VI-A).
const (
	AmbientTemperature AttributeType = "ambient_temperature"
	SurfaceTemperature AttributeType = "surface_temperature"
	RelativeHumidity   AttributeType = "relative_humidity"
	WindSpeed          AttributeType = "wind_speed"
	WindDirection      AttributeType = "wind_direction"
)

// DefaultAttributes returns the paper's five attribute types in a stable
// order.
func DefaultAttributes() []AttributeType {
	return []AttributeType{
		AmbientTemperature,
		SurfaceTemperature,
		RelativeHumidity,
		WindSpeed,
		WindDirection,
	}
}

// SensorID uniquely identifies a physical sensor (a data source d).
type SensorID string

// SubscriptionID uniquely identifies a user subscription or a correlation
// operator derived from one.
type SubscriptionID string

// Timestamp is a logical time value (the unit is whatever the trace uses;
// the synthetic dataset uses seconds). Timestamps only ever participate in
// differences, so the origin is irrelevant.
type Timestamp int64

// Sensor describes a data source: a device of a fixed attribute type at a
// known location.
type Sensor struct {
	ID       SensorID
	Attr     AttributeType
	Location geom.Point2D
}

// Advertisement is the data-source advertisement DSA_d = (a_d, p_d) a sensor
// publishes to make its presence known. The sensor identity is carried along
// so that identified subscriptions can be routed.
type Advertisement struct {
	Sensor   SensorID
	Attr     AttributeType
	Location geom.Point2D
}

// Advertisement returns the advertisement describing the sensor.
func (s Sensor) Advertisement() Advertisement {
	return Advertisement{Sensor: s.ID, Attr: s.Attr, Location: s.Location}
}

// String implements fmt.Stringer.
func (s Sensor) String() string {
	return fmt.Sprintf("sensor(%s %s @ %s)", s.ID, s.Attr, s.Location)
}

// String implements fmt.Stringer.
func (a Advertisement) String() string {
	return fmt.Sprintf("adv(%s %s @ %s)", a.Sensor, a.Attr, a.Location)
}

// attributeKey builds a canonical, order-independent key for a set of
// attribute types.
func attributeKey(attrs []AttributeType) string {
	ss := make([]string, len(attrs))
	for i, a := range attrs {
		ss[i] = string(a)
	}
	slices.Sort(ss)
	return strings.Join(ss, "|")
}

// sensorKey builds a canonical, order-independent key for a set of sensors.
func sensorKey(ids []SensorID) string {
	ss := make([]string, len(ids))
	for i, d := range ids {
		ss[i] = string(d)
	}
	slices.Sort(ss)
	return strings.Join(ss, "|")
}

// SortedAttributes returns the attribute set in sorted order.
func SortedAttributes(in map[AttributeType]AttributeFilter) []AttributeType {
	out := make([]AttributeType, 0, len(in))
	for a := range in {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// SortedSensors returns the sensor set in sorted order.
func SortedSensors(in map[SensorID]SensorFilter) []SensorID {
	out := make([]SensorID, 0, len(in))
	for d := range in {
		out = append(out, d)
	}
	slices.Sort(out)
	return out
}
