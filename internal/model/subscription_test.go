package model

import (
	"strings"
	"testing"

	"sensorcq/internal/geom"
)

// Test helpers shared by the model tests.

func af(attr AttributeType, min, max float64) AttributeFilter {
	return AttributeFilter{Attr: attr, Range: geom.NewInterval(min, max)}
}

func sf(sensor SensorID, attr AttributeType, min, max float64) SensorFilter {
	return SensorFilter{Sensor: sensor, Attr: attr, Range: geom.NewInterval(min, max)}
}

func mustAbstract(t *testing.T, id SubscriptionID, region geom.Region, dt Timestamp, dl float64, filters ...AttributeFilter) *Subscription {
	t.Helper()
	s, err := NewAbstractSubscription(id, filters, region, dt, dl)
	if err != nil {
		t.Fatalf("NewAbstractSubscription(%s): %v", id, err)
	}
	return s
}

func mustIdentified(t *testing.T, id SubscriptionID, dt Timestamp, filters ...SensorFilter) *Subscription {
	t.Helper()
	s, err := NewIdentifiedSubscription(id, filters, dt)
	if err != nil {
		t.Fatalf("NewIdentifiedSubscription(%s): %v", id, err)
	}
	return s
}

func ev(seq uint64, sensor SensorID, attr AttributeType, value float64, ts Timestamp) Event {
	return Event{Seq: seq, Sensor: sensor, Attr: attr, Value: value, Time: ts}
}

func TestNewSubscriptionValidation(t *testing.T) {
	if _, err := NewIdentifiedSubscription("s", nil, 10); err == nil {
		t.Error("identified subscription without filters should fail")
	}
	if _, err := NewIdentifiedSubscription("s", []SensorFilter{sf("a", AmbientTemperature, 0, 1), sf("a", AmbientTemperature, 2, 3)}, 10); err == nil {
		t.Error("duplicate sensor filters should fail")
	}
	if _, err := NewAbstractSubscription("s", nil, geom.WholePlane(), 10, 1); err == nil {
		t.Error("abstract subscription without filters should fail")
	}
	if _, err := NewAbstractSubscription("s", []AttributeFilter{af(WindSpeed, 0, 1), af(WindSpeed, 2, 3)}, geom.WholePlane(), 10, 1); err == nil {
		t.Error("duplicate attribute filters should fail")
	}
	if _, err := NewAbstractSubscription("s", []AttributeFilter{af(WindSpeed, 0, 1)}, geom.WholePlane(), 0, 1); err == nil {
		t.Error("non-positive DeltaT should fail")
	}
	if _, err := NewAbstractSubscription("s", []AttributeFilter{af(WindSpeed, 0, 1)}, geom.WholePlane(), 10, 0); err == nil {
		t.Error("non-positive DeltaL should fail")
	}
	if _, err := NewAbstractSubscription("", []AttributeFilter{af(WindSpeed, 0, 1)}, geom.WholePlane(), 10, 1); err == nil {
		t.Error("empty ID should fail")
	}
	var nilSub *Subscription
	if err := nilSub.Validate(); err == nil {
		t.Error("nil subscription should fail validation")
	}
}

func TestSubscriptionAccessors(t *testing.T) {
	s := mustAbstract(t, "q1", geom.NewRegion(0, 0, 100, 100), 30, NoSpatialConstraint,
		af(AmbientTemperature, -5, 5), af(WindSpeed, 0, 20), af(RelativeHumidity, 40, 90))
	if !s.IsUserSubscription() {
		t.Error("freshly built subscription is a user subscription")
	}
	if s.NumFilters() != 3 || s.IsSimple() {
		t.Error("filter count wrong")
	}
	attrs := s.Attributes()
	if len(attrs) != 3 || attrs[0] != AmbientTemperature {
		t.Errorf("Attributes() = %v", attrs)
	}
	if s.Sensors() != nil {
		t.Error("abstract subscription has no sensors")
	}
	if !strings.HasPrefix(s.SignatureKey(), "ab:") {
		t.Errorf("SignatureKey() = %q", s.SignatureKey())
	}

	id := mustIdentified(t, "q2", 30, sf("d1", AmbientTemperature, 0, 1), sf("d2", WindSpeed, 2, 3))
	if got := id.Sensors(); len(got) != 2 || got[0] != "d1" {
		t.Errorf("Sensors() = %v", got)
	}
	if got := id.Attributes(); len(got) != 2 {
		t.Errorf("Attributes() of identified = %v", got)
	}
	if !strings.HasPrefix(id.SignatureKey(), "id:") {
		t.Errorf("SignatureKey() = %q", id.SignatureKey())
	}
	if id.SignatureKey() == s.SignatureKey() {
		t.Error("different kinds must have different signature keys")
	}
}

func TestSubscriptionCloneIndependence(t *testing.T) {
	s := mustAbstract(t, "q1", geom.WholePlane(), 30, NoSpatialConstraint, af(WindSpeed, 0, 20))
	c := s.Clone()
	c.AttrFilters[WindSpeed] = af(WindSpeed, 100, 200)
	if s.AttrFilters[WindSpeed].Range.Max != 20 {
		t.Error("Clone must not alias filter maps")
	}
	id := mustIdentified(t, "q2", 30, sf("d1", WindSpeed, 0, 1))
	c2 := id.Clone()
	c2.SensorFilters["d1"] = sf("d1", WindSpeed, 5, 6)
	if id.SensorFilters["d1"].Range.Max != 1 {
		t.Error("Clone must not alias sensor filter maps")
	}
}

func TestSubscriptionStringStable(t *testing.T) {
	s := mustAbstract(t, "q1", geom.NewRegion(0, 0, 1, 1), 30, 5,
		af(WindSpeed, 0, 20), af(AmbientTemperature, -5, 5))
	a := s.String()
	b := s.String()
	if a != b {
		t.Error("String() should be deterministic")
	}
	if !strings.Contains(a, "ambient_temperature") || !strings.Contains(a, "wind_speed") {
		t.Errorf("String() = %q", a)
	}
	id := mustIdentified(t, "q2", 30, sf("d1", WindSpeed, 0, 1))
	if !strings.Contains(id.String(), "identified") {
		t.Errorf("String() = %q", id.String())
	}
}

func TestSubscriptionBox(t *testing.T) {
	s := mustAbstract(t, "q1", geom.NewRegion(0, 0, 10, 10), 30, NoSpatialConstraint,
		af(WindSpeed, 0, 20), af(AmbientTemperature, -5, 5))
	b := s.Box()
	if b.NumDims() != 4 {
		t.Fatalf("bounded-region abstract subscription box should have 4 dims, got %d (%v)", b.NumDims(), b.Dims())
	}
	unbounded := mustAbstract(t, "q2", geom.WholePlane(), 30, NoSpatialConstraint, af(WindSpeed, 0, 20))
	if unbounded.Box().NumDims() != 1 {
		t.Error("whole-plane abstract subscription contributes no spatial dims")
	}
	id := mustIdentified(t, "q3", 30, sf("d1", WindSpeed, 0, 1), sf("d2", WindSpeed, 2, 3))
	if id.Box().NumDims() != 2 {
		t.Error("identified subscription box has one dim per sensor")
	}
}

func TestKindString(t *testing.T) {
	if KindIdentified.String() != "identified" || KindAbstract.String() != "abstract" {
		t.Error("Kind.String() wrong")
	}
	if Kind(42).String() != "kind(42)" {
		t.Error("unknown kind rendering wrong")
	}
}

func TestSensorAdvertisement(t *testing.T) {
	s := Sensor{ID: "d7", Attr: WindSpeed, Location: geom.Point2D{X: 1, Y: 2}}
	adv := s.Advertisement()
	if adv.Sensor != "d7" || adv.Attr != WindSpeed || adv.Location != s.Location {
		t.Errorf("Advertisement() = %v", adv)
	}
	if !strings.Contains(s.String(), "d7") || !strings.Contains(adv.String(), "wind_speed") {
		t.Error("String() renderings wrong")
	}
}
