package model

import "math"

// MatchesEvent reports whether a single simple event matches the
// subscription, i.e. whether the event satisfies the subscription's filter
// for the event's sensor (identified) or attribute type and region
// (abstract). This is the "simple event matches subscription" relation of
// Section IV-A.
func (s *Subscription) MatchesEvent(e Event) bool {
	if s.Kind == KindIdentified {
		f, ok := s.SensorFilters[e.Sensor]
		return ok && f.Range.Contains(e.Value)
	}
	f, ok := s.AttrFilters[e.Attr]
	if !ok {
		return false
	}
	return s.Region.Contains(e.Location) && f.Range.Contains(e.Value)
}

// FilterKeyFor returns the key (sensor for identified, attribute for
// abstract) under which the event would count towards the completeness
// condition of the subscription, and whether the subscription filters that
// key at all.
func (s *Subscription) FilterKeyFor(e Event) (string, bool) {
	if s.Kind == KindIdentified {
		if _, ok := s.SensorFilters[e.Sensor]; ok {
			return "d:" + string(e.Sensor), true
		}
		return "", false
	}
	if _, ok := s.AttrFilters[e.Attr]; ok {
		return "a:" + string(e.Attr), true
	}
	return "", false
}

// filterKeys returns all completeness keys of the subscription.
func (s *Subscription) filterKeys() []string {
	keys := make([]string, 0, s.NumFilters())
	if s.Kind == KindIdentified {
		for _, d := range s.Sensors() {
			keys = append(keys, "d:"+string(d))
		}
		return keys
	}
	for _, a := range s.Attributes() {
		keys = append(keys, "a:"+string(a))
	}
	return keys
}

// MatchesComplex reports whether the given set of simple events forms a
// complex event matching the subscription according to the four conditions
// of Section IV-A:
//
//  1. completeness — one simple event per filtered sensor/attribute,
//  2. every simple event matches the subscription,
//  3. the complex event's time is the maximum component timestamp,
//  4. all component timestamps are within δt of that maximum,
//
// plus, for abstract subscriptions, the pairwise location span is below δl.
//
// The events slice must contain exactly the component events (no extras).
func (s *Subscription) MatchesComplex(events ComplexEvent) bool {
	if len(events) != s.NumFilters() {
		return false
	}
	seen := map[string]bool{}
	for _, e := range events {
		if !s.MatchesEvent(e) {
			return false
		}
		key, ok := s.FilterKeyFor(e)
		if !ok || seen[key] {
			return false
		}
		seen[key] = true
	}
	if len(seen) != s.NumFilters() {
		return false
	}
	max := events.MaxTime()
	for _, e := range events {
		if max-e.Time >= s.DeltaT {
			return false
		}
	}
	if s.Kind == KindAbstract && !math.IsInf(s.DeltaL, 1) {
		if events.LocationSpan() >= s.DeltaL {
			return false
		}
	}
	return true
}

// FindComplexMatch searches the candidate window for a complex event that
// matches the subscription and that includes the mustInclude event (pass nil
// to disable that constraint). It returns the first matching combination in
// the enumeration order of ForEachComplexMatch and true, or nil and false
// when no combination matches.
func (s *Subscription) FindComplexMatch(window []Event, mustInclude *Event) (ComplexEvent, bool) {
	var out ComplexEvent
	s.ForEachComplexMatch(window, mustInclude, func(match ComplexEvent) bool {
		out = match
		return false
	})
	return out, out != nil
}

// MatchScratch holds the reusable working storage of a complex-match
// enumeration: the per-filter candidate lists and the partial selection of
// the backtracking search. A zero MatchScratch is ready to use; reusing one
// scratch across enumerations (one per protocol node) makes the steady-state
// match path allocation-free. A scratch must not be shared between
// goroutines or used reentrantly from an enumeration callback.
type MatchScratch struct {
	keys   []string  // raw sensor/attribute completeness keys, sorted
	cands  [][]Event // parallel to keys; backing arrays are recycled
	chosen ComplexEvent
}

// grow readies the scratch for an enumeration over n completeness keys,
// retaining every backing array from previous use.
func (sc *MatchScratch) grow(n int) {
	sc.keys = sc.keys[:0]
	for len(sc.cands) < n {
		sc.cands = append(sc.cands, nil)
	}
	for i := range sc.cands {
		sc.cands[i] = sc.cands[i][:0]
	}
	sc.chosen = sc.chosen[:0]
}

// rawKey returns the completeness key of an event under this subscription
// without the "d:"/"a:" type prefix FilterKeyFor adds: a subscription is
// either identified or abstract, never both, so within one enumeration the
// raw names cannot collide and the prefix concatenation (an allocation per
// call) is unnecessary.
func (s *Subscription) rawKey(e Event) string {
	if s.Kind == KindIdentified {
		return string(e.Sensor)
	}
	return string(e.Attr)
}

// ForEachComplexMatch enumerates every complex event in the candidate window
// that matches the subscription and includes the mustInclude event (pass nil
// to disable that constraint), invoking fn for each; fn returns false to stop
// the enumeration. Each invocation receives a fresh ComplexEvent the callback
// may retain. Hot paths that must not allocate use
// ForEachComplexMatchScratch instead.
func (s *Subscription) ForEachComplexMatch(window []Event, mustInclude *Event, fn func(ComplexEvent) bool) {
	var sc MatchScratch
	s.ForEachComplexMatchScratch(window, mustInclude, &sc, func(match ComplexEvent) bool {
		out := make(ComplexEvent, len(match))
		copy(out, match)
		return fn(out)
	})
}

// ForEachComplexMatchScratch is ForEachComplexMatch with caller-provided
// working storage: the enumeration allocates nothing once the scratch has
// warmed up. The ComplexEvent passed to fn is the scratch's own selection
// buffer — it is valid only for the duration of the callback and is
// overwritten by the next match; callbacks that retain a match must copy it
// first.
//
// The search is an exact backtracking search over one candidate list per
// required sensor/attribute. Subscriptions in this system have at most a
// handful of filters (the paper uses 3-5 attributes) and windows are short
// (δt), so the search space stays tiny; the time-window and location-span
// constraints additionally prune it.
//
// Enumerating every completion — rather than selecting one — is what makes
// event forwarding and user delivery independent of arrival interleaving:
// with mustInclude set to the newly arrived event, a given complex event is
// discovered exactly once, at the arrival of whichever of its components
// shows up last, no matter the order the components arrived in. The
// pipelined replay mode's per-round conformance oracle relies on this. The
// enumeration order itself is deterministic — keys sorted, candidates in
// window order — so runs are reproducible whatever storage the caller
// recycles.
func (s *Subscription) ForEachComplexMatchScratch(window []Event, mustInclude *Event, sc *MatchScratch, fn func(ComplexEvent) bool) {
	n := s.NumFilters()
	sc.grow(n)
	if s.Kind == KindIdentified {
		for d := range s.SensorFilters {
			sc.keys = append(sc.keys, string(d))
		}
	} else {
		for a := range s.AttrFilters {
			sc.keys = append(sc.keys, string(a))
		}
	}
	sortStrings(sc.keys)
	keys := sc.keys
	cands := sc.cands[:n]
	for _, e := range window {
		if !s.MatchesEvent(e) {
			continue
		}
		key := s.rawKey(e)
		for i, k := range keys {
			if k == key {
				cands[i] = append(cands[i], e)
				break
			}
		}
	}
	var mustKey string
	if mustInclude != nil {
		if !s.MatchesEvent(*mustInclude) {
			return
		}
		mustKey = s.rawKey(*mustInclude)
	}
	// Completeness pre-check: every key needs at least one candidate.
	for i, k := range keys {
		if k == mustKey {
			continue
		}
		if len(cands[i]) == 0 {
			return
		}
	}

	var rec func(i int) bool // returns false to abort the whole enumeration
	rec = func(i int) bool {
		if i == len(keys) {
			// A full selection is a match by construction: candidates were
			// pre-filtered with MatchesEvent, each key contributed exactly
			// one component, and partialFeasible verified the δt/δl spans on
			// the complete selection before this call.
			return fn(sc.chosen)
		}
		if keys[i] == mustKey {
			sc.chosen = append(sc.chosen, *mustInclude)
			ok := !s.partialFeasible(sc.chosen) || rec(i+1)
			sc.chosen = sc.chosen[:len(sc.chosen)-1]
			return ok
		}
		for _, e := range cands[i] {
			sc.chosen = append(sc.chosen, e)
			ok := !s.partialFeasible(sc.chosen) || rec(i+1)
			sc.chosen = sc.chosen[:len(sc.chosen)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
}

// sortStrings is an allocation-free insertion sort for the (at most a
// handful of) completeness keys; sort.Strings would allocate its interface
// header on every enumeration.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// partialFeasible prunes the backtracking search: a partial selection is
// feasible only if its time span is already below δt and (for abstract
// subscriptions) its location span below δl.
func (s *Subscription) partialFeasible(events ComplexEvent) bool {
	if len(events) < 2 {
		return true
	}
	if events.TimeSpan() >= s.DeltaT {
		return false
	}
	if s.Kind == KindAbstract && !math.IsInf(s.DeltaL, 1) && events.LocationSpan() >= s.DeltaL {
		return false
	}
	return true
}

// CoveredBy reports whether the subscription is covered (subsumed) by the
// single subscription other: every complex event matching s also matches
// other. Following Section V-B this requires the two subscriptions to be of
// the same kind, defined over exactly the same sensor/attribute set and to
// share the same correlation distances; given that, coverage reduces to
// per-filter range containment (and region containment for abstract
// subscriptions).
func (s *Subscription) CoveredBy(other *Subscription) bool {
	if s == nil || other == nil {
		return false
	}
	if s.Kind != other.Kind || s.SignatureKey() != other.SignatureKey() {
		return false
	}
	if s.DeltaT != other.DeltaT {
		return false
	}
	if s.Kind == KindIdentified {
		for d, f := range s.SensorFilters {
			if !other.SensorFilters[d].Range.Covers(f.Range) {
				return false
			}
		}
		return true
	}
	if s.DeltaL != other.DeltaL {
		return false
	}
	if !other.Region.Covers(s.Region) {
		return false
	}
	for a, f := range s.AttrFilters {
		if !other.AttrFilters[a].Range.Covers(f.Range) {
			return false
		}
	}
	return true
}
