package model

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"

	"sensorcq/internal/geom"
)

// Kind discriminates between the two subscription flavours of Section IV-A.
type Kind int

const (
	// KindIdentified is a subscription over explicitly named sensors
	// S_id = (F_D, δt).
	KindIdentified Kind = iota
	// KindAbstract is a subscription over attribute types bound to a
	// spatial region S_ab = (F_{A,L}, δt, δl).
	KindAbstract
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindIdentified:
		return "identified"
	case KindAbstract:
		return "abstract"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NoSpatialConstraint is the DeltaL value meaning "event correlation is
// independent of spatial proximity" (δl = ∞ in the paper).
var NoSpatialConstraint = math.Inf(1)

// Subscription is a user subscription or a correlation operator derived from
// one by the split phase. A subscription carries either SensorFilters
// (identified) or AttrFilters (abstract), never both.
//
// The split-and-forward phase produces operators that are projections of a
// user subscription onto a subset of its filters; such operators keep the
// identity of the user subscription they descend from in Root, and the
// identity of the operator they were directly split from in Parent.
type Subscription struct {
	// ID uniquely identifies this subscription or operator.
	ID SubscriptionID
	// Root is the original user subscription this operator descends from.
	// For a user subscription, Root == ID.
	Root SubscriptionID
	// Parent is the operator this one was split from ("" for user
	// subscriptions).
	Parent SubscriptionID

	Kind Kind

	// SensorFilters holds the complex filter with identification F_D for
	// identified subscriptions, keyed by sensor.
	SensorFilters map[SensorID]SensorFilter
	// AttrFilters holds the abstract filter F_{A,L} for abstract
	// subscriptions, keyed by attribute type.
	AttrFilters map[AttributeType]AttributeFilter
	// Region is the spatial constraint L of an abstract subscription.
	Region geom.Region

	// DeltaT is the temporal correlation distance δt.
	DeltaT Timestamp
	// DeltaL is the spatial correlation distance δl (abstract only);
	// use NoSpatialConstraint when correlation is independent of distance.
	DeltaL float64

	// SubscriberNode optionally records, as an opaque string, the processing
	// node hosting the subscribing user. The distributed protocols never use
	// it (they route results along reverse subscription paths); the
	// centralized baseline — which assumes global knowledge — sets it when a
	// subscription is registered and uses it to route result sets back to
	// the owner.
	SubscriberNode string

	// Aggregate, when non-nil, turns the subscription into a windowed
	// GROUP-BY-time continuous aggregate query (see AggregateSpec):
	// nodes accumulate mergeable partial aggregates per window instead of
	// forwarding matching readings. Aggregate subscriptions bypass the
	// subsumption checker — their result is a per-window scalar, so
	// covering them with a broader plain subscription would change their
	// semantics, not just their routing.
	Aggregate *AggregateSpec

	// sig caches SignatureKey's rendering. Subscriptions are immutable once
	// published, and the subsumption comparability scan asks for the key on
	// every candidate-set pairing, so the constructors, Clone and the split
	// projections fill it eagerly. A zero value (struct-literal construction
	// in tests) falls back to computing the key per call *without* caching
	// it — subscriptions are shared across nodes and engine goroutines, so a
	// lazy write here would be a data race.
	sig string
}

// NewIdentifiedSubscription builds a user subscription over explicitly named
// sensors. The filters slice must be non-empty and name distinct sensors.
func NewIdentifiedSubscription(id SubscriptionID, filters []SensorFilter, deltaT Timestamp) (*Subscription, error) {
	if len(filters) == 0 {
		return nil, errors.New("model: identified subscription needs at least one sensor filter")
	}
	m := make(map[SensorID]SensorFilter, len(filters))
	for _, f := range filters {
		if _, dup := m[f.Sensor]; dup {
			return nil, fmt.Errorf("model: duplicate filter for sensor %s", f.Sensor)
		}
		m[f.Sensor] = f
	}
	s := &Subscription{
		ID:            id,
		Root:          id,
		Kind:          KindIdentified,
		SensorFilters: m,
		Region:        geom.WholePlane(),
		DeltaT:        deltaT,
		DeltaL:        NoSpatialConstraint,
	}
	s.sig = s.computeSignature()
	return s, s.Validate()
}

// NewAbstractSubscription builds a user subscription over attribute types
// constrained to a region.
func NewAbstractSubscription(id SubscriptionID, filters []AttributeFilter, region geom.Region, deltaT Timestamp, deltaL float64) (*Subscription, error) {
	if len(filters) == 0 {
		return nil, errors.New("model: abstract subscription needs at least one attribute filter")
	}
	m := make(map[AttributeType]AttributeFilter, len(filters))
	for _, f := range filters {
		if _, dup := m[f.Attr]; dup {
			return nil, fmt.Errorf("model: duplicate filter for attribute %s", f.Attr)
		}
		m[f.Attr] = f
	}
	s := &Subscription{
		ID:          id,
		Root:        id,
		Kind:        KindAbstract,
		AttrFilters: m,
		Region:      region,
		DeltaT:      deltaT,
		DeltaL:      deltaL,
	}
	s.sig = s.computeSignature()
	return s, s.Validate()
}

// Validate checks structural invariants and returns a descriptive error when
// one is violated.
func (s *Subscription) Validate() error {
	if s == nil {
		return errors.New("model: nil subscription")
	}
	if s.ID == "" {
		return errors.New("model: subscription needs an ID")
	}
	if s.DeltaT <= 0 {
		return fmt.Errorf("model: subscription %s has non-positive DeltaT %d", s.ID, s.DeltaT)
	}
	switch s.Kind {
	case KindIdentified:
		if len(s.SensorFilters) == 0 {
			return fmt.Errorf("model: identified subscription %s has no sensor filters", s.ID)
		}
		if len(s.AttrFilters) != 0 {
			return fmt.Errorf("model: identified subscription %s must not carry attribute filters", s.ID)
		}
	case KindAbstract:
		if len(s.AttrFilters) == 0 {
			return fmt.Errorf("model: abstract subscription %s has no attribute filters", s.ID)
		}
		if len(s.SensorFilters) != 0 {
			return fmt.Errorf("model: abstract subscription %s must not carry sensor filters", s.ID)
		}
		if s.Region.Empty() {
			return fmt.Errorf("model: abstract subscription %s has an empty region", s.ID)
		}
		if s.DeltaL <= 0 {
			return fmt.Errorf("model: abstract subscription %s has non-positive DeltaL", s.ID)
		}
	default:
		return fmt.Errorf("model: subscription %s has unknown kind %d", s.ID, s.Kind)
	}
	return nil
}

// IsUserSubscription reports whether this is an original user subscription
// (as opposed to an operator produced by splitting).
func (s *Subscription) IsUserSubscription() bool { return s.Parent == "" && s.Root == s.ID }

// NumFilters returns the number of simple filters in the subscription.
func (s *Subscription) NumFilters() int {
	if s.Kind == KindIdentified {
		return len(s.SensorFilters)
	}
	return len(s.AttrFilters)
}

// IsSimple reports whether the subscription is a simple operator: it
// constrains a single attribute (abstract) or a single sensor (identified)
// and therefore needs no further correlation.
func (s *Subscription) IsSimple() bool { return s.NumFilters() == 1 }

// Attributes returns the attribute types the subscription involves, sorted.
// For identified subscriptions this is derived from the sensor filters.
func (s *Subscription) Attributes() []AttributeType {
	if s.Kind == KindAbstract {
		return SortedAttributes(s.AttrFilters)
	}
	set := map[AttributeType]bool{}
	for _, f := range s.SensorFilters {
		set[f.Attr] = true
	}
	out := make([]AttributeType, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// Sensors returns the explicitly named sensors of an identified
// subscription, sorted; it returns nil for abstract subscriptions.
func (s *Subscription) Sensors() []SensorID {
	if s.Kind != KindIdentified {
		return nil
	}
	return SortedSensors(s.SensorFilters)
}

// SignatureKey returns a canonical key identifying the set of "attributes"
// the subscription is defined over, in the sense of the set-filtering
// algorithm: the sensor set for identified subscriptions, the attribute-type
// set for abstract ones. Two subscriptions are comparable by set filtering
// (and by pairwise covering) only when their signature keys are equal and
// their kinds match.
// The key is cached at construction (constructors, Clone, projections);
// subscriptions built as struct literals compute it on every call instead of
// caching, because a lazy write to a shared subscription would race.
func (s *Subscription) SignatureKey() string {
	if s.sig != "" {
		return s.sig
	}
	return s.computeSignature()
}

// computeSignature renders the signature key from the filter sets.
func (s *Subscription) computeSignature() string {
	if s.Aggregate != nil {
		// Aggregate queries are never comparable with plain
		// subscriptions (or with aggregates of another function or
		// window), so the whole spec is part of the signature.
		a := s.Aggregate
		return fmt.Sprintf("ag:%s:w%d:q%g:k%d:x%t:%s", a.Func, a.WindowRounds, a.Quantile, a.K, a.Exact, attributeKey(s.Attributes()))
	}
	if s.Kind == KindIdentified {
		return "id:" + sensorKey(s.Sensors())
	}
	return "ab:" + attributeKey(s.Attributes())
}

// Clone returns a deep copy of the subscription.
func (s *Subscription) Clone() *Subscription {
	out := *s
	if s.SensorFilters != nil {
		out.SensorFilters = make(map[SensorID]SensorFilter, len(s.SensorFilters))
		for k, v := range s.SensorFilters {
			out.SensorFilters[k] = v
		}
	}
	if s.AttrFilters != nil {
		out.AttrFilters = make(map[AttributeType]AttributeFilter, len(s.AttrFilters))
		for k, v := range s.AttrFilters {
			out.AttrFilters[k] = v
		}
	}
	if s.Aggregate != nil {
		spec := *s.Aggregate
		out.Aggregate = &spec
	}
	return &out
}

// String implements fmt.Stringer. The rendering is stable (sorted filters) so
// it can be used in golden tests.
func (s *Subscription) String() string {
	var parts []string
	if s.Kind == KindIdentified {
		for _, d := range s.Sensors() {
			parts = append(parts, s.SensorFilters[d].String())
		}
		return fmt.Sprintf("sub(%s identified {%s} δt=%d)", s.ID, strings.Join(parts, ", "), s.DeltaT)
	}
	for _, a := range s.Attributes() {
		parts = append(parts, s.AttrFilters[a].String())
	}
	return fmt.Sprintf("sub(%s abstract {%s} %s δt=%d δl=%g)", s.ID, strings.Join(parts, ", "), s.Region, s.DeltaT, s.DeltaL)
}

// locDimX and locDimY are the reserved dimension names used when translating
// an abstract subscription's region into extra box dimensions, as described
// in Section V-B ("the location meta-attribute ... can be treated as just
// another data attribute").
const (
	locDimX = "__loc_x"
	locDimY = "__loc_y"
)

// Box returns the hyper-rectangle representation of the subscription used by
// the subsumption checker: one dimension per filtered sensor (identified) or
// per filtered attribute plus the two spatial dimensions (abstract, when the
// region is bounded).
func (s *Subscription) Box() geom.Box {
	b := geom.NewBox()
	if s.Kind == KindIdentified {
		for d, f := range s.SensorFilters {
			b = b.Set("d:"+string(d), f.Range)
		}
		return b
	}
	for a, f := range s.AttrFilters {
		b = b.Set("a:"+string(a), f.Range)
	}
	if !s.Region.IsWholePlane() {
		b = b.Set(locDimX, s.Region.X)
		b = b.Set(locDimY, s.Region.Y)
	}
	return b
}
