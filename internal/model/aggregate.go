package model

import (
	"fmt"

	"sensorcq/internal/agg"
	"sensorcq/internal/geom"
)

// AggregateSpec turns a subscription into a windowed GROUP-BY-time
// continuous aggregate query: instead of delivering every matching
// complex event, each node of the dissemination tree folds its own
// matching readings into one mergeable partial aggregate per tumbling
// window of WindowRounds measurement rounds, merges its children's
// partials in, and forwards a single partial upstream when the network
// watermark closes the window — so upstream traffic scales with the
// tree's fan-in instead of the reading count.
type AggregateSpec struct {
	// Func is the aggregate function applied per window.
	Func agg.Func
	// WindowRounds is the tumbling GROUP-BY-time window in measurement
	// rounds: window g covers rounds [g·W+1, (g+1)·W].
	WindowRounds int
	// Quantile is the rank fraction φ in (0,1); Func == Quantile only.
	Quantile float64
	// Lo, Hi bound the sketch's value domain; Func == Quantile only.
	Lo, Hi float64
	// Bits is log2 of the sketch's bucket count σ; Func == Quantile only.
	Bits uint
	// K is the q-digest compression parameter (rank error ε = Bits/K);
	// Func == Quantile only.
	K int
	// Exact selects the ship-every-reading baseline: matching readings
	// are relayed hop by hop to the subscriber's node and aggregated
	// exactly there. It is the error-free, traffic-heavy comparison
	// point of the error-vs-traffic experiment.
	Exact bool
}

// Validate checks the spec.
func (a *AggregateSpec) Validate() error {
	if a == nil {
		return fmt.Errorf("model: nil aggregate spec")
	}
	if a.WindowRounds <= 0 {
		return fmt.Errorf("model: aggregate window must be positive rounds, got %d", a.WindowRounds)
	}
	return a.Config().Validate()
}

// Config maps the spec onto the aggregate-state configuration.
func (a *AggregateSpec) Config() agg.Config {
	return agg.Config{
		Func:     a.Func,
		Quantile: a.Quantile,
		Lo:       a.Lo,
		Hi:       a.Hi,
		Bits:     a.Bits,
		K:        a.K,
		Exact:    a.Exact,
	}
}

// Epsilon returns the rank-error bound of the spec (0 for exact
// aggregates).
func (a *AggregateSpec) Epsilon() float64 { return a.Config().Epsilon() }

// WindowOf returns the window index holding a measurement round (rounds
// are 1-based).
func (a *AggregateSpec) WindowOf(round int) int {
	if round <= 0 {
		return 0
	}
	return (round - 1) / a.WindowRounds
}

// WindowBounds returns the first and last round of a window.
func (a *AggregateSpec) WindowBounds(window int) (start, end int) {
	return window*a.WindowRounds + 1, (window + 1) * a.WindowRounds
}

// MatchesReading reports whether one sensor reading falls inside an
// aggregate subscription's filter: attribute type, value range and
// region. Aggregate queries bypass the complex-event matchers, so this is
// their entire matching semantics.
func (s *Subscription) MatchesReading(ev Event) bool {
	f, ok := s.AttrFilters[ev.Attr]
	if !ok {
		return false
	}
	return f.Range.Contains(ev.Value) && s.Region.Contains(ev.Location)
}

// NewAggregateSubscription builds a continuous aggregate query: one
// attribute filter bound to a region, aggregated per tumbling window as
// the spec describes. It registers and retracts through the same
// advertisement and forwarding paths as any abstract subscription.
func NewAggregateSubscription(id SubscriptionID, filter AttributeFilter, region geom.Region, spec AggregateSpec) (*Subscription, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// The temporal/spatial correlation distances are complex-event
	// machinery; aggregate queries group by window instead, so they take
	// the neutral values (any positive δt, unconstrained δl).
	s, err := NewAbstractSubscription(id, []AttributeFilter{filter}, region, 1, NoSpatialConstraint)
	if err != nil {
		return nil, err
	}
	specCopy := spec
	s.Aggregate = &specCopy
	s.sig = s.computeSignature()
	return s, nil
}
