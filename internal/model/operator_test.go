package model

import (
	"testing"

	"sensorcq/internal/geom"
)

func TestProjectAttributes(t *testing.T) {
	s := mustAbstract(t, "q1", geom.NewRegion(0, 0, 100, 100), 30, NoSpatialConstraint,
		af(AmbientTemperature, -5, 5), af(WindSpeed, 0, 20), af(RelativeHumidity, 40, 90))

	op := s.ProjectAttributes([]AttributeType{AmbientTemperature, WindSpeed})
	if op == nil {
		t.Fatal("projection should exist")
	}
	if op.NumFilters() != 2 {
		t.Fatalf("projected operator has %d filters", op.NumFilters())
	}
	if op.Parent != "q1" || op.Root != "q1" {
		t.Errorf("lineage wrong: parent=%s root=%s", op.Parent, op.Root)
	}
	if op.IsUserSubscription() {
		t.Error("projection is not a user subscription")
	}
	if op.Region != s.Region || op.DeltaT != s.DeltaT {
		t.Error("projection must keep region and correlation distances")
	}
	// Projection onto the full set is a clone with the same identity.
	full := s.ProjectAttributes(s.Attributes())
	if full.ID != s.ID || full.Parent != "" {
		t.Error("full projection should keep the original identity")
	}
	// Projection onto disjoint attributes is nil.
	if s.ProjectAttributes([]AttributeType{"unknown"}) != nil {
		t.Error("projection onto unfiltered attributes should be nil")
	}
	// Attribute projection of an identified subscription is nil.
	id := mustIdentified(t, "q2", 30, sf("d1", WindSpeed, 0, 1))
	if id.ProjectAttributes([]AttributeType{WindSpeed}) != nil {
		t.Error("attribute projection of identified subscription should be nil")
	}
}

func TestProjectSensors(t *testing.T) {
	s := mustIdentified(t, "q1", 30,
		sf("a", AmbientTemperature, 50, 80),
		sf("b", RelativeHumidity, 10, 30),
		sf("c", WindSpeed, 2, 20))
	op := s.ProjectSensors([]SensorID{"a", "b"})
	if op == nil || op.NumFilters() != 2 {
		t.Fatal("sensor projection wrong")
	}
	if op.ID == s.ID {
		t.Error("proper projection must have a derived ID")
	}
	if s.ProjectSensors([]SensorID{"z"}) != nil {
		t.Error("projection onto unknown sensors should be nil")
	}
	ab := mustAbstract(t, "q2", geom.WholePlane(), 30, NoSpatialConstraint, af(WindSpeed, 0, 1))
	if ab.ProjectSensors([]SensorID{"a"}) != nil {
		t.Error("sensor projection of abstract subscription should be nil")
	}
}

func TestDerivedOperatorIDsDeterministic(t *testing.T) {
	s := mustAbstract(t, "q1", geom.WholePlane(), 30, NoSpatialConstraint,
		af(AmbientTemperature, -5, 5), af(WindSpeed, 0, 20), af(RelativeHumidity, 40, 90))
	a := s.ProjectAttributes([]AttributeType{WindSpeed, AmbientTemperature})
	b := s.ProjectAttributes([]AttributeType{AmbientTemperature, WindSpeed})
	if a.ID != b.ID {
		t.Errorf("projection IDs must be order independent: %s vs %s", a.ID, b.ID)
	}
}

func TestSplitBinaryJoinsRing(t *testing.T) {
	s := mustAbstract(t, "q1", geom.WholePlane(), 30, NoSpatialConstraint,
		af(AmbientTemperature, -5, 5), af(WindSpeed, 0, 20), af(RelativeHumidity, 40, 90),
		af(SurfaceTemperature, -10, 10))
	joins := s.SplitBinaryJoins(RingPairing)
	if len(joins) != 4 {
		t.Fatalf("ring pairing of 4 attributes should give 4 binary joins, got %d", len(joins))
	}
	attrCount := map[AttributeType]int{}
	for _, j := range joins {
		if j.NumFilters() != 2 {
			t.Fatalf("binary join with %d filters", j.NumFilters())
		}
		for _, a := range j.Attributes() {
			attrCount[a]++
		}
	}
	for a, c := range attrCount {
		if c != 2 {
			t.Errorf("attribute %s appears in %d binary joins, want 2 (ring)", a, c)
		}
	}
}

func TestSplitBinaryJoinsChainAndSmall(t *testing.T) {
	s := mustAbstract(t, "q1", geom.WholePlane(), 30, NoSpatialConstraint,
		af(AmbientTemperature, -5, 5), af(WindSpeed, 0, 20), af(RelativeHumidity, 40, 90))
	joins := s.SplitBinaryJoins(ChainPairing)
	if len(joins) != 2 {
		t.Fatalf("chain pairing of 3 attributes should give 2 binary joins, got %d", len(joins))
	}
	// Two-attribute subscriptions are exact binary joins already.
	s2 := mustAbstract(t, "q2", geom.WholePlane(), 30, NoSpatialConstraint,
		af(AmbientTemperature, -5, 5), af(WindSpeed, 0, 20))
	joins2 := s2.SplitBinaryJoins(RingPairing)
	if len(joins2) != 1 || joins2[0].ID != "q2" {
		t.Errorf("small subscriptions should be returned unchanged, got %v", joins2)
	}
	// Identified flavour splits over sensors.
	id := mustIdentified(t, "q3", 30,
		sf("a", AmbientTemperature, 0, 1), sf("b", WindSpeed, 0, 1), sf("c", RelativeHumidity, 0, 1))
	j3 := id.SplitBinaryJoins(RingPairing)
	if len(j3) != 3 {
		t.Fatalf("ring pairing of 3 sensors should give 3 binary joins, got %d", len(j3))
	}
	if RingPairing.String() != "ring" || ChainPairing.String() != "chain" {
		t.Error("pairing String() wrong")
	}
}

func TestBinaryJoinFalsePositivesExist(t *testing.T) {
	// A complex event that satisfies one binary join but not the original
	// 3-way multi-join: this is exactly the false-positive behaviour the
	// paper attributes to the multi-join approximation.
	s := mustIdentified(t, "q1", 100,
		sf("a", AmbientTemperature, 0, 10),
		sf("b", RelativeHumidity, 0, 10),
		sf("c", WindSpeed, 0, 10))
	joins := s.SplitBinaryJoins(RingPairing)

	// Events for a and b match, but c is missing entirely.
	window := []Event{
		ev(1, "a", AmbientTemperature, 5, 10),
		ev(2, "b", RelativeHumidity, 5, 12),
	}
	if _, ok := s.FindComplexMatch(window, nil); ok {
		t.Fatal("the full multi-join must not match without sensor c")
	}
	matchedSomeJoin := false
	for _, j := range joins {
		if _, ok := j.FindComplexMatch(window, nil); ok {
			matchedSomeJoin = true
		}
	}
	if !matchedSomeJoin {
		t.Fatal("at least one binary join should match (false positive)")
	}
}
