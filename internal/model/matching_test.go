package model

import (
	"testing"

	"sensorcq/internal/geom"
)

func TestMatchesEventAbstract(t *testing.T) {
	s := mustAbstract(t, "q1", geom.NewRegion(0, 0, 100, 100), 30, NoSpatialConstraint,
		af(AmbientTemperature, -5, 5), af(WindSpeed, 0, 20))

	inRegion := geom.Point2D{X: 50, Y: 50}
	outRegion := geom.Point2D{X: 500, Y: 50}

	e := Event{Sensor: "d1", Attr: AmbientTemperature, Value: 0, Location: inRegion}
	if !s.MatchesEvent(e) {
		t.Error("event inside range and region should match")
	}
	e.Value = 10
	if s.MatchesEvent(e) {
		t.Error("event outside the value range should not match")
	}
	e.Value = 0
	e.Location = outRegion
	if s.MatchesEvent(e) {
		t.Error("event outside the region should not match")
	}
	e.Location = inRegion
	e.Attr = RelativeHumidity
	if s.MatchesEvent(e) {
		t.Error("event of an unfiltered attribute should not match")
	}
}

func TestMatchesEventIdentified(t *testing.T) {
	s := mustIdentified(t, "q1", 30, sf("d1", AmbientTemperature, 50, 80), sf("d2", RelativeHumidity, 10, 30))
	if !s.MatchesEvent(ev(1, "d1", AmbientTemperature, 60, 0)) {
		t.Error("matching sensor and value should match")
	}
	if s.MatchesEvent(ev(2, "d1", AmbientTemperature, 90, 0)) {
		t.Error("value outside range should not match")
	}
	if s.MatchesEvent(ev(3, "d3", AmbientTemperature, 60, 0)) {
		t.Error("unnamed sensor should not match")
	}
}

func TestMatchesComplexConditions(t *testing.T) {
	s := mustIdentified(t, "q1", 10, sf("a", AmbientTemperature, 50, 80), sf("b", RelativeHumidity, 10, 30))

	ok := ComplexEvent{ev(1, "a", AmbientTemperature, 60, 100), ev(2, "b", RelativeHumidity, 20, 105)}
	if !s.MatchesComplex(ok) {
		t.Error("valid complex event should match")
	}
	// Completeness: missing one sensor.
	if s.MatchesComplex(ComplexEvent{ev(1, "a", AmbientTemperature, 60, 100)}) {
		t.Error("incomplete complex event should not match")
	}
	// Duplicate sensor instead of the other one.
	if s.MatchesComplex(ComplexEvent{ev(1, "a", AmbientTemperature, 60, 100), ev(3, "a", AmbientTemperature, 61, 101)}) {
		t.Error("two events for the same sensor should not satisfy completeness")
	}
	// Time correlation violated: gap equals DeltaT (strict inequality required).
	late := ComplexEvent{ev(1, "a", AmbientTemperature, 60, 100), ev(2, "b", RelativeHumidity, 20, 110)}
	if s.MatchesComplex(late) {
		t.Error("time gap of exactly DeltaT should not match (strict)")
	}
	// One value out of range.
	if s.MatchesComplex(ComplexEvent{ev(1, "a", AmbientTemperature, 90, 100), ev(2, "b", RelativeHumidity, 20, 101)}) {
		t.Error("component value outside range should not match")
	}
}

func TestMatchesComplexSpatialConstraint(t *testing.T) {
	region := geom.NewRegion(0, 0, 1000, 1000)
	s := mustAbstract(t, "q1", region, 10, 50,
		af(AmbientTemperature, -5, 5), af(WindSpeed, 0, 20))

	near := ComplexEvent{
		Event{Seq: 1, Sensor: "x", Attr: AmbientTemperature, Value: 1, Time: 5, Location: geom.Point2D{X: 10, Y: 10}},
		Event{Seq: 2, Sensor: "y", Attr: WindSpeed, Value: 5, Time: 6, Location: geom.Point2D{X: 20, Y: 10}},
	}
	if !s.MatchesComplex(near) {
		t.Error("spatially close complex event should match")
	}
	far := ComplexEvent{
		Event{Seq: 1, Sensor: "x", Attr: AmbientTemperature, Value: 1, Time: 5, Location: geom.Point2D{X: 10, Y: 10}},
		Event{Seq: 2, Sensor: "y", Attr: WindSpeed, Value: 5, Time: 6, Location: geom.Point2D{X: 500, Y: 10}},
	}
	if s.MatchesComplex(far) {
		t.Error("complex event exceeding DeltaL should not match")
	}
}

func TestFindComplexMatch(t *testing.T) {
	s := mustIdentified(t, "q1", 10,
		sf("a", AmbientTemperature, 50, 80),
		sf("b", RelativeHumidity, 10, 30),
		sf("c", WindSpeed, 0, 10))

	window := []Event{
		ev(1, "a", AmbientTemperature, 60, 100),
		ev(2, "b", RelativeHumidity, 20, 103),
		ev(3, "c", WindSpeed, 5, 105),
		ev(4, "a", AmbientTemperature, 95, 104), // out of range
	}
	match, ok := s.FindComplexMatch(window, nil)
	if !ok {
		t.Fatal("expected a complex match")
	}
	if len(match) != 3 || !s.MatchesComplex(match) {
		t.Fatalf("returned match is invalid: %v", match)
	}

	// mustInclude constrains the selection.
	trigger := ev(3, "c", WindSpeed, 5, 105)
	match, ok = s.FindComplexMatch(window, &trigger)
	if !ok {
		t.Fatal("expected a match including the trigger")
	}
	found := false
	for _, e := range match {
		if e.Seq == 3 {
			found = true
		}
	}
	if !found {
		t.Error("trigger event not part of the returned match")
	}

	// A trigger that does not match the subscription yields no match.
	bad := ev(9, "c", WindSpeed, 99, 105)
	if _, ok := s.FindComplexMatch(window, &bad); ok {
		t.Error("non-matching trigger should not produce a match")
	}

	// Remove sensor b candidates: completeness fails.
	window2 := []Event{ev(1, "a", AmbientTemperature, 60, 100), ev(3, "c", WindSpeed, 5, 105)}
	if _, ok := s.FindComplexMatch(window2, nil); ok {
		t.Error("incomplete window should not produce a match")
	}
}

func TestFindComplexMatchBacktracksOverTimeWindows(t *testing.T) {
	// Two candidates for sensor a: one too old to correlate with the rest,
	// one recent. The search must not give up after trying the first.
	s := mustIdentified(t, "q1", 10,
		sf("a", AmbientTemperature, 0, 100),
		sf("b", RelativeHumidity, 0, 100))
	window := []Event{
		ev(1, "a", AmbientTemperature, 10, 0),  // too old
		ev(2, "a", AmbientTemperature, 20, 95), // fits
		ev(3, "b", RelativeHumidity, 30, 100),
	}
	match, ok := s.FindComplexMatch(window, nil)
	if !ok {
		t.Fatal("expected a match using the recent candidate")
	}
	for _, e := range match {
		if e.Seq == 1 {
			t.Error("match must not use the stale candidate")
		}
	}
}

func TestCoveredByPairwise(t *testing.T) {
	wide := mustAbstract(t, "wide", geom.NewRegion(0, 0, 100, 100), 30, NoSpatialConstraint,
		af(AmbientTemperature, -10, 10), af(WindSpeed, 0, 30))
	narrow := mustAbstract(t, "narrow", geom.NewRegion(10, 10, 50, 50), 30, NoSpatialConstraint,
		af(AmbientTemperature, -5, 5), af(WindSpeed, 5, 10))
	other := mustAbstract(t, "other", geom.NewRegion(0, 0, 100, 100), 30, NoSpatialConstraint,
		af(AmbientTemperature, -5, 5), af(RelativeHumidity, 0, 100))

	if !narrow.CoveredBy(wide) {
		t.Error("narrow should be covered by wide")
	}
	if wide.CoveredBy(narrow) {
		t.Error("wide should not be covered by narrow")
	}
	if narrow.CoveredBy(other) {
		t.Error("different attribute sets are never pairwise covered")
	}
	if !wide.CoveredBy(wide) {
		t.Error("a subscription covers itself")
	}

	// Identified flavour.
	w := mustIdentified(t, "w", 30, sf("a", AmbientTemperature, 0, 100), sf("b", WindSpeed, 0, 100))
	n := mustIdentified(t, "n", 30, sf("a", AmbientTemperature, 10, 20), sf("b", WindSpeed, 5, 10))
	if !n.CoveredBy(w) || w.CoveredBy(n) {
		t.Error("identified coverage wrong")
	}
	// Differing DeltaT breaks coverage.
	n2 := mustIdentified(t, "n2", 60, sf("a", AmbientTemperature, 10, 20), sf("b", WindSpeed, 5, 10))
	if n2.CoveredBy(w) {
		t.Error("different DeltaT must not be covered")
	}
	var nilSub *Subscription
	if nilSub.CoveredBy(w) || w.CoveredBy(nil) {
		t.Error("nil handling wrong")
	}
}

func TestComplexEventHelpers(t *testing.T) {
	c := ComplexEvent{
		Event{Seq: 3, Time: 10, Location: geom.Point2D{X: 0, Y: 0}},
		Event{Seq: 1, Time: 25, Location: geom.Point2D{X: 3, Y: 4}},
	}
	if c.MaxTime() != 25 || c.MinTime() != 10 || c.TimeSpan() != 15 {
		t.Error("time helpers wrong")
	}
	if c.LocationSpan() != 5 {
		t.Errorf("LocationSpan = %g, want 5", c.LocationSpan())
	}
	if seqs := c.Seqs(); len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 3 {
		t.Errorf("Seqs() = %v", seqs)
	}
	var empty ComplexEvent
	if empty.MaxTime() != 0 || empty.TimeSpan() != 0 || empty.LocationSpan() != 0 {
		t.Error("empty complex event helpers should return zero")
	}
	events := []Event{{Seq: 2, Time: 5}, {Seq: 1, Time: 5}, {Seq: 9, Time: 1}}
	SortEventsByTime(events)
	if events[0].Seq != 9 || events[1].Seq != 1 || events[2].Seq != 2 {
		t.Errorf("SortEventsByTime order wrong: %v", events)
	}
}
