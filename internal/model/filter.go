package model

import (
	"fmt"

	"sensorcq/internal/geom"
)

// AttributeFilter is a simple filter f_a: a range condition over one
// attribute type, used by abstract subscriptions ("ambient temperature
// between -5 and 3 degrees").
type AttributeFilter struct {
	Attr  AttributeType
	Range geom.Interval
}

// Matches reports whether the event's attribute type and value satisfy the
// filter. The spatial constraint of the enclosing subscription is checked
// separately.
func (f AttributeFilter) Matches(e Event) bool {
	return e.Attr == f.Attr && f.Range.Contains(e.Value)
}

// Covers reports whether f accepts every value accepted by o (same
// attribute, wider or equal range).
func (f AttributeFilter) Covers(o AttributeFilter) bool {
	return f.Attr == o.Attr && f.Range.Covers(o.Range)
}

// String implements fmt.Stringer.
func (f AttributeFilter) String() string {
	return fmt.Sprintf("%s in %s", f.Attr, f.Range)
}

// SensorFilter is a simple filter with identification f_d: a range condition
// bound to one specific sensor ("sensor slf-23 between 50 and 80").
type SensorFilter struct {
	Sensor   SensorID
	Attr     AttributeType
	Location geom.Point2D
	Range    geom.Interval
}

// Matches reports whether the event originates from the filtered sensor and
// its value satisfies the range.
func (f SensorFilter) Matches(e Event) bool {
	return e.Sensor == f.Sensor && f.Range.Contains(e.Value)
}

// Covers reports whether f accepts every event accepted by o (same sensor,
// wider or equal range).
func (f SensorFilter) Covers(o SensorFilter) bool {
	return f.Sensor == o.Sensor && f.Range.Covers(o.Range)
}

// String implements fmt.Stringer.
func (f SensorFilter) String() string {
	return fmt.Sprintf("%s(%s) in %s", f.Sensor, f.Attr, f.Range)
}
