package model

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the "correlation operator" view of subscriptions used
// by the split-and-forward phase (Section V-B): projecting a subscription
// onto a subset of its filters, and splitting a multi-join into binary joins
// (Section III-B, after Chandramouli & Yang).

// ProjectAttributes returns the operator obtained by restricting an abstract
// subscription to the given attribute types. The result keeps the region and
// correlation distances of the original and records s as its parent. It
// returns nil when none of the requested attributes are filtered by s.
func (s *Subscription) ProjectAttributes(attrs []AttributeType) *Subscription {
	if s.Kind != KindAbstract {
		return nil
	}
	kept := map[AttributeType]AttributeFilter{}
	for _, a := range attrs {
		if f, ok := s.AttrFilters[a]; ok {
			kept[a] = f
		}
	}
	if len(kept) == 0 {
		return nil
	}
	if len(kept) == len(s.AttrFilters) {
		// Projection onto the full attribute set is the operator itself.
		// Subscriptions are immutable once published (every mutator clones
		// first), so the split-and-forward hot path shares the instance
		// instead of deep-copying it per neighbour.
		return s
	}
	// A plain struct copy suffices: the copied AttrFilters pointer is
	// replaced by kept, and abstract subscriptions carry no SensorFilters —
	// nothing mutable is shared, without Clone's map copies.
	out := &Subscription{}
	*out = *s
	out.AttrFilters = kept
	out.Parent = s.ID
	out.ID = deriveOperatorID(s.ID, attributeNames(kept))
	out.sig = out.computeSignature()
	return out
}

// ProjectSensors returns the operator obtained by restricting an identified
// subscription to the given sensors; see ProjectAttributes.
func (s *Subscription) ProjectSensors(sensors []SensorID) *Subscription {
	if s.Kind != KindIdentified {
		return nil
	}
	kept := map[SensorID]SensorFilter{}
	for _, d := range sensors {
		if f, ok := s.SensorFilters[d]; ok {
			kept[d] = f
		}
	}
	if len(kept) == 0 {
		return nil
	}
	if len(kept) == len(s.SensorFilters) {
		// See ProjectAttributes: the full projection shares the instance.
		return s
	}
	out := s.Clone()
	out.SensorFilters = kept
	out.Parent = s.ID
	out.ID = deriveOperatorID(s.ID, sensorNames(kept))
	out.sig = out.computeSignature()
	return out
}

// BinaryJoinPairing selects how a multi-join is decomposed into binary joins
// by the distributed multi-join approach.
type BinaryJoinPairing int

const (
	// RingPairing pairs attribute i with attribute (i+1) mod k, producing k
	// binary joins for a k-attribute multi-join (k >= 3); each attribute is
	// the "main" attribute of exactly one binary join.
	RingPairing BinaryJoinPairing = iota
	// ChainPairing pairs attribute i with attribute i+1, producing k-1
	// binary joins; the last attribute is main in the final join.
	ChainPairing
)

// String implements fmt.Stringer.
func (p BinaryJoinPairing) String() string {
	if p == ChainPairing {
		return "chain"
	}
	return "ring"
}

// SplitBinaryJoins decomposes the subscription into binary joins following
// the multi-join approximation of Section III-B. Subscriptions with at most
// two filters are returned unchanged (a binary join is exact for them). The
// resulting operators are projections of s onto pairs of its filter keys and
// therefore lose the correlation constraints that span more than two
// attributes — exactly the source of the false positives the paper measures.
func (s *Subscription) SplitBinaryJoins(pairing BinaryJoinPairing) []*Subscription {
	n := s.NumFilters()
	if n <= 2 {
		return []*Subscription{s.Clone()}
	}
	var out []*Subscription
	if s.Kind == KindAbstract {
		attrs := s.Attributes()
		for _, pair := range pairIndices(len(attrs), pairing) {
			op := s.ProjectAttributes([]AttributeType{attrs[pair[0]], attrs[pair[1]]})
			if op != nil {
				out = append(out, op)
			}
		}
		return out
	}
	sensors := s.Sensors()
	for _, pair := range pairIndices(len(sensors), pairing) {
		op := s.ProjectSensors([]SensorID{sensors[pair[0]], sensors[pair[1]]})
		if op != nil {
			out = append(out, op)
		}
	}
	return out
}

// pairIndices returns the index pairs for the chosen pairing strategy.
func pairIndices(k int, pairing BinaryJoinPairing) [][2]int {
	var out [][2]int
	switch pairing {
	case ChainPairing:
		for i := 0; i+1 < k; i++ {
			out = append(out, [2]int{i, i + 1})
		}
	default: // RingPairing
		for i := 0; i < k; i++ {
			out = append(out, [2]int{i, (i + 1) % k})
		}
	}
	return out
}

// deriveOperatorID builds a deterministic operator identifier from the parent
// subscription ID and the kept filter keys, so that the same projection of
// the same subscription always yields the same operator ID regardless of the
// node performing the split.
func deriveOperatorID(parent SubscriptionID, keys []string) SubscriptionID {
	sort.Strings(keys)
	return SubscriptionID(fmt.Sprintf("%s/[%s]", parent, strings.Join(keys, ",")))
}

func attributeNames(in map[AttributeType]AttributeFilter) []string {
	out := make([]string, 0, len(in))
	for a := range in {
		out = append(out, string(a))
	}
	return out
}

func sensorNames(in map[SensorID]SensorFilter) []string {
	out := make([]string, 0, len(in))
	for d := range in {
		out = append(out, string(d))
	}
	return out
}
