package model

import (
	"cmp"
	"fmt"
	"slices"

	"sensorcq/internal/geom"
)

// Event is a simple event e_d = (a_d, p_d, v, t): one measurement of one
// sensor. Seq is a globally unique sequence number assigned by the publisher
// (or the trace replayer); protocols use it to recognise an event they have
// already forwarded over a link, and the metrics layer uses it to measure
// recall without comparing floating-point payloads.
type Event struct {
	Seq      uint64
	Sensor   SensorID
	Attr     AttributeType
	Location geom.Point2D
	Value    float64
	Time     Timestamp
	// Round is the replay round during which the event entered the network
	// (0 outside round-structured replay). The engines stamp it at injection
	// time and it travels with the event through forwarding and storage, so
	// a delivery can be attributed to the round of its newest component even
	// when several rounds are in flight at once (windowed replay). Two
	// events with the same Seq always carry the same Round.
	Round int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("event(#%d %s %s=%g t=%d)", e.Seq, e.Sensor, e.Attr, e.Value, e.Time)
}

// ComplexEvent is a set of time-correlated simple events E = {e1..en} that
// together match a subscription.
type ComplexEvent []Event

// MaxTime returns the timestamp of the complex event, defined by the paper as
// the maximum timestamp of its component events. It returns 0 for an empty
// complex event.
func (c ComplexEvent) MaxTime() Timestamp {
	var max Timestamp
	for i, e := range c {
		if i == 0 || e.Time > max {
			max = e.Time
		}
	}
	return max
}

// MinTime returns the smallest component timestamp (0 if empty).
func (c ComplexEvent) MinTime() Timestamp {
	var min Timestamp
	for i, e := range c {
		if i == 0 || e.Time < min {
			min = e.Time
		}
	}
	return min
}

// TimeSpan returns MaxTime - MinTime.
func (c ComplexEvent) TimeSpan() Timestamp {
	if len(c) == 0 {
		return 0
	}
	return c.MaxTime() - c.MinTime()
}

// LocationSpan returns the maximum pairwise distance between the component
// events' locations (0 for fewer than two events).
func (c ComplexEvent) LocationSpan() float64 {
	max := 0.0
	for i := 0; i < len(c); i++ {
		for j := i + 1; j < len(c); j++ {
			if d := c[i].Location.DistanceTo(c[j].Location); d > max {
				max = d
			}
		}
	}
	return max
}

// Seqs returns the sequence numbers of the component events, sorted.
func (c ComplexEvent) Seqs() []uint64 {
	out := make([]uint64, len(c))
	for i, e := range c {
		out[i] = e.Seq
	}
	slices.Sort(out)
	return out
}

// SortEventsByTime sorts events by (Time, Seq) in increasing order, in place.
func SortEventsByTime(events []Event) {
	slices.SortFunc(events, func(a, b Event) int {
		if a.Time != b.Time {
			return cmp.Compare(a.Time, b.Time)
		}
		return cmp.Compare(a.Seq, b.Seq)
	})
}
