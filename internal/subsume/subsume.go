// Package subsume implements the subscription-subsumption checks the paper's
// protocols rely on:
//
//   - pairwise covering (is a new subscription covered by a single existing
//     one?), used by the operator-placement and multi-join competitors, and
//   - set subsumption (is a new subscription covered by the union of a set of
//     existing ones?), used by the Filter-Split-Forward approach.
//
// Exact set subsumption for range subscriptions is co-NP complete [Srivastava
// 1992]; following the paper (and its reference [15], Ouksel et al.,
// Middleware 2006) this package provides a probabilistic checker with a
// configurable false-positive probability, plus an exact checker used for
// small dimensionalities, tests and the recall oracle.
package subsume

import (
	"fmt"
	"math"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/stats"
)

// Checker decides whether a candidate subscription is subsumed by a set of
// previously accepted subscriptions. Implementations may be probabilistic;
// the contract is:
//
//   - a "false" answer is always safe (the subscription is simply forwarded),
//   - a "true" answer may be wrong with at most the configured error
//     probability, in which case events falling into the uncovered gaps are
//     lost (reduced recall).
type Checker interface {
	// Subsumed reports whether candidate is covered by the union of the
	// given set. The set is expected to contain only subscriptions with the
	// same signature key (same attribute/sensor set) as the candidate;
	// others are ignored.
	Subsumed(candidate *model.Subscription, set []*model.Subscription) bool
	// Name identifies the checker in reports and ablation benchmarks.
	Name() string
}

// PairwiseCovered reports whether candidate is covered by at least one single
// member of set (same-signature members only). This is the filtering used by
// the operator-placement and distributed multi-join approaches.
func PairwiseCovered(candidate *model.Subscription, set []*model.Subscription) bool {
	for _, s := range set {
		if candidate.CoveredBy(s) {
			return true
		}
	}
	return false
}

// PairwiseChecker adapts PairwiseCovered to the Checker interface.
type PairwiseChecker struct{}

// Subsumed implements Checker.
func (PairwiseChecker) Subsumed(candidate *model.Subscription, set []*model.Subscription) bool {
	return PairwiseCovered(candidate, set)
}

// Name implements Checker.
func (PairwiseChecker) Name() string { return "pairwise" }

// NoneChecker never detects subsumption; it models the naive approach.
type NoneChecker struct{}

// Subsumed implements Checker.
func (NoneChecker) Subsumed(*model.Subscription, []*model.Subscription) bool { return false }

// Name implements Checker.
func (NoneChecker) Name() string { return "none" }

// comparableInto filters the set down to members comparable with the
// candidate — same kind, same signature key, same correlation distances; only
// those can participate in a coverage decision (Section V-B) — appending them
// to dst (pass a reused buffer's [:0] reslice, or nil to allocate).
func comparableInto(dst []*model.Subscription, candidate *model.Subscription, set []*model.Subscription) []*model.Subscription {
	out := dst
	for _, s := range set {
		if s == nil {
			continue
		}
		if s.Kind != candidate.Kind || s.SignatureKey() != candidate.SignatureKey() {
			continue
		}
		if s.DeltaT != candidate.DeltaT {
			continue
		}
		if s.Kind == model.KindAbstract && s.DeltaL != candidate.DeltaL {
			continue
		}
		out = append(out, s)
	}
	return out
}

// boxesOfInto converts subscriptions to their box representation, appending
// to dst (pass a reused buffer's [:0] reslice, or nil to allocate).
func boxesOfInto(dst []geom.Box, subs []*model.Subscription) []geom.Box {
	out := dst
	for _, s := range subs {
		out = append(out, s.Box())
	}
	return out
}

// coveredByUnionAtPoint reports whether the point lies inside at least one of
// the boxes.
func coveredByUnionAtPoint(pt map[string]float64, boxes []geom.Box) bool {
	for _, b := range boxes {
		if b.ContainsPoint(pt) {
			return true
		}
	}
	return false
}

// SetChecker is the probabilistic set-subsumption checker (the paper's "set
// filtering"). It decides coverage of the candidate's box by the union of the
// set's boxes via Monte-Carlo sampling: if any sampled point of the candidate
// is not covered by the union the candidate is not subsumed; if all samples
// are covered the candidate is declared subsumed. A "subsumed" answer can
// therefore be a false positive — the uncovered gaps then lose events, which
// is exactly the recall/traffic trade-off of Section VI-F; a "not subsumed"
// answer is always safe.
//
// The number of samples is derived from ErrorProbability and MinGapFraction:
// if the uncovered part of the candidate occupies at least MinGapFraction of
// its volume, the probability that all samples miss it (a false positive) is
// at most ErrorProbability. Smaller error probabilities therefore cost more
// samples — the processing/recall trade-off discussed in Section VI-F.
type SetChecker struct {
	// ErrorProbability is the acceptable probability of a false "subsumed"
	// decision for gaps of relative volume at least MinGapFraction.
	ErrorProbability float64
	// MinGapFraction is the smallest relative gap volume the checker is
	// calibrated to detect (default 0.05).
	MinGapFraction float64
	// MaxSamples caps the per-decision sampling effort (default 4096).
	MaxSamples int
	// seed drives the sampling. Each decision derives its own RNG from the
	// seed and the candidate's identity, so a verdict depends only on the
	// (candidate, set) pair — never on how many decisions were made before
	// it. That makes the sequential and concurrent engines reach identical
	// filtering verdicts even though they interleave decisions differently,
	// which the cross-engine conformance suite relies on.
	seed int64

	// compScratch, boxScratch and pt back Subsumed's per-decision
	// collections. Checkers are per-node (Config.CheckerFactory) and nodes
	// execute sequentially, so one buffer set per checker suffices; Subsumed
	// never retains them beyond a call, and pt is cleared per decision so a
	// verdict cannot depend on dimensions sampled by earlier ones.
	compScratch []*model.Subscription
	boxScratch  []geom.Box
	pt          map[string]float64
}

// NewSetChecker returns a set-subsumption checker with the given error
// probability (must be in (0,1)) and a deterministic sampling seed.
func NewSetChecker(errorProbability float64, seed int64) *SetChecker {
	if errorProbability <= 0 || errorProbability >= 1 {
		panic(fmt.Sprintf("subsume: error probability must be in (0,1), got %g", errorProbability))
	}
	return &SetChecker{
		ErrorProbability: errorProbability,
		MinGapFraction:   0.05,
		MaxSamples:       4096,
		seed:             seed,
	}
}

// decisionRNG derives the sampling stream of one subsumption decision from
// the checker seed and the candidate identity (FNV-1a over the ID).
func (c *SetChecker) decisionRNG(id model.SubscriptionID) *stats.RNG {
	h := uint64(1469598103934665603)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return stats.NewRNG(c.seed ^ int64(h))
}

// Name implements Checker.
func (c *SetChecker) Name() string {
	return fmt.Sprintf("set-filter(err=%g)", c.ErrorProbability)
}

// Samples returns the number of Monte-Carlo samples a single decision uses.
func (c *SetChecker) Samples() int {
	gap := c.MinGapFraction
	if gap <= 0 || gap >= 1 {
		gap = 0.05
	}
	n := int(math.Ceil(math.Log(c.ErrorProbability) / math.Log(1-gap)))
	if n < 8 {
		n = 8
	}
	max := c.MaxSamples
	if max <= 0 {
		max = 4096
	}
	if n > max {
		n = max
	}
	return n
}

// Subsumed implements Checker.
func (c *SetChecker) Subsumed(candidate *model.Subscription, set []*model.Subscription) bool {
	comp := comparableInto(c.compScratch[:0], candidate, set)
	c.compScratch = comp[:0]
	if len(comp) == 0 {
		return false
	}
	// Fast path: single-subscription coverage is exact and cheap.
	for _, s := range comp {
		if candidate.CoveredBy(s) {
			return true
		}
	}
	cbox := candidate.Box()
	boxes := boxesOfInto(c.boxScratch[:0], comp)
	c.boxScratch = boxes[:0]
	// Keep only boxes that overlap the candidate at all.
	overlapping := boxes[:0]
	for _, b := range boxes {
		if b.Overlaps(cbox) {
			overlapping = append(overlapping, b)
		}
	}
	if len(overlapping) == 0 {
		return false
	}

	dims := cbox.Dims()
	samples := c.Samples()
	rng := c.decisionRNG(candidate.ID)
	if c.pt == nil {
		c.pt = make(map[string]float64, len(dims))
	}
	pt := c.pt
	clear(pt)
	for i := 0; i < samples; i++ {
		for _, d := range dims {
			iv, _ := cbox.Get(d)
			if iv.Width() == 0 {
				pt[d] = iv.Min
			} else {
				pt[d] = iv.Lerp(rng.Float64())
			}
		}
		if !coveredByUnionAtPoint(pt, overlapping) {
			return false
		}
	}
	return true
}

// ExactChecker decides set subsumption exactly by recursive box subtraction.
// Its worst case is exponential in the number of overlapping subscriptions,
// so it is intended for tests, the recall oracle and ablation studies rather
// than the protocol hot path.
type ExactChecker struct {
	// MaxDepth bounds the recursion; when exceeded the checker
	// conservatively answers "not subsumed" (safe direction). Zero means
	// the default of 10_000 subtraction steps.
	MaxDepth int
}

// Name implements Checker.
func (ExactChecker) Name() string { return "exact" }

// Subsumed implements Checker.
func (c ExactChecker) Subsumed(candidate *model.Subscription, set []*model.Subscription) bool {
	comp := comparableInto(nil, candidate, set)
	if len(comp) == 0 {
		return false
	}
	for _, s := range comp {
		if candidate.CoveredBy(s) {
			return true
		}
	}
	budget := c.MaxDepth
	if budget <= 0 {
		budget = 10000
	}
	covered, ok := boxCoveredByUnion(candidate.Box(), boxesOfInto(nil, comp), &budget)
	return ok && covered
}

// boxCoveredByUnion reports whether box is fully covered by the union of
// covers, by subtracting the first overlapping cover and recursing on the
// remaining fragments. The budget bounds the number of fragments examined;
// when exhausted ok is false and the caller must treat the result as unknown.
func boxCoveredByUnion(box geom.Box, covers []geom.Box, budget *int) (covered, ok bool) {
	if *budget <= 0 {
		return false, false
	}
	*budget--
	if box.Empty() {
		return true, true
	}
	for i, cv := range covers {
		if !cv.Overlaps(box) {
			continue
		}
		if cv.Covers(box) {
			return true, true
		}
		fragments := subtractBox(box, cv)
		rest := covers[i+1:]
		for _, frag := range fragments {
			c, o := boxCoveredByUnion(frag, rest, budget)
			if !o {
				return false, false
			}
			if !c {
				return false, true
			}
		}
		return true, true
	}
	return false, true
}

// subtractBox returns the fragments of box not covered by cut, as a list of
// disjoint boxes over the same dimensions. cut must overlap box.
func subtractBox(box, cut geom.Box, // both over identical dimension sets
) []geom.Box {
	var fragments []geom.Box
	remaining := box.Clone()
	for _, dim := range box.Dims() {
		rIv, _ := remaining.Get(dim)
		cIv, _ := cut.Get(dim)
		// Left fragment: the part of remaining below the cut in this dim.
		if rIv.Min < cIv.Min {
			frag := remaining.Clone().Set(dim, geom.Interval{Min: rIv.Min, Max: math.Min(rIv.Max, cIv.Min)})
			fragments = append(fragments, frag)
		}
		// Right fragment: the part above the cut in this dim.
		if rIv.Max > cIv.Max {
			frag := remaining.Clone().Set(dim, geom.Interval{Min: math.Max(rIv.Min, cIv.Max), Max: rIv.Max})
			fragments = append(fragments, frag)
		}
		// Narrow remaining to the overlap in this dimension and continue.
		remaining = remaining.Set(dim, rIv.Intersect(cIv))
	}
	return fragments
}
