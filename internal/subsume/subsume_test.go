package subsume

import (
	"fmt"
	"testing"
	"testing/quick"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/stats"
)

func abs2(t *testing.T, id string, dt model.Timestamp, ranges map[model.AttributeType][2]float64) *model.Subscription {
	t.Helper()
	var filters []model.AttributeFilter
	for a, r := range ranges {
		filters = append(filters, model.AttributeFilter{Attr: a, Range: geom.NewInterval(r[0], r[1])})
	}
	s, err := model.NewAbstractSubscription(model.SubscriptionID(id), filters, geom.WholePlane(), dt, model.NoSpatialConstraint)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPairwiseCovered(t *testing.T) {
	wide := abs2(t, "wide", 30, map[model.AttributeType][2]float64{"a": {0, 100}, "b": {0, 100}})
	narrow := abs2(t, "narrow", 30, map[model.AttributeType][2]float64{"a": {10, 20}, "b": {10, 20}})
	other := abs2(t, "other", 30, map[model.AttributeType][2]float64{"a": {0, 100}, "c": {0, 100}})

	if !PairwiseCovered(narrow, []*model.Subscription{other, wide}) {
		t.Error("narrow should be pairwise covered by wide")
	}
	if PairwiseCovered(wide, []*model.Subscription{narrow, other}) {
		t.Error("wide should not be pairwise covered")
	}
	if PairwiseCovered(narrow, nil) {
		t.Error("empty set covers nothing")
	}
	var pc PairwiseChecker
	if !pc.Subsumed(narrow, []*model.Subscription{wide}) || pc.Name() != "pairwise" {
		t.Error("PairwiseChecker adapter wrong")
	}
	var nc NoneChecker
	if nc.Subsumed(narrow, []*model.Subscription{wide}) || nc.Name() != "none" {
		t.Error("NoneChecker should never subsume")
	}
}

// Table I of the paper: s3 is subsumed by {s1, s2} only after splitting into
// the per-path operators; as whole subscriptions over different sensor sets
// neither pairwise nor set filtering may detect subsumption.
func tableISubs(t *testing.T) (s1, s2, s3 *model.Subscription) {
	t.Helper()
	mk := func(id string, ranges map[model.SensorID][2]float64) *model.Subscription {
		var filters []model.SensorFilter
		for d, r := range ranges {
			filters = append(filters, model.SensorFilter{Sensor: d, Attr: model.AttributeType("attr_" + d), Range: geom.NewInterval(r[0], r[1])})
		}
		s, err := model.NewIdentifiedSubscription(model.SubscriptionID(id), filters, 30)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 = mk("s1", map[model.SensorID][2]float64{"a": {50, 80}, "b": {10, 30}})
	s2 = mk("s2", map[model.SensorID][2]float64{"b": {20, 40}, "c": {2, 20}})
	s3 = mk("s3", map[model.SensorID][2]float64{"a": {55, 75}, "b": {15, 35}, "c": {5, 15}})
	return
}

func TestTableIWholeSubscriptionsNotComparable(t *testing.T) {
	s1, s2, s3 := tableISubs(t)
	set := []*model.Subscription{s1, s2}
	if PairwiseCovered(s3, set) {
		t.Error("s3 must not be pairwise covered by s1/s2 (different sensor sets)")
	}
	checker := NewSetChecker(0.01, 1)
	if checker.Subsumed(s3, set) {
		t.Error("set filtering over different sensor sets must not subsume s3 directly")
	}
}

func TestTableISplitOperatorsAreCovered(t *testing.T) {
	s1, s2, s3 := tableISubs(t)
	// After the split phase, s3's simple operators are compared against the
	// simple operators split from s1 and s2 over the same sensors:
	//   a: [55,75] ⊂ [50,80]            (covered by s1's a operator alone)
	//   c: [5,15]  ⊂ [2,20]             (covered by s2's c operator alone)
	//   b: [15,35] ⊂ [10,30] ∪ [20,40]  (covered only by the UNION — this is
	//                                    where set filtering beats pairwise)
	op3a := s3.ProjectSensors([]model.SensorID{"a"})
	op3b := s3.ProjectSensors([]model.SensorID{"b"})
	op3c := s3.ProjectSensors([]model.SensorID{"c"})
	op1a := s1.ProjectSensors([]model.SensorID{"a"})
	op1b := s1.ProjectSensors([]model.SensorID{"b"})
	op2b := s2.ProjectSensors([]model.SensorID{"b"})
	op2c := s2.ProjectSensors([]model.SensorID{"c"})

	if !op3a.CoveredBy(op1a) {
		t.Error("s3's a operator should be covered by s1's a operator")
	}
	if !op3c.CoveredBy(op2c) {
		t.Error("s3's c operator should be covered by s2's c operator")
	}
	if op3b.CoveredBy(op1b) || op3b.CoveredBy(op2b) {
		t.Error("s3's b operator must not be covered by a single operator")
	}
	checker := NewSetChecker(0.01, 1)
	if !checker.Subsumed(op3a, []*model.Subscription{op1a}) {
		t.Error("set checker should accept single-cover case for (a)")
	}
	if !checker.Subsumed(op3c, []*model.Subscription{op2c}) {
		t.Error("set checker should accept single-cover case for (c)")
	}
	if !checker.Subsumed(op3b, []*model.Subscription{op1b, op2b}) {
		t.Error("set checker should detect the union coverage of the b operator")
	}
	if PairwiseCovered(op3b, []*model.Subscription{op1b, op2b}) {
		t.Error("pairwise filtering must not detect the union coverage of the b operator")
	}
	if !(ExactChecker{}).Subsumed(op3b, []*model.Subscription{op1b, op2b}) {
		t.Error("exact checker should detect the union coverage of the b operator")
	}
}

func TestSetCheckerUnionCoverage(t *testing.T) {
	// Two subscriptions that only jointly cover the candidate: pairwise
	// filtering fails, set filtering succeeds.
	left := abs2(t, "left", 30, map[model.AttributeType][2]float64{"a": {0, 60}, "b": {0, 100}})
	right := abs2(t, "right", 30, map[model.AttributeType][2]float64{"a": {40, 100}, "b": {0, 100}})
	mid := abs2(t, "mid", 30, map[model.AttributeType][2]float64{"a": {20, 80}, "b": {10, 90}})

	set := []*model.Subscription{left, right}
	if PairwiseCovered(mid, set) {
		t.Fatal("mid must not be covered by a single subscription")
	}
	checker := NewSetChecker(0.01, 42)
	if !checker.Subsumed(mid, set) {
		t.Error("set checker should detect union coverage")
	}
	exact := ExactChecker{}
	if !exact.Subsumed(mid, set) {
		t.Error("exact checker should detect union coverage")
	}
}

func TestSetCheckerDetectsGap(t *testing.T) {
	// The union leaves a hole in the middle of the candidate.
	left := abs2(t, "left", 30, map[model.AttributeType][2]float64{"a": {0, 40}, "b": {0, 100}})
	right := abs2(t, "right", 30, map[model.AttributeType][2]float64{"a": {60, 100}, "b": {0, 100}})
	mid := abs2(t, "mid", 30, map[model.AttributeType][2]float64{"a": {20, 80}, "b": {10, 90}})

	set := []*model.Subscription{left, right}
	checker := NewSetChecker(0.01, 42)
	if checker.Subsumed(mid, set) {
		t.Error("set checker must detect the uncovered gap")
	}
	exact := ExactChecker{}
	if exact.Subsumed(mid, set) {
		t.Error("exact checker must detect the uncovered gap")
	}
}

func TestSetCheckerInteriorGap(t *testing.T) {
	// Gap strictly in the interior (all corners covered) — only sampling or
	// exact subtraction can find it. Build a frame of four subscriptions
	// around an uncovered centre square.
	frame := []*model.Subscription{
		abs2(t, "bottom", 30, map[model.AttributeType][2]float64{"a": {0, 100}, "b": {0, 30}}),
		abs2(t, "top", 30, map[model.AttributeType][2]float64{"a": {0, 100}, "b": {70, 100}}),
		abs2(t, "left", 30, map[model.AttributeType][2]float64{"a": {0, 30}, "b": {0, 100}}),
		abs2(t, "right", 30, map[model.AttributeType][2]float64{"a": {70, 100}, "b": {0, 100}}),
	}
	candidate := abs2(t, "cand", 30, map[model.AttributeType][2]float64{"a": {10, 90}, "b": {10, 90}})

	exact := ExactChecker{}
	if exact.Subsumed(candidate, frame) {
		t.Fatal("exact checker must find the interior gap")
	}
	// The gap is (0.6)^2/(0.8)^2 = 56% of the candidate volume; with error
	// probability 0.01 the probabilistic checker finds it essentially always.
	checker := NewSetChecker(0.01, 7)
	if checker.Subsumed(candidate, frame) {
		t.Error("probabilistic checker should find a 56% gap")
	}
}

func TestSetCheckerErrorProbabilityTradeoff(t *testing.T) {
	// A tiny interior gap: a sloppier checker (larger error probability,
	// fewer samples) should miss it more often than a strict one. We only
	// assert the sample counts are ordered and that the strict checker is
	// not worse than the sloppy one on aggregate.
	frame := []*model.Subscription{
		abs2(t, "bottom", 30, map[model.AttributeType][2]float64{"a": {0, 100}, "b": {0, 49}}),
		abs2(t, "top", 30, map[model.AttributeType][2]float64{"a": {0, 100}, "b": {51, 100}}),
		abs2(t, "left", 30, map[model.AttributeType][2]float64{"a": {0, 49}, "b": {0, 100}}),
		abs2(t, "right", 30, map[model.AttributeType][2]float64{"a": {51, 100}, "b": {0, 100}}),
	}
	candidate := abs2(t, "cand", 30, map[model.AttributeType][2]float64{"a": {40, 60}, "b": {40, 60}})

	strict := NewSetChecker(0.001, 3)
	sloppy := NewSetChecker(0.5, 3)
	if strict.Samples() <= sloppy.Samples() {
		t.Errorf("stricter checker should sample more: %d vs %d", strict.Samples(), sloppy.Samples())
	}
	strictMisses, sloppyMisses := 0, 0
	for i := 0; i < 50; i++ {
		if strict.Subsumed(candidate, frame) {
			strictMisses++
		}
		if sloppy.Subsumed(candidate, frame) {
			sloppyMisses++
		}
	}
	if strictMisses > sloppyMisses {
		t.Errorf("strict checker missed the gap more often (%d) than the sloppy one (%d)", strictMisses, sloppyMisses)
	}
}

func TestSetCheckerIgnoresIncomparable(t *testing.T) {
	cand := abs2(t, "cand", 30, map[model.AttributeType][2]float64{"a": {10, 20}, "b": {10, 20}})
	otherAttrs := abs2(t, "other", 30, map[model.AttributeType][2]float64{"a": {0, 100}, "c": {0, 100}})
	otherDeltaT := abs2(t, "dt", 60, map[model.AttributeType][2]float64{"a": {0, 100}, "b": {0, 100}})
	checker := NewSetChecker(0.01, 5)
	if checker.Subsumed(cand, []*model.Subscription{otherAttrs, otherDeltaT}) {
		t.Error("incomparable subscriptions must not subsume")
	}
	if checker.Subsumed(cand, nil) {
		t.Error("empty set must not subsume")
	}
}

func TestNewSetCheckerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid error probability should panic")
		}
	}()
	NewSetChecker(1.5, 1)
}

func TestSetCheckerName(t *testing.T) {
	c := NewSetChecker(0.02, 1)
	if c.Name() != "set-filter(err=0.02)" {
		t.Errorf("Name() = %q", c.Name())
	}
	if (ExactChecker{}).Name() != "exact" {
		t.Error("ExactChecker name wrong")
	}
}

// Property: whenever the exact checker declares subsumption the probabilistic
// checker never produces a false negative that contradicts single-cover, and
// whenever the exact checker finds a gap of substantial volume the
// probabilistic checker agrees (no false positives beyond its error budget in
// this easy regime).
func TestPropertyExactVsProbabilistic(t *testing.T) {
	rng := stats.NewRNG(99)
	f := func(seedRaw int64) bool {
		_ = seedRaw
		// Generate 3 covering subscriptions and 1 candidate over 2 attrs.
		mk := func(id string) *model.Subscription {
			lo1 := rng.Range(0, 50)
			lo2 := rng.Range(0, 50)
			return abs2(t, id, 30, map[model.AttributeType][2]float64{
				"a": {lo1, lo1 + rng.Range(10, 50)},
				"b": {lo2, lo2 + rng.Range(10, 50)},
			})
		}
		set := []*model.Subscription{mk("x"), mk("y"), mk("z")}
		cand := mk("cand")
		exact := ExactChecker{}.Subsumed(cand, set)
		prob := NewSetChecker(0.001, rng.Int63()).Subsumed(cand, set)
		if exact && !prob {
			// The probabilistic checker may only err towards "subsumed";
			// an exact "yes" with probabilistic "no" would be a real bug
			// only if sampling hit a point outside the union, which cannot
			// happen when the union truly covers the candidate.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExactCheckerBudgetExhaustion(t *testing.T) {
	// With a budget of 1 the checker cannot finish and must answer "not
	// subsumed" (the safe direction), even for an obviously covered case
	// that is not single-covered.
	left := abs2(t, "left", 30, map[model.AttributeType][2]float64{"a": {0, 60}, "b": {0, 100}})
	right := abs2(t, "right", 30, map[model.AttributeType][2]float64{"a": {40, 100}, "b": {0, 100}})
	mid := abs2(t, "mid", 30, map[model.AttributeType][2]float64{"a": {20, 80}, "b": {10, 90}})
	c := ExactChecker{MaxDepth: 1}
	if c.Subsumed(mid, []*model.Subscription{left, right}) {
		t.Error("budget-exhausted exact checker must answer false")
	}
}

func ExamplePairwiseCovered() {
	wide, _ := model.NewAbstractSubscription("wide",
		[]model.AttributeFilter{{Attr: "temp", Range: geom.NewInterval(-10, 10)}},
		geom.WholePlane(), 30, model.NoSpatialConstraint)
	narrow, _ := model.NewAbstractSubscription("narrow",
		[]model.AttributeFilter{{Attr: "temp", Range: geom.NewInterval(0, 5)}},
		geom.WholePlane(), 30, model.NoSpatialConstraint)
	fmt.Println(PairwiseCovered(narrow, []*model.Subscription{wide}))
	// Output: true
}
