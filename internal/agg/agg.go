// Package agg implements the mergeable aggregates of the in-network
// aggregation subsystem: windowed GROUP-BY-time continuous queries
// accumulate one State per (subscription, window) at every node of the
// dissemination tree, and a parent combines its children's partial states
// with Merge instead of shipping every reading upstream.
//
// All implementations satisfy the mergeability law the tree relies on:
// folding a multiset of values through any partition of Add calls and
// Merge combinations yields the same Result as folding them through one
// State. The scalar aggregates (count, sum, min, max, mean) are exact; the
// quantile aggregate is a q-digest sketch ("Medians and Beyond",
// Shrivastava et al.) whose rank error is bounded by ε = log2(σ)/k over a
// σ-bucket value domain with compression parameter k. ExactQuantile is the
// unbounded-memory reference used by the ship-every-reading baseline and
// the test oracles.
package agg

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Func identifies an aggregate function.
type Func uint8

const (
	Count Func = iota
	Sum
	Min
	Max
	Mean
	Quantile
)

var funcNames = [...]string{"count", "sum", "min", "max", "mean", "quantile"}

func (f Func) String() string {
	if int(f) < len(funcNames) {
		return funcNames[f]
	}
	return fmt.Sprintf("Func(%d)", uint8(f))
}

// ParseFunc maps the wire/CLI spelling of an aggregate function to its
// value.
func ParseFunc(s string) (Func, error) {
	for i, name := range funcNames {
		if strings.EqualFold(s, name) {
			return Func(i), nil
		}
	}
	return 0, fmt.Errorf("agg: unknown aggregate function %q (want one of %s)", s, strings.Join(funcNames[:], ", "))
}

// FuncNames returns the CLI spellings of every aggregate function.
func FuncNames() []string {
	out := make([]string, len(funcNames))
	copy(out, funcNames[:])
	return out
}

// State is one mergeable partial aggregate. Add folds in a raw reading,
// Merge folds in another partial of the same configuration, Result
// finalises the aggregate and Reset returns the state to its empty value
// so pools can reuse it. Count reports how many readings have been folded
// in (directly or via Merge).
type State interface {
	Add(v float64)
	Merge(o State)
	Result() float64
	Count() int64
	Reset()
	// EncodedSize is the wire size of the partial in bytes, the unit of
	// the bytes-upstream traffic metric.
	EncodedSize() int
}

// Config parameterises state construction. Lo, Hi, Bits and K only matter
// for Quantile: the value domain [Lo, Hi] is bucketed into σ = 2^Bits
// cells and the sketch keeps at most 3·K nodes, for a rank error bound of
// Epsilon = Bits/K.
type Config struct {
	Func     Func
	Quantile float64 // rank fraction φ in (0,1), Quantile only
	Lo, Hi   float64 // value domain, Quantile only
	Bits     uint    // log2 of the bucket count σ, Quantile only
	K        int     // q-digest compression parameter, Quantile only
	Exact    bool    // use the unbounded exact quantile instead of the sketch
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if int(c.Func) >= len(funcNames) {
		return fmt.Errorf("agg: unknown aggregate function %d", c.Func)
	}
	if c.Func != Quantile {
		return nil
	}
	if !(c.Quantile > 0 && c.Quantile < 1) {
		return fmt.Errorf("agg: quantile rank %g outside (0,1)", c.Quantile)
	}
	if c.Exact {
		return nil
	}
	if !(c.Lo < c.Hi) {
		return fmt.Errorf("agg: quantile domain [%g, %g] is empty", c.Lo, c.Hi)
	}
	if c.Bits < 1 || c.Bits > 20 {
		return fmt.Errorf("agg: quantile domain bits %d outside 1..20", c.Bits)
	}
	if c.K < 1 {
		return fmt.Errorf("agg: q-digest compression parameter k must be >= 1, got %d", c.K)
	}
	return nil
}

// Epsilon returns the rank-error bound of the configuration as a fraction
// of the reading count: log2(σ)/k for the q-digest, 0 for every exact
// aggregate.
func (c Config) Epsilon() float64 {
	if c.Func != Quantile || c.Exact {
		return 0
	}
	return float64(c.Bits) / float64(c.K)
}

// New builds an empty state for the configuration. The caller is expected
// to have validated the configuration.
func (c Config) New() State {
	switch c.Func {
	case Count:
		return &countState{}
	case Sum:
		return &sumState{}
	case Min:
		return &minmaxState{min: true}
	case Max:
		return &minmaxState{}
	case Mean:
		return &meanState{}
	case Quantile:
		if c.Exact {
			return &ExactQuantile{Phi: c.Quantile}
		}
		return NewQDigest(c)
	}
	panic(fmt.Sprintf("agg: unknown aggregate function %d", c.Func))
}

const scalarEncodedSize = 16 // count + one float64 accumulator

type countState struct{ n int64 }

func (s *countState) Add(float64) { s.n++ }
func (s *countState) Merge(o State) {
	s.n += o.(*countState).n
}
func (s *countState) Result() float64  { return float64(s.n) }
func (s *countState) Count() int64     { return s.n }
func (s *countState) Reset()           { s.n = 0 }
func (s *countState) EncodedSize() int { return scalarEncodedSize }

type sumState struct {
	n   int64
	sum float64
}

func (s *sumState) Add(v float64) { s.n++; s.sum += v }
func (s *sumState) Merge(o State) {
	t := o.(*sumState)
	s.n += t.n
	s.sum += t.sum
}
func (s *sumState) Result() float64  { return s.sum }
func (s *sumState) Count() int64     { return s.n }
func (s *sumState) Reset()           { s.n, s.sum = 0, 0 }
func (s *sumState) EncodedSize() int { return scalarEncodedSize }

type minmaxState struct {
	min bool
	n   int64
	val float64
}

func (s *minmaxState) Add(v float64) {
	if s.n == 0 || (s.min && v < s.val) || (!s.min && v > s.val) {
		s.val = v
	}
	s.n++
}

func (s *minmaxState) Merge(o State) {
	t := o.(*minmaxState)
	if t.n == 0 {
		return
	}
	if s.n == 0 || (s.min && t.val < s.val) || (!s.min && t.val > s.val) {
		s.val = t.val
	}
	s.n += t.n
}

func (s *minmaxState) Result() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.val
}
func (s *minmaxState) Count() int64     { return s.n }
func (s *minmaxState) Reset()           { s.n, s.val = 0, 0 }
func (s *minmaxState) EncodedSize() int { return scalarEncodedSize }

type meanState struct {
	n   int64
	sum float64
}

func (s *meanState) Add(v float64) { s.n++; s.sum += v }
func (s *meanState) Merge(o State) {
	t := o.(*meanState)
	s.n += t.n
	s.sum += t.sum
}

func (s *meanState) Result() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.n)
}
func (s *meanState) Count() int64     { return s.n }
func (s *meanState) Reset()           { s.n, s.sum = 0, 0 }
func (s *meanState) EncodedSize() int { return scalarEncodedSize }

// ExactQuantile is the unbounded reference quantile: it keeps every value.
// The ship-every-reading baseline aggregates with it at the origin, and
// the sketch tests use it as the ground-truth oracle.
type ExactQuantile struct {
	Phi    float64
	values []float64
}

func (s *ExactQuantile) Add(v float64) { s.values = append(s.values, v) }

func (s *ExactQuantile) Merge(o State) {
	s.values = append(s.values, o.(*ExactQuantile).values...)
}

// Result returns the value of rank ceil(φ·n) in sorted order (the smallest
// value whose rank fraction is >= φ).
func (s *ExactQuantile) Result() float64 {
	n := len(s.values)
	if n == 0 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	copy(sorted, s.values)
	sort.Float64s(sorted)
	rank := int(math.Ceil(s.Phi * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

func (s *ExactQuantile) Count() int64 { return int64(len(s.values)) }
func (s *ExactQuantile) Reset()       { s.values = s.values[:0] }

// Values returns the accumulated readings (unsorted); test oracles use it.
func (s *ExactQuantile) Values() []float64 { return s.values }

func (s *ExactQuantile) EncodedSize() int { return 8 + 8*len(s.values) }
