package agg

import (
	"math"
	"sort"
)

// QDigest is a deterministic q-digest quantile sketch over the value
// domain [lo, hi] bucketed into σ = 2^bits cells. Nodes of the complete
// binary tree over the buckets are heap-numbered (root 1, leaves
// σ..2σ-1); the sketch stores the non-zero node counts sparsely.
//
// Determinism is what lets the conformance oracle compare aggregate
// results across engines and delivery modes: Add only touches leaf
// buckets and Merge only adds counts nodewise — both commutative — while
// the order-sensitive compression runs exactly once per partial, in
// Compress, which the window lifecycle invokes at window close (after all
// local readings and child partials have been folded in). Given the same
// dissemination tree the sketch a node ships upstream is therefore a pure
// function of the readings below it, independent of arrival order.
//
// After Compress the sketch holds at most 3k nodes, so one partial
// message costs O(k) bytes regardless of the reading count, and the rank
// error of Quantile is at most log2(σ)/k of the total count per merge
// level — the ε = log(σ)/k bound with the tree-depth factor folded into
// the effective k the caller configures.
type QDigest struct {
	lo, hi float64
	bits   uint
	k      int
	phi    float64

	n      int64
	counts map[uint32]int64

	// scratch is the node id sort buffer of Compress and Quantile,
	// retained across windows so pooled reuse stays allocation-free.
	scratch []uint32
}

// NewQDigest builds an empty sketch for the configuration (Func must be
// Quantile with Exact unset).
func NewQDigest(c Config) *QDigest {
	return &QDigest{
		lo:     c.Lo,
		hi:     c.Hi,
		bits:   c.Bits,
		k:      c.K,
		phi:    c.Quantile,
		counts: make(map[uint32]int64),
	}
}

// buckets returns σ, the number of leaf cells.
func (q *QDigest) buckets() uint32 { return uint32(1) << q.bits }

// bucketOf maps a value to its leaf cell, clamping out-of-domain values
// to the boundary cells.
func (q *QDigest) bucketOf(v float64) uint32 {
	if v <= q.lo {
		return 0
	}
	if v >= q.hi {
		return q.buckets() - 1
	}
	b := uint32(float64(q.buckets()) * (v - q.lo) / (q.hi - q.lo))
	if b >= q.buckets() {
		b = q.buckets() - 1
	}
	return b
}

// BucketUpper returns the upper boundary value of the leaf cell holding v
// — the quantisation Quantile answers in. Test oracles use it to compare
// sketch answers against exact ranks in the quantised domain.
func (q *QDigest) BucketUpper(v float64) float64 {
	return q.upperOf(q.leafOf(q.bucketOf(v)))
}

func (q *QDigest) leafOf(bucket uint32) uint32 { return q.buckets() + bucket }

// span returns the leaf-cell range [first, last] covered by a node.
func (q *QDigest) span(id uint32) (first, last uint32) {
	// Descend to the leaf level: each left step doubles the id.
	lo, hi := id, id
	for lo < q.buckets() {
		lo *= 2
		hi = hi*2 + 1
	}
	return lo - q.buckets(), hi - q.buckets()
}

// upperOf returns the upper boundary value of a node's cell range.
func (q *QDigest) upperOf(id uint32) float64 {
	_, last := q.span(id)
	return q.lo + (q.hi-q.lo)*float64(last+1)/float64(q.buckets())
}

// Add folds in one reading: a leaf increment, commutative by
// construction.
func (q *QDigest) Add(v float64) {
	q.counts[q.leafOf(q.bucketOf(v))]++
	q.n++
}

// Merge folds another sketch of the same configuration in by nodewise
// count addition (commutative; compression is deferred to Compress).
func (q *QDigest) Merge(o State) {
	t := o.(*QDigest)
	for id, c := range t.counts {
		q.counts[id] += c
	}
	q.n += t.n
}

// Compress enforces the q-digest size bound: bottom-up (deepest parents
// first, which heap numbering gives by descending parent id), any parent
// whose subtree-triple count stays below n/k absorbs its children. The
// pass is deterministic — it iterates parent ids, not map order.
func (q *QDigest) Compress() {
	threshold := q.n / int64(q.k)
	if threshold <= 1 {
		return
	}
	// Only parents below a populated node can absorb anything; walking
	// the populated ids' ancestors beats scanning all σ-1 parents when
	// the sketch is sparse. Collect candidate parents, deduped, sorted
	// descending (bottom-up).
	q.scratch = q.scratch[:0]
	seen := make(map[uint32]bool, len(q.counts))
	for id := range q.counts {
		for p := id / 2; p >= 1; p /= 2 {
			if seen[p] {
				break
			}
			seen[p] = true
			q.scratch = append(q.scratch, p)
		}
	}
	sort.Slice(q.scratch, func(i, j int) bool { return q.scratch[i] > q.scratch[j] })
	for _, p := range q.scratch {
		l, r := 2*p, 2*p+1
		s := q.counts[p] + q.counts[l] + q.counts[r]
		if s == 0 || s >= threshold {
			continue
		}
		if s != q.counts[p] {
			q.counts[p] = s
			delete(q.counts, l)
			delete(q.counts, r)
		}
	}
}

// Quantile answers the configured rank query: nodes are visited in
// q-digest postorder (ascending upper boundary, deeper nodes first on
// ties) accumulating counts until the target rank is reached; the answer
// is that node's upper boundary value.
func (q *QDigest) Quantile() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	q.scratch = q.scratch[:0]
	for id := range q.counts {
		q.scratch = append(q.scratch, id)
	}
	sort.Slice(q.scratch, func(i, j int) bool {
		_, li := q.span(q.scratch[i])
		_, lj := q.span(q.scratch[j])
		if li != lj {
			return li < lj
		}
		// Same upper boundary: the deeper node (larger id) covers the
		// smaller range and is visited first in postorder.
		return q.scratch[i] > q.scratch[j]
	})
	target := int64(math.Ceil(q.phi * float64(q.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, id := range q.scratch {
		cum += q.counts[id]
		if cum >= target {
			return q.upperOf(id)
		}
	}
	return q.hi
}

// Result finalises the sketch: it compresses (idempotent) and answers the
// configured quantile.
func (q *QDigest) Result() float64 {
	q.Compress()
	return q.Quantile()
}

func (q *QDigest) Count() int64 { return q.n }

// Reset empties the sketch for pooled reuse, keeping its configuration
// and scratch capacity.
func (q *QDigest) Reset() {
	q.n = 0
	clear(q.counts)
}

// Nodes returns the number of stored (non-zero) sketch nodes.
func (q *QDigest) Nodes() int { return len(q.counts) }

// EncodedSize is the wire size of the sketch: a fixed header plus 12
// bytes (id + varint-free count) per stored node.
func (q *QDigest) EncodedSize() int { return 16 + 12*len(q.counts) }
