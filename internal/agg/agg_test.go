package agg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// foldPartitioned folds values into states through a random partition of
// Add calls and a random merge tree, exercising the mergeability law.
func foldPartitioned(t *testing.T, cfg Config, values []float64, rng *rand.Rand) State {
	t.Helper()
	parts := 1 + rng.Intn(5)
	states := make([]State, parts)
	for i := range states {
		states[i] = cfg.New()
	}
	for _, v := range values {
		states[rng.Intn(parts)].Add(v)
	}
	// Merge in random order down to one state.
	for len(states) > 1 {
		i := rng.Intn(len(states) - 1)
		states[i].Merge(states[i+1])
		states = append(states[:i+1], states[i+2:]...)
	}
	return states[0]
}

func TestScalarStatesMergeable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, f := range []Func{Count, Sum, Min, Max, Mean} {
		cfg := Config{Func: f}
		for trial := 0; trial < 50; trial++ {
			n := 1 + rng.Intn(200)
			values := make([]float64, n)
			for i := range values {
				values[i] = rng.Float64()*200 - 100
			}
			direct := cfg.New()
			for _, v := range values {
				direct.Add(v)
			}
			partitioned := foldPartitioned(t, cfg, values, rng)
			if got, want := partitioned.Result(), direct.Result(); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("%s: partitioned fold = %g, direct fold = %g", f, got, want)
			}
			if partitioned.Count() != int64(n) {
				t.Fatalf("%s: count = %d, want %d", f, partitioned.Count(), n)
			}
		}
	}
}

func TestScalarResults(t *testing.T) {
	values := []float64{3, -1, 4, 1, 5, 9, 2, 6}
	want := map[Func]float64{
		Count: 8,
		Sum:   29,
		Min:   -1,
		Max:   9,
		Mean:  29.0 / 8,
	}
	for f, w := range want {
		s := Config{Func: f}.New()
		for _, v := range values {
			s.Add(v)
		}
		if got := s.Result(); math.Abs(got-w) > 1e-12 {
			t.Errorf("%s = %g, want %g", f, got, w)
		}
		s.Reset()
		if s.Count() != 0 {
			t.Errorf("%s: count after Reset = %d", f, s.Count())
		}
	}
}

func TestExactQuantile(t *testing.T) {
	s := &ExactQuantile{Phi: 0.5}
	for _, v := range []float64{9, 1, 8, 2, 7, 3, 6, 4, 5} {
		s.Add(v)
	}
	if got := s.Result(); got != 5 {
		t.Fatalf("median of 1..9 = %g, want 5", got)
	}
	lo := &ExactQuantile{Phi: 0.1}
	lo.Add(10)
	lo.Add(20)
	if got := lo.Result(); got != 10 {
		t.Fatalf("p10 of {10,20} = %g, want 10", got)
	}
}

// exactRankError returns the rank error of answer within the values,
// quantised to the sketch's buckets (values inside one bucket are
// indistinguishable to the sketch by construction): the distance from the
// target rank φ·n to the nearest rank held by a quantised value equal to
// the answer.
func exactRankError(q *QDigest, values []float64, phi, answer float64) float64 {
	quantised := make([]float64, len(values))
	for i, v := range values {
		quantised[i] = q.BucketUpper(v)
	}
	sort.Float64s(quantised)
	target := math.Ceil(phi * float64(len(values)))
	// Ranks occupied by the answer value: [first+1, last+1] in 1-based
	// rank terms.
	first := sort.SearchFloat64s(quantised, answer)
	last := sort.SearchFloat64s(quantised, math.Nextafter(answer, math.Inf(1)))
	if first >= last {
		// The answer value does not occur; its rank position is first.
		return math.Abs(float64(first) - target)
	}
	switch {
	case target < float64(first+1):
		return float64(first+1) - target
	case target > float64(last):
		return target - float64(last)
	default:
		return 0
	}
}

// TestQDigestErrorBound is the property test of the sketch: over random
// traces, random domains and random compression parameters, merged through
// random partition trees, the quantile answer's rank error must stay
// within ε = bits/k of the target rank (in the bucket-quantised domain).
func TestQDigestErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		bits := uint(4 + rng.Intn(9)) // σ in 16..4096
		k := 1 << (2 + rng.Intn(5))   // k in 4..64
		phi := 0.05 + 0.9*rng.Float64()
		cfg := Config{Func: Quantile, Quantile: phi, Lo: -50, Hi: 150, Bits: bits, K: k}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		n := 50 + rng.Intn(2000)
		values := make([]float64, n)
		for i := range values {
			// Mix of clustered and uniform values, some outside the domain
			// (clamped to the boundary buckets).
			switch rng.Intn(3) {
			case 0:
				values[i] = 20 + 5*rng.NormFloat64()
			case 1:
				values[i] = rng.Float64()*200 - 50
			default:
				values[i] = rng.Float64()*300 - 100
			}
		}
		s := foldPartitioned(t, cfg, values, rng).(*QDigest)
		answer := s.Result()
		eps := cfg.Epsilon()
		if err := exactRankError(s, values, phi, answer); err > eps*float64(n)+1 {
			t.Fatalf("trial %d (bits=%d k=%d phi=%.3f n=%d): rank error %.1f exceeds ε·n+1 = %.1f",
				trial, bits, k, phi, n, err, eps*float64(n)+1)
		}
		if s.Count() != int64(n) {
			t.Fatalf("count = %d, want %d", s.Count(), n)
		}
	}
}

// TestQDigestCompressionBound pins the size bound that makes a partial
// message O(k): after Compress a sketch stores at most 3k nodes.
func TestQDigestCompressionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range []int{4, 16, 64} {
		cfg := Config{Func: Quantile, Quantile: 0.5, Lo: 0, Hi: 1000, Bits: 12, K: k}
		q := NewQDigest(cfg)
		for i := 0; i < 20000; i++ {
			q.Add(rng.Float64() * 1000)
		}
		q.Compress()
		if got, limit := q.Nodes(), 3*k; got > limit {
			t.Errorf("k=%d: %d nodes after Compress, want <= %d", k, got, limit)
		}
	}
}

// TestQDigestDeterministicAcrossMergeOrders pins the conformance-critical
// property: the same reading multiset distributed over partials in any
// order yields byte-identical sketch contents once compressed.
func TestQDigestDeterministicAcrossMergeOrders(t *testing.T) {
	cfg := Config{Func: Quantile, Quantile: 0.5, Lo: 0, Hi: 100, Bits: 8, K: 8}
	rng := rand.New(rand.NewSource(3))
	values := make([]float64, 500)
	for i := range values {
		values[i] = rng.Float64() * 100
	}
	build := func(order []int, parts int) *QDigest {
		states := make([]*QDigest, parts)
		for i := range states {
			states[i] = NewQDigest(cfg)
		}
		for i, idx := range order {
			states[i%parts].Add(values[idx])
		}
		root := NewQDigest(cfg)
		for _, s := range states {
			s.Compress()
			root.Merge(s)
		}
		root.Compress()
		return root
	}
	identity := make([]int, len(values))
	shuffled := make([]int, len(values))
	for i := range identity {
		identity[i] = i
		shuffled[i] = i
	}
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	// Note: the partials hold different value subsets under the two
	// orders, so only same-partition contents are compared for the
	// stronger property; the answer must match in every case.
	a, b := build(identity, 5), build(identity, 5)
	if got, want := a.Quantile(), b.Quantile(); got != want {
		t.Fatalf("same partition, same order: %g vs %g", got, want)
	}
	if a.Nodes() != b.Nodes() {
		t.Fatalf("same partition: %d vs %d nodes", a.Nodes(), b.Nodes())
	}
	c := build(shuffled, 1)
	d := build(identity, 1)
	if got, want := c.Quantile(), d.Quantile(); got != want {
		t.Fatalf("single partial, shuffled adds: %g vs %g", got, want)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Func: Quantile, Quantile: 0.5, Lo: 0, Hi: 1, Bits: 8, K: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Func: Func(99)},
		{Func: Quantile, Quantile: 0, Lo: 0, Hi: 1, Bits: 8, K: 4},
		{Func: Quantile, Quantile: 1.5, Lo: 0, Hi: 1, Bits: 8, K: 4},
		{Func: Quantile, Quantile: 0.5, Lo: 1, Hi: 1, Bits: 8, K: 4},
		{Func: Quantile, Quantile: 0.5, Lo: 0, Hi: 1, Bits: 0, K: 4},
		{Func: Quantile, Quantile: 0.5, Lo: 0, Hi: 1, Bits: 8, K: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated but should not: %+v", i, c)
		}
	}
	if eps := good.Epsilon(); eps != 2 {
		t.Errorf("epsilon = %g, want bits/k = 2", eps)
	}
	if f, err := ParseFunc("QUANTILE"); err != nil || f != Quantile {
		t.Errorf("ParseFunc(QUANTILE) = %v, %v", f, err)
	}
	if _, err := ParseFunc("p99"); err == nil {
		t.Error("ParseFunc(p99) should fail")
	}
}
