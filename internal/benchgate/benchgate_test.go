package benchgate

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: sensorcq
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkReplayWindowed/lag=0-4         	       5	  10002796 ns/op	     39995 events/sec	         4.000 gomaxprocs
BenchmarkReplayWindowed/lag=2-4         	       5	   7903138 ns/op	     50620 events/sec	         4.000 gomaxprocs
BenchmarkEventMatchScaling/indexed/subs=1000-4 	16504officially bogus line
BenchmarkEventMatchScaling/indexed/subs=1000-4 	 1000000	        70.5 ns/op	         3.000 matches/op
PASS
ok  	sensorcq	0.124s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	lag0 := results[0]
	if lag0.Name != "BenchmarkReplayWindowed/lag=0-4" || lag0.Iterations != 5 {
		t.Errorf("unexpected first result %+v", lag0)
	}
	if lag0.NsPerOp != 10002796 || lag0.EventsPerSec != 39995 {
		t.Errorf("lag0 metrics wrong: %+v", lag0)
	}
	if lag0.Metrics["gomaxprocs"] != 4 {
		t.Errorf("gomaxprocs not captured: %+v", lag0.Metrics)
	}
	idx := results[2]
	if idx.EventsPerSec != 0 || idx.NsPerOp != 70.5 || idx.Metrics["matches/op"] != 3 {
		t.Errorf("indexed result wrong: %+v", idx)
	}
}

func TestParseMergesRepeatedRuns(t *testing.T) {
	repeated := "BenchmarkX-1 1 200 ns/op 1000 events/sec\nBenchmarkX-1 1 100 ns/op 1500 events/sec\n"
	results, err := Parse(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1 merged", len(results))
	}
	if results[0].NsPerOp != 100 || results[0].EventsPerSec != 1500 {
		t.Errorf("best-of merge wrong: %+v", results[0])
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok  \tsensorcq\t0.1s\n")); err == nil {
		t.Error("input with no benchmark lines should be an error")
	}
}

func baselineReport() *Report {
	return &Report{
		SHA: "abc123",
		Results: []Result{
			{Name: "BenchmarkReplayWindowed/lag=0-4", NsPerOp: 1e7, EventsPerSec: 40000,
				Metrics: map[string]float64{"allocs/op": 4000, "B/op": 700000}},
			{Name: "BenchmarkReplayWindowed/lag=2-4", NsPerOp: 8e6, EventsPerSec: 50000,
				Metrics: map[string]float64{"allocs/op": 4200, "B/op": 720000}},
			{Name: "BenchmarkEventMatchScaling/indexed/subs=1000-4", NsPerOp: 70},
		},
	}
}

func defaultLimits() Limits { return Limits{MaxDrop: 0.25, MaxAllocGrowth: 0.5} }

// TestGateFailsOnInjectedSlowdown is the gate's own regression test: a run
// whose throughput collapsed beyond the threshold must be flagged, one
// within the threshold must pass.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	base := baselineReport()
	slow := []Result{
		{Name: "BenchmarkReplayWindowed/lag=0-4", EventsPerSec: 20000}, // -50%: regression
		{Name: "BenchmarkReplayWindowed/lag=2-4", EventsPerSec: 45000}, // -10%: fine
		{Name: "BenchmarkEventMatchScaling/indexed/subs=1000-4", NsPerOp: 500},
	}
	regs := Gate(base, slow, defaultLimits())
	if len(regs) != 1 {
		t.Fatalf("Gate flagged %d regressions, want exactly the injected one: %v", len(regs), regs)
	}
	if regs[0].Name != "BenchmarkReplayWindowed/lag=0-4" || regs[0].Metric != "events/sec" || regs[0].Delta < 0.49 {
		t.Errorf("unexpected regression %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "-50.0%") {
		t.Errorf("regression message %q should state the drop", regs[0].String())
	}
}

func TestGatePassesHealthyRun(t *testing.T) {
	base := baselineReport()
	healthy := []Result{
		{Name: "BenchmarkReplayWindowed/lag=0-4", EventsPerSec: 41000,
			Metrics: map[string]float64{"allocs/op": 4100, "B/op": 710000}},
		{Name: "BenchmarkReplayWindowed/lag=2-4", EventsPerSec: 60000,
			Metrics: map[string]float64{"allocs/op": 3000, "B/op": 500000}},
		// ns/op-only benchmarks never gate, whatever they report.
		{Name: "BenchmarkEventMatchScaling/indexed/subs=1000-4", NsPerOp: 9999},
		// New benchmarks absent from the baseline pass freely.
		{Name: "BenchmarkBrandNew-4", EventsPerSec: 1},
	}
	if regs := Gate(base, healthy, defaultLimits()); len(regs) != 0 {
		t.Errorf("healthy run flagged: %v", regs)
	}
}

func TestGateFlagsMissingBenchmark(t *testing.T) {
	base := baselineReport()
	partial := []Result{
		{Name: "BenchmarkReplayWindowed/lag=0-4", EventsPerSec: 40000,
			Metrics: map[string]float64{"allocs/op": 4000, "B/op": 700000}},
	}
	// EVERY missing baseline benchmark fails — including ns/op-only entries
	// that never gated a metric: a benchmark that silently vanishes would
	// otherwise un-gate itself.
	regs := Gate(base, partial, defaultLimits())
	if len(regs) != 2 {
		t.Fatalf("Gate flagged %d regressions for 2 missing benchmarks: %v", len(regs), regs)
	}
	for _, r := range regs {
		if !r.Missing {
			t.Errorf("regression %+v should be a missing-benchmark failure", r)
		}
		if !strings.Contains(r.String(), "missing") {
			t.Errorf("message %q should mention the benchmark is missing", r.String())
		}
	}

	// An explicit allowlist declares the removals intentional.
	lim := defaultLimits()
	lim.AllowMissing = map[string]bool{
		"BenchmarkReplayWindowed/lag=2-4":                true,
		"BenchmarkEventMatchScaling/indexed/subs=1000-4": true,
	}
	if regs := Gate(base, partial, lim); len(regs) != 0 {
		t.Errorf("allowlisted removals still flagged: %v", regs)
	}
}

// TestGateFailsOnAllocRegression injects a 2x allocs/op regression and
// requires the gate to flag it: allocation discipline is gated exactly like
// throughput.
func TestGateFailsOnAllocRegression(t *testing.T) {
	base := baselineReport()
	leaky := []Result{
		{Name: "BenchmarkReplayWindowed/lag=0-4", EventsPerSec: 40000,
			Metrics: map[string]float64{"allocs/op": 8000, "B/op": 710000}}, // allocs doubled
		{Name: "BenchmarkReplayWindowed/lag=2-4", EventsPerSec: 50000,
			Metrics: map[string]float64{"allocs/op": 4200, "B/op": 1500000}}, // bytes doubled
		{Name: "BenchmarkEventMatchScaling/indexed/subs=1000-4", NsPerOp: 70},
	}
	regs := Gate(base, leaky, defaultLimits())
	if len(regs) != 2 {
		t.Fatalf("Gate flagged %d regressions, want the allocs/op and B/op doublings: %v", len(regs), regs)
	}
	if regs[0].Name != "BenchmarkReplayWindowed/lag=0-4" || regs[0].Metric != "allocs/op" || regs[0].Delta < 0.99 {
		t.Errorf("unexpected first regression %+v", regs[0])
	}
	if regs[1].Name != "BenchmarkReplayWindowed/lag=2-4" || regs[1].Metric != "B/op" {
		t.Errorf("unexpected second regression %+v", regs[1])
	}
	if !strings.Contains(regs[0].String(), "allocs/op") || !strings.Contains(regs[0].String(), "+100.0%") {
		t.Errorf("message %q should state the alloc growth", regs[0].String())
	}

	// Disabling alloc gating (MaxAllocGrowth 0) passes the same run.
	if regs := Gate(base, leaky, Limits{MaxDrop: 0.25}); len(regs) != 0 {
		t.Errorf("alloc gating not disabled by zero MaxAllocGrowth: %v", regs)
	}
}

// TestGateZeroAllocBaselineIsStrict pins the strictest case: a benchmark
// whose baseline is allocation-free regresses on ANY allocation, whatever
// the growth limit says.
func TestGateZeroAllocBaselineIsStrict(t *testing.T) {
	base := &Report{Results: []Result{
		{Name: "BenchmarkHot-4", EventsPerSec: 1000,
			Metrics: map[string]float64{"allocs/op": 0, "B/op": 0}},
	}}
	cur := []Result{
		{Name: "BenchmarkHot-4", EventsPerSec: 1000,
			Metrics: map[string]float64{"allocs/op": 1, "B/op": 16}},
	}
	regs := Gate(base, cur, Limits{MaxDrop: 0.25, MaxAllocGrowth: 10})
	if len(regs) != 2 {
		t.Fatalf("allocation on a zero baseline not flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "allocation-free") {
		t.Errorf("message %q should call out the lost zero-alloc property", regs[0].String())
	}
	// A run that stays allocation-free and a baseline/run pair without
	// -benchmem data both pass.
	clean := []Result{{Name: "BenchmarkHot-4", EventsPerSec: 1000,
		Metrics: map[string]float64{"allocs/op": 0, "B/op": 0}}}
	if regs := Gate(base, clean, Limits{MaxDrop: 0.25, MaxAllocGrowth: 10}); len(regs) != 0 {
		t.Errorf("clean zero-alloc run flagged: %v", regs)
	}
	noMem := []Result{{Name: "BenchmarkHot-4", EventsPerSec: 1000}}
	if regs := Gate(base, noMem, Limits{MaxDrop: 0.25, MaxAllocGrowth: 10}); len(regs) != 0 {
		t.Errorf("run without -benchmem data flagged on alloc metrics: %v", regs)
	}
}

// TestParseKeepsBestAllocRun pins the merge rule for -count > 1: allocation
// metrics keep the lowest observed value, like the best-of treatment of
// throughput.
func TestParseKeepsBestAllocRun(t *testing.T) {
	repeated := "BenchmarkX-1 1 200 ns/op 100 B/op 7 allocs/op\n" +
		"BenchmarkX-1 1 100 ns/op 80 B/op 9 allocs/op\n"
	results, err := Parse(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1 merged", len(results))
	}
	if a, ok := results[0].AllocsPerOp(); !ok || a != 7 {
		t.Errorf("allocs/op merge = %v (ok=%v), want best-of 7", a, ok)
	}
	if b, ok := results[0].BytesPerOp(); !ok || b != 80 {
		t.Errorf("B/op merge = %v (ok=%v), want best-of 80", b, ok)
	}
}

func TestReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, baselineReport()); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SHA != "abc123" || len(got.Results) != 3 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if r, ok := got.Lookup("BenchmarkReplayWindowed/lag=2-4"); !ok || r.EventsPerSec != 50000 {
		t.Errorf("Lookup after round trip wrong: %+v ok=%v", r, ok)
	}
}
