package benchgate

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: sensorcq
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkReplayWindowed/lag=0-4         	       5	  10002796 ns/op	     39995 events/sec	         4.000 gomaxprocs
BenchmarkReplayWindowed/lag=2-4         	       5	   7903138 ns/op	     50620 events/sec	         4.000 gomaxprocs
BenchmarkEventMatchScaling/indexed/subs=1000-4 	16504officially bogus line
BenchmarkEventMatchScaling/indexed/subs=1000-4 	 1000000	        70.5 ns/op	         3.000 matches/op
PASS
ok  	sensorcq	0.124s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	lag0 := results[0]
	if lag0.Name != "BenchmarkReplayWindowed/lag=0-4" || lag0.Iterations != 5 {
		t.Errorf("unexpected first result %+v", lag0)
	}
	if lag0.NsPerOp != 10002796 || lag0.EventsPerSec != 39995 {
		t.Errorf("lag0 metrics wrong: %+v", lag0)
	}
	if lag0.Metrics["gomaxprocs"] != 4 {
		t.Errorf("gomaxprocs not captured: %+v", lag0.Metrics)
	}
	idx := results[2]
	if idx.EventsPerSec != 0 || idx.NsPerOp != 70.5 || idx.Metrics["matches/op"] != 3 {
		t.Errorf("indexed result wrong: %+v", idx)
	}
}

func TestParseMergesRepeatedRuns(t *testing.T) {
	repeated := "BenchmarkX-1 1 200 ns/op 1000 events/sec\nBenchmarkX-1 1 100 ns/op 1500 events/sec\n"
	results, err := Parse(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1 merged", len(results))
	}
	if results[0].NsPerOp != 100 || results[0].EventsPerSec != 1500 {
		t.Errorf("best-of merge wrong: %+v", results[0])
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok  \tsensorcq\t0.1s\n")); err == nil {
		t.Error("input with no benchmark lines should be an error")
	}
}

func baselineReport() *Report {
	return &Report{
		SHA: "abc123",
		Results: []Result{
			{Name: "BenchmarkReplayWindowed/lag=0-4", NsPerOp: 1e7, EventsPerSec: 40000},
			{Name: "BenchmarkReplayWindowed/lag=2-4", NsPerOp: 8e6, EventsPerSec: 50000},
			{Name: "BenchmarkEventMatchScaling/indexed/subs=1000-4", NsPerOp: 70},
		},
	}
}

// TestGateFailsOnInjectedSlowdown is the gate's own regression test: a run
// whose throughput collapsed beyond the threshold must be flagged, one
// within the threshold must pass.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	base := baselineReport()
	slow := []Result{
		{Name: "BenchmarkReplayWindowed/lag=0-4", EventsPerSec: 20000}, // -50%: regression
		{Name: "BenchmarkReplayWindowed/lag=2-4", EventsPerSec: 45000}, // -10%: fine
		{Name: "BenchmarkEventMatchScaling/indexed/subs=1000-4", NsPerOp: 500},
	}
	regs := Gate(base, slow, 0.25)
	if len(regs) != 1 {
		t.Fatalf("Gate flagged %d regressions, want exactly the injected one: %v", len(regs), regs)
	}
	if regs[0].Name != "BenchmarkReplayWindowed/lag=0-4" || regs[0].Drop < 0.49 {
		t.Errorf("unexpected regression %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "-50.0%") {
		t.Errorf("regression message %q should state the drop", regs[0].String())
	}
}

func TestGatePassesHealthyRun(t *testing.T) {
	base := baselineReport()
	healthy := []Result{
		{Name: "BenchmarkReplayWindowed/lag=0-4", EventsPerSec: 41000},
		{Name: "BenchmarkReplayWindowed/lag=2-4", EventsPerSec: 60000},
		// ns/op-only benchmarks never gate, whatever they report.
		{Name: "BenchmarkEventMatchScaling/indexed/subs=1000-4", NsPerOp: 9999},
		// New benchmarks absent from the baseline pass freely.
		{Name: "BenchmarkBrandNew-4", EventsPerSec: 1},
	}
	if regs := Gate(base, healthy, 0.25); len(regs) != 0 {
		t.Errorf("healthy run flagged: %v", regs)
	}
}

func TestGateFlagsMissingBenchmark(t *testing.T) {
	base := baselineReport()
	partial := []Result{
		{Name: "BenchmarkReplayWindowed/lag=0-4", EventsPerSec: 40000},
	}
	regs := Gate(base, partial, 0.25)
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("missing gated benchmark not flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Errorf("message %q should mention the benchmark is missing", regs[0].String())
	}
}

func TestReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, baselineReport()); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SHA != "abc123" || len(got.Results) != 3 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if r, ok := got.Lookup("BenchmarkReplayWindowed/lag=2-4"); !ok || r.EventsPerSec != 50000 {
		t.Errorf("Lookup after round trip wrong: %+v ok=%v", r, ok)
	}
}
