// Package benchgate parses `go test -bench` output into a machine-readable
// report and gates benchmark regressions against a committed baseline. The
// CI pipeline runs the replay and event-matching benchmarks with -benchmem,
// emits the report as a BENCH_<sha>.json artifact, and fails the build when
// a benchmark regresses against the baseline.
//
// Three comparisons gate:
//
//   - events/sec may not drop by more than Limits.MaxDrop below the
//     baseline (wall-clock throughput of the replay benchmarks);
//   - allocs/op and B/op may not grow by more than Limits.MaxAllocGrowth
//     above the baseline (allocation discipline of the hot path — unlike
//     ns/op these are deterministic enough to gate across runners);
//   - every baseline benchmark must be present in the current run, unless
//     its removal was declared intentional via Limits.AllowMissing — a
//     silently vanished benchmark would otherwise un-gate itself.
//
// ns/op and the remaining custom metrics are recorded in the report for
// trend analysis but do not fail the build — absolute per-op times vary too
// much across runner generations to gate on.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// -N GOMAXPROCS suffix (e.g. "BenchmarkReplayWindowed/lag=2-4"); the
	// baseline is keyed by it.
	Name string `json:"name"`
	// Iterations is the b.N the line reported.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op column (0 when absent).
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// EventsPerSec is the custom events/sec metric (0 when the benchmark
	// does not report one). It is the only gated metric.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Metrics holds every other reported unit (matches/op, gomaxprocs,
	// sub-load/..., MB/s, allocs/op, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document emitted per CI run and committed as the
// baseline.
type Report struct {
	// SHA is the commit the benchmarks ran at.
	SHA string `json:"sha,omitempty"`
	// Note is free-form provenance (runner type, how it was generated).
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// Lookup returns the named result, if present.
func (r *Report) Lookup(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return Result{}, false
}

// AllocsPerOp returns the allocs/op measurement (from -benchmem) and whether
// the benchmark reported one. Presence matters: zero allocations is a valid
// — and for the hot-path benchmarks, the desired — measurement.
func (r Result) AllocsPerOp() (float64, bool) {
	v, ok := r.Metrics["allocs/op"]
	return v, ok
}

// BytesPerOp returns the B/op measurement (from -benchmem) and whether the
// benchmark reported one.
func (r Result) BytesPerOp() (float64, bool) {
	v, ok := r.Metrics["B/op"]
	return v, ok
}

// Parse reads `go test -bench` output and extracts every benchmark line.
// Lines that are not benchmark results (headers, PASS/ok, test logs) are
// ignored. Multiple lines with the same name (e.g. -count > 1) are merged
// by keeping the higher events/sec and lower ns/op — the standard
// best-of-N treatment for noisy runs.
func Parse(r io.Reader) ([]Result, error) {
	byName := map[string]*Result{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := byName[res.Name]
		if !seen {
			cp := res
			byName[res.Name] = &cp
			order = append(order, res.Name)
			continue
		}
		if res.NsPerOp > 0 && (prev.NsPerOp == 0 || res.NsPerOp < prev.NsPerOp) {
			prev.NsPerOp = res.NsPerOp
		}
		if res.EventsPerSec > prev.EventsPerSec {
			prev.EventsPerSec = res.EventsPerSec
		}
		for k, v := range res.Metrics {
			if prev.Metrics == nil {
				prev.Metrics = map[string]float64{}
			}
			// Allocation metrics take the best (lowest) run, matching the
			// best-of treatment of the gated throughput; anything else keeps
			// the latest value.
			if old, seen := prev.Metrics[k]; seen && (k == "allocs/op" || k == "B/op") && old < v {
				continue
			}
			prev.Metrics[k] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark lines found in input")
	}
	return out, nil
}

// parseLine parses one "BenchmarkName-4  10  123 ns/op  456 unit" line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "events/sec":
			res.EventsPerSec = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}

// Regression describes one gated comparison that failed against the
// baseline.
type Regression struct {
	Name string
	// Metric names the gated measurement: "events/sec", "allocs/op" or
	// "B/op". Empty for Missing regressions (the whole benchmark vanished).
	Metric   string
	Baseline float64
	Current  float64
	// Delta is the fractional regression: the throughput drop for
	// events/sec (0.31 for -31%), the growth for the allocation metrics
	// (1.0 for a doubling).
	Delta float64
	// Missing marks a baseline benchmark absent from the current run.
	Missing bool
}

// String implements fmt.Stringer.
func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: present in baseline but missing from this run — "+
			"renamed or removed benchmarks need a baseline update or an explicit -allow-missing entry", r.Name)
	}
	switch r.Metric {
	case "events/sec":
		return fmt.Sprintf("%s: events/sec %.0f -> %.0f (-%.1f%%)",
			r.Name, r.Baseline, r.Current, r.Delta*100)
	default:
		if r.Baseline == 0 {
			return fmt.Sprintf("%s: %s 0 -> %.0f (was allocation-free)", r.Name, r.Metric, r.Current)
		}
		return fmt.Sprintf("%s: %s %.0f -> %.0f (+%.1f%%)",
			r.Name, r.Metric, r.Baseline, r.Current, r.Delta*100)
	}
}

// Limits parameterises Gate.
type Limits struct {
	// MaxDrop is the maximum tolerated fractional events/sec drop below
	// the baseline (e.g. 0.25).
	MaxDrop float64
	// MaxAllocGrowth is the maximum tolerated fractional allocs/op and
	// B/op growth above the baseline (e.g. 0.5 for +50%). Zero or negative
	// disables allocation gating.
	MaxAllocGrowth float64
	// AllowMissing lists baseline benchmarks whose absence from the
	// current run is intentional (renamed or removed on purpose). Any
	// other baseline benchmark missing from the run is a failure — gated
	// or not, a benchmark that silently vanishes un-gates itself.
	AllowMissing map[string]bool
}

// Gate compares the current results against the baseline under the given
// limits. Every baseline benchmark must be present in the current run unless
// allowlisted; present ones must hold their events/sec within MaxDrop and
// their allocs/op and B/op within MaxAllocGrowth. Benchmarks only in the
// current run pass freely (they will gate once the baseline is refreshed to
// include them).
func Gate(baseline *Report, current []Result, lim Limits) []Regression {
	curByName := map[string]Result{}
	for _, res := range current {
		curByName[res.Name] = res
	}
	var regressions []Regression
	names := make([]string, 0, len(baseline.Results))
	for _, res := range baseline.Results {
		names = append(names, res.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, _ := baseline.Lookup(name)
		cur, ok := curByName[name]
		if !ok {
			if !lim.AllowMissing[name] {
				regressions = append(regressions, Regression{Name: name, Missing: true})
			}
			continue
		}
		if base.EventsPerSec > 0 {
			drop := 1 - cur.EventsPerSec/base.EventsPerSec
			if drop > lim.MaxDrop {
				regressions = append(regressions, Regression{
					Name: name, Metric: "events/sec",
					Baseline: base.EventsPerSec, Current: cur.EventsPerSec, Delta: drop,
				})
			}
		}
		if lim.MaxAllocGrowth > 0 {
			regressions = append(regressions, gateAllocMetric(name, "allocs/op", base, cur, lim.MaxAllocGrowth)...)
			regressions = append(regressions, gateAllocMetric(name, "B/op", base, cur, lim.MaxAllocGrowth)...)
		}
	}
	return regressions
}

// gateAllocMetric gates one -benchmem metric. Both sides must have reported
// it (a baseline predating -benchmem, or a run without it, cannot compare).
// A zero baseline is the strictest gate: the benchmark was allocation-free,
// so any allocation at all is a regression.
func gateAllocMetric(name, metric string, base, cur Result, maxGrowth float64) []Regression {
	bv, bok := base.Metrics[metric]
	cv, cok := cur.Metrics[metric]
	if !bok || !cok {
		return nil
	}
	if bv == 0 {
		if cv > 0 {
			return []Regression{{Name: name, Metric: metric, Baseline: bv, Current: cv, Delta: 0}}
		}
		return nil
	}
	growth := cv/bv - 1
	if growth > maxGrowth {
		return []Regression{{Name: name, Metric: metric, Baseline: bv, Current: cv, Delta: growth}}
	}
	return nil
}

// Encode writes the report as indented JSON.
func Encode(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Decode reads a report written by Encode.
func Decode(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchgate: decoding report: %w", err)
	}
	return &rep, nil
}
