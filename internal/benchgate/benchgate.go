// Package benchgate parses `go test -bench` output into a machine-readable
// report and gates benchmark regressions against a committed baseline. The
// CI pipeline runs the replay and event-matching benchmarks, emits the
// report as a BENCH_<sha>.json artifact, and fails the build when a
// benchmark's events/sec throughput drops by more than the configured
// fraction below the baseline.
//
// Only the events/sec metric gates (wall-clock throughput of the replay
// benchmarks); ns/op and the other custom metrics are recorded in the
// report for trend analysis but do not fail the build — absolute per-op
// times vary too much across runner generations to gate on, while a
// same-machine throughput collapse is exactly what the gate exists to
// catch.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// -N GOMAXPROCS suffix (e.g. "BenchmarkReplayWindowed/lag=2-4"); the
	// baseline is keyed by it.
	Name string `json:"name"`
	// Iterations is the b.N the line reported.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op column (0 when absent).
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// EventsPerSec is the custom events/sec metric (0 when the benchmark
	// does not report one). It is the only gated metric.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Metrics holds every other reported unit (matches/op, gomaxprocs,
	// sub-load/..., MB/s, allocs/op, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document emitted per CI run and committed as the
// baseline.
type Report struct {
	// SHA is the commit the benchmarks ran at.
	SHA string `json:"sha,omitempty"`
	// Note is free-form provenance (runner type, how it was generated).
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// Lookup returns the named result, if present.
func (r *Report) Lookup(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return Result{}, false
}

// Parse reads `go test -bench` output and extracts every benchmark line.
// Lines that are not benchmark results (headers, PASS/ok, test logs) are
// ignored. Multiple lines with the same name (e.g. -count > 1) are merged
// by keeping the higher events/sec and lower ns/op — the standard
// best-of-N treatment for noisy runs.
func Parse(r io.Reader) ([]Result, error) {
	byName := map[string]*Result{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := byName[res.Name]
		if !seen {
			cp := res
			byName[res.Name] = &cp
			order = append(order, res.Name)
			continue
		}
		if res.NsPerOp > 0 && (prev.NsPerOp == 0 || res.NsPerOp < prev.NsPerOp) {
			prev.NsPerOp = res.NsPerOp
		}
		if res.EventsPerSec > prev.EventsPerSec {
			prev.EventsPerSec = res.EventsPerSec
		}
		for k, v := range res.Metrics {
			if prev.Metrics == nil {
				prev.Metrics = map[string]float64{}
			}
			prev.Metrics[k] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark lines found in input")
	}
	return out, nil
}

// parseLine parses one "BenchmarkName-4  10  123 ns/op  456 unit" line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "events/sec":
			res.EventsPerSec = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}

// Regression describes one gated metric that fell below the baseline.
type Regression struct {
	Name     string
	Baseline float64
	Current  float64
	Drop     float64 // fractional drop, e.g. 0.31 for -31%
	Missing  bool    // the benchmark vanished from the current run
}

// String implements fmt.Stringer.
func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: present in baseline (%.0f events/sec) but missing from this run — "+
			"renamed or removed benchmarks need a baseline update", r.Name, r.Baseline)
	}
	return fmt.Sprintf("%s: events/sec %.0f -> %.0f (-%.1f%%)",
		r.Name, r.Baseline, r.Current, r.Drop*100)
}

// Gate compares the current results against the baseline: every baseline
// entry with an events/sec measurement must be present in the current run
// and within maxDrop (a fraction, e.g. 0.25) of the baseline throughput.
// Benchmarks only in the current run pass freely (they will gate once the
// baseline is refreshed to include them).
func Gate(baseline *Report, current []Result, maxDrop float64) []Regression {
	curByName := map[string]Result{}
	for _, res := range current {
		curByName[res.Name] = res
	}
	var regressions []Regression
	names := make([]string, 0, len(baseline.Results))
	for _, res := range baseline.Results {
		names = append(names, res.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, _ := baseline.Lookup(name)
		if base.EventsPerSec <= 0 {
			continue // not a gated benchmark (no throughput metric)
		}
		cur, ok := curByName[name]
		if !ok {
			regressions = append(regressions, Regression{Name: name, Baseline: base.EventsPerSec, Missing: true})
			continue
		}
		drop := 1 - cur.EventsPerSec/base.EventsPerSec
		if drop > maxDrop {
			regressions = append(regressions, Regression{
				Name: name, Baseline: base.EventsPerSec, Current: cur.EventsPerSec, Drop: drop,
			})
		}
	}
	return regressions
}

// Encode writes the report as indented JSON.
func Encode(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Decode reads a report written by Encode.
func Decode(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchgate: decoding report: %w", err)
	}
	return &rep, nil
}
