// Package workload generates user subscriptions the way the paper's
// evaluation does (Section VI-A): ranges over the five attribute types
// centred around the median values of the corresponding streams, with an
// offset drawn from a Pareto distribution with skew factor 1, targeting all
// sensor groups ("locations") with the same number of subscriptions, and
// with the number of attributes per subscription varied per experiment (3-5
// in the small-scale setting, 5 in the others).
package workload

import (
	"fmt"

	"sensorcq/internal/dataset"
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/stats"
	"sensorcq/internal/topology"
)

// Config parameterises subscription generation.
type Config struct {
	// Count is the number of subscriptions to generate.
	Count int
	// MinAttrs and MaxAttrs bound the number of attributes per
	// subscription (chosen uniformly in [MinAttrs, MaxAttrs]).
	MinAttrs int
	MaxAttrs int
	// DeltaT is the temporal correlation distance of every subscription
	// (the paper keeps it constant across the application); it defaults to
	// the trace's round interval so that readings from the same measurement
	// round correlate.
	DeltaT model.Timestamp
	// DeltaL is the spatial correlation distance; defaults to no
	// constraint (the targeted group region already bounds locality).
	DeltaL float64
	// ParetoScale and ParetoShape parameterise the half-width offset
	// distribution, expressed as a fraction of the attribute's spread.
	// Defaults: scale 0.3, shape 1 (the paper's skew factor).
	ParetoScale float64
	ParetoShape float64
	// OffsetCap caps the half-width at this multiple of the attribute's
	// spread (default 1.5) so a heavy-tail draw cannot request everything.
	OffsetCap float64
	// PopularFraction is the fraction of subscriptions whose ranges are
	// centred exactly on the stream median ("popular" interests, heavily
	// overlapping and frequently nested inside each other); the remainder
	// are "niche" subscriptions whose centres are displaced from the median
	// by a Pareto-distributed offset and therefore match rarely. Default
	// 0.7.
	PopularFraction float64
	// Seed makes the workload reproducible.
	Seed int64
	// IDPrefix prefixes generated subscription IDs (default "q").
	IDPrefix string
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Count <= 0 {
		return fmt.Errorf("workload: Count must be positive, got %d", c.Count)
	}
	if c.MinAttrs <= 0 || c.MaxAttrs < c.MinAttrs {
		return fmt.Errorf("workload: invalid attribute bounds [%d, %d]", c.MinAttrs, c.MaxAttrs)
	}
	return nil
}

// Placed is a generated subscription together with the processing node its
// user registers it at.
type Placed struct {
	Sub  *model.Subscription
	Node topology.NodeID
	// Group is the sensor group (base station) the subscription targets.
	Group int
}

// Stream generates subscriptions one at a time, in the exact order and with
// the exact contents Generate would produce for the same inputs, without
// materialising the whole slice. It only needs the trace's summary statistics
// (dataset.Stats), so it composes with dataset.Streamer for runs that never
// hold a full trace in memory.
//
// Usage follows the scanner idiom:
//
//	for s.Next() {
//		use(s.Placed())
//	}
//	if err := s.Err(); err != nil { ... }
type Stream struct {
	dep          *topology.Deployment
	st           dataset.Stats
	rng          *stats.RNG
	attrUniverse []model.AttributeType
	userNodes    []topology.NodeID
	filters      []model.AttributeFilter

	count    int
	minAttrs int
	maxAttrs int
	deltaT   model.Timestamp
	deltaL   float64
	scale    float64
	shape    float64
	cap      float64
	popular  float64
	prefix   string

	i   int
	cur Placed
	err error
}

// NewStream prepares subscription generation over the deployment, using the
// given trace statistics to centre and size the value ranges. roundInterval
// is the trace's sampling period, used as the default temporal correlation
// distance δt when cfg.DeltaT is unset.
func NewStream(dep *topology.Deployment, st dataset.Stats, roundInterval model.Timestamp, cfg Config) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(dep.GroupRegions) == 0 {
		return nil, fmt.Errorf("workload: deployment has no groups")
	}
	deltaT := cfg.DeltaT
	if deltaT <= 0 {
		deltaT = roundInterval
	}
	deltaL := cfg.DeltaL
	if deltaL <= 0 {
		deltaL = model.NoSpatialConstraint
	}
	scale := cfg.ParetoScale
	if scale <= 0 {
		scale = 0.3
	}
	shape := cfg.ParetoShape
	if shape <= 0 {
		shape = 1
	}
	cap := cfg.OffsetCap
	if cap <= 0 {
		cap = 1.5
	}
	popular := cfg.PopularFraction
	if popular <= 0 {
		popular = 0.7
	}
	if popular > 1 {
		popular = 1
	}
	prefix := cfg.IDPrefix
	if prefix == "" {
		prefix = "q"
	}

	// The attribute universe is whatever the deployment actually hosts, in
	// stable order.
	attrUniverse := attributeUniverse(dep)
	if len(attrUniverse) == 0 {
		return nil, fmt.Errorf("workload: deployment has no sensors")
	}
	maxAttrs := cfg.MaxAttrs
	if maxAttrs > len(attrUniverse) {
		maxAttrs = len(attrUniverse)
	}
	minAttrs := cfg.MinAttrs
	if minAttrs > maxAttrs {
		minAttrs = maxAttrs
	}

	rng := stats.NewRNG(cfg.Seed)
	userNodes := dep.UserNodes
	if len(userNodes) == 0 {
		userNodes = dep.RelayNodes
	}
	if len(userNodes) == 0 {
		return nil, fmt.Errorf("workload: deployment has no nodes to host users")
	}

	return &Stream{
		dep:          dep,
		st:           st,
		rng:          rng,
		attrUniverse: attrUniverse,
		userNodes:    userNodes,
		count:        cfg.Count,
		minAttrs:     minAttrs,
		maxAttrs:     maxAttrs,
		deltaT:       deltaT,
		deltaL:       deltaL,
		scale:        scale,
		shape:        shape,
		cap:          cap,
		popular:      popular,
		prefix:       prefix,
	}, nil
}

// Next generates the next subscription. It returns false once Count
// subscriptions have been produced or generation failed; check Err after the
// loop to distinguish the two.
func (s *Stream) Next() bool {
	if s.err != nil || s.i >= s.count {
		return false
	}
	i := s.i
	s.i++
	group := i % len(s.dep.GroupRegions)
	nAttrs := s.minAttrs
	if s.maxAttrs > s.minAttrs {
		nAttrs += s.rng.Intn(s.maxAttrs - s.minAttrs + 1)
	}
	chosen := s.rng.Choose(len(s.attrUniverse), nAttrs)
	s.filters = s.filters[:0]
	// Following Section VI-A, ranges are centred around the stream
	// medians with offsets drawn from a Pareto distribution with skew
	// factor 1. The skew concentrates most subscriptions ("popular"
	// interests) right at the median, where they overlap heavily and
	// are frequently nested inside each other — the result-set overlap
	// the paper sets out to eliminate — while the heavy tail places the
	// remaining ("niche") subscriptions over rarely occurring values,
	// keeping the workload medium selective overall.
	isPopular := s.rng.Float64() < s.popular
	for _, idx := range chosen {
		attr := s.attrUniverse[idx]
		median := s.st.Medians[attr]
		spread := s.st.Spreads[attr]
		if spread <= 0 {
			spread = 1
		}
		center := median
		if !isPopular {
			offset := s.rng.ParetoCapped(s.scale*spread, s.shape, 3*spread)
			if s.rng.Bool(0.5) {
				offset = -offset
			}
			center += offset
		}
		halfWidth := s.rng.ParetoCapped(s.scale*spread, s.shape, s.cap*spread)
		s.filters = append(s.filters, model.AttributeFilter{
			Attr:  attr,
			Range: geom.NewInterval(center-halfWidth, center+halfWidth),
		})
	}
	id := model.SubscriptionID(fmt.Sprintf("%s%05d", s.prefix, i+1))
	sub, err := model.NewAbstractSubscription(id, s.filters, s.dep.GroupRegions[group], s.deltaT, s.deltaL)
	if err != nil {
		s.err = fmt.Errorf("workload: building %s: %w", id, err)
		return false
	}
	node := s.userNodes[s.rng.Intn(len(s.userNodes))]
	s.cur = Placed{Sub: sub, Node: node, Group: group}
	return true
}

// Placed returns the subscription generated by the last successful Next call.
func (s *Stream) Placed() Placed { return s.cur }

// Err returns the first generation error, if any.
func (s *Stream) Err() error { return s.err }

// Generate builds Count subscriptions over the deployment, using the trace's
// per-attribute medians and spreads to centre and size the value ranges. It
// is the materialised form of NewStream.
//
// Subscription i targets group i mod G, which spreads the load evenly over
// all locations as in the paper. The subscriber node is drawn uniformly from
// the deployment's user nodes.
func Generate(dep *topology.Deployment, trace *dataset.Trace, cfg Config) ([]Placed, error) {
	s, err := NewStream(dep, trace.Stats, trace.RoundInterval, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]Placed, 0, cfg.Count)
	for s.Next() {
		out = append(out, s.Placed())
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// attributeUniverse returns the attribute types present in the deployment in
// stable (sorted) order.
func attributeUniverse(dep *topology.Deployment) []model.AttributeType {
	set := map[model.AttributeType]bool{}
	for _, s := range dep.Sensors {
		set[s.Attr] = true
	}
	var out []model.AttributeType
	for _, a := range model.DefaultAttributes() {
		if set[a] {
			out = append(out, a)
			delete(set, a)
		}
	}
	// Any non-default attribute types follow in lexical order.
	var rest []model.AttributeType
	for a := range set {
		rest = append(rest, a)
	}
	for i := 0; i < len(rest); i++ {
		for j := i + 1; j < len(rest); j++ {
			if rest[j] < rest[i] {
				rest[i], rest[j] = rest[j], rest[i]
			}
		}
	}
	return append(out, rest...)
}
