package workload

import (
	"testing"

	"sensorcq/internal/dataset"
	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

func fixture(t *testing.T) (*topology.Deployment, *dataset.Trace) {
	t.Helper()
	dep, err := topology.GenerateDeployment(topology.DeploymentConfig{
		TotalNodes:  30,
		SensorNodes: 20,
		Groups:      4,
		Attributes:  model.DefaultAttributes(),
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := dataset.Generate(dep, dataset.Config{Rounds: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return dep, trace
}

func TestGenerateWorkloadShape(t *testing.T) {
	dep, trace := fixture(t)
	placed, err := Generate(dep, trace, Config{Count: 40, MinAttrs: 3, MaxAttrs: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 40 {
		t.Fatalf("got %d subscriptions", len(placed))
	}
	groupCounts := make([]int, len(dep.GroupRegions))
	userNodeSet := map[topology.NodeID]bool{}
	for _, n := range dep.UserNodes {
		userNodeSet[n] = true
	}
	seenIDs := map[model.SubscriptionID]bool{}
	for _, p := range placed {
		if err := p.Sub.Validate(); err != nil {
			t.Fatalf("invalid subscription %s: %v", p.Sub.ID, err)
		}
		if seenIDs[p.Sub.ID] {
			t.Fatalf("duplicate subscription ID %s", p.Sub.ID)
		}
		seenIDs[p.Sub.ID] = true
		if n := p.Sub.NumFilters(); n < 3 || n > 5 {
			t.Errorf("subscription %s has %d attributes, want 3-5", p.Sub.ID, n)
		}
		if p.Sub.Kind != model.KindAbstract {
			t.Errorf("subscriptions should be abstract")
		}
		if p.Sub.DeltaT != trace.RoundInterval {
			t.Errorf("DeltaT = %d, want round interval %d", p.Sub.DeltaT, trace.RoundInterval)
		}
		if !userNodeSet[p.Node] {
			t.Errorf("subscription %s placed on non-user node %d", p.Sub.ID, p.Node)
		}
		if p.Group < 0 || p.Group >= len(dep.GroupRegions) {
			t.Fatalf("bad group %d", p.Group)
		}
		if !dep.GroupRegions[p.Group].Equal(p.Sub.Region) {
			t.Errorf("subscription %s region does not match its group", p.Sub.ID)
		}
		groupCounts[p.Group]++
	}
	// Even targeting: 40 subscriptions over 4 groups.
	for g, c := range groupCounts {
		if c != 10 {
			t.Errorf("group %d targeted by %d subscriptions, want 10", g, c)
		}
	}
}

func TestGenerateWorkloadRangesCentredOnMedians(t *testing.T) {
	dep, trace := fixture(t)
	placed, err := Generate(dep, trace, Config{Count: 200, MinAttrs: 5, MaxAttrs: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Most ranges should contain the attribute median (centres are jittered
	// by only a quarter of the spread).
	contains, total := 0, 0
	for _, p := range placed {
		for attr, f := range p.Sub.AttrFilters {
			total++
			if f.Range.Contains(trace.Medians[attr]) {
				contains++
			}
			if f.Range.Width() <= 0 {
				t.Errorf("degenerate range for %s", attr)
			}
			// The cap bounds the half width at 1.5 spreads.
			if f.Range.Width() > 2*1.5*trace.Spreads[attr]+1e-9 {
				t.Errorf("range for %s wider than the cap: %g", attr, f.Range.Width())
			}
		}
	}
	if float64(contains)/float64(total) < 0.6 {
		t.Errorf("only %d/%d ranges contain the median", contains, total)
	}
}

func TestGenerateWorkloadDeterministic(t *testing.T) {
	dep, trace := fixture(t)
	a, err := Generate(dep, trace, Config{Count: 30, MinAttrs: 3, MaxAttrs: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(dep, trace, Config{Count: 30, MinAttrs: 3, MaxAttrs: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Sub.String() != b[i].Sub.String() {
			t.Fatalf("subscription %d differs between identical seeds", i)
		}
	}
}

func TestGenerateWorkloadValidation(t *testing.T) {
	dep, trace := fixture(t)
	if _, err := Generate(dep, trace, Config{Count: 0, MinAttrs: 1, MaxAttrs: 1}); err == nil {
		t.Error("zero count should fail")
	}
	if _, err := Generate(dep, trace, Config{Count: 5, MinAttrs: 0, MaxAttrs: 2}); err == nil {
		t.Error("non-positive MinAttrs should fail")
	}
	if _, err := Generate(dep, trace, Config{Count: 5, MinAttrs: 4, MaxAttrs: 2}); err == nil {
		t.Error("MaxAttrs < MinAttrs should fail")
	}
	// Requesting more attributes than exist degrades gracefully to the
	// available universe.
	placed, err := Generate(dep, trace, Config{Count: 3, MinAttrs: 9, MaxAttrs: 9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range placed {
		if p.Sub.NumFilters() != 5 {
			t.Errorf("subscription should use all 5 available attributes, got %d", p.Sub.NumFilters())
		}
	}
}

// TestStreamMatchesGenerate pins the streaming contract: NewStream must
// yield exactly the subscriptions Generate materialises, in order.
func TestStreamMatchesGenerate(t *testing.T) {
	dep, trace := fixture(t)
	cfg := Config{Count: 35, MinAttrs: 3, MaxAttrs: 5, Seed: 9}
	placed, err := Generate(dep, trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(dep, trace.Stats, trace.RoundInterval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for s.Next() {
		if n >= len(placed) {
			t.Fatalf("stream yielded more than %d subscriptions", len(placed))
		}
		got, want := s.Placed(), placed[n]
		if got.Node != want.Node || got.Group != want.Group {
			t.Fatalf("subscription %d placed at (%d, %d), want (%d, %d)",
				n, got.Node, got.Group, want.Node, want.Group)
		}
		if got.Sub.ID != want.Sub.ID || got.Sub.String() != want.Sub.String() {
			t.Fatalf("subscription %d differs:\n  stream:   %s %s\n  generate: %s %s",
				n, got.Sub.ID, got.Sub.String(), want.Sub.ID, want.Sub.String())
		}
		if got.Sub.DeltaT != want.Sub.DeltaT || got.Sub.DeltaL != want.Sub.DeltaL {
			t.Fatalf("subscription %d correlation distances differ", n)
		}
		n++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(placed) {
		t.Fatalf("stream yielded %d subscriptions, want %d", n, len(placed))
	}
}
