// Package oracle computes the ground-truth result sets a lossless, fully
// informed matcher would deliver to each subscriber, given the complete
// event trace. It is used to measure the end-user event recall of the
// Filter-Split-Forward approach (Figure 12): the deterministic approaches
// deliver the oracle's result sets by construction, while FSF may miss
// events whose subscription fell into a falsely detected subsumption gap.
//
// The oracle uses exactly the same trigger-based matching semantics as the
// protocol nodes (Algorithm 5): events are inserted in timestamp order into
// one global window; each insertion is the trigger for complex events that
// include it; component events of a detected match are added to the
// subscription's expected result set once.
package oracle

import (
	"sensorcq/internal/model"
	"sensorcq/internal/stores"
)

// Expectation is the ground truth for one workload: the set of simple-event
// sequence numbers each subscription's user should receive.
type Expectation struct {
	// ExpectedSeqs maps each subscription to the set of simple events that
	// belong to at least one complex event delivered by a lossless matcher.
	ExpectedSeqs map[model.SubscriptionID]map[uint64]bool
	// ComplexMatches counts the complex-event notifications per
	// subscription.
	ComplexMatches map[model.SubscriptionID]int64
}

// TotalExpected returns the total number of (subscription, event) pairs the
// oracle expects to be delivered.
func (e *Expectation) TotalExpected() int {
	total := 0
	for _, set := range e.ExpectedSeqs {
		total += len(set)
	}
	return total
}

// Compute runs the lossless matcher over the trace for the given
// subscriptions. Events must be provided in (or close to) timestamp order;
// they are re-sorted defensively.
func Compute(subs []*model.Subscription, events []model.Event) *Expectation {
	ordered := make([]model.Event, len(events))
	copy(ordered, events)
	model.SortEventsByTime(ordered)

	var maxDeltaT model.Timestamp = 1
	byAttr := map[model.AttributeType][]*model.Subscription{}
	for _, s := range subs {
		if s == nil {
			continue
		}
		if s.DeltaT > maxDeltaT {
			maxDeltaT = s.DeltaT
		}
		for _, a := range s.Attributes() {
			byAttr[a] = append(byAttr[a], s)
		}
	}

	exp := &Expectation{
		ExpectedSeqs:   map[model.SubscriptionID]map[uint64]bool{},
		ComplexMatches: map[model.SubscriptionID]int64{},
	}
	window := stores.NewEventWindow(2 * maxDeltaT)
	for i := range ordered {
		ev := ordered[i]
		if !window.Insert(ev) {
			continue
		}
		window.Prune(ev.Time)
		for _, s := range byAttr[ev.Attr] {
			candidates := window.Around(ev.Time, s.DeltaT)
			// Enumerate every complex event the trigger completes, exactly
			// like the protocol nodes do: a single-pick match would
			// under-approximate the ground truth (components that only
			// appear in the non-picked combinations would never be
			// expected, inflating measured recall).
			s.ForEachComplexMatch(candidates, &ev, func(match model.ComplexEvent) bool {
				set := exp.ExpectedSeqs[s.ID]
				if set == nil {
					set = map[uint64]bool{}
					exp.ExpectedSeqs[s.ID] = set
				}
				for _, component := range match {
					set[component.Seq] = true
				}
				exp.ComplexMatches[s.ID]++
				return true
			})
		}
	}
	return exp
}

// Recall compares what a run actually delivered against the expectation and
// returns the overall event recall in [0, 1]: the fraction of expected
// (subscription, event) pairs that were delivered. Subscriptions with no
// expected events are ignored. When nothing is expected at all the recall is
// defined as 1.
func (e *Expectation) Recall(delivered func(model.SubscriptionID) map[uint64]bool) float64 {
	expected, got := 0, 0
	for subID, want := range e.ExpectedSeqs {
		if len(want) == 0 {
			continue
		}
		have := delivered(subID)
		for seq := range want {
			expected++
			if have[seq] {
				got++
			}
		}
	}
	if expected == 0 {
		return 1
	}
	return float64(got) / float64(expected)
}

// PerSubscriptionRecall returns the recall of each subscription separately
// (subscriptions with no expected events are omitted).
func (e *Expectation) PerSubscriptionRecall(delivered func(model.SubscriptionID) map[uint64]bool) map[model.SubscriptionID]float64 {
	out := map[model.SubscriptionID]float64{}
	for subID, want := range e.ExpectedSeqs {
		if len(want) == 0 {
			continue
		}
		have := delivered(subID)
		got := 0
		for seq := range want {
			if have[seq] {
				got++
			}
		}
		out[subID] = float64(got) / float64(len(want))
	}
	return out
}
