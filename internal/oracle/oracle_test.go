package oracle

import (
	"testing"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
)

func sub(t *testing.T, id string, dt model.Timestamp, ranges map[model.SensorID][2]float64) *model.Subscription {
	t.Helper()
	var filters []model.SensorFilter
	for d, r := range ranges {
		filters = append(filters, model.SensorFilter{Sensor: d, Attr: model.AttributeType("attr_" + d), Range: geom.NewInterval(r[0], r[1])})
	}
	s, err := model.NewIdentifiedSubscription(model.SubscriptionID(id), filters, dt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func event(seq uint64, d model.SensorID, v float64, ts model.Timestamp) model.Event {
	return model.Event{Seq: seq, Sensor: d, Attr: model.AttributeType("attr_" + d), Value: v, Time: ts}
}

func TestOracleBasicMatch(t *testing.T) {
	s := sub(t, "q1", 10, map[model.SensorID][2]float64{"a": {0, 10}, "b": {0, 10}})
	events := []model.Event{
		event(1, "a", 5, 100),
		event(2, "b", 5, 105),
		event(3, "a", 50, 106), // out of range
		event(4, "b", 5, 300),  // correlates with nothing
	}
	exp := Compute([]*model.Subscription{s}, events)
	want := exp.ExpectedSeqs["q1"]
	if !want[1] || !want[2] {
		t.Errorf("expected events 1 and 2, got %v", want)
	}
	if want[3] || want[4] {
		t.Errorf("events 3/4 must not be expected: %v", want)
	}
	if exp.ComplexMatches["q1"] != 1 {
		t.Errorf("complex matches = %d, want 1", exp.ComplexMatches["q1"])
	}
	if exp.TotalExpected() != 2 {
		t.Errorf("total expected = %d, want 2", exp.TotalExpected())
	}
}

func TestOracleHandlesUnorderedInputAndDuplicates(t *testing.T) {
	s := sub(t, "q1", 10, map[model.SensorID][2]float64{"a": {0, 10}, "b": {0, 10}})
	events := []model.Event{
		event(2, "b", 5, 105),
		event(1, "a", 5, 100),
		event(2, "b", 5, 105), // duplicate
	}
	exp := Compute([]*model.Subscription{s}, events)
	if len(exp.ExpectedSeqs["q1"]) != 2 {
		t.Errorf("expected 2 events, got %v", exp.ExpectedSeqs["q1"])
	}
}

func TestOracleRecall(t *testing.T) {
	s1 := sub(t, "q1", 10, map[model.SensorID][2]float64{"a": {0, 10}, "b": {0, 10}})
	s2 := sub(t, "q2", 10, map[model.SensorID][2]float64{"a": {0, 10}})
	events := []model.Event{
		event(1, "a", 5, 100),
		event(2, "b", 5, 105),
	}
	exp := Compute([]*model.Subscription{s1, s2}, events)

	full := func(id model.SubscriptionID) map[uint64]bool {
		return map[uint64]bool{1: true, 2: true}
	}
	if r := exp.Recall(full); r != 1 {
		t.Errorf("full recall = %g, want 1", r)
	}
	// q1 misses event 2; q2 delivered fully.
	partial := func(id model.SubscriptionID) map[uint64]bool {
		if id == "q1" {
			return map[uint64]bool{1: true}
		}
		return map[uint64]bool{1: true}
	}
	r := exp.Recall(partial)
	// Expected pairs: q1 -> {1,2}, q2 -> {1}; delivered 2 of 3.
	if r < 0.66 || r > 0.67 {
		t.Errorf("partial recall = %g, want 2/3", r)
	}
	per := exp.PerSubscriptionRecall(partial)
	if per["q1"] != 0.5 || per["q2"] != 1 {
		t.Errorf("per-subscription recall = %v", per)
	}
	// Nothing delivered at all.
	none := func(model.SubscriptionID) map[uint64]bool { return nil }
	if r := exp.Recall(none); r != 0 {
		t.Errorf("empty recall = %g, want 0", r)
	}
	// No expectations => recall 1 by definition.
	empty := Compute(nil, nil)
	if r := empty.Recall(none); r != 1 {
		t.Errorf("recall with no expectations = %g, want 1", r)
	}
}

func TestOracleRespectsDeltaT(t *testing.T) {
	s := sub(t, "q1", 5, map[model.SensorID][2]float64{"a": {0, 10}, "b": {0, 10}})
	events := []model.Event{
		event(1, "a", 5, 100),
		event(2, "b", 5, 104), // within δt
		event(3, "a", 5, 200),
		event(4, "b", 5, 206), // outside δt of event 3
	}
	exp := Compute([]*model.Subscription{s}, events)
	want := exp.ExpectedSeqs["q1"]
	if !want[1] || !want[2] {
		t.Error("first pair should be expected")
	}
	if want[3] || want[4] {
		t.Error("second pair is not time-correlated and must not be expected")
	}
}
