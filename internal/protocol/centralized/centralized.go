// Package centralized implements the fully centralized baseline of Section
// VI: using global knowledge of the network topology, all subscribers
// forward their subscriptions on the shortest path to the central node (the
// node with the minimum total distance to all other nodes), every sensor
// unconditionally ships every reading to that central node, matching happens
// only there, and matching events are sent back on the shortest path to the
// owner of each matching subscription (one result set per subscription, no
// sharing).
//
// The event traffic of this baseline has a fixed component — every event
// crosses the network to the centre whether or not anyone is interested —
// which is what makes it lose against the distributed approaches on the
// event-load metric even though its subscription load is the lowest.
package centralized

import (
	"strconv"

	"sensorcq/internal/agg"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/stores"
	"sensorcq/internal/topology"
)

// Name is the approach identifier used in reports.
const Name = "centralized"

// NewFactory returns the handler factory for the centralized baseline with
// the default event-window validity factor of 2 (validity = 2 x max δt).
func NewFactory() netsim.HandlerFactory {
	return NewFactoryWithValidity(0)
}

// NewFactoryWithValidity returns the handler factory with an explicit
// event-window validity factor; factor <= 0 keeps the default of 2. Windowed
// replays with lag L need a factor of at least L+2 so that a late-arriving
// trigger still finds every partner within δt stored at the centre (see
// netsim.RequiredValidityFactor).
func NewFactoryWithValidity(factor int) netsim.HandlerFactory {
	if factor <= 0 {
		factor = 2
	}
	return func(node topology.NodeID) netsim.Handler {
		return &Node{self: node, validityFactor: model.Timestamp(factor)}
	}
}

// Node is the per-node handler. Non-central nodes only relay towards the
// centre; the central node holds the subscription table and the event
// window and performs all matching.
type Node struct {
	self           topology.NodeID
	center         topology.NodeID
	toCenter       topology.NodeID // next hop towards the centre; -1 when self is the centre
	validityFactor model.Timestamp // event-window validity = factor x max δt

	// Central-node state (nil elsewhere). The global subscription table is
	// range-indexed (stores.EventIndex): an arriving reading selects exactly
	// the subscriptions it satisfies instead of scanning every registration
	// that shares the attribute, and retractions splice entries out
	// incrementally.
	window    *stores.EventWindow
	entries   map[model.SubscriptionID]*subEntry
	idx       *stores.EventIndex
	maxDeltaT model.Timestamp
	// scratch is the centre's reusable complex-match working storage; the
	// central node's handler runs on one goroutine at a time, like every
	// other handler.
	scratch model.MatchScratch

	// Aggregate-query state, central node only. Readings reach the centre
	// unconditionally, so windowed aggregates are evaluated there from the
	// full reading stream and closed by watermark ticks; finalised results
	// are charged the full downward path like any other result shipment.
	aggs     map[model.SubscriptionID]*aggEntry
	aggOrder []*aggEntry
	lastTick int
}

// aggEntry is one windowed aggregate query registered at the central node.
type aggEntry struct {
	sub       *model.Subscription
	spec      *model.AggregateSpec
	cfg       agg.Config
	firstHop  topology.NodeID
	pathLen   int64
	nextClose int
	maxTick   int
	empty     float64
	windows   map[int]agg.State
	free      []agg.State
}

// state returns the accumulation state for a window, creating (or
// recycling) it on first touch.
func (e *aggEntry) state(g int) agg.State {
	st := e.windows[g]
	if st == nil {
		if k := len(e.free); k > 0 {
			st = e.free[k-1]
			e.free[k-1] = nil
			e.free = e.free[:k-1]
		} else {
			st = e.cfg.New()
		}
		e.windows[g] = st
	}
	return st
}

// subEntry is a subscription registered at the central node together with
// the routing information needed to ship results back to its owner.
type subEntry struct {
	sub        *model.Subscription
	subscriber topology.NodeID
	firstHop   topology.NodeID
	pathLen    int64
	// sentKey is the event-window forwarding key interned for this
	// subscription at registration, so the per-event dedup check never
	// renders a string.
	sentKey uint32
}

// Init implements netsim.Handler: it elects the central node from the global
// topology (the baseline explicitly assumes global knowledge).
func (n *Node) Init(ctx *netsim.Context) {
	n.center = ctx.Graph().Center()
	if n.self == n.center {
		n.toCenter = -1
		n.window = stores.NewEventWindow(1)
		n.entries = map[model.SubscriptionID]*subEntry{}
		n.idx = stores.NewEventIndex()
	} else {
		n.toCenter = ctx.Graph().NextHop(n.self, n.center)
	}
}

// Center returns the elected central node (for tests and diagnostics).
func (n *Node) Center() topology.NodeID { return n.center }

// IndexStats reports the shape and lookup tallies of the central match
// index. Non-central nodes hold no index and report zeros.
func (n *Node) IndexStats() stores.IndexStats {
	if n.idx == nil {
		return stores.IndexStats{}
	}
	return n.idx.Stats()
}

// LocalSensor implements netsim.Handler. The centralized scheme needs no
// advertisements: sensors simply ship every reading to the centre.
func (n *Node) LocalSensor(ctx *netsim.Context, sensor model.Sensor) {}

// HandleAdvertisement implements netsim.Handler (never called in this
// scheme).
func (n *Node) HandleAdvertisement(ctx *netsim.Context, from topology.NodeID, adv model.Advertisement) {
}

// LocalSubscribe implements netsim.Handler: the subscription is stamped with
// its owner's node and forwarded hop-by-hop towards the centre.
func (n *Node) LocalSubscribe(ctx *netsim.Context, sub *model.Subscription) {
	if sub == nil {
		return
	}
	stamped := sub.Clone()
	stamped.SubscriberNode = strconv.Itoa(int(n.self))
	if n.self == n.center {
		n.register(ctx, stamped)
		return
	}
	ctx.SendSubscription(n.toCenter, stamped)
}

// HandleSubscription implements netsim.Handler: relay towards the centre, or
// register when this node is the centre.
func (n *Node) HandleSubscription(ctx *netsim.Context, from topology.NodeID, sub *model.Subscription) {
	if n.self != n.center {
		ctx.SendSubscription(n.toCenter, sub)
		return
	}
	n.register(ctx, sub)
}

// LocalUnsubscribe implements netsim.Handler: the retraction travels the
// same shortest path to the centre the subscription took, where the global
// table entry is dropped.
func (n *Node) LocalUnsubscribe(ctx *netsim.Context, id model.SubscriptionID) {
	if n.self == n.center {
		n.deregister(id)
		return
	}
	ctx.SendUnsubscription(n.toCenter, id)
}

// HandleUnsubscription implements netsim.Handler: relay towards the centre,
// or drop the registration when this node is the centre.
func (n *Node) HandleUnsubscription(ctx *netsim.Context, from topology.NodeID, id model.SubscriptionID) {
	if n.self != n.center {
		ctx.SendUnsubscription(n.toCenter, id)
		return
	}
	n.deregister(id)
}

// deregister removes the subscription from the central table and the range
// index (an incremental splice, not a rebuild); matching and result routing
// stop immediately. Unknown IDs are a no-op.
func (n *Node) deregister(id model.SubscriptionID) {
	if e := n.aggs[id]; e != nil {
		delete(n.aggs, id)
		for i, x := range n.aggOrder {
			if x == e {
				copy(n.aggOrder[i:], n.aggOrder[i+1:])
				n.aggOrder[len(n.aggOrder)-1] = nil
				n.aggOrder = n.aggOrder[:len(n.aggOrder)-1]
				break
			}
		}
		return
	}
	if _, known := n.entries[id]; !known {
		return
	}
	delete(n.entries, id)
	n.idx.Remove(id)
}

func (n *Node) register(ctx *netsim.Context, sub *model.Subscription) {
	subscriber := n.self
	if sub.SubscriberNode != "" {
		if v, err := strconv.Atoi(sub.SubscriberNode); err == nil {
			subscriber = topology.NodeID(v)
		}
	}
	if sub.Aggregate != nil {
		n.registerAggregate(ctx, sub, subscriber)
		return
	}
	entry := &subEntry{sub: sub, subscriber: subscriber, sentKey: n.window.KeyID("s:" + string(sub.ID))}
	if subscriber != n.self {
		path := ctx.Graph().Path(n.self, subscriber)
		if len(path) >= 2 {
			entry.firstHop = path[1]
			entry.pathLen = int64(len(path) - 1)
		}
	}
	n.entries[sub.ID] = entry
	n.idx.Add(sub)
	if sub.DeltaT > n.maxDeltaT {
		n.maxDeltaT = sub.DeltaT
		factor := n.validityFactor
		if factor <= 0 {
			factor = 2
		}
		n.window.Validity = factor * n.maxDeltaT
	}
}

// LocalPublish implements netsim.Handler: a local sensor reading is shipped
// towards the centre (or matched directly when this node is the centre).
func (n *Node) LocalPublish(ctx *netsim.Context, ev model.Event) {
	if n.self == n.center {
		n.matchAtCenter(ctx, ev)
		return
	}
	ctx.SendEvent(n.toCenter, ev)
}

// HandleEvent implements netsim.Handler. Events arriving from the direction
// of the centre are result deliveries whose remaining hops were already
// accounted for by the centre; everything else is an upward reading that
// must continue towards the centre.
func (n *Node) HandleEvent(ctx *netsim.Context, from topology.NodeID, ev model.Event) {
	if n.self == n.center {
		n.matchAtCenter(ctx, ev)
		return
	}
	if from == n.toCenter {
		return
	}
	ctx.SendEvent(n.toCenter, ev)
}

// matchAtCenter runs the matching of Algorithm 5 against the full
// subscription table and ships each subscription's result set back to its
// owner, charging the full path length for every forwarded data unit.
func (n *Node) matchAtCenter(ctx *netsim.Context, ev model.Event) {
	if !n.window.Insert(ev) {
		return
	}
	// Feed the unique arrival into every open aggregate window before the
	// complex-event machinery; the duplicate check above keeps aggregate
	// accumulation exactly-once too.
	if len(n.aggOrder) > 0 {
		n.accumulateAtCenter(ev)
	}
	now := ev.Time
	if latest := n.window.Latest(); latest > now {
		now = latest
	}
	n.window.Prune(now)

	// The range index hands over exactly the subscriptions the reading
	// satisfies; registrations that merely share the attribute are pruned
	// without being visited. Every completed match is enumerated and
	// delivered — not just one pick from the current window — so the
	// per-round result sets and downward traffic are independent of the
	// order readings reached the centre (matching the order-independent
	// forwarding of internal/core, which the pipelined delivery mode's
	// conformance oracle relies on). Each component is still shipped down at
	// most once per subscription.
	n.idx.Candidates(ev, func(sub *model.Subscription) bool {
		entry := n.entries[sub.ID]
		key := entry.sentKey
		window := n.window.Around(ev.Time, sub.DeltaT)
		sub.ForEachComplexMatchScratch(window, &ev, &n.scratch, func(match model.ComplexEvent) bool {
			for _, component := range match {
				if n.window.WasSent(component, key) {
					continue
				}
				if entry.pathLen > 0 {
					ctx.SendEventUnits(entry.firstHop, component, entry.pathLen)
				}
				n.window.MarkSent(component, key)
			}
			ctx.DeliverToUser(sub.ID, match)
			return true
		})
		return true
	})
}

// registerAggregate stores a windowed aggregate query at the central node.
// The query never joins the complex-event index: its results come from the
// window-close path.
func (n *Node) registerAggregate(ctx *netsim.Context, sub *model.Subscription, subscriber topology.NodeID) {
	if _, dup := n.aggs[sub.ID]; dup {
		return
	}
	spec := sub.Aggregate
	e := &aggEntry{
		sub:     sub,
		spec:    spec,
		cfg:     spec.Config(),
		windows: map[int]agg.State{},
	}
	// The registration cascade shares one lineage round network-wide, so the
	// centre derives the same first window as the distributed approaches.
	e.nextClose = spec.WindowOf(ctx.Round() + 1)
	e.maxTick = n.lastTick
	e.empty = e.cfg.New().Result()
	if subscriber != n.self {
		path := ctx.Graph().Path(n.self, subscriber)
		if len(path) >= 2 {
			e.firstHop = path[1]
			e.pathLen = int64(len(path) - 1)
		}
	}
	if n.aggs == nil {
		n.aggs = map[model.SubscriptionID]*aggEntry{}
	}
	n.aggs[sub.ID] = e
	n.aggOrder = append(n.aggOrder, e)
	// Catch up on windows the watermark already finalised (possible when the
	// registration trailed the watermark in a windowed replay).
	n.closeAggWindows(ctx, e)
}

// accumulateAtCenter folds one unique reading arrival into every matching
// aggregate query's open window.
func (n *Node) accumulateAtCenter(ev model.Event) {
	for _, e := range n.aggOrder {
		if !e.sub.MatchesReading(ev) {
			continue
		}
		if g := e.spec.WindowOf(ev.Round); g >= e.nextClose {
			e.state(g).Add(ev.Value)
		}
	}
}

// HandleWatermark implements netsim.WatermarkHandler: the readings of
// rounds ≤ wm have all been dispatched network-wide — in this scheme, have
// all reached the centre — so windows ending at or before wm are complete.
// Ticks can arrive out of order under the concurrent engine; stale ones are
// ignored. Non-central nodes hold no aggregate state.
func (n *Node) HandleWatermark(ctx *netsim.Context, wm int) {
	if n.self != n.center || wm <= n.lastTick {
		return
	}
	n.lastTick = wm
	for _, e := range n.aggOrder {
		if wm > e.maxTick {
			e.maxTick = wm
			n.closeAggWindows(ctx, e)
		}
	}
}

// closeAggWindows finalises every window the watermark has passed, in
// window order: the result is delivered at the centre (stamped with the
// window's end round, like every centralized delivery) and the shipment to
// the subscriber's node is charged the full path length.
func (n *Node) closeAggWindows(ctx *netsim.Context, e *aggEntry) {
	for {
		g := e.nextClose
		start, end := e.spec.WindowBounds(g)
		if end > e.maxTick {
			return
		}
		e.nextClose++
		st := e.windows[g]
		value, count := e.empty, int64(0)
		if st != nil {
			delete(e.windows, g)
			value = st.Result()
			count = st.Count()
		}
		if e.pathLen > 0 {
			ctx.SendPartialAggregate(e.firstHop, &netsim.PartialAggregate{
				SubID:    e.sub.ID,
				Window:   g,
				EndRound: end,
			}, e.pathLen)
		}
		ctx.DeliverAggregate(e.sub.ID, netsim.AggregateResult{
			Window:     g,
			StartRound: start,
			EndRound:   end,
			Value:      value,
			Count:      count,
		})
		if st != nil {
			st.Reset()
			e.free = append(e.free, st)
		}
	}
}

// HandlePartialAggregate implements netsim.AggregateHandler: the only
// partial-aggregate messages in this scheme are finalised results flowing
// down from the centre, whose remaining hops the centre already charged.
func (n *Node) HandlePartialAggregate(ctx *netsim.Context, from topology.NodeID, pa *netsim.PartialAggregate) {
}
