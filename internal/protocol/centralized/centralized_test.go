package centralized

import (
	"testing"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/topology"
)

// Line topology 0-1-2-3-4: the centre is node 2. A sensor sits at node 0,
// the subscriber at node 4.
func lineGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(topology.NodeID(i-1), topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func windSub(t *testing.T, id string, lo, hi float64) *model.Subscription {
	t.Helper()
	s, err := model.NewIdentifiedSubscription(model.SubscriptionID(id),
		[]model.SensorFilter{{Sensor: "d1", Attr: model.WindSpeed, Range: geom.NewInterval(lo, hi)}}, 30)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pairSub(t *testing.T, id string) *model.Subscription {
	t.Helper()
	s, err := model.NewIdentifiedSubscription(model.SubscriptionID(id),
		[]model.SensorFilter{
			{Sensor: "d1", Attr: model.WindSpeed, Range: geom.NewInterval(0, 50)},
			{Sensor: "d2", Attr: model.AmbientTemperature, Range: geom.NewInterval(-10, 10)},
		}, 30)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCentralizedCenterElection(t *testing.T) {
	e := netsim.NewEngine(lineGraph(t, 5), NewFactory())
	n := e.Handler(0).(*Node)
	if n.Center() != 2 {
		t.Errorf("centre = %d, want 2", n.Center())
	}
}

func TestCentralizedSubscriptionLoadIsPathToCenter(t *testing.T) {
	e := netsim.NewEngine(lineGraph(t, 5), NewFactory())
	if err := e.Subscribe(4, windSub(t, "q1", 0, 100)); err != nil {
		t.Fatal(err)
	}
	// node 4 -> 3 -> 2: two hops.
	if got := e.Metrics().SubscriptionLoad(); got != 2 {
		t.Errorf("subscription load = %d, want 2", got)
	}
	// Subscribing at the centre itself costs nothing.
	if err := e.Subscribe(2, windSub(t, "q2", 0, 100)); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().SubscriptionLoad(); got != 2 {
		t.Errorf("subscription load = %d, want 2 (no extra hops)", got)
	}
	// No advertisements exist in this scheme.
	if err := e.AttachSensor(0, model.Sensor{ID: "d1", Attr: model.WindSpeed}); err != nil {
		t.Fatal(err)
	}
	if e.Metrics().AdvertisementLoad() != 0 {
		t.Error("centralized scheme must not send advertisements")
	}
}

func TestCentralizedEventsAlwaysShipToCenter(t *testing.T) {
	e := netsim.NewEngine(lineGraph(t, 5), NewFactory())
	// No subscriptions at all: the event still crosses to the centre (the
	// fixed traffic component the paper discusses).
	ev := model.Event{Seq: 1, Sensor: "d1", Attr: model.WindSpeed, Value: 5, Time: 10}
	if err := e.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().EventLoad(); got != 2 {
		t.Errorf("event load = %d, want 2 (0->1->2)", got)
	}
}

func TestCentralizedMatchingAndResultDelivery(t *testing.T) {
	e := netsim.NewEngine(lineGraph(t, 5), NewFactory())
	if err := e.Subscribe(4, windSub(t, "q1", 0, 50)); err != nil {
		t.Fatal(err)
	}
	subLoad := e.Metrics().SubscriptionLoad()

	// Matching event: 2 hops up (0->2) plus 2 hops down (2->4) = 4 units.
	if err := e.Publish(0, model.Event{Seq: 1, Sensor: "d1", Attr: model.WindSpeed, Value: 10, Time: 10}); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().EventLoad(); got != 4 {
		t.Errorf("event load = %d, want 4", got)
	}
	if got := e.Metrics().ComplexDeliveries("q1"); got != 1 {
		t.Errorf("deliveries = %d, want 1", got)
	}
	// Non-matching event: still 2 hops up, nothing down.
	if err := e.Publish(0, model.Event{Seq: 2, Sensor: "d1", Attr: model.WindSpeed, Value: 500, Time: 11}); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().EventLoad(); got != 6 {
		t.Errorf("event load = %d, want 6", got)
	}
	if e.Metrics().SubscriptionLoad() != subLoad {
		t.Error("event processing must not change subscription load")
	}
}

func TestCentralizedPerSubscriptionResultSets(t *testing.T) {
	// Two identical subscriptions from the same user: the centralized scheme
	// sends the result set once per subscription (full result sets).
	e := netsim.NewEngine(lineGraph(t, 5), NewFactory())
	if err := e.Subscribe(4, windSub(t, "q1", 0, 50)); err != nil {
		t.Fatal(err)
	}
	if err := e.Subscribe(4, windSub(t, "q2", 0, 50)); err != nil {
		t.Fatal(err)
	}
	if err := e.Publish(0, model.Event{Seq: 1, Sensor: "d1", Attr: model.WindSpeed, Value: 10, Time: 10}); err != nil {
		t.Fatal(err)
	}
	// 2 up + 2 down for q1 + 2 down for q2 = 6.
	if got := e.Metrics().EventLoad(); got != 6 {
		t.Errorf("event load = %d, want 6", got)
	}
	if e.Metrics().ComplexDeliveries("q1") != 1 || e.Metrics().ComplexDeliveries("q2") != 1 {
		t.Error("both subscriptions should be delivered")
	}
}

func TestCentralizedMultiAttributeCorrelation(t *testing.T) {
	e := netsim.NewEngine(lineGraph(t, 5), NewFactory())
	if err := e.Subscribe(4, pairSub(t, "q1")); err != nil {
		t.Fatal(err)
	}
	if err := e.Publish(0, model.Event{Seq: 1, Sensor: "d1", Attr: model.WindSpeed, Value: 10, Time: 10}); err != nil {
		t.Fatal(err)
	}
	if e.Metrics().ComplexDeliveries("q1") != 0 {
		t.Fatal("incomplete correlation must not be delivered")
	}
	if err := e.Publish(1, model.Event{Seq: 2, Sensor: "d2", Attr: model.AmbientTemperature, Value: 0, Time: 12}); err != nil {
		t.Fatal(err)
	}
	if e.Metrics().ComplexDeliveries("q1") != 1 {
		t.Error("correlated pair should be delivered")
	}
	seqs := e.Metrics().DeliveredSeqs("q1")
	if !seqs[1] || !seqs[2] {
		t.Errorf("delivered seqs = %v", seqs)
	}
	// Events stop being re-sent once delivered: publishing the wind reading
	// again as a new event only charges the upward path plus the downward
	// path for the new event (the old temperature reading is not re-sent).
	before := e.Metrics().EventLoad()
	if err := e.Publish(0, model.Event{Seq: 3, Sensor: "d1", Attr: model.WindSpeed, Value: 11, Time: 13}); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().EventLoad() - before; got != 4 {
		t.Errorf("incremental event load = %d, want 4", got)
	}
}

func TestCentralizedSubscriberAtCenterNoDownwardTraffic(t *testing.T) {
	e := netsim.NewEngine(lineGraph(t, 5), NewFactory())
	if err := e.Subscribe(2, windSub(t, "q1", 0, 50)); err != nil {
		t.Fatal(err)
	}
	if err := e.Publish(0, model.Event{Seq: 1, Sensor: "d1", Attr: model.WindSpeed, Value: 10, Time: 10}); err != nil {
		t.Fatal(err)
	}
	// Only the upward 2 hops are charged.
	if got := e.Metrics().EventLoad(); got != 2 {
		t.Errorf("event load = %d, want 2", got)
	}
	if e.Metrics().ComplexDeliveries("q1") != 1 {
		t.Error("centre-local subscriber should still be delivered")
	}
}
