// White-box tests for the distributed multi-join configuration (Table II,
// row "Multi joins"): pairwise covering, binary-join splitting with a
// configurable pairing, per-neighbour event propagation.
package multijoin

import (
	"testing"

	"sensorcq/internal/core"
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/subsume"
	"sensorcq/internal/topology"
)

func TestConfigPinsTableIIRow(t *testing.T) {
	cfg := NewConfig(model.RingPairing)
	if cfg.Name != Name || Name != "distributed-multi-join" {
		t.Errorf("config name = %q, want %q", cfg.Name, Name)
	}
	if _, ok := cfg.Checker.(subsume.PairwiseChecker); !ok {
		t.Errorf("checker = %T, want subsume.PairwiseChecker (same routing as operator placement)", cfg.Checker)
	}
	if cfg.Split != core.SplitBinaryJoin {
		t.Errorf("split policy = %v, want SplitBinaryJoin", cfg.Split)
	}
	if cfg.Pairing != model.RingPairing {
		t.Errorf("pairing = %v, want the pairing handed to NewConfig", cfg.Pairing)
	}
	if cfg.Propagation != core.PerNeighbor {
		t.Errorf("propagation = %v, want PerNeighbor (publish/subscribe deduplication)", cfg.Propagation)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("pinned config invalid: %v", err)
	}
}

// TestRingPairingDecomposition pins the decomposition the configuration
// selects: a k-attribute multi-join (k >= 3) splits into k binary joins
// pairing attribute i with attribute (i+1) mod k, while binary joins and
// single filters stay whole.
func TestRingPairingDecomposition(t *testing.T) {
	filters := []model.AttributeFilter{
		{Attr: model.AmbientTemperature, Range: geom.NewInterval(0, 10)},
		{Attr: model.RelativeHumidity, Range: geom.NewInterval(20, 30)},
		{Attr: model.WindSpeed, Range: geom.NewInterval(1, 5)},
	}
	sub, err := model.NewAbstractSubscription("q3", filters, geom.WholePlane(), 30, model.NoSpatialConstraint)
	if err != nil {
		t.Fatal(err)
	}
	joins := sub.SplitBinaryJoins(model.RingPairing)
	if len(joins) != 3 {
		t.Fatalf("3-attribute multi-join split into %d operators, want 3 binary joins", len(joins))
	}
	for i, j := range joins {
		if n := j.NumFilters(); n != 2 {
			t.Errorf("binary join %d has %d filters, want 2", i, n)
		}
		if j.Root != sub.ID {
			t.Errorf("binary join %d root = %q, want the parent subscription %q", i, j.Root, sub.ID)
		}
	}

	pair, err := model.NewAbstractSubscription("q2", filters[:2], geom.WholePlane(), 30, model.NoSpatialConstraint)
	if err != nil {
		t.Fatal(err)
	}
	if whole := pair.SplitBinaryJoins(model.RingPairing); len(whole) != 1 || whole[0].NumFilters() != 2 {
		t.Errorf("binary join should not be decomposed further: %v", whole)
	}
}

func TestFactoryBuildsWorkingNodes(t *testing.T) {
	g := topology.NewGraph(3)
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, factory := range []netsim.HandlerFactory{NewFactory(), NewFactoryWithPairing(model.RingPairing)} {
		e := netsim.NewEngine(g, factory)
		if _, ok := e.Handler(2).(*core.Node); !ok {
			t.Fatalf("factory built %T, want *core.Node", e.Handler(2))
		}
		if err := e.AttachSensor(0, model.Sensor{ID: "a", Attr: model.AmbientTemperature}); err != nil {
			t.Fatal(err)
		}
		if err := e.AttachSensor(2, model.Sensor{ID: "b", Attr: model.RelativeHumidity}); err != nil {
			t.Fatal(err)
		}
		sub, err := model.NewIdentifiedSubscription("q", []model.SensorFilter{
			{Sensor: "a", Attr: model.AmbientTemperature, Range: geom.NewInterval(50, 80)},
			{Sensor: "b", Attr: model.RelativeHumidity, Range: geom.NewInterval(10, 30)},
		}, 30)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Subscribe(1, sub); err != nil {
			t.Fatal(err)
		}
		if err := e.Publish(0, model.Event{Seq: 1, Sensor: "a", Attr: model.AmbientTemperature, Value: 60, Time: 100}); err != nil {
			t.Fatal(err)
		}
		if err := e.Publish(2, model.Event{Seq: 2, Sensor: "b", Attr: model.RelativeHumidity, Value: 20, Time: 110}); err != nil {
			t.Fatal(err)
		}
		if deliveries := e.DeliveriesFor("q"); len(deliveries) != 1 {
			t.Fatalf("got %d deliveries, want 1: %v", len(deliveries), deliveries)
		}
	}
}
