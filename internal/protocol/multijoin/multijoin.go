// Package multijoin implements the distributed multi-join approach of
// Section III-B: the binary-join decomposition of Chandramouli & Yang (VLDB
// 2008) adapted to a fully distributed setting. Subscriptions are routed
// exactly like operator placement (pairwise covering, simple splitting along
// the reverse advertisement paths — which is why the paper finds their
// subscription loads nearly identical), but every node that stores a
// multi-join over three or more attributes evaluates it as binary joins:
// pairs of a main attribute whose events form the result stream and a
// filtering attribute that sanctions them. Events are forwarded with
// per-neighbour (publish/subscribe) deduplication, but because matching
// happens against binary joins the result streams contain false positives
// that travel all the way to the subscriber and inflate the event load —
// exactly the effect the paper's evaluation quantifies.
package multijoin

import (
	"sensorcq/internal/core"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/subsume"
)

// Name is the approach identifier used in reports.
const Name = "distributed-multi-join"

// NewConfig returns the core configuration of the distributed multi-join
// approach: pairwise filtering, binary-join splitting with the given
// pairing, per-neighbour event propagation (Table II, row "Multi joins").
func NewConfig(pairing model.BinaryJoinPairing) core.Config {
	return core.Config{
		Name:        Name,
		Checker:     subsume.PairwiseChecker{},
		Split:       core.SplitBinaryJoin,
		Pairing:     pairing,
		Propagation: core.PerNeighbor,
	}
}

// NewFactory returns the handler factory for the distributed multi-join
// approach with the paper's default ring pairing.
func NewFactory() netsim.HandlerFactory {
	return core.NewFactory(NewConfig(model.RingPairing))
}

// NewFactoryWithPairing returns the handler factory using an explicit
// binary-join pairing strategy (used by the ablation benchmarks).
func NewFactoryWithPairing(pairing model.BinaryJoinPairing) netsim.HandlerFactory {
	return core.NewFactory(NewConfig(pairing))
}
