// Package naive implements the naive distributed baseline of Section VI: it
// forwards every received subscription along the reverse advertisement paths
// with no filtering at all, and constructs one result set per subscription
// with no optimisation for result-set overlap. It emphasises the raw network
// load of multi-join query processing and is the baseline the other
// approaches are compared against.
package naive

import (
	"sensorcq/internal/core"
	"sensorcq/internal/netsim"
	"sensorcq/internal/subsume"
)

// Name is the approach identifier used in reports.
const Name = "naive"

// NewConfig returns the core configuration of the naive approach: no
// subscription filtering, simple splitting, per-subscription result sets
// (Table II, row "Naive").
func NewConfig() core.Config {
	return core.Config{
		Name:        Name,
		Checker:     subsume.NoneChecker{},
		Split:       core.SplitSimple,
		Propagation: core.PerSubscription,
	}
}

// NewFactory returns the handler factory for the naive approach.
func NewFactory() netsim.HandlerFactory {
	return core.NewFactory(NewConfig())
}
