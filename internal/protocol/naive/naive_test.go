// White-box tests for the naive baseline configuration: the package's whole
// job is pinning Table II's "Naive" row (no filtering, simple splitting,
// per-subscription result sets), so the tests assert exactly that wiring and
// that the resulting nodes deliver.
package naive

import (
	"testing"

	"sensorcq/internal/core"
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/subsume"
	"sensorcq/internal/topology"
)

func TestConfigPinsTableIIRow(t *testing.T) {
	cfg := NewConfig()
	if cfg.Name != Name || Name != "naive" {
		t.Errorf("config name = %q, want %q", cfg.Name, Name)
	}
	if _, ok := cfg.Checker.(subsume.NoneChecker); !ok {
		t.Errorf("checker = %T, want subsume.NoneChecker (the naive approach never filters)", cfg.Checker)
	}
	if cfg.CheckerFactory != nil {
		t.Error("naive needs no per-node checker state")
	}
	if cfg.Split != core.SplitSimple {
		t.Errorf("split policy = %v, want SplitSimple", cfg.Split)
	}
	if cfg.Propagation != core.PerSubscription {
		t.Errorf("propagation = %v, want PerSubscription (one result set per subscription)", cfg.Propagation)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("pinned config invalid: %v", err)
	}
}

// TestNoneCheckerNeverFilters is the defining property of the baseline: even
// a subscription identical to an already-stored one is not subsumed, so
// every subscription travels and is evaluated separately.
func TestNoneCheckerNeverFilters(t *testing.T) {
	cfg := NewConfig()
	sub, err := model.NewIdentifiedSubscription("q", []model.SensorFilter{
		{Sensor: "a", Attr: model.AmbientTemperature, Range: geom.NewInterval(0, 100)},
	}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Checker.Subsumed(sub, []*model.Subscription{sub.Clone()}) {
		t.Error("NoneChecker subsumed a subscription; the naive approach must never filter")
	}
}

func TestFactoryBuildsWorkingNodes(t *testing.T) {
	g := topology.NewGraph(3)
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	e := netsim.NewEngine(g, NewFactory())
	if _, ok := e.Handler(1).(*core.Node); !ok {
		t.Fatalf("factory built %T, want *core.Node", e.Handler(1))
	}
	if err := e.AttachSensor(0, model.Sensor{ID: "a", Attr: model.AmbientTemperature}); err != nil {
		t.Fatal(err)
	}
	if err := e.AttachSensor(2, model.Sensor{ID: "b", Attr: model.RelativeHumidity}); err != nil {
		t.Fatal(err)
	}
	sub, err := model.NewIdentifiedSubscription("q", []model.SensorFilter{
		{Sensor: "a", Attr: model.AmbientTemperature, Range: geom.NewInterval(50, 80)},
		{Sensor: "b", Attr: model.RelativeHumidity, Range: geom.NewInterval(10, 30)},
	}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Subscribe(1, sub); err != nil {
		t.Fatal(err)
	}
	if err := e.Publish(0, model.Event{Seq: 1, Sensor: "a", Attr: model.AmbientTemperature, Value: 60, Time: 100}); err != nil {
		t.Fatal(err)
	}
	if err := e.Publish(2, model.Event{Seq: 2, Sensor: "b", Attr: model.RelativeHumidity, Value: 20, Time: 110}); err != nil {
		t.Fatal(err)
	}
	deliveries := e.DeliveriesFor("q")
	if len(deliveries) != 1 {
		t.Fatalf("got %d deliveries, want 1: %v", len(deliveries), deliveries)
	}
	if d := deliveries[0]; d.Node != 1 || len(d.Events) != 2 {
		t.Errorf("unexpected delivery %+v", d)
	}
}
