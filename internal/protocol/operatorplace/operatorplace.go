// Package operatorplace implements the distributed operator-placement
// approach of Section III-A: traditional operator placement tailored to work
// with local knowledge only. Query plans are distributed along the reverse
// advertisement paths; identical and covering operators are shared between
// queries through pairwise covering detection; result sets are constructed
// per subscription, with covered operators' result sets generated at the
// node where the covering was detected (which is where they are stored).
package operatorplace

import (
	"sensorcq/internal/core"
	"sensorcq/internal/netsim"
	"sensorcq/internal/subsume"
)

// Name is the approach identifier used in reports.
const Name = "operator-placement"

// NewConfig returns the core configuration of the distributed
// operator-placement approach: pairwise covering filtering, simple
// splitting, per-subscription result sets (Table II, row "Operator
// placement").
func NewConfig() core.Config {
	return core.Config{
		Name:        Name,
		Checker:     subsume.PairwiseChecker{},
		Split:       core.SplitSimple,
		Propagation: core.PerSubscription,
	}
}

// NewFactory returns the handler factory for the distributed
// operator-placement approach.
func NewFactory() netsim.HandlerFactory {
	return core.NewFactory(NewConfig())
}
