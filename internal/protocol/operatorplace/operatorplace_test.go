// White-box tests for the distributed operator-placement configuration
// (Table II, row "Operator placement"): pairwise covering detection, simple
// splitting, per-subscription result sets.
package operatorplace

import (
	"testing"

	"sensorcq/internal/core"
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/subsume"
	"sensorcq/internal/topology"
)

func TestConfigPinsTableIIRow(t *testing.T) {
	cfg := NewConfig()
	if cfg.Name != Name || Name != "operator-placement" {
		t.Errorf("config name = %q, want %q", cfg.Name, Name)
	}
	if _, ok := cfg.Checker.(subsume.PairwiseChecker); !ok {
		t.Errorf("checker = %T, want subsume.PairwiseChecker", cfg.Checker)
	}
	if cfg.Split != core.SplitSimple {
		t.Errorf("split policy = %v, want SplitSimple", cfg.Split)
	}
	if cfg.Propagation != core.PerSubscription {
		t.Errorf("propagation = %v, want PerSubscription", cfg.Propagation)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("pinned config invalid: %v", err)
	}
}

func rangeSub(t *testing.T, id string, lo, hi float64) *model.Subscription {
	t.Helper()
	sub, err := model.NewIdentifiedSubscription(model.SubscriptionID(id), []model.SensorFilter{
		{Sensor: "a", Attr: model.AmbientTemperature, Range: geom.NewInterval(lo, hi)},
	}, 30)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

// TestPairwiseCoveringShares pins the sharing mechanism: a subscription
// nested inside an already-stored one is detected as covered (its operators
// are shared instead of forwarded), while an overlapping-but-not-nested one
// is not — pairwise covering has no notion of set covers.
func TestPairwiseCoveringShares(t *testing.T) {
	cfg := NewConfig()
	wide := rangeSub(t, "wide", 0, 100)
	narrow := rangeSub(t, "narrow", 40, 60)
	straddle := rangeSub(t, "straddle", 50, 150)
	if !cfg.Checker.Subsumed(narrow, []*model.Subscription{wide}) {
		t.Error("nested subscription not detected as pairwise covered")
	}
	if cfg.Checker.Subsumed(straddle, []*model.Subscription{wide}) {
		t.Error("straddling subscription wrongly detected as covered")
	}
	if cfg.Checker.Subsumed(wide, []*model.Subscription{narrow}) {
		t.Error("covering direction inverted: the wide subscription is not covered by the narrow one")
	}
}

// TestSharesRoutingWithMultiJoinRow pins the paper's observation that
// operator placement and the distributed multi-join route subscriptions
// identically (same checker, same splitting would differ only for
// multi-joins): here, only the split policy and propagation distinguish the
// rows.
func TestSharesRoutingWithMultiJoinRow(t *testing.T) {
	cfg := NewConfig()
	if _, ok := cfg.Checker.(subsume.PairwiseChecker); !ok {
		t.Fatalf("checker = %T, want the same pairwise checker the multi-join row uses", cfg.Checker)
	}
	if cfg.Split == core.SplitBinaryJoin {
		t.Error("operator placement must store whole multi-joins, not binary joins")
	}
}

func TestFactoryBuildsWorkingNodes(t *testing.T) {
	g := topology.NewGraph(3)
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	e := netsim.NewEngine(g, NewFactory())
	if _, ok := e.Handler(0).(*core.Node); !ok {
		t.Fatalf("factory built %T, want *core.Node", e.Handler(0))
	}
	if err := e.AttachSensor(0, model.Sensor{ID: "a", Attr: model.AmbientTemperature}); err != nil {
		t.Fatal(err)
	}
	if err := e.AttachSensor(2, model.Sensor{ID: "b", Attr: model.RelativeHumidity}); err != nil {
		t.Fatal(err)
	}
	sub, err := model.NewIdentifiedSubscription("q", []model.SensorFilter{
		{Sensor: "a", Attr: model.AmbientTemperature, Range: geom.NewInterval(50, 80)},
		{Sensor: "b", Attr: model.RelativeHumidity, Range: geom.NewInterval(10, 30)},
	}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Subscribe(1, sub); err != nil {
		t.Fatal(err)
	}
	if err := e.Publish(0, model.Event{Seq: 1, Sensor: "a", Attr: model.AmbientTemperature, Value: 60, Time: 100}); err != nil {
		t.Fatal(err)
	}
	if err := e.Publish(2, model.Event{Seq: 2, Sensor: "b", Attr: model.RelativeHumidity, Value: 20, Time: 110}); err != nil {
		t.Fatal(err)
	}
	deliveries := e.DeliveriesFor("q")
	if len(deliveries) != 1 {
		t.Fatalf("got %d deliveries, want 1: %v", len(deliveries), deliveries)
	}
}
