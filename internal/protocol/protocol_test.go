// Package protocol_test verifies Table II of the paper: the five approaches
// differ exactly in their subscription filtering, subscription splitting and
// event propagation policies.
package protocol_test

import (
	"testing"

	"sensorcq/internal/core"
	"sensorcq/internal/model"
	"sensorcq/internal/protocol/centralized"
	"sensorcq/internal/protocol/fsf"
	"sensorcq/internal/protocol/multijoin"
	"sensorcq/internal/protocol/naive"
	"sensorcq/internal/protocol/operatorplace"
	"sensorcq/internal/subsume"
)

func TestTableIIApproachMatrix(t *testing.T) {
	cases := []struct {
		name        string
		cfg         core.Config
		filtering   string
		split       core.SplitPolicy
		propagation core.EventPropagation
	}{
		{
			name:        naive.Name,
			cfg:         naive.NewConfig(),
			filtering:   "none",
			split:       core.SplitSimple,
			propagation: core.PerSubscription,
		},
		{
			name:        operatorplace.Name,
			cfg:         operatorplace.NewConfig(),
			filtering:   "pairwise",
			split:       core.SplitSimple,
			propagation: core.PerSubscription,
		},
		{
			name:        multijoin.Name,
			cfg:         multijoin.NewConfig(model.RingPairing),
			filtering:   "pairwise",
			split:       core.SplitBinaryJoin,
			propagation: core.PerNeighbor,
		},
		{
			name:        fsf.Name,
			cfg:         fsf.NewConfig(fsf.DefaultSetFilterError, 1),
			filtering:   "set-filter",
			split:       core.SplitSimple,
			propagation: core.PerNeighbor,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.cfg.Name != c.name {
				t.Errorf("config name = %q, want %q", c.cfg.Name, c.name)
			}
			if err := c.cfg.Validate(); err != nil {
				t.Fatalf("config invalid: %v", err)
			}
			if c.cfg.Split != c.split {
				t.Errorf("split = %v, want %v", c.cfg.Split, c.split)
			}
			if c.cfg.Propagation != c.propagation {
				t.Errorf("propagation = %v, want %v", c.cfg.Propagation, c.propagation)
			}
			checker := c.cfg.Checker
			if checker == nil && c.cfg.CheckerFactory != nil {
				checker = c.cfg.CheckerFactory(0)
			}
			switch c.filtering {
			case "none":
				if _, ok := checker.(subsume.NoneChecker); !ok {
					t.Errorf("checker = %T, want NoneChecker", checker)
				}
			case "pairwise":
				if _, ok := checker.(subsume.PairwiseChecker); !ok {
					t.Errorf("checker = %T, want PairwiseChecker", checker)
				}
			case "set-filter":
				if _, ok := checker.(*subsume.SetChecker); !ok {
					t.Errorf("checker = %T, want *SetChecker", checker)
				}
			}
		})
	}
}

func TestFactoriesProduceHandlers(t *testing.T) {
	factories := map[string]func() interface{}{
		naive.Name:         func() interface{} { return naive.NewFactory()(0) },
		operatorplace.Name: func() interface{} { return operatorplace.NewFactory()(0) },
		multijoin.Name:     func() interface{} { return multijoin.NewFactory()(0) },
		fsf.Name:           func() interface{} { return fsf.NewFactory(1)(0) },
		centralized.Name:   func() interface{} { return centralized.NewFactory()(0) },
		"multijoin-chain":  func() interface{} { return multijoin.NewFactoryWithPairing(model.ChainPairing)(0) },
		"fsf-custom-error": func() interface{} { return fsf.NewFactoryWithError(0.1, 2)(0) },
	}
	for name, build := range factories {
		if h := build(); h == nil {
			t.Errorf("%s factory returned nil handler", name)
		}
	}
	// The core-backed approaches report their configured names.
	if n, ok := naive.NewFactory()(3).(*core.Node); !ok || n.Name() != naive.Name {
		t.Error("naive factory should produce a core node with the naive name")
	}
	if n, ok := fsf.NewFactory(1)(3).(*core.Node); !ok || n.Name() != fsf.Name {
		t.Error("fsf factory should produce a core node with the fsf name")
	}
}
