// Package fsf exposes the paper's Filter-Split-Forward approach (Section V)
// as a named protocol alongside the competitors. The actual algorithms live
// in internal/core; this package pins the configuration the paper evaluates:
// probabilistic set-subsumption filtering, simple (advertisement-driven)
// splitting and per-neighbour publish/subscribe event forwarding.
package fsf

import (
	"sensorcq/internal/core"
	"sensorcq/internal/netsim"
)

// Name is the approach identifier used in reports.
const Name = "filter-split-forward"

// DefaultSetFilterError is the default false-positive probability of the
// probabilistic set-subsumption checker.
const DefaultSetFilterError = core.DefaultSetFilterError

// NewConfig returns the Filter-Split-Forward configuration with the given
// set-filter error probability and sampling seed.
func NewConfig(setFilterError float64, seed int64) core.Config {
	return core.NewFSFConfig(setFilterError, seed)
}

// NewFactory returns the handler factory for Filter-Split-Forward with the
// default error probability.
func NewFactory(seed int64) netsim.HandlerFactory {
	return core.NewFSF(seed)
}

// NewFactoryWithError returns the handler factory with an explicit
// set-filter error probability (used by the recall/traffic trade-off
// ablation).
func NewFactoryWithError(setFilterError float64, seed int64) netsim.HandlerFactory {
	return core.NewFactory(NewConfig(setFilterError, seed))
}
