// White-box tests for the Filter-Split-Forward configuration (Section V):
// probabilistic set-subsumption filtering with per-node checker instances,
// simple splitting, per-neighbour publish/subscribe forwarding.
package fsf

import (
	"testing"

	"sensorcq/internal/core"
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/subsume"
	"sensorcq/internal/topology"
)

func TestConfigPinsSectionVRow(t *testing.T) {
	cfg := NewConfig(DefaultSetFilterError, 7)
	if cfg.Name != Name || Name != "filter-split-forward" {
		t.Errorf("config name = %q, want %q", cfg.Name, Name)
	}
	if cfg.CheckerFactory == nil {
		t.Fatal("FSF needs a per-node checker factory: the set filter is stateful and nodes must not share it")
	}
	if cfg.Split != core.SplitSimple {
		t.Errorf("split policy = %v, want SplitSimple", cfg.Split)
	}
	if cfg.Propagation != core.PerNeighbor {
		t.Errorf("propagation = %v, want PerNeighbor", cfg.Propagation)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("pinned config invalid: %v", err)
	}
	if DefaultSetFilterError != core.DefaultSetFilterError {
		t.Errorf("re-exported default error %g drifted from core's %g", DefaultSetFilterError, core.DefaultSetFilterError)
	}
}

// TestPerNodeCheckerInstances pins the concurrency requirement: every call
// of the checker factory builds a fresh checker, so two nodes (or two
// engines) never share the set filter's mutable sampling state.
func TestPerNodeCheckerInstances(t *testing.T) {
	cfg := NewConfig(DefaultSetFilterError, 7)
	a := cfg.CheckerFactory(topology.NodeID(1))
	b := cfg.CheckerFactory(topology.NodeID(2))
	c := cfg.CheckerFactory(topology.NodeID(1))
	if a == nil || b == nil || c == nil {
		t.Fatal("checker factory returned nil")
	}
	if a == b || a == c {
		t.Error("checker factory handed out a shared instance")
	}
	if _, ok := a.(*subsume.SetChecker); !ok {
		t.Errorf("checker = %T, want the probabilistic *subsume.SetChecker", a)
	}
}

// TestSetCheckerDetectsSetCovers is the property that separates FSF from the
// pairwise competitors: a subscription covered only by the UNION of stored
// subscriptions (no single one contains it) is still detected.
func TestSetCheckerDetectsSetCovers(t *testing.T) {
	mk := func(id string, lo, hi float64) *model.Subscription {
		sub, err := model.NewIdentifiedSubscription(model.SubscriptionID(id), []model.SensorFilter{
			{Sensor: "a", Attr: model.AmbientTemperature, Range: geom.NewInterval(lo, hi)},
		}, 30)
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	checker := NewConfig(DefaultSetFilterError, 7).CheckerFactory(topology.NodeID(0))
	candidate := mk("cand", 10, 90)
	left := mk("left", 0, 55)
	right := mk("right", 45, 100)
	if !checker.Subsumed(candidate, []*model.Subscription{left, right}) {
		t.Error("set cover not detected: [10,90] is inside [0,55] ∪ [45,100]")
	}
	pairwise := subsume.PairwiseChecker{}
	if pairwise.Subsumed(candidate, []*model.Subscription{left, right}) {
		t.Error("pairwise checker should miss the set cover — otherwise this test proves nothing")
	}
}

func TestFactoriesBuildWorkingNodes(t *testing.T) {
	g := topology.NewGraph(3)
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, factory := range []netsim.HandlerFactory{NewFactory(7), NewFactoryWithError(0.01, 7)} {
		e := netsim.NewEngine(g, factory)
		if _, ok := e.Handler(1).(*core.Node); !ok {
			t.Fatalf("factory built %T, want *core.Node", e.Handler(1))
		}
		if err := e.AttachSensor(0, model.Sensor{ID: "a", Attr: model.AmbientTemperature}); err != nil {
			t.Fatal(err)
		}
		if err := e.AttachSensor(2, model.Sensor{ID: "b", Attr: model.RelativeHumidity}); err != nil {
			t.Fatal(err)
		}
		sub, err := model.NewIdentifiedSubscription("q", []model.SensorFilter{
			{Sensor: "a", Attr: model.AmbientTemperature, Range: geom.NewInterval(50, 80)},
			{Sensor: "b", Attr: model.RelativeHumidity, Range: geom.NewInterval(10, 30)},
		}, 30)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Subscribe(1, sub); err != nil {
			t.Fatal(err)
		}
		if err := e.Publish(0, model.Event{Seq: 1, Sensor: "a", Attr: model.AmbientTemperature, Value: 60, Time: 100}); err != nil {
			t.Fatal(err)
		}
		if err := e.Publish(2, model.Event{Seq: 2, Sensor: "b", Attr: model.RelativeHumidity, Value: 20, Time: 110}); err != nil {
			t.Fatal(err)
		}
		if deliveries := e.DeliveriesFor("q"); len(deliveries) != 1 {
			t.Fatalf("got %d deliveries, want 1: %v", len(deliveries), deliveries)
		}
	}
}
