package protocol_test

import (
	"fmt"
	"testing"

	"sensorcq/internal/core"
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/protocol/centralized"
	"sensorcq/internal/protocol/fsf"
	"sensorcq/internal/protocol/multijoin"
	"sensorcq/internal/protocol/naive"
	"sensorcq/internal/protocol/operatorplace"
	"sensorcq/internal/topology"
)

// walkthroughGraph is the paper's six-node topology:
//
//	sensor a (0)   sensor b (1)
//	        \       /
//	         hub (3) --- hub (4) --- user (5)
//	                      |
//	                 sensor c (2)
func walkthroughGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(6)
	for _, e := range [][2]topology.NodeID{{5, 4}, {4, 3}, {3, 0}, {3, 1}, {4, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func identified(t *testing.T, id string, lo, hi float64, deltaT model.Timestamp) *model.Subscription {
	t.Helper()
	sub, err := model.NewIdentifiedSubscription(model.SubscriptionID(id), []model.SensorFilter{
		{Sensor: "a", Attr: model.AmbientTemperature, Range: geom.NewInterval(lo, hi)},
		{Sensor: "b", Attr: model.RelativeHumidity, Range: geom.NewInterval(lo, hi)},
	}, deltaT)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func attachWalkthroughSensors(t *testing.T, rt netsim.Runtime) {
	t.Helper()
	sensors := []struct {
		node   topology.NodeID
		sensor model.Sensor
	}{
		{0, model.Sensor{ID: "a", Attr: model.AmbientTemperature}},
		{1, model.Sensor{ID: "b", Attr: model.RelativeHumidity}},
		{2, model.Sensor{ID: "c", Attr: model.WindSpeed}},
	}
	for _, s := range sensors {
		if err := rt.AttachSensor(s.node, s.sensor); err != nil {
			t.Fatal(err)
		}
	}
}

// publishPair injects one matching (a, b) reading pair and returns the next
// free sequence number.
func publishPair(t *testing.T, rt netsim.Runtime, seq uint64, value float64, at model.Timestamp) uint64 {
	t.Helper()
	if err := rt.Publish(0, model.Event{Seq: seq, Sensor: "a", Attr: model.AmbientTemperature, Value: value, Time: at}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Publish(1, model.Event{Seq: seq + 1, Sensor: "b", Attr: model.RelativeHumidity, Value: value, Time: at + 2}); err != nil {
		t.Fatal(err)
	}
	return seq + 2
}

// coreNode fetches a protocol node for white-box inspection.
func coreNode(t *testing.T, rt netsim.Runtime, n topology.NodeID) *core.Node {
	t.Helper()
	node, ok := rt.Handler(n).(*core.Node)
	if !ok {
		t.Fatalf("handler of node %d is %T, want *core.Node", n, rt.Handler(n))
	}
	return node
}

// TestUnsubscribeRetractsForwardedOperators drives the full retraction story
// on the walkthrough topology for every approach: a broad subscription B and
// a strict subscription S it covers are registered at the user node; B is
// then retracted. The covering approaches must re-expose S (re-split it
// along the reverse advertisement paths rather than orphan it), every
// approach must stop delivering to B while S keeps receiving results, and a
// later re-registration of B must behave like a fresh subscription.
func TestUnsubscribeRetractsForwardedOperators(t *testing.T) {
	cases := []struct {
		name     string
		factory  netsim.HandlerFactory
		covering bool // S is filtered out as covered while B is active
		core     bool // handlers are *core.Node (white-box checks possible)
	}{
		{naive.Name, naive.NewFactory(), false, true},
		{operatorplace.Name, operatorplace.NewFactory(), true, true},
		{multijoin.Name, multijoin.NewFactory(), true, true},
		{fsf.Name, fsf.NewFactory(7), true, true},
		{centralized.Name, centralized.NewFactory(), false, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rt := netsim.NewEngine(walkthroughGraph(t), c.factory)
			attachWalkthroughSensors(t, rt)

			broad := identified(t, "B", 0, 100, 30)
			strict := identified(t, "S", 20, 40, 30)
			if err := rt.Subscribe(5, broad); err != nil {
				t.Fatal(err)
			}
			if err := rt.Subscribe(5, strict); err != nil {
				t.Fatal(err)
			}

			if c.covering {
				// S is subsumed by B at the user node: stored for local
				// delivery but not forwarded into the network.
				user := coreNode(t, rt, 5)
				if got := user.Subscriptions().CountCovered(); got != 1 {
					t.Fatalf("covered at user node = %d, want 1 (S subsumed by B)", got)
				}
				if hub := coreNode(t, rt, 4); hub.Subscriptions().Seen(5, "S") {
					t.Fatalf("covered subscription S leaked into the network")
				}
			}

			// Both subscriptions deliver while registered (covered locals
			// are delivered from the covering operator's result flow).
			seq := publishPair(t, rt, 1, 30, 100)
			if got := len(rt.DeliveriesFor("B")); got != 1 {
				t.Fatalf("B deliveries = %d, want 1", got)
			}
			if got := len(rt.DeliveriesFor("S")); got != 1 {
				t.Fatalf("S deliveries = %d, want 1", got)
			}

			eventsBefore := rt.Metrics().EventLoad()
			if err := rt.Unsubscribe(5, "B"); err != nil {
				t.Fatal(err)
			}
			if rt.Metrics().UnsubscriptionLoad() == 0 {
				t.Error("retraction generated no unsubscription messages")
			}

			if c.core {
				// B is gone from the whole reverse forwarding path...
				for _, n := range []topology.NodeID{4, 3} {
					if coreNode(t, rt, n).Subscriptions().Seen(n+1, "B") {
						t.Errorf("node %d still stores B after retraction", n)
					}
				}
				if coreNode(t, rt, 0).Subscriptions().Seen(3, "B/[a]") {
					t.Error("node 0 still stores the split operator B/[a]")
				}
				if len(coreNode(t, rt, 5).LocalSubscriptions()) != 1 {
					t.Error("user node should keep exactly the surviving local subscription")
				}
			}
			if c.covering {
				// ...and S took its place: re-exposed, re-split, forwarded.
				if hub := coreNode(t, rt, 4); !hub.Subscriptions().Seen(5, "S") {
					t.Error("S was not re-exposed to the network after B's retraction")
				}
				if src := coreNode(t, rt, 0); !src.Subscriptions().Seen(3, "S/[a]") {
					t.Error("S was not re-split down to the sources")
				}
			}

			// Post-retraction: S keeps receiving, B receives nothing.
			seq = publishPair(t, rt, seq, 30, 200)
			if got := len(rt.DeliveriesFor("B")); got != 1 {
				t.Errorf("B deliveries after retraction = %d, want 1 (no new)", got)
			}
			if got := len(rt.DeliveriesFor("S")); got != 2 {
				t.Errorf("S deliveries after retraction = %d, want 2", got)
			}
			if rt.Metrics().EventLoad() == eventsBefore {
				t.Error("surviving subscription stopped generating event traffic")
			}

			// Re-registering the retracted ID works like a fresh
			// subscription: the dedup tables were released network-wide.
			if err := rt.Subscribe(5, identified(t, "B", 0, 100, 30)); err != nil {
				t.Fatal(err)
			}
			publishPair(t, rt, seq, 30, 300)
			if got := len(rt.DeliveriesFor("B")); got != 2 {
				t.Errorf("B deliveries after re-subscribe = %d, want 2", got)
			}
			if got := len(rt.DeliveriesFor("S")); got != 3 {
				t.Errorf("S deliveries after re-subscribe = %d, want 3", got)
			}

			// Retracting an unknown ID anywhere is a silent no-op.
			if err := rt.Unsubscribe(2, "no-such-subscription"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestUnsubscribeSharedOperatorKeepsDependants exercises operator sharing
// the other way round: the covering subscription stays and the covered one
// is retracted — nothing observable may change for the survivor — and then
// the covering one is retracted too, after which the network must be free of
// both (no deliveries, no event forwarding for matching readings).
func TestUnsubscribeSharedOperatorKeepsDependants(t *testing.T) {
	for _, approach := range []struct {
		name    string
		factory netsim.HandlerFactory
	}{
		{operatorplace.Name, operatorplace.NewFactory()},
		{fsf.Name, fsf.NewFactory(7)},
	} {
		t.Run(approach.name, func(t *testing.T) {
			rt := netsim.NewEngine(walkthroughGraph(t), approach.factory)
			attachWalkthroughSensors(t, rt)
			if err := rt.Subscribe(5, identified(t, "B", 0, 100, 30)); err != nil {
				t.Fatal(err)
			}
			if err := rt.Subscribe(5, identified(t, "S", 20, 40, 30)); err != nil {
				t.Fatal(err)
			}
			// Retract the covered subscription: the covering one keeps
			// delivering.
			if err := rt.Unsubscribe(5, "S"); err != nil {
				t.Fatal(err)
			}
			seq := publishPair(t, rt, 1, 30, 100)
			if got := len(rt.DeliveriesFor("B")); got != 1 {
				t.Fatalf("B deliveries = %d, want 1", got)
			}
			if got := len(rt.DeliveriesFor("S")); got != 0 {
				t.Fatalf("retracted S delivered %d times", got)
			}
			// Retract the covering one as well: the network is quiet now.
			if err := rt.Unsubscribe(5, "B"); err != nil {
				t.Fatal(err)
			}
			before := rt.Metrics().EventLoad()
			publishPair(t, rt, seq, 30, 200)
			if got := rt.Metrics().EventLoad(); got != before {
				t.Errorf("event load grew from %d to %d with no subscription registered", before, got)
			}
			if got := len(rt.Deliveries()); got != 1 {
				t.Errorf("deliveries = %d, want 1 (only the pre-retraction one)", got)
			}
		})
	}
}

// TestUnsubscribeIsolatesApproachTraffic sanity-checks that a fully churned
// system returns to (near) its subscription-free event traffic: register
// many overlapping subscriptions, retract them all, and verify matching
// readings cross no link they would not cross in an empty network.
func TestUnsubscribeIsolatesApproachTraffic(t *testing.T) {
	for i, factory := range []netsim.HandlerFactory{
		naive.NewFactory(),
		operatorplace.NewFactory(),
		multijoin.NewFactory(),
		fsf.NewFactory(3),
	} {
		t.Run(fmt.Sprintf("approach=%d", i), func(t *testing.T) {
			rt := netsim.NewEngine(walkthroughGraph(t), factory)
			attachWalkthroughSensors(t, rt)
			for s := 0; s < 8; s++ {
				lo, hi := float64(s), 100-float64(s)
				if err := rt.Subscribe(5, identified(t, fmt.Sprintf("q%d", s), lo, hi, 30)); err != nil {
					t.Fatal(err)
				}
			}
			for s := 0; s < 8; s++ {
				if err := rt.Unsubscribe(5, model.SubscriptionID(fmt.Sprintf("q%d", s))); err != nil {
					t.Fatal(err)
				}
			}
			before := rt.Metrics().EventLoad()
			publishPair(t, rt, 1, 50, 100)
			if got := rt.Metrics().EventLoad(); got != before {
				t.Errorf("event load grew from %d to %d after full churn", before, got)
			}
			if got := len(rt.Deliveries()); got != 0 {
				t.Errorf("deliveries = %d, want 0 after full churn", got)
			}
		})
	}
}
