package dataset

import (
	"testing"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

func smallDeployment(t *testing.T) *topology.Deployment {
	t.Helper()
	dep, err := topology.GenerateDeployment(topology.DeploymentConfig{
		TotalNodes:  20,
		SensorNodes: 15,
		Groups:      3,
		Attributes:  model.DefaultAttributes(),
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestGenerateTraceShape(t *testing.T) {
	dep := smallDeployment(t)
	trace, err := Generate(dep, Config{Rounds: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if trace.NumEvents() != 10*len(dep.Sensors) {
		t.Fatalf("events = %d, want %d", trace.NumEvents(), 10*len(dep.Sensors))
	}
	if len(trace.ByRound) != 10 {
		t.Fatalf("rounds = %d", len(trace.ByRound))
	}
	if trace.RoundInterval != 120 {
		t.Errorf("default round interval = %d, want 120", trace.RoundInterval)
	}
	// Sequence numbers unique, timestamps non-decreasing within a round.
	seen := map[uint64]bool{}
	for _, round := range trace.ByRound {
		if len(round) != len(dep.Sensors) {
			t.Fatalf("round has %d events, want %d", len(round), len(dep.Sensors))
		}
		for i, ev := range round {
			if seen[ev.Seq] {
				t.Fatalf("duplicate seq %d", ev.Seq)
			}
			seen[ev.Seq] = true
			if i > 0 && ev.Time < round[i-1].Time {
				t.Fatal("events within a round must be time-ordered")
			}
		}
	}
	// Every attribute has summary statistics and values within the profile
	// clamp.
	profiles := map[model.AttributeType]AttributeProfile{}
	for _, p := range DefaultProfiles() {
		profiles[p.Attr] = p
	}
	for _, attr := range model.DefaultAttributes() {
		if _, ok := trace.Medians[attr]; !ok {
			t.Errorf("missing median for %s", attr)
		}
		if trace.Spreads[attr] <= 0 {
			t.Errorf("spread for %s should be positive", attr)
		}
		p := profiles[attr]
		if trace.Mins[attr] < p.Min || trace.Maxs[attr] > p.Max {
			t.Errorf("%s values outside clamp: [%g, %g] not in [%g, %g]",
				attr, trace.Mins[attr], trace.Maxs[attr], p.Min, p.Max)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	dep := smallDeployment(t)
	a, err := Generate(dep, Config{Rounds: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(dep, Config{Rounds: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("event counts differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between identical seeds", i)
		}
	}
	c, err := Generate(dep, Config{Rounds: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Events {
		if a.Events[i].Value == c.Events[i].Value {
			same++
		}
	}
	if same == len(a.Events) {
		t.Error("different seeds should produce different traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	dep := smallDeployment(t)
	if _, err := Generate(dep, Config{Rounds: 0}); err == nil {
		t.Error("zero rounds should fail")
	}
	// A deployment with an attribute missing a profile fails loudly.
	dep.Sensors[0].Attr = "exotic_measurement"
	if _, err := Generate(dep, Config{Rounds: 3, Seed: 1}); err == nil {
		t.Error("missing profile should fail")
	}
}

func TestTraceTimestampsFollowRounds(t *testing.T) {
	dep := smallDeployment(t)
	trace, err := Generate(dep, Config{Rounds: 4, RoundInterval: 60, StartTime: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for r, round := range trace.ByRound {
		lo := model.Timestamp(1000 + r*60)
		hi := lo + 60
		for _, ev := range round {
			if ev.Time < lo || ev.Time >= hi {
				t.Fatalf("round %d event at %d outside [%d, %d)", r, ev.Time, lo, hi)
			}
		}
	}
}

// TestStreamerMatchesGenerate pins the streaming contract: NextRound must
// produce bit-identical rounds to Generate for the same configuration, the
// accumulated statistics must match the trace's, and the returned rounds must
// alias a reusable buffer (callers copy to retain).
func TestStreamerMatchesGenerate(t *testing.T) {
	dep := smallDeployment(t)
	cfg := Config{Rounds: 8, RoundInterval: 90, StartTime: 500, Seed: 21}
	trace, err := Generate(dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewStreamer(dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalRounds() != cfg.Rounds {
		t.Fatalf("TotalRounds = %d, want %d", g.TotalRounds(), cfg.Rounds)
	}
	if g.RoundInterval() != trace.RoundInterval {
		t.Fatalf("RoundInterval = %d, want %d", g.RoundInterval(), trace.RoundInterval)
	}
	var firstBacking *model.Event
	for r := 0; r < cfg.Rounds; r++ {
		round := g.NextRound()
		if round == nil {
			t.Fatalf("stream exhausted after %d rounds, want %d", r, cfg.Rounds)
		}
		if len(round) > 0 {
			if firstBacking == nil {
				firstBacking = &round[0]
			} else if &round[0] != firstBacking {
				t.Fatal("NextRound reallocated its buffer between rounds")
			}
		}
		if len(round) != len(trace.ByRound[r]) {
			t.Fatalf("round %d has %d events, want %d", r, len(round), len(trace.ByRound[r]))
		}
		for i := range round {
			if round[i] != trace.ByRound[r][i] {
				t.Fatalf("round %d event %d differs: %+v vs %+v", r, i, round[i], trace.ByRound[r][i])
			}
		}
		if g.RoundsGenerated() != r+1 {
			t.Fatalf("RoundsGenerated = %d after round %d", g.RoundsGenerated(), r)
		}
	}
	if g.NextRound() != nil {
		t.Fatal("NextRound should return nil once all rounds are generated")
	}
	st := g.Stats()
	for _, attr := range model.DefaultAttributes() {
		if st.Medians[attr] != trace.Medians[attr] {
			t.Errorf("%s: streamed median %g != trace median %g", attr, st.Medians[attr], trace.Medians[attr])
		}
		if st.Spreads[attr] != trace.Spreads[attr] {
			t.Errorf("%s: streamed spread %g != trace spread %g", attr, st.Spreads[attr], trace.Spreads[attr])
		}
		if st.Mins[attr] != trace.Mins[attr] || st.Maxs[attr] != trace.Maxs[attr] {
			t.Errorf("%s: streamed extremes differ from trace", attr)
		}
	}
}
