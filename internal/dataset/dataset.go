// Package dataset generates the synthetic sensor trace that stands in for
// the SensorScope Grand St. Bernard deployment the paper replays (September/
// October 2007, Section VI-A). The original traces are not redistributable,
// so this generator produces measurements with the same structure: the five
// selected attribute types, one reading per sensor per round, a diurnal
// cycle plus auto-correlated noise per sensor, and realistic value ranges
// for a high-alpine site. The workload generator derives subscription ranges
// from the per-attribute medians and spreads of the generated trace, exactly
// as the paper derives them from the real one — which is what matters for
// the traffic metrics (relative selectivity and overlap, not absolute
// physical values).
package dataset

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"sensorcq/internal/model"
	"sensorcq/internal/stats"
	"sensorcq/internal/topology"
)

// AttributeProfile describes how one attribute type behaves over time.
type AttributeProfile struct {
	Attr model.AttributeType
	// Base is the mean level of the measurement.
	Base float64
	// DailyAmplitude is the amplitude of the diurnal cycle.
	DailyAmplitude float64
	// NoiseStdDev is the standard deviation of the per-reading noise.
	NoiseStdDev float64
	// SensorSpread is the standard deviation of the per-sensor offset
	// (different sensors of the same type sit at different micro-sites).
	SensorSpread float64
	// Min and Max clamp the generated values to a physical range.
	Min, Max float64
}

// DefaultProfiles returns profiles for the paper's five measurement types
// with values plausible for the Grand St. Bernard pass in early autumn.
func DefaultProfiles() []AttributeProfile {
	return []AttributeProfile{
		{Attr: model.AmbientTemperature, Base: 2, DailyAmplitude: 5, NoiseStdDev: 1.0, SensorSpread: 1.5, Min: -25, Max: 25},
		{Attr: model.SurfaceTemperature, Base: 4, DailyAmplitude: 8, NoiseStdDev: 1.5, SensorSpread: 2.0, Min: -25, Max: 40},
		{Attr: model.RelativeHumidity, Base: 70, DailyAmplitude: 15, NoiseStdDev: 5.0, SensorSpread: 5.0, Min: 5, Max: 100},
		{Attr: model.WindSpeed, Base: 6, DailyAmplitude: 3, NoiseStdDev: 2.0, SensorSpread: 1.5, Min: 0, Max: 45},
		{Attr: model.WindDirection, Base: 180, DailyAmplitude: 60, NoiseStdDev: 25.0, SensorSpread: 30.0, Min: 0, Max: 360},
	}
}

// Config parameterises trace generation.
type Config struct {
	// Profiles describes the attribute types; defaults to DefaultProfiles.
	Profiles []AttributeProfile
	// Rounds is the number of measurement rounds to generate.
	Rounds int
	// RoundInterval is the time between consecutive rounds (default 120,
	// i.e. the paper's two-minute SensorScope sampling period).
	RoundInterval model.Timestamp
	// StartTime is the timestamp of the first round.
	StartTime model.Timestamp
	// Seed makes the trace reproducible.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("dataset: Rounds must be positive, got %d", c.Rounds)
	}
	return nil
}

// Stats holds the per-attribute summary statistics of generated readings.
// The workload generator consumes these (and nothing else from a trace) to
// centre and size subscription ranges, so a streamed generation run that
// never materialises the trace can still drive workload generation.
type Stats struct {
	// Medians holds the per-attribute median of the generated values.
	Medians map[model.AttributeType]float64
	// Spreads holds the per-attribute standard deviation.
	Spreads map[model.AttributeType]float64
	// Mins and Maxs hold the observed per-attribute extremes.
	Mins, Maxs map[model.AttributeType]float64
}

// Trace is a generated measurement trace, ordered by time.
type Trace struct {
	// Events are all generated readings in timestamp order with globally
	// unique sequence numbers.
	Events []model.Event
	// ByRound groups the events by measurement round.
	ByRound [][]model.Event
	// RoundInterval echoes the configured sampling period.
	RoundInterval model.Timestamp
	// Stats summarises the generated values per attribute.
	Stats
}

// NumEvents returns the total number of readings in the trace.
func (t *Trace) NumEvents() int { return len(t.Events) }

// sensorState carries the per-sensor generator state (offset + AR(1) noise).
type sensorState struct {
	profile AttributeProfile
	offset  float64
	noise   float64
	phase   model.Timestamp
	rng     *stats.RNG
}

// Streamer generates a measurement trace one round at a time without ever
// materialising the whole trace. It produces bit-identical rounds to
// Generate with the same configuration: the same RNG splits, sequence
// numbers, phases and sample order.
//
// NextRound reuses an internal event buffer across calls — callers that
// retain a round beyond the next NextRound call must copy it. Summary
// statistics accumulate as rounds are generated; Stats reflects everything
// generated so far.
type Streamer struct {
	interval  model.Timestamp
	startTime model.Timestamp
	rounds    int
	sensors   []model.Sensor
	states    []*sensorState
	summaries map[model.AttributeType]*stats.Summary
	seq       uint64
	round     int
	buf       []model.Event
}

// NewStreamer prepares round-by-round generation over the deployment's
// sensors. The per-sensor generator state (offset, phase, RNG split) is fixed
// here, so the stream is fully determined by the configuration.
func NewStreamer(dep *topology.Deployment, cfg Config) (*Streamer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	profiles := cfg.Profiles
	if len(profiles) == 0 {
		profiles = DefaultProfiles()
	}
	interval := cfg.RoundInterval
	if interval <= 0 {
		interval = 120
	}
	byAttr := map[model.AttributeType]AttributeProfile{}
	for _, p := range profiles {
		byAttr[p.Attr] = p
	}

	master := stats.NewRNG(cfg.Seed)
	// Deterministic iteration: sensors sorted by ID.
	sensors := append([]model.Sensor(nil), dep.Sensors...)
	slices.SortFunc(sensors, func(a, b model.Sensor) int { return cmp.Compare(a.ID, b.ID) })
	states := make([]*sensorState, len(sensors))
	for i, s := range sensors {
		p, ok := byAttr[s.Attr]
		if !ok {
			return nil, fmt.Errorf("dataset: no profile for attribute %s", s.Attr)
		}
		rng := master.Split()
		states[i] = &sensorState{
			profile: p,
			offset:  rng.Normal(0, p.SensorSpread),
			phase:   model.Timestamp(rng.Intn(int(interval))),
			rng:     rng,
		}
	}
	return &Streamer{
		interval:  interval,
		startTime: cfg.StartTime,
		rounds:    cfg.Rounds,
		sensors:   sensors,
		states:    states,
		summaries: map[model.AttributeType]*stats.Summary{},
		buf:       make([]model.Event, 0, len(sensors)),
	}, nil
}

// RoundInterval returns the sampling period between consecutive rounds.
func (g *Streamer) RoundInterval() model.Timestamp { return g.interval }

// TotalRounds returns the configured number of rounds.
func (g *Streamer) TotalRounds() int { return g.rounds }

// RoundsGenerated returns how many rounds NextRound has produced so far.
func (g *Streamer) RoundsGenerated() int { return g.round }

// NextRound generates the next measurement round, sorted by timestamp, or
// returns nil once all configured rounds have been produced. The returned
// slice aliases an internal buffer that the next NextRound call overwrites;
// copy it to retain the round.
func (g *Streamer) NextRound() []model.Event {
	if g.round >= g.rounds {
		return nil
	}
	roundStart := g.startTime + model.Timestamp(g.round)*g.interval
	g.buf = g.buf[:0]
	for i, s := range g.sensors {
		st := g.states[i]
		g.seq++
		ts := roundStart + st.phase
		value := st.sample(ts)
		g.buf = append(g.buf, model.Event{
			Seq:      g.seq,
			Sensor:   s.ID,
			Attr:     s.Attr,
			Location: s.Location,
			Value:    value,
			Time:     ts,
		})
		sum := g.summaries[s.Attr]
		if sum == nil {
			sum = stats.NewSummary()
			g.summaries[s.Attr] = sum
		}
		sum.Add(value)
	}
	model.SortEventsByTime(g.buf)
	g.round++
	return g.buf
}

// Stats summarises the values generated so far. The returned maps are fresh
// copies; they do not change as more rounds are generated.
func (g *Streamer) Stats() Stats {
	st := Stats{
		Medians: map[model.AttributeType]float64{},
		Spreads: map[model.AttributeType]float64{},
		Mins:    map[model.AttributeType]float64{},
		Maxs:    map[model.AttributeType]float64{},
	}
	for attr, sum := range g.summaries {
		st.Medians[attr] = sum.Median()
		st.Spreads[attr] = sum.StdDev()
		st.Mins[attr] = sum.Min()
		st.Maxs[attr] = sum.Max()
	}
	return st
}

// Generate builds a trace for every sensor of the deployment. It is the
// materialised form of the stream NewStreamer produces: every round is copied
// out of the streamer's reusable buffer into the trace.
func Generate(dep *topology.Deployment, cfg Config) (*Trace, error) {
	g, err := NewStreamer(dep, cfg)
	if err != nil {
		return nil, err
	}
	trace := &Trace{RoundInterval: g.RoundInterval()}
	for {
		round := g.NextRound()
		if round == nil {
			break
		}
		copied := append([]model.Event(nil), round...)
		trace.ByRound = append(trace.ByRound, copied)
		trace.Events = append(trace.Events, copied...)
	}
	trace.Stats = g.Stats()
	return trace, nil
}

// sample produces one reading at the given timestamp: base level + sensor
// offset + diurnal cycle + AR(1) noise, clamped to the physical range.
func (st *sensorState) sample(ts model.Timestamp) float64 {
	p := st.profile
	dayFraction := float64(ts%86400) / 86400
	diurnal := p.DailyAmplitude * math.Sin(2*math.Pi*(dayFraction-0.25))
	// AR(1) noise with coefficient 0.7 keeps consecutive readings of one
	// sensor correlated, as real environmental series are.
	st.noise = 0.7*st.noise + st.rng.Normal(0, p.NoiseStdDev)
	v := p.Base + st.offset + diurnal + st.noise
	if v < p.Min {
		v = p.Min
	}
	if v > p.Max {
		v = p.Max
	}
	return v
}
