// Package experiment reproduces the paper's evaluation (Section VI): it
// builds the four deployment scenarios, generates the synthetic SensorScope
// workload, runs every approach on identical inputs and reports the two
// traffic metrics (subscription load and event load) after each batch of
// injected subscriptions, plus the end-user event recall of the
// Filter-Split-Forward approach.
package experiment

import (
	"fmt"

	"sensorcq/internal/core"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/protocol/centralized"
	"sensorcq/internal/protocol/fsf"
	"sensorcq/internal/protocol/multijoin"
	"sensorcq/internal/protocol/naive"
	"sensorcq/internal/protocol/operatorplace"
)

// ApproachID names one of the five evaluated approaches.
type ApproachID string

// The five approaches of Table II.
const (
	Centralized        ApproachID = "centralized"
	Naive              ApproachID = "naive"
	OperatorPlacement  ApproachID = "operator-placement"
	MultiJoin          ApproachID = "distributed-multi-join"
	FilterSplitForward ApproachID = "filter-split-forward"
)

// AllDistributed returns the four distributed approaches in the order the
// paper plots them.
func AllDistributed() []ApproachID {
	return []ApproachID{Naive, OperatorPlacement, MultiJoin, FilterSplitForward}
}

// All returns every approach including the centralized baseline.
func All() []ApproachID {
	return append([]ApproachID{Centralized}, AllDistributed()...)
}

// FactorySpec parameterises handler construction beyond the approach itself.
type FactorySpec struct {
	// Seed controls the probabilistic set filter of Filter-Split-Forward.
	Seed int64
	// SetFilterError is the FSF false-positive probability (<=0 or >=1
	// selects the default).
	SetFilterError float64
	// ValidityFactor scales each node's event-window validity (validity =
	// factor x max δt); 0 keeps the protocol default of 2. Windowed replays
	// with lag L need at least L+2 (netsim.RequiredValidityFactor) so a
	// late-arriving trigger still finds its in-window partners stored.
	ValidityFactor int
}

// FactoryForSpec returns a fresh handler factory for the approach with the
// given construction parameters.
func FactoryForSpec(id ApproachID, spec FactorySpec) (netsim.HandlerFactory, error) {
	if spec.SetFilterError <= 0 || spec.SetFilterError >= 1 {
		spec.SetFilterError = fsf.DefaultSetFilterError
	}
	var cfg core.Config
	switch id {
	case Centralized:
		return centralized.NewFactoryWithValidity(spec.ValidityFactor), nil
	case Naive:
		cfg = naive.NewConfig()
	case OperatorPlacement:
		cfg = operatorplace.NewConfig()
	case MultiJoin:
		cfg = multijoin.NewConfig(model.RingPairing)
	case FilterSplitForward:
		cfg = fsf.NewConfig(spec.SetFilterError, spec.Seed)
	default:
		return nil, fmt.Errorf("experiment: unknown approach %q", id)
	}
	cfg.ValidityFactor = spec.ValidityFactor
	return core.NewFactory(cfg), nil
}

// FactoryFor returns a fresh handler factory for the approach with the
// default validity factor. The seed controls the probabilistic set filter of
// Filter-Split-Forward and the setFilterError its false-positive probability
// (pass 0 to use the default).
func FactoryFor(id ApproachID, seed int64, setFilterError float64) (netsim.HandlerFactory, error) {
	return FactoryForSpec(id, FactorySpec{Seed: seed, SetFilterError: setFilterError})
}

// IsDeterministicLossless reports whether the approach delivers every
// matching event by construction (everything except FSF, whose probabilistic
// set filter may lose events).
func IsDeterministicLossless(id ApproachID) bool { return id != FilterSplitForward }
