// Package experiment reproduces the paper's evaluation (Section VI): it
// builds the four deployment scenarios, generates the synthetic SensorScope
// workload, runs every approach on identical inputs and reports the two
// traffic metrics (subscription load and event load) after each batch of
// injected subscriptions, plus the end-user event recall of the
// Filter-Split-Forward approach.
package experiment

import (
	"fmt"

	"sensorcq/internal/netsim"
	"sensorcq/internal/protocol/centralized"
	"sensorcq/internal/protocol/fsf"
	"sensorcq/internal/protocol/multijoin"
	"sensorcq/internal/protocol/naive"
	"sensorcq/internal/protocol/operatorplace"
)

// ApproachID names one of the five evaluated approaches.
type ApproachID string

// The five approaches of Table II.
const (
	Centralized        ApproachID = "centralized"
	Naive              ApproachID = "naive"
	OperatorPlacement  ApproachID = "operator-placement"
	MultiJoin          ApproachID = "distributed-multi-join"
	FilterSplitForward ApproachID = "filter-split-forward"
)

// AllDistributed returns the four distributed approaches in the order the
// paper plots them.
func AllDistributed() []ApproachID {
	return []ApproachID{Naive, OperatorPlacement, MultiJoin, FilterSplitForward}
}

// All returns every approach including the centralized baseline.
func All() []ApproachID {
	return append([]ApproachID{Centralized}, AllDistributed()...)
}

// FactoryFor returns a fresh handler factory for the approach. The seed
// controls the probabilistic set filter of Filter-Split-Forward and the
// setFilterError its false-positive probability (pass 0 to use the default).
func FactoryFor(id ApproachID, seed int64, setFilterError float64) (netsim.HandlerFactory, error) {
	if setFilterError <= 0 || setFilterError >= 1 {
		setFilterError = fsf.DefaultSetFilterError
	}
	switch id {
	case Centralized:
		return centralized.NewFactory(), nil
	case Naive:
		return naive.NewFactory(), nil
	case OperatorPlacement:
		return operatorplace.NewFactory(), nil
	case MultiJoin:
		return multijoin.NewFactory(), nil
	case FilterSplitForward:
		return fsf.NewFactoryWithError(setFilterError, seed), nil
	default:
		return nil, fmt.Errorf("experiment: unknown approach %q", id)
	}
}

// IsDeterministicLossless reports whether the approach delivers every
// matching event by construction (everything except FSF, whose probabilistic
// set filter may lose events).
func IsDeterministicLossless(id ApproachID) bool { return id != FilterSplitForward }
