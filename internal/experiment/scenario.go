package experiment

import (
	"fmt"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// Scenario describes one experimental setup of Section VI. The four
// constructors below reproduce the paper's parameters; Scale derives cheaper
// variants for unit tests and quick benchmark runs.
type Scenario struct {
	// Name identifies the scenario ("small-scale", ...).
	Name string
	// Description is a one-line summary for reports.
	Description string

	// Network shape.
	TotalNodes  int
	SensorNodes int
	Groups      int

	// Subscription workload: Batches batches of BatchSize subscriptions,
	// each over MinAttrs..MaxAttrs attribute types.
	Batches   int
	BatchSize int
	MinAttrs  int
	MaxAttrs  int

	// Event workload: after each batch, RoundsPerBatch measurement rounds
	// (one reading per sensor per round, RoundInterval apart) are replayed.
	RoundsPerBatch int
	RoundInterval  model.Timestamp

	// IncludeCentralized adds the centralized baseline (the paper only
	// reports it for the medium-scale experiment).
	IncludeCentralized bool

	// SetFilterError is the FSF set-filter error probability (0 = default).
	SetFilterError float64

	// ParetoScale and OffsetCap override the subscription-range width
	// distribution of the workload generator (0 keeps its defaults). They
	// control subscription selectivity, which the paper describes as
	// "medium selective".
	ParetoScale float64
	OffsetCap   float64

	// Seed drives topology, trace and workload generation.
	Seed int64
}

// Validate checks the scenario parameters.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("experiment: scenario needs a name")
	}
	if s.Batches <= 0 || s.BatchSize <= 0 {
		return fmt.Errorf("experiment: scenario %s needs positive batches and batch size", s.Name)
	}
	if s.RoundsPerBatch <= 0 {
		return fmt.Errorf("experiment: scenario %s needs positive rounds per batch", s.Name)
	}
	cfg := s.DeploymentConfig()
	return cfg.Validate()
}

// DeploymentConfig returns the topology generator configuration for the
// scenario.
func (s Scenario) DeploymentConfig() topology.DeploymentConfig {
	return topology.DeploymentConfig{
		TotalNodes:  s.TotalNodes,
		SensorNodes: s.SensorNodes,
		Groups:      s.Groups,
		Attributes:  model.DefaultAttributes(),
		Seed:        s.Seed,
	}
}

// TotalSubscriptions returns Batches × BatchSize.
func (s Scenario) TotalSubscriptions() int { return s.Batches * s.BatchSize }

// TotalRounds returns the number of measurement rounds generated for the
// whole experiment.
func (s Scenario) TotalRounds() int { return s.Batches * s.RoundsPerBatch }

// Scale returns a copy of the scenario with the subscription and event
// workload scaled down (or up): the number of batches, the batch size and
// the rounds per batch are multiplied by the given factors (minimum 1 each).
// The network shape is never scaled, because the paper's scenarios are
// defined by it.
func (s Scenario) Scale(batchFactor, batchSizeFactor, roundsFactor float64) Scenario {
	scale := func(v int, f float64) int {
		if f <= 0 {
			return v
		}
		out := int(float64(v) * f)
		if out < 1 {
			out = 1
		}
		return out
	}
	s.Batches = scale(s.Batches, batchFactor)
	s.BatchSize = scale(s.BatchSize, batchSizeFactor)
	s.RoundsPerBatch = scale(s.RoundsPerBatch, roundsFactor)
	return s
}

// SmallScale is the first experiment (Section VI-C): 60 nodes, 50 of them
// sensor nodes in 10 groups, 100..1000 subscriptions over 3-5 attributes.
func SmallScale() Scenario {
	return Scenario{
		Name:           "small-scale",
		Description:    "60 nodes, 50 sensor nodes, 10 groups, 3-5 attributes per subscription",
		TotalNodes:     60,
		SensorNodes:    50,
		Groups:         10,
		Batches:        10,
		BatchSize:      100,
		MinAttrs:       3,
		MaxAttrs:       5,
		RoundsPerBatch: 8,
		RoundInterval:  1800,
		Seed:           101,
	}
}

// MediumScale is the second experiment (Section VI-D): 100 nodes, 50 sensor
// nodes, 5 attributes per subscription, centralized baseline included.
func MediumScale() Scenario {
	return Scenario{
		Name:               "medium-scale",
		Description:        "100 nodes, 50 sensor nodes, 10 groups, 5 attributes per subscription, centralized included",
		TotalNodes:         100,
		SensorNodes:        50,
		Groups:             10,
		Batches:            9,
		BatchSize:          100,
		MinAttrs:           5,
		MaxAttrs:           5,
		RoundsPerBatch:     8,
		RoundInterval:      1800,
		IncludeCentralized: true,
		Seed:               102,
	}
}

// LargeScaleNetwork is the third experiment (Section VI-E, first setting):
// 200 nodes, 50 sensor nodes — the influence of the network size.
func LargeScaleNetwork() Scenario {
	return Scenario{
		Name:           "large-scale-network",
		Description:    "200 nodes, 50 sensor nodes, 10 groups, 5 attributes per subscription",
		TotalNodes:     200,
		SensorNodes:    50,
		Groups:         10,
		Batches:        9,
		BatchSize:      100,
		MinAttrs:       5,
		MaxAttrs:       5,
		RoundsPerBatch: 8,
		RoundInterval:  1800,
		Seed:           103,
	}
}

// LargeScaleSources is the fourth experiment (Section VI-E, second setting):
// 200 nodes, 100 sensor nodes in 20 groups — the influence of the number of
// distinct data sources.
func LargeScaleSources() Scenario {
	return Scenario{
		Name:           "large-scale-sources",
		Description:    "200 nodes, 100 sensor nodes, 20 groups, 5 attributes per subscription",
		TotalNodes:     200,
		SensorNodes:    100,
		Groups:         20,
		Batches:        9,
		BatchSize:      100,
		MinAttrs:       5,
		MaxAttrs:       5,
		RoundsPerBatch: 8,
		RoundInterval:  1800,
		Seed:           104,
	}
}

// AllScenarios returns the four scenarios in paper order.
func AllScenarios() []Scenario {
	return []Scenario{SmallScale(), MediumScale(), LargeScaleNetwork(), LargeScaleSources()}
}

// QuickScale scales a scenario down to a size suitable for unit tests and
// default benchmark runs while keeping the network shape: 4 batches of 25
// subscriptions and 3 rounds per batch.
func QuickScale(s Scenario) Scenario {
	s.Batches = 4
	s.BatchSize = 25
	s.RoundsPerBatch = 3
	return s
}
