package experiment

import (
	"fmt"
	"sort"

	"sensorcq/internal/agg"
	"sensorcq/internal/dataset"
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/topology"
)

// AggregateSweepConfig parameterises the error-vs-traffic experiment of the
// in-network aggregation subsystem: one windowed quantile query is replayed
// over a scenario's trace once with the ship-every-reading exact baseline
// and once per q-digest compression setting k, measuring the upstream
// partial-aggregate traffic and the observed rank error of every window
// against an oracle computed directly from the trace.
type AggregateSweepConfig struct {
	// Scenario supplies the network shape and the trace (its subscription
	// workload is not used).
	Scenario Scenario
	// WindowRounds is the tumbling window width (default 4).
	WindowRounds int
	// Quantile is the rank fraction φ of the query (default 0.5, the
	// median).
	Quantile float64
	// Bits is log2 of the sketch's bucket count σ (default 12).
	Bits uint
	// Ks lists the q-digest compression settings to sweep (default
	// 8, 16, 32, 64; the rank-error bound of each is ε = Bits/k).
	Ks []int
	// Concurrent replays on the concurrent engine instead of the
	// deterministic sequential one.
	Concurrent bool
	// Workers sizes the concurrent engine's scheduler pool (0 selects
	// GOMAXPROCS; capped at the node count). Ignored without Concurrent.
	Workers int
}

// withDefaults fills the zero fields.
func (c AggregateSweepConfig) withDefaults() AggregateSweepConfig {
	if c.WindowRounds <= 0 {
		c.WindowRounds = 4
	}
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = 0.5
	}
	if c.Bits == 0 {
		c.Bits = 12
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{8, 16, 32, 64}
	}
	return c
}

// AggregateSweepPoint is the measurement of one sketch setting.
type AggregateSweepPoint struct {
	// K is the q-digest compression parameter of this run.
	K int
	// Epsilon is the configured rank-error bound Bits/K.
	Epsilon float64
	// MaxRankError and MeanRankError are the observed per-window rank
	// errors of the delivered quantiles against the trace oracle, as
	// fractions of each window's reading count.
	MaxRankError, MeanRankError float64
	// PartialLoad and PartialBytes are the run's cumulative upstream
	// partial-aggregate traffic in messages and encoded bytes.
	PartialLoad, PartialBytes int64
	// Windows is the number of windows delivered.
	Windows int
}

// AggregateSweep is the outcome of one error-vs-traffic experiment.
type AggregateSweep struct {
	Config AggregateSweepConfig
	// Attr is the attribute type the query aggregates (the scenario
	// attribute with the most sensors).
	Attr model.AttributeType
	// Subscriber is the node holding the query — the sensor-free node
	// farthest from the matching sensors, so partials cross a deep tree.
	Subscriber topology.NodeID
	// TreeDepth is the subscriber's hop distance to the farthest matching
	// sensor host (the depth of the dissemination tree the partials climb).
	TreeDepth int
	// Readings is the number of matching readings in the trace.
	Readings int
	// ExactLoad and ExactBytes are the traffic of the ship-every-reading
	// baseline, the error-free comparison point.
	ExactLoad, ExactBytes int64
	// Points holds one measurement per sketch setting, in Ks order.
	Points []AggregateSweepPoint
}

// RunAggregateSweep executes the error-vs-traffic experiment. Every run —
// the exact baseline and each sketch setting — replays the identical trace
// through the identical deployment under quiescent delivery.
func RunAggregateSweep(cfg AggregateSweepConfig) (*AggregateSweep, error) {
	cfg = cfg.withDefaults()
	s := cfg.Scenario
	if err := s.Validate(); err != nil {
		return nil, err
	}
	dep, err := topology.GenerateDeployment(s.DeploymentConfig())
	if err != nil {
		return nil, fmt.Errorf("experiment: generating deployment: %w", err)
	}
	trace, err := dataset.Generate(dep, dataset.Config{
		Rounds:        s.TotalRounds(),
		RoundInterval: s.RoundInterval,
		Seed:          s.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: generating trace: %w", err)
	}

	attr := busiestAttribute(dep)
	lo, hi := trace.Mins[attr], trace.Maxs[attr]
	if !(lo < hi) {
		lo, hi = lo-1, hi+1
	}
	subscriber, depth := deepestSubscriber(dep, attr)

	sweep := &AggregateSweep{
		Config:     cfg,
		Attr:       attr,
		Subscriber: subscriber,
		TreeDepth:  depth,
	}
	spec := model.AggregateSpec{
		Func:         agg.Quantile,
		WindowRounds: cfg.WindowRounds,
		Quantile:     cfg.Quantile,
		Lo:           lo,
		Hi:           hi,
		Bits:         cfg.Bits,
	}
	filter := model.AttributeFilter{Attr: attr, Range: geom.NewInterval(lo, hi)}

	// The exact ship-every-reading baseline; its spec (valid without sketch
	// parameters) doubles as the oracle's filter.
	exact := spec
	exact.Exact = true
	exactSub, err := model.NewAggregateSubscription("agg-exact", filter, geom.WholePlane(), exact)
	if err != nil {
		return nil, err
	}

	// The oracle: the matching readings of every window, straight from the
	// trace. Window g covers rounds [g·W+1, (g+1)·W]; ByRound is 0-based.
	oracleSub := exactSub
	windows := make(map[int][]float64)
	for r, round := range trace.ByRound {
		g := spec.WindowOf(r + 1)
		for _, ev := range round {
			if oracleSub.MatchesReading(ev) {
				windows[g] = append(windows[g], ev.Value)
				sweep.Readings++
			}
		}
	}
	for _, vals := range windows {
		sort.Float64s(vals)
	}

	_, load, bytes, err := replayAggregate(s, dep, trace, subscriber, exactSub, cfg.Concurrent, cfg.Workers)
	if err != nil {
		return nil, err
	}
	sweep.ExactLoad, sweep.ExactBytes = load, bytes

	for _, k := range cfg.Ks {
		sk := spec
		sk.K = k
		sub, err := model.NewAggregateSubscription(model.SubscriptionID(fmt.Sprintf("agg-k%d", k)), filter, geom.WholePlane(), sk)
		if err != nil {
			return nil, err
		}
		results, load, bytes, err := replayAggregate(s, dep, trace, subscriber, sub, cfg.Concurrent, cfg.Workers)
		if err != nil {
			return nil, err
		}
		point := AggregateSweepPoint{K: k, Epsilon: sk.Epsilon(), PartialLoad: load, PartialBytes: bytes}
		var errSum float64
		for _, res := range results {
			vals := windows[res.Window]
			if len(vals) == 0 {
				continue
			}
			e := rankError(vals, res.Value, cfg.Quantile)
			errSum += e
			if e > point.MaxRankError {
				point.MaxRankError = e
			}
			point.Windows++
		}
		if point.Windows > 0 {
			point.MeanRankError = errSum / float64(point.Windows)
		}
		sweep.Points = append(sweep.Points, point)
	}
	return sweep, nil
}

// replayAggregate runs one aggregate query over the trace on a fresh engine
// and returns the delivered windows plus the run's partial-aggregate
// traffic.
func replayAggregate(s Scenario, dep *topology.Deployment, trace *dataset.Trace,
	subscriber topology.NodeID, sub *model.Subscription, concurrent bool, workers int,
) ([]netsim.AggregateResult, int64, int64, error) {
	factory, err := FactoryForSpec(FilterSplitForward, FactorySpec{Seed: s.Seed + 7})
	if err != nil {
		return nil, 0, 0, err
	}
	var engine netsim.Runtime
	if concurrent {
		conc := netsim.NewConcurrentEngineWorkers(dep.Graph, factory, workers)
		defer conc.Close()
		engine = conc
	} else {
		engine = netsim.NewEngine(dep.Graph, factory)
	}
	sensors := make([]model.Sensor, len(dep.Sensors))
	copy(sensors, dep.Sensors)
	sort.Slice(sensors, func(i, j int) bool { return sensors[i].ID < sensors[j].ID })
	for _, sensor := range sensors {
		if err := engine.AttachSensor(dep.SensorHost[sensor.ID], sensor); err != nil {
			return nil, 0, 0, fmt.Errorf("experiment: attaching %s: %w", sensor.ID, err)
		}
		engine.Flush()
	}
	if err := engine.Subscribe(subscriber, sub); err != nil {
		return nil, 0, 0, fmt.Errorf("experiment: subscribing %s: %w", sub.ID, err)
	}
	engine.Flush()

	rounds := make([][]netsim.Publication, len(trace.ByRound))
	for r, events := range trace.ByRound {
		rounds[r] = make([]netsim.Publication, len(events))
		for i, ev := range events {
			rounds[r][i] = netsim.Publication{Node: dep.SensorHost[ev.Sensor], Event: ev}
		}
	}
	if err := engine.ReplayRounds(rounds, netsim.ReplayOptions{Mode: netsim.Quiescent}); err != nil {
		return nil, 0, 0, fmt.Errorf("experiment: replaying %s: %w", sub.ID, err)
	}
	engine.Flush()

	var results []netsim.AggregateResult
	for _, d := range engine.Deliveries() {
		if d.SubID == sub.ID && d.Aggregate != nil {
			results = append(results, *d.Aggregate)
		}
	}
	m := engine.Metrics()
	return results, m.Snapshot().PartialAggregateLoad, m.PartialAggregateBytes(), nil
}

// busiestAttribute returns the deployment's attribute type with the most
// sensors, so the query aggregates the widest source fan-in.
func busiestAttribute(dep *topology.Deployment) model.AttributeType {
	counts := make(map[model.AttributeType]int)
	for _, sensor := range dep.Sensors {
		counts[sensor.Attr]++
	}
	var best model.AttributeType
	bestN := -1
	for attr, n := range counts {
		if n > bestN || (n == bestN && attr < best) {
			best, bestN = attr, n
		}
	}
	return best
}

// deepestSubscriber picks the query's node: the node (preferring sensor-free
// ones) whose hop distance to the farthest host of a matching sensor is
// maximal, so the dissemination tree the partials climb is as deep as the
// deployment allows.
func deepestSubscriber(dep *topology.Deployment, attr model.AttributeType) (topology.NodeID, int) {
	hosts := make(map[topology.NodeID]bool)
	hasSensor := make(map[topology.NodeID]bool)
	for _, sensor := range dep.Sensors {
		hasSensor[dep.SensorHost[sensor.ID]] = true
		if sensor.Attr == attr {
			hosts[dep.SensorHost[sensor.ID]] = true
		}
	}
	best, bestDepth := topology.NodeID(0), -1
	for n := 0; n < dep.Graph.NumNodes(); n++ {
		id := topology.NodeID(n)
		dist := dep.Graph.BFS(id)
		depth := 0
		for h := range hosts {
			if dist[h] > depth {
				depth = dist[h]
			}
		}
		// A sensor-free relay node beats a sensor host of equal depth: the
		// query's own node then contributes no readings and every window is
		// assembled purely from its children's partials.
		better := depth > bestDepth ||
			(depth == bestDepth && !hasSensor[id] && hasSensor[best])
		if better {
			best, bestDepth = id, depth
		}
	}
	return best, bestDepth
}

// rankError measures how far the reported quantile value sits from the
// target rank in one window's sorted values, as a fraction of the window's
// reading count. The value's achievable rank is the interval [#(x<v),
// #(x<=v)]; the error is its distance to the target rank φ·n.
func rankError(sorted []float64, v float64, phi float64) float64 {
	n := len(sorted)
	lo := sort.SearchFloat64s(sorted, v)                            // #(x < v)
	hi := sort.Search(n, func(i int) bool { return sorted[i] > v }) // #(x <= v)
	target := phi * float64(n)
	if target < 1 {
		target = 1
	}
	if t := float64(n); target > t {
		target = t
	}
	switch {
	case target >= float64(lo) && target <= float64(hi):
		return 0
	case target < float64(lo):
		return (float64(lo) - target) / float64(n)
	default:
		return (target - float64(hi)) / float64(n)
	}
}
