package experiment

import (
	"fmt"
	"sort"

	"sensorcq/internal/dataset"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/oracle"
	"sensorcq/internal/topology"
	"sensorcq/internal/workload"
)

// SeriesPoint is one measurement point of a figure: the state after a batch
// of subscriptions has been injected and the batch's event segment replayed.
type SeriesPoint struct {
	// InjectedQueries is the cumulative number of user subscriptions
	// registered so far (the x axis of every figure).
	InjectedQueries int
	// SubscriptionLoad is the cumulative number of forwarded
	// subscriptions/operators (Figs. 4, 6, 8, 10).
	SubscriptionLoad int64
	// EventLoad is the number of forwarded data units while replaying this
	// batch's event segment (Figs. 5, 7, 9, 11).
	EventLoad int64
	// Recall is the end-user event recall over this batch's segment
	// (Fig. 12); deterministic approaches report 1.
	Recall float64
}

// ApproachSeries is the measurement series of one approach.
type ApproachSeries struct {
	Approach ApproachID
	Points   []SeriesPoint
}

// Final returns the last point of the series (zero value when empty).
func (s ApproachSeries) Final() SeriesPoint {
	if len(s.Points) == 0 {
		return SeriesPoint{}
	}
	return s.Points[len(s.Points)-1]
}

// Result holds the full outcome of one scenario run.
type Result struct {
	Scenario   Scenario
	Approaches []ApproachSeries
}

// SeriesFor returns the series of the given approach, or nil.
func (r *Result) SeriesFor(id ApproachID) *ApproachSeries {
	for i := range r.Approaches {
		if r.Approaches[i].Approach == id {
			return &r.Approaches[i]
		}
	}
	return nil
}

// Options tweak a run without changing the scenario definition.
type Options struct {
	// Approaches lists the approaches to run; nil means the scenario
	// default (all distributed approaches, plus centralized when the
	// scenario includes it).
	Approaches []ApproachID
	// ComputeRecall enables oracle-based recall measurement (it costs one
	// lossless matching pass per batch). Default true.
	ComputeRecall bool
	// Progress, when non-nil, receives a short line after each batch of
	// each approach (used by the CLI).
	Progress func(format string, args ...interface{})
	// Concurrent runs each approach on the concurrent engine (a pooled
	// work-stealing scheduler over the nodes) instead of the deterministic
	// sequential engine.
	Concurrent bool
	// Workers sizes the concurrent engine's scheduler pool (0 selects
	// GOMAXPROCS; capped at the node count). Ignored without Concurrent.
	Workers int
	// Delivery selects the replay delivery semantics: Quiescent (default)
	// drains the network after every event, Pipelined injects a whole
	// measurement round before draining, Windowed overlaps up to Lag+1
	// rounds in flight under watermark accounting. Pipelined or Windowed
	// together with Concurrent are the configurations that actually run in
	// parallel.
	Delivery netsim.DeliveryMode
	// Lag is the cross-round pipelining bound of the Windowed delivery
	// mode (ignored by the other modes; Windowed with Lag 0 behaves like
	// Pipelined). Nodes are built with the matching event-window validity
	// factor so late-arriving triggers still find their partners.
	Lag int
	// Churn is the fraction (in [0,1]) of each batch's subscriptions that
	// are retracted again after the batch's measurement rounds have been
	// replayed, modelling long-running query churn: later batches then run
	// against the surviving population only. Recall is computed against the
	// subscriptions active while each segment replayed. Zero (the default)
	// reproduces the paper's churn-free evaluation.
	Churn float64
}

// DefaultOptions returns the options used when nil is passed to Run.
func DefaultOptions() Options {
	return Options{ComputeRecall: true}
}

// Workload bundles everything generated for a scenario so that every
// approach replays exactly the same inputs.
type Workload struct {
	Scenario   Scenario
	Deployment *topology.Deployment
	Trace      *dataset.Trace
	Placed     []workload.Placed
	// Segments holds the event rounds replayed after each batch.
	Segments [][]model.Event
	// Expectations[b] is the oracle ground truth for segment b with the
	// subscriptions of batches 0..b active (filled lazily by Run when
	// recall is requested).
	Expectations []*oracle.Expectation
	// churnExpectations caches the ground truth of churned runs per
	// (batch, churn fraction); see churnExpectation.
	churnExpectations map[string]*oracle.Expectation
}

// BuildWorkload generates the deployment, trace and subscription workload of
// a scenario.
func BuildWorkload(s Scenario) (*Workload, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	dep, err := topology.GenerateDeployment(s.DeploymentConfig())
	if err != nil {
		return nil, fmt.Errorf("experiment: generating deployment: %w", err)
	}
	trace, err := dataset.Generate(dep, dataset.Config{
		Rounds:        s.TotalRounds(),
		RoundInterval: s.RoundInterval,
		Seed:          s.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: generating trace: %w", err)
	}
	placed, err := workload.Generate(dep, trace, workload.Config{
		Count:       s.TotalSubscriptions(),
		MinAttrs:    s.MinAttrs,
		MaxAttrs:    s.MaxAttrs,
		DeltaT:      s.RoundInterval,
		ParetoScale: s.ParetoScale,
		OffsetCap:   s.OffsetCap,
		Seed:        s.Seed + 2,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: generating workload: %w", err)
	}
	w := &Workload{
		Scenario:     s,
		Deployment:   dep,
		Trace:        trace,
		Placed:       placed,
		Expectations: make([]*oracle.Expectation, s.Batches),
	}
	// Split the trace rounds into one segment per batch (a segment is its
	// batch's rounds, flattened).
	for b := 0; b < s.Batches; b++ {
		var segment []model.Event
		for _, round := range w.RoundsForBatch(b) {
			segment = append(segment, round...)
		}
		w.Segments = append(w.Segments, segment)
	}
	return w, nil
}

// RoundsForBatch returns the measurement rounds replayed after the given
// batch, preserving the trace's round structure (Segments flattens them).
func (w *Workload) RoundsForBatch(batch int) [][]model.Event {
	start := batch * w.Scenario.RoundsPerBatch
	end := start + w.Scenario.RoundsPerBatch
	if end > len(w.Trace.ByRound) {
		end = len(w.Trace.ByRound)
	}
	if start > end {
		start = end
	}
	return w.Trace.ByRound[start:end]
}

// PublicationRounds returns the batch's measurement rounds converted to the
// runtime's replay representation, each event paired with the node hosting
// its sensor — ready to hand to Runtime.ReplayRounds.
func (w *Workload) PublicationRounds(batch int) [][]netsim.Publication {
	rounds := w.RoundsForBatch(batch)
	out := make([][]netsim.Publication, len(rounds))
	for r, events := range rounds {
		out[r] = make([]netsim.Publication, len(events))
		for i, ev := range events {
			out[r][i] = netsim.Publication{Node: w.Deployment.SensorHost[ev.Sensor], Event: ev}
		}
	}
	return out
}

// SubscriptionsUpTo returns the subscriptions of batches 0..batch inclusive.
func (w *Workload) SubscriptionsUpTo(batch int) []*model.Subscription {
	end := (batch + 1) * w.Scenario.BatchSize
	if end > len(w.Placed) {
		end = len(w.Placed)
	}
	out := make([]*model.Subscription, 0, end)
	for _, p := range w.Placed[:end] {
		out = append(out, p.Sub)
	}
	return out
}

// expectation returns (computing lazily) the oracle ground truth for the
// given batch.
func (w *Workload) expectation(batch int) *oracle.Expectation {
	if w.Expectations[batch] == nil {
		w.Expectations[batch] = oracle.Compute(w.SubscriptionsUpTo(batch), w.Segments[batch])
	}
	return w.Expectations[batch]
}

// churnCount returns how many of a batch's n subscriptions the churn
// schedule retires. The retraction loop in runApproach and the oracle
// schedule in survivorsForBatch must agree bit-for-bit on this count, so
// both call this helper.
func churnCount(n int, churn float64) int {
	return int(float64(n) * churn)
}

// survivorsForBatch returns the subscriptions active while the given batch's
// segment replays under the churn schedule: every subscription of the batch
// itself plus the not-yet-retired tail of each earlier batch (the first
// churnCount of a batch are retired after its segment). The schedule
// depends only on the workload and the churn fraction, never on the
// approach.
func (w *Workload) survivorsForBatch(batch int, churn float64) []*model.Subscription {
	var out []*model.Subscription
	for b := 0; b <= batch; b++ {
		start := b * w.Scenario.BatchSize
		end := start + w.Scenario.BatchSize
		if end > len(w.Placed) {
			end = len(w.Placed)
		}
		if start > end {
			start = end
		}
		placed := w.Placed[start:end]
		if b < batch {
			placed = placed[churnCount(len(placed), churn):]
		}
		for _, p := range placed {
			out = append(out, p.Sub)
		}
	}
	return out
}

// churnExpectation returns (computing lazily) the oracle ground truth for a
// batch under the churn schedule. The survivor population is identical for
// every approach, so the expectation is cached on the workload and computed
// once per (batch, churn) rather than once per approach.
func (w *Workload) churnExpectation(batch int, churn float64) *oracle.Expectation {
	key := fmt.Sprintf("%d|%g", batch, churn)
	if w.churnExpectations == nil {
		w.churnExpectations = map[string]*oracle.Expectation{}
	}
	if w.churnExpectations[key] == nil {
		w.churnExpectations[key] = oracle.Compute(w.survivorsForBatch(batch, churn), w.Segments[batch])
	}
	return w.churnExpectations[key]
}

// approachesFor resolves the approach list of a run.
func approachesFor(s Scenario, opts Options) []ApproachID {
	if len(opts.Approaches) > 0 {
		return opts.Approaches
	}
	ids := AllDistributed()
	if s.IncludeCentralized {
		ids = append([]ApproachID{Centralized}, ids...)
	}
	return ids
}

// Run executes the scenario for every requested approach on one shared
// workload and returns the per-approach measurement series.
func Run(s Scenario, opts *Options) (*Result, error) {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
		if opts.Approaches == nil {
			o.Approaches = nil
		}
	}
	w, err := BuildWorkload(s)
	if err != nil {
		return nil, err
	}
	return RunOnWorkload(w, o)
}

// RunOnWorkload executes the requested approaches against an already built
// workload (so callers can share one workload across runs, e.g. ablations).
func RunOnWorkload(w *Workload, o Options) (*Result, error) {
	s := w.Scenario
	result := &Result{Scenario: s}
	for _, id := range approachesFor(s, o) {
		series, err := runApproach(w, id, o)
		if err != nil {
			return nil, err
		}
		result.Approaches = append(result.Approaches, *series)
	}
	return result, nil
}

// runApproach runs one approach over the shared workload.
func runApproach(w *Workload, id ApproachID, o Options) (*ApproachSeries, error) {
	s := w.Scenario
	if o.Churn < 0 || o.Churn > 1 {
		return nil, fmt.Errorf("experiment: churn %g outside [0,1]", o.Churn)
	}
	factory, err := FactoryForSpec(id, FactorySpec{
		Seed:           s.Seed + 7,
		SetFilterError: s.SetFilterError,
		ValidityFactor: netsim.RequiredValidityFactor(o.Delivery, o.Lag),
	})
	if err != nil {
		return nil, err
	}
	var engine netsim.Runtime
	if o.Concurrent {
		conc := netsim.NewConcurrentEngineWorkers(w.Deployment.Graph, factory, o.Workers)
		defer conc.Close()
		engine = conc
	} else {
		engine = netsim.NewEngine(w.Deployment.Graph, factory)
	}

	// Attach (and, for distributed approaches, advertise) every sensor.
	sensorHosts := make([]model.Sensor, len(w.Deployment.Sensors))
	copy(sensorHosts, w.Deployment.Sensors)
	sort.Slice(sensorHosts, func(i, j int) bool { return sensorHosts[i].ID < sensorHosts[j].ID })
	for _, sensor := range sensorHosts {
		if err := engine.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
			return nil, fmt.Errorf("experiment: attaching %s: %w", sensor.ID, err)
		}
		engine.Flush()
	}

	// Under the windowed delivery mode the batches replay through one open
	// session (ReplayOptions.KeepOpen): nothing drains at a batch boundary,
	// so rounds of consecutive batches genuinely overlap in flight and
	// subscription injections of later batches join the stream. Traffic is
	// then attributed per lineage-round range (EventLoadForRounds /
	// SubscriptionLoadForRounds) and the points are finalized after the
	// closing flush — there is no quiescent instant mid-run to snapshot at.
	// The quiescent and pipelined modes drain between rounds by definition,
	// so they keep the snapshot-difference measurement (ReplayRounds already
	// returns quiescent; no extra flush is needed).
	windowed := o.Delivery == netsim.Windowed
	series := &ApproachSeries{Approach: id}
	roundsReplayed := 0
	// loRound[b], hiRound[b] is batch b's lineage-round range; boundary[b]
	// is the round current while batch b's subscriptions were injected.
	var loRound, hiRound, boundary []int
	for b := 0; b < s.Batches; b++ {
		// Inject this batch's subscriptions. Batch 0 always propagates to
		// quiescence (the session opens with the first replayed round);
		// later batches under windowed delivery join the open session.
		start := b * s.BatchSize
		end := start + s.BatchSize
		if end > len(w.Placed) {
			end = len(w.Placed)
		}
		batch := w.Placed[start:end]
		boundary = append(boundary, roundsReplayed)
		for _, p := range batch {
			if err := engine.Subscribe(p.Node, p.Sub); err != nil {
				return nil, fmt.Errorf("experiment: subscribing %s: %w", p.Sub.ID, err)
			}
			if !windowed || b == 0 {
				engine.Flush()
			}
		}
		// Replay this batch's measurement rounds under the configured
		// delivery semantics.
		rounds := w.PublicationRounds(b)
		loRound = append(loRound, roundsReplayed+1)
		roundsReplayed += len(rounds)
		hiRound = append(hiRound, roundsReplayed)
		var before netsim.Snapshot
		if !windowed {
			before = engine.Metrics().Snapshot()
		}
		opts := netsim.ReplayOptions{Mode: o.Delivery, Lag: o.Lag, KeepOpen: windowed}
		if err := engine.ReplayRounds(rounds, opts); err != nil {
			return nil, fmt.Errorf("experiment: replaying batch %d: %w", b, err)
		}
		point := SeriesPoint{InjectedQueries: end, Recall: 1}
		if !windowed {
			after := engine.Metrics().Snapshot()
			point.SubscriptionLoad = after.SubscriptionLoad
			point.EventLoad = after.Diff(before).EventLoad
			if o.ComputeRecall {
				point.Recall = batchRecall(w, b, o, engine)
			}
		}
		// Retract this batch's churned fraction (oldest first, the schedule
		// survivorsForBatch mirrors) now that its segment has replayed;
		// later batches run against the survivors. Under windowed delivery
		// the retractions join the open session like the subscriptions do.
		if k := churnCount(len(batch), o.Churn); k > 0 {
			for _, p := range batch[:k] {
				if err := engine.Unsubscribe(p.Node, p.Sub.ID); err != nil {
					return nil, fmt.Errorf("experiment: unsubscribing %s: %w", p.Sub.ID, err)
				}
				if !windowed {
					engine.Flush()
				}
			}
		}
		series.Points = append(series.Points, point)
		if o.Progress != nil && !windowed {
			o.Progress("%-24s %-22s queries=%4d  sub-load=%7d  event-load=%8d  recall=%.3f",
				s.Name, id, point.InjectedQueries, point.SubscriptionLoad, point.EventLoad, point.Recall)
		}
	}
	if windowed {
		// Close the session, then finalize every point from the per-round
		// attribution: EventLoad is the batch's own round range, the
		// cumulative SubscriptionLoad after batch b is everything up to and
		// including its injection boundary, and recall is computed against
		// the complete delivery record (segments have disjoint sequence
		// numbers, so late-arriving deliveries land in their own batch's
		// expectation).
		engine.Flush()
		m := engine.Metrics()
		for b := range series.Points {
			point := &series.Points[b]
			point.EventLoad = m.EventLoadForRounds(loRound[b], hiRound[b])
			point.SubscriptionLoad = m.SubscriptionLoadForRounds(0, boundary[b])
			if o.ComputeRecall {
				point.Recall = batchRecall(w, b, o, engine)
			}
			if o.Progress != nil {
				o.Progress("%-24s %-22s queries=%4d  sub-load=%7d  event-load=%8d  recall=%.3f",
					s.Name, id, point.InjectedQueries, point.SubscriptionLoad, point.EventLoad, point.Recall)
			}
		}
	}
	return series, nil
}

// batchRecall measures the end-user recall of one batch's segment. The plain
// expectation assumes every injected subscription is still active; under
// churn the ground truth is the surviving population instead (cached across
// approaches — the schedule is approach-independent).
func batchRecall(w *Workload, b int, o Options, engine netsim.Runtime) float64 {
	var exp *oracle.Expectation
	if o.Churn > 0 {
		exp = w.churnExpectation(b, o.Churn)
	} else {
		exp = w.expectation(b)
	}
	return exp.Recall(engine.Metrics().DeliveredSeqs)
}
