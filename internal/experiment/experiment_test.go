package experiment

import (
	"testing"

	"sensorcq/internal/netsim"
)

func TestScenarioDefinitionsMatchPaper(t *testing.T) {
	small := SmallScale()
	if small.TotalNodes != 60 || small.SensorNodes != 50 || small.Groups != 10 {
		t.Error("small-scale network shape wrong")
	}
	if small.TotalSubscriptions() != 1000 || small.MinAttrs != 3 || small.MaxAttrs != 5 {
		t.Error("small-scale workload wrong")
	}
	medium := MediumScale()
	if medium.TotalNodes != 100 || medium.SensorNodes != 50 || !medium.IncludeCentralized {
		t.Error("medium-scale definition wrong")
	}
	if medium.TotalSubscriptions() != 900 || medium.MinAttrs != 5 {
		t.Error("medium-scale workload wrong")
	}
	ln := LargeScaleNetwork()
	if ln.TotalNodes != 200 || ln.SensorNodes != 50 || ln.Groups != 10 {
		t.Error("large-scale-network definition wrong")
	}
	ls := LargeScaleSources()
	if ls.TotalNodes != 200 || ls.SensorNodes != 100 || ls.Groups != 20 {
		t.Error("large-scale-sources definition wrong")
	}
	if len(AllScenarios()) != 4 {
		t.Error("expected 4 scenarios")
	}
	for _, s := range AllScenarios() {
		if err := s.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", s.Name, err)
		}
	}
}

func TestScenarioScaleAndValidate(t *testing.T) {
	s := SmallScale().Scale(0.5, 0.1, 0.5)
	if s.Batches != 5 || s.BatchSize != 10 || s.RoundsPerBatch != 4 {
		t.Errorf("scaled scenario = %+v", s)
	}
	if s.TotalNodes != 60 {
		t.Error("network shape must not be scaled")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled scenario invalid: %v", err)
	}
	bad := Scenario{}
	if err := bad.Validate(); err == nil {
		t.Error("empty scenario should be invalid")
	}
	q := QuickScale(MediumScale())
	if q.Batches != 4 || q.BatchSize != 25 || q.RoundsPerBatch != 3 {
		t.Error("QuickScale wrong")
	}
}

func TestFactoryForAllApproaches(t *testing.T) {
	for _, id := range All() {
		f, err := FactoryFor(id, 1, 0)
		if err != nil || f == nil {
			t.Errorf("FactoryFor(%s) failed: %v", id, err)
		}
	}
	if _, err := FactoryFor("bogus", 1, 0); err == nil {
		t.Error("unknown approach should fail")
	}
	if len(All()) != 5 || len(AllDistributed()) != 4 {
		t.Error("approach lists wrong")
	}
	if IsDeterministicLossless(FilterSplitForward) || !IsDeterministicLossless(Naive) {
		t.Error("IsDeterministicLossless wrong")
	}
}

func TestBuildWorkloadSegments(t *testing.T) {
	s := QuickScale(SmallScale())
	w, err := BuildWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Segments) != s.Batches {
		t.Fatalf("segments = %d, want %d", len(w.Segments), s.Batches)
	}
	for b, seg := range w.Segments {
		if len(seg) != s.RoundsPerBatch*s.SensorNodes {
			t.Errorf("segment %d has %d events, want %d", b, len(seg), s.RoundsPerBatch*s.SensorNodes)
		}
	}
	if len(w.Placed) != s.TotalSubscriptions() {
		t.Errorf("placed subscriptions = %d", len(w.Placed))
	}
	if got := len(w.SubscriptionsUpTo(1)); got != 2*s.BatchSize {
		t.Errorf("SubscriptionsUpTo(1) = %d", got)
	}
}

// TestQuickSmallScaleRun is the integration test of the whole pipeline: it
// runs a scaled-down version of the small-scale experiment for all four
// distributed approaches and checks the orderings the paper reports.
func TestQuickSmallScaleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run skipped in -short mode")
	}
	s := QuickScale(SmallScale())
	res, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Approaches) != 4 {
		t.Fatalf("expected 4 approaches, got %d", len(res.Approaches))
	}
	get := func(id ApproachID) SeriesPoint {
		series := res.SeriesFor(id)
		if series == nil {
			t.Fatalf("missing series for %s", id)
		}
		if len(series.Points) != s.Batches {
			t.Fatalf("%s has %d points, want %d", id, len(series.Points), s.Batches)
		}
		return series.Final()
	}
	naiveF := get(Naive)
	opF := get(OperatorPlacement)
	mjF := get(MultiJoin)
	fsfF := get(FilterSplitForward)

	// Subscription load ordering (Fig. 4): naive is worst, FSF best.
	if !(fsfF.SubscriptionLoad <= opF.SubscriptionLoad && opF.SubscriptionLoad <= naiveF.SubscriptionLoad) {
		t.Errorf("subscription load ordering violated: fsf=%d op=%d naive=%d",
			fsfF.SubscriptionLoad, opF.SubscriptionLoad, naiveF.SubscriptionLoad)
	}
	if fsfF.SubscriptionLoad >= naiveF.SubscriptionLoad {
		t.Errorf("FSF should forward strictly fewer subscriptions than naive: %d vs %d",
			fsfF.SubscriptionLoad, naiveF.SubscriptionLoad)
	}
	// Event load ordering (Fig. 5): naive worst, FSF best.
	if !(fsfF.EventLoad <= mjF.EventLoad && mjF.EventLoad <= naiveF.EventLoad) {
		t.Errorf("event load ordering violated: fsf=%d mj=%d naive=%d",
			fsfF.EventLoad, mjF.EventLoad, naiveF.EventLoad)
	}
	if !(opF.EventLoad <= naiveF.EventLoad) {
		t.Errorf("operator placement should not exceed naive event load: %d vs %d",
			opF.EventLoad, naiveF.EventLoad)
	}
	// Loads grow with the number of injected subscriptions.
	series := res.SeriesFor(Naive)
	for i := 1; i < len(series.Points); i++ {
		if series.Points[i].SubscriptionLoad < series.Points[i-1].SubscriptionLoad {
			t.Error("cumulative subscription load must be non-decreasing")
		}
	}
	// Recall: deterministic approaches stay essentially perfect; FSF stays
	// above the ~93% the paper reports.
	for _, id := range []ApproachID{Naive, OperatorPlacement, MultiJoin} {
		if r := get(id).Recall; r < 0.97 {
			t.Errorf("%s recall = %.3f, want ~1", id, r)
		}
	}
	if r := fsfF.Recall; r < 0.90 {
		t.Errorf("FSF recall = %.3f, want >= 0.90", r)
	}
}

// TestChurnRun exercises the subscription-churn option: retracting half of
// each batch after its segment replayed must keep the run valid (recall in
// range against the surviving population) and must shed event traffic on
// later batches compared to a churn-free run of the same workload.
func TestChurnRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run skipped in -short mode")
	}
	s := QuickScale(SmallScale())
	w, err := BuildWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Approaches = []ApproachID{OperatorPlacement, FilterSplitForward}
	steady, err := RunOnWorkload(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Churn = 0.5
	churned, err := RunOnWorkload(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range opts.Approaches {
		base := steady.SeriesFor(id)
		got := churned.SeriesFor(id)
		if base == nil || got == nil || len(got.Points) != s.Batches {
			t.Fatalf("%s: missing series", id)
		}
		for i, p := range got.Points {
			if p.Recall < 0 || p.Recall > 1 {
				t.Errorf("%s batch %d: recall %f out of range", id, i, p.Recall)
			}
		}
		// The first batch replays before any retraction, so its event load
		// matches the steady run; the final batch runs against roughly half
		// the population and must be strictly cheaper.
		if got.Points[0].EventLoad != base.Points[0].EventLoad {
			t.Errorf("%s: batch-0 event load %d differs from churn-free %d",
				id, got.Points[0].EventLoad, base.Points[0].EventLoad)
		}
		if got.Final().EventLoad >= base.Final().EventLoad {
			t.Errorf("%s: final event load %d not below churn-free %d",
				id, got.Final().EventLoad, base.Final().EventLoad)
		}
	}
	opts.Churn = 1.5
	if _, err := RunOnWorkload(w, opts); err == nil {
		t.Error("churn outside [0,1] should be rejected")
	}
}

// TestWindowedRunSpansBatches exercises the open-session windowed harness:
// under Delivery=Windowed the batches replay through one KeepOpen session —
// no drain at batch boundaries, later batches' subscriptions join the
// in-flight stream — and the series points are finalized from the per-round
// traffic attribution after the closing flush. The sequential engine is
// deterministic, so two runs must agree exactly; the points must carry a
// sane, monotone traffic series and a recall measured against the oracle.
func TestWindowedRunSpansBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run skipped in -short mode")
	}
	s := QuickScale(SmallScale())
	w, err := BuildWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Approaches = []ApproachID{OperatorPlacement, FilterSplitForward}
	opts.Delivery = netsim.Windowed
	opts.Lag = 2

	run1, err := RunOnWorkload(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	run2, err := RunOnWorkload(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	quiescent, err := RunOnWorkload(w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	for _, id := range opts.Approaches {
		series := run1.SeriesFor(id)
		again := run2.SeriesFor(id)
		base := quiescent.SeriesFor(id)
		if series == nil || again == nil || base == nil || len(series.Points) != s.Batches {
			t.Fatalf("%s: missing or truncated series", id)
		}
		var prevSubLoad int64
		var total, baseTotal int64
		for i, p := range series.Points {
			if again.Points[i] != p {
				t.Errorf("%s batch %d: windowed run not deterministic: %+v vs %+v", id, i, p, again.Points[i])
			}
			if p.EventLoad <= 0 {
				t.Errorf("%s batch %d: event load %d, want > 0", id, i, p.EventLoad)
			}
			if p.SubscriptionLoad < prevSubLoad {
				t.Errorf("%s batch %d: subscription load %d regressed below %d", id, i, p.SubscriptionLoad, prevSubLoad)
			}
			prevSubLoad = p.SubscriptionLoad
			if p.Recall < 0 || p.Recall > 1 {
				t.Errorf("%s batch %d: recall %f out of range", id, i, p.Recall)
			}
			total += p.EventLoad
			baseTotal += base.Points[i].EventLoad
		}
		// Batch 0 subscribes to quiescence before the session opens, so its
		// recall is not degraded by mid-stream registration.
		if r := series.Points[0].Recall; r < 0.95 {
			t.Errorf("%s: batch-0 windowed recall = %.3f, want >= 0.95", id, r)
		}
		// Mid-stream subscriptions may miss early matches of their own
		// batch, so the windowed totals can undershoot the quiescent run —
		// but they must stay in its neighbourhood, not collapse.
		if total < baseTotal/2 || total > baseTotal*2 {
			t.Errorf("%s: windowed total event load %d far from quiescent %d", id, total, baseTotal)
		}
	}
}
