package experiment

import (
	"sort"
	"testing"

	"sensorcq/internal/core"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/oracle"
	"sensorcq/internal/protocol/fsf"
	"sensorcq/internal/subsume"
)

// TestFSFRecallTrafficTradeoff is the Fig. 12 regression: running
// Filter-Split-Forward with increasingly permissive set-filter error
// probabilities must trade recall for traffic monotonically. Error
// probability 0 is realised by the exact set-subsumption checker, under
// which filtering loses nothing: a correctly detected covered subscription
// has every complex event matched by some member of the covering set.
//
// The exact-checker run is the baseline rather than absolute recall 1:
// the distributed protocols gate event forwarding on operator completeness
// within each subtree (Algorithm 5), so on dense workloads whose group
// regions span several subtrees even the deterministic approaches miss
// cross-subtree combinations the global oracle finds. Fig. 12 reports the
// additional, filter-induced degradation — which is what this test pins.
func TestFSFRecallTrafficTradeoff(t *testing.T) {
	// Few groups and a fixed five-attribute signature concentrate many
	// comparable subscriptions per (group, signature) population, which is
	// what makes the probabilistic set filter actually fire (and
	// occasionally err) instead of trivially answering "not subsumed".
	s := Scenario{
		Name:           "recall-regression",
		TotalNodes:     40,
		SensorNodes:    25,
		Groups:         2,
		Batches:        2,
		BatchSize:      50,
		MinAttrs:       5,
		MaxAttrs:       5,
		RoundsPerBatch: 4,
		RoundInterval:  1800,
		Seed:           205,
	}
	w, err := BuildWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	var events []model.Event
	for _, segment := range w.Segments {
		events = append(events, segment...)
	}
	subs := w.SubscriptionsUpTo(s.Batches - 1)
	exp := oracle.Compute(subs, events)
	if exp.TotalExpected() == 0 {
		t.Fatal("oracle expects no deliveries; the regression is vacuous")
	}

	type outcome struct {
		recall float64
		load   int64
	}
	run := func(factory netsim.HandlerFactory) outcome {
		engine := netsim.NewEngine(w.Deployment.Graph, factory)
		sensors := make([]model.Sensor, len(w.Deployment.Sensors))
		copy(sensors, w.Deployment.Sensors)
		sort.Slice(sensors, func(i, j int) bool { return sensors[i].ID < sensors[j].ID })
		for _, sensor := range sensors {
			if err := engine.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range w.Placed {
			if err := engine.Subscribe(p.Node, p.Sub.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		batch := make([]netsim.Publication, len(events))
		for i, ev := range events {
			batch[i] = netsim.Publication{Node: w.Deployment.SensorHost[ev.Sensor], Event: ev}
		}
		if err := engine.PublishBatch(batch); err != nil {
			t.Fatal(err)
		}
		return outcome{
			recall: exp.Recall(engine.Metrics().DeliveredSeqs),
			load:   engine.Metrics().EventLoad(),
		}
	}

	exact := run(core.NewFactory(core.Config{
		Name:        "filter-split-forward/exact",
		Checker:     subsume.ExactChecker{},
		Split:       core.SplitSimple,
		Propagation: core.PerNeighbor,
	}))
	p01 := run(fsf.NewFactoryWithError(0.01, s.Seed+7))
	// Since event forwarding enumerates every completed match, a falsely
	// subsumed operator only loses events that no member of its covering set
	// matches — low error probabilities mostly drop near-covered operators
	// whose uncovered volume sees no events on this trace, so the observable
	// degradation starts at a much more permissive setting than before.
	p40 := run(fsf.NewFactoryWithError(0.4, s.Seed+7))

	t.Logf("recall: exact=%.4f p=0.01=%.4f p=0.4=%.4f", exact.recall, p01.recall, p40.recall)
	t.Logf("event load: exact=%d p=0.01=%d p=0.4=%d", exact.load, p01.load, p40.load)

	if exact.recall < 0.5 {
		t.Errorf("exact-checker baseline recall = %.4f; workload looks degenerate", exact.recall)
	}
	// Recall may only degrade as the filter gets more permissive.
	if p01.recall > exact.recall+1e-9 {
		t.Errorf("recall(p=0.01)=%.4f exceeds recall(exact)=%.4f", p01.recall, exact.recall)
	}
	if p40.recall > p01.recall+1e-9 {
		t.Errorf("recall(p=0.4)=%.4f exceeds recall(p=0.01)=%.4f", p40.recall, p01.recall)
	}
	// The test must not pass vacuously: on this seed the permissive filter
	// does make false-positive coverage decisions and loses events.
	if p40.recall >= exact.recall {
		t.Errorf("recall(p=0.4)=%.4f did not degrade below the exact baseline %.4f; the trade-off is not exercised", p40.recall, exact.recall)
	}
	// Traffic shrinks as the filter gets more permissive — the other side
	// of the Fig. 12 trade-off. Dropping an operator changes the filter
	// sets downstream decisions are made against, so per-seed totals are
	// monotone only up to that second-order effect; allow 2% for it.
	if p01.load > exact.load {
		t.Errorf("event load(p=0.01)=%d exceeds load(exact)=%d", p01.load, exact.load)
	}
	if float64(p40.load) > float64(p01.load)*1.02 {
		t.Errorf("event load(p=0.4)=%d exceeds load(p=0.01)=%d beyond tolerance", p40.load, p01.load)
	}
	if p40.load > exact.load {
		t.Errorf("event load(p=0.4)=%d exceeds load(exact)=%d", p40.load, exact.load)
	}
}
