package experiment

import "testing"

// aggSweepScenario is a small deterministic network for the error-vs-traffic
// tests: big enough that the chosen subscriber sits several hops from the
// sensors (the acceptance criterion wants partials climbing a depth >= 3
// dissemination tree), small enough to replay in milliseconds.
func aggSweepScenario() Scenario {
	return Scenario{
		Name:           "agg-sweep",
		TotalNodes:     30,
		SensorNodes:    18,
		Groups:         5,
		Batches:        2,
		BatchSize:      12,
		MinAttrs:       2,
		MaxAttrs:       4,
		RoundsPerBatch: 6,
		RoundInterval:  1800,
		Seed:           7,
	}
}

// TestAggregateSweepErrorTrafficTradeoff is the acceptance criterion of the
// in-network aggregation subsystem: on a depth >= 3 dissemination tree, a
// windowed quantile query answered by merging q-digest partials up the tree
// must ship measurably fewer upstream messages than the ship-every-reading
// exact baseline, while every delivered quantile stays within the sketch's
// configured rank-error bound ε = Bits/k of the trace oracle.
func TestAggregateSweepErrorTrafficTradeoff(t *testing.T) {
	sweep, err := RunAggregateSweep(AggregateSweepConfig{
		Scenario:     aggSweepScenario(),
		WindowRounds: 3,
		Ks:           []int{16, 32, 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.TreeDepth < 3 {
		t.Fatalf("subscriber %d sits %d hops from the farthest sensor; the acceptance criterion needs depth >= 3",
			sweep.Subscriber, sweep.TreeDepth)
	}
	if sweep.Readings == 0 || sweep.ExactLoad == 0 {
		t.Fatalf("vacuous sweep: %d matching readings, exact baseline shipped %d messages", sweep.Readings, sweep.ExactLoad)
	}
	if len(sweep.Points) != 3 {
		t.Fatalf("got %d sweep points, want 3", len(sweep.Points))
	}
	var prevBytes int64
	for _, p := range sweep.Points {
		if p.Windows == 0 {
			t.Fatalf("k=%d delivered no windows", p.K)
		}
		// The tentpole claim: in-network merging ships one partial per tree
		// edge per window instead of one relay per reading per hop, so the
		// sketch runs must undercut the exact baseline by a wide margin —
		// require at least 2x, far from a rounding artefact.
		if 2*p.PartialLoad >= sweep.ExactLoad {
			t.Errorf("k=%d shipped %d partials; not measurably below the exact baseline's %d",
				p.K, p.PartialLoad, sweep.ExactLoad)
		}
		// The accuracy claim: the observed per-window rank error never
		// exceeds the q-digest bound ε = Bits/k.
		if p.MaxRankError > p.Epsilon {
			t.Errorf("k=%d: max rank error %.4f exceeds the configured bound ε=%.4f", p.K, p.MaxRankError, p.Epsilon)
		}
		// Less compression (larger k) never shrinks the shipped sketches.
		if p.PartialBytes < prevBytes {
			t.Errorf("k=%d shipped %d bytes, fewer than the previous (smaller) k's %d", p.K, p.PartialBytes, prevBytes)
		}
		prevBytes = p.PartialBytes
	}
}

// TestAggregateSweepEnginesAgree replays the same sweep point on both
// engines; the sequential and concurrent runtimes must measure identical
// traffic and identical rank errors.
func TestAggregateSweepEnginesAgree(t *testing.T) {
	cfg := AggregateSweepConfig{Scenario: aggSweepScenario(), WindowRounds: 3, Ks: []int{32}}
	seq, err := RunAggregateSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Concurrent = true
	conc, err := RunAggregateSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.ExactLoad != conc.ExactLoad || seq.ExactBytes != conc.ExactBytes {
		t.Errorf("exact baseline traffic: sequential %d msgs/%d bytes, concurrent %d msgs/%d bytes",
			seq.ExactLoad, seq.ExactBytes, conc.ExactLoad, conc.ExactBytes)
	}
	s, c := seq.Points[0], conc.Points[0]
	if s.PartialLoad != c.PartialLoad || s.PartialBytes != c.PartialBytes {
		t.Errorf("sketch traffic: sequential %d msgs/%d bytes, concurrent %d msgs/%d bytes",
			s.PartialLoad, s.PartialBytes, c.PartialLoad, c.PartialBytes)
	}
	if s.MaxRankError != c.MaxRankError || s.MeanRankError != c.MeanRankError || s.Windows != c.Windows {
		t.Errorf("sketch accuracy: sequential max=%.6f mean=%.6f over %d windows, concurrent max=%.6f mean=%.6f over %d windows",
			s.MaxRankError, s.MeanRankError, s.Windows, c.MaxRankError, c.MeanRankError, c.Windows)
	}
}
