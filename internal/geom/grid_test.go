package geom

import (
	"sort"
	"testing"

	"sensorcq/internal/stats"
)

func queryLinear(pts []Point2D, r Region) []int {
	var out []int
	for i, p := range pts {
		if r.Contains(p) {
			out = append(out, i)
		}
	}
	return out
}

func queryGrid(g *PointGrid, r Region) []int {
	var out []int
	g.Query(r, func(h int) bool {
		out = append(out, h)
		return true
	})
	sort.Ints(out)
	return out
}

// TestPointGridMatchesLinearScan is the quick-check property test: random
// point populations and random query regions (including degenerate, empty
// and unbounded ones) report exactly what a linear scan reports.
func TestPointGridMatchesLinearScan(t *testing.T) {
	rng := stats.NewRNG(4321)
	for trial := 0; trial < 30; trial++ {
		n := 1 + int(rng.Uint64()%300)
		g := &PointGrid{}
		pts := make([]Point2D, 0, n)
		for i := 0; i < n; i++ {
			p := Point2D{X: rng.Range(-500, 500), Y: rng.Range(-500, 500)}
			pts = append(pts, p)
			g.Add(p, i)
		}
		regions := []Region{
			WholePlane(),
			{X: Interval{Min: 1, Max: 0}, Y: Interval{Min: 0, Max: 1}}, // empty
			RegionAround(pts[0], 0), // degenerate point region on a stored point
		}
		for i := 0; i < 30; i++ {
			x0 := rng.Range(-600, 600)
			y0 := rng.Range(-600, 600)
			regions = append(regions, NewRegion(x0, y0, x0+rng.Range(0, 400), y0+rng.Range(0, 400)))
		}
		for _, r := range regions {
			want := queryLinear(pts, r)
			got := queryGrid(g, r)
			if !equalInts(got, want) {
				t.Fatalf("trial %d: query(%v) = %d hits, want %d", trial, r, len(got), len(want))
			}
		}
	}
}

// TestPointGridIncrementalAdds interleaves insertions and queries to
// exercise the lazy rebuild path.
func TestPointGridIncrementalAdds(t *testing.T) {
	rng := stats.NewRNG(7)
	g := &PointGrid{}
	var pts []Point2D
	for i := 0; i < 100; i++ {
		p := Point2D{X: rng.Range(0, 100), Y: rng.Range(0, 100)}
		pts = append(pts, p)
		g.Add(p, i)
		if i%9 == 0 {
			r := RegionAround(Point2D{X: rng.Range(0, 100), Y: rng.Range(0, 100)}, rng.Range(0, 40))
			if !equalInts(queryGrid(g, r), queryLinear(pts, r)) {
				t.Fatalf("after %d adds: query diverged from linear scan", i+1)
			}
		}
	}
	if g.Len() != len(pts) {
		t.Errorf("Len() = %d, want %d", g.Len(), len(pts))
	}
}

// TestPointGridDuplicateCoordinates stores many points at the same location.
func TestPointGridDuplicateCoordinates(t *testing.T) {
	g := &PointGrid{}
	p := Point2D{X: 3, Y: 4}
	for i := 0; i < 10; i++ {
		g.Add(p, i)
	}
	got := queryGrid(g, RegionAround(p, 1))
	if len(got) != 10 {
		t.Errorf("duplicate-coordinate query found %d points, want 10", len(got))
	}
}

// TestPointGridEarlyStop checks that a false return from fn stops the query.
func TestPointGridEarlyStop(t *testing.T) {
	g := &PointGrid{}
	for i := 0; i < 10; i++ {
		g.Add(Point2D{X: float64(i), Y: 0}, i)
	}
	calls := 0
	g.Query(WholePlane(), func(int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop visited %d points, want 1", calls)
	}
}
