package geom

import (
	"testing"
)

func box(pairs ...interface{}) Box {
	b := NewBox()
	for i := 0; i+2 < len(pairs); i += 3 {
		b = b.Set(pairs[i].(string), NewInterval(toF(pairs[i+1]), toF(pairs[i+2])))
	}
	return b
}

func toF(v interface{}) float64 {
	switch x := v.(type) {
	case int:
		return float64(x)
	case float64:
		return x
	}
	panic("bad literal")
}

func TestBoxDimsAndClone(t *testing.T) {
	b := box("temp", 0, 10, "hum", 20, 30)
	dims := b.Dims()
	if len(dims) != 2 || dims[0] != "hum" || dims[1] != "temp" {
		t.Fatalf("Dims() = %v", dims)
	}
	if b.NumDims() != 2 {
		t.Fatalf("NumDims() = %d", b.NumDims())
	}
	c := b.Clone()
	c = c.Set("temp", NewInterval(100, 200))
	if iv, _ := b.Get("temp"); iv.Max != 10 {
		t.Error("Clone should not alias the original")
	}
}

func TestBoxCovers(t *testing.T) {
	outer := box("a", 0, 100, "b", 0, 100)
	inner := box("a", 10, 20, "b", 30, 40)
	if !outer.Covers(inner) {
		t.Error("outer should cover inner")
	}
	if inner.Covers(outer) {
		t.Error("inner should not cover outer")
	}
	// Different dimension sets never cover (missing attribute means
	// "unrequested", not "anything").
	widerButFewer := box("a", -1000, 1000)
	if widerButFewer.Covers(inner) {
		t.Error("box over fewer dimensions must not cover")
	}
	if inner.Covers(widerButFewer) {
		t.Error("box over more dimensions must not cover")
	}
}

func TestBoxOverlapsIntersectVolume(t *testing.T) {
	a := box("x", 0, 10, "y", 0, 10)
	b := box("x", 5, 15, "y", 5, 15)
	c := box("x", 20, 30, "y", 20, 30)
	if !a.Overlaps(b) {
		t.Error("a and b overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c do not overlap")
	}
	x, ok := a.Intersect(b)
	if !ok {
		t.Fatal("intersection should exist")
	}
	if x.Volume() != 25 {
		t.Errorf("intersection volume = %g, want 25", x.Volume())
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("intersection of disjoint boxes should not exist")
	}
	if _, ok := a.Intersect(box("x", 0, 1)); ok {
		t.Error("intersection across different dimension sets should not exist")
	}
	if a.Volume() != 100 {
		t.Errorf("volume = %g, want 100", a.Volume())
	}
}

func TestBoxContainsPoint(t *testing.T) {
	b := box("x", 0, 10, "y", 0, 10)
	if !b.ContainsPoint(map[string]float64{"x": 5, "y": 5}) {
		t.Error("point inside should be contained")
	}
	if b.ContainsPoint(map[string]float64{"x": 5, "y": 15}) {
		t.Error("point outside should not be contained")
	}
	if b.ContainsPoint(map[string]float64{"x": 5}) {
		t.Error("point missing a dimension should not be contained")
	}
}

func TestBoxCorners(t *testing.T) {
	b := box("x", 0, 1, "y", 10, 20)
	seen := map[[2]float64]bool{}
	b.Corners(func(pt map[string]float64) bool {
		seen[[2]float64{pt["x"], pt["y"]}] = true
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("expected 4 corners, got %d", len(seen))
	}
	for _, c := range [][2]float64{{0, 10}, {0, 20}, {1, 10}, {1, 20}} {
		if !seen[c] {
			t.Errorf("missing corner %v", c)
		}
	}
	// Early stop.
	count := 0
	b.Corners(func(pt map[string]float64) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d corners, want 1", count)
	}
}

func TestBoxEmptyAndString(t *testing.T) {
	if NewBox().Empty() {
		t.Error("zero-dimensional box is not empty")
	}
	e := NewBox().Set("x", Interval{5, 1})
	if !e.Empty() {
		t.Error("box with an empty dimension is empty")
	}
	s := box("a", 0, 1, "b", 2, 3).String()
	if s != "box{a=[0, 1], b=[2, 3]}" {
		t.Errorf("String() = %q", s)
	}
}
