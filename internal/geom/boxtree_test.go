package geom

import (
	"math"
	"sort"
	"testing"

	"sensorcq/internal/stats"
)

// btRef is the brute-force reference: a flat list of live boxes.
type btRef struct {
	boxes   map[int][]Interval
	nextKey int
}

func (r *btRef) stab(pt []float64) []int {
	var out []int
	for h, box := range r.boxes {
		ok := true
		for d, iv := range box {
			if !iv.Contains(pt[d]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, h)
		}
	}
	sort.Ints(out)
	return out
}

func collectStab(t *BoxTree, pt []float64) []int {
	var out []int
	t.Stab(pt, func(h int) bool {
		out = append(out, h)
		return true
	})
	sort.Ints(out)
	return out
}

// TestBoxTreeChurnMatchesLinearScan drives random interleaved insert, remove
// and stab operations across dimensionalities (including unbounded and
// degenerate boxes) and checks every stab against the brute-force scan. This
// is the structure's core contract: incremental maintenance must be
// indistinguishable from a fresh index over the live population.
func TestBoxTreeChurnMatchesLinearScan(t *testing.T) {
	rng := stats.NewRNG(1234)
	for _, dims := range []int{1, 2, 3} {
		tree := NewBoxTree(dims)
		ref := &btRef{boxes: map[int][]Interval{}}
		tokens := map[int]int32{}
		var liveKeys []int

		randBox := func() []Interval {
			box := make([]Interval, dims)
			for d := range box {
				switch {
				case rng.Bool(0.1): // unbounded dimension
					box[d] = Interval{Min: math.Inf(-1), Max: math.Inf(1)}
				case rng.Bool(0.05): // degenerate point
					v := rng.Range(-100, 100)
					box[d] = Point(v)
				default:
					lo := rng.Range(-100, 100)
					box[d] = NewInterval(lo, lo+rng.Range(0, 40))
				}
			}
			return box
		}
		randPt := func() []float64 {
			pt := make([]float64, dims)
			for d := range pt {
				pt[d] = rng.Range(-110, 110)
			}
			return pt
		}

		for step := 0; step < 4000; step++ {
			switch {
			case len(liveKeys) == 0 || rng.Bool(0.45): // insert
				key := ref.nextKey
				ref.nextKey++
				box := randBox()
				tok := tree.Insert(box, key)
				if tok < 0 {
					t.Fatalf("dims=%d: non-empty box rejected", dims)
				}
				tokens[key] = tok
				ref.boxes[key] = box
				liveKeys = append(liveKeys, key)
			case rng.Bool(0.5): // remove
				i := rng.Intn(len(liveKeys))
				key := liveKeys[i]
				liveKeys[i] = liveKeys[len(liveKeys)-1]
				liveKeys = liveKeys[:len(liveKeys)-1]
				tree.Remove(tokens[key])
				delete(tokens, key)
				delete(ref.boxes, key)
			default: // stab
				pt := randPt()
				got := collectStab(tree, pt)
				want := ref.stab(pt)
				if !equalInts(got, want) {
					t.Fatalf("dims=%d step=%d: stab(%v) = %v, want %v", dims, step, pt, got, want)
				}
			}
			if tree.Len() != len(ref.boxes) {
				t.Fatalf("dims=%d step=%d: Len() = %d, want %d", dims, step, tree.Len(), len(ref.boxes))
			}
		}
		// Final sweep: a batch of stabs over the surviving population.
		for q := 0; q < 200; q++ {
			pt := randPt()
			if got, want := collectStab(tree, pt), ref.stab(pt); !equalInts(got, want) {
				t.Fatalf("dims=%d final: stab(%v) = %v, want %v", dims, pt, got, want)
			}
		}
	}
}

// TestBoxTreeEmptyBoxIgnored pins the empty-dimension contract: such a box is
// not stored, its token is negative, and removing that token is a no-op.
func TestBoxTreeEmptyBoxIgnored(t *testing.T) {
	tree := NewBoxTree(2)
	tok := tree.Insert([]Interval{{Min: 1, Max: 0}, NewInterval(0, 1)}, 7)
	if tok >= 0 {
		t.Fatalf("empty box got token %d, want negative", tok)
	}
	if tree.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tree.Len())
	}
	tree.Remove(tok) // must not panic or corrupt
	if tok2 := tree.Insert([]Interval{NewInterval(0, 2), NewInterval(0, 2)}, 8); tok2 < 0 {
		t.Fatal("non-empty box rejected after empty insert")
	}
	if got := collectStab(tree, []float64{1, 1}); !equalInts(got, []int{8}) {
		t.Fatalf("stab = %v, want [8]", got)
	}
}

// TestBoxTreeStaysBalanced checks that the incremental rotations keep the
// tree logarithmic through a sequence sorted to provoke worst-case skew
// (ascending disjoint boxes), and through heavy one-sided removal.
func TestBoxTreeStaysBalanced(t *testing.T) {
	tree := NewBoxTree(1)
	n := 4096
	tokens := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		lo := float64(i) * 10
		tokens = append(tokens, tree.Insert([]Interval{NewInterval(lo, lo+5)}, i))
	}
	// A perfectly balanced tree over 4096 leaves has height 12; allow slack
	// for the heuristic but reject anything close to linear.
	if h := tree.Height(); h > 24 {
		t.Fatalf("height %d after sorted inserts, want <= 24", h)
	}
	// Remove the lower three quarters; the survivors must stay balanced.
	for i := 0; i < 3*n/4; i++ {
		tree.Remove(tokens[i])
	}
	if h := tree.Height(); h > 22 {
		t.Fatalf("height %d after one-sided removal of 3/4, want <= 22", h)
	}
	if tree.Len() != n/4 {
		t.Fatalf("Len() = %d, want %d", tree.Len(), n/4)
	}
	for i := 3 * n / 4; i < n; i++ {
		lo := float64(i) * 10
		if got := collectStab(tree, []float64{lo + 1}); !equalInts(got, []int{i}) {
			t.Fatalf("stab after removal = %v, want [%d]", got, i)
		}
	}
}

// TestBoxTreeNodeReuse verifies the free-list: a long churn at constant
// population must not grow the node pool without bound.
func TestBoxTreeNodeReuse(t *testing.T) {
	tree := NewBoxTree(3)
	rng := stats.NewRNG(5)
	const pop = 128
	tokens := make([]int32, pop)
	box := func(i int) []Interval {
		lo := rng.Range(0, 1000)
		return []Interval{
			NewInterval(lo, lo+10),
			{Min: math.Inf(-1), Max: math.Inf(1)},
			{Min: math.Inf(-1), Max: math.Inf(1)},
		}
	}
	for i := 0; i < pop; i++ {
		tokens[i] = tree.Insert(box(i), i)
	}
	grownTo := len(tree.nodes)
	for step := 0; step < 10000; step++ {
		i := rng.Intn(pop)
		tree.Remove(tokens[i])
		tokens[i] = tree.Insert(box(i), i)
	}
	if len(tree.nodes) > grownTo+2 {
		t.Fatalf("node pool grew from %d to %d under constant-population churn", grownTo, len(tree.nodes))
	}
}
