package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewIntervalSwapsBounds(t *testing.T) {
	iv := NewInterval(5, 1)
	if iv.Min != 1 || iv.Max != 5 {
		t.Fatalf("NewInterval(5,1) = %v, want [1,5]", iv)
	}
}

func TestIntervalEmpty(t *testing.T) {
	cases := []struct {
		iv   Interval
		want bool
	}{
		{Interval{0, 0}, false},
		{Interval{1, 2}, false},
		{Interval{2, 1}, true},
		{Point(3), false},
	}
	for _, c := range cases {
		if got := c.iv.Empty(); got != c.want {
			t.Errorf("%v.Empty() = %v, want %v", c.iv, got, c.want)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	iv := NewInterval(10, 20)
	for _, v := range []float64{10, 15, 20} {
		if !iv.Contains(v) {
			t.Errorf("expected %v to contain %g", iv, v)
		}
	}
	for _, v := range []float64{9.999, 20.001, -5} {
		if iv.Contains(v) {
			t.Errorf("expected %v not to contain %g", iv, v)
		}
	}
	if (Interval{5, 1}).Contains(3) {
		t.Error("empty interval must not contain anything")
	}
}

func TestIntervalCovers(t *testing.T) {
	outer := NewInterval(0, 100)
	inner := NewInterval(10, 20)
	if !outer.Covers(inner) {
		t.Error("outer should cover inner")
	}
	if inner.Covers(outer) {
		t.Error("inner should not cover outer")
	}
	if !outer.Covers(outer) {
		t.Error("interval should cover itself")
	}
	if !inner.Covers(Interval{5, 1}) {
		t.Error("any interval covers the empty interval")
	}
	if (Interval{5, 1}).Covers(inner) {
		t.Error("empty interval covers nothing non-empty")
	}
}

func TestIntervalOverlapsAndIntersect(t *testing.T) {
	a := NewInterval(0, 10)
	b := NewInterval(5, 15)
	c := NewInterval(11, 20)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c should not overlap")
	}
	x := a.Intersect(b)
	if x.Min != 5 || x.Max != 10 {
		t.Errorf("a∩b = %v, want [5,10]", x)
	}
	if !a.Intersect(c).Empty() {
		t.Error("a∩c should be empty")
	}
	// Touching intervals overlap at the shared endpoint (closed intervals).
	if !a.Overlaps(NewInterval(10, 12)) {
		t.Error("closed intervals sharing an endpoint overlap")
	}
}

func TestIntervalUnionExpandClampMidLerp(t *testing.T) {
	a := NewInterval(0, 10)
	b := NewInterval(20, 30)
	u := a.Union(b)
	if u.Min != 0 || u.Max != 30 {
		t.Errorf("union = %v, want [0,30]", u)
	}
	if got := a.Union(Interval{5, 1}); !got.Equal(a) {
		t.Errorf("union with empty = %v, want %v", got, a)
	}
	if got := (Interval{5, 1}).Union(b); !got.Equal(b) {
		t.Errorf("empty union b = %v, want %v", got, b)
	}
	e := a.Expand(2)
	if e.Min != -2 || e.Max != 12 {
		t.Errorf("expand = %v", e)
	}
	if a.Clamp(-5) != 0 || a.Clamp(50) != 10 || a.Clamp(7) != 7 {
		t.Error("clamp misbehaved")
	}
	if (Interval{5, 1}).Clamp(42) != 42 {
		t.Error("clamp against empty interval should be identity")
	}
	if a.Mid() != 5 {
		t.Errorf("mid = %g, want 5", a.Mid())
	}
	if a.Lerp(0.25) != 2.5 {
		t.Errorf("lerp(0.25) = %g, want 2.5", a.Lerp(0.25))
	}
}

func TestIntervalString(t *testing.T) {
	if got := NewInterval(1, 2).String(); got != "[1, 2]" {
		t.Errorf("String() = %q", got)
	}
	if got := (Interval{3, 1}).String(); got != "[empty]" {
		t.Errorf("String() of empty = %q", got)
	}
}

// Property: Covers implies that every contained value of the inner interval
// is contained in the outer interval.
func TestPropertyCoversImpliesContainment(t *testing.T) {
	f := func(a0, a1, b0, b1, frac float64) bool {
		if math.IsNaN(a0) || math.IsNaN(a1) || math.IsNaN(b0) || math.IsNaN(b1) || math.IsNaN(frac) {
			return true
		}
		a := NewInterval(a0, a1)
		b := NewInterval(b0, b1)
		if !a.Covers(b) {
			return true
		}
		// pick a point inside b
		fr := math.Abs(frac)
		fr -= math.Floor(fr)
		v := b.Lerp(fr)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return true
		}
		return a.Contains(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: intersection is covered by both operands, and if non-empty both
// operands overlap.
func TestPropertyIntersectCoveredByBoth(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		if math.IsNaN(a0) || math.IsNaN(a1) || math.IsNaN(b0) || math.IsNaN(b1) {
			return true
		}
		a := NewInterval(a0, a1)
		b := NewInterval(b0, b1)
		x := a.Intersect(b)
		if x.Empty() {
			return true
		}
		return a.Covers(x) && b.Covers(x) && a.Overlaps(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: union covers both operands.
func TestPropertyUnionCoversBoth(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		if math.IsNaN(a0) || math.IsNaN(a1) || math.IsNaN(b0) || math.IsNaN(b1) {
			return true
		}
		a := NewInterval(a0, a1)
		b := NewInterval(b0, b1)
		u := a.Union(b)
		return u.Covers(a) && u.Covers(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
