// Package geom provides the small geometric vocabulary used throughout the
// library — closed numeric intervals, 2D points and rectangular regions, and
// axis-aligned hyper-rectangles ("boxes") used by the subsumption checker —
// plus the spatial indexes the matching fast paths are built on:
//
//   - BoxTree, an incrementally maintained (O(log n) insert/remove, AVL-style
//     rotations, pooled nodes) point-stabbing tree over k-dimensional boxes —
//     the composite multi-attribute structure behind the event-match index;
//   - IntervalTree, a batch-built centered interval stabbing tree (lazy
//     rebuild on query after insertions, no removal);
//   - PointGrid, a lazily rebuilt uniform grid over 2D points for region
//     containment queries over advertised sensor locations.
//
// The value types are plain values: safe to copy, compare and use as map
// values, with meaningful zero values (the zero Interval is the degenerate
// point [0,0], the zero Region is the degenerate point region at the
// origin). The index structures are not safe for concurrent use.
package geom

import (
	"fmt"
	"math"
)

// Interval is a closed interval [Min, Max] over float64 values.
//
// An Interval with Min > Max is treated as empty. The helpers below never
// produce NaN bounds; callers are expected not to construct intervals from
// NaN inputs.
type Interval struct {
	Min float64
	Max float64
}

// NewInterval returns the closed interval [min, max]. If min > max the two
// bounds are swapped so that the result is always a well-formed interval.
func NewInterval(min, max float64) Interval {
	if min > max {
		min, max = max, min
	}
	return Interval{Min: min, Max: max}
}

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return Interval{Min: v, Max: v} }

// Empty reports whether the interval contains no values (Min > Max).
func (iv Interval) Empty() bool { return iv.Min > iv.Max }

// Width returns the length of the interval, or 0 if it is empty.
func (iv Interval) Width() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Max - iv.Min
}

// Contains reports whether v lies inside the closed interval.
func (iv Interval) Contains(v float64) bool {
	return !iv.Empty() && v >= iv.Min && v <= iv.Max
}

// Covers reports whether iv fully contains o, i.e. every value of o is also a
// value of iv. Every interval covers the empty interval.
func (iv Interval) Covers(o Interval) bool {
	if o.Empty() {
		return true
	}
	if iv.Empty() {
		return false
	}
	return iv.Min <= o.Min && iv.Max >= o.Max
}

// Overlaps reports whether the two intervals share at least one value.
func (iv Interval) Overlaps(o Interval) bool {
	if iv.Empty() || o.Empty() {
		return false
	}
	return iv.Min <= o.Max && o.Min <= iv.Max
}

// Intersect returns the intersection of the two intervals. The returned
// interval is empty (Min > Max) when they do not overlap.
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{Min: math.Max(iv.Min, o.Min), Max: math.Min(iv.Max, o.Max)}
}

// Union returns the smallest interval covering both iv and o. Empty operands
// are ignored.
func (iv Interval) Union(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	return Interval{Min: math.Min(iv.Min, o.Min), Max: math.Max(iv.Max, o.Max)}
}

// Expand returns the interval grown by delta on both sides. A negative delta
// shrinks the interval and may make it empty.
func (iv Interval) Expand(delta float64) Interval {
	return Interval{Min: iv.Min - delta, Max: iv.Max + delta}
}

// Clamp returns v clamped into the interval. Clamping against an empty
// interval returns v unchanged.
func (iv Interval) Clamp(v float64) float64 {
	if iv.Empty() {
		return v
	}
	if v < iv.Min {
		return iv.Min
	}
	if v > iv.Max {
		return iv.Max
	}
	return v
}

// Mid returns the midpoint of the interval. It is computed as
// Min + (Max-Min)/2 so that intervals with very large magnitudes do not
// overflow.
func (iv Interval) Mid() float64 { return iv.Min + (iv.Max-iv.Min)/2 }

// Equal reports whether the two intervals have identical bounds. Two empty
// intervals are considered equal regardless of their bounds.
func (iv Interval) Equal(o Interval) bool {
	if iv.Empty() && o.Empty() {
		return true
	}
	return iv.Min == o.Min && iv.Max == o.Max
}

// Lerp returns the value at fraction f (0..1) between Min and Max.
func (iv Interval) Lerp(f float64) float64 {
	return iv.Min + f*(iv.Max-iv.Min)
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	if iv.Empty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%g, %g]", iv.Min, iv.Max)
}
