package geom

import (
	"math"
	"sort"
)

// IntervalTree is a stabbing index over a collection of closed intervals:
// given a value v, it reports every stored interval containing v while
// examining only O(log n + k) entries instead of scanning all n. It is the
// data structure behind the indexed event-matching fast path: subscription
// filter ranges are stored per attribute (or per sensor), and an incoming
// reading's value is the stab query that selects the candidate
// subscriptions.
//
// The tree is a classic centered interval tree (Edelsbrunner): each node
// holds a center value, the intervals straddling the center (kept twice,
// sorted by Min ascending and by Max descending), and two subtrees for the
// intervals entirely below and entirely above the center.
//
// Intervals are registered with Add together with an opaque integer handle
// (typically an index into a caller-side slice of payloads). The tree is
// rebuilt lazily: Add only records the entry and marks the structure dirty;
// the first Stab after a batch of insertions rebuilds in O(n log n). This
// matches the workload of the protocols — subscriptions arrive in batches,
// events are matched in long runs between batches — so the rebuild cost is
// amortized over many stab queries.
//
// Empty intervals are ignored (they contain no value). Intervals with an
// infinite bound are kept in a small overflow list that every query scans
// linearly; filter predicates are finite in practice, so the overflow list
// stays empty or tiny.
//
// An IntervalTree is not safe for concurrent use (Stab may rebuild); every
// protocol handler owns its indexes and the engines guarantee per-node
// sequential execution, matching the rest of the stores.
type IntervalTree struct {
	entries   []treeEntry
	unbounded []treeEntry
	root      *itNode
	dirty     bool
}

type treeEntry struct {
	iv     Interval
	handle int
}

type itNode struct {
	center float64
	byMin  []treeEntry // intervals straddling center, Min ascending
	byMax  []treeEntry // the same intervals, Max descending
	left   *itNode
	right  *itNode
}

// Add registers an interval under the given handle. Empty intervals are
// dropped (no stab value can hit them). The tree is rebuilt lazily on the
// next Stab.
func (t *IntervalTree) Add(iv Interval, handle int) {
	if iv.Empty() {
		return
	}
	e := treeEntry{iv: iv, handle: handle}
	if math.IsInf(iv.Min, -1) || math.IsInf(iv.Max, 1) {
		t.unbounded = append(t.unbounded, e)
		return
	}
	t.entries = append(t.entries, e)
	t.dirty = true
}

// Len returns the number of stored (non-empty) intervals.
func (t *IntervalTree) Len() int { return len(t.entries) + len(t.unbounded) }

// Stab invokes fn with the handle of every stored interval containing v.
// Iteration stops early when fn returns false. The order of handles is
// unspecified.
func (t *IntervalTree) Stab(v float64, fn func(handle int) bool) {
	for _, e := range t.unbounded {
		if e.iv.Contains(v) && !fn(e.handle) {
			return
		}
	}
	if t.dirty {
		t.rebuild()
	}
	node := t.root
	for node != nil {
		switch {
		case v < node.center:
			// Straddlers have Max >= center > v, so containment reduces
			// to Min <= v; the Min-ascending order makes the scan stop at
			// the first miss.
			for _, e := range node.byMin {
				if e.iv.Min > v {
					break
				}
				if !fn(e.handle) {
					return
				}
			}
			node = node.left
		case v > node.center:
			for _, e := range node.byMax {
				if e.iv.Max < v {
					break
				}
				if !fn(e.handle) {
					return
				}
			}
			node = node.right
		default:
			// v == center: every straddler contains it.
			for _, e := range node.byMin {
				if !fn(e.handle) {
					return
				}
			}
			return
		}
	}
}

// rebuild reconstructs the tree from the recorded entries.
func (t *IntervalTree) rebuild() {
	es := make([]treeEntry, len(t.entries))
	copy(es, t.entries)
	t.root = buildITNode(es)
	t.dirty = false
}

// buildITNode builds the subtree over the given entries. The center is the
// median interval midpoint, which keeps the tree balanced for the uniform
// and Pareto-width ranges the workload generator produces.
func buildITNode(es []treeEntry) *itNode {
	if len(es) == 0 {
		return nil
	}
	mids := make([]float64, len(es))
	for i, e := range es {
		mids[i] = e.iv.Mid()
	}
	sort.Float64s(mids)
	center := mids[len(mids)/2]

	node := &itNode{center: center}
	var left, right []treeEntry
	for _, e := range es {
		switch {
		case e.iv.Max < center:
			left = append(left, e)
		case e.iv.Min > center:
			right = append(right, e)
		default:
			node.byMin = append(node.byMin, e)
		}
	}
	// The entry whose midpoint is the center always straddles it, so the
	// recursion strictly shrinks on both sides.
	node.byMax = append([]treeEntry(nil), node.byMin...)
	sort.Slice(node.byMin, func(i, j int) bool { return node.byMin[i].iv.Min < node.byMin[j].iv.Min })
	sort.Slice(node.byMax, func(i, j int) bool { return node.byMax[i].iv.Max > node.byMax[j].iv.Max })
	node.left = buildITNode(left)
	node.right = buildITNode(right)
	return node
}
