package geom

import (
	"math"
	"math/bits"
	"testing"

	"sensorcq/internal/stats"
)

// bulkRandBoxes draws n random boxes (flat, one box per handle) including
// unbounded, half-open and degenerate dimensions, plus the occasional empty
// box that BulkLoad must reject with a negative token.
func bulkRandBoxes(rng *stats.RNG, n, dims int) []Interval {
	boxes := make([]Interval, 0, n*dims)
	for i := 0; i < n; i++ {
		for d := 0; d < dims; d++ {
			switch {
			case rng.Bool(0.05):
				boxes = append(boxes, Interval{Min: math.Inf(-1), Max: math.Inf(1)})
			case rng.Bool(0.05):
				boxes = append(boxes, Interval{Min: math.Inf(-1), Max: rng.Range(-100, 100)})
			case rng.Bool(0.05):
				boxes = append(boxes, Interval{Min: rng.Range(-100, 100), Max: math.Inf(1)})
			case rng.Bool(0.05): // empty: Min > Max
				v := rng.Range(-100, 100)
				boxes = append(boxes, Interval{Min: v, Max: v - 1})
			case rng.Bool(0.1):
				boxes = append(boxes, Point(rng.Range(-100, 100)))
			default:
				lo := rng.Range(-100, 100)
				boxes = append(boxes, NewInterval(lo, lo+rng.Range(0, 40)))
			}
		}
	}
	return boxes
}

// checkBoxTreeInvariants walks the whole tree verifying the structural
// contract BulkLoad promises to share with the incremental path: parent
// links, heights, and internal bounds that exactly cover the children. With
// strictBalance it additionally requires sibling heights to differ by at
// most one — true of a freshly packed tree, but not guaranteed by the
// single-rotation rebalancer once churn has reshaped it.
func checkBoxTreeInvariants(t *testing.T, tree *BoxTree, strictBalance bool) {
	t.Helper()
	if tree.root == btNil {
		if tree.count != 0 {
			t.Fatalf("nil root with count %d", tree.count)
		}
		return
	}
	leaves := 0
	var walk func(i int32) int32
	walk = func(i int32) int32 {
		n := &tree.nodes[i]
		if n.isLeaf() {
			if n.height != 0 {
				t.Fatalf("leaf %d has height %d", i, n.height)
			}
			leaves++
			return 0
		}
		c1, c2 := &tree.nodes[n.child1], &tree.nodes[n.child2]
		if c1.parent != i || c2.parent != i {
			t.Fatalf("node %d: child parent links broken", i)
		}
		h1, h2 := walk(n.child1), walk(n.child2)
		if d := h1 - h2; strictBalance && (d < -1 || d > 1) {
			t.Fatalf("node %d violates AVL balance: child heights %d, %d", i, h1, h2)
		}
		h := 1 + max32(h1, h2)
		if n.height != h {
			t.Fatalf("node %d: stored height %d, computed %d", i, n.height, h)
		}
		for d := 0; d < tree.dims; d++ {
			if n.lo[d] != math.Min(c1.lo[d], c2.lo[d]) || n.hi[d] != math.Max(c1.hi[d], c2.hi[d]) {
				t.Fatalf("node %d: bounds are not the union of its children in dim %d", i, d)
			}
		}
		return h
	}
	if got := walk(tree.root); tree.nodes[tree.root].parent != btNil {
		t.Fatalf("root parent not nil")
	} else if leaves != tree.count {
		t.Fatalf("walked %d leaves, count is %d", leaves, tree.count)
	} else if got != int32(tree.Height()) {
		t.Fatalf("Height() = %d, walk computed %d", tree.Height(), got)
	}
}

// compareStabs probes both trees with the same points and requires identical
// handle sets.
func compareStabs(t *testing.T, bulk, inc *BoxTree, rng *stats.RNG, probes int) {
	t.Helper()
	pt := make([]float64, bulk.dims)
	for p := 0; p < probes; p++ {
		for d := range pt {
			pt[d] = rng.Range(-120, 120)
		}
		got, want := collectStab(bulk, pt), collectStab(inc, pt)
		if len(got) != len(want) {
			t.Fatalf("stab %v: bulk %v, incremental %v", pt, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("stab %v: bulk %v, incremental %v", pt, got, want)
			}
		}
	}
}

// TestBoxTreeBulkLoadMatchesIncremental is the bulk-load equivalence
// property test: for random populations (unbounded, degenerate, and empty
// boxes included), a bulk-loaded tree must stab identically to an
// incrementally built one, respect the balance bound ⌈log₂ n⌉, keep every
// structural invariant, and keep stabbing identically after removing half
// the population through the bulk tokens.
func TestBoxTreeBulkLoadMatchesIncremental(t *testing.T) {
	rng := stats.NewRNG(987)
	for _, dims := range []int{1, 2, 3} {
		for _, n := range []int{1, 2, 3, 7, 64, 500} {
			boxes := bulkRandBoxes(rng, n, dims)
			handles := make([]int, n)
			for i := range handles {
				handles[i] = i
			}

			bulk := NewBoxTree(dims)
			bulkTokens := bulk.BulkLoad(boxes, handles)

			inc := NewBoxTree(dims)
			incTokens := make([]int32, n)
			for i := 0; i < n; i++ {
				incTokens[i] = inc.Insert(boxes[i*dims:(i+1)*dims], i)
			}

			for i := range bulkTokens {
				if (bulkTokens[i] < 0) != (incTokens[i] < 0) {
					t.Fatalf("dims=%d n=%d box %d: bulk token %d, incremental token %d",
						dims, n, i, bulkTokens[i], incTokens[i])
				}
			}
			if bulk.Len() != inc.Len() {
				t.Fatalf("dims=%d n=%d: bulk Len %d, incremental Len %d", dims, n, bulk.Len(), inc.Len())
			}
			if live := bulk.Len(); live > 1 {
				if maxH := bits.Len(uint(live - 1)); bulk.Height() > maxH {
					t.Fatalf("dims=%d n=%d: bulk height %d exceeds ⌈log₂ %d⌉ = %d",
						dims, n, bulk.Height(), live, maxH)
				}
			}
			checkBoxTreeInvariants(t, bulk, true)
			compareStabs(t, bulk, inc, rng, 64)

			// Remove the same half from both trees through their own tokens;
			// the survivors must still agree, and the bulk tree must stay
			// structurally sound through the incremental rebalancing.
			for i := 0; i < n; i += 2 {
				bulk.Remove(bulkTokens[i])
				inc.Remove(incTokens[i])
			}
			checkBoxTreeInvariants(t, bulk, false)
			compareStabs(t, bulk, inc, rng, 64)

			// And the packed tree accepts further incremental inserts.
			extra := bulkRandBoxes(rng, 8, dims)
			for i := 0; i < 8; i++ {
				bt := bulk.Insert(extra[i*dims:(i+1)*dims], n+i)
				it := inc.Insert(extra[i*dims:(i+1)*dims], n+i)
				if (bt < 0) != (it < 0) {
					t.Fatalf("dims=%d post-bulk insert %d disagrees on emptiness", dims, i)
				}
			}
			checkBoxTreeInvariants(t, bulk, false)
			compareStabs(t, bulk, inc, rng, 64)
		}
	}
}

// TestBoxTreeBulkLoadNonEmptyFallsBack pins the documented degradation: on a
// non-empty tree BulkLoad behaves exactly like a loop of Inserts.
func TestBoxTreeBulkLoadNonEmptyFallsBack(t *testing.T) {
	rng := stats.NewRNG(31)
	tree := NewBoxTree(2)
	tree.Insert([]Interval{NewInterval(0, 1), NewInterval(0, 1)}, 100)

	boxes := bulkRandBoxes(rng, 50, 2)
	handles := make([]int, 50)
	for i := range handles {
		handles[i] = i
	}
	tokens := tree.BulkLoad(boxes, handles)
	if len(tokens) != 50 {
		t.Fatalf("got %d tokens, want 50", len(tokens))
	}
	checkBoxTreeInvariants(t, tree, false)

	inc := NewBoxTree(2)
	inc.Insert([]Interval{NewInterval(0, 1), NewInterval(0, 1)}, 100)
	for i := 0; i < 50; i++ {
		inc.Insert(boxes[i*2:(i+1)*2], i)
	}
	compareStabs(t, tree, inc, rng, 64)
}

// FuzzBoxTreeBulkLoad feeds arbitrary byte-derived box populations through
// the equivalence check: bulk-loaded and incrementally built trees must stab
// identically before and after removing every other box.
func FuzzBoxTreeBulkLoad(f *testing.F) {
	f.Add(int64(1), uint8(17), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add(int64(42), uint8(3), []byte{255, 0, 128, 7, 9, 200})
	f.Add(int64(7), uint8(100), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, count uint8, raw []byte) {
		dims := 1 + int(count)%3
		n := int(count)
		if n == 0 {
			return
		}
		rng := stats.NewRNG(seed)
		boxes := make([]Interval, n*dims)
		for i := range boxes {
			// Mix fuzzer-controlled bytes into the bounds so the corpus can
			// steer the geometry, with the seeded RNG filling the gaps.
			lo := rng.Range(-50, 50)
			w := rng.Range(0, 20)
			if len(raw) >= 2 {
				lo = float64(int(raw[0]) - 128)
				w = float64(raw[1] % 32)
				raw = raw[2:]
			}
			boxes[i] = NewInterval(lo, lo+w)
			if uint64(i)%13 == uint64(seed)%13 {
				boxes[i] = Interval{Min: math.Inf(-1), Max: math.Inf(1)}
			}
		}
		handles := make([]int, n)
		for i := range handles {
			handles[i] = i
		}

		bulk := NewBoxTree(dims)
		bulkTokens := bulk.BulkLoad(boxes, handles)
		inc := NewBoxTree(dims)
		incTokens := make([]int32, n)
		for i := 0; i < n; i++ {
			incTokens[i] = inc.Insert(boxes[i*dims:(i+1)*dims], i)
		}
		checkBoxTreeInvariants(t, bulk, true)
		compareStabs(t, bulk, inc, rng, 32)
		for i := 0; i < n; i += 2 {
			bulk.Remove(bulkTokens[i])
			inc.Remove(incTokens[i])
		}
		checkBoxTreeInvariants(t, bulk, false)
		compareStabs(t, bulk, inc, rng, 32)
	})
}
