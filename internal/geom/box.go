package geom

import (
	"fmt"
	"strings"
)

// Box is an axis-aligned hyper-rectangle over an arbitrary number of named
// dimensions. It is the geometric representation of a subscription used by
// the subsumption checker: each filtered attribute (and, for abstract
// subscriptions, each spatial coordinate) contributes one dimension.
//
// Dimensions are identified by string keys so that boxes originating from
// different subscriptions can be compared without agreeing on an ordering.
type Box struct {
	dims map[string]Interval
}

// NewBox returns an empty box with no dimensions.
func NewBox() Box { return Box{dims: map[string]Interval{}} }

// BoxFrom builds a box from a dimension->interval map. The map is copied.
func BoxFrom(dims map[string]Interval) Box {
	b := NewBox()
	for k, v := range dims {
		b.dims[k] = v
	}
	return b
}

// Set assigns the interval of a dimension, adding the dimension if needed,
// and returns the box to allow chaining.
func (b Box) Set(dim string, iv Interval) Box {
	if b.dims == nil {
		b.dims = map[string]Interval{}
	}
	b.dims[dim] = iv
	return b
}

// Get returns the interval of a dimension and whether it is present.
func (b Box) Get(dim string) (Interval, bool) {
	iv, ok := b.dims[dim]
	return iv, ok
}

// Dims returns the dimension names in sorted order.
func (b Box) Dims() []string {
	out := make([]string, 0, len(b.dims))
	for k := range b.dims {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// NumDims returns the number of dimensions of the box.
func (b Box) NumDims() int { return len(b.dims) }

// Clone returns an independent copy of the box.
func (b Box) Clone() Box {
	return BoxFrom(b.dims)
}

// Empty reports whether any dimension of the box is empty. A box with no
// dimensions is not empty: it is the whole (zero-dimensional) space.
func (b Box) Empty() bool {
	for _, iv := range b.dims {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// SameDims reports whether both boxes are defined over exactly the same set
// of dimensions.
func (b Box) SameDims(o Box) bool {
	if len(b.dims) != len(o.dims) {
		return false
	}
	for k := range b.dims {
		if _, ok := o.dims[k]; !ok {
			return false
		}
	}
	return true
}

// Covers reports whether b fully contains o. Both boxes must be defined over
// the same dimensions; if they are not, Covers returns false, because a
// missing dimension means "the attribute is not requested at all" rather
// than "any value is acceptable" (see Section V-B of the paper).
func (b Box) Covers(o Box) bool {
	if !b.SameDims(o) {
		return false
	}
	for k, iv := range b.dims {
		if !iv.Covers(o.dims[k]) {
			return false
		}
	}
	return true
}

// Overlaps reports whether the two boxes intersect. Boxes over different
// dimension sets never overlap.
func (b Box) Overlaps(o Box) bool {
	if !b.SameDims(o) {
		return false
	}
	for k, iv := range b.dims {
		if !iv.Overlaps(o.dims[k]) {
			return false
		}
	}
	return true
}

// Intersect returns the intersection box (same dimensions). The second result
// is false when the boxes have different dimensions or do not overlap.
func (b Box) Intersect(o Box) (Box, bool) {
	if !b.SameDims(o) {
		return Box{}, false
	}
	out := NewBox()
	for k, iv := range b.dims {
		x := iv.Intersect(o.dims[k])
		if x.Empty() {
			return Box{}, false
		}
		out.dims[k] = x
	}
	return out, true
}

// Volume returns the product of the widths of all dimensions. Degenerate
// (zero-width) dimensions contribute factor 0.
func (b Box) Volume() float64 {
	v := 1.0
	for _, iv := range b.dims {
		v *= iv.Width()
	}
	return v
}

// ContainsPoint reports whether the given point (a value per dimension) lies
// inside the box. Points missing a dimension of the box are outside.
func (b Box) ContainsPoint(pt map[string]float64) bool {
	for k, iv := range b.dims {
		v, ok := pt[k]
		if !ok || !iv.Contains(v) {
			return false
		}
	}
	return true
}

// Corners invokes fn with every corner of the box (2^d points for d
// dimensions). Iteration stops early if fn returns false. Corners of boxes
// with more than 20 dimensions are not enumerated (fn is never called) to
// avoid exponential blow-up; callers should fall back to sampling.
func (b Box) Corners(fn func(pt map[string]float64) bool) {
	dims := b.Dims()
	if len(dims) > 20 {
		return
	}
	n := 1 << uint(len(dims))
	for mask := 0; mask < n; mask++ {
		pt := make(map[string]float64, len(dims))
		for i, d := range dims {
			iv := b.dims[d]
			if mask&(1<<uint(i)) != 0 {
				pt[d] = iv.Max
			} else {
				pt[d] = iv.Min
			}
		}
		if !fn(pt) {
			return
		}
	}
}

// String implements fmt.Stringer.
func (b Box) String() string {
	dims := b.Dims()
	parts := make([]string, 0, len(dims))
	for _, d := range dims {
		parts = append(parts, fmt.Sprintf("%s=%s", d, b.dims[d]))
	}
	return "box{" + strings.Join(parts, ", ") + "}"
}

// sortStrings sorts a string slice in increasing order. A tiny insertion sort
// is used to avoid importing sort for this hot, short-slice path.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
