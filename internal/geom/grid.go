package geom

import (
	"math"
)

// PointGrid is a uniform spatial index over a set of 2D points: given an
// axis-aligned query region, it reports every stored point inside the region
// while visiting only the grid cells the region overlaps. It indexes the
// advertised sensor locations so that projecting an abstract subscription
// onto a neighbour's data space touches only the advertisements near the
// subscription's region instead of scanning all of them.
//
// Like IntervalTree, the grid is rebuilt lazily: Add records the point and
// marks the grid dirty, and the first Query after a batch of insertions
// rebuilds it — the bounding box of all points is split into roughly sqrt(n)
// cells per axis, giving O(1) expected points per cell for the roughly
// uniform sensor placements the topology generator produces.
//
// Points are registered with an opaque integer handle (typically an index
// into a caller-side slice of payloads). Queries check exact containment, so
// unbounded regions (WholePlane) and degenerate regions work and duplicate
// coordinates are fine. Not safe for concurrent use.
type PointGrid struct {
	pts   []gridPoint
	dirty bool

	minX, minY float64
	invCW      float64 // cells per unit length in x
	invCH      float64 // cells per unit length in y
	nx, ny     int
	cells      [][]int32
}

type gridPoint struct {
	p      Point2D
	handle int
}

// Add registers a point under the given handle. The grid is rebuilt lazily
// on the next Query.
func (g *PointGrid) Add(p Point2D, handle int) {
	g.pts = append(g.pts, gridPoint{p: p, handle: handle})
	g.dirty = true
}

// Len returns the number of stored points.
func (g *PointGrid) Len() int { return len(g.pts) }

// Query invokes fn with the handle of every stored point inside the region
// (closed bounds). Iteration stops early when fn returns false. The order of
// handles is unspecified.
func (g *PointGrid) Query(r Region, fn func(handle int) bool) {
	if len(g.pts) == 0 || r.Empty() {
		return
	}
	if g.dirty {
		g.rebuild()
	}
	x0 := g.cellX(r.X.Min)
	x1 := g.cellX(r.X.Max)
	y0 := g.cellY(r.Y.Min)
	y1 := g.cellY(r.Y.Max)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, i := range g.cells[cy*g.nx+cx] {
				gp := g.pts[i]
				if r.Contains(gp.p) && !fn(gp.handle) {
					return
				}
			}
		}
	}
}

// cellX maps an x coordinate (possibly infinite) to a clamped cell column.
func (g *PointGrid) cellX(x float64) int {
	return clampCell(x, g.minX, g.invCW, g.nx)
}

// cellY maps a y coordinate (possibly infinite) to a clamped cell row.
func (g *PointGrid) cellY(y float64) int {
	return clampCell(y, g.minY, g.invCH, g.ny)
}

func clampCell(v, min, inv float64, n int) int {
	if math.IsInf(v, -1) || v < min {
		return 0
	}
	if math.IsInf(v, 1) {
		return n - 1
	}
	c := int((v - min) * inv)
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// rebuild reconstructs the cell lists from the recorded points.
func (g *PointGrid) rebuild() {
	n := len(g.pts)
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, gp := range g.pts {
		minX = math.Min(minX, gp.p.X)
		maxX = math.Max(maxX, gp.p.X)
		minY = math.Min(minY, gp.p.Y)
		maxY = math.Max(maxY, gp.p.Y)
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1
	}
	w := maxX - minX
	h := maxY - minY
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	g.minX, g.minY = minX, minY
	g.nx, g.ny = side, side
	g.invCW = float64(side) / w
	g.invCH = float64(side) / h
	g.cells = make([][]int32, side*side)
	for i, gp := range g.pts {
		cx := g.cellX(gp.p.X)
		cy := g.cellY(gp.p.Y)
		idx := cy*g.nx + cx
		g.cells[idx] = append(g.cells[idx], int32(i))
	}
	g.dirty = false
}
