package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDistance(t *testing.T) {
	a := Point2D{0, 0}
	b := Point2D{3, 4}
	if d := a.DistanceTo(b); d != 5 {
		t.Errorf("distance = %g, want 5", d)
	}
	if d := a.DistanceTo(a); d != 0 {
		t.Errorf("distance to self = %g, want 0", d)
	}
}

func TestRegionContainsCovers(t *testing.T) {
	r := NewRegion(0, 0, 10, 10)
	if !r.Contains(Point2D{5, 5}) || !r.Contains(Point2D{0, 0}) || !r.Contains(Point2D{10, 10}) {
		t.Error("region should contain interior and border points")
	}
	if r.Contains(Point2D{11, 5}) || r.Contains(Point2D{5, -1}) {
		t.Error("region should not contain outside points")
	}
	inner := NewRegion(2, 2, 8, 8)
	if !r.Covers(inner) || inner.Covers(r) {
		t.Error("covers relation wrong")
	}
	if !r.Covers(r) {
		t.Error("region should cover itself")
	}
}

func TestRegionIntersectUnionArea(t *testing.T) {
	a := NewRegion(0, 0, 10, 10)
	b := NewRegion(5, 5, 15, 15)
	if !a.Intersects(b) {
		t.Error("a and b should intersect")
	}
	x := a.Intersect(b)
	if x.Area() != 25 {
		t.Errorf("intersection area = %g, want 25", x.Area())
	}
	u := a.Union(b)
	if u.Area() != 225 {
		t.Errorf("union area = %g, want 225", u.Area())
	}
	far := NewRegion(100, 100, 110, 110)
	if a.Intersects(far) {
		t.Error("disjoint regions should not intersect")
	}
	if !a.Intersect(far).Empty() {
		t.Error("intersection of disjoint regions should be empty")
	}
	if got := a.Union(Region{X: Interval{1, 0}, Y: Interval{1, 0}}); !got.Equal(a) {
		t.Errorf("union with empty region = %v, want %v", got, a)
	}
}

func TestWholePlane(t *testing.T) {
	w := WholePlane()
	if !w.IsWholePlane() {
		t.Error("WholePlane should report IsWholePlane")
	}
	if !w.Contains(Point2D{1e12, -1e12}) {
		t.Error("whole plane contains everything")
	}
	if !w.Covers(NewRegion(-1e6, -1e6, 1e6, 1e6)) {
		t.Error("whole plane covers any region")
	}
	if w.Center() != (Point2D{}) {
		t.Error("centre of whole plane defined as origin")
	}
	if !math.IsInf(w.Area(), 1) {
		t.Error("whole plane has infinite area")
	}
	if got := w.String(); got != "region(everywhere)" {
		t.Errorf("String() = %q", got)
	}
}

func TestRegionAroundAndCenterDiameter(t *testing.T) {
	r := RegionAround(Point2D{10, 20}, 5)
	if !r.Contains(Point2D{10, 20}) || !r.Contains(Point2D{15, 25}) {
		t.Error("RegionAround should contain centre and corner")
	}
	if r.Contains(Point2D{16, 20}) {
		t.Error("RegionAround should not contain points beyond radius box")
	}
	if c := r.Center(); c.X != 10 || c.Y != 20 {
		t.Errorf("centre = %v", c)
	}
	want := math.Sqrt(200)
	if d := r.Diameter(); math.Abs(d-want) > 1e-9 {
		t.Errorf("diameter = %g, want %g", d, want)
	}
}

// Property: if region r covers region o then every point of o (its centre,
// corners) is contained in r.
func TestPropertyRegionCoversContainsCentre(t *testing.T) {
	f := func(ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 float64) bool {
		for _, v := range []float64{ax0, ay0, ax1, ay1, bx0, by0, bx1, by1} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		a := NewRegion(ax0, ay0, ax1, ay1)
		b := NewRegion(bx0, by0, bx1, by1)
		if !a.Covers(b) {
			return true
		}
		return a.Contains(b.Center()) &&
			a.Contains(Point2D{b.X.Min, b.Y.Min}) &&
			a.Contains(Point2D{b.X.Max, b.Y.Max})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
