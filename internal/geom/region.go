package geom

import (
	"fmt"
	"math"
)

// Point2D is a location in the 2D plane. The paper models sensor locations as
// values from a location domain; this library uses planar coordinates
// (metres, or any other consistent unit).
type Point2D struct {
	X float64
	Y float64
}

// DistanceTo returns the Euclidean distance between the two points.
func (p Point2D) DistanceTo(o Point2D) float64 {
	dx := p.X - o.X
	dy := p.Y - o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// String implements fmt.Stringer.
func (p Point2D) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Region is an axis-aligned rectangle in the 2D location domain. It is the
// concrete realisation of the paper's spatial constraint L ⊆ ℒ used by
// abstract subscriptions ("all temperature sensors inside this area").
type Region struct {
	X Interval
	Y Interval
}

// NewRegion constructs a region from two opposite corner coordinates. The
// corners may be given in any order.
func NewRegion(x0, y0, x1, y1 float64) Region {
	return Region{X: NewInterval(x0, x1), Y: NewInterval(y0, y1)}
}

// RegionAround returns the square region of half-width radius centred on p.
func RegionAround(p Point2D, radius float64) Region {
	return Region{
		X: Interval{Min: p.X - radius, Max: p.X + radius},
		Y: Interval{Min: p.Y - radius, Max: p.Y + radius},
	}
}

// WholePlane returns a region that contains every representable location. It
// is used when a subscription carries no spatial constraint.
func WholePlane() Region {
	return Region{
		X: Interval{Min: math.Inf(-1), Max: math.Inf(1)},
		Y: Interval{Min: math.Inf(-1), Max: math.Inf(1)},
	}
}

// Empty reports whether the region contains no points.
func (r Region) Empty() bool { return r.X.Empty() || r.Y.Empty() }

// IsWholePlane reports whether the region is unbounded in both dimensions.
func (r Region) IsWholePlane() bool {
	return math.IsInf(r.X.Min, -1) && math.IsInf(r.X.Max, 1) &&
		math.IsInf(r.Y.Min, -1) && math.IsInf(r.Y.Max, 1)
}

// Contains reports whether the point lies inside the region.
func (r Region) Contains(p Point2D) bool {
	return r.X.Contains(p.X) && r.Y.Contains(p.Y)
}

// Covers reports whether r fully contains o.
func (r Region) Covers(o Region) bool {
	if o.Empty() {
		return true
	}
	return r.X.Covers(o.X) && r.Y.Covers(o.Y)
}

// Intersects reports whether the two regions share at least one point.
func (r Region) Intersects(o Region) bool {
	return r.X.Overlaps(o.X) && r.Y.Overlaps(o.Y)
}

// Intersect returns the overlap of the two regions (possibly empty).
func (r Region) Intersect(o Region) Region {
	return Region{X: r.X.Intersect(o.X), Y: r.Y.Intersect(o.Y)}
}

// Union returns the bounding box of the two regions.
func (r Region) Union(o Region) Region {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Region{X: r.X.Union(o.X), Y: r.Y.Union(o.Y)}
}

// Area returns the area of the region; unbounded regions have infinite area.
func (r Region) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.X.Width() * r.Y.Width()
}

// Center returns the midpoint of the region. The centre of an unbounded
// region is the origin.
func (r Region) Center() Point2D {
	if r.IsWholePlane() {
		return Point2D{}
	}
	return Point2D{X: r.X.Mid(), Y: r.Y.Mid()}
}

// Diameter returns the maximum distance between any two points in the region.
func (r Region) Diameter() float64 {
	if r.Empty() {
		return 0
	}
	return math.Sqrt(r.X.Width()*r.X.Width() + r.Y.Width()*r.Y.Width())
}

// Equal reports whether the two regions have identical bounds.
func (r Region) Equal(o Region) bool { return r.X.Equal(o.X) && r.Y.Equal(o.Y) }

// String implements fmt.Stringer.
func (r Region) String() string {
	if r.IsWholePlane() {
		return "region(everywhere)"
	}
	return fmt.Sprintf("region(x=%s, y=%s)", r.X, r.Y)
}
