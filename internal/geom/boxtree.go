package geom

import (
	"cmp"
	"fmt"
	"math"
	"slices"
)

// BoxTree is an incrementally maintained point-stabbing index over a
// collection of k-dimensional axis-aligned boxes: given a k-dimensional
// point, it reports every stored box containing the point while examining
// only the subtrees whose bounds contain it. It is the composite
// multi-attribute structure behind the event-matching fast path: a
// subscription filter contributes one box over all of its stabbed dimensions
// at once (value range × spatial region), so an incoming reading stabs one
// structure with (value, x, y) instead of stabbing a per-attribute interval
// tree and re-checking the region on every candidate.
//
// Unlike IntervalTree and PointGrid — which record insertions and rebuild
// lazily on the next query — the BoxTree is a dynamic bounding-volume tree
// maintained in place: Insert descends to the cheapest sibling (capped
// perimeter heuristic), splices in a new parent and rebalances with AVL-style
// rotations on the way up; Remove splices the leaf out and refits/rebalances
// the ancestor path. Both are O(log n), which is what makes steady-state
// subscribe/unsubscribe churn cheap: there is no tombstone accumulation and
// no rebuild-from-scratch cliff between a retraction and the next stab.
//
// Nodes live in a pooled slice and freed nodes are reused (free list), so
// churn does not grow the backing array. Insert returns an opaque token that
// Remove takes back; tokens are invalidated by Remove and must not be reused.
//
// Bounds may be infinite (an unbounded filter range or a whole-plane region);
// containment tests handle ±Inf exactly, and the balance heuristic caps
// widths so infinite extents compare by their finite dimensions instead of
// degenerating to NaN.
//
// Boxes with an empty dimension can contain no point; Insert reports them
// with a negative token and stores nothing (Remove of a negative token is a
// no-op). A BoxTree is not safe for concurrent use; like the other geom
// indexes, every protocol handler owns its own and the engines guarantee
// per-node sequential execution.
type BoxTree struct {
	dims  int
	nodes []btNode
	root  int32
	free  int32 // head of the freed-node list, -1 when empty
	count int
	stack []int32 // scratch for the iterative stab descent
}

// btMaxDims bounds the tree's dimensionality so node bounds are inline
// arrays (no per-node allocations). The matching indexes need at most three
// dimensions (value × location x × location y).
const btMaxDims = 4

const btNil = int32(-1)

// btNode is one pooled tree node: a leaf stores a user box and handle, an
// internal node the union bounds and heights of its two children. Freed
// nodes are chained through child1.
type btNode struct {
	lo, hi [btMaxDims]float64

	parent int32
	child1 int32
	child2 int32
	// height is 0 for leaves, 1+max(children) for internal nodes, and -1 for
	// nodes on the free list.
	height int32

	handle int
}

func (n *btNode) isLeaf() bool { return n.child1 == btNil }

// NewBoxTree returns an empty tree over boxes of the given dimensionality
// (1..4). It panics on an out-of-range dimensionality — a programming error,
// not an input error.
func NewBoxTree(dims int) *BoxTree {
	if dims < 1 || dims > btMaxDims {
		panic(fmt.Sprintf("geom: BoxTree dimensionality %d outside 1..%d", dims, btMaxDims))
	}
	return &BoxTree{dims: dims, root: btNil, free: btNil}
}

// Dims returns the tree's dimensionality.
func (t *BoxTree) Dims() int { return t.dims }

// Len returns the number of stored boxes.
func (t *BoxTree) Len() int { return t.count }

// Insert stores the box (one interval per dimension) under the given handle
// and returns the token Remove takes back. A box with an empty dimension is
// not stored and yields a negative token.
func (t *BoxTree) Insert(box []Interval, handle int) int32 {
	if len(box) != t.dims {
		panic(fmt.Sprintf("geom: BoxTree.Insert got %d dimensions, want %d", len(box), t.dims))
	}
	for _, iv := range box {
		if iv.Empty() {
			return btNil
		}
	}
	leaf := t.allocNode()
	n := &t.nodes[leaf]
	for d, iv := range box {
		n.lo[d] = iv.Min
		n.hi[d] = iv.Max
	}
	n.height = 0
	n.handle = handle
	t.insertLeaf(leaf)
	t.count++
	return leaf
}

// Remove takes back the box stored under the token returned by Insert.
// Negative tokens are ignored.
func (t *BoxTree) Remove(token int32) {
	if token < 0 {
		return
	}
	t.removeLeaf(token)
	t.freeNode(token)
	t.count--
}

// Stab invokes fn with the handle of every stored box containing the point
// (one coordinate per dimension, closed bounds). Iteration stops early when
// fn returns false; the order of handles is unspecified.
func (t *BoxTree) Stab(pt []float64, fn func(handle int) bool) {
	if len(pt) != t.dims {
		panic(fmt.Sprintf("geom: BoxTree.Stab got %d coordinates, want %d", len(pt), t.dims))
	}
	if t.root == btNil {
		return
	}
	stack := t.stack[:0]
	stack = append(stack, t.root)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[i]
		contains := true
		for d := 0; d < t.dims; d++ {
			if pt[d] < n.lo[d] || pt[d] > n.hi[d] {
				contains = false
				break
			}
		}
		if !contains {
			continue
		}
		if n.isLeaf() {
			if !fn(n.handle) {
				t.stack = stack
				return
			}
			continue
		}
		stack = append(stack, n.child1, n.child2)
	}
	t.stack = stack
}

// allocNode takes a node off the free list or grows the pool.
func (t *BoxTree) allocNode() int32 {
	if t.free != btNil {
		i := t.free
		t.free = t.nodes[i].child1
		t.nodes[i] = btNode{parent: btNil, child1: btNil, child2: btNil}
		return i
	}
	t.nodes = append(t.nodes, btNode{parent: btNil, child1: btNil, child2: btNil})
	return int32(len(t.nodes) - 1)
}

// freeNode returns a node to the free list.
func (t *BoxTree) freeNode(i int32) {
	t.nodes[i].child1 = t.free
	t.nodes[i].height = -1
	t.free = i
}

// cappedWidth is the extent of [lo, hi] with infinite extents contributing
// zero, so the insertion heuristic can compare candidate subtrees that
// contain unbounded boxes: an unbounded dimension is equally unbounded in
// every union, so it carries no clustering signal, and any large stand-in
// constant would swamp the finite dimensions' differences below float64
// precision (1e18 + 20 == 1e18), degenerating sibling selection to
// arbitrary choice and the stab cost towards a full scan. Dropping the
// dimension from the cost lets the finite dimensions decide (this is what
// keeps the tree clustered by value range when every region is the whole
// plane).
func cappedWidth(lo, hi float64) float64 {
	w := hi - lo
	if math.IsInf(w, 1) {
		return 0
	}
	return w
}

// perimeter is the heuristic size of a node's bounds: the sum of its capped
// widths (the d-dimensional analogue of Box2D's half-perimeter cost).
func (t *BoxTree) perimeter(i int32) float64 {
	n := &t.nodes[i]
	p := 0.0
	for d := 0; d < t.dims; d++ {
		p += cappedWidth(n.lo[d], n.hi[d])
	}
	return p
}

// unionPerimeter is the perimeter the node's bounds would have after
// absorbing the leaf's box.
func (t *BoxTree) unionPerimeter(i, leaf int32) float64 {
	n, l := &t.nodes[i], &t.nodes[leaf]
	p := 0.0
	for d := 0; d < t.dims; d++ {
		p += cappedWidth(math.Min(n.lo[d], l.lo[d]), math.Max(n.hi[d], l.hi[d]))
	}
	return p
}

// insertLeaf splices the leaf into the tree next to the cheapest sibling and
// rebalances the ancestor path.
func (t *BoxTree) insertLeaf(leaf int32) {
	if t.root == btNil {
		t.root = leaf
		t.nodes[leaf].parent = btNil
		return
	}

	// Descend to the best sibling: at each internal node, compare the cost of
	// pairing with the node itself against the estimated cost of descending
	// into either child (Box2D's branch-and-bound descent).
	index := t.root
	for !t.nodes[index].isLeaf() {
		child1 := t.nodes[index].child1
		child2 := t.nodes[index].child2

		perim := t.perimeter(index)
		combined := t.unionPerimeter(index, leaf)
		costHere := 2 * combined
		inherited := 2 * (combined - perim)

		cost1 := t.descendCost(child1, leaf) + inherited
		cost2 := t.descendCost(child2, leaf) + inherited
		if costHere < cost1 && costHere < cost2 {
			break
		}
		if cost1 < cost2 {
			index = child1
		} else {
			index = child2
		}
	}
	sibling := index

	// Splice a new parent in between the sibling and its old parent.
	oldParent := t.nodes[sibling].parent
	newParent := t.allocNode()
	t.nodes[newParent].parent = oldParent
	t.nodes[newParent].height = t.nodes[sibling].height + 1
	if oldParent == btNil {
		t.root = newParent
	} else if t.nodes[oldParent].child1 == sibling {
		t.nodes[oldParent].child1 = newParent
	} else {
		t.nodes[oldParent].child2 = newParent
	}
	t.nodes[newParent].child1 = sibling
	t.nodes[newParent].child2 = leaf
	t.nodes[sibling].parent = newParent
	t.nodes[leaf].parent = newParent

	t.refitUp(newParent)
}

// descendCost estimates the cost of pushing the leaf into the subtree rooted
// at i: the enlargement of i's bounds, plus the creation cost of a new pair
// node when i is a leaf.
func (t *BoxTree) descendCost(i, leaf int32) float64 {
	enlarged := t.unionPerimeter(i, leaf)
	if t.nodes[i].isLeaf() {
		return enlarged
	}
	return enlarged - t.perimeter(i)
}

// removeLeaf splices the leaf out, promoting its sibling into their parent's
// place, and rebalances the ancestor path.
func (t *BoxTree) removeLeaf(leaf int32) {
	if leaf == t.root {
		t.root = btNil
		return
	}
	parent := t.nodes[leaf].parent
	grandParent := t.nodes[parent].parent
	sibling := t.nodes[parent].child1
	if sibling == leaf {
		sibling = t.nodes[parent].child2
	}
	if grandParent == btNil {
		t.root = sibling
		t.nodes[sibling].parent = btNil
		t.freeNode(parent)
		return
	}
	if t.nodes[grandParent].child1 == parent {
		t.nodes[grandParent].child1 = sibling
	} else {
		t.nodes[grandParent].child2 = sibling
	}
	t.nodes[sibling].parent = grandParent
	t.freeNode(parent)
	t.refitUp(grandParent)
}

// refitNode recomputes an internal node's height and bounds from its
// children. Every structural mutation funnels through it (the refitUp walk
// and both nodes touched by a rotation), so the bounds/height rule lives in
// exactly one place.
func (t *BoxTree) refitNode(i int32) {
	n := &t.nodes[i]
	c1, c2 := &t.nodes[n.child1], &t.nodes[n.child2]
	n.height = 1 + max32(c1.height, c2.height)
	for d := 0; d < t.dims; d++ {
		n.lo[d] = math.Min(c1.lo[d], c2.lo[d])
		n.hi[d] = math.Max(c1.hi[d], c2.hi[d])
	}
}

// refitUp walks from i to the root, rebalancing each node and recomputing
// its bounds and height from its (possibly rotated) children.
func (t *BoxTree) refitUp(i int32) {
	for i != btNil {
		i = t.balance(i)
		t.refitNode(i)
		i = t.nodes[i].parent
	}
}

// balance performs one AVL-style rotation at i when its children's heights
// differ by more than one, returning the root of the balanced subtree. The
// rotation reuses the existing nodes (no frees, no allocations): the taller
// child is lifted into i's place and one of its children is handed down to i.
func (t *BoxTree) balance(iA int32) int32 {
	a := &t.nodes[iA]
	if a.isLeaf() || a.height < 2 {
		return iA
	}
	iB, iC := a.child1, a.child2
	bal := t.nodes[iC].height - t.nodes[iB].height
	switch {
	case bal > 1:
		return t.rotateUp(iA, iC, iB)
	case bal < -1:
		return t.rotateUp(iA, iB, iC)
	default:
		return iA
	}
}

// rotateUp lifts the taller child iUp of iA into iA's place; iA keeps the
// shorter child iKeep and adopts iUp's shorter grandchild, and iUp adopts iA
// under its taller grandchild. Bounds and heights of iA and iUp are refit
// here; the ancestors are refit by the caller's walk.
func (t *BoxTree) rotateUp(iA, iUp, iKeep int32) int32 {
	a, up := &t.nodes[iA], &t.nodes[iUp]
	iF, iG := up.child1, up.child2
	if t.nodes[iF].height < t.nodes[iG].height {
		iF, iG = iG, iF // iF is the taller grandchild and stays under iUp
	}

	up.child1 = iF
	up.child2 = iA
	up.parent = a.parent
	a.parent = iUp
	if up.parent == btNil {
		t.root = iUp
	} else if t.nodes[up.parent].child1 == iA {
		t.nodes[up.parent].child1 = iUp
	} else {
		t.nodes[up.parent].child2 = iUp
	}

	// iA keeps iKeep and adopts the shorter grandchild iG.
	a.child1 = iKeep
	a.child2 = iG
	t.nodes[iG].parent = iA

	t.refitNode(iA)
	t.refitNode(iUp)
	return iUp
}

// BulkLoad builds the tree from a whole batch of boxes in one bottom-up pass.
// boxes is the flat concatenation of one box per handle — len(handles)*Dims()
// intervals, box i occupying boxes[i*Dims() : (i+1)*Dims()]. It returns one
// token per box, aligned with handles. Boxes with an empty dimension are not
// stored and yield a negative token, exactly like Insert; all other tokens
// are interchangeable with Insert's — Remove splices them out of the packed
// tree the same way, and subsequent Inserts extend it incrementally.
//
// On an empty tree the batch is packed by recursive median split on the
// dimension with the widest spread of box centers (a sort-tile-recursive
// style partitioning specialised to a binary tree): the split puts ⌈n/2⌉
// leaves left and ⌊n/2⌋ right, so subtree sizes at every level differ by at
// most one and the built tree has height ⌈log₂ n⌉ with sibling heights
// differing by at most one — at least as balanced as anything the
// incremental rebalancer produces, so later Inserts and Removes take over
// seamlessly. Construction is
// O(n log² n) comparisons and exactly 2n-1 pooled nodes, against n separate
// O(log n) heuristic descents (each potentially rotating) for the
// incremental path. On a non-empty tree BulkLoad degrades to a loop of
// Inserts.
func (t *BoxTree) BulkLoad(boxes []Interval, handles []int) []int32 {
	if len(boxes) != len(handles)*t.dims {
		panic(fmt.Sprintf("geom: BoxTree.BulkLoad got %d intervals for %d handles of %d dimensions",
			len(boxes), len(handles), t.dims))
	}
	tokens := make([]int32, len(handles))
	if t.count != 0 {
		for i, h := range handles {
			tokens[i] = t.Insert(boxes[i*t.dims:(i+1)*t.dims], h)
		}
		return tokens
	}

	// Materialise the leaves first: the token contract is "node index", so
	// every stored box needs its node before any internal node is allocated.
	leaves := make([]int32, 0, len(handles))
	for i, h := range handles {
		box := boxes[i*t.dims : (i+1)*t.dims]
		empty := false
		for _, iv := range box {
			if iv.Empty() {
				empty = true
				break
			}
		}
		if empty {
			tokens[i] = btNil
			continue
		}
		leaf := t.allocNode()
		n := &t.nodes[leaf]
		for d, iv := range box {
			n.lo[d] = iv.Min
			n.hi[d] = iv.Max
		}
		n.height = 0
		n.handle = h
		tokens[i] = leaf
		leaves = append(leaves, leaf)
	}
	t.count = len(leaves)
	if len(leaves) == 0 {
		return tokens
	}
	t.root = t.buildSubtree(leaves)
	t.nodes[t.root].parent = btNil
	return tokens
}

// buildSubtree packs the given leaves into a balanced subtree and returns its
// root. The leaves are reordered in place.
func (t *BoxTree) buildSubtree(leaves []int32) int32 {
	if len(leaves) == 1 {
		return leaves[0]
	}

	// Split on the dimension along which the box centers spread the widest:
	// that is where a median cut separates the population best, which is what
	// keeps sibling bounds from overlapping and stabs from visiting both
	// halves. Ties and all-identical centers degrade gracefully — the median
	// split still halves the population, so balance never depends on the data.
	splitDim := 0
	widest := math.Inf(-1)
	for d := 0; d < t.dims; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, leaf := range leaves {
			c := t.centerKey(leaf, d)
			lo = math.Min(lo, c)
			hi = math.Max(hi, c)
		}
		if spread := hi - lo; spread > widest {
			widest = spread
			splitDim = d
		}
	}
	slices.SortFunc(leaves, func(a, b int32) int {
		return cmp.Compare(t.centerKey(a, splitDim), t.centerKey(b, splitDim))
	})

	mid := (len(leaves) + 1) / 2
	c1 := t.buildSubtree(leaves[:mid])
	c2 := t.buildSubtree(leaves[mid:])
	p := t.allocNode()
	t.nodes[p].child1 = c1
	t.nodes[p].child2 = c2
	t.nodes[c1].parent = p
	t.nodes[c2].parent = p
	t.refitNode(p)
	return p
}

// centerKey is the sort key of a leaf's box along one dimension: the midpoint
// for finite bounds, the finite bound for half-open boxes, and 0 for fully
// unbounded ones (mirroring cappedWidth's rule that an unbounded extent
// carries no clustering signal).
func (t *BoxTree) centerKey(leaf int32, d int) float64 {
	n := &t.nodes[leaf]
	lo, hi := n.lo[d], n.hi[d]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return lo + (hi-lo)/2
	}
}

// Height returns the height of the tree (0 when empty or a single leaf); a
// balanced tree stays logarithmic in Len. Exposed for tests and diagnostics.
func (t *BoxTree) Height() int {
	if t.root == btNil {
		return 0
	}
	return int(t.nodes[t.root].height)
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
