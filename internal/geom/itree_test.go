package geom

import (
	"math"
	"sort"
	"testing"

	"sensorcq/internal/stats"
)

// stabLinear is the reference implementation: scan every interval.
func stabLinear(entries []Interval, v float64) []int {
	var out []int
	for i, iv := range entries {
		if iv.Contains(v) {
			out = append(out, i)
		}
	}
	return out
}

func stabTree(t *IntervalTree, v float64) []int {
	var out []int
	t.Stab(v, func(h int) bool {
		out = append(out, h)
		return true
	})
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIntervalTreeMatchesLinearScan is the quick-check property test: for
// random interval populations and random stab values (including exact
// endpoints), the tree reports exactly the intervals a linear scan reports.
func TestIntervalTreeMatchesLinearScan(t *testing.T) {
	rng := stats.NewRNG(1234)
	for trial := 0; trial < 40; trial++ {
		n := 1 + int(rng.Uint64()%200)
		entries := make([]Interval, 0, n)
		tree := &IntervalTree{}
		for i := 0; i < n; i++ {
			lo := rng.Range(-100, 100)
			var iv Interval
			switch rng.Uint64() % 5 {
			case 0: // point interval
				iv = Point(lo)
			case 1: // empty interval (Min > Max); must never match
				iv = Interval{Min: lo + 1, Max: lo}
			default:
				iv = NewInterval(lo, lo+rng.Range(0, 50))
			}
			entries = append(entries, iv)
			tree.Add(iv, i)
		}
		// Stab at random values plus every stored endpoint (touching
		// endpoints are the classic off-by-one spot).
		var probes []float64
		for i := 0; i < 50; i++ {
			probes = append(probes, rng.Range(-150, 150))
		}
		for _, iv := range entries {
			probes = append(probes, iv.Min, iv.Max)
		}
		for _, v := range probes {
			want := stabLinear(entries, v)
			got := stabTree(tree, v)
			if !equalInts(got, want) {
				t.Fatalf("trial %d: stab(%g) = %v, want %v", trial, v, got, want)
			}
		}
	}
}

// TestIntervalTreeIncrementalAdds interleaves insertions and queries to
// exercise the lazy rebuild path.
func TestIntervalTreeIncrementalAdds(t *testing.T) {
	rng := stats.NewRNG(99)
	tree := &IntervalTree{}
	var entries []Interval
	for i := 0; i < 120; i++ {
		lo := rng.Range(0, 1000)
		iv := NewInterval(lo, lo+rng.Range(0, 80))
		entries = append(entries, iv)
		tree.Add(iv, i)
		if i%7 == 0 {
			v := rng.Range(-50, 1100)
			if !equalInts(stabTree(tree, v), stabLinear(entries, v)) {
				t.Fatalf("after %d adds: stab(%g) diverged from linear scan", i+1, v)
			}
		}
	}
	if tree.Len() != len(entries) {
		t.Errorf("Len() = %d, want %d", tree.Len(), len(entries))
	}
}

// TestIntervalTreeUnboundedIntervals covers the overflow list for intervals
// with infinite endpoints.
func TestIntervalTreeUnboundedIntervals(t *testing.T) {
	tree := &IntervalTree{}
	entries := []Interval{
		{Min: math.Inf(-1), Max: math.Inf(1)},
		{Min: math.Inf(-1), Max: 0},
		{Min: 0, Max: math.Inf(1)},
		NewInterval(-5, 5),
	}
	for i, iv := range entries {
		tree.Add(iv, i)
	}
	for _, v := range []float64{-10, -5, 0, 3, 5, 10} {
		if !equalInts(stabTree(tree, v), stabLinear(entries, v)) {
			t.Errorf("stab(%g) diverged from linear scan", v)
		}
	}
}

// TestIntervalTreeEarlyStop checks that a false return from fn stops the
// traversal.
func TestIntervalTreeEarlyStop(t *testing.T) {
	tree := &IntervalTree{}
	for i := 0; i < 10; i++ {
		tree.Add(NewInterval(0, 100), i)
	}
	calls := 0
	tree.Stab(50, func(int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop visited %d entries, want 1", calls)
	}
}

func TestIntervalTreeEmpty(t *testing.T) {
	tree := &IntervalTree{}
	tree.Stab(0, func(int) bool {
		t.Fatal("empty tree must not report handles")
		return true
	})
	tree.Add(Interval{Min: 1, Max: 0}, 7) // empty interval: dropped
	if tree.Len() != 0 {
		t.Errorf("Len() after adding empty interval = %d, want 0", tree.Len())
	}
}
