package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"sensorcq"
)

// handleStream serves GET /subscriptions/{id}/stream: the data plane. Each
// delivery pushed to the subscription's channel sink is forwarded as one SSE
// frame:
//
//	event: delivery
//	data: {"subscription":"...","node":3,"round":7,"events":[...]}
//
// When the subscription is retracted (or the server drains) the sink
// closes and the stream ends with an "event: end" frame. Idle streams carry
// keep-alive comments every Config.KeepAliveInterval. At most one stream per
// subscription is served at a time; a second reader gets 409.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.subs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", sensorcq.ErrUnknownSubscription, id))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	ch := e.handle.Deliveries()
	if ch == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("subscription %s has no channel sink", id))
		return
	}
	if !e.streaming.CompareAndSwap(false, true) {
		writeError(w, http.StatusConflict, fmt.Errorf("subscription %s already has an active stream", id))
		return
	}
	defer e.streaming.Store(false)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	keepAlive := time.NewTicker(s.cfg.KeepAliveInterval)
	defer keepAlive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepAlive.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case d, open := <-ch:
			if !open {
				// Retraction or shutdown closed the sink: tell the
				// client this is a deliberate end of stream, not a
				// dropped connection.
				_, _ = fmt.Fprint(w, "event: end\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			payload, err := json.Marshal(deliveryWire(d))
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: delivery\ndata: %s\n\n", payload); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
