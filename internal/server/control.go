package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"sensorcq"
)

// writeJSON serialises one response body; encoding failures at this point
// can only be I/O errors on an already-started response, so they are
// dropped.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorWire{Error: err.Error()})
}

// errDraining is the body of every 503 issued after Shutdown started.
var errDraining = errors.New("server is draining")

// beginMutation serialises a System mutation: it takes the server mutex and
// rejects the request if the server is draining. On success the caller owns
// the mutex and must call s.mu.Unlock.
func (s *Server) beginMutation(w http.ResponseWriter) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return false
	}
	return true
}

// statusLocked builds the wire status of one entry; the caller holds s.mu.
func statusLocked(id string, e *subEntry) SubscriptionStatus {
	return SubscriptionStatus{
		ID:            id,
		Node:          int(e.handle.Node()),
		Active:        e.handle.Active(),
		Streaming:     e.streaming.Load(),
		Delivered:     e.handle.Delivered(),
		DroppedPushes: e.handle.DroppedPushes(),
	}
}

// handleRegister serves POST /subscriptions.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var spec SubscriptionSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding subscription spec: %w", err))
		return
	}
	sub, node, opts, err := s.buildSubscription(&spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.beginMutation(w) {
		return
	}
	defer s.mu.Unlock()
	subscribe := s.sys.SubscribeContext
	if sub.Aggregate != nil {
		subscribe = s.sys.SubscribeAggregateContext
	}
	handle, err := subscribe(r.Context(), node, sub, opts...)
	switch {
	case errors.Is(err, sensorcq.ErrDuplicateSubscription):
		writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		writeError(w, statusFor(r, err), err)
		return
	}
	e := &subEntry{handle: handle}
	s.subs[spec.ID] = e
	writeJSON(w, http.StatusCreated, statusLocked(spec.ID, e))
}

// handleList serves GET /subscriptions.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]SubscriptionStatus, 0, len(s.subs))
	for id, e := range s.subs {
		out = append(out, statusLocked(id, e))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// handleGet serves GET /subscriptions/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.subs[id]
	var st SubscriptionStatus
	if ok {
		st = statusLocked(id, e)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", sensorcq.ErrUnknownSubscription, id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleRetract serves DELETE /subscriptions/{id}. A successful retraction
// removes the entry, so retracting twice yields 404; an entry whose handle
// was already retracted out-of-band yields 409.
func (s *Server) handleRetract(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.beginMutation(w) {
		return
	}
	defer s.mu.Unlock()
	e, ok := s.subs[id]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", sensorcq.ErrUnknownSubscription, id))
		return
	}
	err := e.handle.Unsubscribe()
	switch {
	case errors.Is(err, sensorcq.ErrUnsubscribed):
		delete(s.subs, id)
		writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	delete(s.subs, id)
	w.WriteHeader(http.StatusNoContent)
}

// handleEvents serves POST /events: a single JSON EventSpec, or an NDJSON
// batch (Content-Type application/x-ndjson, one spec per line). The whole
// batch is validated before any event enters the network, so a malformed
// line rejects the batch atomically.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes)
	var events []sensorcq.Event
	if isNDJSON(r) {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			var spec EventSpec
			if err := json.Unmarshal([]byte(text), &spec); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("line %d: %w", line, err))
				return
			}
			ev, err := s.buildEvent(&spec)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("line %d: %w", line, err))
				return
			}
			events = append(events, ev)
		}
		if err := sc.Err(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		var spec EventSpec
		if err := json.NewDecoder(body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding event: %w", err))
			return
		}
		ev, err := s.buildEvent(&spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		events = append(events, ev)
	}

	if !s.beginMutation(w) {
		return
	}
	defer s.mu.Unlock()
	if err := s.sys.PublishBatchContext(r.Context(), events); err != nil {
		writeError(w, statusFor(r, err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"published": len(events)})
}

// handleMetrics serves GET /metrics. IndexStats flushes the runtime, so it
// counts as a mutation and is serialised like one.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	traffic := s.sys.Traffic()
	index := s.sys.IndexStats()
	var delivered, droppedPushes int64
	for _, h := range s.sys.Handles() {
		delivered += h.Delivered()
		droppedPushes += h.DroppedPushes()
	}
	m := MetricsWire{
		Approach:        string(s.sys.Approach()),
		Subscriptions:   len(s.subs),
		Delivered:       delivered,
		DroppedPushes:   droppedPushes,
		DroppedMessages: s.sys.DroppedMessages(),
		Watermark:       s.sys.Watermark(),
		Traffic: TrafficWire{
			AdvertisementLoad:     traffic.AdvertisementLoad,
			SubscriptionLoad:      traffic.SubscriptionLoad,
			UnsubscriptionLoad:    traffic.UnsubscriptionLoad,
			EventLoad:             traffic.EventLoad,
			PartialAggregateLoad:  traffic.PartialAggregateLoad,
			PartialAggregateBytes: traffic.PartialAggregateBytes,
		},
		Index: IndexWire{
			Trees:      index.Trees,
			Members:    index.Members,
			Covered:    index.Covered,
			Boxes:      index.Boxes,
			MaxHeight:  index.MaxHeight,
			Lookups:    index.Lookups,
			Candidates: index.Candidates,
		},
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, m)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// isNDJSON reports whether the request carries a newline-delimited batch.
func isNDJSON(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == "application/x-ndjson"
}

// statusFor maps a mutation error onto an HTTP status: a cancelled request
// context is the client's doing (499-style, reported as 400), everything
// else is a server-side failure.
func statusFor(r *http.Request, err error) int {
	if ctxErr := r.Context().Err(); ctxErr != nil && errors.Is(err, ctxErr) {
		return http.StatusBadRequest
	}
	if errors.Is(err, sensorcq.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
