// Package server wraps a sensorcq.System behind two HTTP planes so the
// continuous-query engine can serve remote users instead of a single
// in-process owner.
//
// The control plane is plain JSON over request/response:
//
//	POST   /subscriptions          register a subscription (SubscriptionSpec)
//	GET    /subscriptions          list registered subscriptions
//	GET    /subscriptions/{id}     one subscription's status
//	DELETE /subscriptions/{id}     retract network-wide
//	POST   /events                 ingest one reading (JSON) or a batch
//	                               (NDJSON, one EventSpec per line)
//	GET    /metrics                traffic, watermark, drop and index stats
//	GET    /healthz                liveness ("ok", or "draining")
//
// The data plane streams results:
//
//	GET /subscriptions/{id}/stream Server-Sent Events; every complex event
//	                               delivered to the subscription is pushed
//	                               as an "event: delivery" frame fed from
//	                               the SubscriptionHandle's channel sink. At
//	                               most one stream per subscription at a
//	                               time (a second concurrent reader gets
//	                               409).
//
// Every System mutation (register, retract, ingest) is serialised through
// one server mutex, so the daemon is safe over both the sequential engine
// (which is not goroutine-safe) and the concurrent one. Streams run outside
// the mutex: they only read from their subscription's delivery channel.
//
// Shutdown drains in this order: first new mutations are refused with 503
// (draining), then in-flight rounds propagate to quiescence
// (System.CloseContext bounded by Config.DrainTimeout — zero messages are
// dropped unless the bound expires), and only then is every handle's
// delivery channel closed, which ends each SSE stream with an "event: end"
// frame. The HTTP listener itself is the caller's to close (cmd/cqd calls
// http.Server.Shutdown after Server.Shutdown returns, when no stream can
// linger).
package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"

	"sensorcq"
)

// Server exposes one sensorcq.System over the two HTTP planes. Create it
// with New, mount Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg Config
	sys *sensorcq.System

	mux *http.ServeMux
	seq atomic.Uint64 // server-assigned event sequence numbers

	// mu serialises every System mutation and guards subs. The sequential
	// engine processes injections inline on the calling goroutine, so two
	// concurrent HTTP mutations must never reach it at once.
	mu       sync.Mutex
	subs     map[string]*subEntry
	draining bool
}

// subEntry is one registered subscription: its lifecycle handle plus the
// stream claim (at most one SSE reader at a time).
type subEntry struct {
	handle    *sensorcq.SubscriptionHandle
	streaming atomic.Bool
}

// New validates the config and builds a server around an existing System.
// The server takes over the System's lifecycle: Shutdown closes it.
func New(sys *sensorcq.System, cfg Config) (*Server, error) {
	if err := cfg.validate(sys); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:  cfg.withDefaults(),
		sys:  sys,
		subs: make(map[string]*subEntry),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /subscriptions", s.handleRegister)
	s.mux.HandleFunc("GET /subscriptions", s.handleList)
	s.mux.HandleFunc("GET /subscriptions/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /subscriptions/{id}", s.handleRetract)
	s.mux.HandleFunc("GET /subscriptions/{id}/stream", s.handleStream)
	s.mux.HandleFunc("POST /events", s.handleEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the HTTP handler serving both planes.
func (s *Server) Handler() http.Handler { return s.mux }

// System returns the wrapped system (tests compare /metrics against it).
func (s *Server) System() *sensorcq.System { return s.sys }

// Shutdown gracefully stops the service plane: it refuses new mutations
// with 503, waits for the mutation in flight (if any) to finish, drains the
// network to quiescence bounded by Config.DrainTimeout, and closes every
// subscription handle — ending each SSE stream with an "event: end" frame.
// It returns the drain error (nil on a clean drain, context.DeadlineExceeded
// if the bound expired first). The caller shuts the HTTP listener down
// afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return sensorcq.ErrClosed
	}
	s.draining = true
	s.mu.Unlock()

	dctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	return s.sys.CloseContext(dctx)
}

// sensorByID resolves a sensor in the wrapped deployment.
func (s *Server) sensorByID(id sensorcq.SensorID) (sensorcq.Sensor, bool) {
	dep := s.sys.Deployment()
	node, ok := dep.SensorHost[id]
	if !ok {
		return sensorcq.Sensor{}, false
	}
	for _, sensor := range dep.NodeSensors[node] {
		if sensor.ID == id {
			return sensor, true
		}
	}
	return sensorcq.Sensor{}, false
}
