package server

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"sensorcq"
)

// The JSON wire format of the control and data planes. Specs are what
// clients POST; wire structs are what the server returns. Every struct maps
// onto the public sensorcq types without exposing internal packages.

// SensorFilterSpec is one identified filter: a value range over a named
// sensor. The sensor's attribute type and location are resolved from the
// deployment, so clients only name the sensor.
type SensorFilterSpec struct {
	Sensor string  `json:"sensor"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// AttrFilterSpec is one abstract filter: a value range over an attribute
// type (e.g. "ambient-temperature").
type AttrFilterSpec struct {
	Attr string  `json:"attr"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// RegionSpec is the rectangular spatial constraint of an abstract
// subscription, spanned by two opposite corners.
type RegionSpec struct {
	X0 float64 `json:"x0"`
	Y0 float64 `json:"y0"`
	X1 float64 `json:"x1"`
	Y1 float64 `json:"y1"`
}

// BackpressureSpec selects the sink policy of one subscription:
// "drop_newest" (default), "drop_oldest" or "block" with a timeout in
// milliseconds.
type BackpressureSpec struct {
	Mode      string `json:"mode"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// AggregateSpecWire turns a subscription spec into a windowed aggregate
// continuous query over its single attribute filter. Quantile, Lo, Hi,
// Bits and K parameterise the q-digest sketch and apply to func "quantile"
// only; Exact selects the ship-every-reading baseline instead.
type AggregateSpecWire struct {
	Func         string  `json:"func"`
	WindowRounds int     `json:"window_rounds"`
	Quantile     float64 `json:"quantile,omitempty"`
	Lo           float64 `json:"lo,omitempty"`
	Hi           float64 `json:"hi,omitempty"`
	Bits         uint    `json:"bits,omitempty"`
	K            int     `json:"k,omitempty"`
	Exact        bool    `json:"exact,omitempty"`
}

// SubscriptionSpec is the POST /subscriptions request body. Exactly one of
// Sensors (identified subscription) or Attributes (abstract subscription)
// must be non-empty. With Aggregate set, the spec must carry exactly one
// attribute filter and registers a windowed aggregate query instead of a
// complex-event subscription.
type SubscriptionSpec struct {
	ID     string `json:"id"`
	Node   *int   `json:"node,omitempty"`
	DeltaT int64  `json:"delta_t"`
	// DeltaL is the spatial correlation distance of an abstract
	// subscription; omitted means unconstrained.
	DeltaL *float64 `json:"delta_l,omitempty"`
	// Region bounds an abstract subscription's sensors; omitted means
	// everywhere.
	Region       *RegionSpec        `json:"region,omitempty"`
	Sensors      []SensorFilterSpec `json:"sensors,omitempty"`
	Attributes   []AttrFilterSpec   `json:"attributes,omitempty"`
	Aggregate    *AggregateSpecWire `json:"aggregate,omitempty"`
	SinkBuffer   *int               `json:"sink_buffer,omitempty"`
	Backpressure *BackpressureSpec  `json:"backpressure,omitempty"`
}

// SubscriptionStatus is the wire form of one registered subscription.
type SubscriptionStatus struct {
	ID            string `json:"id"`
	Node          int    `json:"node"`
	Active        bool   `json:"active"`
	Streaming     bool   `json:"streaming"`
	Delivered     int64  `json:"delivered"`
	DroppedPushes int64  `json:"dropped_pushes"`
}

// EventSpec is one reading POSTed to /events (single JSON object, or one
// NDJSON line of a batch). The sensor's attribute type and location are
// resolved from the deployment. A zero Seq is assigned from the server's
// own counter; callers injecting their own sequence numbers should do so
// for every event.
type EventSpec struct {
	Seq    uint64  `json:"seq,omitempty"`
	Sensor string  `json:"sensor"`
	Value  float64 `json:"value"`
	Time   int64   `json:"time"`
	Round  int     `json:"round,omitempty"`
}

// EventWire is one component reading of a delivered complex event.
type EventWire struct {
	Seq    uint64  `json:"seq"`
	Sensor string  `json:"sensor"`
	Attr   string  `json:"attr"`
	Value  float64 `json:"value"`
	Time   int64   `json:"time"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
}

// JSONFloat is a float64 that survives JSON encoding when non-finite: an
// empty window's min/max/mean/quantile is NaN, which encoding/json rejects,
// so NaN and the infinities are carried as null instead of killing the SSE
// stream.
type JSONFloat float64

// MarshalJSON encodes non-finite values as null.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON decodes null back to NaN.
func (f *JSONFloat) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = JSONFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// AggregateResultWire is one finalised window of an aggregate query. Value
// is null when the window was empty and the aggregate has no neutral
// element (min, max, mean, quantile).
type AggregateResultWire struct {
	Window     int       `json:"window"`
	StartRound int       `json:"start_round"`
	EndRound   int       `json:"end_round"`
	Value      JSONFloat `json:"value"`
	Count      int64     `json:"count"`
}

// DeliveryWire is the data frame of the SSE stream: one complex event — or,
// for an aggregate query, one finalised window — delivered to a
// subscription. Exactly one of Events and Aggregate is set.
type DeliveryWire struct {
	Subscription string               `json:"subscription"`
	Node         int                  `json:"node"`
	Round        int                  `json:"round"`
	Events       []EventWire          `json:"events,omitempty"`
	Aggregate    *AggregateResultWire `json:"aggregate,omitempty"`
}

// TrafficWire mirrors sensorcq.TrafficStats.
type TrafficWire struct {
	AdvertisementLoad     int64 `json:"advertisement_load"`
	SubscriptionLoad      int64 `json:"subscription_load"`
	UnsubscriptionLoad    int64 `json:"unsubscription_load"`
	EventLoad             int64 `json:"event_load"`
	PartialAggregateLoad  int64 `json:"partial_aggregate_load"`
	PartialAggregateBytes int64 `json:"partial_aggregate_bytes"`
}

// IndexWire mirrors sensorcq.IndexStats.
type IndexWire struct {
	Trees      int   `json:"trees"`
	Members    int   `json:"members"`
	Covered    int   `json:"covered"`
	Boxes      int   `json:"boxes"`
	MaxHeight  int   `json:"max_height"`
	Lookups    int64 `json:"lookups"`
	Candidates int64 `json:"candidates"`
}

// MetricsWire is the GET /metrics response body.
type MetricsWire struct {
	Approach        string      `json:"approach"`
	Subscriptions   int         `json:"subscriptions"`
	Delivered       int64       `json:"delivered"`
	DroppedPushes   int64       `json:"dropped_pushes"`
	DroppedMessages int64       `json:"dropped_messages"`
	Watermark       int         `json:"watermark"`
	Traffic         TrafficWire `json:"traffic"`
	Index           IndexWire   `json:"index"`
}

// errorWire is the JSON body of every non-2xx response.
type errorWire struct {
	Error string `json:"error"`
}

// buildSubscription translates a spec into a sensorcq.Subscription plus the
// node and subscribe options to register it with. Validation errors are
// client errors (HTTP 400).
func (s *Server) buildSubscription(spec *SubscriptionSpec) (*sensorcq.Subscription, sensorcq.NodeID, []sensorcq.SubscribeOption, error) {
	if spec.ID == "" {
		return nil, 0, nil, fmt.Errorf("subscription id is required")
	}
	if (len(spec.Sensors) == 0) == (len(spec.Attributes) == 0) {
		return nil, 0, nil, fmt.Errorf("exactly one of sensors (identified) or attributes (abstract) must be set")
	}

	dep := s.sys.Deployment()
	node := s.cfg.DefaultNode
	if spec.Node != nil {
		node = sensorcq.NodeID(*spec.Node)
		if int(node) < 0 || int(node) >= dep.Graph.NumNodes() {
			return nil, 0, nil, fmt.Errorf("node %d outside deployment [0,%d)", node, dep.Graph.NumNodes())
		}
	}

	var sub *sensorcq.Subscription
	var err error
	if spec.Aggregate != nil {
		if len(spec.Sensors) != 0 || len(spec.Attributes) != 1 {
			return nil, 0, nil, fmt.Errorf("an aggregate subscription needs exactly one attribute filter (and no sensor filters)")
		}
		f := spec.Attributes[0]
		if f.Attr == "" {
			return nil, 0, nil, fmt.Errorf("attribute filter: attr is required")
		}
		fn, ferr := sensorcq.ParseAggregateFunc(spec.Aggregate.Func)
		if ferr != nil {
			return nil, 0, nil, ferr
		}
		region := sensorcq.Everywhere()
		if spec.Region != nil {
			region = sensorcq.NewRegion(spec.Region.X0, spec.Region.Y0, spec.Region.X1, spec.Region.Y1)
		}
		sub, err = sensorcq.NewAggregateSubscription(
			sensorcq.SubscriptionID(spec.ID),
			sensorcq.AttributeFilter{Attr: sensorcq.AttributeType(f.Attr), Range: sensorcq.NewInterval(f.Min, f.Max)},
			region,
			sensorcq.AggregateSpec{
				Func:         fn,
				WindowRounds: spec.Aggregate.WindowRounds,
				Quantile:     spec.Aggregate.Quantile,
				Lo:           spec.Aggregate.Lo,
				Hi:           spec.Aggregate.Hi,
				Bits:         spec.Aggregate.Bits,
				K:            spec.Aggregate.K,
				Exact:        spec.Aggregate.Exact,
			},
		)
	} else if len(spec.Sensors) > 0 {
		filters := make([]sensorcq.SensorFilter, len(spec.Sensors))
		for i, f := range spec.Sensors {
			sensor, ok := s.sensorByID(sensorcq.SensorID(f.Sensor))
			if !ok {
				return nil, 0, nil, fmt.Errorf("unknown sensor %q", f.Sensor)
			}
			filters[i] = sensorcq.SensorFilter{
				Sensor:   sensor.ID,
				Attr:     sensor.Attr,
				Location: sensor.Location,
				Range:    sensorcq.NewInterval(f.Min, f.Max),
			}
		}
		sub, err = sensorcq.NewIdentifiedSubscription(sensorcq.SubscriptionID(spec.ID), filters, sensorcq.Timestamp(spec.DeltaT))
	} else {
		filters := make([]sensorcq.AttributeFilter, len(spec.Attributes))
		for i, f := range spec.Attributes {
			if f.Attr == "" {
				return nil, 0, nil, fmt.Errorf("attribute filter %d: attr is required", i)
			}
			filters[i] = sensorcq.AttributeFilter{
				Attr:  sensorcq.AttributeType(f.Attr),
				Range: sensorcq.NewInterval(f.Min, f.Max),
			}
		}
		region := sensorcq.Everywhere()
		if spec.Region != nil {
			region = sensorcq.NewRegion(spec.Region.X0, spec.Region.Y0, spec.Region.X1, spec.Region.Y1)
		}
		deltaL := sensorcq.NoSpatialConstraint
		if spec.DeltaL != nil {
			deltaL = *spec.DeltaL
		}
		sub, err = sensorcq.NewAbstractSubscription(sensorcq.SubscriptionID(spec.ID), filters, region, sensorcq.Timestamp(spec.DeltaT), deltaL)
	}
	if err != nil {
		return nil, 0, nil, err
	}

	buffer := s.cfg.SinkBuffer
	if spec.SinkBuffer != nil {
		if *spec.SinkBuffer < 1 {
			return nil, 0, nil, fmt.Errorf("sink_buffer must be >= 1 (the SSE stream needs a channel sink)")
		}
		buffer = *spec.SinkBuffer
	}
	mode, timeout := s.cfg.Backpressure, s.cfg.BackpressureTimeout
	if spec.Backpressure != nil {
		mode, err = sensorcq.ParseBackpressureMode(spec.Backpressure.Mode)
		if err != nil {
			return nil, 0, nil, err
		}
		timeout = time.Duration(spec.Backpressure.TimeoutMS) * time.Millisecond
	}
	opts := []sensorcq.SubscribeOption{
		sensorcq.WithSinkBuffer(buffer),
		sensorcq.WithBackpressure(mode, timeout),
	}
	return sub, node, opts, nil
}

// buildEvent translates an EventSpec into a reading, resolving the sensor's
// attribute type and location from the deployment.
func (s *Server) buildEvent(spec *EventSpec) (sensorcq.Event, error) {
	sensor, ok := s.sensorByID(sensorcq.SensorID(spec.Sensor))
	if !ok {
		return sensorcq.Event{}, fmt.Errorf("unknown sensor %q", spec.Sensor)
	}
	seq := spec.Seq
	if seq == 0 {
		seq = s.seq.Add(1)
	}
	return sensorcq.Event{
		Seq:      seq,
		Sensor:   sensor.ID,
		Attr:     sensor.Attr,
		Location: sensor.Location,
		Value:    spec.Value,
		Time:     sensorcq.Timestamp(spec.Time),
		Round:    spec.Round,
	}, nil
}

// deliveryWire converts a delivery into its SSE frame payload.
func deliveryWire(d sensorcq.Delivery) DeliveryWire {
	if d.Aggregate != nil {
		return DeliveryWire{
			Subscription: string(d.SubID),
			Node:         int(d.Node),
			Round:        d.Round,
			Aggregate: &AggregateResultWire{
				Window:     d.Aggregate.Window,
				StartRound: d.Aggregate.StartRound,
				EndRound:   d.Aggregate.EndRound,
				Value:      JSONFloat(d.Aggregate.Value),
				Count:      d.Aggregate.Count,
			},
		}
	}
	events := make([]EventWire, len(d.Events))
	for i, ev := range d.Events {
		events[i] = EventWire{
			Seq:    ev.Seq,
			Sensor: string(ev.Sensor),
			Attr:   string(ev.Attr),
			Value:  ev.Value,
			Time:   int64(ev.Time),
			X:      ev.Location.X,
			Y:      ev.Location.Y,
		}
	}
	return DeliveryWire{
		Subscription: string(d.SubID),
		Node:         int(d.Node),
		Round:        d.Round,
		Events:       events,
	}
}
