package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sensorcq"
)

// newTestServer builds the six-node walkthrough network behind the HTTP
// service and returns the httptest server wrapping it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	dep, err := sensorcq.NewTopology(6).
		Link(5, 4).Link(4, 3).Link(3, 0).Link(3, 1).Link(4, 2).
		PlaceSensor(0, sensorcq.Sensor{ID: "a", Attr: sensorcq.AmbientTemperature}).
		PlaceSensor(1, sensorcq.Sensor{ID: "b", Attr: sensorcq.RelativeHumidity}).
		PlaceSensor(2, sensorcq.Sensor{ID: "c", Attr: sensorcq.WindSpeed}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sensorcq.NewSystem(dep, sensorcq.Config{Approach: sensorcq.FilterSplitForward, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.DefaultNode = 5
	srv, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = sys.Close()
	})
	return srv, ts
}

const walkthroughSpec = `{"id":"mild-and-dry","delta_t":30,"sensors":[` +
	`{"sensor":"a","min":50,"max":80},{"sensor":"b","min":10,"max":30}]}`

func doJSON(t *testing.T, method, url, contentType, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// sseFrame is one parsed SSE frame (event name + data payload).
type sseFrame struct {
	event string
	data  string
}

// readSSE parses frames off an open SSE stream into the channel until the
// stream ends.
func readSSE(body io.Reader, frames chan<- sseFrame) {
	defer close(frames)
	sc := bufio.NewScanner(body)
	var f sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			f.data = strings.TrimPrefix(line, "data: ")
		case line == "" && f.event != "":
			frames <- f
			f = sseFrame{}
		}
	}
}

func waitFrame(t *testing.T, frames <-chan sseFrame, wantEvent string) sseFrame {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatalf("stream ended while waiting for %q frame", wantEvent)
			}
			if f.event == wantEvent {
				return f
			}
		case <-deadline:
			t.Fatalf("no %q frame within 10s", wantEvent)
		}
	}
}

// TestEndToEnd drives the full two-plane flow over real HTTP: register,
// stream, ingest an NDJSON batch, receive the complex event as an SSE frame,
// check /metrics against the wrapped System, retract, and watch the stream
// end.
func TestEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	// Register on the control plane.
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/subscriptions", "application/json", walkthroughSpec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %s %s", resp.Status, body)
	}
	var st SubscriptionStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "mild-and-dry" || st.Node != 5 || !st.Active {
		t.Fatalf("register status = %+v", st)
	}

	// Listing shows it.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/subscriptions", "", "")
	var list []SubscriptionStatus
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(list) != 1 || list[0].ID != "mild-and-dry" {
		t.Fatalf("list = %s %s", resp.Status, body)
	}

	// Open the data plane.
	stream, err := http.Get(ts.URL + "/subscriptions/mild-and-dry/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}
	frames := make(chan sseFrame, 16)
	go readSSE(stream.Body, frames)

	// A second stream for the same subscription is refused.
	second, err := http.Get(ts.URL + "/subscriptions/mild-and-dry/stream")
	if err != nil {
		t.Fatal(err)
	}
	second.Body.Close()
	if second.StatusCode != http.StatusConflict {
		t.Fatalf("second stream = %s, want 409", second.Status)
	}

	// Ingest an NDJSON batch: two correlating readings plus one that no
	// subscription asks for.
	batch := `{"seq":1,"sensor":"a","value":62,"time":100}` + "\n" +
		`{"seq":2,"sensor":"c","value":7,"time":101}` + "\n" +
		`{"seq":3,"sensor":"b","value":22,"time":105}` + "\n"
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/events", "application/x-ndjson", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s %s", resp.Status, body)
	}
	var pub map[string]int
	if err := json.Unmarshal(body, &pub); err != nil {
		t.Fatal(err)
	}
	if pub["published"] != 3 {
		t.Fatalf("published = %d, want 3", pub["published"])
	}

	// The correlated complex event arrives on the stream.
	f := waitFrame(t, frames, "delivery")
	var d DeliveryWire
	if err := json.Unmarshal([]byte(f.data), &d); err != nil {
		t.Fatalf("delivery frame %q: %v", f.data, err)
	}
	if d.Subscription != "mild-and-dry" || d.Node != 5 || len(d.Events) != 2 {
		t.Fatalf("delivery = %+v", d)
	}
	if d.Events[0].Sensor != "a" && d.Events[1].Sensor != "a" {
		t.Fatalf("delivery events missing sensor a: %+v", d.Events)
	}

	// A single-event POST also works and correlates with nothing (too far in
	// time from the batch).
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/events", "application/json",
		`{"seq":4,"sensor":"a","value":60,"time":500}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single ingest: %s %s", resp.Status, body)
	}

	// /metrics agrees with the wrapped System.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s %s", resp.Status, body)
	}
	var m MetricsWire
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	traffic := srv.System().Traffic()
	if m.Traffic.EventLoad != traffic.EventLoad ||
		m.Traffic.SubscriptionLoad != traffic.SubscriptionLoad ||
		m.Traffic.AdvertisementLoad != traffic.AdvertisementLoad ||
		m.Traffic.UnsubscriptionLoad != traffic.UnsubscriptionLoad {
		t.Errorf("metrics traffic %+v != System.Traffic() %+v", m.Traffic, traffic)
	}
	if m.Subscriptions != 1 || m.Delivered != 1 || m.DroppedPushes != 0 || m.DroppedMessages != 0 {
		t.Errorf("metrics = %+v, want 1 subscription, 1 delivered, 0 dropped", m)
	}
	if m.Approach != string(sensorcq.FilterSplitForward) {
		t.Errorf("metrics approach = %q", m.Approach)
	}

	// Retract: 204, the stream ends with an "event: end" frame, and the
	// subscription is gone from the registry.
	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/subscriptions/mild-and-dry", "", "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("retract: %s %s", resp.Status, body)
	}
	waitFrame(t, frames, "end")
	for range frames { // stream closes after the end frame
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/subscriptions/mild-and-dry", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after retract = %s, want 404", resp.Status)
	}
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/subscriptions/mild-and-dry", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double retract = %s, want 404", resp.Status)
	}
}

// TestControlPlaneErrors pins the error contract of the control plane.
func TestControlPlaneErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for _, tc := range []struct {
		name, method, path, ct, body string
		want                         int
	}{
		{"malformed spec", http.MethodPost, "/subscriptions", "application/json", `{"id":`, http.StatusBadRequest},
		{"no filters", http.MethodPost, "/subscriptions", "application/json", `{"id":"x","delta_t":30}`, http.StatusBadRequest},
		{"both filter kinds", http.MethodPost, "/subscriptions", "application/json",
			`{"id":"x","delta_t":30,"sensors":[{"sensor":"a","min":0,"max":1}],"attributes":[{"attr":"wind_speed","min":0,"max":1}]}`,
			http.StatusBadRequest},
		{"unknown sensor", http.MethodPost, "/subscriptions", "application/json",
			`{"id":"x","delta_t":30,"sensors":[{"sensor":"ghost","min":0,"max":1}]}`, http.StatusBadRequest},
		{"node out of range", http.MethodPost, "/subscriptions", "application/json",
			`{"id":"x","node":99,"delta_t":30,"sensors":[{"sensor":"a","min":0,"max":1}]}`, http.StatusBadRequest},
		{"bad backpressure", http.MethodPost, "/subscriptions", "application/json",
			`{"id":"x","delta_t":30,"sensors":[{"sensor":"a","min":0,"max":1}],"backpressure":{"mode":"bogus"}}`,
			http.StatusBadRequest},
		{"unknown event sensor", http.MethodPost, "/events", "application/json", `{"sensor":"ghost","value":1}`, http.StatusBadRequest},
		{"malformed ndjson line", http.MethodPost, "/events", "application/x-ndjson",
			`{"sensor":"a","value":1}` + "\n" + `{"sensor":`, http.StatusBadRequest},
		{"unknown subscription status", http.MethodGet, "/subscriptions/nope", "", "", http.StatusNotFound},
		{"unknown subscription stream", http.MethodGet, "/subscriptions/nope/stream", "", "", http.StatusNotFound},
		{"unknown subscription retract", http.MethodDelete, "/subscriptions/nope", "", "", http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doJSON(t, tc.method, ts.URL+tc.path, tc.ct, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s = %s %s, want %d", tc.method, tc.path, resp.Status, body, tc.want)
			}
			var e errorWire
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error body %q is not an {\"error\": ...} object", body)
			}
		})
	}

	// Duplicate registration is a conflict.
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/subscriptions", "application/json", walkthroughSpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first register = %s", resp.Status)
	}
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/subscriptions", "application/json", walkthroughSpec)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register = %s %s, want 409", resp.Status, body)
	}
}

// TestAbstractSubscriptionOverHTTP registers an abstract (attribute-typed)
// subscription and checks it correlates readings from matching sensors.
func TestAbstractSubscriptionOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	spec := fmt.Sprintf(`{"id":"anywhere","delta_t":30,"attributes":[`+
		`{"attr":%q,"min":50,"max":80},{"attr":%q,"min":10,"max":30}]}`,
		string(sensorcq.AmbientTemperature), string(sensorcq.RelativeHumidity))
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/subscriptions", "application/json", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register abstract: %s %s", resp.Status, body)
	}

	stream, err := http.Get(ts.URL + "/subscriptions/anywhere/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	frames := make(chan sseFrame, 16)
	go readSSE(stream.Body, frames)

	batch := `{"sensor":"a","value":62,"time":100}` + "\n" +
		`{"sensor":"b","value":22,"time":105}` + "\n"
	if resp, body := doJSON(t, http.MethodPost, ts.URL+"/events", "application/x-ndjson", batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s %s", resp.Status, body)
	}
	f := waitFrame(t, frames, "delivery")
	var d DeliveryWire
	if err := json.Unmarshal([]byte(f.data), &d); err != nil {
		t.Fatal(err)
	}
	if d.Subscription != "anywhere" || len(d.Events) != 2 {
		t.Fatalf("delivery = %+v", d)
	}
	// Server-assigned sequence numbers are distinct and non-zero.
	if d.Events[0].Seq == 0 || d.Events[1].Seq == 0 || d.Events[0].Seq == d.Events[1].Seq {
		t.Errorf("server-assigned seqs = %d, %d", d.Events[0].Seq, d.Events[1].Seq)
	}
}

// TestAggregateSubscriptionOverHTTP registers a windowed aggregate query on
// the control plane, closes a window by ingesting one batch per round, reads
// the finalised window off the SSE stream, and cross-checks the
// partial-aggregate traffic counter in /metrics against the wrapped System.
func TestAggregateSubscriptionOverHTTP(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	spec := fmt.Sprintf(`{"id":"avg-temp","attributes":[{"attr":%q,"min":0,"max":100}],`+
		`"aggregate":{"func":"mean","window_rounds":2}}`,
		string(sensorcq.AmbientTemperature))
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/subscriptions", "application/json", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register aggregate: %s %s", resp.Status, body)
	}

	stream, err := http.Get(ts.URL + "/subscriptions/avg-temp/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	frames := make(chan sseFrame, 16)
	go readSSE(stream.Body, frames)

	// Each POST /events batch is one quiescent replay round followed by a
	// flush, so two batches close the first two-round window.
	for round, ev := range []string{
		`{"sensor":"a","value":60,"time":100}`,
		`{"sensor":"a","value":70,"time":101}`,
	} {
		if resp, body := doJSON(t, http.MethodPost, ts.URL+"/events", "application/json", ev); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest round %d: %s %s", round+1, resp.Status, body)
		}
	}

	f := waitFrame(t, frames, "delivery")
	var d DeliveryWire
	if err := json.Unmarshal([]byte(f.data), &d); err != nil {
		t.Fatalf("delivery frame %q: %v", f.data, err)
	}
	if d.Subscription != "avg-temp" || d.Node != 5 || len(d.Events) != 0 {
		t.Fatalf("delivery = %+v", d)
	}
	if d.Aggregate == nil {
		t.Fatalf("delivery has no aggregate payload: %s", f.data)
	}
	if d.Aggregate.Value != 65 || d.Aggregate.Count != 2 ||
		d.Aggregate.StartRound != 1 || d.Aggregate.EndRound != 2 || d.Round != 2 {
		t.Fatalf("aggregate window = %+v (round %d), want mean 65 of 2 over rounds [1,2]", d.Aggregate, d.Round)
	}

	// An empty window (two rounds of non-matching readings) delivers a NaN
	// mean, which must reach the stream as a null value instead of a JSON
	// encoding error that silently kills it.
	for round, ev := range []string{
		`{"sensor":"c","value":5,"time":200}`,
		`{"sensor":"c","value":6,"time":201}`,
	} {
		if resp, body := doJSON(t, http.MethodPost, ts.URL+"/events", "application/json", ev); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest round %d: %s %s", round+3, resp.Status, body)
		}
	}
	f = waitFrame(t, frames, "delivery")
	if !strings.Contains(f.data, `"value":null`) {
		t.Fatalf("empty-window frame = %q, want null value", f.data)
	}
	if err := json.Unmarshal([]byte(f.data), &d); err != nil {
		t.Fatalf("empty-window frame %q: %v", f.data, err)
	}
	if d.Aggregate == nil || d.Aggregate.Count != 0 || !math.IsNaN(float64(d.Aggregate.Value)) {
		t.Fatalf("empty-window aggregate = %+v, want count 0 and NaN value", d.Aggregate)
	}

	// The sketch partials travelled the dissemination tree, and /metrics
	// reports exactly what the wrapped System counted.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s %s", resp.Status, body)
	}
	var m MetricsWire
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	traffic := srv.System().Traffic()
	if m.Traffic.PartialAggregateLoad != traffic.PartialAggregateLoad ||
		m.Traffic.PartialAggregateBytes != traffic.PartialAggregateBytes {
		t.Errorf("metrics partial-aggregate traffic %+v != System.Traffic() %+v", m.Traffic, traffic)
	}
	if m.Traffic.PartialAggregateLoad == 0 {
		t.Error("partial_aggregate_load = 0, want upstream partials on the dissemination tree")
	}
}

// TestGracefulShutdown pins the drain contract: in-flight work completes
// with zero dropped messages, streams end with an "event: end" frame, and
// mutations during/after the drain get 503.
func TestGracefulShutdown(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	if resp, body := doJSON(t, http.MethodPost, ts.URL+"/subscriptions", "application/json", walkthroughSpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %s %s", resp.Status, body)
	}
	stream, err := http.Get(ts.URL + "/subscriptions/mild-and-dry/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	frames := make(chan sseFrame, 16)
	go readSSE(stream.Body, frames)

	// Deliver one event, then shut down.
	batch := `{"seq":1,"sensor":"a","value":62,"time":100}` + "\n" +
		`{"seq":2,"sensor":"b","value":22,"time":105}` + "\n"
	if resp, body := doJSON(t, http.MethodPost, ts.URL+"/events", "application/x-ndjson", batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s %s", resp.Status, body)
	}
	waitFrame(t, frames, "delivery")

	var wg sync.WaitGroup
	wg.Add(1)
	var endSeen bool
	go func() {
		defer wg.Done()
		for f := range frames {
			if f.event == "end" {
				endSeen = true
			}
		}
	}()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if !endSeen {
		t.Error("stream did not receive an end frame on shutdown")
	}

	// Post-shutdown state: drain dropped nothing, mutations are refused,
	// health reports draining, second shutdown reports closed.
	if got := srv.System().DroppedMessages(); got != 0 {
		t.Errorf("dropped messages after drain = %d, want 0", got)
	}
	if resp, body := doJSON(t, http.MethodPost, ts.URL+"/events", "application/json",
		`{"sensor":"a","value":60,"time":200}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("ingest after shutdown = %s %s, want 503", resp.Status, body)
	}
	if resp, body := doJSON(t, http.MethodPost, ts.URL+"/subscriptions", "application/json",
		`{"id":"late","delta_t":30,"sensors":[{"sensor":"a","min":0,"max":1}]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("register after shutdown = %s %s, want 503", resp.Status, body)
	}
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "draining") {
		t.Errorf("healthz after shutdown = %s %s, want draining", resp.Status, body)
	}
	if err := srv.Shutdown(context.Background()); !errors.Is(err, sensorcq.ErrClosed) {
		t.Errorf("second Shutdown = %v, want ErrClosed", err)
	}
}

// TestConfigValidation pins New's rejection of broken configs.
func TestConfigValidation(t *testing.T) {
	dep, err := sensorcq.NewTopology(2).Link(0, 1).
		PlaceSensor(0, sensorcq.Sensor{ID: "s", Attr: sensorcq.WindSpeed}).Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sensorcq.NewSystem(dep, sensorcq.Config{Approach: sensorcq.FilterSplitForward, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if _, err := New(nil, Config{}); err == nil {
		t.Error("New(nil) should fail")
	}
	if _, err := New(sys, Config{DefaultNode: 7}); err == nil {
		t.Error("out-of-range default node should fail")
	}
	if _, err := New(sys, Config{Backpressure: sensorcq.BackpressureMode(42)}); err == nil {
		t.Error("unknown backpressure mode should fail")
	}
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.cfg.SinkBuffer != DefaultSinkBuffer || srv.cfg.DrainTimeout != DefaultDrainTimeout ||
		srv.cfg.KeepAliveInterval != DefaultKeepAliveInterval || srv.cfg.MaxBatchBytes != DefaultMaxBatchBytes {
		t.Errorf("defaults not applied: %+v", srv.cfg)
	}
}
