package server

import (
	"fmt"
	"time"

	"sensorcq"
)

// Defaults applied by Config.withDefaults for fields left at their zero
// value.
const (
	// DefaultSinkBuffer is the per-subscription delivery-channel capacity
	// used when a registration does not choose its own.
	DefaultSinkBuffer = 64
	// DefaultMaxBatchBytes bounds the body of a single /events request.
	DefaultMaxBatchBytes = 8 << 20
	// DefaultDrainTimeout bounds the in-flight drain of a graceful
	// shutdown.
	DefaultDrainTimeout = 30 * time.Second
	// DefaultKeepAliveInterval is the period of SSE keep-alive comments on
	// an idle stream.
	DefaultKeepAliveInterval = 15 * time.Second
)

// Config parameterises a Server. The zero value is valid: every field has a
// working default.
type Config struct {
	// DefaultNode is the processing node subscriptions are registered at
	// when their spec does not name one (typically the network's root or
	// the node closest to the daemon's users).
	DefaultNode sensorcq.NodeID

	// SinkBuffer is the default delivery-channel capacity per
	// subscription; specs may override it. Values < 1 take
	// DefaultSinkBuffer (a server-side subscription always has a channel
	// sink — it feeds the SSE stream).
	SinkBuffer int

	// Backpressure and BackpressureTimeout are the default sink policy
	// applied when a spec does not choose one. The zero value is
	// DropNewest (count-and-drop), matching the library default.
	Backpressure        sensorcq.BackpressureMode
	BackpressureTimeout time.Duration

	// MaxBatchBytes caps the request body accepted by /events; larger
	// bodies fail with 413. Values < 1 take DefaultMaxBatchBytes.
	MaxBatchBytes int64

	// DrainTimeout bounds how long Shutdown waits for in-flight rounds to
	// propagate before forcing handles closed. Values <= 0 take
	// DefaultDrainTimeout.
	DrainTimeout time.Duration

	// KeepAliveInterval is the period of SSE keep-alive comments sent on
	// idle streams so intermediaries do not time the connection out.
	// Values <= 0 take DefaultKeepAliveInterval.
	KeepAliveInterval time.Duration
}

// withDefaults returns the config with zero-valued fields replaced by the
// package defaults.
func (c Config) withDefaults() Config {
	if c.SinkBuffer < 1 {
		c.SinkBuffer = DefaultSinkBuffer
	}
	if c.Backpressure == sensorcq.BlockWithTimeout && c.BackpressureTimeout <= 0 {
		c.BackpressureTimeout = sensorcq.DefaultBackpressureTimeout
	}
	if c.MaxBatchBytes < 1 {
		c.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.KeepAliveInterval <= 0 {
		c.KeepAliveInterval = DefaultKeepAliveInterval
	}
	return c
}

// validate rejects configs that cannot serve: an out-of-range default node
// or an unknown backpressure mode.
func (c Config) validate(sys *sensorcq.System) error {
	if sys == nil {
		return fmt.Errorf("server: nil System")
	}
	if n := sys.Deployment().Graph.NumNodes(); int(c.DefaultNode) < 0 || int(c.DefaultNode) >= n {
		return fmt.Errorf("server: default node %d outside deployment [0,%d)", c.DefaultNode, n)
	}
	switch c.Backpressure {
	case sensorcq.DropNewest, sensorcq.DropOldest, sensorcq.BlockWithTimeout:
	default:
		return fmt.Errorf("server: invalid backpressure mode %v", c.Backpressure)
	}
	return nil
}
