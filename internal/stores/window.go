package stores

import (
	"sort"

	"sensorcq/internal/model"
)

// EventWindow is the node-local event store U of Algorithm 5: received
// simple events ordered by timestamp, each carrying a set of "already
// forwarded to" flags, with expiry after a configurable validity period.
//
// The flag keys are free-form strings chosen by the protocol: the
// per-neighbour forwarding of Filter-Split-Forward uses one key per
// neighbour, while the per-subscription result sets of the naive and
// operator-placement approaches use one key per (neighbour, subscription)
// pair — that difference is exactly the "event propagation" column of
// Table II.
type EventWindow struct {
	// Validity is how long an event stays stored after its timestamp. The
	// paper requires it to be at least δt so that late correlations can
	// still be detected.
	Validity model.Timestamp

	events []*storedEvent
	bySeq  map[uint64]*storedEvent
	latest model.Timestamp
}

type storedEvent struct {
	ev     model.Event
	sentTo map[string]bool
}

// NewEventWindow returns an empty window with the given validity.
func NewEventWindow(validity model.Timestamp) *EventWindow {
	if validity <= 0 {
		validity = 1
	}
	return &EventWindow{Validity: validity, bySeq: map[uint64]*storedEvent{}}
}

// Insert adds an event to the window. It returns false when an event with
// the same sequence number is already stored (duplicate arrivals are
// expected when per-subscription result sets overlap).
func (w *EventWindow) Insert(ev model.Event) bool {
	if _, dup := w.bySeq[ev.Seq]; dup {
		return false
	}
	se := &storedEvent{ev: ev, sentTo: map[string]bool{}}
	w.bySeq[ev.Seq] = se
	// Insert keeping the slice sorted by (Time, Seq); events arrive roughly
	// in time order so the scan from the back is short.
	idx := len(w.events)
	for idx > 0 {
		prev := w.events[idx-1].ev
		if prev.Time < ev.Time || (prev.Time == ev.Time && prev.Seq <= ev.Seq) {
			break
		}
		idx--
	}
	w.events = append(w.events, nil)
	copy(w.events[idx+1:], w.events[idx:])
	w.events[idx] = se
	if ev.Time > w.latest {
		w.latest = ev.Time
	}
	return true
}

// Len returns the number of stored (unexpired) events.
func (w *EventWindow) Len() int { return len(w.events) }

// Latest returns the largest timestamp seen so far.
func (w *EventWindow) Latest() model.Timestamp { return w.latest }

// Prune drops events whose timestamp is older than now - Validity.
func (w *EventWindow) Prune(now model.Timestamp) {
	cutoff := now - w.Validity
	keep := w.events[:0]
	for _, se := range w.events {
		if se.ev.Time >= cutoff {
			keep = append(keep, se)
		} else {
			delete(w.bySeq, se.ev.Seq)
		}
	}
	// Zero the tail so pruned entries can be collected.
	for i := len(keep); i < len(w.events); i++ {
		w.events[i] = nil
	}
	w.events = keep
}

// Around returns the events whose timestamps lie in the closed interval
// [t-delta, t+delta]: the candidate window for complex events triggered by
// an event at time t with temporal correlation distance delta.
func (w *EventWindow) Around(t model.Timestamp, delta model.Timestamp) []model.Event {
	lo, hi := t-delta, t+delta
	out := make([]model.Event, 0, len(w.events))
	for _, se := range w.events {
		if se.ev.Time > hi {
			break
		}
		if se.ev.Time >= lo {
			out = append(out, se.ev)
		}
	}
	return out
}

// Events returns all stored events in timestamp order.
func (w *EventWindow) Events() []model.Event {
	out := make([]model.Event, len(w.events))
	for i, se := range w.events {
		out[i] = se.ev
	}
	return out
}

// MarkSent records that the event with the given sequence number has been
// forwarded under the given key. Unknown sequence numbers are ignored.
func (w *EventWindow) MarkSent(seq uint64, key string) {
	if se, ok := w.bySeq[seq]; ok {
		se.sentTo[key] = true
	}
}

// WasSent reports whether the event was already forwarded under the key.
// Events no longer stored (expired) report true, so that stale events are
// never re-forwarded.
func (w *EventWindow) WasSent(seq uint64, key string) bool {
	se, ok := w.bySeq[seq]
	if !ok {
		return true
	}
	return se.sentTo[key]
}

// SentKeys returns the forwarding keys recorded for an event, sorted; it is
// a debugging/testing helper.
func (w *EventWindow) SentKeys(seq uint64) []string {
	se, ok := w.bySeq[seq]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(se.sentTo))
	for k := range se.sentTo {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
