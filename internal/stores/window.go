package stores

import (
	"sort"

	"sensorcq/internal/model"
)

// EventWindow is the node-local event store U of Algorithm 5: received
// simple events ordered by timestamp, each carrying a set of "already
// forwarded to" flags, with expiry after a configurable validity period.
//
// The flag keys are free-form strings chosen by the protocol: the
// per-neighbour forwarding of Filter-Split-Forward uses one key per
// neighbour, while the per-subscription result sets of the naive and
// operator-placement approaches use one key per (neighbour, subscription)
// pair — that difference is exactly the "event propagation" column of
// Table II. Keys are interned into small integer IDs (KeyID) on first use;
// the steady-state forwarding path then never touches a string.
//
// The window is a structure of arrays: one timestamp-sorted slice of events
// and one parallel slice of per-event sent-key ID lists. Storing events by
// value and recycling the sent lists through a free list keeps the
// steady-state insert/match/prune cycle allocation-free; see the package
// documentation for the invariants callers must follow when holding the
// slices Around returns.
type EventWindow struct {
	// Validity is how long an event stays stored after its timestamp. The
	// paper requires it to be at least δt so that late correlations can
	// still be detected.
	Validity model.Timestamp

	evs    []model.Event // sorted by (Time, Seq)
	sent   [][]uint32    // parallel to evs: sorted interned key IDs
	free   [][]uint32    // recycled sent lists (capacity retained)
	latest model.Timestamp

	keyIDs  map[string]uint32
	keyStrs []string // index = key ID, for SentKeys
}

// NewEventWindow returns an empty window with the given validity.
func NewEventWindow(validity model.Timestamp) *EventWindow {
	if validity <= 0 {
		validity = 1
	}
	return &EventWindow{Validity: validity, keyIDs: map[string]uint32{}}
}

// KeyID interns a forwarding key, returning the stable small integer the
// mark/check fast path uses. Handlers intern each key once (per neighbour or
// per (neighbour, subscription) pair) and cache the ID; the per-event
// forwarding decisions then cost two binary searches and no allocation.
func (w *EventWindow) KeyID(key string) uint32 {
	if id, ok := w.keyIDs[key]; ok {
		return id
	}
	id := uint32(len(w.keyStrs))
	w.keyIDs[key] = id
	w.keyStrs = append(w.keyStrs, key)
	return id
}

// find returns the index of the stored event with this (Time, Seq), or
// (insertion point, false) when absent. Events are sorted by (Time, Seq), so
// identity resolves with one binary search — no per-sequence map is kept.
func (w *EventWindow) find(t model.Timestamp, seq uint64) (int, bool) {
	lo, hi := 0, len(w.evs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		e := &w.evs[mid]
		if e.Time < t || (e.Time == t && e.Seq < seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(w.evs) && w.evs[lo].Time == t && w.evs[lo].Seq == seq {
		return lo, true
	}
	return lo, false
}

// Insert adds an event to the window. It returns false when the event is
// already stored (duplicate arrivals are expected when per-subscription
// result sets overlap).
func (w *EventWindow) Insert(ev model.Event) bool {
	idx, dup := w.find(ev.Time, ev.Seq)
	if dup {
		return false
	}
	var sentList []uint32
	if n := len(w.free); n > 0 {
		sentList = w.free[n-1][:0]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
	}
	w.evs = append(w.evs, model.Event{})
	copy(w.evs[idx+1:], w.evs[idx:])
	w.evs[idx] = ev
	w.sent = append(w.sent, nil)
	copy(w.sent[idx+1:], w.sent[idx:])
	w.sent[idx] = sentList
	if ev.Time > w.latest {
		w.latest = ev.Time
	}
	return true
}

// Len returns the number of stored (unexpired) events.
func (w *EventWindow) Len() int { return len(w.evs) }

// Latest returns the largest timestamp seen so far.
func (w *EventWindow) Latest() model.Timestamp { return w.latest }

// Prune drops events whose timestamp is older than now - Validity. The
// dropped events' sent lists are recycled for later inserts; pruning
// invalidates every slice a previous Around returned.
func (w *EventWindow) Prune(now model.Timestamp) {
	cutoff := now - w.Validity
	// Events are time-sorted: the expired ones are exactly a prefix.
	k := 0
	for k < len(w.evs) && w.evs[k].Time < cutoff {
		k++
	}
	if k == 0 {
		return
	}
	for i := 0; i < k; i++ {
		if w.sent[i] != nil {
			w.free = append(w.free, w.sent[i][:0])
		}
	}
	n := copy(w.evs, w.evs[k:])
	w.evs = w.evs[:n]
	copy(w.sent, w.sent[k:])
	for i := n; i < n+k; i++ {
		w.sent[i] = nil
	}
	w.sent = w.sent[:n]
}

// Around returns the events whose timestamps lie in the closed interval
// [t-delta, t+delta]: the candidate window for complex events triggered by
// an event at time t with temporal correlation distance delta.
//
// The returned slice is a view into the window's storage — no copy is made.
// It is valid until the next Insert or Prune on this window and must not be
// modified; callers that retain candidate events past the next mutation must
// copy them out first. Marking events sent does not invalidate the view.
func (w *EventWindow) Around(t model.Timestamp, delta model.Timestamp) []model.Event {
	lo, hi := t-delta, t+delta
	i := sort.Search(len(w.evs), func(k int) bool { return w.evs[k].Time >= lo })
	j := sort.Search(len(w.evs), func(k int) bool { return w.evs[k].Time > hi })
	return w.evs[i:j]
}

// Events returns a copy of all stored events in timestamp order.
func (w *EventWindow) Events() []model.Event {
	out := make([]model.Event, len(w.evs))
	copy(out, w.evs)
	return out
}

// sentIdx returns the position of key in the sorted list (or its insertion
// point) and whether it is present.
func sentIdx(list []uint32, key uint32) (int, bool) {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(list) && list[lo] == key
}

// MarkSent records that the stored event has been forwarded under the given
// interned key. Events not (or no longer) stored are ignored.
func (w *EventWindow) MarkSent(ev model.Event, key uint32) {
	idx, ok := w.find(ev.Time, ev.Seq)
	if !ok {
		return
	}
	list := w.sent[idx]
	pos, present := sentIdx(list, key)
	if present {
		return
	}
	list = append(list, 0)
	copy(list[pos+1:], list[pos:])
	list[pos] = key
	w.sent[idx] = list
}

// WasSent reports whether the event was already forwarded under the interned
// key. Events no longer stored (expired) report true, so that stale events
// are never re-forwarded.
func (w *EventWindow) WasSent(ev model.Event, key uint32) bool {
	idx, ok := w.find(ev.Time, ev.Seq)
	if !ok {
		return true
	}
	_, present := sentIdx(w.sent[idx], key)
	return present
}

// SentKeys returns the forwarding keys recorded for an event, as the strings
// they were interned from, sorted; it is a debugging/testing helper.
func (w *EventWindow) SentKeys(ev model.Event) []string {
	idx, ok := w.find(ev.Time, ev.Seq)
	if !ok {
		return nil
	}
	list := w.sent[idx]
	if len(list) == 0 {
		return nil
	}
	out := make([]string, 0, len(list))
	for _, id := range list {
		out = append(out, w.keyStrs[id])
	}
	sort.Strings(out)
	return out
}
