package stores

import (
	"fmt"
	"sort"
	"testing"

	"sensorcq/internal/model"
	"sensorcq/internal/stats"
	"sensorcq/internal/topology"
)

// TestEventIndexBulkLoadMatchesEager is the index-level bulk equivalence
// property test: a bulk-loaded index (BulkLoad, and Adds staged until the
// first lookup) must produce the same candidate sets as an eagerly built one
// for random populations, and Remove must behave identically afterwards —
// the bulk-packed trees are interchangeable with incrementally grown ones.
func TestEventIndexBulkLoadMatchesEager(t *testing.T) {
	rng := stats.NewRNG(4242)
	for trial := 0; trial < 20; trial++ {
		n := 1 + int(rng.Uint64()%200)
		subs := make([]*model.Subscription, 0, n)
		for i := 0; i < n; i++ {
			subs = append(subs, randomSubscription(t, rng, trial*1000+i))
		}

		bulk := NewEventIndex()
		bulk.BulkLoad(subs)
		eager := NewEventIndexEager()
		for _, sub := range subs {
			eager.Add(sub)
		}
		if bulk.Len() != eager.Len() {
			t.Fatalf("trial %d: bulk Len %d, eager Len %d", trial, bulk.Len(), eager.Len())
		}

		for q := 0; q < 60; q++ {
			ev := randomEvent(rng, uint64(q+1))
			got, want := candidateIDs(bulk, ev), linearMatchIDs(subs, ev)
			if !equalStrings(got, want) {
				t.Fatalf("trial %d: bulk candidates(%v) = %v, want %v", trial, ev, got, want)
			}
			if eagerGot := candidateIDs(eager, ev); !equalStrings(eagerGot, want) {
				t.Fatalf("trial %d: eager candidates(%v) = %v, want %v", trial, ev, eagerGot, want)
			}
		}

		// Remove every other subscription from both; the packed trees must
		// splice entries out exactly like the incrementally grown ones.
		live := subs[:0:0]
		for i, sub := range subs {
			if i%2 == 0 {
				if !bulk.Remove(sub.ID) || !eager.Remove(sub.ID) {
					t.Fatalf("trial %d: Remove(%s) failed", trial, sub.ID)
				}
				continue
			}
			live = append(live, sub)
		}
		for q := 0; q < 60; q++ {
			ev := randomEvent(rng, uint64(q+100))
			got, want := candidateIDs(bulk, ev), linearMatchIDs(live, ev)
			if !equalStrings(got, want) {
				t.Fatalf("trial %d post-remove: bulk candidates(%v) = %v, want %v", trial, ev, got, want)
			}
		}
	}
}

// TestEventIndexStagedRemovalAndReAdd pins the staging corner cases: a
// subscription added, removed, and re-added before the first lookup must
// appear exactly once, and one removed before the first lookup must not
// appear at all.
func TestEventIndexStagedRemovalAndReAdd(t *testing.T) {
	rng := stats.NewRNG(77)
	a := randomSubscription(t, rng, 1)
	b := randomSubscription(t, rng, 2)

	idx := NewEventIndex()
	idx.Add(a)
	idx.Add(b)
	if !idx.Remove(a.ID) {
		t.Fatal("Remove(a) before first lookup failed")
	}
	idx.Add(a) // re-add while still staged
	if !idx.Remove(b.ID) {
		t.Fatal("Remove(b) before first lookup failed")
	}
	if idx.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", idx.Len())
	}
	for q := 0; q < 200; q++ {
		ev := randomEvent(rng, uint64(q+1))
		got := candidateIDs(idx, ev)
		want := linearMatchIDs([]*model.Subscription{a}, ev)
		if !equalStrings(got, want) {
			t.Fatalf("candidates(%v) = %v, want %v", ev, got, want)
		}
	}
}

// TestEventIndexStats sanity-checks the diagnostic counters: entry and tree
// counts match the population, the packed trees respect the balance bound,
// and the lookup tallies advance with queries.
func TestEventIndexStats(t *testing.T) {
	rng := stats.NewRNG(9)
	idx := NewEventIndex()
	subs := make([]*model.Subscription, 0, 120)
	for i := 0; i < 120; i++ {
		subs = append(subs, randomSubscription(t, rng, i))
	}
	idx.BulkLoad(subs)

	st := idx.Stats()
	if st.Members != 120 || st.Covered != 0 {
		t.Fatalf("Members/Covered = %d/%d, want 120/0", st.Members, st.Covered)
	}
	if st.Trees == 0 || st.Boxes == 0 {
		t.Fatalf("no trees/boxes recorded: %+v", st)
	}
	if st.Nodes < st.Boxes {
		t.Fatalf("Nodes %d < Boxes %d", st.Nodes, st.Boxes)
	}
	if st.Lookups != 0 {
		t.Fatalf("Lookups = %d before any Candidates call", st.Lookups)
	}
	ev := randomEvent(rng, 1)
	idx.Candidates(ev, func(*model.Subscription) bool { return true })
	if st = idx.Stats(); st.Lookups != 1 {
		t.Fatalf("Lookups = %d after one Candidates call", st.Lookups)
	}

	// A covered attachment counts as covered, not as a member.
	base := randomSubscription(t, rng, 1000)
	idx.Add(base)
	cov := coveredVariant(t, rng, base, "covd")
	idx.AddCovered(cov, base.ID)
	if st = idx.Stats(); st.Members != 121 || st.Covered != 1 {
		t.Fatalf("Members/Covered = %d/%d after covered add, want 121/1", st.Members, st.Covered)
	}
}

// TestPromotionRefreshesCoverLinks is the promotion-then-match property
// test: after retracting a cover, the table must drop the links that named
// it, re-link surviving covered subscriptions to the promoted operator when
// it covers them, and keep the indexed candidate sets equal to a linear scan
// of the uncovered population throughout.
func TestPromotionRefreshesCoverLinks(t *testing.T) {
	rng := stats.NewRNG(555)
	origin := topology.NodeID(1)
	for trial := 0; trial < 15; trial++ {
		table := NewSubscriptionTable(0)
		base := randomSubscription(t, rng, trial*100)
		if !table.AddUncovered(origin, base) {
			t.Fatal("AddUncovered failed")
		}
		// File several covered variants; each records base as its cover.
		covered := make([]*model.Subscription, 0, 5)
		for i := 0; i < 5; i++ {
			c := coveredVariant(t, rng, base, fmt.Sprintf("c%d-%d", trial, i))
			if !table.AddCovered(origin, c) {
				t.Fatal("AddCovered failed")
			}
			if got := table.CoverOf(origin, c.ID); got != base.ID {
				t.Fatalf("CoverOf(%s) = %q, want %q", c.ID, got, base.ID)
			}
			covered = append(covered, c)
		}
		// Force the match index into existence so promotion maintains it.
		probe := randomEvent(rng, 1)
		table.EventCandidates(origin, probe, func(*model.Subscription) bool { return true })

		// Retract the cover: every link naming it must die with it.
		if _, wasUncovered, ok := table.Remove(origin, base.ID); !ok || !wasUncovered {
			t.Fatal("Remove(base) failed")
		}
		for _, c := range covered {
			if got := table.CoverOf(origin, c.ID); got != "" {
				t.Fatalf("stale link survived retraction: CoverOf(%s) = %q", c.ID, got)
			}
		}

		// Promote the first covered variant (the reexposure walk would pick
		// the survivors in order). The rest must be re-linked to it exactly
		// when it covers them — fresh pruning roots, never the retracted ID.
		promoted := table.Promote(origin, covered[0].ID)
		if promoted == nil {
			t.Fatal("Promote failed")
		}
		for _, c := range covered[1:] {
			got := table.CoverOf(origin, c.ID)
			if c.CoveredBy(promoted) {
				if got != promoted.ID {
					t.Fatalf("CoverOf(%s) = %q after promotion, want %q", c.ID, got, promoted.ID)
				}
			} else if got != "" {
				t.Fatalf("CoverOf(%s) = %q, but %s does not cover it", c.ID, got, promoted.ID)
			}
		}

		// Matching after the promotion chain must agree with the linear scan
		// over what is now uncovered.
		for q := 0; q < 40; q++ {
			ev := randomEvent(rng, uint64(q+2))
			var got []string
			table.EventCandidates(origin, ev, func(s *model.Subscription) bool {
				got = append(got, string(s.ID))
				return true
			})
			want := linearMatchIDs(table.Uncovered(origin), ev)
			sort.Strings(got)
			if !equalStrings(got, want) {
				t.Fatalf("trial %d: candidates(%v) = %v, want %v", trial, ev, got, want)
			}
		}
	}
}
