package stores

import (
	"fmt"
	"testing"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/stats"
	"sensorcq/internal/topology"
)

// coveredVariant derives a subscription provably covered by base: same
// kind, sensor/attribute set and correlation distances, with every filter
// range (and the region, when bounded) shrunk towards its midpoint. The
// construction mirrors how covering populations arise in the workloads —
// narrower queries over the same signature.
func coveredVariant(t *testing.T, rng *stats.RNG, base *model.Subscription, id string) *model.Subscription {
	t.Helper()
	shrink := func(iv geom.Interval) geom.Interval {
		w := iv.Width()
		lo := iv.Min + w*rng.Range(0, 0.4)
		hi := iv.Max - w*rng.Range(0, 0.4)
		if hi < lo {
			hi = lo
		}
		return geom.Interval{Min: lo, Max: hi}
	}
	var sub *model.Subscription
	var err error
	if base.Kind == model.KindIdentified {
		filters := make([]model.SensorFilter, 0, len(base.SensorFilters))
		for _, f := range base.SensorFilters {
			f.Range = shrink(f.Range)
			filters = append(filters, f)
		}
		sub, err = model.NewIdentifiedSubscription(model.SubscriptionID(id), filters, base.DeltaT)
	} else {
		filters := make([]model.AttributeFilter, 0, len(base.AttrFilters))
		for _, f := range base.AttrFilters {
			f.Range = shrink(f.Range)
			filters = append(filters, f)
		}
		region := base.Region
		if !region.IsWholePlane() {
			region = geom.Region{X: shrink(region.X), Y: shrink(region.Y)}
		}
		sub, err = model.NewAbstractSubscription(model.SubscriptionID(id), filters, region, base.DeltaT, base.DeltaL)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !sub.CoveredBy(base) {
		t.Fatalf("covered variant %s is not covered by its base %s", sub, base)
	}
	return sub
}

// churnStep is the shared body of the churn property test and the fuzz
// harness: it drives steps random add / addCovered / remove / match
// operations from the given seed, checking every match against both oracles
// — an index rebuilt from scratch over the live population and the linear
// scan — and returns the number of match checks performed.
func churnStep(t *testing.T, seed int64, steps int) int {
	t.Helper()
	rng := stats.NewRNG(seed)
	idx := NewEventIndex()
	live := map[model.SubscriptionID]*model.Subscription{}
	var liveIDs []model.SubscriptionID
	next := 0
	checks := 0

	removeID := func(id model.SubscriptionID) {
		for i, l := range liveIDs {
			if l == id {
				liveIDs[i] = liveIDs[len(liveIDs)-1]
				liveIDs = liveIDs[:len(liveIDs)-1]
				return
			}
		}
	}

	for step := 0; step < steps; step++ {
		switch {
		case len(liveIDs) == 0 || rng.Bool(0.3): // plain add
			sub := randomSubscription(t, rng, int(seed%1000)*100000+next)
			next++
			if live[sub.ID] != nil {
				continue
			}
			idx.Add(sub)
			live[sub.ID] = sub
			liveIDs = append(liveIDs, sub.ID)
		case rng.Bool(0.25): // covered add, attached to a random live member
			base := live[liveIDs[rng.Intn(len(liveIDs))]]
			id := fmt.Sprintf("c%d-%d", seed%1000, next)
			next++
			sub := coveredVariant(t, rng, base, id)
			if live[sub.ID] != nil {
				continue
			}
			idx.AddCovered(sub, base.ID)
			live[sub.ID] = sub
			liveIDs = append(liveIDs, sub.ID)
		case rng.Bool(0.45): // remove
			id := liveIDs[rng.Intn(len(liveIDs))]
			if !idx.Remove(id) {
				t.Fatalf("seed %d step %d: Remove(%s) = false for a live member", seed, step, id)
			}
			if idx.Remove(id) {
				t.Fatalf("seed %d step %d: second Remove(%s) = true", seed, step, id)
			}
			delete(live, id)
			removeID(id)
		default: // match, against both oracles
			ev := randomEvent(rng, uint64(step+1))
			got := candidateIDs(idx, ev)

			scratch := NewEventIndex()
			linear := make([]*model.Subscription, 0, len(live))
			for _, sub := range live {
				scratch.Add(sub)
				linear = append(linear, sub)
			}
			rebuilt := candidateIDs(scratch, ev)
			scan := linearMatchIDs(linear, ev)
			if !equalStrings(got, rebuilt) {
				t.Fatalf("seed %d step %d: incremental candidates(%v) = %v, rebuilt-from-scratch oracle = %v",
					seed, step, ev, got, rebuilt)
			}
			if !equalStrings(got, scan) {
				t.Fatalf("seed %d step %d: candidates(%v) = %v, linear scan = %v", seed, step, ev, got, scan)
			}
			checks++
		}
		if idx.Len() != len(live) {
			t.Fatalf("seed %d step %d: Len() = %d, want %d", seed, step, idx.Len(), len(live))
		}
	}
	return checks
}

// TestEventIndexChurnAgainstRebuiltOracle pins the incremental index against
// a rebuilt-from-scratch oracle (and the brute-force scan) under random
// interleaved add / covered-add / remove / match churn: at no point may
// incremental maintenance and cover-attachment be distinguishable from a
// fresh index over the live population.
func TestEventIndexChurnAgainstRebuiltOracle(t *testing.T) {
	totalChecks := 0
	for seed := int64(1); seed <= 12; seed++ {
		totalChecks += churnStep(t, seed, 400)
	}
	if totalChecks < 500 {
		t.Fatalf("only %d match checks ran; the property test is under-exercised", totalChecks)
	}
}

// FuzzEventIndexChurn drives the same churn property from fuzzed seeds, so
// `go test` exercises the corpus and `go test -fuzz=FuzzEventIndexChurn`
// searches for divergences between incremental maintenance and the rebuilt
// oracle.
func FuzzEventIndexChurn(f *testing.F) {
	for _, seed := range []int64{7, 42, 205, 9001} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		churnStep(t, seed, 120)
	})
}

// TestEventIndexCoveringPruningSameMatchSet is the covering-pruning
// contract: registering covered subscriptions through AddCovered (pruned
// enumeration — tested only when their cover matched) must produce exactly
// the match sets of the brute-force scan, while storing fewer entries in the
// trees, and retracting the cover must re-expose the covered entries as
// ordinary members.
func TestEventIndexCoveringPruningSameMatchSet(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 10; trial++ {
		idx := NewEventIndex()
		var all []*model.Subscription
		var covers []*model.Subscription
		for i := 0; i < 30; i++ {
			base := randomSubscription(t, rng, trial*1000+i)
			idx.Add(base)
			all = append(all, base)
			covers = append(covers, base)
			for c := 0; c < 1+rng.Intn(3); c++ {
				covered := coveredVariant(t, rng, base, fmt.Sprintf("t%dc%d-%d", trial, i, c))
				idx.AddCovered(covered, base.ID)
				all = append(all, covered)
			}
		}
		check := func(stage string) {
			for q := 0; q < 120; q++ {
				ev := randomEvent(rng, uint64(q+1))
				got := candidateIDs(idx, ev)
				want := linearMatchIDs(all, ev)
				if !equalStrings(got, want) {
					t.Fatalf("trial %d %s: pruned candidates(%v) = %v, want %v", trial, stage, ev, got, want)
				}
			}
		}
		check("with covers attached")

		// Retract a third of the covering subscriptions: their covered
		// entries must keep matching (now as full members).
		for i, base := range covers {
			if i%3 != 0 {
				continue
			}
			if !idx.Remove(base.ID) {
				t.Fatalf("trial %d: Remove(%s) failed", trial, base.ID)
			}
			kept := all[:0]
			for _, s := range all {
				if s.ID != base.ID {
					kept = append(kept, s)
				}
			}
			all = kept
		}
		check("after cover retraction")

		// A covered entry must also be individually removable.
		for _, s := range all {
			if !idx.Remove(s.ID) {
				t.Fatalf("trial %d: Remove(%s) failed during teardown", trial, s.ID)
			}
		}
		if idx.Len() != 0 {
			t.Fatalf("trial %d: Len() = %d after removing everything", trial, idx.Len())
		}
	}
}

// TestSubscriptionTableCoverLinks pins the cover-link bookkeeping: AddCovered
// records a single covering uncovered subscription when one exists, CoverOf
// serves it, and removal/promotion clear the link.
func TestSubscriptionTableCoverLinks(t *testing.T) {
	rng := stats.NewRNG(41)
	tbl := NewSubscriptionTable(0)
	origin := topology.NodeID(2)

	base := randomSubscription(t, rng, 1)
	covered := coveredVariant(t, rng, base, "cv")
	unrelated := randomSubscription(t, rng, 2)

	tbl.AddUncovered(origin, base)
	tbl.AddCovered(origin, covered)
	if got := tbl.CoverOf(origin, covered.ID); got != base.ID {
		t.Fatalf("CoverOf = %q, want %q", got, base.ID)
	}
	if got := tbl.CoverOf(origin, unrelated.ID); got != "" {
		t.Fatalf("CoverOf(unknown) = %q, want empty", got)
	}

	// Promotion clears the link: the subscription is no longer covered.
	if tbl.Promote(origin, covered.ID) != covered {
		t.Fatal("Promote failed")
	}
	if got := tbl.CoverOf(origin, covered.ID); got != "" {
		t.Fatalf("CoverOf after Promote = %q, want empty", got)
	}

	// Removal clears the link of a covered entry.
	covered2 := coveredVariant(t, rng, base, "cv2")
	tbl.AddCovered(origin, covered2)
	if got := tbl.CoverOf(origin, covered2.ID); got != base.ID {
		t.Fatalf("CoverOf(cv2) = %q, want %q", got, base.ID)
	}
	if _, _, ok := tbl.Remove(origin, covered2.ID); !ok {
		t.Fatal("Remove(covered) failed")
	}
	if got := tbl.CoverOf(origin, covered2.ID); got != "" {
		t.Fatalf("CoverOf after Remove = %q, want empty", got)
	}
}
