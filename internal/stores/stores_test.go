package stores

import (
	"testing"
	"testing/quick"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
)

func adv(sensor model.SensorID, attr model.AttributeType, x, y float64) model.Advertisement {
	return model.Advertisement{Sensor: sensor, Attr: attr, Location: geom.Point2D{X: x, Y: y}}
}

func absSub(t *testing.T, id string, region geom.Region, attrs ...model.AttributeType) *model.Subscription {
	t.Helper()
	var filters []model.AttributeFilter
	for _, a := range attrs {
		filters = append(filters, model.AttributeFilter{Attr: a, Range: geom.NewInterval(0, 100)})
	}
	s, err := model.NewAbstractSubscription(model.SubscriptionID(id), filters, region, 30, model.NoSpatialConstraint)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func idSub(t *testing.T, id string, sensors ...model.SensorID) *model.Subscription {
	t.Helper()
	var filters []model.SensorFilter
	for _, d := range sensors {
		filters = append(filters, model.SensorFilter{Sensor: d, Attr: model.WindSpeed, Range: geom.NewInterval(0, 100)})
	}
	s, err := model.NewIdentifiedSubscription(model.SubscriptionID(id), filters, 30)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAdvertisementTableBasics(t *testing.T) {
	tbl := NewAdvertisementTable(5)
	if !tbl.Add(1, adv("d1", model.WindSpeed, 0, 0)) {
		t.Fatal("first add should succeed")
	}
	if tbl.Add(1, adv("d1", model.WindSpeed, 0, 0)) {
		t.Fatal("duplicate add from the same origin should be rejected")
	}
	if !tbl.Add(2, adv("d2", model.AmbientTemperature, 10, 10)) {
		t.Fatal("add from another origin should succeed")
	}
	if !tbl.Add(5, adv("d3", model.WindSpeed, 20, 20)) {
		t.Fatal("local add should succeed")
	}
	if !tbl.Known("d1") || !tbl.Known("d3") || tbl.Known("zz") {
		t.Error("Known wrong")
	}
	if tbl.Count() != 3 {
		t.Errorf("Count = %d", tbl.Count())
	}
	origins := tbl.Origins()
	if len(origins) != 3 || origins[0] != 1 || origins[2] != 5 {
		t.Errorf("Origins = %v", origins)
	}
	from1 := tbl.From(1)
	if len(from1) != 1 || from1[0].Sensor != "d1" {
		t.Errorf("From(1) = %v", from1)
	}
	if len(tbl.From(9)) != 0 {
		t.Error("unknown origin should have no advertisements")
	}
}

func TestAdvertisementTableProjectIdentified(t *testing.T) {
	tbl := NewAdvertisementTable(0)
	tbl.Add(1, adv("a", model.AmbientTemperature, 0, 0))
	tbl.Add(1, adv("b", model.RelativeHumidity, 0, 0))
	tbl.Add(2, adv("c", model.WindSpeed, 0, 0))

	sub := idSub(t, "s", "a", "b", "c")
	p1 := tbl.Project(sub, 1)
	if p1 == nil || p1.NumFilters() != 2 {
		t.Fatalf("projection onto origin 1 = %v", p1)
	}
	p2 := tbl.Project(sub, 2)
	if p2 == nil || p2.NumFilters() != 1 || !p2.IsSimple() {
		t.Fatalf("projection onto origin 2 = %v", p2)
	}
	if tbl.Project(sub, 9) != nil {
		t.Error("projection onto unknown origin should be nil")
	}
	subUnknown := idSub(t, "s2", "z")
	if tbl.Project(subUnknown, 1) != nil {
		t.Error("projection with no overlap should be nil")
	}
}

func TestAdvertisementTableProjectAbstractRespectsRegion(t *testing.T) {
	tbl := NewAdvertisementTable(0)
	tbl.Add(1, adv("near", model.WindSpeed, 10, 10))
	tbl.Add(2, adv("far", model.WindSpeed, 900, 900))
	tbl.Add(2, adv("hum", model.RelativeHumidity, 20, 20))

	region := geom.NewRegion(0, 0, 100, 100)
	sub := absSub(t, "s", region, model.WindSpeed, model.RelativeHumidity)

	p1 := tbl.Project(sub, 1)
	if p1 == nil || p1.NumFilters() != 1 {
		t.Fatalf("projection onto origin 1 = %v", p1)
	}
	// Origin 2's wind sensor is outside the region, so only humidity projects.
	p2 := tbl.Project(sub, 2)
	if p2 == nil || p2.NumFilters() != 1 || p2.Attributes()[0] != model.RelativeHumidity {
		t.Fatalf("projection onto origin 2 = %v", p2)
	}
}

func TestAdvertisementTableHasAllSources(t *testing.T) {
	tbl := NewAdvertisementTable(0)
	tbl.Add(1, adv("a", model.WindSpeed, 10, 10))
	tbl.Add(2, adv("b", model.RelativeHumidity, 20, 20))

	region := geom.NewRegion(0, 0, 100, 100)
	if !tbl.HasAllSources(absSub(t, "s1", region, model.WindSpeed, model.RelativeHumidity)) {
		t.Error("both attributes are advertised inside the region")
	}
	if tbl.HasAllSources(absSub(t, "s2", region, model.WindSpeed, model.AmbientTemperature)) {
		t.Error("ambient temperature has no source")
	}
	farRegion := geom.NewRegion(500, 500, 600, 600)
	if tbl.HasAllSources(absSub(t, "s3", farRegion, model.WindSpeed)) {
		t.Error("no wind sensor inside the far region")
	}
	if !tbl.HasAllSources(idSub(t, "s4", "a", "b")) {
		t.Error("both sensors are advertised")
	}
	if tbl.HasAllSources(idSub(t, "s5", "a", "zz")) {
		t.Error("sensor zz is not advertised")
	}
}

func TestAdvertisementTableOriginsMatching(t *testing.T) {
	tbl := NewAdvertisementTable(9)
	tbl.Add(1, adv("a", model.WindSpeed, 10, 10))
	tbl.Add(2, adv("b", model.RelativeHumidity, 20, 20))
	tbl.Add(3, adv("c", model.AmbientTemperature, 30, 30))
	tbl.Add(9, adv("local", model.WindDirection, 40, 40)) // local sensors never count

	sub := absSub(t, "s", geom.NewRegion(0, 0, 100, 100), model.WindSpeed, model.RelativeHumidity)
	got := tbl.OriginsMatching(sub, 2) // exclude origin 2
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("OriginsMatching = %v, want [1]", got)
	}
	got = tbl.OriginsMatching(sub, -1)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("OriginsMatching = %v, want [1 2]", got)
	}
}

func TestSubscriptionTable(t *testing.T) {
	tbl := NewSubscriptionTable(0)
	s1 := absSub(t, "s1", geom.WholePlane(), model.WindSpeed)
	s2 := absSub(t, "s2", geom.WholePlane(), model.WindSpeed, model.RelativeHumidity)
	s3 := absSub(t, "s3", geom.WholePlane(), model.AmbientTemperature)

	if !tbl.AddUncovered(1, s1) || !tbl.AddUncovered(1, s2) {
		t.Fatal("adds should succeed")
	}
	if tbl.AddUncovered(1, s1) {
		t.Fatal("duplicate ID from same origin should be rejected")
	}
	if !tbl.AddCovered(1, s3) {
		t.Fatal("covered add should succeed")
	}
	if tbl.AddCovered(1, s3) {
		t.Fatal("covered duplicate should be rejected")
	}
	if !tbl.Seen(1, "s1") || tbl.Seen(2, "s1") {
		t.Error("Seen wrong")
	}
	if len(tbl.Uncovered(1)) != 2 || len(tbl.Covered(1)) != 1 || len(tbl.All(1)) != 3 {
		t.Error("retrieval wrong")
	}
	if tbl.CountUncovered() != 2 || tbl.CountCovered() != 1 {
		t.Error("counts wrong")
	}
	matchIDs := func(attr model.AttributeType) []model.SubscriptionID {
		ev := model.Event{Seq: 1, Sensor: "dx", Attr: attr, Value: 50}
		var ids []model.SubscriptionID
		tbl.EventCandidates(1, ev, func(s *model.Subscription) bool {
			ids = append(ids, s.ID)
			return true
		})
		return ids
	}
	if got := matchIDs(model.WindSpeed); len(got) != 2 {
		t.Errorf("EventCandidates(wind) = %d entries, want 2", len(got))
	}
	if got := matchIDs(model.RelativeHumidity); len(got) != 1 || got[0] != "s2" {
		t.Errorf("EventCandidates(humidity) wrong: %v", got)
	}
	if got := matchIDs(model.AmbientTemperature); len(got) != 0 {
		t.Error("covered subscriptions must not be indexed for matching")
	}
	origins := tbl.Origins()
	if len(origins) != 1 || origins[0] != 1 {
		t.Errorf("Origins = %v", origins)
	}
}

func TestEventWindowInsertOrderAndDedup(t *testing.T) {
	w := NewEventWindow(10)
	events := []model.Event{
		{Seq: 3, Time: 30},
		{Seq: 1, Time: 10},
		{Seq: 2, Time: 20},
		{Seq: 4, Time: 20},
	}
	for _, e := range events {
		if !w.Insert(e) {
			t.Fatalf("insert of %d failed", e.Seq)
		}
	}
	if w.Insert(model.Event{Seq: 3, Time: 30}) {
		t.Error("duplicate seq should be rejected")
	}
	if w.Len() != 4 {
		t.Fatalf("Len = %d", w.Len())
	}
	got := w.Events()
	wantOrder := []uint64{1, 2, 4, 3}
	for i, e := range got {
		if e.Seq != wantOrder[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if w.Latest() != 30 {
		t.Errorf("Latest = %d", w.Latest())
	}
}

func TestEventWindowAroundAndPrune(t *testing.T) {
	w := NewEventWindow(15)
	for i := 1; i <= 6; i++ {
		w.Insert(model.Event{Seq: uint64(i), Time: model.Timestamp(i * 10)})
	}
	around := w.Around(30, 10)
	if len(around) != 3 {
		t.Fatalf("Around(30,10) returned %d events", len(around))
	}
	for _, e := range around {
		if e.Time < 20 || e.Time > 40 {
			t.Errorf("event at %d outside window", e.Time)
		}
	}
	w.Prune(60) // cutoff = 45: drops events at 10,20,30,40
	if w.Len() != 2 {
		t.Fatalf("after prune Len = %d", w.Len())
	}
	if w.Insert(model.Event{Seq: 2, Time: 20}) == false {
		// Seq 2 was pruned, re-insert is allowed again.
		t.Error("pruned events should be insertable again")
	}
}

func TestEventWindowSentFlags(t *testing.T) {
	w := NewEventWindow(100)
	stored := model.Event{Seq: 1, Time: 10}
	w.Insert(stored)
	k2, k3 := w.KeyID("n:2"), w.KeyID("n:3")
	if w.KeyID("n:2") != k2 {
		t.Error("KeyID must be stable for the same key")
	}
	if w.WasSent(stored, k2) {
		t.Error("fresh event should not be marked sent")
	}
	w.MarkSent(stored, k2)
	if !w.WasSent(stored, k2) || w.WasSent(stored, k3) {
		t.Error("sent flags wrong")
	}
	w.MarkSent(stored, k2) // idempotent
	keys := w.SentKeys(stored)
	if len(keys) != 1 || keys[0] != "n:2" {
		t.Errorf("SentKeys = %v", keys)
	}
	// Unknown/expired events are treated as already sent.
	unknown := model.Event{Seq: 99, Time: 10}
	if !w.WasSent(unknown, k2) {
		t.Error("unknown events should report sent")
	}
	w.MarkSent(unknown, k2) // must not panic
	if w.SentKeys(unknown) != nil {
		t.Error("unknown events have no keys")
	}
	if NewEventWindow(0).Validity != 1 {
		t.Error("non-positive validity should be clamped to 1")
	}
}

// Property: the window always returns events in non-decreasing timestamp
// order and never returns more events than were inserted.
func TestPropertyEventWindowOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		w := NewEventWindow(1 << 30)
		for i, tm := range times {
			w.Insert(model.Event{Seq: uint64(i + 1), Time: model.Timestamp(tm)})
		}
		events := w.Events()
		if len(events) != len(times) {
			return false
		}
		for i := 1; i < len(events); i++ {
			if events[i].Time < events[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
