package stores

import (
	"sort"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// SubscriptionTable stores the subscriptions (correlation operators)
// received from each origin, separated into the uncovered set (candidates
// for forwarding and for event matching per Algorithm 5) and the covered set
// (kept for completeness of the node's knowledge, per Algorithm 4 line 12).
// Local user subscriptions are filed under the node's own ID.
type SubscriptionTable struct {
	self      topology.NodeID
	uncovered map[topology.NodeID][]*model.Subscription
	covered   map[topology.NodeID][]*model.Subscription
	ids       map[topology.NodeID]map[model.SubscriptionID]bool
	// byAttr indexes the uncovered subscriptions of each origin by the
	// attribute types they filter, so that event matching only considers
	// subscriptions that can possibly involve the incoming event.
	byAttr map[topology.NodeID]map[model.AttributeType][]*model.Subscription
}

// NewSubscriptionTable returns an empty table for the given node.
func NewSubscriptionTable(self topology.NodeID) *SubscriptionTable {
	return &SubscriptionTable{
		self:      self,
		uncovered: map[topology.NodeID][]*model.Subscription{},
		covered:   map[topology.NodeID][]*model.Subscription{},
		ids:       map[topology.NodeID]map[model.SubscriptionID]bool{},
		byAttr:    map[topology.NodeID]map[model.AttributeType][]*model.Subscription{},
	}
}

// Seen reports whether a subscription with this ID was already stored for
// the origin (covered or uncovered).
func (t *SubscriptionTable) Seen(origin topology.NodeID, id model.SubscriptionID) bool {
	return t.ids[origin][id]
}

func (t *SubscriptionTable) markSeen(origin topology.NodeID, id model.SubscriptionID) {
	m := t.ids[origin]
	if m == nil {
		m = map[model.SubscriptionID]bool{}
		t.ids[origin] = m
	}
	m[id] = true
}

// AddUncovered stores a subscription that was not filtered out. It returns
// false if the ID was already present for this origin.
func (t *SubscriptionTable) AddUncovered(origin topology.NodeID, sub *model.Subscription) bool {
	if t.Seen(origin, sub.ID) {
		return false
	}
	t.markSeen(origin, sub.ID)
	t.uncovered[origin] = append(t.uncovered[origin], sub)
	idx := t.byAttr[origin]
	if idx == nil {
		idx = map[model.AttributeType][]*model.Subscription{}
		t.byAttr[origin] = idx
	}
	for _, a := range sub.Attributes() {
		idx[a] = append(idx[a], sub)
	}
	return true
}

// AddCovered stores a subscription that was filtered out as covered.
func (t *SubscriptionTable) AddCovered(origin topology.NodeID, sub *model.Subscription) bool {
	if t.Seen(origin, sub.ID) {
		return false
	}
	t.markSeen(origin, sub.ID)
	t.covered[origin] = append(t.covered[origin], sub)
	return true
}

// Uncovered returns the uncovered subscriptions stored for the origin.
func (t *SubscriptionTable) Uncovered(origin topology.NodeID) []*model.Subscription {
	return t.uncovered[origin]
}

// Covered returns the covered subscriptions stored for the origin.
func (t *SubscriptionTable) Covered(origin topology.NodeID) []*model.Subscription {
	return t.covered[origin]
}

// All returns covered and uncovered subscriptions stored for the origin (the
// per-subscription event propagation of the operator-placement and naive
// approaches matches against both).
func (t *SubscriptionTable) All(origin topology.NodeID) []*model.Subscription {
	out := make([]*model.Subscription, 0, len(t.uncovered[origin])+len(t.covered[origin]))
	out = append(out, t.uncovered[origin]...)
	out = append(out, t.covered[origin]...)
	return out
}

// UncoveredForAttr returns the uncovered subscriptions of the origin that
// filter the given attribute type.
func (t *SubscriptionTable) UncoveredForAttr(origin topology.NodeID, attr model.AttributeType) []*model.Subscription {
	return t.byAttr[origin][attr]
}

// Origins returns all origins with at least one stored subscription, sorted.
func (t *SubscriptionTable) Origins() []topology.NodeID {
	set := map[topology.NodeID]bool{}
	for o := range t.uncovered {
		if len(t.uncovered[o]) > 0 {
			set[o] = true
		}
	}
	for o := range t.covered {
		if len(t.covered[o]) > 0 {
			set[o] = true
		}
	}
	out := make([]topology.NodeID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountUncovered returns the total number of uncovered subscriptions across
// all origins.
func (t *SubscriptionTable) CountUncovered() int {
	total := 0
	for _, subs := range t.uncovered {
		total += len(subs)
	}
	return total
}

// CountCovered returns the total number of covered subscriptions across all
// origins.
func (t *SubscriptionTable) CountCovered() int {
	total := 0
	for _, subs := range t.covered {
		total += len(subs)
	}
	return total
}
