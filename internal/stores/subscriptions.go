package stores

import (
	"slices"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// SubscriptionTable stores the subscriptions (correlation operators)
// received from each origin, separated into the uncovered set (candidates
// for forwarding and for event matching per Algorithm 5) and the covered set
// (kept for completeness of the node's knowledge, per Algorithm 4 line 12).
// Local user subscriptions are filed under the node's own ID.
type SubscriptionTable struct {
	self      topology.NodeID
	uncovered map[topology.NodeID][]*model.Subscription
	covered   map[topology.NodeID][]*model.Subscription
	ids       map[topology.NodeID]map[model.SubscriptionID]bool
	// matchIdx holds, per origin, the range index over the uncovered
	// subscriptions' filter predicates: the indexed event-matching fast
	// path that replaces per-attribute linear scans with stabbing queries.
	// An origin's index is built lazily on its first EventCandidates call
	// (and kept current by AddUncovered afterwards), so tables whose
	// callers never query it pay nothing.
	matchIdx map[topology.NodeID]*EventIndex
	// coverBy records, per origin, which single uncovered subscription
	// covered each covered one at the time it was filed (when one exists —
	// set filtering can subsume by union, leaving no single cover). The
	// protocol handlers thread these links into their match indexes
	// (EventIndex.AddCovered) so candidate enumeration can skip a covered
	// set whenever its cover did not match. Links capture the coverage
	// geometry at storage time; they are consumed when the covered operator
	// is registered for matching and never re-read afterwards.
	coverBy map[topology.NodeID]map[model.SubscriptionID]model.SubscriptionID
	// origins caches the sorted origin list Origins returns; event
	// processing asks for it once per event, so it is rebuilt only when a
	// mutation invalidates it rather than on every call.
	origins      []topology.NodeID
	originsValid bool
	// remoteCovers enables cover-link recording for remote origins. Local
	// subscriptions (origin == self) always record links — local delivery
	// matching consumes them on every policy — but remote covered operators
	// are only registered for matching under per-subscription propagation,
	// so handlers whose policy never reads the links disable the recording
	// scan (RecordRemoteCoverLinks) instead of paying it per covered arrival.
	remoteCovers bool
}

// NewSubscriptionTable returns an empty table for the given node.
func NewSubscriptionTable(self topology.NodeID) *SubscriptionTable {
	return &SubscriptionTable{
		self:         self,
		uncovered:    map[topology.NodeID][]*model.Subscription{},
		covered:      map[topology.NodeID][]*model.Subscription{},
		ids:          map[topology.NodeID]map[model.SubscriptionID]bool{},
		matchIdx:     map[topology.NodeID]*EventIndex{},
		coverBy:      map[topology.NodeID]map[model.SubscriptionID]model.SubscriptionID{},
		remoteCovers: true,
	}
}

// RecordRemoteCoverLinks enables or disables cover-link recording for
// covered subscriptions of remote origins (default on). Handlers whose
// event-propagation policy never registers remote covered operators for
// matching turn it off so AddCovered skips the covering scan; links for the
// node's own origin are always recorded.
func (t *SubscriptionTable) RecordRemoteCoverLinks(on bool) { t.remoteCovers = on }

// Seen reports whether a subscription with this ID was already stored for
// the origin (covered or uncovered).
func (t *SubscriptionTable) Seen(origin topology.NodeID, id model.SubscriptionID) bool {
	return t.ids[origin][id]
}

func (t *SubscriptionTable) markSeen(origin topology.NodeID, id model.SubscriptionID) {
	m := t.ids[origin]
	if m == nil {
		m = map[model.SubscriptionID]bool{}
		t.ids[origin] = m
	}
	m[id] = true
}

// AddUncovered stores a subscription that was not filtered out. It returns
// false if the ID was already present for this origin.
func (t *SubscriptionTable) AddUncovered(origin topology.NodeID, sub *model.Subscription) bool {
	if t.Seen(origin, sub.ID) {
		return false
	}
	t.markSeen(origin, sub.ID)
	t.uncovered[origin] = append(t.uncovered[origin], sub)
	t.originsValid = false
	if ei := t.matchIdx[origin]; ei != nil {
		ei.Add(sub)
	}
	return true
}

// AddCovered stores a subscription that was filtered out as covered and
// records which single uncovered subscription covers it, when one does (a
// probabilistic set filter may have subsumed it by a union instead, in which
// case no link is recorded and candidate pruning simply does not apply).
func (t *SubscriptionTable) AddCovered(origin topology.NodeID, sub *model.Subscription) bool {
	if t.Seen(origin, sub.ID) {
		return false
	}
	t.markSeen(origin, sub.ID)
	t.covered[origin] = append(t.covered[origin], sub)
	t.originsValid = false
	if origin != t.self && !t.remoteCovers {
		return true
	}
	for _, u := range t.uncovered[origin] {
		if sub.CoveredBy(u) {
			links := t.coverBy[origin]
			if links == nil {
				links = map[model.SubscriptionID]model.SubscriptionID{}
				t.coverBy[origin] = links
			}
			links[sub.ID] = u.ID
			break
		}
	}
	return true
}

// CoverOf returns the ID of the single uncovered subscription recorded as
// covering the given covered subscription of the origin, or "" when none was
// found at storage time. Handlers pass it to EventIndex.AddCovered so
// covered operators registered for matching ride their cover's tree entries
// instead of adding their own.
func (t *SubscriptionTable) CoverOf(origin topology.NodeID, id model.SubscriptionID) model.SubscriptionID {
	return t.coverBy[origin][id]
}

// Uncovered returns the uncovered subscriptions stored for the origin.
func (t *SubscriptionTable) Uncovered(origin topology.NodeID) []*model.Subscription {
	return t.uncovered[origin]
}

// Covered returns the covered subscriptions stored for the origin.
func (t *SubscriptionTable) Covered(origin topology.NodeID) []*model.Subscription {
	return t.covered[origin]
}

// All returns covered and uncovered subscriptions stored for the origin (the
// per-subscription event propagation of the operator-placement and naive
// approaches matches against both).
func (t *SubscriptionTable) All(origin topology.NodeID) []*model.Subscription {
	out := make([]*model.Subscription, 0, len(t.uncovered[origin])+len(t.covered[origin]))
	out = append(out, t.uncovered[origin]...)
	out = append(out, t.covered[origin]...)
	return out
}

// Remove retracts the subscription with the given ID from the origin's
// stores (covered or uncovered) and from the origin's match index. It
// returns the removed subscription and whether it was stored uncovered; ok
// is false when the origin never stored the ID. After Remove the ID is no
// longer Seen, so a later re-subscription is processed afresh.
func (t *SubscriptionTable) Remove(origin topology.NodeID, id model.SubscriptionID) (sub *model.Subscription, wasUncovered, ok bool) {
	if !t.Seen(origin, id) {
		return nil, false, false
	}
	delete(t.ids[origin], id)
	t.originsValid = false
	if sub = removeByID(t.uncovered, origin, id); sub != nil {
		if ei := t.matchIdx[origin]; ei != nil {
			ei.Remove(id)
		}
		t.dropLinksTo(origin, id)
		return sub, true, true
	}
	if sub = removeByID(t.covered, origin, id); sub != nil {
		delete(t.coverBy[origin], id)
		return sub, false, true
	}
	// Seen but stored nowhere — cannot happen; treat as unknown.
	return nil, false, false
}

// dropLinksTo deletes the origin's cover links pointing at a retracted
// uncovered subscription: the coverage geometry they captured died with it,
// and a covered operator promoted later must not inherit the stale root.
func (t *SubscriptionTable) dropLinksTo(origin topology.NodeID, id model.SubscriptionID) {
	links := t.coverBy[origin]
	for covered, cover := range links {
		if cover == id {
			delete(links, covered)
		}
	}
}

// Promote moves a covered subscription of the origin into the uncovered set
// (and the origin's match index), re-exposing it after the subscription that
// covered it was retracted. It returns the promoted subscription, or nil
// when the ID is not stored covered for the origin.
//
// Promotion also refreshes the origin's cover links: covered subscriptions
// whose link died with the retracted cover (Remove drops links pointing at a
// retracted subscription) are re-linked to the promoted one when it covers
// them, so an operator registered or promoted later gets a live pruning root
// instead of the stale — possibly since reused — ID its original link named.
// As in AddCovered, remote origins only pay the scan when the handler's
// policy consumes the links (RecordRemoteCoverLinks).
func (t *SubscriptionTable) Promote(origin topology.NodeID, id model.SubscriptionID) *model.Subscription {
	sub := removeByID(t.covered, origin, id)
	if sub == nil {
		return nil
	}
	delete(t.coverBy[origin], id)
	t.uncovered[origin] = append(t.uncovered[origin], sub)
	if ei := t.matchIdx[origin]; ei != nil {
		ei.Add(sub)
	}
	if origin == t.self || t.remoteCovers {
		links := t.coverBy[origin]
		for _, c := range t.covered[origin] {
			if _, linked := links[c.ID]; linked || !c.CoveredBy(sub) {
				continue
			}
			if links == nil {
				links = map[model.SubscriptionID]model.SubscriptionID{}
				t.coverBy[origin] = links
			}
			links[c.ID] = sub.ID
		}
	}
	return sub
}

// removeByID removes (order-preserving) the subscription with the given ID
// from the origin's slice and returns it, or nil when absent. The splice is
// in place: accessors hand out the live slices and callers that walk one
// across removals snapshot it first (see core's reexpose), so churn reuses
// the backing array instead of reallocating it per retraction.
func removeByID(m map[topology.NodeID][]*model.Subscription, origin topology.NodeID, id model.SubscriptionID) *model.Subscription {
	subs := m[origin]
	for i, s := range subs {
		if s.ID == id {
			copy(subs[i:], subs[i+1:])
			subs[len(subs)-1] = nil
			m[origin] = subs[:len(subs)-1]
			return s
		}
	}
	return nil
}

// EventCandidates invokes fn with every uncovered subscription of the origin
// that matches the simple event, using the range index instead of a scan
// over the per-attribute lists. Iteration stops early when fn returns false.
func (t *SubscriptionTable) EventCandidates(origin topology.NodeID, ev model.Event, fn func(*model.Subscription) bool) {
	if len(t.uncovered[origin]) == 0 {
		return
	}
	idx := t.matchIdx[origin]
	if idx == nil {
		// The whole uncovered population arrives at once, so the first query
		// packs it bottom-up instead of growing trees one insert at a time.
		idx = NewEventIndex()
		idx.BulkLoad(t.uncovered[origin])
		t.matchIdx[origin] = idx
	}
	idx.Candidates(ev, fn)
}

// Origins returns all origins with at least one stored subscription, sorted.
// The returned slice is the table's cache: callers must treat it as
// read-only and must not hold it across table mutations (Add/Remove/Promote
// invalidate it). Event processing calls Origins once per event, so the
// rebuild cost is paid only when the subscription population changed.
func (t *SubscriptionTable) Origins() []topology.NodeID {
	if t.originsValid {
		return t.origins
	}
	out := t.origins[:0]
	for o := range t.uncovered {
		if len(t.uncovered[o]) > 0 {
			out = append(out, o)
		}
	}
	for o := range t.covered {
		if len(t.covered[o]) > 0 && len(t.uncovered[o]) == 0 {
			out = append(out, o)
		}
	}
	slices.Sort(out)
	t.origins = out
	t.originsValid = true
	return t.origins
}

// CountUncovered returns the total number of uncovered subscriptions across
// all origins.
func (t *SubscriptionTable) CountUncovered() int {
	total := 0
	for _, subs := range t.uncovered {
		total += len(subs)
	}
	return total
}

// CountCovered returns the total number of covered subscriptions across all
// origins.
func (t *SubscriptionTable) CountCovered() int {
	total := 0
	for _, subs := range t.covered {
		total += len(subs)
	}
	return total
}
