package stores

import (
	"sort"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// SubscriptionTable stores the subscriptions (correlation operators)
// received from each origin, separated into the uncovered set (candidates
// for forwarding and for event matching per Algorithm 5) and the covered set
// (kept for completeness of the node's knowledge, per Algorithm 4 line 12).
// Local user subscriptions are filed under the node's own ID.
type SubscriptionTable struct {
	self      topology.NodeID
	uncovered map[topology.NodeID][]*model.Subscription
	covered   map[topology.NodeID][]*model.Subscription
	ids       map[topology.NodeID]map[model.SubscriptionID]bool
	// matchIdx holds, per origin, the range index over the uncovered
	// subscriptions' filter predicates: the indexed event-matching fast
	// path that replaces per-attribute linear scans with stabbing queries.
	// An origin's index is built lazily on its first EventCandidates call
	// (and kept current by AddUncovered afterwards), so tables whose
	// callers never query it pay nothing.
	matchIdx map[topology.NodeID]*EventIndex
}

// NewSubscriptionTable returns an empty table for the given node.
func NewSubscriptionTable(self topology.NodeID) *SubscriptionTable {
	return &SubscriptionTable{
		self:      self,
		uncovered: map[topology.NodeID][]*model.Subscription{},
		covered:   map[topology.NodeID][]*model.Subscription{},
		ids:       map[topology.NodeID]map[model.SubscriptionID]bool{},
		matchIdx:  map[topology.NodeID]*EventIndex{},
	}
}

// Seen reports whether a subscription with this ID was already stored for
// the origin (covered or uncovered).
func (t *SubscriptionTable) Seen(origin topology.NodeID, id model.SubscriptionID) bool {
	return t.ids[origin][id]
}

func (t *SubscriptionTable) markSeen(origin topology.NodeID, id model.SubscriptionID) {
	m := t.ids[origin]
	if m == nil {
		m = map[model.SubscriptionID]bool{}
		t.ids[origin] = m
	}
	m[id] = true
}

// AddUncovered stores a subscription that was not filtered out. It returns
// false if the ID was already present for this origin.
func (t *SubscriptionTable) AddUncovered(origin topology.NodeID, sub *model.Subscription) bool {
	if t.Seen(origin, sub.ID) {
		return false
	}
	t.markSeen(origin, sub.ID)
	t.uncovered[origin] = append(t.uncovered[origin], sub)
	if ei := t.matchIdx[origin]; ei != nil {
		ei.Add(sub)
	}
	return true
}

// AddCovered stores a subscription that was filtered out as covered.
func (t *SubscriptionTable) AddCovered(origin topology.NodeID, sub *model.Subscription) bool {
	if t.Seen(origin, sub.ID) {
		return false
	}
	t.markSeen(origin, sub.ID)
	t.covered[origin] = append(t.covered[origin], sub)
	return true
}

// Uncovered returns the uncovered subscriptions stored for the origin.
func (t *SubscriptionTable) Uncovered(origin topology.NodeID) []*model.Subscription {
	return t.uncovered[origin]
}

// Covered returns the covered subscriptions stored for the origin.
func (t *SubscriptionTable) Covered(origin topology.NodeID) []*model.Subscription {
	return t.covered[origin]
}

// All returns covered and uncovered subscriptions stored for the origin (the
// per-subscription event propagation of the operator-placement and naive
// approaches matches against both).
func (t *SubscriptionTable) All(origin topology.NodeID) []*model.Subscription {
	out := make([]*model.Subscription, 0, len(t.uncovered[origin])+len(t.covered[origin]))
	out = append(out, t.uncovered[origin]...)
	out = append(out, t.covered[origin]...)
	return out
}

// Remove retracts the subscription with the given ID from the origin's
// stores (covered or uncovered) and from the origin's match index. It
// returns the removed subscription and whether it was stored uncovered; ok
// is false when the origin never stored the ID. After Remove the ID is no
// longer Seen, so a later re-subscription is processed afresh.
func (t *SubscriptionTable) Remove(origin topology.NodeID, id model.SubscriptionID) (sub *model.Subscription, wasUncovered, ok bool) {
	if !t.Seen(origin, id) {
		return nil, false, false
	}
	delete(t.ids[origin], id)
	if sub = removeByID(t.uncovered, origin, id); sub != nil {
		if ei := t.matchIdx[origin]; ei != nil {
			ei.Remove(id)
		}
		return sub, true, true
	}
	if sub = removeByID(t.covered, origin, id); sub != nil {
		return sub, false, true
	}
	// Seen but stored nowhere — cannot happen; treat as unknown.
	return nil, false, false
}

// Promote moves a covered subscription of the origin into the uncovered set
// (and the origin's match index), re-exposing it after the subscription that
// covered it was retracted. It returns the promoted subscription, or nil
// when the ID is not stored covered for the origin.
func (t *SubscriptionTable) Promote(origin topology.NodeID, id model.SubscriptionID) *model.Subscription {
	sub := removeByID(t.covered, origin, id)
	if sub == nil {
		return nil
	}
	t.uncovered[origin] = append(t.uncovered[origin], sub)
	if ei := t.matchIdx[origin]; ei != nil {
		ei.Add(sub)
	}
	return sub
}

// removeByID removes (order-preserving) the subscription with the given ID
// from the origin's slice and returns it, or nil when absent.
func removeByID(m map[topology.NodeID][]*model.Subscription, origin topology.NodeID, id model.SubscriptionID) *model.Subscription {
	subs := m[origin]
	for i, s := range subs {
		if s.ID == id {
			m[origin] = append(subs[:i:i], subs[i+1:]...)
			return s
		}
	}
	return nil
}

// EventCandidates invokes fn with every uncovered subscription of the origin
// that matches the simple event, using the range index instead of a scan
// over the per-attribute lists. Iteration stops early when fn returns false.
func (t *SubscriptionTable) EventCandidates(origin topology.NodeID, ev model.Event, fn func(*model.Subscription) bool) {
	if len(t.uncovered[origin]) == 0 {
		return
	}
	idx := t.matchIdx[origin]
	if idx == nil {
		idx = NewEventIndex()
		for _, sub := range t.uncovered[origin] {
			idx.Add(sub)
		}
		t.matchIdx[origin] = idx
	}
	idx.Candidates(ev, fn)
}

// Origins returns all origins with at least one stored subscription, sorted.
func (t *SubscriptionTable) Origins() []topology.NodeID {
	set := map[topology.NodeID]bool{}
	for o := range t.uncovered {
		if len(t.uncovered[o]) > 0 {
			set[o] = true
		}
	}
	for o := range t.covered {
		if len(t.covered[o]) > 0 {
			set[o] = true
		}
	}
	out := make([]topology.NodeID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountUncovered returns the total number of uncovered subscriptions across
// all origins.
func (t *SubscriptionTable) CountUncovered() int {
	total := 0
	for _, subs := range t.uncovered {
		total += len(subs)
	}
	return total
}

// CountCovered returns the total number of covered subscriptions across all
// origins.
func (t *SubscriptionTable) CountCovered() int {
	total := 0
	for _, subs := range t.covered {
		total += len(subs)
	}
	return total
}
