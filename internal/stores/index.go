package stores

import (
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
)

// EventIndex is the indexed event-matching fast path: it stores
// subscriptions (correlation operators) so that, for an incoming simple
// event, the candidate operators — exactly those for which
// Subscription.MatchesEvent would return true — are found by range-pruned
// index lookups instead of a linear scan over every operator filtering the
// event's attribute.
//
// Internally the index keeps one composite box structure (geom.BoxTree) per
// operator class: per filtered sensor for identified subscriptions (the
// filter's value range), and per filtered attribute type for abstract ones —
// where each entry is the filter's value range and the subscription region
// as one three-dimensional box, so a lookup stabs value and location at once
// instead of stabbing a per-attribute interval tree and re-checking region
// containment on every candidate. A candidate lookup for event e stabs
// bySensor[e.Sensor] with e.Value, or byAttr[e.Attr] with
// (e.Value, e.Location). The result set is exactly {s : s.MatchesEvent(e)} —
// verified against the linear scan by the property tests — so callers can
// feed candidates straight into FindComplexMatch.
//
// Maintenance is fully incremental once the index has served its first
// lookup: Add and Remove splice single boxes in and out of the trees in
// O(log n), so steady-state subscribe/unsubscribe churn never tombstones
// entries or rebuilds a structure from scratch (the PR 4
// rebuild-on-half-dead compaction path is gone; NewEventIndexRebuild keeps
// it reachable as a benchmark baseline). Before the first lookup, Adds are
// staged and the first Candidates call packs the whole staged population
// with geom.BoxTree.BulkLoad — one bottom-up O(n log n) build instead of n
// heuristic descents — which is what makes the initial subscription flood
// (register everything, then start matching) cheap. BulkLoad triggers the
// same packed build explicitly.
//
// Covering-aware pruning: AddCovered registers a subscription known to be
// covered by an already-indexed one. Covered entries are not stored in the
// trees at all — they attach to their covering subscription and are tested
// (one MatchesEvent call) only after the covering subscription matched.
// Because covering implies per-filter range and region containment, a
// covered subscription can only match events its cover also matches, so the
// candidate set is provably unchanged while the trees stay smaller and
// enumeration skips entire covered sets whenever their cover missed.
//
// A subscription appears at most once per lookup: identified subscriptions
// have one filter per sensor and abstract ones one filter per attribute, so
// no per-query deduplication is needed; covered subscriptions hang off
// exactly one cover.
//
// Like the other stores, an EventIndex is not safe for concurrent use; each
// protocol handler owns its indexes and the engines guarantee per-node
// sequential execution.
type EventIndex struct {
	// Exactly one of the two implementations is set: the incremental
	// composite index (the default) or the legacy tombstone-and-rebuild
	// index retained as the BenchmarkIndexChurn baseline.
	inc    *compositeIndex
	legacy *rebuildIndex
}

// NewEventIndex returns an empty index with incremental maintenance and a
// deferred bulk-packed first build.
func NewEventIndex() *EventIndex {
	return &EventIndex{inc: newCompositeIndex()}
}

// NewEventIndexEager returns an index identical to NewEventIndex's except
// that every Add inserts into the trees immediately instead of staging for
// the bulk-packed first build. It exists as the comparison baseline for
// BenchmarkSubscriptionFlood and for tests pinning bulk/incremental
// equivalence; protocol code always uses NewEventIndex.
func NewEventIndexEager() *EventIndex {
	x := newCompositeIndex()
	x.built = true
	return &EventIndex{inc: x}
}

// NewEventIndexRebuild returns an index using the superseded maintenance
// strategy — per-attribute lazily rebuilt interval trees with tombstoned
// removals compacted by a rebuild once tombstones outnumber live members.
// It exists solely as the comparison baseline for BenchmarkIndexChurn (the
// branch point that forces the old rebuild path); protocol code always uses
// NewEventIndex.
func NewEventIndexRebuild() *EventIndex {
	return &EventIndex{legacy: newRebuildIndex()}
}

// Add registers a subscription (or correlation operator) for event matching.
// Adding an ID already present is a no-op — unless the ID is attached as a
// covered entry, in which case it is promoted to a full tree member (its
// matches no longer depend on its former cover being present).
func (x *EventIndex) Add(sub *model.Subscription) {
	if sub == nil {
		return
	}
	if x.legacy != nil {
		x.legacy.add(sub)
		return
	}
	x.inc.add(sub)
}

// AddCovered registers a subscription whose matches are known to be a subset
// of the already-indexed cover's (sub.CoveredBy(cover's subscription) holds):
// it is attached to the cover and tested only when the cover matches,
// skipping the trees entirely. When the cover is unknown, itself covered, or
// empty, AddCovered degrades to a plain Add — pruning is an optimisation,
// never a requirement.
func (x *EventIndex) AddCovered(sub *model.Subscription, cover model.SubscriptionID) {
	if sub == nil {
		return
	}
	if x.legacy != nil {
		x.legacy.add(sub)
		return
	}
	x.inc.addCovered(sub, cover)
}

// Remove retracts a subscription from the index by ID. It returns false when
// the ID is not (or no longer) indexed. Removal is incremental: the entry's
// boxes are spliced out of the trees in O(log n); covered entries attached
// to the removed subscription are re-indexed as full members (they remain
// registered — only their pruning shortcut dies with the cover).
func (x *EventIndex) Remove(id model.SubscriptionID) bool {
	if x.legacy != nil {
		return x.legacy.remove(id)
	}
	return x.inc.remove(id)
}

// Len returns the number of live subscriptions in the index (tree members
// plus attached covered entries).
func (x *EventIndex) Len() int {
	if x.legacy != nil {
		return x.legacy.len()
	}
	return x.inc.len()
}

// BulkLoad registers a batch of subscriptions at once. It is equivalent to
// calling Add for each (nil entries and duplicate IDs are skipped the same
// way), but when the index has never served a lookup the whole batch —
// together with anything staged by earlier Adds — is packed into balanced
// trees in one bottom-up pass per tree (geom.BoxTree.BulkLoad) instead of
// one heuristic descent per box. On an index that has already been queried
// it degrades to the incremental Add loop.
func (x *EventIndex) BulkLoad(subs []*model.Subscription) {
	if x.legacy != nil {
		// The legacy interval trees already batch their construction (they
		// record additions and rebuild lazily on the next stab), so the bulk
		// path has nothing further to pack.
		for _, sub := range subs {
			if sub != nil {
				x.legacy.add(sub)
			}
		}
		return
	}
	for _, sub := range subs {
		if sub != nil {
			x.inc.add(sub)
		}
	}
	if !x.inc.built {
		x.inc.build()
	}
}

// Candidates invokes fn with every stored subscription that matches the
// simple event (Subscription.MatchesEvent holds for each candidate, and no
// matching subscription is missed). Iteration stops early when fn returns
// false; the candidate order is unspecified.
func (x *EventIndex) Candidates(ev model.Event, fn func(*model.Subscription) bool) {
	if x.legacy != nil {
		x.legacy.candidates(ev, fn)
		return
	}
	x.inc.candidates(ev, fn)
}

// IndexStats summarises the shape and observed lookup cost of an EventIndex
// for diagnostics (cqsim -indexstats): tree and entry counts, the tallest
// tree, and the running candidates-per-lookup tally.
type IndexStats struct {
	Trees      int   // composite trees (one per filtered sensor / attribute type)
	Members    int   // full members with tree entries of their own
	Covered    int   // entries attached under a cover, kept out of the trees
	Boxes      int   // boxes stored across all trees
	Nodes      int   // pooled tree nodes backing those boxes (2·boxes−1 per packed tree)
	MaxHeight  int   // height of the tallest tree (stab cost is O(height) per visited branch)
	Lookups    int64 // Candidates calls served since construction
	Candidates int64 // candidates emitted by those calls (avg per lookup = Candidates/Lookups)
}

// Merge folds another index's stats into s: counts add up, MaxHeight takes
// the taller tree. Diagnostics use it to aggregate the many per-(node,
// origin) indexes of a distributed run into one report.
func (s *IndexStats) Merge(o IndexStats) {
	s.Trees += o.Trees
	s.Members += o.Members
	s.Covered += o.Covered
	s.Boxes += o.Boxes
	s.Nodes += o.Nodes
	if o.MaxHeight > s.MaxHeight {
		s.MaxHeight = o.MaxHeight
	}
	s.Lookups += o.Lookups
	s.Candidates += o.Candidates
}

// Stats reports the index's current shape. On an index that has not served a
// lookup yet it forces the deferred bulk build first, so the reported tree
// shape is the one lookups will actually see. The legacy rebuild baseline
// reports only its member count.
func (x *EventIndex) Stats() IndexStats {
	if x.legacy != nil {
		return IndexStats{
			Trees:   len(x.legacy.bySensor) + len(x.legacy.byAttr),
			Members: x.legacy.len(),
		}
	}
	return x.inc.stats()
}

// --- incremental composite implementation ---

// compositeIndex is the incremental implementation behind NewEventIndex.
type compositeIndex struct {
	bySensor map[model.SensorID]*boxList        // 1-D: filter value range
	byAttr   map[model.AttributeType]*boxList   // 3-D: value range × region
	members  map[model.SubscriptionID]*ixMember // every live subscription

	// Until the first lookup, full members are staged in pending instead of
	// being inserted into the trees one by one; build() packs them all at
	// once. A staged member removed before the build is only deleted from
	// members — the flush skips entries the map no longer owns — so pending
	// may briefly hold dead members, never miss a live one.
	pending []*ixMember
	built   bool

	// Lookup tallies for Stats (incremented on the candidates hot path; two
	// integer adds, no allocation).
	lookups int64
	emitted int64
}

// boxList pairs one composite tree with the members its slots refer to
// (tree handle i is an index into members; freed slots are reused).
type boxList struct {
	tree    *geom.BoxTree
	members []*ixMember
	free    []int
}

// ixEntry is one tree entry of a member: the list it lives in, the slot its
// handle points at and the token Remove hands back to the tree.
type ixEntry struct {
	list  *boxList
	token int32
	slot  int
}

// ixMember is the per-subscription state: its tree entries (full members),
// or the cover it is attached under (covered entries), plus the covered
// entries attached to it.
type ixMember struct {
	sub      *model.Subscription
	entries  []ixEntry
	parent   *ixMember
	children []*ixMember
}

func newCompositeIndex() *compositeIndex {
	return &compositeIndex{
		bySensor: map[model.SensorID]*boxList{},
		byAttr:   map[model.AttributeType]*boxList{},
		members:  map[model.SubscriptionID]*ixMember{},
	}
}

func (x *compositeIndex) len() int { return len(x.members) }

func (x *compositeIndex) add(sub *model.Subscription) {
	if m, live := x.members[sub.ID]; live {
		if m.parent != nil {
			// Promote a covered entry to a full member: detach from its
			// cover and give it tree entries of its own.
			m.parent.dropChild(m)
			m.parent = nil
			x.indexMember(m)
		}
		return
	}
	m := &ixMember{sub: sub}
	x.members[sub.ID] = m
	x.indexMember(m)
}

// indexMember gives a full member tree entries: immediately once the index
// has been built, staged for the bulk-packed first build before that.
func (x *compositeIndex) indexMember(m *ixMember) {
	if x.built {
		x.insertEntries(m)
		return
	}
	x.pending = append(x.pending, m)
}

func (x *compositeIndex) addCovered(sub *model.Subscription, cover model.SubscriptionID) {
	if _, live := x.members[sub.ID]; live {
		return
	}
	root := x.members[cover]
	if cover == "" || cover == sub.ID || root == nil || root.parent != nil {
		x.add(sub)
		return
	}
	m := &ixMember{sub: sub, parent: root}
	x.members[sub.ID] = m
	root.children = append(root.children, m)
}

func (x *compositeIndex) remove(id model.SubscriptionID) bool {
	m, live := x.members[id]
	if !live {
		return false
	}
	delete(x.members, id)
	if m.parent != nil {
		m.parent.dropChild(m)
		m.parent = nil
		return true
	}
	for _, e := range m.entries {
		e.list.release(e)
	}
	m.entries = nil
	// Re-index the covered entries that were pruned through this member:
	// they stay registered, as full members now.
	for _, c := range m.children {
		c.parent = nil
		x.indexMember(c)
	}
	m.children = nil
	return true
}

// build packs every staged live member's boxes into the composite trees in
// one bottom-up pass per tree, then switches the index to incremental
// maintenance. Each subscription contributes at most one box per tree (one
// filter per sensor or attribute), so grouping by destination tree preserves
// the batch order within every group and the build is deterministic.
func (x *compositeIndex) build() {
	x.built = true
	pend := x.pending
	x.pending = nil
	if len(pend) == 0 {
		return
	}
	type bulkGroup struct {
		list  *boxList
		boxes []geom.Interval // flat: one box per member, list.tree.Dims() intervals each
		mems  []*ixMember
	}
	var groups []*bulkGroup
	byList := map[*boxList]*bulkGroup{}
	groupFor := func(l *boxList) *bulkGroup {
		g := byList[l]
		if g == nil {
			g = &bulkGroup{list: l}
			byList[l] = g
			groups = append(groups, g)
		}
		return g
	}
	for _, m := range pend {
		if x.members[m.sub.ID] != m {
			continue // removed (or replaced) before the first lookup
		}
		sub := m.sub
		if sub.Kind == model.KindIdentified {
			for d, f := range sub.SensorFilters {
				g := groupFor(x.sensorList(d))
				g.boxes = append(g.boxes, f.Range)
				g.mems = append(g.mems, m)
			}
			continue
		}
		for a, f := range sub.AttrFilters {
			g := groupFor(x.attrList(a))
			g.boxes = append(g.boxes, f.Range, sub.Region.X, sub.Region.Y)
			g.mems = append(g.mems, m)
		}
	}
	for _, g := range groups {
		l := g.list
		handles := make([]int, len(g.mems))
		for i, m := range g.mems {
			handles[i] = len(l.members)
			l.members = append(l.members, m)
		}
		tokens := l.tree.BulkLoad(g.boxes, handles)
		for i, token := range tokens {
			if token < 0 {
				l.members[handles[i]] = nil
				l.free = append(l.free, handles[i])
				continue
			}
			g.mems[i].entries = append(g.mems[i].entries, ixEntry{list: l, token: token, slot: handles[i]})
		}
	}
}

// sensorList returns (creating on first use) the 1-D list for a sensor.
func (x *compositeIndex) sensorList(d model.SensorID) *boxList {
	l := x.bySensor[d]
	if l == nil {
		l = &boxList{tree: geom.NewBoxTree(1)}
		x.bySensor[d] = l
	}
	return l
}

// attrList returns (creating on first use) the 3-D list for an attribute.
func (x *compositeIndex) attrList(a model.AttributeType) *boxList {
	l := x.byAttr[a]
	if l == nil {
		l = &boxList{tree: geom.NewBoxTree(3)}
		x.byAttr[a] = l
	}
	return l
}

// insertEntries inserts the member's filter boxes into the composite trees.
func (x *compositeIndex) insertEntries(m *ixMember) {
	sub := m.sub
	if sub.Kind == model.KindIdentified {
		var box [1]geom.Interval
		for d, f := range sub.SensorFilters {
			box[0] = f.Range
			x.sensorList(d).insert(box[:], m)
		}
		return
	}
	var box [3]geom.Interval
	box[1] = sub.Region.X
	box[2] = sub.Region.Y
	for a, f := range sub.AttrFilters {
		box[0] = f.Range
		x.attrList(a).insert(box[:], m)
	}
}

// insert stores one box for the member, reusing a freed slot when available.
// Boxes with an empty dimension are unmatchable and not stored (the tree
// reports them with a negative token).
func (l *boxList) insert(box []geom.Interval, m *ixMember) {
	slot := -1
	if n := len(l.free); n > 0 {
		slot = l.free[n-1]
		l.free = l.free[:n-1]
		l.members[slot] = m
	} else {
		slot = len(l.members)
		l.members = append(l.members, m)
	}
	token := l.tree.Insert(box, slot)
	if token < 0 {
		l.members[slot] = nil
		l.free = append(l.free, slot)
		return
	}
	m.entries = append(m.entries, ixEntry{list: l, token: token, slot: slot})
}

// release takes one entry back out of the tree and recycles its slot.
func (l *boxList) release(e ixEntry) {
	l.tree.Remove(e.token)
	l.members[e.slot] = nil
	l.free = append(l.free, e.slot)
}

// dropChild detaches a covered entry from this member's children.
func (m *ixMember) dropChild(c *ixMember) {
	for i, cc := range m.children {
		if cc == c {
			last := len(m.children) - 1
			m.children[i] = m.children[last]
			m.children[last] = nil
			m.children = m.children[:last]
			return
		}
	}
}

func (x *compositeIndex) candidates(ev model.Event, fn func(*model.Subscription) bool) {
	if !x.built {
		x.build()
	}
	x.lookups++
	emit := func(h int, l *boxList) bool {
		m := l.members[h]
		x.emitted++
		if !fn(m.sub) {
			return false
		}
		// The member matched, so its covered entries may too: each costs one
		// exact MatchesEvent test. When the member does not match, its whole
		// covered set is skipped without being visited (covering implies the
		// cover matches every event a covered subscription matches).
		for _, c := range m.children {
			if c.sub.MatchesEvent(ev) {
				x.emitted++
				if !fn(c.sub) {
					return false
				}
			}
		}
		return true
	}
	if l := x.bySensor[ev.Sensor]; l != nil {
		pt := [1]float64{ev.Value}
		stopped := false
		l.tree.Stab(pt[:], func(h int) bool {
			if !emit(h, l) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
	if l := x.byAttr[ev.Attr]; l != nil {
		pt := [3]float64{ev.Value, ev.Location.X, ev.Location.Y}
		l.tree.Stab(pt[:], func(h int) bool {
			return emit(h, l)
		})
	}
}

// stats forces the deferred build (so tree shape reflects what lookups see)
// and walks the per-tree summaries.
func (x *compositeIndex) stats() IndexStats {
	if !x.built {
		x.build()
	}
	st := IndexStats{
		Lookups:    x.lookups,
		Candidates: x.emitted,
	}
	for _, m := range x.members {
		if m.parent != nil {
			st.Covered++
		} else {
			st.Members++
		}
	}
	tally := func(l *boxList) {
		st.Trees++
		n := l.tree.Len()
		st.Boxes += n
		if n > 0 {
			st.Nodes += 2*n - 1 // strictly binary: n leaves, n-1 internal nodes
		}
		if h := l.tree.Height(); h > st.MaxHeight {
			st.MaxHeight = h
		}
	}
	for _, l := range x.bySensor {
		tally(l)
	}
	for _, l := range x.byAttr {
		tally(l)
	}
	return st
}

// --- legacy tombstone-and-rebuild implementation (benchmark baseline) ---

// rebuildIndex is the PR 4 maintenance strategy: one lazily rebuilt interval
// stabbing tree per sensor/attribute, tombstone-based removal, and a full
// rebuild once tombstones outnumber live members. Kept only so that
// BenchmarkIndexChurn can measure what incremental maintenance replaced.
type rebuildIndex struct {
	bySensor map[model.SensorID]*rangeList
	byAttr   map[model.AttributeType]*rangeList
	members  map[model.SubscriptionID]*model.Subscription
	removed  map[model.SubscriptionID]bool
}

// rangeList pairs an interval tree with the subscriptions its handles refer
// to: handle i is an index into subs.
type rangeList struct {
	tree geom.IntervalTree
	subs []*model.Subscription
}

func (l *rangeList) add(iv geom.Interval, sub *model.Subscription) {
	l.tree.Add(iv, len(l.subs))
	l.subs = append(l.subs, sub)
}

func newRebuildIndex() *rebuildIndex {
	return &rebuildIndex{
		bySensor: map[model.SensorID]*rangeList{},
		byAttr:   map[model.AttributeType]*rangeList{},
		members:  map[model.SubscriptionID]*model.Subscription{},
		removed:  map[model.SubscriptionID]bool{},
	}
}

func (x *rebuildIndex) len() int { return len(x.members) }

func (x *rebuildIndex) add(sub *model.Subscription) {
	if _, live := x.members[sub.ID]; live {
		return
	}
	if x.removed[sub.ID] {
		// The trees still hold stale entries for this ID; purge them first
		// so the fresh registration is not shadowed by (or duplicated with)
		// the tombstoned one.
		x.rebuild()
	}
	x.members[sub.ID] = sub
	x.addToTrees(sub)
}

func (x *rebuildIndex) addToTrees(sub *model.Subscription) {
	if sub.Kind == model.KindIdentified {
		for d, f := range sub.SensorFilters {
			l := x.bySensor[d]
			if l == nil {
				l = &rangeList{}
				x.bySensor[d] = l
			}
			l.add(f.Range, sub)
		}
	} else {
		for a, f := range sub.AttrFilters {
			l := x.byAttr[a]
			if l == nil {
				l = &rangeList{}
				x.byAttr[a] = l
			}
			l.add(f.Range, sub)
		}
	}
}

func (x *rebuildIndex) remove(id model.SubscriptionID) bool {
	if _, live := x.members[id]; !live {
		return false
	}
	delete(x.members, id)
	x.removed[id] = true
	if len(x.removed) > len(x.members) && len(x.removed) >= 16 {
		x.rebuild()
	}
	return true
}

// rebuild reconstructs the stabbing trees from the live members, discarding
// every tombstone.
func (x *rebuildIndex) rebuild() {
	x.bySensor = map[model.SensorID]*rangeList{}
	x.byAttr = map[model.AttributeType]*rangeList{}
	x.removed = map[model.SubscriptionID]bool{}
	for _, sub := range x.members {
		x.addToTrees(sub)
	}
}

func (x *rebuildIndex) candidates(ev model.Event, fn func(*model.Subscription) bool) {
	stopped := false
	if l := x.bySensor[ev.Sensor]; l != nil {
		l.tree.Stab(ev.Value, func(h int) bool {
			s := l.subs[h]
			if len(x.removed) > 0 && x.removed[s.ID] {
				return true
			}
			if !fn(s) {
				stopped = true
				return false
			}
			return true
		})
	}
	if stopped {
		return
	}
	if l := x.byAttr[ev.Attr]; l != nil {
		l.tree.Stab(ev.Value, func(h int) bool {
			s := l.subs[h]
			if len(x.removed) > 0 && x.removed[s.ID] {
				return true
			}
			if !s.Region.Contains(ev.Location) {
				return true
			}
			return fn(s)
		})
	}
}
