package stores

import (
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
)

// EventIndex is the indexed event-matching fast path: it stores
// subscriptions (correlation operators) so that, for an incoming simple
// event, the candidate operators — exactly those for which
// Subscription.MatchesEvent would return true — are found by range-pruned
// index lookups instead of a linear scan over every operator filtering the
// event's attribute.
//
// Internally the index keeps one interval stabbing tree (geom.IntervalTree)
// per filtered sensor (identified subscriptions) and per filtered attribute
// type (abstract subscriptions), over the filters' value ranges. A candidate
// lookup for event e stabs bySensor[e.Sensor] and byAttr[e.Attr] with
// e.Value; abstract hits are additionally pruned by the subscription
// region's containment of e.Location. The result set is therefore exactly
// {s : s.MatchesEvent(e)} — verified against the linear scan by the
// property tests — so callers can feed candidates straight into
// FindComplexMatch.
//
// A subscription appears at most once per lookup: identified subscriptions
// have one filter per sensor and abstract ones one filter per attribute, so
// no per-query deduplication is needed.
//
// Like the other stores, an EventIndex is not safe for concurrent use; each
// protocol handler owns its indexes and the engines guarantee per-node
// sequential execution.
type EventIndex struct {
	bySensor map[model.SensorID]*rangeList
	byAttr   map[model.AttributeType]*rangeList
	size     int
}

// rangeList pairs an interval tree with the subscriptions its handles refer
// to: handle i is an index into subs.
type rangeList struct {
	tree geom.IntervalTree
	subs []*model.Subscription
}

func (l *rangeList) add(iv geom.Interval, sub *model.Subscription) {
	l.tree.Add(iv, len(l.subs))
	l.subs = append(l.subs, sub)
}

// NewEventIndex returns an empty index.
func NewEventIndex() *EventIndex {
	return &EventIndex{
		bySensor: map[model.SensorID]*rangeList{},
		byAttr:   map[model.AttributeType]*rangeList{},
	}
}

// Add registers a subscription (or correlation operator) for event
// matching. The caller is responsible for not adding the same subscription
// twice.
func (x *EventIndex) Add(sub *model.Subscription) {
	if sub == nil {
		return
	}
	if sub.Kind == model.KindIdentified {
		for d, f := range sub.SensorFilters {
			l := x.bySensor[d]
			if l == nil {
				l = &rangeList{}
				x.bySensor[d] = l
			}
			l.add(f.Range, sub)
		}
	} else {
		for a, f := range sub.AttrFilters {
			l := x.byAttr[a]
			if l == nil {
				l = &rangeList{}
				x.byAttr[a] = l
			}
			l.add(f.Range, sub)
		}
	}
	x.size++
}

// Len returns the number of subscriptions added to the index.
func (x *EventIndex) Len() int { return x.size }

// Candidates invokes fn with every stored subscription that matches the
// simple event (Subscription.MatchesEvent holds for each candidate, and no
// matching subscription is missed). Iteration stops early when fn returns
// false; the candidate order is unspecified.
func (x *EventIndex) Candidates(ev model.Event, fn func(*model.Subscription) bool) {
	stopped := false
	if l := x.bySensor[ev.Sensor]; l != nil {
		l.tree.Stab(ev.Value, func(h int) bool {
			if !fn(l.subs[h]) {
				stopped = true
				return false
			}
			return true
		})
	}
	if stopped {
		return
	}
	if l := x.byAttr[ev.Attr]; l != nil {
		l.tree.Stab(ev.Value, func(h int) bool {
			s := l.subs[h]
			if !s.Region.Contains(ev.Location) {
				return true
			}
			return fn(s)
		})
	}
}
