package stores

import (
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
)

// EventIndex is the indexed event-matching fast path: it stores
// subscriptions (correlation operators) so that, for an incoming simple
// event, the candidate operators — exactly those for which
// Subscription.MatchesEvent would return true — are found by range-pruned
// index lookups instead of a linear scan over every operator filtering the
// event's attribute.
//
// Internally the index keeps one interval stabbing tree (geom.IntervalTree)
// per filtered sensor (identified subscriptions) and per filtered attribute
// type (abstract subscriptions), over the filters' value ranges. A candidate
// lookup for event e stabs bySensor[e.Sensor] and byAttr[e.Attr] with
// e.Value; abstract hits are additionally pruned by the subscription
// region's containment of e.Location. The result set is therefore exactly
// {s : s.MatchesEvent(e)} — verified against the linear scan by the
// property tests — so callers can feed candidates straight into
// FindComplexMatch.
//
// A subscription appears at most once per lookup: identified subscriptions
// have one filter per sensor and abstract ones one filter per attribute, so
// no per-query deduplication is needed.
//
// Removal (subscription churn) is tombstone-based: Remove marks the ID dead
// and Candidates skips it; the interval trees are rebuilt from the live
// members once tombstones outnumber them, so steady-state churn keeps both
// lookup cost and memory bounded without paying a rebuild per retraction.
//
// Like the other stores, an EventIndex is not safe for concurrent use; each
// protocol handler owns its indexes and the engines guarantee per-node
// sequential execution.
type EventIndex struct {
	bySensor map[model.SensorID]*rangeList
	byAttr   map[model.AttributeType]*rangeList
	// members holds the live subscriptions by ID; removed holds the
	// tombstoned IDs whose tree entries are still physically present.
	members map[model.SubscriptionID]*model.Subscription
	removed map[model.SubscriptionID]bool
}

// rangeList pairs an interval tree with the subscriptions its handles refer
// to: handle i is an index into subs.
type rangeList struct {
	tree geom.IntervalTree
	subs []*model.Subscription
}

func (l *rangeList) add(iv geom.Interval, sub *model.Subscription) {
	l.tree.Add(iv, len(l.subs))
	l.subs = append(l.subs, sub)
}

// NewEventIndex returns an empty index.
func NewEventIndex() *EventIndex {
	return &EventIndex{
		bySensor: map[model.SensorID]*rangeList{},
		byAttr:   map[model.AttributeType]*rangeList{},
		members:  map[model.SubscriptionID]*model.Subscription{},
		removed:  map[model.SubscriptionID]bool{},
	}
}

// Add registers a subscription (or correlation operator) for event matching.
// Adding an ID already present is a no-op, so callers retracting and
// re-registering subscriptions need no extra bookkeeping.
func (x *EventIndex) Add(sub *model.Subscription) {
	if sub == nil {
		return
	}
	if _, live := x.members[sub.ID]; live {
		return
	}
	if x.removed[sub.ID] {
		// The trees still hold stale entries for this ID; purge them first
		// so the fresh registration is not shadowed by (or duplicated with)
		// the tombstoned one.
		x.rebuild()
	}
	x.members[sub.ID] = sub
	x.addToTrees(sub)
}

// addToTrees inserts the subscription's filter ranges into the stabbing
// trees.
func (x *EventIndex) addToTrees(sub *model.Subscription) {
	if sub.Kind == model.KindIdentified {
		for d, f := range sub.SensorFilters {
			l := x.bySensor[d]
			if l == nil {
				l = &rangeList{}
				x.bySensor[d] = l
			}
			l.add(f.Range, sub)
		}
	} else {
		for a, f := range sub.AttrFilters {
			l := x.byAttr[a]
			if l == nil {
				l = &rangeList{}
				x.byAttr[a] = l
			}
			l.add(f.Range, sub)
		}
	}
}

// Remove retracts a subscription from the index by ID. It returns false when
// the ID is not (or no longer) indexed. The tree entries are tombstoned, not
// excised; once tombstones outnumber live members the trees are rebuilt from
// the live set, keeping churned indexes compact.
func (x *EventIndex) Remove(id model.SubscriptionID) bool {
	if _, live := x.members[id]; !live {
		return false
	}
	delete(x.members, id)
	x.removed[id] = true
	if len(x.removed) > len(x.members) && len(x.removed) >= 16 {
		x.rebuild()
	}
	return true
}

// rebuild reconstructs the stabbing trees from the live members, discarding
// every tombstone.
func (x *EventIndex) rebuild() {
	x.bySensor = map[model.SensorID]*rangeList{}
	x.byAttr = map[model.AttributeType]*rangeList{}
	x.removed = map[model.SubscriptionID]bool{}
	for _, sub := range x.members {
		x.addToTrees(sub)
	}
}

// Len returns the number of live subscriptions in the index.
func (x *EventIndex) Len() int { return len(x.members) }

// Candidates invokes fn with every stored subscription that matches the
// simple event (Subscription.MatchesEvent holds for each candidate, and no
// matching subscription is missed). Iteration stops early when fn returns
// false; the candidate order is unspecified.
func (x *EventIndex) Candidates(ev model.Event, fn func(*model.Subscription) bool) {
	stopped := false
	if l := x.bySensor[ev.Sensor]; l != nil {
		l.tree.Stab(ev.Value, func(h int) bool {
			s := l.subs[h]
			if len(x.removed) > 0 && x.removed[s.ID] {
				return true
			}
			if !fn(s) {
				stopped = true
				return false
			}
			return true
		})
	}
	if stopped {
		return
	}
	if l := x.byAttr[ev.Attr]; l != nil {
		l.tree.Stab(ev.Value, func(h int) bool {
			s := l.subs[h]
			if len(x.removed) > 0 && x.removed[s.ID] {
				return true
			}
			if !s.Region.Contains(ev.Location) {
				return true
			}
			return fn(s)
		})
	}
}
