// Package stores contains the node-local data structures of Figure 2 in the
// paper: the per-neighbour advertisement tables (DSA_m), the per-neighbour
// subscription tables (S_m, split into covered and uncovered sets, with
// cover links recording which uncovered subscription subsumed each covered
// one) and the timestamp-ordered event store U with per-destination
// "already forwarded" flags used by the event-propagation algorithm
// (Algorithm 5), plus the range indexes that keep matching sublinear as the
// stored populations grow: EventIndex — a composite multi-attribute match
// index built on geom.BoxTree that stabs every filter dimension (value
// range × spatial region) at once, maintains itself incrementally under
// subscribe/unsubscribe churn, and prunes covered subscriptions behind
// their cover — and the geom.PointGrid location grids of the advertisement
// table.
//
// The structures are not safe for concurrent use; each protocol handler owns
// one set of them and the engines guarantee per-node sequential execution.
package stores

import (
	"cmp"
	"slices"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// AdvertisementTable stores the data-source advertisements received from
// each neighbour (and from locally attached sensors, filed under the node's
// own ID). The advertised locations are additionally indexed in uniform
// grids — per (origin, attribute) and globally per attribute — so that the
// spatial projections of abstract subscriptions (Project, HasAllSources,
// OriginsMatching) query only the advertisements near the subscription's
// region instead of scanning every advertisement.
type AdvertisementTable struct {
	self     topology.NodeID
	byOrigin map[topology.NodeID]map[model.SensorID]model.Advertisement
	// attrLoc indexes, per origin and attribute type, the advertised sensor
	// locations.
	attrLoc map[topology.NodeID]map[model.AttributeType]*advGrid
	// allAttrLoc indexes the advertised locations per attribute type across
	// every origin (used by HasAllSources).
	allAttrLoc map[model.AttributeType]*advGrid

	// sensorScratch/attrScratch back Project's per-call key collections. The
	// projection methods copy what they keep (building their own kept maps)
	// and never retain the slice, so one table-owned buffer serves every
	// call — the advertisement walk of the split-and-forward phase stops
	// allocating per (subscription, neighbour) pair. Safe like the other
	// stores: one table per node, per-node sequential execution.
	sensorScratch []model.SensorID
	attrScratch   []model.AttributeType
}

// advGrid is a location grid over advertised sensor positions. The spatial
// projections only ask existence questions ("is any advertised location of
// this attribute inside the region?"), so the grid stores positions alone;
// the advertisements themselves stay in byOrigin.
type advGrid struct {
	grid geom.PointGrid
}

func (g *advGrid) add(adv model.Advertisement) {
	g.grid.Add(adv.Location, g.grid.Len())
}

// anyInRegion reports whether at least one advertised location lies inside
// the region.
func (g *advGrid) anyInRegion(r geom.Region) bool {
	if g == nil {
		return false
	}
	found := false
	g.grid.Query(r, func(int) bool {
		found = true
		return false
	})
	return found
}

// NewAdvertisementTable returns an empty table for the given node.
func NewAdvertisementTable(self topology.NodeID) *AdvertisementTable {
	return &AdvertisementTable{
		self:       self,
		byOrigin:   map[topology.NodeID]map[model.SensorID]model.Advertisement{},
		attrLoc:    map[topology.NodeID]map[model.AttributeType]*advGrid{},
		allAttrLoc: map[model.AttributeType]*advGrid{},
	}
}

// Add records an advertisement received from origin (use the node's own ID
// for local sensors). It returns false when the same sensor was already
// advertised by that origin, which callers use to stop re-flooding.
func (t *AdvertisementTable) Add(origin topology.NodeID, adv model.Advertisement) bool {
	m := t.byOrigin[origin]
	if m == nil {
		m = map[model.SensorID]model.Advertisement{}
		t.byOrigin[origin] = m
	}
	if _, dup := m[adv.Sensor]; dup {
		return false
	}
	m[adv.Sensor] = adv

	grids := t.attrLoc[origin]
	if grids == nil {
		grids = map[model.AttributeType]*advGrid{}
		t.attrLoc[origin] = grids
	}
	g := grids[adv.Attr]
	if g == nil {
		g = &advGrid{}
		grids[adv.Attr] = g
	}
	g.add(adv)

	ag := t.allAttrLoc[adv.Attr]
	if ag == nil {
		ag = &advGrid{}
		t.allAttrLoc[adv.Attr] = ag
	}
	ag.add(adv)
	return true
}

// Known reports whether the sensor was advertised by any origin.
func (t *AdvertisementTable) Known(sensor model.SensorID) bool {
	for _, m := range t.byOrigin {
		if _, ok := m[sensor]; ok {
			return true
		}
	}
	return false
}

// Origins returns the origins with at least one advertisement, sorted.
func (t *AdvertisementTable) Origins() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(t.byOrigin))
	for o := range t.byOrigin {
		out = append(out, o)
	}
	slices.Sort(out)
	return out
}

// From returns the advertisements received from the given origin, sorted by
// sensor ID.
func (t *AdvertisementTable) From(origin topology.NodeID) []model.Advertisement {
	m := t.byOrigin[origin]
	out := make([]model.Advertisement, 0, len(m))
	for _, adv := range m {
		out = append(out, adv)
	}
	slices.SortFunc(out, func(a, b model.Advertisement) int { return cmp.Compare(a.Sensor, b.Sensor) })
	return out
}

// Count returns the total number of stored advertisements.
func (t *AdvertisementTable) Count() int {
	total := 0
	for _, m := range t.byOrigin {
		total += len(m)
	}
	return total
}

// Project returns the correlation operator obtained by projecting sub onto
// the data space advertised by origin (Algorithm 3, line 8): the sensors of
// sub advertised by that origin for identified subscriptions, or the
// attribute types advertised by that origin within sub's region for abstract
// subscriptions. It returns nil when the projection is empty.
func (t *AdvertisementTable) Project(sub *model.Subscription, origin topology.NodeID) *model.Subscription {
	m := t.byOrigin[origin]
	if len(m) == 0 {
		return nil
	}
	if sub.Kind == model.KindIdentified {
		sensors := t.sensorScratch[:0]
		for d := range sub.SensorFilters {
			if _, ok := m[d]; ok {
				sensors = append(sensors, d)
			}
		}
		t.sensorScratch = sensors[:0]
		if len(sensors) == 0 {
			return nil
		}
		return sub.ProjectSensors(sensors)
	}
	grids := t.attrLoc[origin]
	attrs := t.attrScratch[:0]
	for a := range sub.AttrFilters {
		if grids[a].anyInRegion(sub.Region) {
			attrs = append(attrs, a)
		}
	}
	t.attrScratch = attrs[:0]
	if len(attrs) == 0 {
		return nil
	}
	return sub.ProjectAttributes(attrs)
}

// HasAllSources reports whether every filter of the subscription has at
// least one matching advertisement (from any origin). Subscriptions without
// sources are dropped at their originating node (Algorithm 3, line 3).
func (t *AdvertisementTable) HasAllSources(sub *model.Subscription) bool {
	if sub.Kind == model.KindIdentified {
		for d := range sub.SensorFilters {
			if !t.Known(d) {
				return false
			}
		}
		return true
	}
	for a := range sub.AttrFilters {
		if !t.allAttrLoc[a].anyInRegion(sub.Region) {
			return false
		}
	}
	return true
}

// OriginsMatching returns the origins (excluding the given one) whose
// advertised data space overlaps the subscription, i.e. the neighbours the
// subscription must be forwarded to. The result is sorted.
func (t *AdvertisementTable) OriginsMatching(sub *model.Subscription, exclude topology.NodeID) []topology.NodeID {
	var out []topology.NodeID
	for origin := range t.byOrigin {
		if origin == exclude || origin == t.self {
			continue
		}
		if t.Project(sub, origin) != nil {
			out = append(out, origin)
		}
	}
	slices.Sort(out)
	return out
}
