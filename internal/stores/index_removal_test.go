package stores

import (
	"testing"

	"sensorcq/internal/model"
	"sensorcq/internal/stats"
	"sensorcq/internal/topology"
)

// TestEventIndexRemovalMatchesLinearScan extends the central property test
// of the fast path to churn: after interleaved Adds and Removes (crossing
// the tombstone-rebuild threshold), the candidate set must still equal the
// brute-force match over the live population, and re-adding a removed ID
// must behave like a fresh registration.
func TestEventIndexRemovalMatchesLinearScan(t *testing.T) {
	rng := stats.NewRNG(777)
	for trial := 0; trial < 15; trial++ {
		n := 40 + int(rng.Uint64()%120)
		idx := NewEventIndex()
		subs := make([]*model.Subscription, 0, n)
		for i := 0; i < n; i++ {
			sub := randomSubscription(t, rng, trial*1000+i)
			subs = append(subs, sub)
			idx.Add(sub)
		}
		// Remove a random ~2/3 of the population — enough to trip the
		// rebuild threshold repeatedly.
		live := make([]*model.Subscription, 0, n)
		for _, sub := range subs {
			if rng.Bool(0.66) {
				if !idx.Remove(sub.ID) {
					t.Fatalf("Remove(%s) = false for a live member", sub.ID)
				}
				if idx.Remove(sub.ID) {
					t.Fatalf("second Remove(%s) = true", sub.ID)
				}
			} else {
				live = append(live, sub)
			}
		}
		if idx.Len() != len(live) {
			t.Fatalf("Len() = %d, want %d live members", idx.Len(), len(live))
		}
		for q := 0; q < 60; q++ {
			ev := randomEvent(rng, uint64(q+1))
			got := candidateIDs(idx, ev)
			want := linearMatchIDs(live, ev)
			if !equalStrings(got, want) {
				t.Fatalf("trial %d after churn: candidates(%v) = %v, want %v", trial, ev, got, want)
			}
		}
		// Drop the remaining live members, then re-register a handful of the
		// removed subscriptions: they must match again, exactly once.
		removed := make([]*model.Subscription, 0, n)
		for _, sub := range subs {
			if !idx.Remove(sub.ID) {
				removed = append(removed, sub)
			}
		}
		if idx.Len() != 0 {
			t.Fatalf("Len() = %d, want 0 after removing everything", idx.Len())
		}
		if len(removed) > 10 {
			removed = removed[:10]
		}
		for _, sub := range removed {
			idx.Add(sub)
		}
		live = removed
		for q := 0; q < 40; q++ {
			ev := randomEvent(rng, uint64(q+1000))
			got := candidateIDs(idx, ev)
			want := linearMatchIDs(live, ev)
			if !equalStrings(got, want) {
				t.Fatalf("trial %d after re-add: candidates(%v) = %v, want %v", trial, ev, got, want)
			}
		}
	}
}

// TestEventIndexDoubleAddIsNoop pins the idempotence contract Add gained
// with removal support.
func TestEventIndexDoubleAddIsNoop(t *testing.T) {
	rng := stats.NewRNG(9)
	sub := randomSubscription(t, rng, 1)
	idx := NewEventIndex()
	idx.Add(sub)
	idx.Add(sub)
	if idx.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 after double Add", idx.Len())
	}
	for q := 0; q < 200; q++ {
		ev := randomEvent(rng, uint64(q+1))
		if !sub.MatchesEvent(ev) {
			continue
		}
		if got := len(candidateIDs(idx, ev)); got != 1 {
			t.Fatalf("matching event yielded %d candidates, want 1", got)
		}
		return
	}
}

// TestSubscriptionTableRemovePromote covers the churn surface of the
// subscription table: removal from covered and uncovered sets, Seen
// clearing, promotion of covered entries into the uncovered set, and the
// match index staying consistent throughout.
func TestSubscriptionTableRemovePromote(t *testing.T) {
	rng := stats.NewRNG(31)
	tbl := NewSubscriptionTable(0)
	origin := topology.NodeID(3)
	a := randomSubscription(t, rng, 1)
	b := randomSubscription(t, rng, 2)
	c := randomSubscription(t, rng, 3)
	tbl.AddUncovered(origin, a)
	tbl.AddUncovered(origin, b)
	tbl.AddCovered(origin, c)

	if _, _, ok := tbl.Remove(origin, "nope"); ok {
		t.Error("removing an unknown ID should report !ok")
	}
	sub, wasUncovered, ok := tbl.Remove(origin, a.ID)
	if !ok || !wasUncovered || sub != a {
		t.Fatalf("Remove(uncovered) = (%v, %v, %v)", sub, wasUncovered, ok)
	}
	if tbl.Seen(origin, a.ID) {
		t.Error("removed ID must not stay Seen")
	}
	if tbl.CountUncovered() != 1 {
		t.Errorf("uncovered count = %d, want 1", tbl.CountUncovered())
	}
	// The match index (built lazily by EventCandidates) must track the
	// mutations.
	probe := func() int {
		count := 0
		for q := 0; q < 400; q++ {
			ev := randomEvent(rng, uint64(q+1))
			tbl.EventCandidates(origin, ev, func(*model.Subscription) bool {
				count++
				return true
			})
		}
		return count
	}
	withB := probe()

	if got := tbl.Promote(origin, c.ID); got != c {
		t.Fatalf("Promote(covered) = %v, want %v", got, c)
	}
	if tbl.Promote(origin, c.ID) != nil {
		t.Error("second Promote should find nothing")
	}
	if tbl.CountCovered() != 0 || tbl.CountUncovered() != 2 {
		t.Errorf("after promote: covered=%d uncovered=%d, want 0/2", tbl.CountCovered(), tbl.CountUncovered())
	}
	if !tbl.Seen(origin, c.ID) {
		t.Error("promoted ID must stay Seen")
	}

	sub, wasUncovered, ok = tbl.Remove(origin, c.ID)
	if !ok || !wasUncovered || sub != c {
		t.Fatalf("Remove(promoted) = (%v, %v, %v)", sub, wasUncovered, ok)
	}
	if got := probe(); got > withB {
		// c was promoted into the index and removed again: candidates must
		// be back to b's alone (the probe uses fresh random events, so
		// compare loosely via the b-only baseline with the same RNG stream
		// being different; instead assert exact emptiness after removing b).
		t.Logf("probe after c removal = %d (b-only baseline %d)", got, withB)
	}
	if _, _, ok := tbl.Remove(origin, b.ID); !ok {
		t.Fatal("removing b should succeed")
	}
	if got := probe(); got != 0 {
		t.Errorf("empty table still yields %d candidates", got)
	}
	if len(tbl.Origins()) != 0 {
		t.Errorf("origins = %v, want none", tbl.Origins())
	}
}
