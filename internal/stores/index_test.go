package stores

import (
	"fmt"
	"sort"
	"testing"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/stats"
)

// randomSubscription builds a random identified or abstract subscription
// with 1-3 filters, sometimes degenerate (point ranges, touching
// endpoints) and sometimes spatially constrained.
func randomSubscription(t *testing.T, rng *stats.RNG, id int) *model.Subscription {
	t.Helper()
	attrs := model.DefaultAttributes()
	nf := 1 + rng.Intn(3)
	subID := model.SubscriptionID(fmt.Sprintf("s%d", id))
	if rng.Bool(0.5) {
		picked := rng.Choose(6, nf)
		filters := make([]model.SensorFilter, 0, nf)
		for _, s := range picked {
			filters = append(filters, model.SensorFilter{
				Sensor: model.SensorID(fmt.Sprintf("d%d", s)),
				Attr:   attrs[s%len(attrs)],
				Range:  randomRange(rng),
			})
		}
		sub, err := model.NewIdentifiedSubscription(subID, filters, 30)
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	picked := rng.Choose(len(attrs), nf)
	filters := make([]model.AttributeFilter, 0, nf)
	for _, a := range picked {
		filters = append(filters, model.AttributeFilter{Attr: attrs[a], Range: randomRange(rng)})
	}
	region := geom.WholePlane()
	if rng.Bool(0.6) {
		region = geom.RegionAround(geom.Point2D{X: rng.Range(-50, 50), Y: rng.Range(-50, 50)}, rng.Range(0, 60))
	}
	sub, err := model.NewAbstractSubscription(subID, filters, region, 30, model.NoSpatialConstraint)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func randomRange(rng *stats.RNG) geom.Interval {
	lo := rng.Range(-100, 100)
	switch rng.Intn(4) {
	case 0: // point range
		return geom.Point(lo)
	default:
		return geom.NewInterval(lo, lo+rng.Range(0, 40))
	}
}

func randomEvent(rng *stats.RNG, seq uint64) model.Event {
	attrs := model.DefaultAttributes()
	s := rng.Intn(6)
	return model.Event{
		Seq:      seq,
		Sensor:   model.SensorID(fmt.Sprintf("d%d", s)),
		Attr:     attrs[s%len(attrs)],
		Location: geom.Point2D{X: rng.Range(-80, 80), Y: rng.Range(-80, 80)},
		Value:    rng.Range(-120, 120),
		Time:     model.Timestamp(seq),
	}
}

func candidateIDs(idx *EventIndex, ev model.Event) []string {
	var out []string
	idx.Candidates(ev, func(s *model.Subscription) bool {
		out = append(out, string(s.ID))
		return true
	})
	sort.Strings(out)
	return out
}

func linearMatchIDs(subs []*model.Subscription, ev model.Event) []string {
	var out []string
	for _, s := range subs {
		if s.MatchesEvent(ev) {
			out = append(out, string(s.ID))
		}
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEventIndexMatchesLinearScan is the central property test of the fast
// path: for random subscription populations and random events, the indexed
// candidate set equals {s : s.MatchesEvent(e)} computed by brute force.
func TestEventIndexMatchesLinearScan(t *testing.T) {
	rng := stats.NewRNG(2026)
	for trial := 0; trial < 25; trial++ {
		n := 1 + int(rng.Uint64()%150)
		idx := NewEventIndex()
		subs := make([]*model.Subscription, 0, n)
		for i := 0; i < n; i++ {
			sub := randomSubscription(t, rng, trial*1000+i)
			subs = append(subs, sub)
			idx.Add(sub)
		}
		if idx.Len() != n {
			t.Fatalf("Len() = %d, want %d", idx.Len(), n)
		}
		for q := 0; q < 80; q++ {
			ev := randomEvent(rng, uint64(q+1))
			got := candidateIDs(idx, ev)
			want := linearMatchIDs(subs, ev)
			if !equalStrings(got, want) {
				t.Fatalf("trial %d: candidates(%v) = %v, want %v", trial, ev, got, want)
			}
		}
	}
}

// TestEventIndexEndpointEvents stabs the index exactly at filter-range
// endpoints — the closed-interval semantics must report the subscription.
func TestEventIndexEndpointEvents(t *testing.T) {
	sub, err := model.NewAbstractSubscription("edge",
		[]model.AttributeFilter{{Attr: model.WindSpeed, Range: geom.NewInterval(10, 20)}},
		geom.WholePlane(), 30, model.NoSpatialConstraint)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewEventIndex()
	idx.Add(sub)
	for _, v := range []float64{10, 20} {
		ev := model.Event{Seq: 1, Sensor: "dx", Attr: model.WindSpeed, Value: v}
		if got := candidateIDs(idx, ev); len(got) != 1 {
			t.Errorf("value %g on range endpoint: %d candidates, want 1", v, len(got))
		}
	}
	for _, v := range []float64{9.999, 20.001} {
		ev := model.Event{Seq: 1, Sensor: "dx", Attr: model.WindSpeed, Value: v}
		if got := candidateIDs(idx, ev); len(got) != 0 {
			t.Errorf("value %g outside range: %d candidates, want 0", v, len(got))
		}
	}
}

// TestEventIndexRegionPruning checks that abstract candidates are pruned by
// the subscription region.
func TestEventIndexRegionPruning(t *testing.T) {
	sub, err := model.NewAbstractSubscription("near",
		[]model.AttributeFilter{{Attr: model.RelativeHumidity, Range: geom.NewInterval(0, 100)}},
		geom.NewRegion(0, 0, 10, 10), 30, model.NoSpatialConstraint)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewEventIndex()
	idx.Add(sub)
	inside := model.Event{Seq: 1, Sensor: "dx", Attr: model.RelativeHumidity, Value: 50, Location: geom.Point2D{X: 5, Y: 5}}
	outside := model.Event{Seq: 2, Sensor: "dx", Attr: model.RelativeHumidity, Value: 50, Location: geom.Point2D{X: 50, Y: 5}}
	if got := candidateIDs(idx, inside); len(got) != 1 {
		t.Errorf("event inside region: %d candidates, want 1", len(got))
	}
	if got := candidateIDs(idx, outside); len(got) != 0 {
		t.Errorf("event outside region: %d candidates, want 0", len(got))
	}
}

// TestEventIndexEarlyStop checks that a false return from fn stops
// candidate iteration.
func TestEventIndexEarlyStop(t *testing.T) {
	idx := NewEventIndex()
	for i := 0; i < 8; i++ {
		sub, err := model.NewAbstractSubscription(model.SubscriptionID(fmt.Sprintf("s%d", i)),
			[]model.AttributeFilter{{Attr: model.WindSpeed, Range: geom.NewInterval(0, 100)}},
			geom.WholePlane(), 30, model.NoSpatialConstraint)
		if err != nil {
			t.Fatal(err)
		}
		idx.Add(sub)
	}
	calls := 0
	idx.Candidates(model.Event{Seq: 1, Sensor: "dx", Attr: model.WindSpeed, Value: 5}, func(*model.Subscription) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop visited %d candidates, want 1", calls)
	}
}

// TestSubscriptionTableEventCandidates checks the table-level wiring: only
// uncovered subscriptions of the right origin are candidates.
func TestSubscriptionTableEventCandidates(t *testing.T) {
	tbl := NewSubscriptionTable(0)
	mk := func(id string, lo, hi float64) *model.Subscription {
		sub, err := model.NewAbstractSubscription(model.SubscriptionID(id),
			[]model.AttributeFilter{{Attr: model.WindSpeed, Range: geom.NewInterval(lo, hi)}},
			geom.WholePlane(), 30, model.NoSpatialConstraint)
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	tbl.AddUncovered(1, mk("u1", 0, 10))
	tbl.AddUncovered(1, mk("u2", 20, 30))
	tbl.AddUncovered(2, mk("other-origin", 0, 10))
	tbl.AddCovered(1, mk("c1", 0, 10))

	ev := model.Event{Seq: 1, Sensor: "dx", Attr: model.WindSpeed, Value: 5}
	var got []string
	tbl.EventCandidates(1, ev, func(s *model.Subscription) bool {
		got = append(got, string(s.ID))
		return true
	})
	if len(got) != 1 || got[0] != "u1" {
		t.Errorf("EventCandidates(origin 1) = %v, want [u1]", got)
	}
	var none []string
	tbl.EventCandidates(9, ev, func(s *model.Subscription) bool {
		none = append(none, string(s.ID))
		return true
	})
	if len(none) != 0 {
		t.Errorf("EventCandidates(unknown origin) = %v, want empty", none)
	}
}
