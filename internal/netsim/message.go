// Package netsim provides the message-passing substrate the five protocol
// implementations run on: an engine that hosts one protocol handler per
// processing node, delivers advertisements, subscriptions and events across
// the links of an acyclic topology, and accounts for every link traversal in
// the metrics the paper reports (subscription load and event/publication
// load).
//
// Two engines share the same Handler contract: a deterministic sequential
// engine used by the experiments and tests, and a concurrent engine that
// executes the nodes in parallel to demonstrate that the protocols only rely
// on local interactions (and to catch accidental shared-state assumptions).
//
// # The activation protocol of the concurrent engine
//
// The concurrent engine decouples execution from topology size: instead of
// one goroutine per node, a bounded pool of workers (default GOMAXPROCS)
// runs node *activations*. Every node owns a mailbox with an `active` flag;
// a push that lands in an empty, inactive mailbox flips the flag and hands
// the node to the work-stealing scheduler, which places it on the
// activating worker's local run deque (owners pop LIFO, idle workers steal
// FIFO from siblings). A worker that dequeues a node drains its mailbox in
// one burst through the node's handler; the flag is only cleared — under
// the mailbox lock — once the queue is seen empty again, so a node is on at
// most one deque and drained by at most one worker at a time. That is what
// preserves the sequential engine's per-node contract: a handler never runs
// concurrently with itself, only with other nodes' handlers.
//
// Because scheduling work is proportional to *active* nodes rather than
// topology size, a 10k-node network with a handful of busy subtrees costs a
// handful of deque operations per message — not 10k parked goroutines'
// worth of stacks and wakeups. See ConcurrentEngine and ROADMAP.md
// ("Work-stealing scheduler core") for the invariants in detail.
package netsim

import (
	"fmt"

	"sensorcq/internal/agg"
	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// MessageKind discriminates the kinds of data the system propagates
// (Section IV-B): advertisements, subscriptions (correlation operators),
// events, and the retraction companion of a subscription — the unsubscription
// that walks the reverse forwarding paths when a continuous query is
// deregistered.
type MessageKind int

const (
	// KindAdvertisement carries a data-source advertisement.
	KindAdvertisement MessageKind = iota
	// KindSubscription carries a subscription or correlation operator.
	KindSubscription
	// KindEvent carries one simple event (one data unit).
	KindEvent
	// KindUnsubscription retracts a previously forwarded subscription or
	// correlation operator, identified by its ID. It follows the recorded
	// forwarding links of the operator it retracts, releasing the per-link
	// routing state the subscription built up.
	KindUnsubscription
	// KindPartialAggregate carries one windowed partial aggregate up the
	// dissemination tree of an aggregate subscription (or, for the exact
	// ship-every-reading baseline, relays one raw matching reading hop by
	// hop). Its traffic is accounted separately from the event load.
	KindPartialAggregate
)

// String implements fmt.Stringer.
func (k MessageKind) String() string {
	switch k {
	case KindAdvertisement:
		return "advertisement"
	case KindSubscription:
		return "subscription"
	case KindEvent:
		return "event"
	case KindUnsubscription:
		return "unsubscription"
	case KindPartialAggregate:
		return "partial-aggregate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Message is one unit of traffic on a link.
type Message struct {
	Kind MessageKind
	Adv  model.Advertisement
	Sub  *model.Subscription
	Ev   model.Event
	// UnsubID identifies the subscription or operator a KindUnsubscription
	// message retracts.
	UnsubID model.SubscriptionID
	// Agg is the payload of a KindPartialAggregate message.
	Agg *PartialAggregate
	// Units is the number of accounting units this message contributes to
	// its kind's load metric. It defaults to 1; the centralized baseline
	// uses it when shipping an event across a multi-hop path in one logical
	// send (units = path length).
	Units int64
}

// PartialAggregate is the payload of a KindPartialAggregate message: one
// node's merged partial aggregate for one (subscription, window) pair, sent
// toward the subscriber when the network watermark closes the window. When
// Raw is set the message instead relays one matching raw reading hop by hop
// (the exact ship-every-reading baseline); Ev carries the reading and State
// is nil.
type PartialAggregate struct {
	SubID model.SubscriptionID
	// Window is the tumbling-window index the partial belongs to.
	Window int
	// EndRound is the last measurement round of the window.
	EndRound int
	// State is the mergeable partial aggregate (nil when Raw).
	State agg.State
	// Ev is the relayed raw reading (Raw baseline only).
	Ev model.Event
	// Raw marks a relayed raw reading instead of a merged partial.
	Raw bool
}

// AggregateResult is one finalised windowed aggregate handed to the user
// owning an aggregate subscription.
type AggregateResult struct {
	// Window is the tumbling-window index.
	Window int
	// StartRound and EndRound are the measurement rounds the window covers.
	StartRound int
	EndRound   int
	// Value is the aggregate answer for the window.
	Value float64
	// Count is the number of matching readings folded into the window.
	Count int64
}

// Delivery records a complex event handed to a local user (the owner of a
// subscription). Deliveries do not traverse links and therefore do not count
// as traffic; they feed the recall metric.
type Delivery struct {
	Node   topology.NodeID
	SubID  model.SubscriptionID
	Events model.ComplexEvent
	// Aggregate, when non-nil, marks a windowed aggregate delivery (Events
	// is empty: aggregate queries deliver one scalar per window, not the
	// matching readings).
	Aggregate *AggregateResult
	// Round is the replay round the complex event belongs to: the round of
	// its newest component (events are stamped with their injection round,
	// see model.Event.Round). In the quiescent and pipelined modes this
	// equals the round counter at delivery time — a complex event completes
	// when its last component arrives, and rounds drain in order — but
	// unlike a wall-clock stamp it is a pure function of the delivered
	// complex event, so windowed replays that overlap rounds in flight
	// attribute identical deliveries to identical rounds. The per-round
	// conformance oracle groups deliveries by it.
	Round int
}

// Publication pairs a sensor reading with the node where it enters the
// network. Trace replays hand slices of these to Runtime.PublishBatch.
type Publication struct {
	Node  topology.NodeID
	Event model.Event
}

// Handler is the per-node protocol logic. The engine guarantees that all
// calls for one node happen sequentially (never concurrently), so handlers
// keep plain, unlocked state.
//
// The from argument of the Handle* methods identifies the neighbouring node
// the data arrived from; local injections (a sensor attached to this node, a
// subscription registered by a local user, a reading published by a local
// sensor) are presented through the Local* methods instead.
type Handler interface {
	// Init is called exactly once, before any other method, with the
	// node's context. Handlers typically keep the context for sending.
	Init(ctx *Context)

	// LocalSensor announces a sensor attached to this node.
	LocalSensor(ctx *Context, sensor model.Sensor)
	// LocalSubscribe registers a subscription issued by a user at this node.
	LocalSubscribe(ctx *Context, sub *model.Subscription)
	// LocalUnsubscribe retracts a subscription previously registered by a
	// user at this node. The handler removes its local registration and
	// propagates the retraction along the paths the subscription's operators
	// were forwarded on; an unknown ID is a no-op.
	LocalUnsubscribe(ctx *Context, id model.SubscriptionID)
	// LocalPublish injects a reading produced by a sensor at this node.
	LocalPublish(ctx *Context, ev model.Event)

	// HandleAdvertisement processes an advertisement received from a
	// neighbour.
	HandleAdvertisement(ctx *Context, from topology.NodeID, adv model.Advertisement)
	// HandleSubscription processes a subscription/operator received from a
	// neighbour.
	HandleSubscription(ctx *Context, from topology.NodeID, sub *model.Subscription)
	// HandleUnsubscription processes the retraction of a subscription or
	// operator previously received from the same neighbour.
	HandleUnsubscription(ctx *Context, from topology.NodeID, id model.SubscriptionID)
	// HandleEvent processes a simple event received from a neighbour.
	HandleEvent(ctx *Context, from topology.NodeID, ev model.Event)
}

// AggregateHandler is the optional capability a protocol handler implements
// to participate in in-network aggregation: merging a child's windowed
// partial aggregate (or relaying the exact baseline's raw readings). The
// engines only route KindPartialAggregate messages to handlers implementing
// it; others drop them silently.
type AggregateHandler interface {
	HandlePartialAggregate(ctx *Context, from topology.NodeID, pa *PartialAggregate)
}

// WatermarkHandler is the optional capability a protocol handler implements
// to learn that the network watermark advanced: every round <= watermark is
// fully injected and drained, so every reading of those rounds has reached
// its per-window accumulators and any window ending at or before the
// watermark can close. The engines tick each node at most once per watermark
// value, and only when at least one aggregate subscription is registered.
type WatermarkHandler interface {
	HandleWatermark(ctx *Context, watermark int)
}

// HandlerFactory builds the handler for a given node. Protocol packages
// expose one of these; the engine calls it once per node.
type HandlerFactory func(node topology.NodeID) Handler
