package netsim

import (
	"fmt"
	"strings"
)

// DeliveryMode selects how a trace replay interleaves event injection with
// message propagation. It is the knob that decides whether the concurrent
// engine actually runs concurrently — and, for Windowed, how many rounds it
// may keep in flight at once.
type DeliveryMode int

const (
	// Quiescent drains the network to quiescence after every injected
	// event: event i+1 enters the network only after every message caused
	// by event i has been processed. This is the semantics the sequential
	// engine's experiments use and the baseline the conformance suite
	// compares everything against. On the concurrent engine it serializes
	// the replay (at most one event is in flight), so it is concurrent in
	// name only.
	Quiescent DeliveryMode = iota
	// Pipelined injects a whole round of events before draining, so every
	// message produced by the round is in flight at once and all per-node
	// goroutines of the concurrent engine work simultaneously. Delivery
	// interleaving within a round is unspecified; conformance is defined
	// per round instead: the traffic totals and the multiset of deliveries
	// of each round must equal the sequential quiescent run's.
	Pipelined
	// Windowed relaxes the round barrier of Pipelined: round r+1..r+Lag may
	// be injected while round r is still draining, so up to Lag+1 rounds of
	// messages overlap in flight. Round progress is tracked with per-node
	// low-watermarks (the highest round whose work a node has fully
	// processed) aggregated into a network watermark that retires rounds:
	// round r is injected only once the network watermark has reached
	// r-1-Lag. Deliveries are stamped with the round of their newest
	// component event, which is a pure function of the delivered complex
	// event and therefore identical across interleavings. Windowed with
	// Lag 0 degenerates to exactly Pipelined behaviour (inject one round,
	// drain, inject the next).
	Windowed
)

// String implements fmt.Stringer.
func (m DeliveryMode) String() string {
	switch m {
	case Quiescent:
		return "quiescent"
	case Pipelined:
		return "pipelined"
	case Windowed:
		return "windowed"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DeliveryModeNames returns the CLI spellings of every delivery mode, in
// definition order. CLIs use it to build usage and error messages that stay
// in sync with the engine.
func DeliveryModeNames() []string {
	return []string{Quiescent.String(), Pipelined.String(), Windowed.String()}
}

// ParseDeliveryMode maps the CLI spelling of a mode onto its value.
func ParseDeliveryMode(s string) (DeliveryMode, error) {
	switch s {
	case "quiescent", "":
		return Quiescent, nil
	case "pipelined":
		return Pipelined, nil
	case "windowed":
		return Windowed, nil
	default:
		return Quiescent, fmt.Errorf("netsim: unknown delivery mode %q (valid modes: %s)",
			s, strings.Join(DeliveryModeNames(), ", "))
	}
}

// MaxReplayLag bounds the cross-round pipelining of the Windowed mode. The
// concurrent engine's watermark tracker counts each active round's in-flight
// items in a fixed ring indexed by round number, so the number of rounds
// simultaneously in flight (Lag+1, plus the round being injected) must stay
// well below the ring size; 512 leaves a 2x margin and is far beyond any
// useful overlap (the benefit of additional lag flattens within single
// digits).
const MaxReplayLag = 512

// ReplayOptions parameterise Runtime.ReplayRounds.
type ReplayOptions struct {
	// Mode is the delivery semantics of the replay (default Quiescent).
	Mode DeliveryMode
	// Lag is the cross-round pipelining bound of the Windowed mode: round
	// r+1..r+Lag may be injected while round r is still draining. It must
	// be zero for the other modes and at most MaxReplayLag for Windowed.
	// Lag 0 under Windowed reproduces Pipelined behaviour exactly.
	Lag int
	// KeepOpen, valid only with the Windowed mode, leaves the replay
	// session open when ReplayRounds returns: the trailing rounds are NOT
	// drained, the watermark ledger stays live, and the next Windowed
	// ReplayRounds call continues the same session — its first round
	// overlaps the previous call's last rounds exactly as if the traces had
	// been replayed in one call. While a session is open, Subscribe,
	// Unsubscribe, AttachSensor and Publish join the in-flight stream
	// (stamped with the current round) instead of draining the network
	// first, and a replay in a non-Windowed mode is rejected. An explicit
	// Flush drains the network and closes the session. Per-range traffic
	// during an open session is available via Metrics.EventLoadForRounds;
	// a whole-run snapshot difference would not see round boundaries.
	KeepOpen bool
}

func (o ReplayOptions) validate() error {
	switch o.Mode {
	case Quiescent, Pipelined, Windowed:
	default:
		return fmt.Errorf("netsim: invalid delivery mode %v", o.Mode)
	}
	if o.Lag < 0 {
		return fmt.Errorf("netsim: negative replay lag %d", o.Lag)
	}
	if o.Lag > 0 && o.Mode != Windowed {
		return fmt.Errorf("netsim: replay lag %d requires the windowed delivery mode (got %v)", o.Lag, o.Mode)
	}
	if o.Lag > MaxReplayLag {
		return fmt.Errorf("netsim: replay lag %d exceeds the maximum of %d", o.Lag, MaxReplayLag)
	}
	if o.KeepOpen && o.Mode != Windowed {
		return fmt.Errorf("netsim: KeepOpen requires the windowed delivery mode (got %v)", o.Mode)
	}
	return nil
}

// RequiredValidityFactor returns the minimum event-window validity factor
// (validity = factor x max δt) a protocol node needs for the given replay
// semantics. Quiescent and Pipelined replays skew arrivals by less than one
// round interval, so the default factor of 2 suffices; a Windowed replay with
// lag L lets arrivals of rounds r..r+L interleave, so a node may see a
// round-r trigger after it already pruned against a round-(r+L) timestamp —
// retaining L+2 round intervals guarantees every partner within δt of a
// late trigger is still stored. A larger window never changes match sets
// (candidate partners are selected by the δt correlation predicate, not by
// storage), so runs with different factors remain conformant.
func RequiredValidityFactor(mode DeliveryMode, lag int) int {
	if mode == Windowed && lag > 0 {
		return lag + 2
	}
	return 2
}
