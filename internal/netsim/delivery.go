package netsim

import "fmt"

// DeliveryMode selects how a trace replay interleaves event injection with
// message propagation. It is the knob that decides whether the concurrent
// engine actually runs concurrently.
type DeliveryMode int

const (
	// Quiescent drains the network to quiescence after every injected
	// event: event i+1 enters the network only after every message caused
	// by event i has been processed. This is the semantics the sequential
	// engine's experiments use and the baseline the conformance suite
	// compares everything against. On the concurrent engine it serializes
	// the replay (at most one event is in flight), so it is concurrent in
	// name only.
	Quiescent DeliveryMode = iota
	// Pipelined injects a whole round of events before draining, so every
	// message produced by the round is in flight at once and all per-node
	// goroutines of the concurrent engine work simultaneously. Delivery
	// interleaving within a round is unspecified; conformance is defined
	// per round instead: the traffic totals and the multiset of deliveries
	// of each round must equal the sequential quiescent run's.
	Pipelined
)

// String implements fmt.Stringer.
func (m DeliveryMode) String() string {
	switch m {
	case Quiescent:
		return "quiescent"
	case Pipelined:
		return "pipelined"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseDeliveryMode maps the CLI spelling of a mode onto its value.
func ParseDeliveryMode(s string) (DeliveryMode, error) {
	switch s {
	case "quiescent", "":
		return Quiescent, nil
	case "pipelined":
		return Pipelined, nil
	default:
		return Quiescent, fmt.Errorf("netsim: unknown delivery mode %q (want quiescent or pipelined)", s)
	}
}

// ReplayOptions parameterise Runtime.ReplayRounds.
type ReplayOptions struct {
	// Mode is the delivery semantics of the replay (default Quiescent).
	Mode DeliveryMode
}

func (o ReplayOptions) validate() error {
	switch o.Mode {
	case Quiescent, Pipelined:
		return nil
	default:
		return fmt.Errorf("netsim: invalid delivery mode %v", o.Mode)
	}
}
