package netsim

import (
	"fmt"
	"sync"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// ConcurrentEngine runs one goroutine per processing node, modelling the
// fully distributed execution of the protocols: a node only ever touches its
// own state and talks to its neighbours by message passing. It implements
// the same Runtime interface as the sequential Engine, so the two are
// interchangeable; the experiments use the sequential engine for determinism
// and the tests cross-check that both produce identical traffic totals.
//
// Under Quiescent replay at most one event is in flight, so the goroutines
// take turns; Pipelined replay (ReplayRounds) keeps a whole round in flight
// and is where the engine actually runs concurrently.
type ConcurrentEngine struct {
	graph    *topology.Graph
	handlers []Handler
	ctxs     []*Context
	metrics  *Metrics
	workers  []*worker

	mu         sync.Mutex
	inflight   int
	idle       *sync.Cond
	closed     bool
	deliveries []Delivery
	round      int
}

var _ Runtime = (*ConcurrentEngine)(nil)

// worker is the per-node mailbox and goroutine.
type worker struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []queued
	closed bool
}

func newWorker() *worker {
	w := &worker{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *worker) push(item queued) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.queue = append(w.queue, item)
	w.cond.Signal()
	return true
}

// popAll blocks until the mailbox is non-empty (or closed) and then takes
// every queued item in one swap, leaving spare as the mailbox's next backing
// array. Draining in batches rather than item by item keeps the mailbox lock
// out of the pipelined hot path: under a full round in flight a node pays one
// lock round-trip per burst instead of one per message.
func (w *worker) popAll(spare []queued) ([]queued, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.queue) == 0 && !w.closed {
		w.cond.Wait()
	}
	if len(w.queue) == 0 {
		return nil, false
	}
	items := w.queue
	w.queue = spare[:0]
	return items, true
}

func (w *worker) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

// NewConcurrentEngine builds a concurrent engine over the given topology and
// starts one goroutine per node. Callers must Close it when done.
func NewConcurrentEngine(graph *topology.Graph, factory HandlerFactory) *ConcurrentEngine {
	e := &ConcurrentEngine{
		graph:    graph,
		handlers: make([]Handler, graph.NumNodes()),
		ctxs:     make([]*Context, graph.NumNodes()),
		metrics:  NewMetrics(),
		workers:  make([]*worker, graph.NumNodes()),
	}
	e.idle = sync.NewCond(&e.mu)
	for n := 0; n < graph.NumNodes(); n++ {
		id := topology.NodeID(n)
		e.handlers[n] = factory(id)
		e.ctxs[n] = &Context{self: id, graph: graph, metrics: e.metrics, out: e}
		e.workers[n] = newWorker()
		e.handlers[n].Init(e.ctxs[n])
	}
	for n := range e.workers {
		go e.runWorker(n)
	}
	return e
}

func (e *ConcurrentEngine) runWorker(n int) {
	h := e.handlers[n]
	ctx := e.ctxs[n]
	var spare []queued
	for {
		items, ok := e.workers[n].popAll(spare)
		if !ok {
			return
		}
		for i := range items {
			dispatch(h, ctx, items[i])
		}
		e.mu.Lock()
		e.inflight -= len(items)
		if e.inflight == 0 {
			e.idle.Broadcast()
		}
		e.mu.Unlock()
		// Zero the processed items (so queued subscriptions can be
		// collected) and hand the array back to the mailbox.
		for i := range items {
			items[i] = queued{}
		}
		spare = items
	}
}

func (e *ConcurrentEngine) submit(item queued) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("netsim: engine is closed")
	}
	e.inflight++
	e.mu.Unlock()
	if !e.workers[item.to].push(item) {
		e.mu.Lock()
		e.inflight--
		if e.inflight == 0 {
			e.idle.Broadcast()
		}
		e.mu.Unlock()
		return fmt.Errorf("netsim: node %d mailbox closed", item.to)
	}
	return nil
}

// enqueue implements sink (called from worker goroutines). A failed submit —
// only possible when a send races engine shutdown — is counted as a dropped
// message so lossy runs are detectable; the conformance suite asserts the
// counter stays zero.
func (e *ConcurrentEngine) enqueue(from, to topology.NodeID, msg Message) {
	if err := e.submit(queued{from: from, to: to, msg: msg}); err != nil {
		e.metrics.recordDrop()
	}
}

// deliver implements sink.
func (e *ConcurrentEngine) deliver(d Delivery) {
	e.mu.Lock()
	d.Round = e.round
	e.deliveries = append(e.deliveries, d)
	e.mu.Unlock()
	e.metrics.recordDelivery(d)
}

// advanceRound bumps the round counter deliveries are stamped with. Callers
// advance it only between rounds, when their own injections are the only
// possible source of new work, so a delivery is always stamped with the round
// of the event that caused it.
func (e *ConcurrentEngine) advanceRound() {
	e.mu.Lock()
	e.round++
	e.mu.Unlock()
}

func (e *ConcurrentEngine) validNode(n topology.NodeID) error {
	if n < 0 || int(n) >= len(e.handlers) {
		return fmt.Errorf("netsim: unknown node %d", n)
	}
	return nil
}

// Handler returns the protocol handler of a node (used by white-box tests,
// matching Engine.Handler). The caller must Flush first so no worker
// goroutine is concurrently touching the handler's state.
func (e *ConcurrentEngine) Handler(n topology.NodeID) Handler {
	if n < 0 || int(n) >= len(e.handlers) {
		return nil
	}
	return e.handlers[n]
}

// AttachSensor implements Runtime.
func (e *ConcurrentEngine) AttachSensor(node topology.NodeID, sensor model.Sensor) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	return e.submit(queued{to: node, from: node, injection: injectionSensor, sensor: sensor})
}

// Subscribe implements Runtime.
func (e *ConcurrentEngine) Subscribe(node topology.NodeID, sub *model.Subscription) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	return e.submit(queued{to: node, from: node, injection: injectionSubscribe, sub: sub})
}

// Publish implements Runtime.
func (e *ConcurrentEngine) Publish(node topology.NodeID, ev model.Event) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	return e.submit(queued{to: node, from: node, injection: injectionPublish, ev: ev})
}

// PublishBatch implements Runtime: one quiescent round, preserving the
// per-event replay semantics the conformance suite compares against the
// sequential engine.
func (e *ConcurrentEngine) PublishBatch(batch []Publication) error {
	return e.ReplayRounds([][]Publication{batch}, ReplayOptions{Mode: Quiescent})
}

// ReplayRounds implements Runtime. In Pipelined mode a whole round is
// submitted before the drain, so every node whose mailbox has work runs at
// the same time; the network is drained to quiescence between rounds, which
// is what makes the per-round conformance oracle well defined.
func (e *ConcurrentEngine) ReplayRounds(rounds [][]Publication, opts ReplayOptions) error {
	if err := opts.validate(); err != nil {
		return err
	}
	for _, round := range rounds {
		for _, p := range round {
			if err := e.validNode(p.Node); err != nil {
				return err
			}
		}
	}
	for _, round := range rounds {
		e.advanceRound()
		switch opts.Mode {
		case Quiescent:
			for _, p := range round {
				if err := e.submit(queued{to: p.Node, from: p.Node, injection: injectionPublish, ev: p.Event}); err != nil {
					return err
				}
				e.Flush()
			}
		case Pipelined:
			for _, p := range round {
				if err := e.submit(queued{to: p.Node, from: p.Node, injection: injectionPublish, ev: p.Event}); err != nil {
					return err
				}
			}
			e.Flush()
		}
	}
	return nil
}

// Flush implements Runtime: it blocks until every in-flight message (and
// every message transitively produced by it) has been processed.
func (e *ConcurrentEngine) Flush() {
	e.mu.Lock()
	for e.inflight > 0 {
		e.idle.Wait()
	}
	e.mu.Unlock()
}

// Metrics implements Runtime.
func (e *ConcurrentEngine) Metrics() *Metrics { return e.metrics }

// Deliveries implements Runtime.
func (e *ConcurrentEngine) Deliveries() []Delivery {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Delivery, len(e.deliveries))
	copy(out, e.deliveries)
	return out
}

// Close shuts the per-node goroutines down. The engine must be quiescent
// (Flush) before closing; messages submitted after Close are rejected and
// Close is idempotent.
func (e *ConcurrentEngine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	for _, w := range e.workers {
		w.close()
	}
}
