package netsim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// ConcurrentEngine models the fully distributed execution of the protocols:
// a node only ever touches its own state and talks to its neighbours by
// message passing. It implements the same Runtime interface as the
// sequential Engine, so the two are interchangeable; the experiments use the
// sequential engine for determinism and the tests cross-check that both
// produce identical traffic totals.
//
// Execution is decoupled from the topology size by a bounded work-stealing
// scheduler (see stealScheduler): every node keeps a private mailbox, but
// the scheduled unit is a node *activation* — a push that makes a mailbox
// non-empty enqueues the node onto a worker's local run deque, and a small
// pool of workers (default GOMAXPROCS) drains active nodes burst by burst,
// stealing from sibling deques when their own runs dry. Wakeups, watermark
// settlement and in-flight accounting therefore cost O(active nodes), not
// O(topology): a 10k-node simulation no longer pays 10k mostly-idle
// goroutines' worth of stack, scheduler churn and wakeup latency.
//
// Under Quiescent replay at most one event is in flight, so the activations
// take turns; Pipelined replay (ReplayRounds) keeps a whole round in flight;
// Windowed replay keeps up to Lag+1 rounds in flight, with per-node round
// ledgers aggregated into a network watermark that gates injection.
//
// The hot delivery path is lock-free with respect to the engine: traffic
// counters and deliveries go to per-node shards (see Metrics and
// deliveryShard), in-flight accounting is a single atomic, and the only
// per-message lock is the target node's mailbox mutex — which a worker
// drains in batches, one lock round-trip per burst.
type ConcurrentEngine struct {
	graph     *topology.Graph
	handlers  []Handler
	ctxs      []*Context
	metrics   *Metrics
	mailboxes []*mailbox

	// sched is the pooled work-stealing scheduler; nil in the legacy
	// goroutine-per-node mode (NewConcurrentEngineGoroutinePerNode), where
	// every mailbox has a dedicated goroutine instead.
	sched       *stealScheduler
	workerCount int
	// nodeWorker[n] is the scheduler worker currently (or most recently)
	// draining node n's mailbox. It is written by that worker right before
	// it dispatches n's burst and read only from inside that burst's
	// dispatches (the sink's enqueue runs on the same goroutine), so access
	// is race-free: the node handoff between workers is ordered by the
	// mailbox and deque mutexes.
	nodeWorker []int32

	// inflight counts queued-but-not-yet-dispatched items; Flush waits for
	// it to reach zero via idleCond.
	inflight atomic.Int64
	closed   atomic.Bool
	idleMu   sync.Mutex
	idleCond *sync.Cond

	// roundMu guards the round counter (cold path: once per round).
	roundMu sync.Mutex
	round   int

	// wmMu guards the windowed-replay injection frontier, the retired-round
	// cursor and the condition the injector waits on; workers broadcast
	// wmCond when a round's network-wide in-flight count drains to zero.
	// wmWatching keeps workers off that lock entirely outside windowed
	// replays.
	wmMu       sync.Mutex
	wmCond     *sync.Cond
	wmInjected int
	wmRetired  int
	wmWatching atomic.Bool
	// wmSessionOpen (guarded by wmMu) records that a KeepOpen windowed
	// replay returned with the session live: wmWatching is still set but no
	// ReplayRounds call is running. Flush closes such a session; while a
	// replay IS running, Flush must instead keep its retire frontier capped
	// at the injection frontier (the round being injected must not retire).
	wmSessionOpen bool

	// wmRing is the incremental watermark min-tracker: the network-wide
	// in-flight item count of round r lives in slot r % wmRingSize. submit
	// increments a round's slot before the item is enqueued and the worker
	// decrements it after dispatching the item, preserving the
	// child-before-parent accounting rule, so a slot reads zero only when no
	// item of the round exists or can ever exist again. Advancing the
	// watermark is then a scan of at most the active rounds' slots from
	// wmRetired+1 upward — O(lag), not O(nodes): the old implementation took
	// every mailbox lock and scanned every node's pending map on each
	// injector wake-up.
	wmRing [wmRingSize]atomic.Int64

	// delivShards is the per-node delivery log: a node's dispatches are
	// serialised by its activation (at most one worker drains a mailbox at
	// a time), so shard n never sees concurrent appends; Deliveries() merges
	// on read.
	delivShards []deliveryShard

	// observer, when set, is invoked for every recorded delivery on the
	// delivering worker's goroutine (push delivery). Loaded atomically so
	// installing it does not race the workers.
	observer atomic.Pointer[func(Delivery)]

	// aggTicks is set when an aggregate subscription registers; it gates all
	// watermark-tick work (see maybeTick) so replays without aggregate
	// queries pay one atomic load per round boundary. tickMu guards ticked,
	// the highest watermark already announced to the nodes.
	aggTicks atomic.Bool
	tickMu   sync.Mutex
	ticked   int
}

var _ Runtime = (*ConcurrentEngine)(nil)

// wmRingSize is the per-round in-flight counter ring of the watermark
// tracker. Slot reuse is safe because at most MaxReplayLag+2 rounds can be
// active at once (Flush re-syncs the retired cursor between replays and the
// windowed injection gate bounds the spread during one), so distinct active
// rounds never collide in the ring.
const wmRingSize = 1024

// deliveryShard is one node's slice of the delivery log, padded so that
// neighbouring shards do not false-share a cache line. bySub indexes the
// shard's log per subscription so DeliveriesFor merges only the target
// subscription's entries instead of rescanning every delivery.
type deliveryShard struct {
	mu    sync.Mutex
	log   []Delivery
	bySub map[model.SubscriptionID][]int
	_     [64]byte
}

// mailbox is one node's message queue. A node's handler only ever runs on a
// burst taken from its own mailbox, and the activation protocol guarantees
// at most one scheduler worker drains a mailbox at a time, so a handler
// never runs concurrently with itself — the invariant every conformance
// oracle rests on.
type mailbox struct {
	mu sync.Mutex
	// cond exists only in goroutine-per-node mode, where the node's
	// dedicated goroutine blocks on it; the pooled scheduler parks idle
	// workers centrally instead (stealScheduler.next).
	cond   *sync.Cond
	queue  []queued
	closed bool
	// active records that the node is scheduled: enqueued on some worker's
	// run deque, or currently being drained. push reports an activation only
	// on the empty→non-empty transition of an inactive mailbox, so a node
	// appears at most once across all deques and is drained by at most one
	// worker at a time.
	active bool
	// pending counts this node's not-yet-dispatched items per lineage
	// round; the node's low-watermark is derived from it (the round below
	// the lowest round with work still pending). Maintained under mu:
	// incremented by push, decremented in one batch after a worker
	// dispatches a burst.
	pending map[int]int
}

func newMailbox(perNode bool) *mailbox {
	m := &mailbox{pending: map[int]int{}}
	if perNode {
		m.cond = sync.NewCond(&m.mu)
	}
	return m
}

// push appends an item. In pooled mode it reports whether the caller must
// schedule the node's activation (the mailbox was empty and inactive); in
// per-node mode it signals the node's goroutine instead and never reports
// one.
func (m *mailbox) push(item queued) (activate, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, false
	}
	m.queue = append(m.queue, item)
	m.pending[item.round]++
	if m.cond != nil {
		m.cond.Signal()
		return false, true
	}
	if m.active {
		return false, true
	}
	m.active = true
	return true, true
}

// take removes every queued item in one swap without blocking, leaving spare
// as the mailbox's next backing array. Only the worker that dequeued the
// node's activation calls it. Draining in batches rather than item by item
// keeps the mailbox lock out of the pipelined hot path: under a full round
// in flight a node pays one lock round-trip per burst instead of one per
// message. The per-round pending counts are NOT released here — the items
// are still in flight until dispatched — the worker settles them after the
// burst via finish().
func (m *mailbox) take(spare []queued) []queued {
	m.mu.Lock()
	items := m.queue
	m.queue = spare[:0]
	m.mu.Unlock()
	return items
}

// finish settles a dispatched burst's pending counts and deactivates the
// node — or reports that the mailbox refilled during the burst (pushes land
// in the fresh backing while active stays set) and must be rescheduled. The
// emptiness re-check and the deactivation are atomic under mu, which closes
// the lost-wakeup race between a worker retiring a node and a concurrent
// push that still saw it active.
func (m *mailbox) finish(counts map[int]int) (reschedule bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.settleLocked(counts)
	if len(m.queue) > 0 {
		return true
	}
	m.active = false
	return false
}

// popAll is the goroutine-per-node drain: it blocks until the mailbox is
// non-empty (or closed) and then takes every queued item in one swap.
func (m *mailbox) popAll(spare []queued) ([]queued, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return nil, false
	}
	items := m.queue
	m.queue = spare[:0]
	return items, true
}

// settle releases a dispatched burst from the per-round pending counts — the
// per-node decomposition NodeWatermarks reports. The network watermark
// itself is tracked by the engine's global per-round slots (wmRing), which
// the worker decrements separately.
func (m *mailbox) settle(counts map[int]int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.settleLocked(counts)
}

func (m *mailbox) settleLocked(counts map[int]int) {
	for round, n := range counts {
		if left := m.pending[round] - n; left > 0 {
			m.pending[round] = left
		} else {
			delete(m.pending, round)
		}
	}
}

// lowWatermarkLocked returns this node's low-watermark bound: one less than
// the lowest round with pending work, or maxInt when the node is idle (an
// idle node places no bound — its watermark is whatever the injection
// frontier allows, which is how a node with no work in a round still
// advances). Callers must hold m.mu.
func (m *mailbox) lowWatermarkLocked() int {
	if len(m.pending) == 0 {
		return math.MaxInt
	}
	low := math.MaxInt
	for round := range m.pending {
		if round < low {
			low = round
		}
	}
	return low - 1
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	if m.cond != nil {
		m.cond.Broadcast()
	}
	m.mu.Unlock()
}

// runDeque is one scheduler worker's run queue of activated nodes. The owner
// pushes and pops at the tail (LIFO: the most recently activated node's
// messages are the ones still warm in cache); idle workers steal from the
// head (FIFO: the oldest activation is the fairest to migrate). A node
// appears at most once across all deques (mailbox.active), so total
// occupancy — and therefore every backing array — is bounded by the topology
// size: the buffer ratchets up to its high-water capacity during warm-up and
// is never reallocated in steady state, keeping activations off the heap.
type runDeque struct {
	mu   sync.Mutex
	head int
	buf  []int32
	// The padding keeps neighbouring deques off a shared cache line: every
	// worker hammers its own deque's lock once per activation.
	_ [64]byte
}

func (d *runDeque) push(n int32) {
	d.mu.Lock()
	d.buf = append(d.buf, n)
	d.mu.Unlock()
}

// pop takes from the tail (owner side).
func (d *runDeque) pop() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.buf) {
		d.buf, d.head = d.buf[:0], 0
		return 0, false
	}
	n := d.buf[len(d.buf)-1]
	d.buf = d.buf[:len(d.buf)-1]
	if d.head == len(d.buf) {
		d.buf, d.head = d.buf[:0], 0
	}
	return n, true
}

// stealHead takes from the head (thief side).
func (d *runDeque) stealHead() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.buf) {
		return 0, false
	}
	n := d.buf[d.head]
	d.head++
	if d.head == len(d.buf) {
		d.buf, d.head = d.buf[:0], 0
	}
	return n, true
}

// stealScheduler multiplexes node activations over a bounded worker pool:
// one run deque per worker plus a central parking lot for idle workers.
//
// The lost-wakeup race between a worker going idle and a concurrent
// activation is closed by ordering: a parking worker increments seekers
// under parkMu BEFORE its final scan of every deque, and an enqueuer pushes
// its node BEFORE loading seekers. The atomics are sequentially consistent,
// so if the enqueuer reads seekers == 0 the worker's final scan happens
// after the push and finds the node; if it reads > 0 the signal is delivered
// under parkMu, after the worker entered Wait (or harmlessly spuriously).
// In the steady state — every worker busy — an activation therefore costs
// one deque lock plus one atomic load, with the parking lot untouched.
type stealScheduler struct {
	deques   []runDeque
	parkMu   sync.Mutex
	parkCond *sync.Cond
	// seekers counts workers inside the acquire slow path (scanning under
	// parkMu or waiting on parkCond).
	seekers atomic.Int32
	closed  atomic.Bool
	// rr spreads external injections (which carry no worker affinity)
	// round-robin over the deques.
	rr atomic.Uint32
}

func newStealScheduler(workers int) *stealScheduler {
	s := &stealScheduler{deques: make([]runDeque, workers)}
	s.parkCond = sync.NewCond(&s.parkMu)
	return s
}

// enqueue schedules an activated node. prefer is the worker whose dispatch
// caused the activation — the sender's burst is still warm, so the child
// activation lands on its local deque without any shared-counter traffic;
// negative means no affinity (an external injection) and spreads round-robin.
func (s *stealScheduler) enqueue(prefer int, node int32) {
	if prefer < 0 {
		prefer = int(s.rr.Add(1)) % len(s.deques)
	}
	s.deques[prefer].push(node)
	if s.seekers.Load() > 0 {
		s.parkMu.Lock()
		s.parkCond.Signal()
		s.parkMu.Unlock()
	}
}

// scan is one full acquisition attempt: the worker's own deque first, then a
// steal sweep over the siblings starting at its right-hand neighbour.
func (s *stealScheduler) scan(w int) (int32, bool) {
	if n, ok := s.deques[w].pop(); ok {
		return n, true
	}
	for i := 1; i < len(s.deques); i++ {
		if n, ok := s.deques[(w+i)%len(s.deques)].stealHead(); ok {
			return n, true
		}
	}
	return 0, false
}

// next blocks until an activated node is available for worker w (returning
// it) or the scheduler is closed AND drained (returning false): remaining
// activations are still run after Close, matching the behaviour of the
// per-node goroutines, which empty their mailbox before exiting.
func (s *stealScheduler) next(w int) (int32, bool) {
	if n, ok := s.scan(w); ok {
		return n, true
	}
	s.parkMu.Lock()
	s.seekers.Add(1)
	for {
		if n, ok := s.scan(w); ok {
			s.seekers.Add(-1)
			s.parkMu.Unlock()
			return n, true
		}
		if s.closed.Load() {
			s.seekers.Add(-1)
			s.parkMu.Unlock()
			return 0, false
		}
		s.parkCond.Wait()
	}
}

func (s *stealScheduler) close() {
	s.closed.Store(true)
	s.parkMu.Lock()
	s.parkCond.Broadcast()
	s.parkMu.Unlock()
}

// NewConcurrentEngine builds a concurrent engine over the given topology,
// executed by the pooled work-stealing scheduler with GOMAXPROCS workers.
// Callers must Close it when done.
func NewConcurrentEngine(graph *topology.Graph, factory HandlerFactory) *ConcurrentEngine {
	return NewConcurrentEngineWorkers(graph, factory, 0)
}

// EffectiveWorkers resolves a requested scheduler pool size the way the
// engine does: non-positive selects GOMAXPROCS, and the pool is capped at
// the node count (more workers than nodes could never all be busy).
func EffectiveWorkers(workers, nodes int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nodes {
		workers = nodes
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// NewConcurrentEngineWorkers is NewConcurrentEngine with an explicit
// scheduler pool size (see EffectiveWorkers for how the count is resolved).
// Callers must Close the engine when done.
func NewConcurrentEngineWorkers(graph *topology.Graph, factory HandlerFactory, workers int) *ConcurrentEngine {
	e := newConcurrentEngine(graph, factory, false)
	e.workerCount = EffectiveWorkers(workers, graph.NumNodes())
	e.sched = newStealScheduler(e.workerCount)
	e.nodeWorker = make([]int32, graph.NumNodes())
	for w := 0; w < e.workerCount; w++ {
		go e.runWorker(w)
	}
	return e
}

// NewConcurrentEngineGoroutinePerNode builds the engine with the legacy
// goroutine-per-node execution model: every node gets a dedicated goroutine
// blocking on its own mailbox. It is retained solely as the comparison
// baseline for BenchmarkReplayWideTopology — a 10k-node topology pays 10k
// mostly-idle goroutines' worth of stack and scheduler churn, which is the
// ceiling the pooled scheduler removes. New code should use
// NewConcurrentEngine. Callers must Close the engine when done.
func NewConcurrentEngineGoroutinePerNode(graph *topology.Graph, factory HandlerFactory) *ConcurrentEngine {
	e := newConcurrentEngine(graph, factory, true)
	e.workerCount = graph.NumNodes()
	for n := range e.mailboxes {
		go e.runNodeGoroutine(n)
	}
	return e
}

func newConcurrentEngine(graph *topology.Graph, factory HandlerFactory, perNode bool) *ConcurrentEngine {
	e := &ConcurrentEngine{
		graph:       graph,
		handlers:    make([]Handler, graph.NumNodes()),
		ctxs:        make([]*Context, graph.NumNodes()),
		metrics:     NewMetrics(graph.NumNodes()),
		mailboxes:   make([]*mailbox, graph.NumNodes()),
		delivShards: make([]deliveryShard, graph.NumNodes()),
	}
	e.idleCond = sync.NewCond(&e.idleMu)
	e.wmCond = sync.NewCond(&e.wmMu)
	for n := 0; n < graph.NumNodes(); n++ {
		id := topology.NodeID(n)
		e.handlers[n] = factory(id)
		e.ctxs[n] = &Context{self: id, graph: graph, metrics: e.metrics, out: e}
		e.mailboxes[n] = newMailbox(perNode)
		e.handlers[n].Init(e.ctxs[n])
	}
	return e
}

// Workers returns the effective size of the engine's execution pool: the
// scheduler worker count, or the node count in goroutine-per-node mode.
func (e *ConcurrentEngine) Workers() int { return e.workerCount }

// runWorker is one pooled scheduler worker: it acquires activated nodes from
// the deques (own first, stealing when dry) and drains one burst per
// activation. The spare buffer and the per-round counts map are reused
// across bursts, so the steady state allocates nothing; the spare's backing
// array migrates between mailboxes as bursts are swapped out and handed
// back.
func (e *ConcurrentEngine) runWorker(w int) {
	var spare []queued
	counts := map[int]int{}
	for {
		n, ok := e.sched.next(w)
		if !ok {
			return
		}
		spare = e.runNode(w, int(n), spare, counts)
	}
}

// runNode drains one burst from node n's mailbox on worker w: take the
// queue in one swap, dispatch every item, settle the per-node pending
// counts (rescheduling the node if it refilled mid-burst), then release the
// burst from the global watermark slots and the in-flight count.
func (e *ConcurrentEngine) runNode(w, n int, spare []queued, counts map[int]int) []queued {
	// Record the node→worker affinity before dispatching: sends performed
	// by these dispatches read it (on this same goroutine) to land child
	// activations on this worker's own deque.
	e.nodeWorker[n] = int32(w)
	m := e.mailboxes[n]
	items := m.take(spare)
	h, ctx := e.handlers[n], e.ctxs[n]
	for i := range items {
		dispatch(h, ctx, items[i])
		counts[items[i].round]++
	}
	if m.finish(counts) {
		e.sched.enqueue(w, int32(n))
	}
	// Release the burst from the global per-round watermark slots; a slot
	// draining to zero is the only transition that can advance the network
	// watermark.
	zeroed := false
	for round, c := range counts {
		if e.wmRing[round%wmRingSize].Add(int64(-c)) == 0 {
			zeroed = true
		}
		delete(counts, round)
	}
	if e.inflight.Add(int64(-len(items))) == 0 {
		e.idleMu.Lock()
		e.idleCond.Broadcast()
		e.idleMu.Unlock()
	}
	if zeroed && e.wmWatching.Load() {
		e.wmBroadcast()
	}
	// Zero the processed items (so queued subscriptions can be collected)
	// and reuse the array as the next burst's spare backing.
	for i := range items {
		items[i] = queued{}
	}
	return items
}

// runNodeGoroutine is the goroutine-per-node execution loop of the legacy
// baseline mode: block on the node's own mailbox, drain a burst, settle.
func (e *ConcurrentEngine) runNodeGoroutine(n int) {
	h := e.handlers[n]
	ctx := e.ctxs[n]
	m := e.mailboxes[n]
	var spare []queued
	counts := map[int]int{}
	for {
		items, ok := m.popAll(spare)
		if !ok {
			return
		}
		for i := range items {
			dispatch(h, ctx, items[i])
			counts[items[i].round]++
		}
		m.settle(counts)
		zeroed := false
		for round, c := range counts {
			if e.wmRing[round%wmRingSize].Add(int64(-c)) == 0 {
				zeroed = true
			}
			delete(counts, round)
		}
		if e.inflight.Add(int64(-len(items))) == 0 {
			e.idleMu.Lock()
			e.idleCond.Broadcast()
			e.idleMu.Unlock()
		}
		if zeroed && e.wmWatching.Load() {
			e.wmBroadcast()
		}
		for i := range items {
			items[i] = queued{}
		}
		spare = items
	}
}

func (e *ConcurrentEngine) submit(item queued) error {
	return e.submitFrom(item, -1)
}

// submitFrom is submit with worker affinity: prefer names the scheduler
// worker whose dispatch produced the item (its local deque receives the
// activation), or -1 for external injections, which spread round-robin.
func (e *ConcurrentEngine) submitFrom(item queued, prefer int) error {
	if e.closed.Load() {
		return fmt.Errorf("netsim: engine is closed")
	}
	e.inflight.Add(1)
	// Count the item in its round's watermark slot before it becomes
	// reachable: a child produced during a dispatch is therefore counted
	// while its parent is still counted, so a slot can only read zero once
	// no item of the round can ever exist again.
	e.wmRing[item.round%wmRingSize].Add(1)
	activate, ok := e.mailboxes[item.to].push(item)
	if !ok {
		if e.wmRing[item.round%wmRingSize].Add(-1) == 0 && e.wmWatching.Load() {
			e.wmBroadcast()
		}
		if e.inflight.Add(-1) == 0 {
			e.idleMu.Lock()
			e.idleCond.Broadcast()
			e.idleMu.Unlock()
		}
		return fmt.Errorf("netsim: node %d mailbox closed", item.to)
	}
	if activate {
		e.sched.enqueue(prefer, int32(item.to))
	}
	return nil
}

// wmBroadcast wakes a windowed injector waiting on the watermark.
func (e *ConcurrentEngine) wmBroadcast() {
	e.wmMu.Lock()
	e.wmCond.Broadcast()
	e.wmMu.Unlock()
}

// enqueue implements sink (called from dispatches on worker goroutines). A
// failed submit — only possible when a send races engine shutdown — is
// counted as a dropped message so lossy runs are detectable; the conformance
// suite asserts the counter stays zero.
//
// Watermark safety: the child item is counted in its target's pending map
// (inside push) while the parent item is still unsettled at the sender, so
// there is never an instant where a round looks drained while one of its
// messages is in flight between nodes.
func (e *ConcurrentEngine) enqueue(from, to topology.NodeID, msg Message, round int) {
	prefer := -1
	if e.sched != nil {
		prefer = int(e.nodeWorker[from])
	}
	if err := e.submitFrom(queued{from: from, to: to, msg: msg, round: round}, prefer); err != nil {
		e.metrics.recordDrop()
	}
}

// deliver implements sink: the delivery arrives already stamped
// (Context.DeliverToUser) and goes to the delivering node's own shard, so
// the hot path takes no engine-wide lock.
func (e *ConcurrentEngine) deliver(d Delivery) {
	s := &e.delivShards[d.Node]
	s.mu.Lock()
	if s.bySub == nil {
		s.bySub = map[model.SubscriptionID][]int{}
	}
	s.bySub[d.SubID] = append(s.bySub[d.SubID], len(s.log))
	s.log = append(s.log, d)
	s.mu.Unlock()
	e.metrics.recordDelivery(d)
	if fn := e.observer.Load(); fn != nil {
		(*fn)(d)
	}
}

// SetDeliveryObserver implements Runtime. Install the observer before any
// event enters the network; it runs on worker goroutines.
func (e *ConcurrentEngine) SetDeliveryObserver(fn func(Delivery)) {
	if fn == nil {
		e.observer.Store(nil)
		return
	}
	e.observer.Store(&fn)
}

// advanceRound bumps the round counter injections are stamped with and
// returns the new round. Callers advance it only between rounds.
func (e *ConcurrentEngine) advanceRound() int {
	e.roundMu.Lock()
	defer e.roundMu.Unlock()
	e.round++
	return e.round
}

func (e *ConcurrentEngine) currentRound() int {
	e.roundMu.Lock()
	defer e.roundMu.Unlock()
	return e.round
}

func (e *ConcurrentEngine) validNode(n topology.NodeID) error {
	if n < 0 || int(n) >= len(e.handlers) {
		return fmt.Errorf("netsim: unknown node %d", n)
	}
	return nil
}

// Handler returns the protocol handler of a node (used by white-box tests,
// matching Engine.Handler). The caller must Flush first so no worker
// goroutine is concurrently touching the handler's state.
func (e *ConcurrentEngine) Handler(n topology.NodeID) Handler {
	if n < 0 || int(n) >= len(e.handlers) {
		return nil
	}
	return e.handlers[n]
}

// AttachSensor implements Runtime.
func (e *ConcurrentEngine) AttachSensor(node topology.NodeID, sensor model.Sensor) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	return e.submit(queued{to: node, from: node, injection: injectionSensor, sensor: sensor, round: e.currentRound()})
}

// Subscribe implements Runtime.
func (e *ConcurrentEngine) Subscribe(node topology.NodeID, sub *model.Subscription) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	if sub.Aggregate != nil {
		e.aggTicks.Store(true)
	}
	return e.submit(queued{to: node, from: node, injection: injectionSubscribe, sub: sub, round: e.currentRound()})
}

// SubscribeContext implements Runtime: unlike Subscribe (which only enqueues
// the registration), it waits for the whole propagation flood to drain.
// Cancellation aborts the wait and submits a compensating retraction that
// chases the registration through the network: injections land in the same
// origin mailbox and links deliver FIFO, so the retraction observes every
// forwarding link the registration recorded. While a windowed session is
// open the registration joins the in-flight stream and the call returns
// without waiting.
func (e *ConcurrentEngine) SubscribeContext(ctx context.Context, node topology.NodeID, sub *model.Subscription) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := e.validNode(node); err != nil {
		return err
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	if sub.Aggregate != nil {
		e.aggTicks.Store(true)
	}
	if err := e.submit(queued{to: node, from: node, injection: injectionSubscribe, sub: sub, round: e.currentRound()}); err != nil {
		return err
	}
	if e.wmWatching.Load() {
		return nil
	}
	if err := e.FlushContext(ctx); err != nil {
		_ = e.submit(queued{to: node, from: node, injection: injectionUnsubscribe, unsub: sub.ID, round: e.currentRound()})
		return err
	}
	return nil
}

// Unsubscribe implements Runtime. Callers who need the retraction fully
// propagated before continuing (e.g. to guarantee zero further deliveries)
// must Flush afterwards, exactly like Subscribe.
func (e *ConcurrentEngine) Unsubscribe(node topology.NodeID, id model.SubscriptionID) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	if id == "" {
		return fmt.Errorf("netsim: empty subscription ID")
	}
	return e.submit(queued{to: node, from: node, injection: injectionUnsubscribe, unsub: id, round: e.currentRound()})
}

// Publish implements Runtime.
func (e *ConcurrentEngine) Publish(node topology.NodeID, ev model.Event) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	r := e.currentRound()
	ev.Round = r
	return e.submit(queued{to: node, from: node, injection: injectionPublish, ev: ev, round: r})
}

// PublishContext implements Runtime: the event is injected and the call
// waits for the network to drain. Cancellation aborts the wait with the
// context's error; the event itself keeps propagating on the worker
// goroutines (an injected reading cannot be recalled). While a windowed
// session is open the event joins the in-flight stream without waiting.
func (e *ConcurrentEngine) PublishContext(ctx context.Context, node topology.NodeID, ev model.Event) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := e.validNode(node); err != nil {
		return err
	}
	r := e.currentRound()
	ev.Round = r
	if err := e.submit(queued{to: node, from: node, injection: injectionPublish, ev: ev, round: r}); err != nil {
		return err
	}
	if e.wmWatching.Load() {
		return nil
	}
	return e.FlushContext(ctx)
}

// PublishBatch implements Runtime: one quiescent round, preserving the
// per-event replay semantics the conformance suite compares against the
// sequential engine.
func (e *ConcurrentEngine) PublishBatch(batch []Publication) error {
	return e.ReplayRounds([][]Publication{batch}, ReplayOptions{Mode: Quiescent})
}

// ReplayRounds implements Runtime. In Pipelined mode a whole round is
// submitted before the drain, so every node whose mailbox has work runs at
// the same time; the network is drained to quiescence between rounds. In
// Windowed mode the drain between rounds is replaced by a watermark gate:
// round r is injected as soon as every round <= r-1-Lag has fully drained,
// so up to Lag+1 rounds of messages overlap and active nodes never idle at a
// round boundary while they still have in-window work.
func (e *ConcurrentEngine) ReplayRounds(rounds [][]Publication, opts ReplayOptions) error {
	return e.ReplayRoundsContext(context.Background(), rounds, opts)
}

// ReplayRoundsContext implements Runtime: ReplayRounds with every blocking
// wait (between-round drains, the windowed watermark gate) cancellable.
// Work already submitted keeps propagating on the worker goroutines; a
// cancelled windowed replay leaves its session open with the in-flight
// rounds still draining, and Flush (or FlushContext) closes it.
func (e *ConcurrentEngine) ReplayRoundsContext(ctx context.Context, rounds [][]Publication, opts ReplayOptions) error {
	if err := opts.validate(); err != nil {
		return err
	}
	for _, round := range rounds {
		for _, p := range round {
			if err := e.validNode(p.Node); err != nil {
				return err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if opts.Mode == Windowed {
		return e.replayWindowed(ctx, rounds, opts.Lag, opts.KeepOpen)
	}
	if e.wmWatching.Load() {
		return fmt.Errorf("netsim: %v replay rejected while a windowed session is open (Flush to close it)", opts.Mode)
	}
	for _, round := range rounds {
		r := e.advanceRound()
		switch opts.Mode {
		case Quiescent:
			for _, p := range round {
				if err := e.submitPublication(p, r); err != nil {
					return err
				}
				if err := e.drainContext(ctx); err != nil {
					return err
				}
			}
		case Pipelined:
			for _, p := range round {
				if err := e.submitPublication(p, r); err != nil {
					return err
				}
			}
			if err := e.drainContext(ctx); err != nil {
				return err
			}
		}
		// The round is drained, so the watermark advanced: announce it and
		// drain the window-close cascades it triggers.
		if e.maybeTick() {
			if err := e.drainContext(ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// replayWindowed runs the watermark-gated replay. When a session is already
// open (a previous KeepOpen call left wmWatching set), the new rounds
// continue it — the injection frontier and the in-flight rounds carry over.
// With keepOpen the trailing rounds stay in flight when the call returns;
// Flush closes the session. A failed submit (engine shutdown) closes the
// session on the way out, matching the pre-session error behaviour.
func (e *ConcurrentEngine) replayWindowed(ctx context.Context, rounds [][]Publication, lag int, keepOpen bool) error {
	e.wmMu.Lock()
	if !e.wmWatching.Load() {
		e.wmInjected = e.currentRound()
		e.wmWatching.Store(true)
	}
	e.wmSessionOpen = false
	e.wmMu.Unlock()
	for _, round := range rounds {
		r := e.advanceRound()
		if err := e.waitWatermarkCtx(ctx, r-1-lag); err != nil {
			// Cancelled at the watermark gate: mark the session open so a
			// later Flush drains the in-flight rounds and closes it.
			e.markSessionOpen()
			return err
		}
		// The gate advanced the watermark: announce it before round r's
		// events enter the network. The ticks join the in-flight stream (no
		// drain) like any other windowed work.
		e.maybeTick()
		for _, p := range round {
			if err := e.submitPublication(p, r); err != nil {
				e.wmWatching.Store(false)
				return err
			}
		}
		e.wmMu.Lock()
		e.wmInjected = r
		e.wmMu.Unlock()
	}
	if keepOpen {
		e.markSessionOpen()
		return nil
	}
	if err := e.FlushContext(ctx); err != nil {
		e.markSessionOpen()
		return err
	}
	e.wmWatching.Store(false)
	return nil
}

// markSessionOpen records that a windowed session returned to the caller
// with rounds still in flight (KeepOpen, or a cancelled replay): wmWatching
// stays set and the next Flush closes the session.
func (e *ConcurrentEngine) markSessionOpen() {
	e.wmMu.Lock()
	e.wmSessionOpen = true
	e.wmMu.Unlock()
}

func (e *ConcurrentEngine) submitPublication(p Publication, round int) error {
	ev := p.Event
	ev.Round = round
	return e.submit(queued{to: p.Node, from: p.Node, injection: injectionPublish, ev: ev, round: round})
}

// waitWatermark blocks the injector until the network watermark reaches the
// target round (or the engine is closed). Workers broadcast wmCond whenever
// a round's global in-flight count drains to zero; holding wmMu across the
// recheck closes the missed-wakeup window.
func (e *ConcurrentEngine) waitWatermark(target int) {
	e.wmMu.Lock()
	for e.advanceWatermarkLocked(e.wmInjected) < target && !e.closed.Load() {
		e.wmCond.Wait()
	}
	e.wmMu.Unlock()
}

// waitWatermarkCtx is waitWatermark with cancellation: the context's
// AfterFunc broadcasts wmCond, so a cancelled injector re-checks the
// context and returns its error instead of blocking until the watermark
// advances. A context that can never be cancelled takes the hook-free path.
func (e *ConcurrentEngine) waitWatermarkCtx(ctx context.Context, target int) error {
	if ctx.Done() == nil {
		e.waitWatermark(target)
		return nil
	}
	stop := context.AfterFunc(ctx, e.wmBroadcast)
	defer stop()
	e.wmMu.Lock()
	for e.advanceWatermarkLocked(e.wmInjected) < target && !e.closed.Load() && ctx.Err() == nil {
		e.wmCond.Wait()
	}
	e.wmMu.Unlock()
	return ctx.Err()
}

// advanceWatermarkLocked is the incremental min-tracker behind the network
// watermark: rounds retire in order, so the watermark advances by walking the
// retired-round cursor over consecutive ring slots that read zero, capped by
// the injection frontier (a round retires only once fully injected, so empty
// rounds do not let the watermark run ahead of the trace). Each wake-up
// touches at most the active rounds' slots — O(lag), not O(nodes): the
// previous implementation locked every mailbox and scanned every node's
// pending map.
//
// Correctness does not need a multi-node snapshot any more: a single ring
// slot is one atomic, and the child-before-parent accounting rule (submit
// counts an item before its parent's dispatch is released) guarantees a slot
// reads zero only when no item of that round exists or can ever exist again.
// The cursor is monotone under wmMu, so a transient later re-increment of a
// colliding slot (a reused slot of a much newer round) can never un-retire a
// round. Callers must hold wmMu.
func (e *ConcurrentEngine) advanceWatermarkLocked(frontier int) int {
	for e.wmRetired < frontier && e.wmRing[(e.wmRetired+1)%wmRingSize].Load() == 0 {
		e.wmRetired++
	}
	return e.wmRetired
}

// Watermark implements Runtime: the highest round whose work has been fully
// processed network-wide. Outside a windowed replay the engine drains
// between rounds, so after Flush it equals the round counter.
func (e *ConcurrentEngine) Watermark() int {
	frontier := e.currentRound()
	e.wmMu.Lock()
	defer e.wmMu.Unlock()
	if e.wmWatching.Load() {
		// Mid-replay the cap is the injection frontier, not the round
		// counter: the round being injected right now must not retire.
		frontier = e.wmInjected
	}
	return e.advanceWatermarkLocked(frontier)
}

// NodeWatermarks returns every node's low-watermark: the highest round r
// such that the node has no pending work of any round <= r, capped at the
// highest injected round. A node with no work at all in some round reports
// the cap — its watermark advances with the network even though it never
// processed anything. Intended for tests and diagnostics.
func (e *ConcurrentEngine) NodeWatermarks() []int {
	e.wmMu.Lock()
	defer e.wmMu.Unlock()
	frontier := e.wmInjected
	if !e.wmWatching.Load() {
		frontier = e.currentRound()
	}
	// Hold every mailbox lock at once so the vector is a consistent
	// snapshot: locking mailboxes one at a time would let an item migrate
	// from a not-yet-scanned mailbox to an already-scanned one and report a
	// node low-watermark past a round with work still in flight. This
	// diagnostics call is the only remaining all-mailbox scan; the network
	// watermark itself is tracked incrementally (see advanceWatermarkLocked).
	for _, m := range e.mailboxes {
		m.mu.Lock()
	}
	out := make([]int, len(e.mailboxes))
	for n, m := range e.mailboxes {
		low := m.lowWatermarkLocked()
		if low > frontier {
			low = frontier
		}
		out[n] = low
	}
	for i := len(e.mailboxes) - 1; i >= 0; i-- {
		e.mailboxes[i].mu.Unlock()
	}
	return out
}

// Flush implements Runtime: it blocks until every in-flight message (and
// every message transitively produced by it) has been processed. A live
// windowed session (KeepOpen) is closed: after the drain no round is in
// flight, so the watermark catches up to the round counter and the next
// ReplayRounds starts a fresh session.
func (e *ConcurrentEngine) Flush() {
	e.drain()
	for e.maybeTick() {
		e.drain()
	}
}

// FlushContext implements Runtime: the idle wait of Flush, abandoned when
// the context is cancelled (the in-flight work keeps draining on the worker
// goroutines; a live windowed session stays open). A context that can never
// be cancelled takes the exact Flush path, so steady-state replay loops pay
// nothing for the hook.
func (e *ConcurrentEngine) FlushContext(ctx context.Context) error {
	if err := e.drainContext(ctx); err != nil {
		return err
	}
	for e.maybeTick() {
		if err := e.drainContext(ctx); err != nil {
			return err
		}
	}
	return nil
}

// drain blocks until every in-flight message has been processed, then
// re-syncs the watermark cursor. It does not announce the watermark; the
// round-boundary callers (and the public Flush/FlushContext) do.
func (e *ConcurrentEngine) drain() {
	e.idleMu.Lock()
	for e.inflight.Load() > 0 {
		e.idleCond.Wait()
	}
	e.idleMu.Unlock()
	e.retireDrainedRounds()
}

// drainContext is drain with cancellation. A context that can never be
// cancelled takes the hook-free path.
func (e *ConcurrentEngine) drainContext(ctx context.Context) error {
	if ctx.Done() == nil {
		e.drain()
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	stop := context.AfterFunc(ctx, func() {
		e.idleMu.Lock()
		e.idleCond.Broadcast()
		e.idleMu.Unlock()
	})
	defer stop()
	e.idleMu.Lock()
	for e.inflight.Load() > 0 && ctx.Err() == nil {
		e.idleCond.Wait()
	}
	e.idleMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	e.retireDrainedRounds()
	return nil
}

// maybeTick submits one watermark tick per node when the watermark advanced
// past the last announced value, reporting whether it did. Gated on
// aggTicks: without aggregate subscriptions no tick is ever submitted.
// Concurrent callers are serialised on ticked, but their submission loops
// may interleave, so a node can observe ticks out of order — handlers must
// ignore a tick below one they have already seen.
func (e *ConcurrentEngine) maybeTick() bool {
	if !e.aggTicks.Load() {
		return false
	}
	wm := e.Watermark()
	e.tickMu.Lock()
	if wm <= e.ticked {
		e.tickMu.Unlock()
		return false
	}
	e.ticked = wm
	e.tickMu.Unlock()
	for n := range e.mailboxes {
		id := topology.NodeID(n)
		// A failed submit only happens when the engine is shutting down;
		// the tick is then moot.
		_ = e.submit(queued{to: id, from: id, injection: injectionTick, wm: wm})
	}
	return true
}

// retireDrainedRounds re-syncs the watermark cursor after a full drain: the
// network is quiescent, so every drained round can retire and the cursor
// keeps pace with the round counter even across replays that never consult
// the watermark. This is what keeps distinct active rounds from ever
// colliding in the ring — the cursor is re-synced at least once per drained
// round, and a windowed replay's injection gate bounds the spread in
// between.
func (e *ConcurrentEngine) retireDrainedRounds() {
	frontier := e.currentRound()
	e.wmMu.Lock()
	if e.wmSessionOpen {
		// An open KeepOpen session with no replay running: the drain above
		// emptied it, so close the session; the round counter is the exact
		// frontier (every round is fully injected).
		e.wmSessionOpen = false
		e.wmWatching.Store(false)
	} else if e.wmWatching.Load() {
		// Mid-replay the cap is the injection frontier: the round being
		// injected right now must not retire.
		frontier = e.wmInjected
	}
	e.advanceWatermarkLocked(frontier)
	e.wmMu.Unlock()
}

// Metrics implements Runtime.
func (e *ConcurrentEngine) Metrics() *Metrics { return e.metrics }

// Deliveries implements Runtime: the per-node shards are concatenated in
// node order; the order within the result is therefore not delivery order
// (it never was specified to be for this engine).
func (e *ConcurrentEngine) Deliveries() []Delivery {
	total := 0
	for i := range e.delivShards {
		s := &e.delivShards[i]
		s.mu.Lock()
		total += len(s.log)
		s.mu.Unlock()
	}
	out := make([]Delivery, 0, total)
	for i := range e.delivShards {
		s := &e.delivShards[i]
		s.mu.Lock()
		out = append(out, s.log...)
		s.mu.Unlock()
	}
	return out
}

// DeliveriesFor implements Runtime: the per-shard per-subscription indexes
// are merged in node order, so the cost is proportional to the target
// subscription's own deliveries (a subscription is typically delivered at a
// single node — its owner's).
func (e *ConcurrentEngine) DeliveriesFor(id model.SubscriptionID) []Delivery {
	var out []Delivery
	for i := range e.delivShards {
		s := &e.delivShards[i]
		s.mu.Lock()
		for _, pos := range s.bySub[id] {
			out = append(out, s.log[pos])
		}
		s.mu.Unlock()
	}
	return out
}

// EvictDeliveries implements Runtime: the subscription's slots in every
// shard's per-subscription delivery index and metric maps are released; the
// shard logs keep their entries (Deliveries is unaffected). Callers should
// be quiescent with respect to this subscription (retraction fully
// propagated), which System guarantees by flushing before eviction.
func (e *ConcurrentEngine) EvictDeliveries(id model.SubscriptionID) {
	for i := range e.delivShards {
		s := &e.delivShards[i]
		s.mu.Lock()
		delete(s.bySub, id)
		s.mu.Unlock()
	}
	e.metrics.evictSubscription(id)
}

// Close shuts the scheduler down. The engine must be quiescent (Flush)
// before closing; messages submitted after Close are rejected and Close is
// idempotent. Workers drain the activations already on their deques — and
// per-node goroutines their mailboxes — before exiting, so a Close racing
// in-flight work leaves no goroutine behind once that work has run out.
func (e *ConcurrentEngine) Close() {
	if e.closed.Swap(true) {
		return
	}
	for _, m := range e.mailboxes {
		m.close()
	}
	if e.sched != nil {
		e.sched.close()
	}
	// Wake a windowed injector that might be waiting on the watermark so it
	// can observe the closed flag instead of blocking forever.
	e.wmMu.Lock()
	e.wmCond.Broadcast()
	e.wmMu.Unlock()
}
