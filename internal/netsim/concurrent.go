package netsim

import (
	"fmt"
	"sync"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// ConcurrentEngine runs one goroutine per processing node, modelling the
// fully distributed execution of the protocols: a node only ever touches its
// own state and talks to its neighbours by message passing. It implements
// the same Runtime interface as the sequential Engine, so the two are
// interchangeable; the experiments use the sequential engine for determinism
// and the tests cross-check that both produce identical traffic totals.
type ConcurrentEngine struct {
	graph    *topology.Graph
	handlers []Handler
	ctxs     []*Context
	metrics  *Metrics
	workers  []*worker

	mu         sync.Mutex
	inflight   int
	idle       *sync.Cond
	closed     bool
	deliveries []Delivery
}

var _ Runtime = (*ConcurrentEngine)(nil)

// worker is the per-node mailbox and goroutine.
type worker struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []queued
	closed bool
}

func newWorker() *worker {
	w := &worker{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *worker) push(item queued) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.queue = append(w.queue, item)
	w.cond.Signal()
	return true
}

func (w *worker) pop() (queued, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.queue) == 0 && !w.closed {
		w.cond.Wait()
	}
	if len(w.queue) == 0 {
		return queued{}, false
	}
	item := w.queue[0]
	w.queue = w.queue[1:]
	return item, true
}

func (w *worker) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

// NewConcurrentEngine builds a concurrent engine over the given topology and
// starts one goroutine per node. Callers must Close it when done.
func NewConcurrentEngine(graph *topology.Graph, factory HandlerFactory) *ConcurrentEngine {
	e := &ConcurrentEngine{
		graph:    graph,
		handlers: make([]Handler, graph.NumNodes()),
		ctxs:     make([]*Context, graph.NumNodes()),
		metrics:  NewMetrics(),
		workers:  make([]*worker, graph.NumNodes()),
	}
	e.idle = sync.NewCond(&e.mu)
	for n := 0; n < graph.NumNodes(); n++ {
		id := topology.NodeID(n)
		e.handlers[n] = factory(id)
		e.ctxs[n] = &Context{self: id, graph: graph, metrics: e.metrics, out: e}
		e.workers[n] = newWorker()
		e.handlers[n].Init(e.ctxs[n])
	}
	for n := range e.workers {
		go e.runWorker(n)
	}
	return e
}

func (e *ConcurrentEngine) runWorker(n int) {
	for {
		item, ok := e.workers[n].pop()
		if !ok {
			return
		}
		e.process(n, item)
		e.mu.Lock()
		e.inflight--
		if e.inflight == 0 {
			e.idle.Broadcast()
		}
		e.mu.Unlock()
	}
}

func (e *ConcurrentEngine) process(n int, item queued) {
	h := e.handlers[n]
	ctx := e.ctxs[n]
	if item.injection != injectionNone {
		switch item.injection {
		case injectionSensor:
			h.LocalSensor(ctx, item.sensor)
		case injectionSubscribe:
			h.LocalSubscribe(ctx, item.sub)
		case injectionPublish:
			h.LocalPublish(ctx, item.ev)
		}
		return
	}
	switch item.msg.Kind {
	case KindAdvertisement:
		h.HandleAdvertisement(ctx, item.from, item.msg.Adv)
	case KindSubscription:
		h.HandleSubscription(ctx, item.from, item.msg.Sub)
	case KindEvent:
		h.HandleEvent(ctx, item.from, item.msg.Ev)
	}
}

func (e *ConcurrentEngine) submit(item queued) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("netsim: engine is closed")
	}
	e.inflight++
	e.mu.Unlock()
	if !e.workers[item.to].push(item) {
		e.mu.Lock()
		e.inflight--
		e.mu.Unlock()
		return fmt.Errorf("netsim: node %d mailbox closed", item.to)
	}
	return nil
}

// enqueue implements sink (called from worker goroutines).
func (e *ConcurrentEngine) enqueue(from, to topology.NodeID, msg Message) {
	_ = e.submit(queued{from: from, to: to, msg: msg})
}

// deliver implements sink.
func (e *ConcurrentEngine) deliver(d Delivery) {
	e.mu.Lock()
	e.deliveries = append(e.deliveries, d)
	e.mu.Unlock()
	e.metrics.recordDelivery(d)
}

func (e *ConcurrentEngine) validNode(n topology.NodeID) error {
	if n < 0 || int(n) >= len(e.handlers) {
		return fmt.Errorf("netsim: unknown node %d", n)
	}
	return nil
}

// AttachSensor implements Runtime.
func (e *ConcurrentEngine) AttachSensor(node topology.NodeID, sensor model.Sensor) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	return e.submit(queued{to: node, from: node, injection: injectionSensor, sensor: sensor})
}

// Subscribe implements Runtime.
func (e *ConcurrentEngine) Subscribe(node topology.NodeID, sub *model.Subscription) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	return e.submit(queued{to: node, from: node, injection: injectionSubscribe, sub: sub})
}

// Publish implements Runtime.
func (e *ConcurrentEngine) Publish(node topology.NodeID, ev model.Event) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	return e.submit(queued{to: node, from: node, injection: injectionPublish, ev: ev})
}

// PublishBatch implements Runtime. The batch is validated up front; each
// event is then submitted and the network drained to quiescence before the
// next one, preserving the per-event replay semantics the conformance suite
// compares against the sequential engine.
func (e *ConcurrentEngine) PublishBatch(batch []Publication) error {
	for _, p := range batch {
		if err := e.validNode(p.Node); err != nil {
			return err
		}
	}
	for _, p := range batch {
		if err := e.submit(queued{to: p.Node, from: p.Node, injection: injectionPublish, ev: p.Event}); err != nil {
			return err
		}
		e.Flush()
	}
	return nil
}

// Flush implements Runtime: it blocks until every in-flight message (and
// every message transitively produced by it) has been processed.
func (e *ConcurrentEngine) Flush() {
	e.mu.Lock()
	for e.inflight > 0 {
		e.idle.Wait()
	}
	e.mu.Unlock()
}

// Metrics implements Runtime.
func (e *ConcurrentEngine) Metrics() *Metrics { return e.metrics }

// Deliveries implements Runtime.
func (e *ConcurrentEngine) Deliveries() []Delivery {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Delivery, len(e.deliveries))
	copy(out, e.deliveries)
	return out
}

// Close shuts the per-node goroutines down. The engine must be quiescent
// (Flush) before closing; messages submitted after Close are rejected.
func (e *ConcurrentEngine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	for _, w := range e.workers {
		w.close()
	}
}
