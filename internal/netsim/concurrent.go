package netsim

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// ConcurrentEngine runs one goroutine per processing node, modelling the
// fully distributed execution of the protocols: a node only ever touches its
// own state and talks to its neighbours by message passing. It implements
// the same Runtime interface as the sequential Engine, so the two are
// interchangeable; the experiments use the sequential engine for determinism
// and the tests cross-check that both produce identical traffic totals.
//
// Under Quiescent replay at most one event is in flight, so the goroutines
// take turns; Pipelined replay (ReplayRounds) keeps a whole round in flight;
// Windowed replay keeps up to Lag+1 rounds in flight, with per-node round
// ledgers aggregated into a network watermark that gates injection.
//
// The hot delivery path is lock-free with respect to the engine: traffic
// counters and deliveries go to per-node shards (see Metrics and
// deliveryShard), in-flight accounting is a single atomic, and the only
// per-message lock is the target node's mailbox mutex — which the worker
// drains in batches, one lock round-trip per burst.
type ConcurrentEngine struct {
	graph    *topology.Graph
	handlers []Handler
	ctxs     []*Context
	metrics  *Metrics
	workers  []*worker

	// inflight counts queued-but-not-yet-dispatched items; Flush waits for
	// it to reach zero via idleCond.
	inflight atomic.Int64
	closed   atomic.Bool
	idleMu   sync.Mutex
	idleCond *sync.Cond

	// roundMu guards the round counter (cold path: once per round).
	roundMu sync.Mutex
	round   int

	// wmMu guards the windowed-replay injection frontier, the retired-round
	// cursor and the condition the injector waits on; workers broadcast
	// wmCond when a round's network-wide in-flight count drains to zero.
	// wmWatching keeps workers off that lock entirely outside windowed
	// replays.
	wmMu       sync.Mutex
	wmCond     *sync.Cond
	wmInjected int
	wmRetired  int
	wmWatching atomic.Bool
	// wmSessionOpen (guarded by wmMu) records that a KeepOpen windowed
	// replay returned with the session live: wmWatching is still set but no
	// ReplayRounds call is running. Flush closes such a session; while a
	// replay IS running, Flush must instead keep its retire frontier capped
	// at the injection frontier (the round being injected must not retire).
	wmSessionOpen bool

	// wmRing is the incremental watermark min-tracker: the network-wide
	// in-flight item count of round r lives in slot r % wmRingSize. submit
	// increments a round's slot before the item is enqueued and the worker
	// decrements it after dispatching the item, preserving the
	// child-before-parent accounting rule, so a slot reads zero only when no
	// item of the round exists or can ever exist again. Advancing the
	// watermark is then a scan of at most the active rounds' slots from
	// wmRetired+1 upward — O(lag), not O(nodes): the old implementation took
	// every worker's mailbox lock and scanned every node's pending map on
	// each injector wake-up.
	wmRing [wmRingSize]atomic.Int64

	// delivShards is the per-node delivery log: node n's worker is the only
	// writer of shard n, so appends never contend; Deliveries() merges on
	// read.
	delivShards []deliveryShard

	// observer, when set, is invoked for every recorded delivery on the
	// delivering worker's goroutine (push delivery). Loaded atomically so
	// installing it does not race the workers.
	observer atomic.Pointer[func(Delivery)]

	// aggTicks is set when an aggregate subscription registers; it gates all
	// watermark-tick work (see maybeTick) so replays without aggregate
	// queries pay one atomic load per round boundary. tickMu guards ticked,
	// the highest watermark already announced to the nodes.
	aggTicks atomic.Bool
	tickMu   sync.Mutex
	ticked   int
}

var _ Runtime = (*ConcurrentEngine)(nil)

// wmRingSize is the per-round in-flight counter ring of the watermark
// tracker. Slot reuse is safe because at most MaxReplayLag+2 rounds can be
// active at once (Flush re-syncs the retired cursor between replays and the
// windowed injection gate bounds the spread during one), so distinct active
// rounds never collide in the ring.
const wmRingSize = 1024

// deliveryShard is one node's slice of the delivery log, padded so that
// neighbouring shards do not false-share a cache line. bySub indexes the
// shard's log per subscription so DeliveriesFor merges only the target
// subscription's entries instead of rescanning every delivery.
type deliveryShard struct {
	mu    sync.Mutex
	log   []Delivery
	bySub map[model.SubscriptionID][]int
	_     [64]byte
}

// worker is the per-node mailbox and goroutine.
type worker struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []queued
	closed bool
	// pending counts this node's not-yet-dispatched items per lineage
	// round; the node's low-watermark is derived from it (the round below
	// the lowest round with work still pending). Maintained under mu:
	// incremented by push, decremented in one batch after the worker
	// dispatches a burst.
	pending map[int]int
}

func newWorker() *worker {
	w := &worker{pending: map[int]int{}}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *worker) push(item queued) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.queue = append(w.queue, item)
	w.pending[item.round]++
	w.cond.Signal()
	return true
}

// popAll blocks until the mailbox is non-empty (or closed) and then takes
// every queued item in one swap, leaving spare as the mailbox's next backing
// array. Draining in batches rather than item by item keeps the mailbox lock
// out of the pipelined hot path: under a full round in flight a node pays one
// lock round-trip per burst instead of one per message. The per-round
// pending counts are NOT released here — the items are still in flight until
// dispatched — the worker settles them after the burst via settle().
func (w *worker) popAll(spare []queued) ([]queued, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.queue) == 0 && !w.closed {
		w.cond.Wait()
	}
	if len(w.queue) == 0 {
		return nil, false
	}
	items := w.queue
	w.queue = spare[:0]
	return items, true
}

// settle releases a dispatched burst from the per-round pending counts — the
// per-node decomposition NodeWatermarks reports. The network watermark
// itself is tracked by the engine's global per-round slots (wmRing), which
// the worker decrements separately.
func (w *worker) settle(counts map[int]int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for round, n := range counts {
		if left := w.pending[round] - n; left > 0 {
			w.pending[round] = left
		} else {
			delete(w.pending, round)
		}
	}
}

// lowWatermarkLocked returns this node's low-watermark bound: one less than
// the lowest round with pending work, or maxInt when the node is idle (an
// idle node places no bound — its watermark is whatever the injection
// frontier allows, which is how a node with no work in a round still
// advances). Callers must hold w.mu.
func (w *worker) lowWatermarkLocked() int {
	if len(w.pending) == 0 {
		return math.MaxInt
	}
	low := math.MaxInt
	for round := range w.pending {
		if round < low {
			low = round
		}
	}
	return low - 1
}

func (w *worker) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

// NewConcurrentEngine builds a concurrent engine over the given topology and
// starts one goroutine per node. Callers must Close it when done.
func NewConcurrentEngine(graph *topology.Graph, factory HandlerFactory) *ConcurrentEngine {
	e := &ConcurrentEngine{
		graph:       graph,
		handlers:    make([]Handler, graph.NumNodes()),
		ctxs:        make([]*Context, graph.NumNodes()),
		metrics:     NewMetrics(graph.NumNodes()),
		workers:     make([]*worker, graph.NumNodes()),
		delivShards: make([]deliveryShard, graph.NumNodes()),
	}
	e.idleCond = sync.NewCond(&e.idleMu)
	e.wmCond = sync.NewCond(&e.wmMu)
	for n := 0; n < graph.NumNodes(); n++ {
		id := topology.NodeID(n)
		e.handlers[n] = factory(id)
		e.ctxs[n] = &Context{self: id, graph: graph, metrics: e.metrics, out: e}
		e.workers[n] = newWorker()
		e.handlers[n].Init(e.ctxs[n])
	}
	for n := range e.workers {
		go e.runWorker(n)
	}
	return e
}

func (e *ConcurrentEngine) runWorker(n int) {
	h := e.handlers[n]
	ctx := e.ctxs[n]
	w := e.workers[n]
	var spare []queued
	counts := map[int]int{}
	for {
		items, ok := w.popAll(spare)
		if !ok {
			return
		}
		for i := range items {
			dispatch(h, ctx, items[i])
			counts[items[i].round]++
		}
		w.settle(counts)
		// Release the burst from the global per-round watermark slots; a
		// slot draining to zero is the only transition that can advance the
		// network watermark.
		zeroed := false
		for round, n := range counts {
			if e.wmRing[round%wmRingSize].Add(int64(-n)) == 0 {
				zeroed = true
			}
			delete(counts, round)
		}
		if e.inflight.Add(int64(-len(items))) == 0 {
			e.idleMu.Lock()
			e.idleCond.Broadcast()
			e.idleMu.Unlock()
		}
		if zeroed && e.wmWatching.Load() {
			e.wmBroadcast()
		}
		// Zero the processed items (so queued subscriptions can be
		// collected) and hand the array back to the mailbox.
		for i := range items {
			items[i] = queued{}
		}
		spare = items
	}
}

func (e *ConcurrentEngine) submit(item queued) error {
	if e.closed.Load() {
		return fmt.Errorf("netsim: engine is closed")
	}
	e.inflight.Add(1)
	// Count the item in its round's watermark slot before it becomes
	// reachable: a child produced during a dispatch is therefore counted
	// while its parent is still counted, so a slot can only read zero once
	// no item of the round can ever exist again.
	e.wmRing[item.round%wmRingSize].Add(1)
	if !e.workers[item.to].push(item) {
		if e.wmRing[item.round%wmRingSize].Add(-1) == 0 && e.wmWatching.Load() {
			e.wmBroadcast()
		}
		if e.inflight.Add(-1) == 0 {
			e.idleMu.Lock()
			e.idleCond.Broadcast()
			e.idleMu.Unlock()
		}
		return fmt.Errorf("netsim: node %d mailbox closed", item.to)
	}
	return nil
}

// wmBroadcast wakes a windowed injector waiting on the watermark.
func (e *ConcurrentEngine) wmBroadcast() {
	e.wmMu.Lock()
	e.wmCond.Broadcast()
	e.wmMu.Unlock()
}

// enqueue implements sink (called from worker goroutines). A failed submit —
// only possible when a send races engine shutdown — is counted as a dropped
// message so lossy runs are detectable; the conformance suite asserts the
// counter stays zero.
//
// Watermark safety: the child item is counted in its target's pending map
// (inside push) while the parent item is still unsettled at the sender, so
// there is never an instant where a round looks drained while one of its
// messages is in flight between nodes.
func (e *ConcurrentEngine) enqueue(from, to topology.NodeID, msg Message, round int) {
	if err := e.submit(queued{from: from, to: to, msg: msg, round: round}); err != nil {
		e.metrics.recordDrop()
	}
}

// deliver implements sink: the delivery arrives already stamped
// (Context.DeliverToUser) and goes to the delivering node's own shard, so
// the hot path takes no engine-wide lock.
func (e *ConcurrentEngine) deliver(d Delivery) {
	s := &e.delivShards[d.Node]
	s.mu.Lock()
	if s.bySub == nil {
		s.bySub = map[model.SubscriptionID][]int{}
	}
	s.bySub[d.SubID] = append(s.bySub[d.SubID], len(s.log))
	s.log = append(s.log, d)
	s.mu.Unlock()
	e.metrics.recordDelivery(d)
	if fn := e.observer.Load(); fn != nil {
		(*fn)(d)
	}
}

// SetDeliveryObserver implements Runtime. Install the observer before any
// event enters the network; it runs on worker goroutines.
func (e *ConcurrentEngine) SetDeliveryObserver(fn func(Delivery)) {
	if fn == nil {
		e.observer.Store(nil)
		return
	}
	e.observer.Store(&fn)
}

// advanceRound bumps the round counter injections are stamped with and
// returns the new round. Callers advance it only between rounds.
func (e *ConcurrentEngine) advanceRound() int {
	e.roundMu.Lock()
	defer e.roundMu.Unlock()
	e.round++
	return e.round
}

func (e *ConcurrentEngine) currentRound() int {
	e.roundMu.Lock()
	defer e.roundMu.Unlock()
	return e.round
}

func (e *ConcurrentEngine) validNode(n topology.NodeID) error {
	if n < 0 || int(n) >= len(e.handlers) {
		return fmt.Errorf("netsim: unknown node %d", n)
	}
	return nil
}

// Handler returns the protocol handler of a node (used by white-box tests,
// matching Engine.Handler). The caller must Flush first so no worker
// goroutine is concurrently touching the handler's state.
func (e *ConcurrentEngine) Handler(n topology.NodeID) Handler {
	if n < 0 || int(n) >= len(e.handlers) {
		return nil
	}
	return e.handlers[n]
}

// AttachSensor implements Runtime.
func (e *ConcurrentEngine) AttachSensor(node topology.NodeID, sensor model.Sensor) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	return e.submit(queued{to: node, from: node, injection: injectionSensor, sensor: sensor, round: e.currentRound()})
}

// Subscribe implements Runtime.
func (e *ConcurrentEngine) Subscribe(node topology.NodeID, sub *model.Subscription) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	if sub.Aggregate != nil {
		e.aggTicks.Store(true)
	}
	return e.submit(queued{to: node, from: node, injection: injectionSubscribe, sub: sub, round: e.currentRound()})
}

// SubscribeContext implements Runtime: unlike Subscribe (which only enqueues
// the registration), it waits for the whole propagation flood to drain.
// Cancellation aborts the wait and submits a compensating retraction that
// chases the registration through the network: injections land in the same
// origin mailbox and links deliver FIFO, so the retraction observes every
// forwarding link the registration recorded. While a windowed session is
// open the registration joins the in-flight stream and the call returns
// without waiting.
func (e *ConcurrentEngine) SubscribeContext(ctx context.Context, node topology.NodeID, sub *model.Subscription) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := e.validNode(node); err != nil {
		return err
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	if sub.Aggregate != nil {
		e.aggTicks.Store(true)
	}
	if err := e.submit(queued{to: node, from: node, injection: injectionSubscribe, sub: sub, round: e.currentRound()}); err != nil {
		return err
	}
	if e.wmWatching.Load() {
		return nil
	}
	if err := e.FlushContext(ctx); err != nil {
		_ = e.submit(queued{to: node, from: node, injection: injectionUnsubscribe, unsub: sub.ID, round: e.currentRound()})
		return err
	}
	return nil
}

// Unsubscribe implements Runtime. Callers who need the retraction fully
// propagated before continuing (e.g. to guarantee zero further deliveries)
// must Flush afterwards, exactly like Subscribe.
func (e *ConcurrentEngine) Unsubscribe(node topology.NodeID, id model.SubscriptionID) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	if id == "" {
		return fmt.Errorf("netsim: empty subscription ID")
	}
	return e.submit(queued{to: node, from: node, injection: injectionUnsubscribe, unsub: id, round: e.currentRound()})
}

// Publish implements Runtime.
func (e *ConcurrentEngine) Publish(node topology.NodeID, ev model.Event) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	r := e.currentRound()
	ev.Round = r
	return e.submit(queued{to: node, from: node, injection: injectionPublish, ev: ev, round: r})
}

// PublishContext implements Runtime: the event is injected and the call
// waits for the network to drain. Cancellation aborts the wait with the
// context's error; the event itself keeps propagating on the worker
// goroutines (an injected reading cannot be recalled). While a windowed
// session is open the event joins the in-flight stream without waiting.
func (e *ConcurrentEngine) PublishContext(ctx context.Context, node topology.NodeID, ev model.Event) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := e.validNode(node); err != nil {
		return err
	}
	r := e.currentRound()
	ev.Round = r
	if err := e.submit(queued{to: node, from: node, injection: injectionPublish, ev: ev, round: r}); err != nil {
		return err
	}
	if e.wmWatching.Load() {
		return nil
	}
	return e.FlushContext(ctx)
}

// PublishBatch implements Runtime: one quiescent round, preserving the
// per-event replay semantics the conformance suite compares against the
// sequential engine.
func (e *ConcurrentEngine) PublishBatch(batch []Publication) error {
	return e.ReplayRounds([][]Publication{batch}, ReplayOptions{Mode: Quiescent})
}

// ReplayRounds implements Runtime. In Pipelined mode a whole round is
// submitted before the drain, so every node whose mailbox has work runs at
// the same time; the network is drained to quiescence between rounds. In
// Windowed mode the drain between rounds is replaced by a watermark gate:
// round r is injected as soon as every round <= r-1-Lag has fully drained,
// so up to Lag+1 rounds of messages overlap and the per-node goroutines
// never idle at a round boundary while they still have in-window work.
func (e *ConcurrentEngine) ReplayRounds(rounds [][]Publication, opts ReplayOptions) error {
	return e.ReplayRoundsContext(context.Background(), rounds, opts)
}

// ReplayRoundsContext implements Runtime: ReplayRounds with every blocking
// wait (between-round drains, the windowed watermark gate) cancellable.
// Work already submitted keeps propagating on the worker goroutines; a
// cancelled windowed replay leaves its session open with the in-flight
// rounds still draining, and Flush (or FlushContext) closes it.
func (e *ConcurrentEngine) ReplayRoundsContext(ctx context.Context, rounds [][]Publication, opts ReplayOptions) error {
	if err := opts.validate(); err != nil {
		return err
	}
	for _, round := range rounds {
		for _, p := range round {
			if err := e.validNode(p.Node); err != nil {
				return err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if opts.Mode == Windowed {
		return e.replayWindowed(ctx, rounds, opts.Lag, opts.KeepOpen)
	}
	if e.wmWatching.Load() {
		return fmt.Errorf("netsim: %v replay rejected while a windowed session is open (Flush to close it)", opts.Mode)
	}
	for _, round := range rounds {
		r := e.advanceRound()
		switch opts.Mode {
		case Quiescent:
			for _, p := range round {
				if err := e.submitPublication(p, r); err != nil {
					return err
				}
				if err := e.drainContext(ctx); err != nil {
					return err
				}
			}
		case Pipelined:
			for _, p := range round {
				if err := e.submitPublication(p, r); err != nil {
					return err
				}
			}
			if err := e.drainContext(ctx); err != nil {
				return err
			}
		}
		// The round is drained, so the watermark advanced: announce it and
		// drain the window-close cascades it triggers.
		if e.maybeTick() {
			if err := e.drainContext(ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// replayWindowed runs the watermark-gated replay. When a session is already
// open (a previous KeepOpen call left wmWatching set), the new rounds
// continue it — the injection frontier and the in-flight rounds carry over.
// With keepOpen the trailing rounds stay in flight when the call returns;
// Flush closes the session. A failed submit (engine shutdown) closes the
// session on the way out, matching the pre-session error behaviour.
func (e *ConcurrentEngine) replayWindowed(ctx context.Context, rounds [][]Publication, lag int, keepOpen bool) error {
	e.wmMu.Lock()
	if !e.wmWatching.Load() {
		e.wmInjected = e.currentRound()
		e.wmWatching.Store(true)
	}
	e.wmSessionOpen = false
	e.wmMu.Unlock()
	for _, round := range rounds {
		r := e.advanceRound()
		if err := e.waitWatermarkCtx(ctx, r-1-lag); err != nil {
			// Cancelled at the watermark gate: mark the session open so a
			// later Flush drains the in-flight rounds and closes it.
			e.markSessionOpen()
			return err
		}
		// The gate advanced the watermark: announce it before round r's
		// events enter the network. The ticks join the in-flight stream (no
		// drain) like any other windowed work.
		e.maybeTick()
		for _, p := range round {
			if err := e.submitPublication(p, r); err != nil {
				e.wmWatching.Store(false)
				return err
			}
		}
		e.wmMu.Lock()
		e.wmInjected = r
		e.wmMu.Unlock()
	}
	if keepOpen {
		e.markSessionOpen()
		return nil
	}
	if err := e.FlushContext(ctx); err != nil {
		e.markSessionOpen()
		return err
	}
	e.wmWatching.Store(false)
	return nil
}

// markSessionOpen records that a windowed session returned to the caller
// with rounds still in flight (KeepOpen, or a cancelled replay): wmWatching
// stays set and the next Flush closes the session.
func (e *ConcurrentEngine) markSessionOpen() {
	e.wmMu.Lock()
	e.wmSessionOpen = true
	e.wmMu.Unlock()
}

func (e *ConcurrentEngine) submitPublication(p Publication, round int) error {
	ev := p.Event
	ev.Round = round
	return e.submit(queued{to: p.Node, from: p.Node, injection: injectionPublish, ev: ev, round: round})
}

// waitWatermark blocks the injector until the network watermark reaches the
// target round (or the engine is closed). Workers broadcast wmCond whenever
// a round's global in-flight count drains to zero; holding wmMu across the
// recheck closes the missed-wakeup window.
func (e *ConcurrentEngine) waitWatermark(target int) {
	e.wmMu.Lock()
	for e.advanceWatermarkLocked(e.wmInjected) < target && !e.closed.Load() {
		e.wmCond.Wait()
	}
	e.wmMu.Unlock()
}

// waitWatermarkCtx is waitWatermark with cancellation: the context's
// AfterFunc broadcasts wmCond, so a cancelled injector re-checks the
// context and returns its error instead of blocking until the watermark
// advances. A context that can never be cancelled takes the hook-free path.
func (e *ConcurrentEngine) waitWatermarkCtx(ctx context.Context, target int) error {
	if ctx.Done() == nil {
		e.waitWatermark(target)
		return nil
	}
	stop := context.AfterFunc(ctx, e.wmBroadcast)
	defer stop()
	e.wmMu.Lock()
	for e.advanceWatermarkLocked(e.wmInjected) < target && !e.closed.Load() && ctx.Err() == nil {
		e.wmCond.Wait()
	}
	e.wmMu.Unlock()
	return ctx.Err()
}

// advanceWatermarkLocked is the incremental min-tracker behind the network
// watermark: rounds retire in order, so the watermark advances by walking the
// retired-round cursor over consecutive ring slots that read zero, capped by
// the injection frontier (a round retires only once fully injected, so empty
// rounds do not let the watermark run ahead of the trace). Each wake-up
// touches at most the active rounds' slots — O(lag) — where the previous
// implementation locked every mailbox and scanned every node's pending map.
//
// Correctness does not need a multi-node snapshot any more: a single ring
// slot is one atomic, and the child-before-parent accounting rule (submit
// counts an item before its parent's dispatch is released) guarantees a slot
// reads zero only when no item of that round exists or can ever exist again.
// The cursor is monotone under wmMu, so a transient later re-increment of a
// colliding slot (a reused slot of a much newer round) can never un-retire a
// round. Callers must hold wmMu.
func (e *ConcurrentEngine) advanceWatermarkLocked(frontier int) int {
	for e.wmRetired < frontier && e.wmRing[(e.wmRetired+1)%wmRingSize].Load() == 0 {
		e.wmRetired++
	}
	return e.wmRetired
}

// Watermark implements Runtime: the highest round whose work has been fully
// processed network-wide. Outside a windowed replay the engine drains
// between rounds, so after Flush it equals the round counter.
func (e *ConcurrentEngine) Watermark() int {
	frontier := e.currentRound()
	e.wmMu.Lock()
	defer e.wmMu.Unlock()
	if e.wmWatching.Load() {
		// Mid-replay the cap is the injection frontier, not the round
		// counter: the round being injected right now must not retire.
		frontier = e.wmInjected
	}
	return e.advanceWatermarkLocked(frontier)
}

// NodeWatermarks returns every node's low-watermark: the highest round r
// such that the node has no pending work of any round <= r, capped at the
// highest injected round. A node with no work at all in some round reports
// the cap — its watermark advances with the network even though it never
// processed anything. Intended for tests and diagnostics.
func (e *ConcurrentEngine) NodeWatermarks() []int {
	e.wmMu.Lock()
	defer e.wmMu.Unlock()
	frontier := e.wmInjected
	if !e.wmWatching.Load() {
		frontier = e.currentRound()
	}
	// Hold every mailbox lock at once so the vector is a consistent
	// snapshot: locking workers one at a time would let an item migrate
	// from a not-yet-scanned worker to an already-scanned one and report a
	// node low-watermark past a round with work still in flight. This
	// diagnostics call is the only remaining all-mailbox scan; the network
	// watermark itself is tracked incrementally (see advanceWatermarkLocked).
	for _, w := range e.workers {
		w.mu.Lock()
	}
	out := make([]int, len(e.workers))
	for n, w := range e.workers {
		low := w.lowWatermarkLocked()
		if low > frontier {
			low = frontier
		}
		out[n] = low
	}
	for i := len(e.workers) - 1; i >= 0; i-- {
		e.workers[i].mu.Unlock()
	}
	return out
}

// Flush implements Runtime: it blocks until every in-flight message (and
// every message transitively produced by it) has been processed. A live
// windowed session (KeepOpen) is closed: after the drain no round is in
// flight, so the watermark catches up to the round counter and the next
// ReplayRounds starts a fresh session.
func (e *ConcurrentEngine) Flush() {
	e.drain()
	for e.maybeTick() {
		e.drain()
	}
}

// FlushContext implements Runtime: the idle wait of Flush, abandoned when
// the context is cancelled (the in-flight work keeps draining on the worker
// goroutines; a live windowed session stays open). A context that can never
// be cancelled takes the exact Flush path, so steady-state replay loops pay
// nothing for the hook.
func (e *ConcurrentEngine) FlushContext(ctx context.Context) error {
	if err := e.drainContext(ctx); err != nil {
		return err
	}
	for e.maybeTick() {
		if err := e.drainContext(ctx); err != nil {
			return err
		}
	}
	return nil
}

// drain blocks until every in-flight message has been processed, then
// re-syncs the watermark cursor. It does not announce the watermark; the
// round-boundary callers (and the public Flush/FlushContext) do.
func (e *ConcurrentEngine) drain() {
	e.idleMu.Lock()
	for e.inflight.Load() > 0 {
		e.idleCond.Wait()
	}
	e.idleMu.Unlock()
	e.retireDrainedRounds()
}

// drainContext is drain with cancellation. A context that can never be
// cancelled takes the hook-free path.
func (e *ConcurrentEngine) drainContext(ctx context.Context) error {
	if ctx.Done() == nil {
		e.drain()
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	stop := context.AfterFunc(ctx, func() {
		e.idleMu.Lock()
		e.idleCond.Broadcast()
		e.idleMu.Unlock()
	})
	defer stop()
	e.idleMu.Lock()
	for e.inflight.Load() > 0 && ctx.Err() == nil {
		e.idleCond.Wait()
	}
	e.idleMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	e.retireDrainedRounds()
	return nil
}

// maybeTick submits one watermark tick per node when the watermark advanced
// past the last announced value, reporting whether it did. Gated on
// aggTicks: without aggregate subscriptions no tick is ever submitted.
// Concurrent callers are serialised on ticked, but their submission loops
// may interleave, so a node can observe ticks out of order — handlers must
// ignore a tick below one they have already seen.
func (e *ConcurrentEngine) maybeTick() bool {
	if !e.aggTicks.Load() {
		return false
	}
	wm := e.Watermark()
	e.tickMu.Lock()
	if wm <= e.ticked {
		e.tickMu.Unlock()
		return false
	}
	e.ticked = wm
	e.tickMu.Unlock()
	for n := range e.workers {
		id := topology.NodeID(n)
		// A failed submit only happens when the engine is shutting down;
		// the tick is then moot.
		_ = e.submit(queued{to: id, from: id, injection: injectionTick, wm: wm})
	}
	return true
}

// retireDrainedRounds re-syncs the watermark cursor after a full drain: the
// network is quiescent, so every drained round can retire and the cursor
// keeps pace with the round counter even across replays that never consult
// the watermark. This is what keeps distinct active rounds from ever
// colliding in the ring — the cursor is re-synced at least once per drained
// round, and a windowed replay's injection gate bounds the spread in
// between.
func (e *ConcurrentEngine) retireDrainedRounds() {
	frontier := e.currentRound()
	e.wmMu.Lock()
	if e.wmSessionOpen {
		// An open KeepOpen session with no replay running: the drain above
		// emptied it, so close the session; the round counter is the exact
		// frontier (every round is fully injected).
		e.wmSessionOpen = false
		e.wmWatching.Store(false)
	} else if e.wmWatching.Load() {
		// Mid-replay the cap is the injection frontier: the round being
		// injected right now must not retire.
		frontier = e.wmInjected
	}
	e.advanceWatermarkLocked(frontier)
	e.wmMu.Unlock()
}

// Metrics implements Runtime.
func (e *ConcurrentEngine) Metrics() *Metrics { return e.metrics }

// Deliveries implements Runtime: the per-node shards are concatenated in
// node order; the order within the result is therefore not delivery order
// (it never was specified to be for this engine).
func (e *ConcurrentEngine) Deliveries() []Delivery {
	total := 0
	for i := range e.delivShards {
		s := &e.delivShards[i]
		s.mu.Lock()
		total += len(s.log)
		s.mu.Unlock()
	}
	out := make([]Delivery, 0, total)
	for i := range e.delivShards {
		s := &e.delivShards[i]
		s.mu.Lock()
		out = append(out, s.log...)
		s.mu.Unlock()
	}
	return out
}

// DeliveriesFor implements Runtime: the per-shard per-subscription indexes
// are merged in node order, so the cost is proportional to the target
// subscription's own deliveries (a subscription is typically delivered at a
// single node — its owner's).
func (e *ConcurrentEngine) DeliveriesFor(id model.SubscriptionID) []Delivery {
	var out []Delivery
	for i := range e.delivShards {
		s := &e.delivShards[i]
		s.mu.Lock()
		for _, pos := range s.bySub[id] {
			out = append(out, s.log[pos])
		}
		s.mu.Unlock()
	}
	return out
}

// EvictDeliveries implements Runtime: the subscription's slots in every
// shard's per-subscription delivery index and metric maps are released; the
// shard logs keep their entries (Deliveries is unaffected). Callers should
// be quiescent with respect to this subscription (retraction fully
// propagated), which System guarantees by flushing before eviction.
func (e *ConcurrentEngine) EvictDeliveries(id model.SubscriptionID) {
	for i := range e.delivShards {
		s := &e.delivShards[i]
		s.mu.Lock()
		delete(s.bySub, id)
		s.mu.Unlock()
	}
	e.metrics.evictSubscription(id)
}

// Close shuts the per-node goroutines down. The engine must be quiescent
// (Flush) before closing; messages submitted after Close are rejected and
// Close is idempotent.
func (e *ConcurrentEngine) Close() {
	if e.closed.Swap(true) {
		return
	}
	for _, w := range e.workers {
		w.close()
	}
	// Wake a windowed injector that might be waiting on the watermark so it
	// can observe the closed flag instead of blocking forever.
	e.wmMu.Lock()
	e.wmCond.Broadcast()
	e.wmMu.Unlock()
}
