package netsim

// Watermark accounting for the Windowed delivery mode.
//
// Every queued item (an injected publication or a link message) carries the
// replay round it belongs to: injections are stamped with the round being
// injected, and a message produced while dispatching a round-r item inherits
// round r (lineage, not the round of the event payload — forwarding a stored
// round-(r-1) component during a round-r cascade is round-r work). Because a
// child item is always accounted before its parent is released, the count of
// in-flight items per round can only reach zero once no item of that round
// can ever exist again. That makes the watermark — the highest round R such
// that every round <= R is fully injected and has zero in-flight items —
// monotone, and retiring a round on it is safe: no message of that round is
// in any mailbox, and none can be created.
//
// The sequential engine uses one global roundLedger (it is single-threaded,
// so the per-node decomposition is degenerate); the concurrent engine keeps
// the network-wide per-round in-flight counts in a ring of atomics and
// advances a retired-round cursor over consecutive drained slots (see
// advanceWatermarkLocked in concurrent.go) — an incremental min-tracker
// whose cost per injector wake-up is the number of active rounds, not the
// number of nodes. Per-node pending counts still live in each worker's
// mailbox, but only for the NodeWatermarks diagnostics.

// roundLedger tracks in-flight work per replay round and derives the
// watermark. It is not safe for concurrent use; the sequential engine owns
// it from a single goroutine.
type roundLedger struct {
	// wm is the watermark: every round <= wm is fully injected and drained.
	wm int
	// injected is the highest round whose injections have all been enqueued.
	// The watermark never advances past it, so a round with no events (or a
	// round whose events produced no messages) still retires only once its
	// injection is complete.
	injected int
	// pending counts the in-flight items of each round > wm.
	pending map[int]int
}

// newRoundLedger starts a ledger considering every round <= base retired.
func newRoundLedger(base int) *roundLedger {
	return &roundLedger{wm: base, injected: base, pending: map[int]int{}}
}

// add accounts one in-flight item of the given round.
func (l *roundLedger) add(round int) { l.pending[round]++ }

// markInjected records that every event of the given round has been enqueued
// and advances the watermark if the round already drained (empty rounds
// retire immediately).
func (l *roundLedger) markInjected(round int) {
	if round > l.injected {
		l.injected = round
	}
	l.advance()
}

// done releases one in-flight item of the given round and advances the
// watermark when the round fully drains.
func (l *roundLedger) done(round int) {
	if n := l.pending[round] - 1; n > 0 {
		l.pending[round] = n
	} else {
		delete(l.pending, round)
		l.advance()
	}
}

func (l *roundLedger) advance() {
	for l.wm < l.injected && l.pending[l.wm+1] == 0 {
		l.wm++
	}
}

// watermark returns the highest retired round.
func (l *roundLedger) watermark() int { return l.wm }
