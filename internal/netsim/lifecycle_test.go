package netsim

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
)

// workerCounts returns the scheduler pool sizes the concurrency tests sweep:
// serial, the smallest truly concurrent pool, and one worker per CPU.
func workerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n != 1 && n != 2 {
		counts = append(counts, n)
	}
	return counts
}

func workersLabel(n int) string { return fmt.Sprintf("workers=%d", n) }

// TestConcurrentEngineLifecycleAfterClose verifies that every Runtime entry
// point is rejected once the engine is closed and that closing is idempotent.
func TestConcurrentEngineLifecycleAfterClose(t *testing.T) {
	g := lineGraph(t, 4)
	e := NewConcurrentEngine(g, newFloodHandler)
	e.Flush()
	e.Close()
	e.Close() // double-Close is safe

	if err := e.AttachSensor(0, model.Sensor{ID: "d1", Attr: model.WindSpeed}); err == nil {
		t.Error("AttachSensor after Close should fail")
	}
	sub, err := model.NewAbstractSubscription("s1",
		[]model.AttributeFilter{{Attr: model.WindSpeed, Range: geom.NewInterval(0, 10)}},
		geom.WholePlane(), 30, model.NoSpatialConstraint)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Subscribe(0, sub); err == nil {
		t.Error("Subscribe after Close should fail")
	}
	if err := e.Publish(0, testEvent(1)); err == nil {
		t.Error("Publish after Close should fail")
	}
	if err := e.PublishBatch([]Publication{{Node: 0, Event: testEvent(2)}}); err == nil {
		t.Error("PublishBatch after Close should fail")
	}
	rounds := [][]Publication{{{Node: 0, Event: testEvent(3)}}}
	if err := e.ReplayRounds(rounds, ReplayOptions{Mode: Pipelined}); err == nil {
		t.Error("ReplayRounds after Close should fail")
	}
}

// stabilizedGoroutines polls runtime.NumGoroutine until it returns to at
// most the baseline (scheduler workers exit asynchronously after Close) or
// the deadline expires, reporting the last count seen.
func stabilizedGoroutines(baseline int, deadline time.Duration) (int, bool) {
	var n int
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return n, true
		}
		time.Sleep(time.Millisecond)
	}
	return n, false
}

// TestConcurrentEngineCloseLeavesNoGoroutines verifies that Close — plain,
// doubled, and racing pending work — terminates every scheduler goroutine:
// after Close the goroutine count stabilizes back to the pre-construction
// baseline. Run under -race in CI, which also catches unsynchronized
// shutdown paths.
func TestConcurrentEngineCloseLeavesNoGoroutines(t *testing.T) {
	const deadline = 5 * time.Second
	for _, tc := range []struct {
		name  string
		close func(t *testing.T, e *ConcurrentEngine)
	}{
		{"idle", func(t *testing.T, e *ConcurrentEngine) {
			e.Flush()
			e.Close()
		}},
		{"double-close", func(t *testing.T, e *ConcurrentEngine) {
			e.Flush()
			e.Close()
			e.Close()
		}},
		{"pending-work", func(t *testing.T, e *ConcurrentEngine) {
			// Close while a replay's messages are still propagating: the
			// workers must drain what is already queued and then exit.
			if err := e.AttachSensor(7, model.Sensor{ID: "d1", Attr: model.WindSpeed}); err != nil {
				t.Fatal(err)
			}
			e.Flush()
			var batch []Publication
			for seq := uint64(1); seq <= 32; seq++ {
				batch = append(batch, Publication{Node: 7, Event: testEvent(seq)})
			}
			for _, p := range batch {
				if err := e.Publish(p.Node, p.Event); err != nil {
					t.Fatal(err)
				}
			}
			e.Close()
		}},
	} {
		for _, workers := range workerCounts() {
			t.Run(tc.name+"/"+workersLabel(workers), func(t *testing.T) {
				baseline := runtime.NumGoroutine()
				e := NewConcurrentEngineWorkers(lineGraph(t, 8), newFloodHandler, workers)
				tc.close(t, e)
				if n, ok := stabilizedGoroutines(baseline, deadline); !ok {
					t.Errorf("goroutines did not stabilize: %d live, baseline %d", n, baseline)
				}
			})
		}
		t.Run(tc.name+"/goroutine-per-node", func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			e := NewConcurrentEngineGoroutinePerNode(lineGraph(t, 8), newFloodHandler)
			tc.close(t, e)
			if n, ok := stabilizedGoroutines(baseline, deadline); !ok {
				t.Errorf("goroutines did not stabilize: %d live, baseline %d", n, baseline)
			}
		})
	}
}

// TestConcurrentEngineFlushIdle verifies Flush returns immediately on an
// engine with no in-flight work.
func TestConcurrentEngineFlushIdle(t *testing.T) {
	g := lineGraph(t, 3)
	e := NewConcurrentEngine(g, newFloodHandler)
	defer e.Close()
	done := make(chan struct{})
	go func() {
		e.Flush()
		e.Flush()
		close(done)
	}()
	<-done // deadlocks (and the test times out) if Flush blocks while idle
}

// TestConcurrentEngineHandlerAccessor verifies the Handler accessor matches
// the sequential engine's contract.
func TestConcurrentEngineHandlerAccessor(t *testing.T) {
	g := lineGraph(t, 3)
	e := NewConcurrentEngine(g, newFloodHandler)
	defer e.Close()
	if e.Handler(0) == nil || e.Handler(2) == nil {
		t.Error("Handler should return the node's handler")
	}
	if e.Handler(-1) != nil || e.Handler(99) != nil {
		t.Error("Handler should return nil for unknown nodes")
	}
	e.Flush()
	h, ok := e.Handler(0).(*floodHandler)
	if !ok {
		t.Fatalf("Handler returned %T, want *floodHandler", e.Handler(0))
	}
	if h.node != 0 {
		t.Errorf("Handler(0).node = %d", h.node)
	}
}

// TestConcurrentEngineDeliveriesRaceClean hammers Deliveries and Metrics
// readers while a pipelined replay is in flight; run under -race this proves
// the read paths are safe against concurrent worker writes.
func TestConcurrentEngineDeliveriesRaceClean(t *testing.T) {
	g := lineGraph(t, 6)
	e := NewConcurrentEngine(g, newFloodHandler)
	defer e.Close()
	if err := e.AttachSensor(5, model.Sensor{ID: "d1", Attr: model.WindSpeed}); err != nil {
		t.Fatal(err)
	}
	e.Flush()

	const rounds, perRound = 8, 4
	trace := make([][]Publication, rounds)
	seq := uint64(0)
	for r := range trace {
		for i := 0; i < perRound; i++ {
			seq++
			trace[r] = append(trace[r], Publication{Node: 5, Event: testEvent(seq)})
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = e.Deliveries()
				_ = e.Metrics().Snapshot()
				_ = e.Metrics().DroppedMessages()
			}
		}()
	}
	if err := e.ReplayRounds(trace, ReplayOptions{Mode: Pipelined}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	close(stop)
	wg.Wait()

	if got := len(e.Deliveries()); got != rounds*perRound {
		t.Errorf("deliveries = %d, want %d", got, rounds*perRound)
	}
	if n := e.Metrics().DroppedMessages(); n != 0 {
		t.Errorf("dropped %d messages", n)
	}
	// Every delivery must be stamped with the round that produced it.
	for _, d := range e.Deliveries() {
		if d.Round < 1 || d.Round > rounds {
			t.Fatalf("delivery round %d outside [1,%d]", d.Round, rounds)
		}
	}
}
