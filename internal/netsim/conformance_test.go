// Cross-engine conformance suite: the sequential Engine and the
// ConcurrentEngine must be observationally equivalent for every protocol
// variant — identical traffic totals and identical delivery multisets —
// over randomized seeded workloads.
//
// Two design decisions make this equivalence exact rather than statistical:
// the topologies are trees (every message follows a unique path, so each
// node processes a deterministic stream per link), and the probabilistic
// set filter derives its sampling RNG per decision from the candidate
// identity, so filtering verdicts cannot depend on how the engines
// interleave unrelated decisions.
package netsim_test

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"testing"

	"sensorcq/internal/agg"
	"sensorcq/internal/experiment"
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/topology"
)

// conformanceScenario is a small randomized workload; the seed varies the
// topology, the trace and the subscription population.
func conformanceScenario(seed int64) experiment.Scenario {
	return experiment.Scenario{
		Name:           "conformance",
		TotalNodes:     24,
		SensorNodes:    15,
		Groups:         5,
		Batches:        2,
		BatchSize:      12,
		MinAttrs:       2,
		MaxAttrs:       4,
		RoundsPerBatch: 3,
		RoundInterval:  1800,
		Seed:           seed,
	}
}

// drive replays the workload on the runtime: sensors first (sorted, like
// the experiment harness), then each subscription propagated to quiescence,
// then every event segment through the batched replay path.
func drive(t *testing.T, rt netsim.Runtime, w *experiment.Workload) {
	t.Helper()
	sensors := make([]model.Sensor, len(w.Deployment.Sensors))
	copy(sensors, w.Deployment.Sensors)
	sort.Slice(sensors, func(i, j int) bool { return sensors[i].ID < sensors[j].ID })
	for _, sensor := range sensors {
		if err := rt.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for _, p := range w.Placed {
		if err := rt.Subscribe(p.Node, p.Sub.Clone()); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for _, segment := range w.Segments {
		batch := make([]netsim.Publication, len(segment))
		for i, ev := range segment {
			batch[i] = netsim.Publication{Node: w.Deployment.SensorHost[ev.Sensor], Event: ev}
		}
		if err := rt.PublishBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	rt.Flush()
}

// deliveryKey canonicalizes one delivery. Complex events key on (node,
// subscription, sorted component sequence numbers); aggregate deliveries —
// whose Events set is empty — key on the full window result, with the value
// compared bit-for-bit (Float64bits also distinguishes the NaN an empty
// scalar window delivers), so two runs agree only if every window produced
// the identical aggregate.
func deliveryKey(d netsim.Delivery) string {
	if a := d.Aggregate; a != nil {
		return fmt.Sprintf("%d|%s|w%d:%d-%d:%x:%d", d.Node, d.SubID, a.Window, a.StartRound, a.EndRound, math.Float64bits(a.Value), a.Count)
	}
	return fmt.Sprintf("%d|%s|%v", d.Node, d.SubID, d.Events.Seqs())
}

// deliveryMultiset canonicalizes deliveries into a multiset keyed by
// deliveryKey, so engines may deliver in any order but must deliver the
// same complex events and window aggregates the same number of times.
func deliveryMultiset(ds []netsim.Delivery) map[string]int {
	m := map[string]int{}
	for _, d := range ds {
		m[deliveryKey(d)]++
	}
	return m
}

// driveRounds replays the workload like drive, but pushes the event trace
// through Runtime.ReplayRounds with the given replay options, one
// ReplayRounds call per batch with the batch's true round structure — the
// replay shape the experiment harness and the replay benchmarks use.
func driveRounds(t *testing.T, rt netsim.Runtime, w *experiment.Workload, opts netsim.ReplayOptions) {
	t.Helper()
	driveRoundsWith(t, rt, w, nil, opts)
}

// aggPlacement pins one aggregate query to its subscriber node.
type aggPlacement struct {
	node topology.NodeID
	sub  *model.Subscription
}

// driveRoundsWith is driveRounds with extra aggregate queries registered
// after the sensors and the regular subscription population, before any
// event replay — the registration shape the aggregate conformance oracle
// assumes (mid-stream registration is delivery-mode dependent; see
// core.registerAggregate).
func driveRoundsWith(t *testing.T, rt netsim.Runtime, w *experiment.Workload, aggs []aggPlacement, opts netsim.ReplayOptions) {
	t.Helper()
	sensors := make([]model.Sensor, len(w.Deployment.Sensors))
	copy(sensors, w.Deployment.Sensors)
	sort.Slice(sensors, func(i, j int) bool { return sensors[i].ID < sensors[j].ID })
	for _, sensor := range sensors {
		if err := rt.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for _, p := range w.Placed {
		if err := rt.Subscribe(p.Node, p.Sub.Clone()); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for _, p := range aggs {
		if err := rt.Subscribe(p.node, p.sub.Clone()); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for b := 0; b < w.Scenario.Batches; b++ {
		if err := rt.ReplayRounds(w.PublicationRounds(b), opts); err != nil {
			t.Fatal(err)
		}
	}
	rt.Flush()
}

// perRoundMultisets groups the delivery multiset by replay round.
func perRoundMultisets(ds []netsim.Delivery) map[int]map[string]int {
	out := map[int]map[string]int{}
	for _, d := range ds {
		m := out[d.Round]
		if m == nil {
			m = map[string]int{}
			out[d.Round] = m
		}
		m[deliveryKey(d)]++
	}
	return out
}

// assertSameTraffic compares the headline traffic counters of two runs.
func assertSameTraffic(t *testing.T, label string, a, b netsim.Snapshot) {
	t.Helper()
	if a.AdvertisementLoad != b.AdvertisementLoad {
		t.Errorf("%s: advertisement load: baseline=%d got=%d", label, a.AdvertisementLoad, b.AdvertisementLoad)
	}
	if a.SubscriptionLoad != b.SubscriptionLoad {
		t.Errorf("%s: subscription load: baseline=%d got=%d", label, a.SubscriptionLoad, b.SubscriptionLoad)
	}
	if a.EventLoad != b.EventLoad {
		t.Errorf("%s: event load: baseline=%d got=%d", label, a.EventLoad, b.EventLoad)
	}
	if a.PartialAggregateLoad != b.PartialAggregateLoad {
		t.Errorf("%s: partial-aggregate load: baseline=%d got=%d", label, a.PartialAggregateLoad, b.PartialAggregateLoad)
	}
}

// assertSamePerRoundDeliveries compares delivery multisets round by round.
func assertSamePerRoundDeliveries(t *testing.T, label string, base, got []netsim.Delivery) {
	t.Helper()
	bm, gm := perRoundMultisets(base), perRoundMultisets(got)
	if len(bm) == 0 {
		t.Fatalf("%s: baseline produced no deliveries; the conformance check is vacuous", label)
	}
	for round, bset := range bm {
		gset := gm[round]
		for k, n := range bset {
			if gset[k] != n {
				t.Errorf("%s: round %d delivery %q: baseline=%d got=%d", label, round, k, n, gset[k])
			}
		}
		for k, n := range gset {
			if _, ok := bset[k]; !ok {
				t.Errorf("%s: round %d delivery %q: baseline=0 got=%d", label, round, k, n)
			}
		}
	}
	for round := range gm {
		if _, ok := bm[round]; !ok {
			t.Errorf("%s: round %d has deliveries only in the pipelined run", label, round)
		}
	}
}

// conformanceVariants are the replay configurations validated against the
// sequential quiescent baseline: the pipelined mode on both engines, the
// windowed mode at lag 0 (which must degenerate to exactly pipelined
// behaviour) on both engines, and the windowed mode at lag >= 1 — genuine
// cross-round overlap — where the relaxed oracle still requires identical
// traffic totals and identical per-round delivery multisets, with only the
// ordering inside the lag window left free.
var conformanceVariants = []struct {
	name       string
	concurrent bool
	opts       netsim.ReplayOptions
}{
	{"sequential-pipelined", false, netsim.ReplayOptions{Mode: netsim.Pipelined}},
	{"concurrent-pipelined", true, netsim.ReplayOptions{Mode: netsim.Pipelined}},
	{"sequential-windowed-lag0", false, netsim.ReplayOptions{Mode: netsim.Windowed, Lag: 0}},
	{"concurrent-windowed-lag0", true, netsim.ReplayOptions{Mode: netsim.Windowed, Lag: 0}},
	{"sequential-windowed-lag1", false, netsim.ReplayOptions{Mode: netsim.Windowed, Lag: 1}},
	{"concurrent-windowed-lag1", true, netsim.ReplayOptions{Mode: netsim.Windowed, Lag: 1}},
	{"concurrent-windowed-lag2", true, netsim.ReplayOptions{Mode: netsim.Windowed, Lag: 2}},
}

// workerCounts returns the scheduler pool sizes the conformance suite sweeps
// for every concurrent variant: serial, the smallest truly concurrent pool,
// and one worker per CPU. The oracles must hold bit-identically at each.
func workerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n != 1 && n != 2 {
		counts = append(counts, n)
	}
	return counts
}

// variantRun is one engine run of a conformance variant: sequential variants
// run once (workers is ignored by the sequential engine), concurrent ones
// once per swept worker count, each labelled for the failure messages.
type variantRun struct {
	name    string
	workers int
}

func variantRuns(name string, concurrent bool) []variantRun {
	if !concurrent {
		return []variantRun{{name: name}}
	}
	var runs []variantRun
	for _, wc := range workerCounts() {
		runs = append(runs, variantRun{name: fmt.Sprintf("%s/workers=%d", name, wc), workers: wc})
	}
	return runs
}

// TestPipelinedConformanceAllApproaches is the per-round oracle of the
// pipelined and windowed delivery modes: for every approach, each replay
// variant must produce the sequential quiescent run's traffic totals and,
// round by round, the same multiset of deliveries — the interleaving within
// the lag window is free, the outcome of each round is not. Windowed
// variants build their nodes with the lag-matched validity factor; that
// never changes match sets (see netsim.RequiredValidityFactor), so they stay
// comparable with the default-validity baseline.
func TestPipelinedConformanceAllApproaches(t *testing.T) {
	for _, seed := range []int64{11, 42, 1234} {
		w, err := experiment.BuildWorkload(conformanceScenario(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range experiment.All() {
			id := id
			t.Run(fmt.Sprintf("%s/seed=%d", id, seed), func(t *testing.T) {
				newRuntime := func(concurrent bool, workers int, opts netsim.ReplayOptions) netsim.Runtime {
					factory, err := experiment.FactoryForSpec(id, experiment.FactorySpec{
						Seed:           seed + 7,
						ValidityFactor: netsim.RequiredValidityFactor(opts.Mode, opts.Lag),
					})
					if err != nil {
						t.Fatal(err)
					}
					if concurrent {
						return netsim.NewConcurrentEngineWorkers(w.Deployment.Graph, factory, workers)
					}
					return netsim.NewEngine(w.Deployment.Graph, factory)
				}

				baseline := newRuntime(false, 0, netsim.ReplayOptions{Mode: netsim.Quiescent})
				driveRounds(t, baseline, w, netsim.ReplayOptions{Mode: netsim.Quiescent})
				base := baseline.Metrics().Snapshot()
				if n := baseline.Metrics().DroppedMessages(); n != 0 {
					t.Errorf("baseline dropped %d messages", n)
				}

				for _, v := range conformanceVariants {
					for _, run := range variantRuns(v.name, v.concurrent) {
						rt := newRuntime(v.concurrent, run.workers, v.opts)
						if conc, ok := rt.(*netsim.ConcurrentEngine); ok {
							defer conc.Close()
						}
						driveRounds(t, rt, w, v.opts)
						assertSameTraffic(t, run.name, base, rt.Metrics().Snapshot())
						assertSamePerRoundDeliveries(t, run.name, baseline.Deliveries(), rt.Deliveries())
						if n := rt.Metrics().DroppedMessages(); n != 0 {
							t.Errorf("%s dropped %d messages", run.name, n)
						}
						if wm, want := rt.Watermark(), w.Scenario.Batches*w.Scenario.RoundsPerBatch; wm != want {
							t.Errorf("%s: final watermark = %d, want %d (all rounds retired)", run.name, wm, want)
						}
					}
				}
			})
		}
	}
}

func TestEngineConformanceAllApproaches(t *testing.T) {
	for _, seed := range []int64{11, 42} {
		w, err := experiment.BuildWorkload(conformanceScenario(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range experiment.All() {
			id := id
			t.Run(fmt.Sprintf("%s/seed=%d", id, seed), func(t *testing.T) {
				seqFactory, err := experiment.FactoryFor(id, seed+7, 0)
				if err != nil {
					t.Fatal(err)
				}
				concFactory, err := experiment.FactoryFor(id, seed+7, 0)
				if err != nil {
					t.Fatal(err)
				}
				seq := netsim.NewEngine(w.Deployment.Graph, seqFactory)
				conc := netsim.NewConcurrentEngine(w.Deployment.Graph, concFactory)
				defer conc.Close()

				drive(t, seq, w)
				drive(t, conc, w)

				a, b := seq.Metrics().Snapshot(), conc.Metrics().Snapshot()
				if a.AdvertisementLoad != b.AdvertisementLoad {
					t.Errorf("advertisement load: sequential=%d concurrent=%d", a.AdvertisementLoad, b.AdvertisementLoad)
				}
				if a.SubscriptionLoad != b.SubscriptionLoad {
					t.Errorf("subscription load: sequential=%d concurrent=%d", a.SubscriptionLoad, b.SubscriptionLoad)
				}
				if a.EventLoad != b.EventLoad {
					t.Errorf("event load: sequential=%d concurrent=%d", a.EventLoad, b.EventLoad)
				}

				sd, cd := seq.Deliveries(), conc.Deliveries()
				if len(sd) == 0 {
					t.Fatalf("workload produced no deliveries; the conformance check is vacuous")
				}
				sm, cm := deliveryMultiset(sd), deliveryMultiset(cd)
				if len(sm) != len(cm) {
					t.Fatalf("delivery multisets differ in size: sequential=%d concurrent=%d", len(sm), len(cm))
				}
				for k, n := range sm {
					if cm[k] != n {
						t.Errorf("delivery %q: sequential=%d concurrent=%d", k, n, cm[k])
					}
				}
				if n := seq.Metrics().DroppedMessages(); n != 0 {
					t.Errorf("sequential engine dropped %d messages", n)
				}
				if n := conc.Metrics().DroppedMessages(); n != 0 {
					t.Errorf("concurrent engine dropped %d messages", n)
				}
			})
		}
	}
}

// aggregateConformancePlacements builds a mixed population of windowed
// aggregate queries over the workload's dominant attribute: scalar folds,
// a q-digest sketch and the ship-every-reading exact baseline, spread over
// distinct subscriber nodes and two window widths (both dividing the six
// replay rounds, so every window closes by the final watermark tick).
//
// floatSums gates the mean query. Float accumulation is not associative;
// the in-network path folds child partials in canonical child order, which
// makes sums bit-deterministic, but paths that accumulate raw relayed
// readings in arrival order (the centralized approach) stay schedule-
// dependent on the concurrent engine, so those runs drop the mean query.
func aggregateConformancePlacements(t *testing.T, w *experiment.Workload, floatSums bool) []aggPlacement {
	t.Helper()
	counts := map[model.AttributeType]int{}
	for _, s := range w.Deployment.Sensors {
		counts[s.Attr]++
	}
	var attr model.AttributeType
	for a, n := range counts {
		if attr == "" || n > counts[attr] || (n == counts[attr] && a < attr) {
			attr = a
		}
	}
	lo, hi := w.Trace.Mins[attr], w.Trace.Maxs[attr]
	if !(lo < hi) {
		lo, hi = lo-1, hi+1
	}
	filter := model.AttributeFilter{Attr: attr, Range: geom.NewInterval(lo, hi)}
	specs := []struct {
		id   model.SubscriptionID
		node topology.NodeID
		spec model.AggregateSpec
	}{
		{"agg-count", 0, model.AggregateSpec{Func: agg.Count, WindowRounds: 2}},
		{"agg-min", 5, model.AggregateSpec{Func: agg.Min, WindowRounds: 3}},
		{"agg-q16", 11, model.AggregateSpec{Func: agg.Quantile, WindowRounds: 2, Quantile: 0.5, Lo: lo, Hi: hi, Bits: 10, K: 16}},
		{"agg-exact", 17, model.AggregateSpec{Func: agg.Quantile, WindowRounds: 2, Quantile: 0.9, Exact: true}},
	}
	if floatSums {
		specs = append(specs, struct {
			id   model.SubscriptionID
			node topology.NodeID
			spec model.AggregateSpec
		}{"agg-mean", 23, model.AggregateSpec{Func: agg.Mean, WindowRounds: 2}})
	}
	out := make([]aggPlacement, 0, len(specs))
	for _, s := range specs {
		sub, err := model.NewAggregateSubscription(s.id, filter, geom.WholePlane(), s.spec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, aggPlacement{node: s.node, sub: sub})
	}
	return out
}

// TestAggregateConformanceAllApproaches extends the per-round oracle to
// windowed aggregate queries: for every approach, both engines and every
// replay variant must produce the sequential quiescent run's per-window
// aggregate results bit-for-bit — same window bounds, same value, same
// count, delivered at the same watermark round — alongside identical
// traffic totals (partial-aggregate load and bytes included) and the
// unchanged complex-event delivery multisets.
func TestAggregateConformanceAllApproaches(t *testing.T) {
	for _, seed := range []int64{11, 42} {
		w, err := experiment.BuildWorkload(conformanceScenario(seed))
		if err != nil {
			t.Fatal(err)
		}
		totalRounds := w.Scenario.Batches * w.Scenario.RoundsPerBatch
		for _, id := range experiment.All() {
			id := id
			t.Run(fmt.Sprintf("%s/seed=%d", id, seed), func(t *testing.T) {
				placements := aggregateConformancePlacements(t, w, id != experiment.Centralized)
				newRuntime := func(concurrent bool, workers int, opts netsim.ReplayOptions) netsim.Runtime {
					factory, err := experiment.FactoryForSpec(id, experiment.FactorySpec{
						Seed:           seed + 7,
						ValidityFactor: netsim.RequiredValidityFactor(opts.Mode, opts.Lag),
					})
					if err != nil {
						t.Fatal(err)
					}
					if concurrent {
						return netsim.NewConcurrentEngineWorkers(w.Deployment.Graph, factory, workers)
					}
					return netsim.NewEngine(w.Deployment.Graph, factory)
				}

				baseline := newRuntime(false, 0, netsim.ReplayOptions{Mode: netsim.Quiescent})
				driveRoundsWith(t, baseline, w, placements, netsim.ReplayOptions{Mode: netsim.Quiescent})
				base := baseline.Metrics().Snapshot()
				baseBytes := baseline.Metrics().PartialAggregateBytes()
				if n := baseline.Metrics().DroppedMessages(); n != 0 {
					t.Errorf("baseline dropped %d messages", n)
				}
				if base.PartialAggregateLoad == 0 {
					t.Fatal("baseline shipped no partial aggregates; the conformance check is vacuous")
				}
				// Every query closes exactly totalRounds/W windows, and each
				// closed window reaches its subscriber exactly once.
				perSub := map[model.SubscriptionID]int{}
				for _, d := range baseline.Deliveries() {
					if d.Aggregate != nil {
						perSub[d.SubID]++
					}
				}
				for _, p := range placements {
					if got, want := perSub[p.sub.ID], totalRounds/p.sub.Aggregate.WindowRounds; got != want {
						t.Errorf("baseline delivered %d windows for %s, want %d", got, p.sub.ID, want)
					}
				}

				for _, v := range conformanceVariants {
					for _, run := range variantRuns(v.name, v.concurrent) {
						rt := newRuntime(v.concurrent, run.workers, v.opts)
						if conc, ok := rt.(*netsim.ConcurrentEngine); ok {
							defer conc.Close()
						}
						driveRoundsWith(t, rt, w, placements, v.opts)
						assertSameTraffic(t, run.name, base, rt.Metrics().Snapshot())
						if got := rt.Metrics().PartialAggregateBytes(); got != baseBytes {
							t.Errorf("%s: partial-aggregate bytes: baseline=%d got=%d", run.name, baseBytes, got)
						}
						assertSamePerRoundDeliveries(t, run.name, baseline.Deliveries(), rt.Deliveries())
						if n := rt.Metrics().DroppedMessages(); n != 0 {
							t.Errorf("%s dropped %d messages", run.name, n)
						}
						if wm := rt.Watermark(); wm != totalRounds {
							t.Errorf("%s: final watermark = %d, want %d (all rounds retired)", run.name, wm, totalRounds)
						}
					}
				}
			})
		}
	}
}
