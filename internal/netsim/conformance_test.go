// Cross-engine conformance suite: the sequential Engine and the
// ConcurrentEngine must be observationally equivalent for every protocol
// variant — identical traffic totals and identical delivery multisets —
// over randomized seeded workloads.
//
// Two design decisions make this equivalence exact rather than statistical:
// the topologies are trees (every message follows a unique path, so each
// node processes a deterministic stream per link), and the probabilistic
// set filter derives its sampling RNG per decision from the candidate
// identity, so filtering verdicts cannot depend on how the engines
// interleave unrelated decisions.
package netsim_test

import (
	"fmt"
	"sort"
	"testing"

	"sensorcq/internal/experiment"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
)

// conformanceScenario is a small randomized workload; the seed varies the
// topology, the trace and the subscription population.
func conformanceScenario(seed int64) experiment.Scenario {
	return experiment.Scenario{
		Name:           "conformance",
		TotalNodes:     24,
		SensorNodes:    15,
		Groups:         5,
		Batches:        2,
		BatchSize:      12,
		MinAttrs:       2,
		MaxAttrs:       4,
		RoundsPerBatch: 3,
		RoundInterval:  1800,
		Seed:           seed,
	}
}

// drive replays the workload on the runtime: sensors first (sorted, like
// the experiment harness), then each subscription propagated to quiescence,
// then every event segment through the batched replay path.
func drive(t *testing.T, rt netsim.Runtime, w *experiment.Workload) {
	t.Helper()
	sensors := make([]model.Sensor, len(w.Deployment.Sensors))
	copy(sensors, w.Deployment.Sensors)
	sort.Slice(sensors, func(i, j int) bool { return sensors[i].ID < sensors[j].ID })
	for _, sensor := range sensors {
		if err := rt.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for _, p := range w.Placed {
		if err := rt.Subscribe(p.Node, p.Sub.Clone()); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for _, segment := range w.Segments {
		batch := make([]netsim.Publication, len(segment))
		for i, ev := range segment {
			batch[i] = netsim.Publication{Node: w.Deployment.SensorHost[ev.Sensor], Event: ev}
		}
		if err := rt.PublishBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	rt.Flush()
}

// deliveryMultiset canonicalizes deliveries into a multiset keyed by
// (node, subscription, sorted component sequence numbers), so engines may
// deliver in any order but must deliver the same complex events the same
// number of times.
func deliveryMultiset(ds []netsim.Delivery) map[string]int {
	m := map[string]int{}
	for _, d := range ds {
		m[fmt.Sprintf("%d|%s|%v", d.Node, d.SubID, d.Events.Seqs())]++
	}
	return m
}

// driveRounds replays the workload like drive, but pushes the event trace
// through Runtime.ReplayRounds with the given delivery mode, one ReplayRounds
// call per batch with the batch's true round structure — the replay shape the
// experiment harness and the pipelined benchmark use.
func driveRounds(t *testing.T, rt netsim.Runtime, w *experiment.Workload, mode netsim.DeliveryMode) {
	t.Helper()
	sensors := make([]model.Sensor, len(w.Deployment.Sensors))
	copy(sensors, w.Deployment.Sensors)
	sort.Slice(sensors, func(i, j int) bool { return sensors[i].ID < sensors[j].ID })
	for _, sensor := range sensors {
		if err := rt.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for _, p := range w.Placed {
		if err := rt.Subscribe(p.Node, p.Sub.Clone()); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for b := 0; b < w.Scenario.Batches; b++ {
		if err := rt.ReplayRounds(w.PublicationRounds(b), netsim.ReplayOptions{Mode: mode}); err != nil {
			t.Fatal(err)
		}
	}
	rt.Flush()
}

// perRoundMultisets groups the delivery multiset by replay round.
func perRoundMultisets(ds []netsim.Delivery) map[int]map[string]int {
	out := map[int]map[string]int{}
	for _, d := range ds {
		m := out[d.Round]
		if m == nil {
			m = map[string]int{}
			out[d.Round] = m
		}
		m[fmt.Sprintf("%d|%s|%v", d.Node, d.SubID, d.Events.Seqs())]++
	}
	return out
}

// assertSameTraffic compares the headline traffic counters of two runs.
func assertSameTraffic(t *testing.T, label string, a, b netsim.Snapshot) {
	t.Helper()
	if a.AdvertisementLoad != b.AdvertisementLoad {
		t.Errorf("%s: advertisement load: baseline=%d got=%d", label, a.AdvertisementLoad, b.AdvertisementLoad)
	}
	if a.SubscriptionLoad != b.SubscriptionLoad {
		t.Errorf("%s: subscription load: baseline=%d got=%d", label, a.SubscriptionLoad, b.SubscriptionLoad)
	}
	if a.EventLoad != b.EventLoad {
		t.Errorf("%s: event load: baseline=%d got=%d", label, a.EventLoad, b.EventLoad)
	}
}

// assertSamePerRoundDeliveries compares delivery multisets round by round.
func assertSamePerRoundDeliveries(t *testing.T, label string, base, got []netsim.Delivery) {
	t.Helper()
	bm, gm := perRoundMultisets(base), perRoundMultisets(got)
	if len(bm) == 0 {
		t.Fatalf("%s: baseline produced no deliveries; the conformance check is vacuous", label)
	}
	for round, bset := range bm {
		gset := gm[round]
		for k, n := range bset {
			if gset[k] != n {
				t.Errorf("%s: round %d delivery %q: baseline=%d got=%d", label, round, k, n, gset[k])
			}
		}
		for k, n := range gset {
			if _, ok := bset[k]; !ok {
				t.Errorf("%s: round %d delivery %q: baseline=0 got=%d", label, round, k, n)
			}
		}
	}
	for round := range gm {
		if _, ok := bm[round]; !ok {
			t.Errorf("%s: round %d has deliveries only in the pipelined run", label, round)
		}
	}
}

// TestPipelinedConformanceAllApproaches is the per-round oracle of the
// pipelined delivery mode: for every approach, a sequential pipelined run and
// a concurrent pipelined run must produce the sequential quiescent run's
// traffic totals and, round by round, the same multiset of deliveries — the
// interleaving within a round is free, the outcome of the round is not.
func TestPipelinedConformanceAllApproaches(t *testing.T) {
	for _, seed := range []int64{11, 42, 1234} {
		w, err := experiment.BuildWorkload(conformanceScenario(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range experiment.All() {
			id := id
			t.Run(fmt.Sprintf("%s/seed=%d", id, seed), func(t *testing.T) {
				newRuntime := func(concurrent bool) netsim.Runtime {
					factory, err := experiment.FactoryFor(id, seed+7, 0)
					if err != nil {
						t.Fatal(err)
					}
					if concurrent {
						return netsim.NewConcurrentEngine(w.Deployment.Graph, factory)
					}
					return netsim.NewEngine(w.Deployment.Graph, factory)
				}

				baseline := newRuntime(false)
				driveRounds(t, baseline, w, netsim.Quiescent)

				seqPipelined := newRuntime(false)
				driveRounds(t, seqPipelined, w, netsim.Pipelined)

				concPipelined := newRuntime(true)
				defer concPipelined.(*netsim.ConcurrentEngine).Close()
				driveRounds(t, concPipelined, w, netsim.Pipelined)

				base := baseline.Metrics().Snapshot()
				assertSameTraffic(t, "sequential-pipelined", base, seqPipelined.Metrics().Snapshot())
				assertSameTraffic(t, "concurrent-pipelined", base, concPipelined.Metrics().Snapshot())
				assertSamePerRoundDeliveries(t, "sequential-pipelined", baseline.Deliveries(), seqPipelined.Deliveries())
				assertSamePerRoundDeliveries(t, "concurrent-pipelined", baseline.Deliveries(), concPipelined.Deliveries())
				for name, rt := range map[string]netsim.Runtime{
					"baseline": baseline, "sequential-pipelined": seqPipelined, "concurrent-pipelined": concPipelined,
				} {
					if n := rt.Metrics().DroppedMessages(); n != 0 {
						t.Errorf("%s dropped %d messages", name, n)
					}
				}
			})
		}
	}
}

func TestEngineConformanceAllApproaches(t *testing.T) {
	for _, seed := range []int64{11, 42} {
		w, err := experiment.BuildWorkload(conformanceScenario(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range experiment.All() {
			id := id
			t.Run(fmt.Sprintf("%s/seed=%d", id, seed), func(t *testing.T) {
				seqFactory, err := experiment.FactoryFor(id, seed+7, 0)
				if err != nil {
					t.Fatal(err)
				}
				concFactory, err := experiment.FactoryFor(id, seed+7, 0)
				if err != nil {
					t.Fatal(err)
				}
				seq := netsim.NewEngine(w.Deployment.Graph, seqFactory)
				conc := netsim.NewConcurrentEngine(w.Deployment.Graph, concFactory)
				defer conc.Close()

				drive(t, seq, w)
				drive(t, conc, w)

				a, b := seq.Metrics().Snapshot(), conc.Metrics().Snapshot()
				if a.AdvertisementLoad != b.AdvertisementLoad {
					t.Errorf("advertisement load: sequential=%d concurrent=%d", a.AdvertisementLoad, b.AdvertisementLoad)
				}
				if a.SubscriptionLoad != b.SubscriptionLoad {
					t.Errorf("subscription load: sequential=%d concurrent=%d", a.SubscriptionLoad, b.SubscriptionLoad)
				}
				if a.EventLoad != b.EventLoad {
					t.Errorf("event load: sequential=%d concurrent=%d", a.EventLoad, b.EventLoad)
				}

				sd, cd := seq.Deliveries(), conc.Deliveries()
				if len(sd) == 0 {
					t.Fatalf("workload produced no deliveries; the conformance check is vacuous")
				}
				sm, cm := deliveryMultiset(sd), deliveryMultiset(cd)
				if len(sm) != len(cm) {
					t.Fatalf("delivery multisets differ in size: sequential=%d concurrent=%d", len(sm), len(cm))
				}
				for k, n := range sm {
					if cm[k] != n {
						t.Errorf("delivery %q: sequential=%d concurrent=%d", k, n, cm[k])
					}
				}
				if n := seq.Metrics().DroppedMessages(); n != 0 {
					t.Errorf("sequential engine dropped %d messages", n)
				}
				if n := conc.Metrics().DroppedMessages(); n != 0 {
					t.Errorf("concurrent engine dropped %d messages", n)
				}
			})
		}
	}
}
