package netsim

import (
	"sort"
	"sync"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// Link identifies a directed link between two neighbouring nodes.
type Link struct {
	From topology.NodeID
	To   topology.NodeID
}

// Metrics accumulates the traffic counters of one simulation run. It is safe
// for concurrent use (the concurrent engine records from many goroutines).
//
// The two headline metrics correspond directly to the paper's figures:
// SubscriptionLoad is the "number of forwarded queries" (Figs. 4, 6, 8, 10)
// and EventLoad is the "number of forwarded data units" (Figs. 5, 7, 9, 11).
type Metrics struct {
	mu sync.Mutex

	advertisementLoad int64
	subscriptionLoad  int64
	eventLoad         int64
	droppedMessages   int64

	linkSubscription map[Link]int64
	linkEvent        map[Link]int64

	// deliveredSeqs tracks, per user subscription, the set of simple-event
	// sequence numbers that reached the subscribing user as part of some
	// complex event. Recall compares it against the oracle's expectation.
	deliveredSeqs map[model.SubscriptionID]map[uint64]bool
	// complexDeliveries counts complex-event notifications per subscription.
	complexDeliveries map[model.SubscriptionID]int64
}

// NewMetrics returns an empty metrics accumulator.
func NewMetrics() *Metrics {
	return &Metrics{
		linkSubscription:  map[Link]int64{},
		linkEvent:         map[Link]int64{},
		deliveredSeqs:     map[model.SubscriptionID]map[uint64]bool{},
		complexDeliveries: map[model.SubscriptionID]int64{},
	}
}

func (m *Metrics) recordSend(from, to topology.NodeID, msg Message) {
	units := msg.Units
	if units <= 0 {
		units = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch msg.Kind {
	case KindAdvertisement:
		m.advertisementLoad += units
	case KindSubscription:
		m.subscriptionLoad += units
		m.linkSubscription[Link{From: from, To: to}] += units
	case KindEvent:
		m.eventLoad += units
		m.linkEvent[Link{From: from, To: to}] += units
	}
}

func (m *Metrics) recordDelivery(d Delivery) {
	m.mu.Lock()
	defer m.mu.Unlock()
	set := m.deliveredSeqs[d.SubID]
	if set == nil {
		set = map[uint64]bool{}
		m.deliveredSeqs[d.SubID] = set
	}
	for _, e := range d.Events {
		set[e.Seq] = true
	}
	m.complexDeliveries[d.SubID]++
}

// recordDrop counts a message an engine failed to enqueue.
func (m *Metrics) recordDrop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.droppedMessages++
}

// DroppedMessages returns the number of messages an engine failed to enqueue
// (for example a send racing engine shutdown). A run whose dropped count is
// non-zero lost traffic and must not be compared against a lossless run; the
// conformance suite asserts it is zero.
func (m *Metrics) DroppedMessages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.droppedMessages
}

// AdvertisementLoad returns the number of advertisement link traversals.
func (m *Metrics) AdvertisementLoad() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.advertisementLoad
}

// SubscriptionLoad returns the number of forwarded subscriptions/operators
// (one per link traversal).
func (m *Metrics) SubscriptionLoad() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.subscriptionLoad
}

// EventLoad returns the number of forwarded data units (simple events, one
// per link traversal).
func (m *Metrics) EventLoad() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eventLoad
}

// TotalLoad returns the sum of all three loads.
func (m *Metrics) TotalLoad() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.advertisementLoad + m.subscriptionLoad + m.eventLoad
}

// DeliveredSeqs returns a copy of the delivered event sequence numbers for
// the given user subscription.
func (m *Metrics) DeliveredSeqs(sub model.SubscriptionID) map[uint64]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[uint64]bool, len(m.deliveredSeqs[sub]))
	for k, v := range m.deliveredSeqs[sub] {
		out[k] = v
	}
	return out
}

// ComplexDeliveries returns the number of complex-event notifications
// delivered for the given subscription.
func (m *Metrics) ComplexDeliveries(sub model.SubscriptionID) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.complexDeliveries[sub]
}

// SubscriptionsWithDeliveries returns the IDs of subscriptions that received
// at least one delivery, sorted.
func (m *Metrics) SubscriptionsWithDeliveries() []model.SubscriptionID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]model.SubscriptionID, 0, len(m.deliveredSeqs))
	for id := range m.deliveredSeqs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BusiestEventLinks returns the top-n links by event units, useful for
// reports and debugging hot spots.
func (m *Metrics) BusiestEventLinks(n int) []struct {
	Link  Link
	Units int64
} {
	m.mu.Lock()
	defer m.mu.Unlock()
	type row struct {
		Link  Link
		Units int64
	}
	rows := make([]row, 0, len(m.linkEvent))
	for l, u := range m.linkEvent {
		rows = append(rows, row{Link: l, Units: u})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Units != rows[j].Units {
			return rows[i].Units > rows[j].Units
		}
		if rows[i].Link.From != rows[j].Link.From {
			return rows[i].Link.From < rows[j].Link.From
		}
		return rows[i].Link.To < rows[j].Link.To
	})
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]struct {
		Link  Link
		Units int64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Link  Link
			Units int64
		}{rows[i].Link, rows[i].Units}
	}
	return out
}

// Snapshot is an immutable copy of the headline counters, convenient for
// recording a time series during an experiment.
type Snapshot struct {
	AdvertisementLoad int64
	SubscriptionLoad  int64
	EventLoad         int64
}

// Snapshot returns the current headline counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		AdvertisementLoad: m.advertisementLoad,
		SubscriptionLoad:  m.subscriptionLoad,
		EventLoad:         m.eventLoad,
	}
}

// Diff returns the change from an earlier snapshot to this one.
func (s Snapshot) Diff(earlier Snapshot) Snapshot {
	return Snapshot{
		AdvertisementLoad: s.AdvertisementLoad - earlier.AdvertisementLoad,
		SubscriptionLoad:  s.SubscriptionLoad - earlier.SubscriptionLoad,
		EventLoad:         s.EventLoad - earlier.EventLoad,
	}
}
