package netsim

import (
	"sort"
	"sync"
	"sync/atomic"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// Link identifies a directed link between two neighbouring nodes.
type Link struct {
	From topology.NodeID
	To   topology.NodeID
}

// Metrics accumulates the traffic counters of one simulation run. It is safe
// for concurrent use: the counters and the per-subscription delivery maps
// are sharded per node, and every record path touches only the shard of the
// node doing the work — the sending node for traffic, the delivering node
// for deliveries. Each shard is written by exactly one worker goroutine of
// the concurrent engine, so the per-shard mutex is uncontended on the hot
// path (it exists so that merge-on-read accessors are race-free while a
// replay is still in flight). This is what removed the single metrics mutex
// every node used to funnel through under pipelined/windowed replay.
//
// The two headline metrics correspond directly to the paper's figures:
// SubscriptionLoad is the "number of forwarded queries" (Figs. 4, 6, 8, 10)
// and EventLoad is the "number of forwarded data units" (Figs. 5, 7, 9, 11).
type Metrics struct {
	shards  []metricsShard
	dropped atomic.Int64
}

// metricsShard holds one node's slice of every counter. The trailing pad
// keeps neighbouring shards out of each other's cache lines, so per-node
// writers do not false-share.
type metricsShard struct {
	mu sync.Mutex

	advertisementLoad  int64
	subscriptionLoad   int64
	unsubscriptionLoad int64
	eventLoad          int64

	// partialAggregateLoad counts link traversals of windowed partial
	// aggregates (and of the exact baseline's relayed raw readings);
	// partialAggregateBytes accumulates their encoded wire sizes, the unit
	// of the bytes-upstream axis of the error-vs-traffic experiment. Both
	// are deliberately kept out of eventLoad so the paper's data-unit
	// figures are unaffected by aggregate queries.
	partialAggregateLoad  int64
	partialAggregateBytes int64

	linkSubscription map[Link]int64
	linkEvent        map[Link]int64

	// eventLoadByRound and subscriptionLoadByRound split the event and
	// subscription loads by lineage round (the replay round whose dispatch
	// cascade produced the send, the same attribution the watermark ledger
	// uses), indexed by round number. They let the experiment harness
	// attribute traffic to round ranges without draining the network to
	// take a snapshot between batches — which is what allows a windowed
	// replay to keep rounds in flight across batch boundaries. Subscription
	// injections joining an open session are stamped with the round current
	// at injection, so a batch subscribed between two replay calls is
	// attributed entirely to the boundary round.
	eventLoadByRound        []int64
	subscriptionLoadByRound []int64

	// deliveredSeqs tracks, per user subscription, the set of simple-event
	// sequence numbers that reached the subscribing user as part of some
	// complex event. Recall compares it against the oracle's expectation.
	deliveredSeqs map[model.SubscriptionID]map[uint64]bool
	// complexDeliveries counts complex-event notifications per subscription.
	complexDeliveries map[model.SubscriptionID]int64

	_ [64]byte
}

// NewMetrics returns an empty metrics accumulator with one shard per node.
func NewMetrics(nodes int) *Metrics {
	if nodes < 1 {
		nodes = 1
	}
	m := &Metrics{shards: make([]metricsShard, nodes)}
	for i := range m.shards {
		s := &m.shards[i]
		s.linkSubscription = map[Link]int64{}
		s.linkEvent = map[Link]int64{}
		s.deliveredSeqs = map[model.SubscriptionID]map[uint64]bool{}
		s.complexDeliveries = map[model.SubscriptionID]int64{}
	}
	return m
}

// shardFor returns the shard owned by the given node (clamped for safety:
// records must never be lost to an out-of-range attribution).
func (m *Metrics) shardFor(node topology.NodeID) *metricsShard {
	i := int(node)
	if i < 0 || i >= len(m.shards) {
		i = 0
	}
	return &m.shards[i]
}

func (m *Metrics) recordSend(from, to topology.NodeID, msg Message, round int) {
	units := msg.Units
	if units <= 0 {
		units = 1
	}
	s := m.shardFor(from)
	s.mu.Lock()
	defer s.mu.Unlock()
	switch msg.Kind {
	case KindAdvertisement:
		s.advertisementLoad += units
	case KindSubscription:
		s.subscriptionLoad += units
		s.linkSubscription[Link{From: from, To: to}] += units
		s.subscriptionLoadByRound = addByRound(s.subscriptionLoadByRound, round, units)
	case KindUnsubscription:
		s.unsubscriptionLoad += units
	case KindEvent:
		s.eventLoad += units
		s.linkEvent[Link{From: from, To: to}] += units
		s.eventLoadByRound = addByRound(s.eventLoadByRound, round, units)
	case KindPartialAggregate:
		s.partialAggregateLoad += units
		s.partialAggregateBytes += units * encodedAggBytes(msg.Agg)
	}
}

// rawReadingBytes is the accounted wire size of one relayed raw reading
// (attribute tag, value, location, round stamp) in the exact
// ship-every-reading baseline.
const rawReadingBytes = 32

// encodedAggBytes returns the accounted wire size of one partial-aggregate
// message.
func encodedAggBytes(pa *PartialAggregate) int64 {
	if pa == nil {
		return 0
	}
	if pa.Raw || pa.State == nil {
		return rawReadingBytes
	}
	return int64(pa.State.EncodedSize())
}

// addByRound accumulates units into the per-round counter slice, growing it
// on demand. New rounds first re-expose spare capacity (left behind by the
// doubled-capacity growth below, or reserved up front by reserveRounds) and
// only reallocate when none is left, so steady-state replay rounds cost no
// allocations at all once the slice has been sized.
func addByRound(byRound []int64, round int, units int64) []int64 {
	if round < 0 {
		return byRound
	}
	if round >= len(byRound) {
		if round < cap(byRound) {
			grown := byRound[:round+1]
			// The spare region is zero today (append-only growth from zeroed
			// makes), but zero it explicitly so the counter stays correct if
			// a reset path ever truncates the slice.
			for i := len(byRound); i <= round; i++ {
				grown[i] = 0
			}
			byRound = grown
		} else {
			grown := make([]int64, round+1, 2*(round+1))
			copy(grown, byRound)
			byRound = grown
		}
	}
	byRound[round] += units
	return byRound
}

// reserveRounds grows every shard's per-round counters to hold at least n
// rounds of capacity, so a replay of known length records round attributions
// without reallocating mid-flight.
func (m *Metrics) reserveRounds(n int) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		s.eventLoadByRound = growRoundsCap(s.eventLoadByRound, n)
		s.subscriptionLoadByRound = growRoundsCap(s.subscriptionLoadByRound, n)
		s.mu.Unlock()
	}
}

func growRoundsCap(byRound []int64, n int) []int64 {
	if n <= cap(byRound) {
		return byRound
	}
	grown := make([]int64, len(byRound), n)
	copy(grown, byRound)
	return grown
}

// sumRounds folds byRound[lo..hi] (clamped to the recorded range).
func sumRounds(byRound []int64, lo, hi int) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(byRound)-1 {
		hi = len(byRound) - 1
	}
	var total int64
	for r := lo; r <= hi; r++ {
		total += byRound[r]
	}
	return total
}

func (m *Metrics) recordDelivery(d Delivery) {
	s := m.shardFor(d.Node)
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.deliveredSeqs[d.SubID]
	if set == nil {
		set = map[uint64]bool{}
		s.deliveredSeqs[d.SubID] = set
	}
	for _, e := range d.Events {
		set[e.Seq] = true
	}
	s.complexDeliveries[d.SubID]++
}

// recordDrop counts a message an engine failed to enqueue.
func (m *Metrics) recordDrop() { m.dropped.Add(1) }

// evictSubscription releases one subscription's delivery maps across every
// shard: the delivered-sequence set (the big one — it grows with every
// distinct component delivered) and the notification counter. Traffic
// counters are untouched.
func (m *Metrics) evictSubscription(sub model.SubscriptionID) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		delete(s.deliveredSeqs, sub)
		delete(s.complexDeliveries, sub)
		s.mu.Unlock()
	}
}

// DroppedMessages returns the number of messages an engine failed to enqueue
// (for example a send racing engine shutdown). A run whose dropped count is
// non-zero lost traffic and must not be compared against a lossless run; the
// conformance suite asserts it is zero.
func (m *Metrics) DroppedMessages() int64 { return m.dropped.Load() }

// sum folds one int64 field across every shard.
func (m *Metrics) sum(get func(*metricsShard) int64) int64 {
	var total int64
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		total += get(s)
		s.mu.Unlock()
	}
	return total
}

// AdvertisementLoad returns the number of advertisement link traversals.
func (m *Metrics) AdvertisementLoad() int64 {
	return m.sum(func(s *metricsShard) int64 { return s.advertisementLoad })
}

// SubscriptionLoad returns the number of forwarded subscriptions/operators
// (one per link traversal).
func (m *Metrics) SubscriptionLoad() int64 {
	return m.sum(func(s *metricsShard) int64 { return s.subscriptionLoad })
}

// UnsubscriptionLoad returns the number of forwarded retraction messages
// (one per link traversal). Retractions are control traffic generated by
// Unsubscribe; they are accounted separately so that the paper's
// subscription-load figures are unaffected by churn.
func (m *Metrics) UnsubscriptionLoad() int64 {
	return m.sum(func(s *metricsShard) int64 { return s.unsubscriptionLoad })
}

// EventLoad returns the number of forwarded data units (simple events, one
// per link traversal).
func (m *Metrics) EventLoad() int64 {
	return m.sum(func(s *metricsShard) int64 { return s.eventLoad })
}

// PartialAggregateLoad returns the number of forwarded windowed partial
// aggregates (one per link traversal; the exact baseline's relayed raw
// readings count here too). Accounted separately from EventLoad.
func (m *Metrics) PartialAggregateLoad() int64 {
	return m.sum(func(s *metricsShard) int64 { return s.partialAggregateLoad })
}

// PartialAggregateBytes returns the accumulated encoded wire size of every
// forwarded partial aggregate — the bytes-upstream axis of the
// error-vs-traffic experiment.
func (m *Metrics) PartialAggregateBytes() int64 {
	return m.sum(func(s *metricsShard) int64 { return s.partialAggregateBytes })
}

// EventLoadForRounds returns the number of forwarded data units attributed
// to lineage rounds lo..hi inclusive. Lineage attribution matches the
// watermark ledger's: a send performed while dispatching round-r work counts
// towards round r, whatever round the event payload was injected in. Under
// quiescent and pipelined replay the network drains between rounds, so the
// sum over a round range equals the snapshot difference across it; under
// windowed replay it is the only exact per-range accounting, since rounds
// overlap and no quiescent instant exists to snapshot at.
func (m *Metrics) EventLoadForRounds(lo, hi int) int64 {
	var total int64
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		total += sumRounds(s.eventLoadByRound, lo, hi)
		s.mu.Unlock()
	}
	return total
}

// SubscriptionLoadForRounds returns the number of forwarded subscriptions
// and operators attributed to lineage rounds lo..hi inclusive. Subscription
// injections are stamped with the round current at injection, so the
// cumulative subscription load after a batch injected at round boundary r is
// SubscriptionLoadForRounds(0, r) — exact even while later rounds are still
// in flight in an open windowed session.
func (m *Metrics) SubscriptionLoadForRounds(lo, hi int) int64 {
	var total int64
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		total += sumRounds(s.subscriptionLoadByRound, lo, hi)
		s.mu.Unlock()
	}
	return total
}

// TotalLoad returns the sum of all loads.
func (m *Metrics) TotalLoad() int64 {
	return m.sum(func(s *metricsShard) int64 {
		return s.advertisementLoad + s.subscriptionLoad + s.unsubscriptionLoad + s.eventLoad
	})
}

// DeliveredSeqs returns a copy of the delivered event sequence numbers for
// the given user subscription, merged across every node's shard.
func (m *Metrics) DeliveredSeqs(sub model.SubscriptionID) map[uint64]bool {
	out := map[uint64]bool{}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for k, v := range s.deliveredSeqs[sub] {
			out[k] = v
		}
		s.mu.Unlock()
	}
	return out
}

// ComplexDeliveries returns the number of complex-event notifications
// delivered for the given subscription.
func (m *Metrics) ComplexDeliveries(sub model.SubscriptionID) int64 {
	return m.sum(func(s *metricsShard) int64 { return s.complexDeliveries[sub] })
}

// SubscriptionsWithDeliveries returns the IDs of subscriptions that received
// at least one delivery, sorted.
func (m *Metrics) SubscriptionsWithDeliveries() []model.SubscriptionID {
	seen := map[model.SubscriptionID]bool{}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for id := range s.deliveredSeqs {
			seen[id] = true
		}
		s.mu.Unlock()
	}
	out := make([]model.SubscriptionID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BusiestEventLinks returns the top-n links by event units, useful for
// reports and debugging hot spots.
func (m *Metrics) BusiestEventLinks(n int) []struct {
	Link  Link
	Units int64
} {
	merged := map[Link]int64{}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for l, u := range s.linkEvent {
			merged[l] += u
		}
		s.mu.Unlock()
	}
	type row struct {
		Link  Link
		Units int64
	}
	rows := make([]row, 0, len(merged))
	for l, u := range merged {
		rows = append(rows, row{Link: l, Units: u})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Units != rows[j].Units {
			return rows[i].Units > rows[j].Units
		}
		if rows[i].Link.From != rows[j].Link.From {
			return rows[i].Link.From < rows[j].Link.From
		}
		return rows[i].Link.To < rows[j].Link.To
	})
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]struct {
		Link  Link
		Units int64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Link  Link
			Units int64
		}{rows[i].Link, rows[i].Units}
	}
	return out
}

// Snapshot is an immutable copy of the headline counters, convenient for
// recording a time series during an experiment.
type Snapshot struct {
	AdvertisementLoad    int64
	SubscriptionLoad     int64
	UnsubscriptionLoad   int64
	EventLoad            int64
	PartialAggregateLoad int64
}

// Snapshot returns the current headline counters (merged across shards).
func (m *Metrics) Snapshot() Snapshot {
	var snap Snapshot
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		snap.AdvertisementLoad += s.advertisementLoad
		snap.SubscriptionLoad += s.subscriptionLoad
		snap.UnsubscriptionLoad += s.unsubscriptionLoad
		snap.EventLoad += s.eventLoad
		snap.PartialAggregateLoad += s.partialAggregateLoad
		s.mu.Unlock()
	}
	return snap
}

// Diff returns the change from an earlier snapshot to this one.
func (s Snapshot) Diff(earlier Snapshot) Snapshot {
	return Snapshot{
		AdvertisementLoad:    s.AdvertisementLoad - earlier.AdvertisementLoad,
		SubscriptionLoad:     s.SubscriptionLoad - earlier.SubscriptionLoad,
		UnsubscriptionLoad:   s.UnsubscriptionLoad - earlier.UnsubscriptionLoad,
		EventLoad:            s.EventLoad - earlier.EventLoad,
		PartialAggregateLoad: s.PartialAggregateLoad - earlier.PartialAggregateLoad,
	}
}
