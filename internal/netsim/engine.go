package netsim

import (
	"context"
	"fmt"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// Runtime is the interface shared by the sequential and concurrent engines.
// The experiment harness and the public facade are written against it.
type Runtime interface {
	// AttachSensor attaches a sensor to a node; the node's protocol handler
	// reacts by advertising it (Algorithm 1).
	AttachSensor(node topology.NodeID, sensor model.Sensor) error
	// Subscribe registers a user subscription at a node.
	Subscribe(node topology.NodeID, sub *model.Subscription) error
	// Unsubscribe retracts a subscription previously registered at the node.
	// The retraction propagates network-wide: every node that stored or
	// forwarded one of the subscription's operators removes it and releases
	// the associated routing state. Unsubscribing an ID that was never
	// registered at the node is a silent no-op (the injection is processed,
	// nothing matches).
	Unsubscribe(node topology.NodeID, id model.SubscriptionID) error
	// Publish injects a sensor reading at the node hosting the sensor.
	Publish(node topology.NodeID, ev model.Event) error
	// PublishBatch injects a trace of sensor readings in order. Each event
	// is fully propagated before the next one is injected — the observable
	// behaviour (traffic totals, deliveries) is identical to calling
	// Publish per event — but the engine validates the batch up front and
	// amortizes per-call queue management, so trace replay should prefer
	// it. A batch is rejected as a whole when any target node is unknown.
	// The batch counts as one replay round (deliveries are stamped with
	// it); it is equivalent to ReplayRounds with a single quiescent round.
	PublishBatch(batch []Publication) error
	// SubscribeContext registers a user subscription at a node and waits
	// until it has fully propagated through the network. Cancellation aborts
	// the wait with the context's error; the engine then enqueues a
	// compensating retraction behind the registration (per-link FIFO order
	// guarantees the retraction observes every forwarding link the
	// registration recorded), so the network converges to the
	// not-subscribed state without further blocking the caller. While a
	// windowed session is open the registration joins the in-flight stream
	// and the call does not wait.
	SubscribeContext(ctx context.Context, node topology.NodeID, sub *model.Subscription) error
	// PublishContext injects a sensor reading and waits until it has fully
	// propagated. Cancellation aborts the wait with the context's error;
	// the event itself is not recalled — deliveries it causes still happen
	// (they complete on a later drain, or concurrently on the concurrent
	// engine). While a windowed session is open the event joins the
	// in-flight stream and the call does not wait.
	PublishContext(ctx context.Context, node topology.NodeID, ev model.Event) error
	// ReplayRounds injects a trace structured as rounds of events, under
	// the delivery semantics selected by opts: Quiescent drains the
	// network after every single event (the conformance baseline),
	// Pipelined injects a whole round before draining, and Windowed lets
	// up to opts.Lag+1 rounds overlap in flight, gating each injection on
	// the network watermark (see watermark.go). Every round advances the
	// engine's round counter; deliveries are stamped with the round of
	// their newest component event. The whole trace is validated up front;
	// an unknown target node rejects it before any event enters the
	// network.
	ReplayRounds(rounds [][]Publication, opts ReplayOptions) error
	// ReplayRoundsContext is ReplayRounds with cancellation: the context is
	// checked between dispatch bursts (sequential engine) and wakes any
	// blocked drain or watermark wait (concurrent engine), so a stuck or
	// long replay can be abandoned mid-round with the context's error.
	// Work already injected keeps propagating; a cancelled windowed replay
	// leaves its session open — in flight rounds stay in flight — and an
	// explicit Flush (or FlushContext) drains and closes it.
	ReplayRoundsContext(ctx context.Context, rounds [][]Publication, opts ReplayOptions) error
	// Flush processes messages until the network is quiescent.
	Flush()
	// FlushContext is Flush with cancellation: it drains until the network
	// is quiescent or the context is done, whichever comes first, and
	// returns the context's error on cancellation (leaving the remaining
	// work queued or in flight for a later drain). A nil error means the
	// network is quiescent, with the same session-closing side effects as
	// Flush.
	FlushContext(ctx context.Context) error
	// Metrics returns the run's traffic and delivery counters.
	Metrics() *Metrics
	// Deliveries returns every complex-event delivery recorded so far, in
	// delivery order (sequential engine) or an arbitrary order (concurrent).
	Deliveries() []Delivery
	// DeliveriesFor returns the deliveries of one subscription, served from
	// the per-subscription delivery maps rather than a scan over the whole
	// log: the cost is proportional to the subscription's own deliveries,
	// not to the total delivered by the run.
	DeliveriesFor(id model.SubscriptionID) []Delivery
	// EvictDeliveries releases the per-subscription delivery-map entries of
	// the given subscription — the DeliveriesFor index and the delivered
	// sequence/notification counters — so a retracted subscription's history
	// does not stay resident for the lifetime of the run. The system-wide
	// delivery log (Deliveries) is unaffected. Serving layers call it on
	// unsubscribe; callers that want the pull log to outlive the
	// subscription simply do not.
	EvictDeliveries(id model.SubscriptionID)
	// SetDeliveryObserver installs a function invoked for every delivery as
	// it is recorded (push delivery). The observer runs on the delivering
	// node's dispatch path — the sequential engine's caller goroutine or a
	// concurrent worker — so it must be fast and must not call back into the
	// runtime. Install it before any event enters the network; nil removes
	// it.
	SetDeliveryObserver(fn func(Delivery))
	// Handler returns the protocol handler of a node (nil for unknown
	// nodes). White-box protocol tests use it to inspect per-node state on
	// either engine; for the concurrent engine the caller must Flush first
	// so no worker goroutine is touching the handler.
	Handler(node topology.NodeID) Handler
	// Watermark returns the network low-watermark: the highest replay round
	// whose work (injections and every message transitively produced by
	// them) has been fully processed. Outside a windowed replay the network
	// is drained between rounds, so the watermark equals the round counter.
	Watermark() int
}

// queued is one in-flight item: either a link message or a local injection.
type queued struct {
	to   topology.NodeID
	from topology.NodeID
	msg  Message

	// round is the lineage round of the item: the replay round being
	// injected (injections), or the round of the item whose dispatch
	// produced the message. Watermark accounting retires a round when no
	// item of that lineage remains in flight.
	round int

	// Local injections (from == to) use the fields below instead of msg.
	injection injectionKind
	sensor    model.Sensor
	sub       *model.Subscription
	unsub     model.SubscriptionID
	ev        model.Event

	// wm is the watermark value an injectionTick item announces. Tick items
	// (and the close cascades they trigger) carry lineage round 0, which the
	// watermark accounting never consults — the watermark gates on replay
	// rounds >= 1 — so closing a window cannot hold back the very watermark
	// that closed it.
	wm int
}

type injectionKind int

const (
	injectionNone injectionKind = iota
	injectionSensor
	injectionSubscribe
	injectionUnsubscribe
	injectionPublish
	// injectionTick announces an advanced network watermark to one node
	// (see WatermarkHandler). Ticks are only generated while at least one
	// aggregate subscription is registered.
	injectionTick
)

// Engine is the deterministic sequential engine: messages are processed in
// FIFO order in the caller's goroutine. Given identical inputs it produces
// identical traffic counts, which is what the experiment harness and the
// regression tests rely on.
type Engine struct {
	graph      *topology.Graph
	handlers   []Handler
	ctxs       []*Context
	metrics    *Metrics
	queue      []queued
	head       int
	flushing   bool
	deliveries []Delivery
	// delivBySub indexes deliveries per subscription (positions into the
	// deliveries log), so DeliveriesFor is proportional to one
	// subscription's deliveries rather than the whole log.
	delivBySub map[model.SubscriptionID][]int
	observer   func(Delivery)
	round      int

	// ledger tracks per-round in-flight counts during a windowed replay
	// (nil otherwise); see watermark.go.
	ledger *roundLedger

	// aggTicks is set when an aggregate subscription registers; it gates all
	// watermark-tick work so replays without aggregate queries keep their
	// zero-allocation steady state. ticked is the highest watermark already
	// announced to the nodes.
	aggTicks bool
	ticked   int
}

var _ Runtime = (*Engine)(nil)

// NewEngine builds a sequential engine over the given topology, creating one
// handler per node with the factory.
func NewEngine(graph *topology.Graph, factory HandlerFactory) *Engine {
	e := &Engine{
		graph:      graph,
		handlers:   make([]Handler, graph.NumNodes()),
		ctxs:       make([]*Context, graph.NumNodes()),
		metrics:    NewMetrics(graph.NumNodes()),
		delivBySub: map[model.SubscriptionID][]int{},
	}
	for n := 0; n < graph.NumNodes(); n++ {
		id := topology.NodeID(n)
		e.handlers[n] = factory(id)
		e.ctxs[n] = &Context{self: id, graph: graph, metrics: e.metrics, out: e}
		e.handlers[n].Init(e.ctxs[n])
	}
	return e
}

// Metrics implements Runtime.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Deliveries implements Runtime.
func (e *Engine) Deliveries() []Delivery {
	out := make([]Delivery, len(e.deliveries))
	copy(out, e.deliveries)
	return out
}

// DeliveriesFor implements Runtime: the per-subscription index makes this
// proportional to the subscription's own deliveries.
func (e *Engine) DeliveriesFor(id model.SubscriptionID) []Delivery {
	idxs := e.delivBySub[id]
	if len(idxs) == 0 {
		return nil
	}
	out := make([]Delivery, len(idxs))
	for i, pos := range idxs {
		out[i] = e.deliveries[pos]
	}
	return out
}

// SetDeliveryObserver implements Runtime.
func (e *Engine) SetDeliveryObserver(fn func(Delivery)) { e.observer = fn }

// EvictDeliveries implements Runtime: the subscription's entry in the
// per-subscription delivery index and its metric maps are released; the
// append-only delivery log keeps its entries.
func (e *Engine) EvictDeliveries(id model.SubscriptionID) {
	delete(e.delivBySub, id)
	e.metrics.evictSubscription(id)
}

// Handler returns the protocol handler of a node (used by white-box tests).
func (e *Engine) Handler(n topology.NodeID) Handler {
	if n < 0 || int(n) >= len(e.handlers) {
		return nil
	}
	return e.handlers[n]
}

// Watermark implements Runtime. During a windowed replay it is the ledger's
// watermark; otherwise the engine drains between rounds, so every injected
// round is retired and the watermark is the round counter itself.
func (e *Engine) Watermark() int {
	if e.ledger != nil {
		return e.ledger.watermark()
	}
	return e.round
}

// Preallocate sizes the engine's append-only stores to absorb roughly mult
// repetitions of the work observed so far without growing: the delivery log
// and its per-subscription index, each node's delivery arena, and the
// metrics' per-round counters. Steady-state replay loops (benchmarks, long
// experiment phases of known shape) call it after a warm-up pass so the
// measured iterations allocate nothing; it is never required for
// correctness, and a workload that outgrows the reservation simply falls
// back to on-demand growth.
func (e *Engine) Preallocate(mult int) {
	if mult < 1 {
		return
	}
	if n := len(e.deliveries) * (mult + 1); n > cap(e.deliveries) {
		grown := make([]Delivery, len(e.deliveries), n)
		copy(grown, e.deliveries)
		e.deliveries = grown
	}
	for id, idxs := range e.delivBySub {
		if n := len(idxs) * (mult + 1); n > cap(idxs) {
			grown := make([]int, len(idxs), n)
			copy(grown, idxs)
			e.delivBySub[id] = grown
		}
	}
	perNode := make([]int, len(e.ctxs))
	for _, d := range e.deliveries {
		if i := int(d.Node); i >= 0 && i < len(perNode) {
			perNode[i] += len(d.Events)
		}
	}
	for i, c := range e.ctxs {
		if n := perNode[i] * mult; n > 0 {
			c.arena.reserve(n)
		}
	}
	e.metrics.reserveRounds((e.round + 1) * (mult + 1))
}

func (e *Engine) validNode(n topology.NodeID) error {
	if n < 0 || int(n) >= len(e.handlers) {
		return fmt.Errorf("netsim: unknown node %d", n)
	}
	return nil
}

// AttachSensor implements Runtime. The injection is processed (and the
// resulting advertisement flood drained) before it returns — unless a
// windowed session is open (KeepOpen), in which case the injection joins
// the in-flight stream at the current round.
func (e *Engine) AttachSensor(node topology.NodeID, sensor model.Sensor) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	e.push(queued{to: node, from: node, injection: injectionSensor, sensor: sensor, round: e.round})
	if e.ledger == nil {
		e.Flush()
	}
	return nil
}

// Subscribe implements Runtime; the subscription is fully propagated before
// it returns, except while a windowed session is open (KeepOpen): then it
// joins the in-flight stream at the current round and propagates alongside
// the replay traffic, without draining the network first.
func (e *Engine) Subscribe(node topology.NodeID, sub *model.Subscription) error {
	return e.SubscribeContext(context.Background(), node, sub)
}

// SubscribeContext implements Runtime. On this engine the propagation drain
// runs in the caller's goroutine, so cancellation takes effect between
// dispatch steps: the remaining propagation work stays queued (the next
// drain completes it) and a compensating retraction is queued behind it.
func (e *Engine) SubscribeContext(ctx context.Context, node topology.NodeID, sub *model.Subscription) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := e.validNode(node); err != nil {
		return err
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	if sub.Aggregate != nil {
		e.aggTicks = true
	}
	e.push(queued{to: node, from: node, injection: injectionSubscribe, sub: sub, round: e.round})
	if e.ledger != nil {
		return nil
	}
	if err := e.drainCtx(ctx); err != nil {
		// Compensating retraction: FIFO order puts it behind every item of
		// the registration's propagation, so by the time it is dispatched
		// each node has recorded the forwarding links the walk retracts.
		e.push(queued{to: node, from: node, injection: injectionUnsubscribe, unsub: sub.ID, round: e.round})
		return err
	}
	return nil
}

// Unsubscribe implements Runtime; the retraction is fully propagated (every
// node on the subscription's forwarding paths has released its state) before
// it returns.
func (e *Engine) Unsubscribe(node topology.NodeID, id model.SubscriptionID) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	if id == "" {
		return fmt.Errorf("netsim: empty subscription ID")
	}
	e.push(queued{to: node, from: node, injection: injectionUnsubscribe, unsub: id, round: e.round})
	if e.ledger == nil {
		e.Flush()
	}
	return nil
}

// Publish implements Runtime; the event is fully propagated before it
// returns.
func (e *Engine) Publish(node topology.NodeID, ev model.Event) error {
	return e.PublishContext(context.Background(), node, ev)
}

// PublishContext implements Runtime. Cancellation stops the propagation
// drain between dispatch steps; the event and whatever it has already caused
// stay queued and complete on the next drain.
func (e *Engine) PublishContext(ctx context.Context, node topology.NodeID, ev model.Event) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := e.validNode(node); err != nil {
		return err
	}
	ev.Round = e.round
	e.push(queued{to: node, from: node, injection: injectionPublish, ev: ev, round: e.round})
	if e.ledger == nil {
		return e.drainCtx(ctx)
	}
	return nil
}

// PublishBatch implements Runtime: the whole batch is validated first, then
// every event is injected and fully propagated in order, reusing the queue
// storage across events.
func (e *Engine) PublishBatch(batch []Publication) error {
	return e.ReplayRounds([][]Publication{batch}, ReplayOptions{Mode: Quiescent})
}

// ReplayRounds implements Runtime. On the sequential engine every mode is
// deterministic; they differ in interleaving only. Quiescent fully drains
// after each event; Pipelined enqueues a whole round before draining it
// FIFO; Windowed additionally overlaps rounds — round r+1..r+Lag are
// enqueued while round r's items are still being worked off the FIFO queue,
// gated on the same watermark the concurrent engine uses.
func (e *Engine) ReplayRounds(rounds [][]Publication, opts ReplayOptions) error {
	return e.ReplayRoundsContext(context.Background(), rounds, opts)
}

// ReplayRoundsContext implements Runtime: ReplayRounds with the drains made
// cancellable. Cancellation takes effect between dispatch steps; already
// injected work stays queued, and a cancelled windowed replay leaves its
// session open (Flush drains and closes it).
func (e *Engine) ReplayRoundsContext(ctx context.Context, rounds [][]Publication, opts ReplayOptions) error {
	if err := opts.validate(); err != nil {
		return err
	}
	for _, round := range rounds {
		for _, p := range round {
			if err := e.validNode(p.Node); err != nil {
				return err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if opts.Mode == Windowed {
		return e.replayWindowed(ctx, rounds, opts.Lag, opts.KeepOpen)
	}
	if e.ledger != nil {
		return fmt.Errorf("netsim: %v replay rejected while a windowed session is open (Flush to close it)", opts.Mode)
	}
	for _, round := range rounds {
		e.round++
		switch opts.Mode {
		case Quiescent:
			for _, p := range round {
				e.pushPublication(p, e.round)
				if err := e.drainCtx(ctx); err != nil {
					return err
				}
			}
		case Pipelined:
			for _, p := range round {
				e.pushPublication(p, e.round)
			}
			if err := e.drainCtx(ctx); err != nil {
				return err
			}
		}
		// The round is drained, so the watermark advanced: announce it and
		// drain the window-close cascades it triggers.
		if e.maybeTick() {
			if err := e.drainCtx(ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// replayWindowed is the bounded-lag replay: before injecting round r it
// drains the FIFO queue only until the watermark reaches r-1-lag, so up to
// lag+1 rounds of items interleave on the queue. With lag 0 the drain runs
// to quiescence before each injection — exactly the Pipelined schedule.
//
// When a session ledger is already live (a previous KeepOpen call), the
// replay continues it: the first new round overlaps the open session's
// trailing rounds under the same watermark gate. With keepOpen the trailing
// rounds are left in flight and the ledger stays live; Flush closes the
// session.
func (e *Engine) replayWindowed(ctx context.Context, rounds [][]Publication, lag int, keepOpen bool) error {
	led := e.ledger
	if led == nil {
		led = newRoundLedger(e.round)
		e.ledger = led
	}
	for _, round := range rounds {
		r := e.round + 1
		if err := e.drainUntil(ctx, led, r-1-lag); err != nil {
			// Cancelled at the watermark gate: the session stays open with
			// its in-flight rounds; Flush drains and closes it.
			return err
		}
		// The gate advanced the watermark; enqueue ticks before round r's
		// events so nodes observe the watermark in FIFO order with the
		// in-flight stream (no forced drain — close cascades interleave with
		// the replay like any other windowed work).
		e.maybeTick()
		e.round = r
		for _, p := range round {
			e.pushPublication(p, r)
		}
		led.markInjected(r)
	}
	if keepOpen {
		return nil
	}
	return e.drainAndTick(ctx)
}

// pushPublication enqueues one replayed event stamped with its round.
func (e *Engine) pushPublication(p Publication, round int) {
	ev := p.Event
	ev.Round = round
	e.push(queued{to: p.Node, from: p.Node, injection: injectionPublish, ev: ev, round: round})
}

// push appends an item to the FIFO queue, accounting it in the windowed
// ledger when one is active.
func (e *Engine) push(item queued) {
	if e.ledger != nil {
		e.ledger.add(item.round)
	}
	e.queue = append(e.queue, item)
}

// drainCheckMask paces the context checks of the cancellable drains: the
// context is consulted once per (mask+1) dispatched items, so a background
// context costs one predictable nil check per burst rather than one per
// message.
const drainCheckMask = 255

// drainUntil dispatches queued items in FIFO order until the ledger's
// watermark reaches the target (a no-op when it already has) or the context
// is cancelled, in which case the remaining items stay queued and the
// context's error is returned.
func (e *Engine) drainUntil(ctx context.Context, led *roundLedger, target int) error {
	if e.flushing {
		return nil
	}
	e.flushing = true
	for n := 0; led.watermark() < target && e.head < len(e.queue); n++ {
		if n&drainCheckMask == 0 && ctx.Err() != nil {
			e.compact()
			e.flushing = false
			return ctx.Err()
		}
		e.step()
	}
	e.compact()
	e.flushing = false
	return nil
}

// Flush implements Runtime: it processes queued messages in FIFO order until
// none remain. The queue's backing array is retained and reused across
// flushes, so a long replay does not reallocate it per event. A live
// windowed session (KeepOpen) is closed: after the drain no round is in
// flight, so the ledger is retired and the next ReplayRounds starts fresh.
//
// Dispatched items stay in the queue until the drain completes, so a nested
// Flush (a handler calling back into the engine mid-dispatch — nothing does
// today) must not re-drain; it returns immediately and leaves the work to
// the outer drain, which also picks up anything enqueued in between.
func (e *Engine) Flush() {
	_ = e.drainAndTick(context.Background())
}

// FlushContext implements Runtime: the full drain of Flush, abandoned
// between dispatch steps when the context is cancelled. On cancellation the
// remaining items stay queued (a later drain completes them), a live
// windowed session stays open, and the context's error is returned.
func (e *Engine) FlushContext(ctx context.Context) error {
	return e.drainAndTick(ctx)
}

// maybeTick enqueues one watermark tick per node when the watermark advanced
// past the last announced value, reporting whether it did. Ticks are gated
// on aggTicks: without aggregate subscriptions no tick is ever queued, so
// plain replays pay a single branch here.
func (e *Engine) maybeTick() bool {
	if !e.aggTicks {
		return false
	}
	wm := e.Watermark()
	if wm <= e.ticked {
		return false
	}
	e.ticked = wm
	for n := range e.handlers {
		id := topology.NodeID(n)
		e.push(queued{to: id, from: id, injection: injectionTick, wm: wm})
	}
	return true
}

// drainAndTick fully drains the network, then announces the advanced
// watermark and drains the window-close cascades the ticks trigger, until no
// further tick is due. Entry points that leave the network quiescent route
// through it so an aggregate window never stays open once the watermark has
// passed its end.
func (e *Engine) drainAndTick(ctx context.Context) error {
	if err := e.drainCtx(ctx); err != nil {
		return err
	}
	for e.maybeTick() {
		if err := e.drainCtx(ctx); err != nil {
			return err
		}
	}
	return nil
}

// drainCtx processes queued messages in FIFO order until none remain or the
// context is cancelled. A full drain retires a live windowed session exactly
// like Flush always has; a cancelled one leaves the queue and the session
// ledger in place for the next drain.
func (e *Engine) drainCtx(ctx context.Context) error {
	if e.flushing {
		return nil
	}
	e.flushing = true
	for n := 0; e.head < len(e.queue); n++ {
		if n&drainCheckMask == 0 && ctx.Err() != nil {
			e.compact()
			e.flushing = false
			return ctx.Err()
		}
		e.step()
	}
	e.compact()
	e.flushing = false
	e.ledger = nil
	return nil
}

// step dispatches the item at the queue head and releases it in the ledger.
func (e *Engine) step() {
	item := e.queue[e.head]
	e.head++
	dispatch(e.handlers[item.to], e.ctxs[item.to], item)
	if e.ledger != nil {
		e.ledger.done(item.round)
	}
}

// compact reclaims queue storage between drains. When everything enqueued so
// far has been dispatched the queue resets in place; during a windowed
// replay the queue may never fully drain until the final Flush, so a long
// consumed prefix is shifted out instead, keeping the backlog bounded by the
// lag window rather than the whole trace. Zeroing released slots lets queued
// subscriptions be collected while the backing array is kept.
func (e *Engine) compact() {
	if e.head == len(e.queue) {
		for i := range e.queue {
			e.queue[i] = queued{}
		}
		e.queue = e.queue[:0]
		e.head = 0
		return
	}
	if e.head < 1024 {
		return
	}
	n := copy(e.queue, e.queue[e.head:])
	for i := n; i < len(e.queue); i++ {
		e.queue[i] = queued{}
	}
	e.queue = e.queue[:n]
	e.head = 0
}

// enqueue implements sink.
func (e *Engine) enqueue(from, to topology.NodeID, msg Message, round int) {
	e.push(queued{from: from, to: to, msg: msg, round: round})
}

// deliver implements sink. The delivery arrives already stamped with the
// round of its newest component (Context.DeliverToUser).
func (e *Engine) deliver(d Delivery) {
	e.delivBySub[d.SubID] = append(e.delivBySub[d.SubID], len(e.deliveries))
	e.deliveries = append(e.deliveries, d)
	e.metrics.recordDelivery(d)
	if e.observer != nil {
		e.observer(d)
	}
}
