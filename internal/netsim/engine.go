package netsim

import (
	"fmt"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// Runtime is the interface shared by the sequential and concurrent engines.
// The experiment harness and the public facade are written against it.
type Runtime interface {
	// AttachSensor attaches a sensor to a node; the node's protocol handler
	// reacts by advertising it (Algorithm 1).
	AttachSensor(node topology.NodeID, sensor model.Sensor) error
	// Subscribe registers a user subscription at a node.
	Subscribe(node topology.NodeID, sub *model.Subscription) error
	// Publish injects a sensor reading at the node hosting the sensor.
	Publish(node topology.NodeID, ev model.Event) error
	// PublishBatch injects a trace of sensor readings in order. Each event
	// is fully propagated before the next one is injected — the observable
	// behaviour (traffic totals, deliveries) is identical to calling
	// Publish per event — but the engine validates the batch up front and
	// amortizes per-call queue management, so trace replay should prefer
	// it. A batch is rejected as a whole when any target node is unknown.
	// The batch counts as one replay round (deliveries are stamped with
	// it); it is equivalent to ReplayRounds with a single quiescent round.
	PublishBatch(batch []Publication) error
	// ReplayRounds injects a trace structured as rounds of events, under
	// the delivery semantics selected by opts: Quiescent drains the
	// network after every single event (the conformance baseline),
	// Pipelined injects a whole round before draining, which lets the
	// concurrent engine's per-node goroutines run simultaneously. Every
	// round advances the engine's round counter, and deliveries are
	// stamped with it. The whole trace is validated up front; an unknown
	// target node rejects it before any event enters the network.
	ReplayRounds(rounds [][]Publication, opts ReplayOptions) error
	// Flush processes messages until the network is quiescent.
	Flush()
	// Metrics returns the run's traffic and delivery counters.
	Metrics() *Metrics
	// Deliveries returns every complex-event delivery recorded so far, in
	// delivery order (sequential engine) or an arbitrary order (concurrent).
	Deliveries() []Delivery
	// Handler returns the protocol handler of a node (nil for unknown
	// nodes). White-box protocol tests use it to inspect per-node state on
	// either engine; for the concurrent engine the caller must Flush first
	// so no worker goroutine is touching the handler.
	Handler(node topology.NodeID) Handler
}

// queued is one in-flight item: either a link message or a local injection.
type queued struct {
	to   topology.NodeID
	from topology.NodeID
	msg  Message

	// Local injections (from == to) use the fields below instead of msg.
	injection injectionKind
	sensor    model.Sensor
	sub       *model.Subscription
	ev        model.Event
}

type injectionKind int

const (
	injectionNone injectionKind = iota
	injectionSensor
	injectionSubscribe
	injectionPublish
)

// Engine is the deterministic sequential engine: messages are processed in
// FIFO order in the caller's goroutine. Given identical inputs it produces
// identical traffic counts, which is what the experiment harness and the
// regression tests rely on.
type Engine struct {
	graph      *topology.Graph
	handlers   []Handler
	ctxs       []*Context
	metrics    *Metrics
	queue      []queued
	flushing   bool
	deliveries []Delivery
	round      int
}

var _ Runtime = (*Engine)(nil)

// NewEngine builds a sequential engine over the given topology, creating one
// handler per node with the factory.
func NewEngine(graph *topology.Graph, factory HandlerFactory) *Engine {
	e := &Engine{
		graph:    graph,
		handlers: make([]Handler, graph.NumNodes()),
		ctxs:     make([]*Context, graph.NumNodes()),
		metrics:  NewMetrics(),
	}
	for n := 0; n < graph.NumNodes(); n++ {
		id := topology.NodeID(n)
		e.handlers[n] = factory(id)
		e.ctxs[n] = &Context{self: id, graph: graph, metrics: e.metrics, out: e}
		e.handlers[n].Init(e.ctxs[n])
	}
	return e
}

// Metrics implements Runtime.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Deliveries implements Runtime.
func (e *Engine) Deliveries() []Delivery {
	out := make([]Delivery, len(e.deliveries))
	copy(out, e.deliveries)
	return out
}

// Handler returns the protocol handler of a node (used by white-box tests).
func (e *Engine) Handler(n topology.NodeID) Handler {
	if n < 0 || int(n) >= len(e.handlers) {
		return nil
	}
	return e.handlers[n]
}

func (e *Engine) validNode(n topology.NodeID) error {
	if n < 0 || int(n) >= len(e.handlers) {
		return fmt.Errorf("netsim: unknown node %d", n)
	}
	return nil
}

// AttachSensor implements Runtime. The injection is processed (and the
// resulting advertisement flood drained) before it returns.
func (e *Engine) AttachSensor(node topology.NodeID, sensor model.Sensor) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	e.queue = append(e.queue, queued{to: node, from: node, injection: injectionSensor, sensor: sensor})
	e.Flush()
	return nil
}

// Subscribe implements Runtime; the subscription is fully propagated before
// it returns.
func (e *Engine) Subscribe(node topology.NodeID, sub *model.Subscription) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	e.queue = append(e.queue, queued{to: node, from: node, injection: injectionSubscribe, sub: sub})
	e.Flush()
	return nil
}

// Publish implements Runtime; the event is fully propagated before it
// returns.
func (e *Engine) Publish(node topology.NodeID, ev model.Event) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	e.queue = append(e.queue, queued{to: node, from: node, injection: injectionPublish, ev: ev})
	e.Flush()
	return nil
}

// PublishBatch implements Runtime: the whole batch is validated first, then
// every event is injected and fully propagated in order, reusing the queue
// storage across events.
func (e *Engine) PublishBatch(batch []Publication) error {
	return e.ReplayRounds([][]Publication{batch}, ReplayOptions{Mode: Quiescent})
}

// ReplayRounds implements Runtime. On the sequential engine both modes are
// deterministic; they differ in interleaving only (Pipelined enqueues a whole
// round before draining it FIFO, so a node sees round events in injection
// order rather than fully propagated one at a time).
func (e *Engine) ReplayRounds(rounds [][]Publication, opts ReplayOptions) error {
	if err := opts.validate(); err != nil {
		return err
	}
	for _, round := range rounds {
		for _, p := range round {
			if err := e.validNode(p.Node); err != nil {
				return err
			}
		}
	}
	for _, round := range rounds {
		e.round++
		switch opts.Mode {
		case Quiescent:
			for _, p := range round {
				e.queue = append(e.queue, queued{to: p.Node, from: p.Node, injection: injectionPublish, ev: p.Event})
				e.Flush()
			}
		case Pipelined:
			for _, p := range round {
				e.queue = append(e.queue, queued{to: p.Node, from: p.Node, injection: injectionPublish, ev: p.Event})
			}
			e.Flush()
		}
	}
	return nil
}

// Flush implements Runtime: it processes queued messages in FIFO order until
// none remain. The queue's backing array is retained and reused across
// flushes, so a long replay does not reallocate it per event.
//
// Dispatched items stay in the queue until the drain completes, so a nested
// Flush (a handler calling back into the engine mid-dispatch — nothing does
// today) must not re-drain; it returns immediately and leaves the work to
// the outer drain, which also picks up anything enqueued in between.
func (e *Engine) Flush() {
	if e.flushing {
		return
	}
	e.flushing = true
	for i := 0; i < len(e.queue); i++ {
		item := e.queue[i]
		dispatch(e.handlers[item.to], e.ctxs[item.to], item)
	}
	// Zero the processed items so queued subscriptions can be collected,
	// then keep the backing array for the next flush.
	for i := range e.queue {
		e.queue[i] = queued{}
	}
	e.queue = e.queue[:0]
	e.flushing = false
}

// enqueue implements sink.
func (e *Engine) enqueue(from, to topology.NodeID, msg Message) {
	e.queue = append(e.queue, queued{from: from, to: to, msg: msg})
}

// deliver implements sink.
func (e *Engine) deliver(d Delivery) {
	d.Round = e.round
	e.deliveries = append(e.deliveries, d)
	e.metrics.recordDelivery(d)
}
