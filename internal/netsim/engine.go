package netsim

import (
	"fmt"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// Runtime is the interface shared by the sequential and concurrent engines.
// The experiment harness and the public facade are written against it.
type Runtime interface {
	// AttachSensor attaches a sensor to a node; the node's protocol handler
	// reacts by advertising it (Algorithm 1).
	AttachSensor(node topology.NodeID, sensor model.Sensor) error
	// Subscribe registers a user subscription at a node.
	Subscribe(node topology.NodeID, sub *model.Subscription) error
	// Publish injects a sensor reading at the node hosting the sensor.
	Publish(node topology.NodeID, ev model.Event) error
	// Flush processes messages until the network is quiescent.
	Flush()
	// Metrics returns the run's traffic and delivery counters.
	Metrics() *Metrics
	// Deliveries returns every complex-event delivery recorded so far, in
	// delivery order (sequential engine) or an arbitrary order (concurrent).
	Deliveries() []Delivery
}

// queued is one in-flight item: either a link message or a local injection.
type queued struct {
	to   topology.NodeID
	from topology.NodeID
	msg  Message

	// Local injections (from == to) use the fields below instead of msg.
	injection injectionKind
	sensor    model.Sensor
	sub       *model.Subscription
	ev        model.Event
}

type injectionKind int

const (
	injectionNone injectionKind = iota
	injectionSensor
	injectionSubscribe
	injectionPublish
)

// Engine is the deterministic sequential engine: messages are processed in
// FIFO order in the caller's goroutine. Given identical inputs it produces
// identical traffic counts, which is what the experiment harness and the
// regression tests rely on.
type Engine struct {
	graph      *topology.Graph
	handlers   []Handler
	ctxs       []*Context
	metrics    *Metrics
	queue      []queued
	deliveries []Delivery
}

var _ Runtime = (*Engine)(nil)

// NewEngine builds a sequential engine over the given topology, creating one
// handler per node with the factory.
func NewEngine(graph *topology.Graph, factory HandlerFactory) *Engine {
	e := &Engine{
		graph:    graph,
		handlers: make([]Handler, graph.NumNodes()),
		ctxs:     make([]*Context, graph.NumNodes()),
		metrics:  NewMetrics(),
	}
	for n := 0; n < graph.NumNodes(); n++ {
		id := topology.NodeID(n)
		e.handlers[n] = factory(id)
		e.ctxs[n] = &Context{self: id, graph: graph, metrics: e.metrics, out: e}
		e.handlers[n].Init(e.ctxs[n])
	}
	return e
}

// Metrics implements Runtime.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Deliveries implements Runtime.
func (e *Engine) Deliveries() []Delivery {
	out := make([]Delivery, len(e.deliveries))
	copy(out, e.deliveries)
	return out
}

// Handler returns the protocol handler of a node (used by white-box tests).
func (e *Engine) Handler(n topology.NodeID) Handler {
	if n < 0 || int(n) >= len(e.handlers) {
		return nil
	}
	return e.handlers[n]
}

func (e *Engine) validNode(n topology.NodeID) error {
	if n < 0 || int(n) >= len(e.handlers) {
		return fmt.Errorf("netsim: unknown node %d", n)
	}
	return nil
}

// AttachSensor implements Runtime. The injection is processed (and the
// resulting advertisement flood drained) before it returns.
func (e *Engine) AttachSensor(node topology.NodeID, sensor model.Sensor) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	e.queue = append(e.queue, queued{to: node, from: node, injection: injectionSensor, sensor: sensor})
	e.Flush()
	return nil
}

// Subscribe implements Runtime; the subscription is fully propagated before
// it returns.
func (e *Engine) Subscribe(node topology.NodeID, sub *model.Subscription) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	e.queue = append(e.queue, queued{to: node, from: node, injection: injectionSubscribe, sub: sub})
	e.Flush()
	return nil
}

// Publish implements Runtime; the event is fully propagated before it
// returns.
func (e *Engine) Publish(node topology.NodeID, ev model.Event) error {
	if err := e.validNode(node); err != nil {
		return err
	}
	e.queue = append(e.queue, queued{to: node, from: node, injection: injectionPublish, ev: ev})
	e.Flush()
	return nil
}

// Flush implements Runtime: it processes queued messages in FIFO order until
// none remain.
func (e *Engine) Flush() {
	for len(e.queue) > 0 {
		item := e.queue[0]
		e.queue = e.queue[1:]
		e.dispatch(item)
	}
}

func (e *Engine) dispatch(item queued) {
	h := e.handlers[item.to]
	ctx := e.ctxs[item.to]
	if item.injection != injectionNone {
		switch item.injection {
		case injectionSensor:
			h.LocalSensor(ctx, item.sensor)
		case injectionSubscribe:
			h.LocalSubscribe(ctx, item.sub)
		case injectionPublish:
			h.LocalPublish(ctx, item.ev)
		}
		return
	}
	switch item.msg.Kind {
	case KindAdvertisement:
		h.HandleAdvertisement(ctx, item.from, item.msg.Adv)
	case KindSubscription:
		h.HandleSubscription(ctx, item.from, item.msg.Sub)
	case KindEvent:
		h.HandleEvent(ctx, item.from, item.msg.Ev)
	}
}

// enqueue implements sink.
func (e *Engine) enqueue(from, to topology.NodeID, msg Message) {
	e.queue = append(e.queue, queued{from: from, to: to, msg: msg})
}

// deliver implements sink.
func (e *Engine) deliver(d Delivery) {
	e.deliveries = append(e.deliveries, d)
	e.metrics.recordDelivery(d)
}
