package netsim

import (
	"strings"
	"sync"
	"testing"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// TestRoundLedger exercises the sequential ledger directly: rounds retire in
// order, only once fully injected, and empty rounds retire immediately.
func TestRoundLedger(t *testing.T) {
	l := newRoundLedger(0)
	if l.watermark() != 0 {
		t.Fatalf("fresh ledger watermark = %d, want 0", l.watermark())
	}
	l.add(1)
	l.add(1)
	l.markInjected(1)
	l.done(1)
	if l.watermark() != 0 {
		t.Errorf("watermark advanced with round-1 work still pending")
	}
	// Round 2 drains before round 1: the watermark must hold at 0.
	l.add(2)
	l.markInjected(2)
	l.done(2)
	if l.watermark() != 0 {
		t.Errorf("watermark advanced past an undrained round: %d", l.watermark())
	}
	l.done(1)
	if l.watermark() != 2 {
		t.Errorf("watermark = %d after both rounds drained, want 2", l.watermark())
	}
	// An empty round retires as soon as it is marked injected.
	l.markInjected(3)
	if l.watermark() != 3 {
		t.Errorf("empty round did not retire: watermark = %d, want 3", l.watermark())
	}
	// Work cannot retire a round ahead of its injection mark.
	l.add(5)
	l.done(5)
	if l.watermark() != 3 {
		t.Errorf("watermark ran ahead of the injection frontier: %d", l.watermark())
	}
}

func windowedTrace(node topology.NodeID, rounds, perRound int) [][]Publication {
	trace := make([][]Publication, rounds)
	seq := uint64(0)
	for r := range trace {
		for i := 0; i < perRound; i++ {
			seq++
			trace[r] = append(trace[r], Publication{Node: node, Event: testEvent(seq)})
		}
	}
	return trace
}

// TestWindowedSingleNodeNetwork replays a windowed trace on a degenerate
// one-node network: there is nothing to pipeline across, but the watermark
// machinery must still retire every round and stamp deliveries correctly on
// both engines.
func TestWindowedSingleNodeNetwork(t *testing.T) {
	const rounds, perRound = 4, 3
	for _, concurrent := range []bool{false, true} {
		name := "sequential"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			g := topology.NewGraph(1)
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			var rt Runtime
			if concurrent {
				conc := NewConcurrentEngine(g, newFloodHandler)
				defer conc.Close()
				rt = conc
			} else {
				rt = NewEngine(g, newFloodHandler)
			}
			if err := rt.ReplayRounds(windowedTrace(0, rounds, perRound), ReplayOptions{Mode: Windowed, Lag: 2}); err != nil {
				t.Fatal(err)
			}
			rt.Flush()
			if got := len(rt.Deliveries()); got != rounds*perRound {
				t.Errorf("deliveries = %d, want %d", got, rounds*perRound)
			}
			for _, d := range rt.Deliveries() {
				want := int((d.Events[0].Seq-1)/perRound) + 1
				if d.Round != want {
					t.Errorf("delivery of seq %d stamped round %d, want %d", d.Events[0].Seq, d.Round, want)
				}
			}
			if wm := rt.Watermark(); wm != rounds {
				t.Errorf("final watermark = %d, want %d", wm, rounds)
			}
			if n := rt.Metrics().DroppedMessages(); n != 0 {
				t.Errorf("dropped %d messages", n)
			}
		})
	}
}

// silentHandler consumes events without forwarding or delivering anything:
// with it, a node that receives no injections receives no work at all.
type silentHandler struct{}

func (silentHandler) Init(*Context)                                                      {}
func (silentHandler) LocalSensor(*Context, model.Sensor)                                 {}
func (silentHandler) LocalSubscribe(*Context, *model.Subscription)                       {}
func (silentHandler) LocalUnsubscribe(*Context, model.SubscriptionID)                    {}
func (silentHandler) LocalPublish(*Context, model.Event)                                 {}
func (silentHandler) HandleAdvertisement(*Context, topology.NodeID, model.Advertisement) {}
func (silentHandler) HandleSubscription(*Context, topology.NodeID, *model.Subscription)  {}
func (silentHandler) HandleUnsubscription(*Context, topology.NodeID, model.SubscriptionID) {
}
func (silentHandler) HandleEvent(*Context, topology.NodeID, model.Event) {}

// TestWindowedIdleNodeWatermarkAdvances injects every event at node 0 of a
// line while the handlers never forward, so nodes 1 and 2 have no work in
// any round. Their low-watermarks must still advance with the injection
// frontier — an idle node holding the network watermark back would deadlock
// the windowed injection gate (this test hanging is the failure mode) and
// must not show up in NodeWatermarks.
func TestWindowedIdleNodeWatermarkAdvances(t *testing.T) {
	const rounds = 6
	g := lineGraph(t, 3)
	e := NewConcurrentEngine(g, func(topology.NodeID) Handler { return silentHandler{} })
	defer e.Close()
	// Lag 0 makes every injection wait for the full drain of the previous
	// round: if an idle node's watermark did not advance, the second round
	// would block forever.
	if err := e.ReplayRounds(windowedTrace(0, rounds, 2), ReplayOptions{Mode: Windowed, Lag: 0}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if wm := e.Watermark(); wm != rounds {
		t.Errorf("network watermark = %d, want %d", wm, rounds)
	}
	for n, wm := range e.NodeWatermarks() {
		if wm != rounds {
			t.Errorf("node %d watermark = %d, want %d (idle nodes must advance)", n, wm, rounds)
		}
	}
}

// TestWindowedLagLargerThanTrace replays a short trace with a lag far beyond
// its length: the injection gate never engages, the whole trace is in flight
// at once, and the run must still match the quiescent baseline's totals.
func TestWindowedLagLargerThanTrace(t *testing.T) {
	const rounds, perRound = 3, 2
	g := lineGraph(t, 5)
	base := NewEngine(g, newFloodHandler)
	if err := base.AttachSensor(4, model.Sensor{ID: "d1", Attr: model.WindSpeed}); err != nil {
		t.Fatal(err)
	}
	if err := base.ReplayRounds(windowedTrace(4, rounds, perRound), ReplayOptions{Mode: Quiescent}); err != nil {
		t.Fatal(err)
	}

	for _, concurrent := range []bool{false, true} {
		name := "sequential"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			var rt Runtime
			if concurrent {
				conc := NewConcurrentEngine(g, newFloodHandler)
				defer conc.Close()
				rt = conc
			} else {
				rt = NewEngine(g, newFloodHandler)
			}
			if err := rt.AttachSensor(4, model.Sensor{ID: "d1", Attr: model.WindSpeed}); err != nil {
				t.Fatal(err)
			}
			rt.Flush()
			if err := rt.ReplayRounds(windowedTrace(4, rounds, perRound), ReplayOptions{Mode: Windowed, Lag: 10}); err != nil {
				t.Fatal(err)
			}
			rt.Flush()
			if a, b := base.Metrics().Snapshot(), rt.Metrics().Snapshot(); a != b {
				t.Errorf("traffic differs from quiescent baseline: base=%+v got=%+v", a, b)
			}
			if got, want := len(rt.Deliveries()), len(base.Deliveries()); got != want {
				t.Errorf("deliveries = %d, want %d", got, want)
			}
			if wm := rt.Watermark(); wm != rounds {
				t.Errorf("final watermark = %d, want %d", wm, rounds)
			}
			if n := rt.Metrics().DroppedMessages(); n != 0 {
				t.Errorf("dropped %d messages", n)
			}
		})
	}
}

// watermarkSpy wraps the flood handler and records, at every delivery on
// node 0, the engine watermark observed at that instant together with the
// delivery's round stamp. The sequential engine runs handlers on the
// caller's goroutine, so reading the engine mid-dispatch is safe.
type watermarkSpy struct {
	Handler
	observe func(ctx *Context)
}

func (s *watermarkSpy) HandleEvent(ctx *Context, from topology.NodeID, ev model.Event) {
	s.observe(ctx)
	s.Handler.HandleEvent(ctx, from, ev)
}

func (s *watermarkSpy) LocalPublish(ctx *Context, ev model.Event) {
	s.observe(ctx)
	s.Handler.LocalPublish(ctx, ev)
}

// TestWindowedWatermarkInvariant checks the windowed invariant on the
// sequential engine: while an item of round r is being dispatched (and so
// while any delivery stamped <= r+1 can occur), the network watermark is at
// least r-1-Lag — rounds beyond the lag window are never in flight.
func TestWindowedWatermarkInvariant(t *testing.T) {
	const rounds, lag = 8, 2
	g := lineGraph(t, 4)
	var eng *Engine
	type obs struct{ round, wm int }
	var seen []obs
	eng = NewEngine(g, func(n topology.NodeID) Handler {
		inner := newFloodHandler(n)
		return &watermarkSpy{Handler: inner, observe: func(ctx *Context) {
			seen = append(seen, obs{round: ctx.round, wm: eng.Watermark()})
		}}
	})
	if err := eng.AttachSensor(3, model.Sensor{ID: "d1", Attr: model.WindSpeed}); err != nil {
		t.Fatal(err)
	}
	if err := eng.ReplayRounds(windowedTrace(3, rounds, 2), ReplayOptions{Mode: Windowed, Lag: lag}); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("spy observed no dispatches; the invariant check is vacuous")
	}
	overlapped := false
	for _, o := range seen {
		if o.wm < o.round-1-lag {
			t.Errorf("round-%d work in flight while watermark %d < %d", o.round, o.wm, o.round-1-lag)
		}
		if o.round > o.wm+1 {
			overlapped = true
		}
	}
	if !overlapped {
		t.Error("no cross-round overlap observed; the windowed replay degenerated to pipelined")
	}
}

// TestWindowedWatermarkInvariantConcurrent checks the same invariant on the
// concurrent engine, where the watermark gate actually races worker
// goroutines: whenever a round-r item is being dispatched, the network
// watermark observed from inside the dispatch must be at least r-1-Lag
// (the watermark is monotone and was at least that when round r was
// injected). Run under -race this also hammers the multi-lock watermark
// snapshot from many goroutines.
func TestWindowedWatermarkInvariantConcurrent(t *testing.T) {
	const rounds, lag = 10, 2
	g := lineGraph(t, 6)
	var (
		eng  *ConcurrentEngine
		mu   sync.Mutex
		seen []struct{ round, wm int }
	)
	eng = NewConcurrentEngine(g, func(n topology.NodeID) Handler {
		inner := newFloodHandler(n)
		return &watermarkSpy{Handler: inner, observe: func(ctx *Context) {
			round, wm := ctx.round, eng.Watermark()
			mu.Lock()
			seen = append(seen, struct{ round, wm int }{round, wm})
			mu.Unlock()
		}}
	})
	defer eng.Close()
	if err := eng.AttachSensor(5, model.Sensor{ID: "d1", Attr: model.WindSpeed}); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if err := eng.ReplayRounds(windowedTrace(5, rounds, 3), ReplayOptions{Mode: Windowed, Lag: lag}); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("spy observed no dispatches; the invariant check is vacuous")
	}
	for _, o := range seen {
		if o.wm < o.round-1-lag {
			t.Errorf("round-%d work in flight while watermark %d < %d", o.round, o.wm, o.round-1-lag)
		}
	}
}

// TestReplayOptionsValidation covers the mode/lag validation surface.
func TestReplayOptionsValidation(t *testing.T) {
	cases := []struct {
		opts ReplayOptions
		ok   bool
	}{
		{ReplayOptions{Mode: Quiescent}, true},
		{ReplayOptions{Mode: Pipelined}, true},
		{ReplayOptions{Mode: Windowed}, true},
		{ReplayOptions{Mode: Windowed, Lag: 4}, true},
		{ReplayOptions{Mode: Pipelined, Lag: 1}, false},
		{ReplayOptions{Mode: Quiescent, Lag: 1}, false},
		{ReplayOptions{Mode: Windowed, Lag: -1}, false},
		{ReplayOptions{Mode: DeliveryMode(42)}, false},
	}
	for _, c := range cases {
		err := c.opts.validate()
		if c.ok && err != nil {
			t.Errorf("validate(%+v) = %v, want nil", c.opts, err)
		}
		if !c.ok && err == nil {
			t.Errorf("validate(%+v) accepted invalid options", c.opts)
		}
	}
}

// TestParseDeliveryMode covers the CLI spellings, including the usage list
// in the error for unknown modes.
func TestParseDeliveryMode(t *testing.T) {
	for want, spelling := range map[DeliveryMode]string{
		Quiescent: "quiescent", Pipelined: "pipelined", Windowed: "windowed",
	} {
		got, err := ParseDeliveryMode(spelling)
		if err != nil || got != want {
			t.Errorf("ParseDeliveryMode(%q) = %v, %v", spelling, got, err)
		}
		if got.String() != spelling {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), spelling)
		}
	}
	if _, err := ParseDeliveryMode("bogus"); err == nil {
		t.Error("unknown mode should be rejected")
	} else {
		for _, name := range DeliveryModeNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error %q does not list mode %q", err, name)
			}
		}
	}
	if names := DeliveryModeNames(); len(names) != 3 {
		t.Errorf("DeliveryModeNames() = %v, want 3 modes", names)
	}
}

// TestRequiredValidityFactor pins the validity scaling rule the windowed
// conformance argument depends on.
func TestRequiredValidityFactor(t *testing.T) {
	for _, c := range []struct {
		mode DeliveryMode
		lag  int
		want int
	}{
		{Quiescent, 0, 2},
		{Pipelined, 0, 2},
		{Windowed, 0, 2},
		{Windowed, 1, 3},
		{Windowed, 4, 6},
	} {
		if got := RequiredValidityFactor(c.mode, c.lag); got != c.want {
			t.Errorf("RequiredValidityFactor(%v, %d) = %d, want %d", c.mode, c.lag, got, c.want)
		}
	}
}
