package netsim

import (
	"testing"

	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// floodHandler is a toy protocol used to exercise the engines: it floods
// advertisements and events to every neighbour except the sender, forwards
// subscriptions towards node 0, and delivers every event it sees to a local
// user subscription called "sink" when running on node 0.
type floodHandler struct {
	ctx      *Context
	node     topology.NodeID
	seen     map[uint64]bool
	advSeen  map[model.SensorID]bool
	received []model.Event
}

func newFloodHandler(node topology.NodeID) Handler {
	return &floodHandler{node: node, seen: map[uint64]bool{}, advSeen: map[model.SensorID]bool{}}
}

func (h *floodHandler) Init(ctx *Context)                                      { h.ctx = ctx }
func (h *floodHandler) LocalSubscribe(ctx *Context, s *model.Subscription)     {}
func (h *floodHandler) LocalUnsubscribe(ctx *Context, id model.SubscriptionID) {}

func (h *floodHandler) LocalSensor(ctx *Context, sensor model.Sensor) {
	h.HandleAdvertisement(ctx, h.node, sensor.Advertisement())
}

func (h *floodHandler) LocalPublish(ctx *Context, ev model.Event) {
	h.HandleEvent(ctx, h.node, ev)
}

func (h *floodHandler) HandleAdvertisement(ctx *Context, from topology.NodeID, adv model.Advertisement) {
	if h.advSeen[adv.Sensor] {
		return
	}
	h.advSeen[adv.Sensor] = true
	for _, nb := range ctx.Neighbors() {
		if nb != from {
			ctx.SendAdvertisement(nb, adv)
		}
	}
}

func (h *floodHandler) HandleSubscription(ctx *Context, from topology.NodeID, sub *model.Subscription) {
}

func (h *floodHandler) HandleUnsubscription(ctx *Context, from topology.NodeID, id model.SubscriptionID) {
}

func (h *floodHandler) HandleEvent(ctx *Context, from topology.NodeID, ev model.Event) {
	if h.seen[ev.Seq] {
		return
	}
	h.seen[ev.Seq] = true
	h.received = append(h.received, ev)
	if ctx.Self() == 0 {
		ctx.DeliverToUser("sink", model.ComplexEvent{ev})
	}
	for _, nb := range ctx.Neighbors() {
		if nb != from {
			ctx.SendEvent(nb, ev)
		}
	}
}

func lineGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(topology.NodeID(i-1), topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func testEvent(seq uint64) model.Event {
	return model.Event{Seq: seq, Sensor: "d1", Attr: model.WindSpeed, Value: 1, Time: model.Timestamp(seq)}
}

func TestSequentialEngineFloodCounts(t *testing.T) {
	g := lineGraph(t, 5)
	e := NewEngine(g, newFloodHandler)

	sensor := model.Sensor{ID: "d1", Attr: model.WindSpeed, Location: geom.Point2D{}}
	if err := e.AttachSensor(4, sensor); err != nil {
		t.Fatal(err)
	}
	// Advertisement flooding on a 5-node line crosses 4 links.
	if got := e.Metrics().AdvertisementLoad(); got != 4 {
		t.Errorf("advertisement load = %d, want 4", got)
	}
	if err := e.Publish(4, testEvent(1)); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().EventLoad(); got != 4 {
		t.Errorf("event load = %d, want 4", got)
	}
	// The event reached node 0 and was delivered to the sink user.
	if got := e.Metrics().ComplexDeliveries("sink"); got != 1 {
		t.Errorf("deliveries = %d, want 1", got)
	}
	if seqs := e.Metrics().DeliveredSeqs("sink"); !seqs[1] {
		t.Error("delivered seq set should contain event 1")
	}
	if len(e.Deliveries()) != 1 || e.Deliveries()[0].Node != 0 {
		t.Error("Deliveries() should report the node-0 delivery")
	}
	if ids := e.Metrics().SubscriptionsWithDeliveries(); len(ids) != 1 || ids[0] != "sink" {
		t.Errorf("SubscriptionsWithDeliveries = %v", ids)
	}
}

func TestEngineRejectsInvalidInput(t *testing.T) {
	g := lineGraph(t, 3)
	e := NewEngine(g, newFloodHandler)
	if err := e.Publish(99, testEvent(1)); err == nil {
		t.Error("publishing at an unknown node should fail")
	}
	if err := e.AttachSensor(-1, model.Sensor{}); err == nil {
		t.Error("attaching to an unknown node should fail")
	}
	bad := &model.Subscription{ID: "x"}
	if err := e.Subscribe(0, bad); err == nil {
		t.Error("invalid subscriptions should be rejected")
	}
	if e.Handler(0) == nil || e.Handler(99) != nil {
		t.Error("Handler accessor wrong")
	}
}

func TestContextSendValidation(t *testing.T) {
	g := lineGraph(t, 3)
	e := NewEngine(g, newFloodHandler)
	ctx := e.ctxs[0]
	if ctx.Self() != 0 {
		t.Error("Self wrong")
	}
	if !ctx.IsNeighbor(1) || ctx.IsNeighbor(2) {
		t.Error("IsNeighbor wrong")
	}
	if ctx.Graph() != g {
		t.Error("Graph accessor wrong")
	}
	assertPanics(t, func() { ctx.SendEvent(2, testEvent(1)) }, "send to non-neighbour")
	assertPanics(t, func() { ctx.SendEvent(0, testEvent(1)) }, "send to self")
	assertPanics(t, func() { ctx.SendSubscription(1, nil) }, "nil subscription")
}

func assertPanics(t *testing.T, fn func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s should panic", name)
		}
	}()
	fn()
}

func TestMetricsSnapshotAndLinks(t *testing.T) {
	g := lineGraph(t, 4)
	e := NewEngine(g, newFloodHandler)
	before := e.Metrics().Snapshot()
	_ = e.Publish(3, testEvent(7))
	after := e.Metrics().Snapshot()
	d := after.Diff(before)
	if d.EventLoad != 3 || d.SubscriptionLoad != 0 {
		t.Errorf("snapshot diff = %+v", d)
	}
	links := e.Metrics().BusiestEventLinks(10)
	if len(links) != 3 {
		t.Fatalf("expected 3 busy links, got %d", len(links))
	}
	for _, l := range links {
		if l.Units != 1 {
			t.Errorf("link %v carried %d units, want 1", l.Link, l.Units)
		}
	}
	if e.Metrics().TotalLoad() != 3 {
		t.Errorf("total load = %d", e.Metrics().TotalLoad())
	}
}

func TestConcurrentEngineMatchesSequential(t *testing.T) {
	g := lineGraph(t, 8)
	seq := NewEngine(g, newFloodHandler)
	conc := NewConcurrentEngine(g, newFloodHandler)
	defer conc.Close()

	sensor := model.Sensor{ID: "d1", Attr: model.WindSpeed}
	if err := seq.AttachSensor(7, sensor); err != nil {
		t.Fatal(err)
	}
	if err := conc.AttachSensor(7, sensor); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if err := seq.Publish(7, testEvent(i)); err != nil {
			t.Fatal(err)
		}
		if err := conc.Publish(7, testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	conc.Flush()
	if a, b := seq.Metrics().EventLoad(), conc.Metrics().EventLoad(); a != b {
		t.Errorf("event load differs: sequential=%d concurrent=%d", a, b)
	}
	if a, b := seq.Metrics().AdvertisementLoad(), conc.Metrics().AdvertisementLoad(); a != b {
		t.Errorf("advertisement load differs: sequential=%d concurrent=%d", a, b)
	}
	if a, b := seq.Metrics().ComplexDeliveries("sink"), conc.Metrics().ComplexDeliveries("sink"); a != b {
		t.Errorf("deliveries differ: sequential=%d concurrent=%d", a, b)
	}
	if len(conc.Deliveries()) != 20 {
		t.Errorf("concurrent deliveries = %d, want 20", len(conc.Deliveries()))
	}
}

func TestConcurrentEngineCloseRejectsWork(t *testing.T) {
	g := lineGraph(t, 3)
	e := NewConcurrentEngine(g, newFloodHandler)
	e.Flush()
	e.Close()
	e.Close() // idempotent
	if err := e.Publish(0, testEvent(1)); err == nil {
		t.Error("publishing after Close should fail")
	}
	if err := e.Publish(42, testEvent(1)); err == nil {
		t.Error("unknown node should fail")
	}
	bad := &model.Subscription{ID: "x"}
	if err := e.Subscribe(0, bad); err == nil {
		t.Error("invalid subscription should fail")
	}
}

func TestMessageKindString(t *testing.T) {
	if KindAdvertisement.String() != "advertisement" ||
		KindSubscription.String() != "subscription" ||
		KindEvent.String() != "event" {
		t.Error("MessageKind.String() wrong")
	}
	if MessageKind(9).String() != "kind(9)" {
		t.Error("unknown kind rendering wrong")
	}
}
