package netsim

import (
	"fmt"

	"sensorcq/internal/model"
	"sensorcq/internal/topology"
)

// sink is the engine-side interface a Context uses to hand off outgoing
// messages and user deliveries. Both engines implement it. The round is the
// lineage round of the item whose dispatch produced the message (see
// watermark.go); deliveries carry their own round stamp.
type sink interface {
	enqueue(from, to topology.NodeID, msg Message, round int)
	deliver(d Delivery)
}

// Context gives a handler access to its node's identity, its neighbourhood
// and the primitives for sending data to neighbours and delivering results
// to local users. A handler receives its context in Init and in every
// callback; the same context value is passed each time.
type Context struct {
	self    topology.NodeID
	graph   *topology.Graph
	metrics *Metrics
	out     sink

	// round is the lineage round of the item currently being dispatched on
	// this node; dispatch() maintains it. A context is only ever touched by
	// one goroutine at a time (the caller's for the sequential engine, the
	// node's worker for the concurrent engine), so the field needs no lock.
	round int

	// arena backs the complex-event copies handed to the delivery log, in
	// chunked slabs instead of one allocation per delivery. Single-goroutine
	// like round.
	arena deliveryArena
}

// deliveryArena hands out event-slice storage for DeliverToUser in chunked
// slabs. The delivery log is append-only and retains every handed-out slice
// for the lifetime of the engine, so the arena never reclaims: exhausted
// slabs are simply abandoned to the log's references and a fresh one is cut.
type deliveryArena struct {
	slab []model.Event
}

// arenaSlabEvents is the default slab granularity (events, not deliveries).
const arenaSlabEvents = 1024

// alloc returns a zeroed slice of n events with full capacity n, carving it
// from the current slab and cutting a new slab when the remainder is too
// small.
func (a *deliveryArena) alloc(n int) []model.Event {
	if n > len(a.slab) {
		size := arenaSlabEvents
		if n > size {
			size = n
		}
		a.slab = make([]model.Event, size)
	}
	out := a.slab[:n:n]
	a.slab = a.slab[n:]
	return out
}

// reserve makes sure the current slab can serve at least n more events
// without cutting a new slab.
func (a *deliveryArena) reserve(n int) {
	if n > len(a.slab) {
		a.slab = make([]model.Event, n)
	}
}

// Self returns this node's identifier.
func (c *Context) Self() topology.NodeID { return c.self }

// Round returns the lineage round of the item currently being dispatched:
// the replay round being injected, or the round of the item whose dispatch
// produced the message being handled. A subscription registration cascade
// shares one lineage round network-wide, which the aggregation subsystem
// uses to derive the same first window at every node.
func (c *Context) Round() int { return c.round }

// Neighbors returns the node's direct neighbours.
func (c *Context) Neighbors() []topology.NodeID { return c.graph.Neighbors(c.self) }

// IsNeighbor reports whether n is a direct neighbour of this node.
func (c *Context) IsNeighbor(n topology.NodeID) bool { return c.graph.HasEdge(c.self, n) }

// Graph exposes the full topology. Distributed protocols must not use it for
// routing decisions (they only rely on local interaction); it exists for the
// centralized baseline — which by definition assumes global knowledge — and
// for diagnostics.
func (c *Context) Graph() *topology.Graph { return c.graph }

// SendAdvertisement forwards an advertisement to a neighbouring node.
func (c *Context) SendAdvertisement(to topology.NodeID, adv model.Advertisement) {
	c.send(to, Message{Kind: KindAdvertisement, Adv: adv})
}

// SendSubscription forwards a subscription or correlation operator to a
// neighbouring node. Each call counts one unit of subscription load.
func (c *Context) SendSubscription(to topology.NodeID, sub *model.Subscription) {
	if sub == nil {
		panic("netsim: SendSubscription with nil subscription")
	}
	c.send(to, Message{Kind: KindSubscription, Sub: sub})
}

// SendUnsubscription forwards the retraction of a subscription or operator
// to a neighbouring node. Each call counts one unit of unsubscription load
// (control traffic, accounted separately from the subscription load the
// paper plots).
func (c *Context) SendUnsubscription(to topology.NodeID, id model.SubscriptionID) {
	if id == "" {
		panic("netsim: SendUnsubscription with empty subscription ID")
	}
	c.send(to, Message{Kind: KindUnsubscription, UnsubID: id})
}

// SendEvent forwards one simple event (one data unit) to a neighbouring
// node. Each call counts one unit of event load.
func (c *Context) SendEvent(to topology.NodeID, ev model.Event) {
	c.send(to, Message{Kind: KindEvent, Ev: ev})
}

// SendEventUnits forwards one simple event while accounting for units data
// units of traffic. The centralized baseline uses it to charge a multi-hop
// path in one logical send.
func (c *Context) SendEventUnits(to topology.NodeID, ev model.Event, units int64) {
	c.send(to, Message{Kind: KindEvent, Ev: ev, Units: units})
}

// SendPartialAggregate forwards one windowed partial aggregate (or, for the
// exact baseline, one relayed raw reading) to a neighbouring node. Each call
// counts units of partial-aggregate load — accounted separately from the
// event load the paper plots. Units <= 0 defaults to 1; the centralized
// baseline charges a multi-hop path in one logical send.
func (c *Context) SendPartialAggregate(to topology.NodeID, pa *PartialAggregate, units int64) {
	if pa == nil {
		panic("netsim: SendPartialAggregate with nil payload")
	}
	c.send(to, Message{Kind: KindPartialAggregate, Agg: pa, Units: units})
}

func (c *Context) send(to topology.NodeID, msg Message) {
	if to == c.self {
		panic(fmt.Sprintf("netsim: node %d attempted to send %s to itself", c.self, msg.Kind))
	}
	if !c.graph.HasEdge(c.self, to) {
		panic(fmt.Sprintf("netsim: node %d attempted to send %s to non-neighbour %d", c.self, msg.Kind, to))
	}
	c.metrics.recordSend(c.self, to, msg, c.round)
	c.out.enqueue(c.self, to, msg, c.round)
}

// DeliverToUser hands a complex event to the local user owning the given
// (root) subscription. Deliveries are recorded in the metrics for recall
// accounting but generate no link traffic.
//
// The delivery is stamped with the round of its newest component event (the
// replay round during which the complex event logically completed). That
// stamp is a pure function of the delivered complex event, so runs that
// interleave rounds differently — pipelined, windowed at any lag — attribute
// identical deliveries to identical rounds, which is what makes the
// per-round conformance oracle comparable across delivery modes.
func (c *Context) DeliverToUser(sub model.SubscriptionID, events model.ComplexEvent) {
	cp := model.ComplexEvent(c.arena.alloc(len(events)))
	copy(cp, events)
	round := c.round
	for i, e := range cp {
		if i == 0 || e.Round > round {
			round = e.Round
		}
	}
	c.out.deliver(Delivery{Node: c.self, SubID: sub, Events: cp, Round: round})
}

// DeliverAggregate hands one finalised windowed aggregate to the local user
// owning the subscription. The delivery is stamped with the window's end
// round — a pure function of the window, independent of when the close
// cascade ran — so the per-round conformance oracle compares aggregate
// deliveries across engines and delivery modes exactly like complex events.
func (c *Context) DeliverAggregate(sub model.SubscriptionID, res AggregateResult) {
	c.out.deliver(Delivery{Node: c.self, SubID: sub, Aggregate: &res, Round: res.EndRound})
}
