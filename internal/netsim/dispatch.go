package netsim

// dispatch routes one queued item to the owning node's handler. It is the
// single place that understands the injection/message discrimination; both
// engines call it (the sequential engine from the caller's goroutine, the
// concurrent engine from the node's worker goroutine), so the two can never
// drift apart in how they present work to a protocol handler.
func dispatch(h Handler, ctx *Context, item queued) {
	// Expose the item's lineage round to the context: messages the handler
	// sends while processing this item belong to the same round (watermark
	// accounting), and deliveries fall back to it when a complex event has
	// no components to derive a round from.
	ctx.round = item.round
	if item.injection != injectionNone {
		switch item.injection {
		case injectionSensor:
			h.LocalSensor(ctx, item.sensor)
		case injectionSubscribe:
			h.LocalSubscribe(ctx, item.sub)
		case injectionUnsubscribe:
			h.LocalUnsubscribe(ctx, item.unsub)
		case injectionPublish:
			h.LocalPublish(ctx, item.ev)
		case injectionTick:
			// Watermark ticks are only generated while an aggregate
			// subscription is registered; handlers without the capability
			// ignore them.
			if wh, ok := h.(WatermarkHandler); ok {
				wh.HandleWatermark(ctx, item.wm)
			}
		}
		return
	}
	switch item.msg.Kind {
	case KindAdvertisement:
		h.HandleAdvertisement(ctx, item.from, item.msg.Adv)
	case KindSubscription:
		h.HandleSubscription(ctx, item.from, item.msg.Sub)
	case KindUnsubscription:
		h.HandleUnsubscription(ctx, item.from, item.msg.UnsubID)
	case KindEvent:
		h.HandleEvent(ctx, item.from, item.msg.Ev)
	case KindPartialAggregate:
		if ah, ok := h.(AggregateHandler); ok {
			ah.HandlePartialAggregate(ctx, item.from, item.msg.Agg)
		}
	}
}
