// Tests for the KeepOpen windowed session API and the per-round event-load
// accounting: a session split across several ReplayRounds calls must behave
// exactly like the same trace replayed in one call, control injections must
// join an open session without draining it, and EventLoadForRounds must
// partition the event load by lineage round.
package netsim_test

import (
	"strings"
	"testing"

	"sensorcq/internal/core"
	"sensorcq/internal/experiment"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
)

// sessionWorkload builds the small conformance workload and the handler
// factory of the first registered approach with a lag-matched validity.
func sessionWorkload(t *testing.T, seed int64, lag int) (*experiment.Workload, func() netsim.HandlerFactory) {
	t.Helper()
	w, err := experiment.BuildWorkload(conformanceScenario(seed))
	if err != nil {
		t.Fatal(err)
	}
	id := experiment.All()[0]
	newFactory := func() netsim.HandlerFactory {
		factory, err := experiment.FactoryForSpec(id, experiment.FactorySpec{
			Seed:           seed + 7,
			ValidityFactor: netsim.RequiredValidityFactor(netsim.Windowed, lag),
		})
		if err != nil {
			t.Fatal(err)
		}
		return factory
	}
	return w, newFactory
}

// setup attaches sensors and subscriptions exactly like driveRounds.
func setup(t *testing.T, rt netsim.Runtime, w *experiment.Workload) {
	t.Helper()
	for _, sensor := range w.Deployment.Sensors {
		if err := rt.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for _, p := range w.Placed {
		if err := rt.Subscribe(p.Node, p.Sub.Clone()); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
}

// TestKeepOpenWindowedSession replays the trace batch by batch through an
// open windowed session and requires the run to be indistinguishable from a
// single windowed ReplayRounds call over the whole trace: identical traffic
// totals and identical per-round delivery multisets, on both engines.
func TestKeepOpenWindowedSession(t *testing.T) {
	const lag = 1
	w, newFactory := sessionWorkload(t, 7, lag)
	totalRounds := w.Scenario.Batches * w.Scenario.RoundsPerBatch

	for _, concurrent := range []bool{false, true} {
		name := "sequential"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			newRT := func() netsim.Runtime {
				if concurrent {
					return netsim.NewConcurrentEngine(w.Deployment.Graph, newFactory())
				}
				return netsim.NewEngine(w.Deployment.Graph, newFactory())
			}

			// Baseline: the whole trace in one windowed call.
			baseline := newRT()
			if conc, ok := baseline.(*netsim.ConcurrentEngine); ok {
				defer conc.Close()
			}
			setup(t, baseline, w)
			var all [][]netsim.Publication
			for b := 0; b < w.Scenario.Batches; b++ {
				all = append(all, w.PublicationRounds(b)...)
			}
			if err := baseline.ReplayRounds(all, netsim.ReplayOptions{Mode: netsim.Windowed, Lag: lag}); err != nil {
				t.Fatal(err)
			}
			baseline.Flush()

			// Session: one KeepOpen call per batch, closed by a final Flush.
			sess := newRT()
			if conc, ok := sess.(*netsim.ConcurrentEngine); ok {
				defer conc.Close()
			}
			setup(t, sess, w)
			for b := 0; b < w.Scenario.Batches; b++ {
				opts := netsim.ReplayOptions{Mode: netsim.Windowed, Lag: lag, KeepOpen: true}
				if err := sess.ReplayRounds(w.PublicationRounds(b), opts); err != nil {
					t.Fatal(err)
				}
				if !concurrent && b == 0 {
					// The sequential engine drains nothing behind the
					// caller's back, so mid-session the trailing rounds must
					// still be in flight — the batch boundary did not drain.
					if wm := sess.Watermark(); wm >= w.Scenario.RoundsPerBatch {
						t.Errorf("watermark %d after KeepOpen batch 0: the session was drained at the batch boundary", wm)
					}
				}
			}
			sess.Flush()

			assertSameTraffic(t, name, baseline.Metrics().Snapshot(), sess.Metrics().Snapshot())
			assertSamePerRoundDeliveries(t, name, baseline.Deliveries(), sess.Deliveries())
			if wm := sess.Watermark(); wm != totalRounds {
				t.Errorf("final watermark = %d, want %d", wm, totalRounds)
			}
			if n := sess.Metrics().DroppedMessages(); n != 0 {
				t.Errorf("session run dropped %d messages", n)
			}

			// The per-round attribution must partition the total event load.
			m := sess.Metrics()
			if got, want := m.EventLoadForRounds(0, totalRounds), m.EventLoad(); got != want {
				t.Errorf("EventLoadForRounds(0,%d) = %d, want total event load %d", totalRounds, got, want)
			}
			var sum int64
			for r := 0; r <= totalRounds; r++ {
				sum += m.EventLoadForRounds(r, r)
			}
			if want := m.EventLoad(); sum != want {
				t.Errorf("per-round event loads sum to %d, want %d", sum, want)
			}
		})
	}
}

// TestKeepOpenSessionRejectsOtherModes pins the session discipline: while a
// windowed session is open, a quiescent or pipelined replay (and hence
// PublishBatch) is an error, and Flush closes the session so the same call
// succeeds afterwards.
func TestKeepOpenSessionRejectsOtherModes(t *testing.T) {
	const lag = 1
	w, newFactory := sessionWorkload(t, 11, lag)

	for _, concurrent := range []bool{false, true} {
		name := "sequential"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			var rt netsim.Runtime
			if concurrent {
				conc := netsim.NewConcurrentEngine(w.Deployment.Graph, newFactory())
				defer conc.Close()
				rt = conc
			} else {
				rt = netsim.NewEngine(w.Deployment.Graph, newFactory())
			}
			setup(t, rt, w)
			opts := netsim.ReplayOptions{Mode: netsim.Windowed, Lag: lag, KeepOpen: true}
			if err := rt.ReplayRounds(w.PublicationRounds(0), opts); err != nil {
				t.Fatal(err)
			}
			err := rt.ReplayRounds(w.PublicationRounds(1), netsim.ReplayOptions{Mode: netsim.Pipelined})
			if err == nil || !strings.Contains(err.Error(), "windowed session") {
				t.Fatalf("pipelined replay during open session: err = %v, want open-session rejection", err)
			}
			rt.Flush()
			if err := rt.ReplayRounds(w.PublicationRounds(1), netsim.ReplayOptions{Mode: netsim.Pipelined}); err != nil {
				t.Fatalf("pipelined replay after Flush closed the session: %v", err)
			}
		})
	}

	// KeepOpen outside the windowed mode is a validation error everywhere.
	rt := netsim.NewEngine(w.Deployment.Graph, newFactory())
	err := rt.ReplayRounds(nil, netsim.ReplayOptions{Mode: netsim.Pipelined, KeepOpen: true})
	if err == nil {
		t.Fatal("KeepOpen with pipelined mode validated")
	}
}

// TestSubscribeJoinsOpenSession verifies that control injections do not
// drain an open session on the sequential engine: the watermark must not
// advance across a Subscribe/Unsubscribe, and the retraction must still take
// effect once the session is closed.
func TestSubscribeJoinsOpenSession(t *testing.T) {
	const lag = 2
	w, newFactory := sessionWorkload(t, 42, lag)

	e := netsim.NewEngine(w.Deployment.Graph, newFactory())
	setup(t, e, w)
	opts := netsim.ReplayOptions{Mode: netsim.Windowed, Lag: lag, KeepOpen: true}
	if err := e.ReplayRounds(w.PublicationRounds(0), opts); err != nil {
		t.Fatal(err)
	}
	before := e.Watermark()
	if before >= w.Scenario.RoundsPerBatch {
		t.Fatalf("watermark %d: batch 0 fully drained, the open session is vacuous", before)
	}

	sub := w.Placed[0].Sub.Clone()
	sub.ID = model.SubscriptionID("mid-session-sub")
	if err := e.Subscribe(w.Placed[0].Node, sub); err != nil {
		t.Fatal(err)
	}
	if wm := e.Watermark(); wm != before {
		t.Errorf("Subscribe drained the open session: watermark %d -> %d", before, wm)
	}
	if err := e.Unsubscribe(w.Placed[0].Node, sub.ID); err != nil {
		t.Fatal(err)
	}
	if wm := e.Watermark(); wm != before {
		t.Errorf("Unsubscribe drained the open session: watermark %d -> %d", before, wm)
	}
	e.Flush()
	if n := e.Metrics().DroppedMessages(); n != 0 {
		t.Errorf("dropped %d messages", n)
	}
	// The retraction propagated with the stream: the registration node no
	// longer stores the mid-session subscription.
	if node, ok := e.Handler(w.Placed[0].Node).(*core.Node); ok {
		if node.Subscriptions().Seen(w.Placed[0].Node, sub.ID) {
			t.Errorf("mid-session subscription still stored after unsubscribe + flush")
		}
	}
}
