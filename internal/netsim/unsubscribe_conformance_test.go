// Unsubscription conformance: retracting a subscription mid-trace must
// behave identically across both engines and every delivery mode — the
// retracted subscription receives nothing after the retraction, the
// survivors' per-round delivery multisets are unchanged between variants,
// the traffic totals (including the retraction control traffic) agree, and
// the run forwards strictly fewer data units than the same trace replayed
// without the retraction.
package netsim_test

import (
	"fmt"
	"testing"

	"sensorcq/internal/experiment"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
)

// churnPlan selects the subscriptions retracted between the two batches of
// the conformance scenario: half of the subscriptions that received
// deliveries after the churn point in the churn-free probe run (in placement
// order), so the retraction provably sheds traffic, plus every subscription
// that received nothing at all (retracting those must be a harmless state
// cleanup). Returns nil when no subscription has post-churn deliveries —
// the retraction check would be vacuous.
func churnPlan(w *experiment.Workload, probe netsim.Runtime, churnRound int) map[model.SubscriptionID]bool {
	postChurn := map[model.SubscriptionID]bool{}
	delivered := map[model.SubscriptionID]bool{}
	for _, d := range probe.Deliveries() {
		delivered[d.SubID] = true
		if d.Round > churnRound {
			postChurn[d.SubID] = true
		}
	}
	if len(postChurn) == 0 {
		return nil
	}
	retract := map[model.SubscriptionID]bool{}
	n := 0
	for _, p := range w.Placed {
		if postChurn[p.Sub.ID] {
			if n%2 == 0 {
				retract[p.Sub.ID] = true
			}
			n++
		} else if !delivered[p.Sub.ID] {
			retract[p.Sub.ID] = true
		}
	}
	return retract
}

// driveRoundsWithChurn replays the workload like driveRounds, but retracts
// the planned subscriptions after the first batch's rounds have drained:
// sensors, all subscriptions, batch-0 rounds, unsubscribe, remaining
// batches.
func driveRoundsWithChurn(t *testing.T, rt netsim.Runtime, w *experiment.Workload, opts netsim.ReplayOptions, retract map[model.SubscriptionID]bool) {
	t.Helper()
	attachAndSubscribe(t, rt, w)
	if err := rt.ReplayRounds(w.PublicationRounds(0), opts); err != nil {
		t.Fatal(err)
	}
	rt.Flush()
	for _, p := range w.Placed {
		if !retract[p.Sub.ID] {
			continue
		}
		if err := rt.Unsubscribe(p.Node, p.Sub.ID); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for b := 1; b < w.Scenario.Batches; b++ {
		if err := rt.ReplayRounds(w.PublicationRounds(b), opts); err != nil {
			t.Fatal(err)
		}
	}
	rt.Flush()
}

// attachAndSubscribe is the shared preamble of the replay drivers: sensors
// in sorted order, then every subscription propagated to quiescence.
func attachAndSubscribe(t *testing.T, rt netsim.Runtime, w *experiment.Workload) {
	t.Helper()
	sensors := sortedSensors(w)
	for _, sensor := range sensors {
		if err := rt.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
	for _, p := range w.Placed {
		if err := rt.Subscribe(p.Node, p.Sub.Clone()); err != nil {
			t.Fatal(err)
		}
		rt.Flush()
	}
}

func sortedSensors(w *experiment.Workload) []model.Sensor {
	sensors := make([]model.Sensor, len(w.Deployment.Sensors))
	copy(sensors, w.Deployment.Sensors)
	for i := 1; i < len(sensors); i++ {
		for j := i; j > 0 && sensors[j].ID < sensors[j-1].ID; j-- {
			sensors[j], sensors[j-1] = sensors[j-1], sensors[j]
		}
	}
	return sensors
}

// TestUnsubscribeConformanceAllApproaches is the retraction extension of the
// per-round oracle: for every approach, a trace replayed with a mid-trace
// unsubscription of half the population must produce — on both engines under
// quiescent, pipelined and windowed (lag 0/1/2) replay — the sequential
// quiescent run's traffic totals (including unsubscription control traffic)
// and per-round delivery multisets, zero deliveries for the retracted
// subscriptions after the retraction round, no dropped messages, and
// strictly less event traffic than the same trace without the retraction.
func TestUnsubscribeConformanceAllApproaches(t *testing.T) {
	for _, seed := range []int64{11, 42} {
		w, err := experiment.BuildWorkload(conformanceScenario(seed))
		if err != nil {
			t.Fatal(err)
		}
		churnRound := w.Scenario.RoundsPerBatch // retraction happens after this round
		for _, id := range experiment.All() {
			id := id
			t.Run(fmt.Sprintf("%s/seed=%d", id, seed), func(t *testing.T) {
				newRuntime := func(concurrent bool, workers int, opts netsim.ReplayOptions) netsim.Runtime {
					factory, err := experiment.FactoryForSpec(id, experiment.FactorySpec{
						Seed:           seed + 7,
						ValidityFactor: netsim.RequiredValidityFactor(opts.Mode, opts.Lag),
					})
					if err != nil {
						t.Fatal(err)
					}
					if concurrent {
						return netsim.NewConcurrentEngineWorkers(w.Deployment.Graph, factory, workers)
					}
					return netsim.NewEngine(w.Deployment.Graph, factory)
				}

				// Reference run without the retraction: the churn run must
				// forward strictly fewer data units than this, and it tells
				// us which subscriptions have post-churn deliveries to shed.
				noChurn := newRuntime(false, 0, netsim.ReplayOptions{Mode: netsim.Quiescent})
				driveRounds(t, noChurn, w, netsim.ReplayOptions{Mode: netsim.Quiescent})
				retract := churnPlan(w, noChurn, churnRound)
				if retract == nil {
					t.Fatalf("no subscription has post-churn deliveries; the retraction check is vacuous")
				}

				baseline := newRuntime(false, 0, netsim.ReplayOptions{Mode: netsim.Quiescent})
				driveRoundsWithChurn(t, baseline, w, netsim.ReplayOptions{Mode: netsim.Quiescent}, retract)
				base := baseline.Metrics().Snapshot()
				if base.UnsubscriptionLoad == 0 {
					t.Errorf("retraction generated no unsubscription traffic")
				}
				if got, ref := base.EventLoad, noChurn.Metrics().Snapshot().EventLoad; got >= ref {
					t.Errorf("event load with churn = %d, want < %d (retraction must shed event traffic)", got, ref)
				}
				for _, d := range baseline.Deliveries() {
					if d.Round > churnRound && retract[d.SubID] {
						t.Fatalf("retracted subscription %s delivered in round %d (after retraction)", d.SubID, d.Round)
					}
				}
				// Survivors keep exactly the deliveries of the churn-free
				// run: under every propagation policy the retraction must
				// not disturb queries that remain registered.
				surviving := func(ds []netsim.Delivery) []netsim.Delivery {
					var out []netsim.Delivery
					for _, d := range ds {
						if !retract[d.SubID] {
							out = append(out, d)
						}
					}
					return out
				}
				assertSamePerRoundDeliveries(t, "survivors-vs-no-churn",
					surviving(noChurn.Deliveries()), surviving(baseline.Deliveries()))

				for _, v := range conformanceVariants {
					for _, run := range variantRuns(v.name, v.concurrent) {
						rt := newRuntime(v.concurrent, run.workers, v.opts)
						if conc, ok := rt.(*netsim.ConcurrentEngine); ok {
							defer conc.Close()
						}
						driveRoundsWithChurn(t, rt, w, v.opts, retract)
						assertSameTraffic(t, run.name, base, rt.Metrics().Snapshot())
						if got, want := rt.Metrics().Snapshot().UnsubscriptionLoad, base.UnsubscriptionLoad; got != want {
							t.Errorf("%s: unsubscription load = %d, want %d", run.name, got, want)
						}
						assertSamePerRoundDeliveries(t, run.name, baseline.Deliveries(), rt.Deliveries())
						for _, d := range rt.Deliveries() {
							if d.Round > churnRound && retract[d.SubID] {
								t.Errorf("%s: retracted subscription %s delivered in round %d", run.name, d.SubID, d.Round)
							}
						}
						if n := rt.Metrics().DroppedMessages(); n != 0 {
							t.Errorf("%s dropped %d messages", run.name, n)
						}
						if wm, want := rt.Watermark(), w.Scenario.Batches*w.Scenario.RoundsPerBatch; wm != want {
							t.Errorf("%s: final watermark = %d, want %d", run.name, wm, want)
						}
					}
				}
			})
		}
	}
}

// TestDeliveriesForMatchesLogScan cross-checks the per-subscription delivery
// maps both engines serve DeliveriesFor from against a scan over the full
// log, on a real workload.
func TestDeliveriesForMatchesLogScan(t *testing.T) {
	w, err := experiment.BuildWorkload(conformanceScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, concurrent := range []bool{false, true} {
		name := "sequential"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			factory, err := experiment.FactoryFor(experiment.FilterSplitForward, 49, 0)
			if err != nil {
				t.Fatal(err)
			}
			var rt netsim.Runtime
			if concurrent {
				conc := netsim.NewConcurrentEngine(w.Deployment.Graph, factory)
				defer conc.Close()
				rt = conc
			} else {
				rt = netsim.NewEngine(w.Deployment.Graph, factory)
			}
			driveRounds(t, rt, w, netsim.ReplayOptions{Mode: netsim.Pipelined})

			scanned := map[model.SubscriptionID][]netsim.Delivery{}
			for _, d := range rt.Deliveries() {
				scanned[d.SubID] = append(scanned[d.SubID], d)
			}
			if len(scanned) == 0 {
				t.Fatal("workload produced no deliveries; the check is vacuous")
			}
			for _, p := range w.Placed {
				got := deliveryMultiset(rt.DeliveriesFor(p.Sub.ID))
				want := deliveryMultiset(scanned[p.Sub.ID])
				if len(got) != len(want) {
					t.Fatalf("sub %s: DeliveriesFor multiset size %d, scan %d", p.Sub.ID, len(got), len(want))
				}
				for k, n := range want {
					if got[k] != n {
						t.Errorf("sub %s: delivery %q: DeliveriesFor=%d scan=%d", p.Sub.ID, k, got[k], n)
					}
				}
			}
		})
	}
}
