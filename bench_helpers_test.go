package sensorcq

import (
	"sensorcq/internal/core"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/subsume"
)

// multiJoinFactory builds the distributed multi-join approach with an
// explicit binary-join pairing (used by the pairing ablation benchmark).
func multiJoinFactory(pairing model.BinaryJoinPairing) netsim.HandlerFactory {
	return core.NewFactory(core.Config{
		Name:        "distributed-multi-join/" + pairing.String(),
		Checker:     subsume.PairwiseChecker{},
		Split:       core.SplitBinaryJoin,
		Pairing:     pairing,
		Propagation: core.PerNeighbor,
	})
}

// dedupFactory builds two configurations that differ only in the event
// propagation policy (per-neighbour vs per-subscription), isolating the
// "event propagation" column of Table II.
func dedupFactory(perNeighbor bool) netsim.HandlerFactory {
	propagation := core.PerSubscription
	name := "pairwise/per-subscription"
	if perNeighbor {
		propagation = core.PerNeighbor
		name = "pairwise/per-neighbor"
	}
	return core.NewFactory(core.Config{
		Name:        name,
		Checker:     subsume.PairwiseChecker{},
		Split:       core.SplitSimple,
		Propagation: propagation,
	})
}
